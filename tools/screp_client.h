// C++ client for screp_server's line protocol (see tools/screp_server.cc
// for the command set).  One Connection is one session at the server —
// it is not thread-safe; open one Connection per client thread.
//
//   client::Connection conn;
//   SCREP_CHECK(conn.Connect("127.0.0.1", 7411).ok());
//   conn.Begin();
//   conn.Read(7);
//   conn.Update(12, 99);
//   auto result = conn.Commit();   // result->reads[0] = {7, <value>}
//   conn.Quit();

#ifndef SCREP_TOOLS_SCREP_CLIENT_H_
#define SCREP_TOOLS_SCREP_CLIENT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace screp::client {

/// One committed transaction's outcome.
struct CommitResult {
  /// Certified commit version (0 for read-only transactions).
  int64_t commit_version = 0;
  /// (key, value) for each READ, in submission order.
  std::vector<std::pair<int64_t, int64_t>> reads;
};

class Connection {
 public:
  Connection() = default;
  ~Connection() { Close(); }

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;
  Connection(Connection&& other) noexcept;
  Connection& operator=(Connection&& other) noexcept;

  /// Opens the TCP connection. `host` is an IPv4 address literal.
  Status Connect(const std::string& host, int port);

  /// Asserts the server runs the expected consistency level.
  Status Level(const std::string& level);

  /// Starts buffering a transaction at the server.
  Status Begin();
  /// Buffers one read; the value arrives on Commit().
  Status Read(int64_t key);
  /// Buffers one write.
  Status Update(int64_t key, int64_t value);
  /// Runs the buffered transaction; Aborted status carries the outcome
  /// name when the middleware aborted it (retry by resubmitting).
  Result<CommitResult> Commit();
  /// Drops the buffered transaction.
  Status Abort();

  Status Ping();
  /// The server's STATS line, verbatim.
  Result<std::string> Stats();
  /// Polite close (sends QUIT).
  void Quit();
  /// Asks the server process to stop, then closes.
  Status Shutdown();

  // Raw-protocol hooks for abuse/regression testing: send bytes with no
  // newline framing, read whatever reply line arrives, hang up abruptly.
  Status SendRaw(const std::string& bytes);
  Result<std::string> ReadReply() { return RecvLine(); }
  void Disconnect() { Close(); }
  /// Bounds every subsequent recv; 0 restores blocking reads.
  Status SetRecvTimeout(int timeout_ms);

  bool connected() const { return fd_ >= 0; }

 private:
  /// Sends one command line; returns the reply line.
  Result<std::string> RoundTrip(const std::string& line);
  Status SendLine(const std::string& line);
  Result<std::string> RecvLine();
  /// Sends a command whose reply must be exactly "OK".
  Status ExpectOk(const std::string& line);
  void Close();

  int fd_ = -1;
  std::string buffer_;
};

}  // namespace screp::client

#endif  // SCREP_TOOLS_SCREP_CLIENT_H_
