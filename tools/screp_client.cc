#include "screp_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cstring>
#include <sstream>

namespace screp::client {

Connection::Connection(Connection&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

Connection& Connection::operator=(Connection&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

void Connection::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

Status Connection::Connect(const std::string& host, int port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return Status::IOError("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad IPv4 address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Close();
    return Status::IOError("cannot connect to " + host + ":" +
                           std::to_string(port));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::OK();
}

Status Connection::SendLine(const std::string& line) {
  if (fd_ < 0) return Status::IOError("not connected");
  std::string out = line + "\n";
  size_t off = 0;
  while (off < out.size()) {
    const ssize_t n =
        ::send(fd_, out.data() + off, out.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return Status::IOError("send failed");
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Connection::SetRecvTimeout(int timeout_ms) {
  if (fd_ < 0) return Status::IOError("not connected");
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return Status::IOError("setsockopt(SO_RCVTIMEO) failed");
  }
  return Status::OK();
}

Status Connection::SendRaw(const std::string& bytes) {
  if (fd_ < 0) return Status::IOError("not connected");
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return Status::IOError("send failed");
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<std::string> Connection::RecvLine() {
  char chunk[4096];
  for (;;) {
    const size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return Status::IOError("connection closed by server");
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

Result<std::string> Connection::RoundTrip(const std::string& line) {
  SCREP_RETURN_NOT_OK(SendLine(line));
  return RecvLine();
}

Status Connection::ExpectOk(const std::string& line) {
  SCREP_ASSIGN_OR_RETURN(std::string reply, RoundTrip(line));
  if (reply != "OK") return Status::Internal("server said: " + reply);
  return Status::OK();
}

Status Connection::Level(const std::string& level) {
  return ExpectOk("LEVEL " + level);
}

Status Connection::Begin() { return ExpectOk("BEGIN"); }

Status Connection::Read(int64_t key) {
  return ExpectOk("READ " + std::to_string(key));
}

Status Connection::Update(int64_t key, int64_t value) {
  return ExpectOk("UPDATE " + std::to_string(key) + " " +
                  std::to_string(value));
}

Result<CommitResult> Connection::Commit() {
  SCREP_RETURN_NOT_OK(SendLine("COMMIT"));
  CommitResult result;
  for (;;) {
    SCREP_ASSIGN_OR_RETURN(std::string reply, RecvLine());
    if (reply.rfind("VAL ", 0) == 0) {
      std::istringstream in(reply.substr(4));
      int64_t key = 0;
      int64_t value = 0;
      in >> key >> value;
      result.reads.emplace_back(key, value);
      continue;
    }
    if (reply.rfind("OK COMMITTED", 0) == 0) {
      const size_t eq = reply.find("version=");
      if (eq != std::string::npos) {
        result.commit_version = std::stoll(reply.substr(eq + 8));
      }
      return result;
    }
    if (reply.rfind("ERR ABORTED", 0) == 0) {
      return Status::Aborted(reply.substr(4));
    }
    return Status::Internal("server said: " + reply);
  }
}

Status Connection::Abort() { return ExpectOk("ABORT"); }

Status Connection::Ping() {
  SCREP_ASSIGN_OR_RETURN(std::string reply, RoundTrip("PING"));
  if (reply != "PONG") return Status::Internal("server said: " + reply);
  return Status::OK();
}

Result<std::string> Connection::Stats() { return RoundTrip("STATS"); }

void Connection::Quit() {
  if (fd_ < 0) return;
  (void)RoundTrip("QUIT");  // best effort; reply is "BYE"
  Close();
}

Status Connection::Shutdown() {
  SCREP_ASSIGN_OR_RETURN(std::string reply, RoundTrip("SHUTDOWN"));
  Close();
  if (reply != "BYE") return Status::Internal("server said: " + reply);
  return Status::OK();
}

}  // namespace screp::client
