// screp_server: a TCP front-end over the replicated middleware running
// on the wall-clock ThreadRuntime.
//
// The middleware executes registered prepared transactions, so an
// interactive session is buffered client-side (per connection) and
// mapped at COMMIT onto one type of the kv grid (workload/realtime.h):
// all READs execute first, then all UPDATEs, each bound positionally.
// Read values come back on the COMMIT reply (TxnRequest::collect_results).
//
// Threading: one acceptor thread, one std::thread per connection, the
// runtime's single event-loop thread for all middleware state.
// Connection threads reach the middleware only via Runtime::Post and
// block on a per-request waiter slot until the loop thread delivers the
// response — the same rendezvous the realtime bench driver uses.
//
// Line protocol (one command per line; replies are single lines except
// COMMIT, which prefixes one "VAL <key> <value>" line per READ):
//
//   LEVEL <ESC|LSC|LFC|SC>   assert the server's consistency level
//   BEGIN                    start buffering a transaction
//   READ <key>               buffer a read
//   UPDATE <key> <value>     buffer a write
//   COMMIT                   run the buffered transaction
//   ABORT                    drop the buffer
//   PING / STATS / QUIT      liveness / counters / close connection
//   SHUTDOWN                 stop the whole server (smoke-test hook)
//
// Exit status: 0 on clean shutdown with a quiet auditor, 1 on audit
// violations (--audit attaches the online consistency auditor).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cctype>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "runtime/thread_runtime.h"
#include "workload/realtime.h"

namespace screp::server {
namespace {

struct Options {
  int port = 7411;
  int replicas = 2;
  ConsistencyLevel level = ConsistencyLevel::kLazyCoarse;
  bool audit = false;
  int rows = 10000;
  int max_reads = 4;
  int max_updates = 4;
  uint64_t seed = 42;
};

Options ParseOptions(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      SCREP_CHECK_MSG(i + 1 < argc, arg << " needs a value");
      return argv[++i];
    };
    if (arg == "--port") {
      opt.port = std::stoi(next());
    } else if (arg == "--replicas") {
      opt.replicas = std::stoi(next());
    } else if (arg == "--level") {
      auto level = ParseConsistencyLevel(next());
      SCREP_CHECK_MSG(level.ok(), level.status().ToString());
      opt.level = *level;
    } else if (arg == "--audit") {
      opt.audit = true;
    } else if (arg == "--rows") {
      opt.rows = std::stoi(next());
    } else if (arg == "--max-reads") {
      opt.max_reads = std::stoi(next());
    } else if (arg == "--max-updates") {
      opt.max_updates = std::stoi(next());
    } else if (arg == "--seed") {
      opt.seed = std::stoull(next());
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return opt;
}

/// One submitted transaction's rendezvous between its connection thread
/// and the runtime loop thread.
struct Waiter {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  TxnResponse response;
};

/// Everything the connection handlers share.
struct Server {
  Options opt;
  runtime::ThreadRuntime* rt = nullptr;
  ReplicatedSystem* system = nullptr;
  const KvGridWorkload* workload = nullptr;

  /// In-flight waiters, keyed by txn id.  Touched only on the loop
  /// thread (inserted inside the Post that submits, erased by the client
  /// callback).
  std::unordered_map<TxnId, Waiter*> pending;

  std::atomic<int64_t> committed{0};
  std::atomic<int64_t> aborted{0};
  std::atomic<int64_t> connections{0};
  /// Connections dropped for exceeding the request-line bound.
  std::atomic<int64_t> oversized{0};
  /// Connections that vanished mid-line or with a transaction open.
  std::atomic<int64_t> dropped_midline{0};
  std::atomic<bool> shutdown{false};
  int listen_fd = -1;

  std::mutex fds_mu;
  std::vector<int> live_fds;  ///< open connection sockets (for shutdown)
};

void RegisterFd(Server* server, int fd) {
  std::lock_guard<std::mutex> lock(server->fds_mu);
  server->live_fds.push_back(fd);
}

void UnregisterFd(Server* server, int fd) {
  std::lock_guard<std::mutex> lock(server->fds_mu);
  auto& fds = server->live_fds;
  fds.erase(std::remove(fds.begin(), fds.end(), fd), fds.end());
}

bool SendLine(int fd, const std::string& line) {
  std::string out = line + "\n";
  size_t off = 0;
  while (off < out.size()) {
    const ssize_t n = ::send(fd, out.data() + off, out.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

/// Runs the buffered transaction through the middleware and writes the
/// COMMIT reply. Blocks the connection thread until the loop thread
/// hands the response over.
void RunCommit(Server* server, int fd, SessionId session, int client_id,
               const std::vector<int64_t>& reads,
               const std::vector<std::pair<int64_t, int64_t>>& updates) {
  auto type = server->workload->TypeFor(
      server->system->registry(), static_cast<int>(reads.size()),
      static_cast<int>(updates.size()));
  if (!type.ok()) {
    SendLine(fd, "ERR " + type.status().ToString());
    return;
  }
  TxnRequest req;
  req.type = *type;
  req.session = session;
  req.client_id = client_id;
  req.collect_results = !reads.empty();
  for (const int64_t key : reads) req.params.push_back({Value(key)});
  for (const auto& [key, value] : updates) {
    req.params.push_back({Value(value), Value(key)});
  }

  Waiter waiter;
  runtime::ThreadRuntime* rt = server->rt;
  rt->Post([server, rt, &req, &waiter]() {
    req.txn_id = server->system->NextTxnId();
    req.submit_time = rt->Now();
    server->pending[req.txn_id] = &waiter;
    server->system->Submit(req);
  });
  TxnResponse response;
  {
    std::unique_lock<std::mutex> lock(waiter.mu);
    waiter.cv.wait(lock, [&waiter]() { return waiter.done; });
    response = std::move(waiter.response);
  }

  if (response.outcome != TxnOutcome::kCommitted) {
    server->aborted.fetch_add(1);
    SendLine(fd, std::string("ERR ABORTED ") +
                     TxnOutcomeName(response.outcome));
    return;
  }
  server->committed.fetch_add(1);
  // Reads execute first within the grid type, so results[i] is reads[i].
  for (size_t i = 0; i < reads.size(); ++i) {
    std::string value = "?";
    if (i < response.results.size() && !response.results[i].empty() &&
        response.results[i][0].size() >= 2) {
      value = response.results[i][0][1].ToString();
    }
    SendLine(fd, "VAL " + std::to_string(reads[i]) + " " + value);
  }
  SendLine(fd, "OK COMMITTED version=" +
                   std::to_string(response.read_only
                                      ? 0
                                      : response.commit_version));
}

void HandleConnection(Server* server, int fd, SessionId session) {
  RegisterFd(server, fd);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  std::string buffer;
  bool in_txn = false;
  std::vector<int64_t> reads;
  std::vector<std::pair<int64_t, int64_t>> updates;

  // A well-formed request line is tens of bytes; without a bound, a
  // client that never sends '\n' grows `buffer` until the process dies.
  constexpr size_t kMaxLineBytes = 4096;

  char chunk[4096];
  bool open = true;
  while (open) {
    const size_t newline = buffer.find('\n');
    if (newline == std::string::npos) {
      if (buffer.size() >= kMaxLineBytes) {
        server->oversized.fetch_add(1);
        SendLine(fd, "ERR request line too long");
        break;
      }
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        // Disconnect or recv error.  Anything buffered — a partial
        // request line or an un-committed transaction's staged ops —
        // dies with the connection; the middleware session itself is
        // torn down by the EndSession post below.
        if (in_txn || !buffer.empty()) {
          server->dropped_midline.fetch_add(1);
          buffer.clear();
          reads.clear();
          updates.clear();
          in_txn = false;
        }
        break;
      }
      buffer.append(chunk, static_cast<size_t>(n));
      continue;
    }
    std::string line = buffer.substr(0, newline);
    buffer.erase(0, newline + 1);
    if (line.size() > kMaxLineBytes) {
      server->oversized.fetch_add(1);
      SendLine(fd, "ERR request line too long");
      break;
    }
    if (!line.empty() && line.back() == '\r') line.pop_back();

    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    for (char& c : cmd) c = static_cast<char>(std::toupper(c));

    if (cmd.empty()) {
      continue;
    } else if (cmd == "LEVEL") {
      std::string name;
      in >> name;
      auto level = ParseConsistencyLevel(name);
      if (!level.ok() || *level != server->opt.level) {
        SendLine(fd, std::string("ERR level mismatch: server runs ") +
                         ConsistencyLevelName(server->opt.level));
      } else {
        SendLine(fd, "OK");
      }
    } else if (cmd == "BEGIN") {
      if (in_txn) {
        SendLine(fd, "ERR transaction already open");
      } else {
        in_txn = true;
        reads.clear();
        updates.clear();
        SendLine(fd, "OK");
      }
    } else if (cmd == "READ") {
      int64_t key = 0;
      if (!in_txn) {
        SendLine(fd, "ERR no transaction open");
      } else if (!(in >> key)) {
        SendLine(fd, "ERR usage: READ <key>");
      } else if (static_cast<int>(reads.size()) >=
                 server->workload->config().max_reads) {
        SendLine(fd, "ERR too many reads (grid max " +
                         std::to_string(server->workload->config().max_reads) +
                         ")");
      } else {
        reads.push_back(key);
        SendLine(fd, "OK");
      }
    } else if (cmd == "UPDATE") {
      int64_t key = 0;
      int64_t value = 0;
      if (!in_txn) {
        SendLine(fd, "ERR no transaction open");
      } else if (!(in >> key >> value)) {
        SendLine(fd, "ERR usage: UPDATE <key> <value>");
      } else if (static_cast<int>(updates.size()) >=
                 server->workload->config().max_updates) {
        SendLine(fd, "ERR too many updates (grid max " +
                         std::to_string(
                             server->workload->config().max_updates) +
                         ")");
      } else {
        updates.emplace_back(key, value);
        SendLine(fd, "OK");
      }
    } else if (cmd == "COMMIT") {
      if (!in_txn) {
        SendLine(fd, "ERR no transaction open");
      } else if (reads.empty() && updates.empty()) {
        in_txn = false;
        SendLine(fd, "OK COMMITTED version=0");
      } else {
        in_txn = false;
        RunCommit(server, fd, session, static_cast<int>(session), reads,
                  updates);
      }
    } else if (cmd == "ABORT") {
      in_txn = false;
      reads.clear();
      updates.clear();
      SendLine(fd, "OK");
    } else if (cmd == "PING") {
      SendLine(fd, "PONG");
    } else if (cmd == "STATS") {
      SendLine(fd, "STATS committed=" +
                       std::to_string(server->committed.load()) +
                       " aborted=" + std::to_string(server->aborted.load()) +
                       " connections=" +
                       std::to_string(server->connections.load()) +
                       " oversized=" +
                       std::to_string(server->oversized.load()) +
                       " dropped_midline=" +
                       std::to_string(server->dropped_midline.load()));
    } else if (cmd == "QUIT") {
      SendLine(fd, "BYE");
      open = false;
    } else if (cmd == "SHUTDOWN") {
      SendLine(fd, "BYE");
      open = false;
      server->shutdown.store(true);
      // Unblock the acceptor.
      ::shutdown(server->listen_fd, SHUT_RDWR);
    } else {
      SendLine(fd, "ERR unknown command: " + cmd);
    }
  }

  ReplicatedSystem* system = server->system;
  server->rt->Post([system, session]() { system->EndSession(session); });
  UnregisterFd(server, fd);
  ::close(fd);
}

int Main(int argc, char** argv) {
  const Options opt = ParseOptions(argc, argv);

  runtime::ThreadRuntimeConfig rt_config;
  rt_config.worker_threads = 2;
  rt_config.entropy_seed = opt.seed;
  runtime::ThreadRuntime rt(rt_config);

  SystemConfig sys = RealtimeSystemConfig(opt.replicas, opt.level);
  sys.seed = opt.seed;
  if (opt.audit) {
    sys.obs.audit = true;
    sys.obs.event_log = true;
    sys.obs.event_log_capacity = 1u << 21;
  }

  KvGridConfig grid;
  grid.rows = opt.rows;
  grid.max_reads = opt.max_reads;
  grid.max_updates = opt.max_updates;
  KvGridWorkload workload(grid);

  auto system_or = ReplicatedSystem::Create(
      &rt, sys,
      [&](Database* db) { return workload.BuildSchema(db); },
      [&](const Database& db, sql::TransactionRegistry* reg) {
        return workload.DefineTransactions(db, reg);
      });
  SCREP_CHECK_MSG(system_or.ok(), system_or.status().ToString());
  std::unique_ptr<ReplicatedSystem> system = std::move(system_or).value();

  Server server;
  server.opt = opt;
  server.rt = &rt;
  server.system = system.get();
  server.workload = &workload;

  system->SetClientCallback([&server](const TxnResponse& r) {
    auto it = server.pending.find(r.txn_id);
    if (it == server.pending.end()) return;  // connection gone
    Waiter* waiter = it->second;
    server.pending.erase(it);
    {
      std::lock_guard<std::mutex> lock(waiter->mu);
      waiter->response = r;
      waiter->done = true;
    }
    waiter->cv.notify_one();
  });

  server.listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  SCREP_CHECK(server.listen_fd >= 0);
  const int one = 1;
  ::setsockopt(server.listen_fd, SOL_SOCKET, SO_REUSEADDR, &one,
               sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(opt.port));
  SCREP_CHECK_MSG(::bind(server.listen_fd,
                         reinterpret_cast<sockaddr*>(&addr),
                         sizeof(addr)) == 0,
                  "cannot bind 127.0.0.1:" << opt.port);
  SCREP_CHECK(::listen(server.listen_fd, 64) == 0);
  std::printf("screp_server: %d replicas, %s%s, kv[%d rows], grid %dx%d, "
              "listening on 127.0.0.1:%d\n",
              opt.replicas, ConsistencyLevelName(opt.level),
              opt.audit ? ", audited" : "", opt.rows, opt.max_reads,
              opt.max_updates, opt.port);
  std::fflush(stdout);

  std::vector<std::thread> handlers;
  SessionId next_session = 0;
  while (!server.shutdown.load()) {
    const int fd = ::accept(server.listen_fd, nullptr, nullptr);
    if (fd < 0) break;  // listen socket shut down
    server.connections.fetch_add(1);
    const SessionId session = next_session++;
    handlers.emplace_back([&server, fd, session]() {
      HandleConnection(&server, fd, session);
    });
  }
  ::close(server.listen_fd);

  // Unblock any handler still parked in recv(), then join them all.
  {
    std::lock_guard<std::mutex> lock(server.fds_mu);
    for (const int fd : server.live_fds) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& handler : handlers) handler.join();

  // Read the audit verdict on the loop thread before stopping.
  bool audit_ok = true;
  int64_t violations = 0;
  {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    rt.Post([&]() {
      if (server.opt.audit) {
        const obs::Auditor* auditor = system->obs()->auditor();
        if (auditor != nullptr) {
          audit_ok = auditor->ok();
          violations = auditor->violation_count();
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      done = true;
      cv.notify_all();
    });
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&]() { return done; });
  }
  rt.Stop();

  std::printf("screp_server: shut down after %lld connections, "
              "%lld committed, %lld aborted\n",
              static_cast<long long>(server.connections.load()),
              static_cast<long long>(server.committed.load()),
              static_cast<long long>(server.aborted.load()));
  if (opt.audit) {
    std::printf("screp_server: audit %s (%lld violations)\n",
                audit_ok ? "ok" : "VIOLATIONS",
                static_cast<long long>(violations));
  }
  return (opt.audit && !audit_ok) ? 1 : 0;
}

}  // namespace
}  // namespace screp::server

int main(int argc, char** argv) {
  ::signal(SIGPIPE, SIG_IGN);
  return screp::server::Main(argc, argv);
}
