#!/usr/bin/env bash
# Builds and tests the repo in the normal configuration, then again with
# AddressSanitizer + UndefinedBehaviorSanitizer, then with
# ThreadSanitizer (separate build trees; TSan cannot combine with ASan).
#
# Usage: tools/check.sh [--no-sanitize]

set -euo pipefail
cd "$(dirname "$0")/.."

SANITIZE=1
if [[ "${1:-}" == "--no-sanitize" ]]; then
  SANITIZE=0
fi

echo "== normal build =="
cmake -B build -S . >/dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j)

echo "== runtime-seam lint =="
# No layer above src/sim/ may reach for the simulator's clock or event
# queue directly; everything goes through the Runtime interface
# (src/runtime/runtime.h), so the same code runs on the wall-clock
# backend.  The grep must come up empty.
if grep -rnE 'sim_->(Now|Schedule)|sim\(\)->(Now|Schedule)' src \
    --include='*.h' --include='*.cc' \
  | grep -v '^src/sim/' | grep -v '^src/runtime/'; then
  echo "runtime-seam lint: raw simulator scheduling outside src/sim/" >&2
  exit 1
fi
echo "runtime-seam lint: clean"

echo "== certification / apply-lane microbench =="
# Self-checking: exits non-zero if the indexed certifier is not at least
# 5x faster than the linear-scan oracle at a 4096-entry conflict window.
./build/bench/micro_components --bench-json=build/BENCH_certifier.json

echo "== refresh fan-out microbench =="
# Self-checking: exits non-zero unless batching strictly reduces the
# certifier->replica message and byte counts while delivering the same
# writesets.
./build/bench/micro_components --net-json=build/BENCH_network.json

echo "== hot-path A/B microbench =="
# Self-checking: exits non-zero unless the best optimized hot path
# (cached plans / zero-copy fan-out / arena-fed WAL) holds a >= 2x
# speedup over its pre-optimization behavior AND the memoized
# serializations are byte-identical to the fresh encoders.
./build/bench/micro_components --hotpath-json=build/BENCH_hotpath.json

echo "== partitioned certification sweep =="
# Self-checking: exits non-zero unless 4-lane certified throughput is at
# least 2.5x the single-stream Certifier on a shard-disjoint workload
# AND the K=4 partial-replication end-to-end run is audit-clean.
./build/bench/micro_components --shard-sweep=build/BENCH_shards.json

echo "== saturation sweep (flow control on) =="
# Self-checking: exits non-zero unless the admission queue and the
# per-replica apply backlog stay within their configured bounds, the
# top-load runs actually shed, and p99 stays bounded past the knee.
./build/bench/saturation --quick --bench-json=build/BENCH_saturation.json

echo "== saturation sweep with critical-path profiling =="
# Self-checking twice over: the profiler verifies at runtime that each
# committed attempt's segments sum to its measured response time, and the
# virtual-time results must match the unprofiled sweep exactly (the
# profiler consumes spans, not randomness).
./build/bench/saturation --quick --profile \
  --bench-json=build/BENCH_profile.json \
  --profile-json=build/PROFILE_saturation.json

echo "== health-monitor fault sweep =="
# Self-checking: exits non-zero unless every injected fault (crash,
# partition, overload burst, refresh loss, catch-up stall, credit
# squeeze, certifier saturation) trips its matching detector within the
# scenario's sample bound AND the clean default-config figure runs stay
# detector-quiet.
./build/bench/fault_timeline --health-sweep \
  --bench-json build/BENCH_health.json

echo "== timeline dashboard render =="
# Render one fault timeline end-to-end (sampler + health + fault
# markers) to prove the JSON bundle and the stdlib-only renderer agree.
./build/bench/fault_timeline --health \
  --timeline-json build/timeline_crash.json >/dev/null
python3 tools/render_timeline.py build/timeline_crash.json \
  -o build/timeline_crash.html --title "fault_timeline: crash + recover"

echo "== wall-clock closed-loop bench (ThreadRuntime) =="
# The middleware on the wall-clock backend under a real closed-loop
# multi-threaded load, audited online and by post-hoc event-log replay.
# Exits non-zero on zero commits or any consistency violation.
./build/bench/realtime --clients 8 --duration 2 \
  --bench-json build/BENCH_realtime.json

echo "== TCP server smoke (screp_server + screp_cli) =="
# Boot the audited TCP front-end, drive it with the bundled client's
# closed loop, then SHUTDOWN; the server exits non-zero if its auditor
# saw any violation.
SMOKE_PORT=17411
./build/tools/screp_server --port "$SMOKE_PORT" --audit &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT
for _ in $(seq 1 50); do
  if ./build/tools/screp_cli --port "$SMOKE_PORT" --ping 2>/dev/null; then
    break
  fi
  sleep 0.1
done
./build/tools/screp_cli --port "$SMOKE_PORT" --clients 4 --ops 50
# Protocol-abuse regression: oversized request line, mid-line
# disconnect with an open transaction; server must reject, clean up,
# and keep serving.
./build/tools/screp_cli --port "$SMOKE_PORT" --abuse
./build/tools/screp_cli --port "$SMOKE_PORT" --shutdown
wait "$SERVER_PID"
trap - EXIT
echo "server smoke: ok"

echo "== bench regression gate =="
# Compares the fresh BENCH_*.json against the committed baselines with
# per-metric tolerance bands; --self-test proves the gate still catches
# planted regressions (e.g. a 20% p99 slowdown).
python3 tools/bench_gate.py --self-test
python3 tools/bench_gate.py --baseline BENCH_certifier.json \
  --fresh build/BENCH_certifier.json
python3 tools/bench_gate.py --baseline BENCH_network.json \
  --fresh build/BENCH_network.json
python3 tools/bench_gate.py --baseline BENCH_hotpath.json \
  --fresh build/BENCH_hotpath.json
python3 tools/bench_gate.py --baseline BENCH_shards.json \
  --fresh build/BENCH_shards.json
python3 tools/bench_gate.py --baseline BENCH_saturation.json \
  --fresh build/BENCH_saturation.json
python3 tools/bench_gate.py --baseline BENCH_profile.json \
  --fresh build/BENCH_profile.json
python3 tools/bench_gate.py --baseline BENCH_health.json \
  --fresh build/BENCH_health.json
# Wall-clock numbers vary with the host, so the realtime gate checks
# floors only (progress + audit verdicts), never latency ceilings.
python3 tools/bench_gate.py --realtime build/BENCH_realtime.json

if [[ "$SANITIZE" == "1" ]]; then
  echo "== sanitized build (address,undefined) =="
  cmake -B build-asan -S . -DSCREP_SANITIZE=address,undefined >/dev/null
  cmake --build build-asan -j
  (cd build-asan && ctest --output-on-failure -j)

  echo "== network-fault stage (address,undefined) =="
  # Loss / reorder / partition-heal on the refresh stream under ASan:
  # the reliable channel's retransmission and resequencing paths.
  ./build-asan/tests/net_channel_test
  ./build-asan/tests/net_fault_integration_test

  echo "== overload stage (address,undefined) =="
  # Admission shedding, certifier intake backpressure, refresh credits,
  # and timeout/backoff retry paths under ASan: the shed/timeout paths
  # synthesize responses outside the normal proxy flow, so exercise
  # their ownership story explicitly.
  ./build-asan/tests/overload_integration_test

  echo "== sanitized build (thread) =="
  cmake -B build-tsan -S . -DSCREP_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j
  (cd build-tsan && ctest --output-on-failure -j)

  echo "== network-fault stage (thread) =="
  ./build-tsan/tests/net_channel_test
  ./build-tsan/tests/net_fault_integration_test

  echo "== runtime stage (thread) =="
  # The genuinely multi-threaded paths: the Runtime conformance suite on
  # both backends and the full middleware over ThreadRuntime (Spawn
  # workers, Post ingress, completion-slot handoff, Stop drain) must be
  # race-free under TSan.
  ./build-tsan/tests/runtime_conformance_test
  ./build-tsan/tests/thread_runtime_e2e_test
fi

echo "== all checks passed =="
