#!/usr/bin/env bash
# Builds and tests the repo in the normal configuration, then again with
# AddressSanitizer + UndefinedBehaviorSanitizer, then with
# ThreadSanitizer (separate build trees; TSan cannot combine with ASan).
#
# Usage: tools/check.sh [--no-sanitize]

set -euo pipefail
cd "$(dirname "$0")/.."

SANITIZE=1
if [[ "${1:-}" == "--no-sanitize" ]]; then
  SANITIZE=0
fi

echo "== normal build =="
cmake -B build -S . >/dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j)

echo "== certification / apply-lane microbench =="
# Self-checking: exits non-zero if the indexed certifier is not at least
# 5x faster than the linear-scan oracle at a 4096-entry conflict window.
./build/bench/micro_components --bench-json=build/BENCH_certifier.json

echo "== refresh fan-out microbench =="
# Self-checking: exits non-zero unless batching strictly reduces the
# certifier->replica message and byte counts while delivering the same
# writesets.
./build/bench/micro_components --net-json=build/BENCH_network.json

echo "== saturation sweep (flow control on) =="
# Self-checking: exits non-zero unless the admission queue and the
# per-replica apply backlog stay within their configured bounds, the
# top-load runs actually shed, and p99 stays bounded past the knee.
./build/bench/saturation --quick --bench-json=build/BENCH_saturation.json

if [[ "$SANITIZE" == "1" ]]; then
  echo "== sanitized build (address,undefined) =="
  cmake -B build-asan -S . -DSCREP_SANITIZE=address,undefined >/dev/null
  cmake --build build-asan -j
  (cd build-asan && ctest --output-on-failure -j)

  echo "== network-fault stage (address,undefined) =="
  # Loss / reorder / partition-heal on the refresh stream under ASan:
  # the reliable channel's retransmission and resequencing paths.
  ./build-asan/tests/net_channel_test
  ./build-asan/tests/net_fault_integration_test

  echo "== overload stage (address,undefined) =="
  # Admission shedding, certifier intake backpressure, refresh credits,
  # and timeout/backoff retry paths under ASan: the shed/timeout paths
  # synthesize responses outside the normal proxy flow, so exercise
  # their ownership story explicitly.
  ./build-asan/tests/overload_integration_test

  echo "== sanitized build (thread) =="
  cmake -B build-tsan -S . -DSCREP_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j
  (cd build-tsan && ctest --output-on-failure -j)

  echo "== network-fault stage (thread) =="
  ./build-tsan/tests/net_channel_test
  ./build-tsan/tests/net_fault_integration_test
fi

echo "== all checks passed =="
