// screp_cli: tiny load driver / control client for screp_server.
//
//   screp_cli --ops 500 --clients 4        # closed-loop load, then stats
//   screp_cli --shutdown                   # stop the server
//   screp_cli --ping                       # liveness probe
//
// Each client thread opens its own connection (= session) and runs
// single-shot transactions back-to-back: a read of a random key, or with
// probability --update-fraction an update of a random key.  Aborted
// transactions are retried (the closed loop), so `committed` should
// reach clients * ops on a healthy server.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "screp_client.h"

namespace screp::cli {
namespace {

struct Options {
  std::string host = "127.0.0.1";
  int port = 7411;
  int clients = 1;
  int ops = 100;
  double update_fraction = 0.25;
  int keys = 10000;
  uint64_t seed = 42;
  std::string level;  ///< when set, assert the server's level first
  bool ping = false;
  bool shutdown = false;
};

Options ParseOptions(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      SCREP_CHECK_MSG(i + 1 < argc, arg << " needs a value");
      return argv[++i];
    };
    if (arg == "--host") {
      opt.host = next();
    } else if (arg == "--port") {
      opt.port = std::stoi(next());
    } else if (arg == "--clients") {
      opt.clients = std::stoi(next());
    } else if (arg == "--ops") {
      opt.ops = std::stoi(next());
    } else if (arg == "--update-fraction") {
      opt.update_fraction = std::stod(next());
    } else if (arg == "--keys") {
      opt.keys = std::stoi(next());
    } else if (arg == "--seed") {
      opt.seed = std::stoull(next());
    } else if (arg == "--level") {
      opt.level = next();
    } else if (arg == "--ping") {
      opt.ping = true;
    } else if (arg == "--shutdown") {
      opt.shutdown = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return opt;
}

int Main(int argc, char** argv) {
  const Options opt = ParseOptions(argc, argv);

  if (opt.ping || opt.shutdown) {
    client::Connection conn;
    Status status = conn.Connect(opt.host, opt.port);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    status = opt.ping ? conn.Ping() : conn.Shutdown();
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("%s\n", opt.ping ? "PONG" : "server shutting down");
    return 0;
  }

  std::atomic<int64_t> committed{0};
  std::atomic<int64_t> retries{0};
  std::atomic<int> failures{0};
  Rng seed_rng(opt.seed);
  std::vector<Rng> rngs;
  for (int c = 0; c < opt.clients; ++c) rngs.push_back(seed_rng.Fork());

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < opt.clients; ++c) {
    threads.emplace_back([&, c]() {
      client::Connection conn;
      Status status = conn.Connect(opt.host, opt.port);
      if (!status.ok()) {
        std::fprintf(stderr, "client %d: %s\n", c,
                     status.ToString().c_str());
        failures.fetch_add(1);
        return;
      }
      if (!opt.level.empty()) {
        status = conn.Level(opt.level);
        if (!status.ok()) {
          std::fprintf(stderr, "client %d: %s\n", c,
                       status.ToString().c_str());
          failures.fetch_add(1);
          return;
        }
      }
      Rng& rng = rngs[static_cast<size_t>(c)];
      for (int op = 0; op < opt.ops; ++op) {
        const bool update = rng.NextBool(opt.update_fraction);
        const int64_t key = rng.NextInRange(0, opt.keys - 1);
        for (;;) {
          if (!conn.Begin().ok()) {
            failures.fetch_add(1);
            return;
          }
          const Status op_status =
              update ? conn.Update(key, rng.NextInRange(0, 1 << 20))
                     : conn.Read(key);
          if (!op_status.ok()) {
            failures.fetch_add(1);
            return;
          }
          auto commit = conn.Commit();
          if (commit.ok()) {
            committed.fetch_add(1);
            break;
          }
          if (commit.status().code() != StatusCode::kAborted) {
            std::fprintf(stderr, "client %d: %s\n", c,
                         commit.status().ToString().c_str());
            failures.fetch_add(1);
            return;
          }
          retries.fetch_add(1);
        }
      }
      conn.Quit();
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double elapsed_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - start)
          .count();

  std::printf("screp_cli: %lld committed, %lld retries, %.0f ops/sec "
              "over %d connection(s)\n",
              static_cast<long long>(committed.load()),
              static_cast<long long>(retries.load()),
              static_cast<double>(committed.load()) / elapsed_s,
              opt.clients);
  if (failures.load() > 0) {
    std::fprintf(stderr, "screp_cli: %d client(s) failed\n",
                 failures.load());
    return 1;
  }
  return committed.load() > 0 ? 0 : 1;
}

}  // namespace
}  // namespace screp::cli

int main(int argc, char** argv) { return screp::cli::Main(argc, argv); }
