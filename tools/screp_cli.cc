// screp_cli: tiny load driver / control client for screp_server.
//
//   screp_cli --ops 500 --clients 4        # closed-loop load, then stats
//   screp_cli --shutdown                   # stop the server
//   screp_cli --ping                       # liveness probe
//   screp_cli --abuse                      # protocol-abuse regression
//
// Each client thread opens its own connection (= session) and runs
// single-shot transactions back-to-back: a read of a random key, or with
// probability --update-fraction an update of a random key.  Aborted
// transactions are retried (the closed loop), so `committed` should
// reach clients * ops on a healthy server.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "screp_client.h"

namespace screp::cli {
namespace {

struct Options {
  std::string host = "127.0.0.1";
  int port = 7411;
  int clients = 1;
  int ops = 100;
  double update_fraction = 0.25;
  int keys = 10000;
  uint64_t seed = 42;
  std::string level;  ///< when set, assert the server's level first
  bool ping = false;
  bool shutdown = false;
  bool abuse = false;
};

Options ParseOptions(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      SCREP_CHECK_MSG(i + 1 < argc, arg << " needs a value");
      return argv[++i];
    };
    if (arg == "--host") {
      opt.host = next();
    } else if (arg == "--port") {
      opt.port = std::stoi(next());
    } else if (arg == "--clients") {
      opt.clients = std::stoi(next());
    } else if (arg == "--ops") {
      opt.ops = std::stoi(next());
    } else if (arg == "--update-fraction") {
      opt.update_fraction = std::stod(next());
    } else if (arg == "--keys") {
      opt.keys = std::stoi(next());
    } else if (arg == "--seed") {
      opt.seed = std::stoull(next());
    } else if (arg == "--level") {
      opt.level = next();
    } else if (arg == "--ping") {
      opt.ping = true;
    } else if (arg == "--shutdown") {
      opt.shutdown = true;
    } else if (arg == "--abuse") {
      opt.abuse = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return opt;
}

/// Parses `name=<n>` out of a STATS line; -1 when absent.
int64_t StatsField(const std::string& stats, const std::string& name) {
  const std::string needle = " " + name + "=";
  const size_t pos = stats.find(needle);
  if (pos == std::string::npos) return -1;
  return std::atoll(stats.c_str() + pos + needle.size());
}

/// Regression for the server's line-protocol hardening: an over-long
/// request line must draw a reject (not unbounded buffering) and a dead
/// connection; a client dying mid-line with a transaction open must be
/// cleaned up; both must show in STATS while fresh connections still
/// commit.
int RunAbuse(const Options& opt) {
  auto fail = [](const char* what, const Status& status) {
    std::fprintf(stderr, "abuse: %s: %s\n", what,
                 status.ToString().c_str());
    return 1;
  };

  // 1. Oversized request line: 64 KiB with no '\n' anywhere.
  {
    client::Connection conn;
    Status status = conn.Connect(opt.host, opt.port);
    if (!status.ok()) return fail("connect (oversized)", status);
    (void)conn.SetRecvTimeout(5000);
    // The server may close before the whole blob is written (that IS
    // the fix), so a send error here is acceptable.
    (void)conn.SendRaw(std::string(64 * 1024, 'A'));
    auto reply = conn.ReadReply();
    if (reply.ok() && reply->rfind("ERR", 0) != 0) {
      std::fprintf(stderr, "abuse: oversized line answered \"%s\"\n",
                   reply->c_str());
      return 1;
    }
    // The connection must now be dead: no reply line may ever arrive.
    auto after = conn.ReadReply();
    if (after.ok()) {
      std::fprintf(stderr,
                   "abuse: connection alive after oversized line "
                   "(got \"%s\")\n",
                   after->c_str());
      return 1;
    }
  }

  // 2. Mid-line disconnect with a transaction open and a partial
  //    command buffered.
  {
    client::Connection conn;
    Status status = conn.Connect(opt.host, opt.port);
    if (!status.ok()) return fail("connect (mid-line)", status);
    if (!conn.Begin().ok() || !conn.Update(1, 7).ok()) {
      return fail("stage txn", Status::Internal("BEGIN/UPDATE refused"));
    }
    (void)conn.SendRaw("UPD");  // partial line, then vanish
    conn.Disconnect();
  }

  // 3. The server is still healthy and counted both events.
  client::Connection conn;
  Status status = conn.Connect(opt.host, opt.port);
  if (!status.ok()) return fail("connect (health)", status);
  (void)conn.SetRecvTimeout(5000);
  status = conn.Ping();
  if (!status.ok()) return fail("ping after abuse", status);

  int64_t oversized = -1;
  int64_t dropped = -1;
  // The handler threads publish their counters asynchronously.
  for (int attempt = 0; attempt < 100; ++attempt) {
    auto stats = conn.Stats();
    if (!stats.ok()) return fail("stats after abuse", stats.status());
    oversized = StatsField(*stats, "oversized");
    dropped = StatsField(*stats, "dropped_midline");
    if (oversized >= 1 && dropped >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  if (oversized < 1 || dropped < 1) {
    std::fprintf(stderr,
                 "abuse: counters never showed up (oversized=%lld "
                 "dropped_midline=%lld)\n",
                 static_cast<long long>(oversized),
                 static_cast<long long>(dropped));
    return 1;
  }

  // A real transaction still commits (closed loop over aborts).
  for (int attempt = 0;; ++attempt) {
    if (!conn.Begin().ok() || !conn.Update(3, 11).ok()) {
      return fail("txn after abuse",
                  Status::Internal("BEGIN/UPDATE refused"));
    }
    auto commit = conn.Commit();
    if (commit.ok()) break;
    if (commit.status().code() != StatusCode::kAborted || attempt >= 50) {
      return fail("commit after abuse", commit.status());
    }
  }
  conn.Quit();

  std::printf("abuse: PASS (oversized=%lld dropped_midline=%lld)\n",
              static_cast<long long>(oversized),
              static_cast<long long>(dropped));
  return 0;
}

int Main(int argc, char** argv) {
  const Options opt = ParseOptions(argc, argv);

  if (opt.abuse) return RunAbuse(opt);

  if (opt.ping || opt.shutdown) {
    client::Connection conn;
    Status status = conn.Connect(opt.host, opt.port);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    status = opt.ping ? conn.Ping() : conn.Shutdown();
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("%s\n", opt.ping ? "PONG" : "server shutting down");
    return 0;
  }

  std::atomic<int64_t> committed{0};
  std::atomic<int64_t> retries{0};
  std::atomic<int> failures{0};
  Rng seed_rng(opt.seed);
  std::vector<Rng> rngs;
  for (int c = 0; c < opt.clients; ++c) rngs.push_back(seed_rng.Fork());

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < opt.clients; ++c) {
    threads.emplace_back([&, c]() {
      client::Connection conn;
      Status status = conn.Connect(opt.host, opt.port);
      if (!status.ok()) {
        std::fprintf(stderr, "client %d: %s\n", c,
                     status.ToString().c_str());
        failures.fetch_add(1);
        return;
      }
      if (!opt.level.empty()) {
        status = conn.Level(opt.level);
        if (!status.ok()) {
          std::fprintf(stderr, "client %d: %s\n", c,
                       status.ToString().c_str());
          failures.fetch_add(1);
          return;
        }
      }
      Rng& rng = rngs[static_cast<size_t>(c)];
      for (int op = 0; op < opt.ops; ++op) {
        const bool update = rng.NextBool(opt.update_fraction);
        const int64_t key = rng.NextInRange(0, opt.keys - 1);
        for (;;) {
          if (!conn.Begin().ok()) {
            failures.fetch_add(1);
            return;
          }
          const Status op_status =
              update ? conn.Update(key, rng.NextInRange(0, 1 << 20))
                     : conn.Read(key);
          if (!op_status.ok()) {
            failures.fetch_add(1);
            return;
          }
          auto commit = conn.Commit();
          if (commit.ok()) {
            committed.fetch_add(1);
            break;
          }
          if (commit.status().code() != StatusCode::kAborted) {
            std::fprintf(stderr, "client %d: %s\n", c,
                         commit.status().ToString().c_str());
            failures.fetch_add(1);
            return;
          }
          retries.fetch_add(1);
        }
      }
      conn.Quit();
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double elapsed_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - start)
          .count();

  std::printf("screp_cli: %lld committed, %lld retries, %.0f ops/sec "
              "over %d connection(s)\n",
              static_cast<long long>(committed.load()),
              static_cast<long long>(retries.load()),
              static_cast<double>(committed.load()) / elapsed_s,
              opt.clients);
  if (failures.load() > 0) {
    std::fprintf(stderr, "screp_cli: %d client(s) failed\n",
                 failures.load());
    return 1;
  }
  return committed.load() > 0 ? 0 : 1;
}

}  // namespace
}  // namespace screp::cli

int main(int argc, char** argv) { return screp::cli::Main(argc, argv); }
