#!/usr/bin/env python3
"""Bench regression gate: compare a fresh BENCH_*.json against a committed
baseline with per-metric tolerance bands, exit nonzero on regression.

Usage:
    bench_gate.py --baseline BENCH_saturation.json \
                  --fresh build/BENCH_saturation.json
    bench_gate.py --self-test

The driver kind is detected from the "driver" field of the baseline; each
kind gates the metrics that matter for it:

  saturation (and any ExperimentResult-based driver): per-run-tag
      throughput floor, latency-percentile ceilings, committed floor,
      shed-count drift bands, and — when runs embed a profile — a hard
      zero on conservation violations.
  micro_components: per-(window, ws_size) certification-throughput and
      speedup floors; apply-lane speedup floors.
  micro_components_network: message-reduction floor.
  micro_components_hotpath: per-hot-path A/B speedup floors (wall-clock,
      so the band is wide), a hard >= 2x requirement on the best path,
      and a hard byte-identity requirement (the memoized encodings must
      match the fresh encoders bit for bit).
  micro_components_shards: per-lane-count certified-throughput scaling
      floors (virtual time, so the band is tight), a hard >= 2.5x
      requirement at 4 lanes, and a hard audit-clean requirement on the
      partial-replication end-to-end run.
  fault_timeline_health: every fault scenario must still be detected by
      its matching detector within a detection-latency band; clean-run
      detector firings are a hard zero (no false-positive tolerance).
  realtime (--realtime, no baseline): the wall-clock closed-loop bench —
      progress and audit floors only, never latency ceilings, because
      wall-clock numbers do not transfer across hosts.

Tolerances are deliberately loose one-sided bands: the simulator is
deterministic, so same-config same-seed runs reproduce exactly, but the
gate also has to pass when a legitimate change shifts numbers a little.
Only stdlib; no third-party dependencies.
"""

import argparse
import json
import sys

# One-sided tolerance bands.
THROUGHPUT_FLOOR = 0.90      # fresh >= 0.90 * base
COMMITTED_FLOOR = 0.90
LATENCY_CEILING = 1.15       # fresh <= 1.15 * base (plus absolute slack)
LATENCY_SLACK_MS = 1.0       # ignores ratio noise on sub-ms percentiles
SHED_ABS_SLACK = 50          # shed counts drift with timing; allow
SHED_REL_SLACK = 0.5         # max(abs, rel * base) in either direction
CERT_SPEEDUP_FLOOR = 0.25    # wall-clock micro-bench: +/-2x host noise
LANES_SPEEDUP_FLOOR = 0.90   # virtual-time makespan: deterministic
HOTPATH_SPEEDUP_FLOOR = 0.25  # wall-clock A/B: same noise band
HOTPATH_BEST_MIN = 2.0       # best hot path must stay >= 2x, absolutely
SHARD_SPEEDUP_FLOOR = 0.90   # virtual-time certified TPS: deterministic
SHARD_MIN_AT_4 = 2.5         # 4 lanes must stay >= 2.5x single-stream
NETWORK_REDUCTION_FLOOR = 0.85
HEALTH_LATENCY_REL = 1.5     # detection may be 1.5x base samples + 2 ...
HEALTH_LATENCY_ABS = 2       # ... but never past the scenario bound
REALTIME_OPS_FLOOR = 50.0    # wall-clock throughput: a bare progress
                             # floor, deliberately far below any host


class Gate:
    """Collects pass/fail verdicts and renders the report."""

    def __init__(self):
        self.failures = []
        self.checked = 0

    def check(self, label, ok, detail):
        self.checked += 1
        status = "ok  " if ok else "FAIL"
        print(f"  [{status}] {label}: {detail}")
        if not ok:
            self.failures.append(f"{label}: {detail}")

    def floor(self, label, fresh, base, ratio):
        bound = base * ratio
        self.check(label, fresh >= bound,
                   f"fresh {fresh:.4g} vs base {base:.4g} "
                   f"(floor {bound:.4g} = {ratio:.0%})")

    def ceiling_ms(self, label, fresh, base):
        bound = base * LATENCY_CEILING + LATENCY_SLACK_MS
        self.check(label, fresh <= bound,
                   f"fresh {fresh:.4g} ms vs base {base:.4g} ms "
                   f"(ceiling {bound:.4g} ms)")

    def drift(self, label, fresh, base):
        slack = max(SHED_ABS_SLACK, SHED_REL_SLACK * base)
        self.check(label, abs(fresh - base) <= slack,
                   f"fresh {fresh:g} vs base {base:g} (± {slack:g})")


def gate_experiment_runs(gate, base, fresh):
    """ExperimentResult-based drivers: {"runs": [{"tag", "result"}...]}."""
    fresh_by_tag = {run["tag"]: run["result"] for run in fresh.get("runs", [])}
    for run in base.get("runs", []):
        tag, b = run["tag"], run["result"]
        f = fresh_by_tag.get(tag)
        if f is None:
            gate.check(f"{tag}", False, "run missing from fresh output")
            continue
        gate.floor(f"{tag} throughput_tps", f["throughput_tps"],
                   b["throughput_tps"], THROUGHPUT_FLOOR)
        gate.floor(f"{tag} committed", f["committed"], b["committed"],
                   COMMITTED_FLOOR)
        for pct in ("p50", "p95", "p99"):
            gate.ceiling_ms(f"{tag} {pct}", f["response_ms"][pct],
                            b["response_ms"][pct])
        for shed in ("lb_shed", "certifier_shed", "client_timeouts"):
            gate.drift(f"{tag} {shed}", f.get(shed, 0), b.get(shed, 0))
        profile = f.get("profile")
        if profile is not None:
            violations = profile["conservation"]["violations"]
            gate.check(f"{tag} conservation", violations == 0,
                       f"{violations} violation(s) over "
                       f"{profile['conservation']['checked']} attempts")


def gate_micro_components(gate, base, fresh):
    # The certifier micro-bench measures *wall-clock* rates, which do
    # not transfer across hosts (or survive a loaded CI runner).  Gate
    # only the indexed-vs-linear speedup — measured under identical
    # conditions, but still ~2x noisy — and leave the absolute rates to
    # the driver's own self-checks.  The apply-lane speedups, by
    # contrast, are virtual-time makespans and reproduce exactly.
    fresh_cert = {(row["window"], row["ws_size"]): row
                  for row in fresh.get("certifier", [])}
    for row in base.get("certifier", []):
        key = (row["window"], row["ws_size"])
        f = fresh_cert.get(key)
        label = f"certifier w={key[0]} ws={key[1]}"
        if f is None:
            gate.check(label, False, "row missing from fresh output")
            continue
        gate.floor(f"{label} speedup", f["speedup"], row["speedup"],
                   CERT_SPEEDUP_FLOOR)
    fresh_lanes = {row["lanes"]: row for row in fresh.get("apply_lanes", [])}
    for row in base.get("apply_lanes", []):
        f = fresh_lanes.get(row["lanes"])
        label = f"apply_lanes lanes={row['lanes']}"
        if f is None:
            gate.check(label, False, "row missing from fresh output")
            continue
        gate.floor(f"{label} speedup", f["speedup_vs_serial"],
                   row["speedup_vs_serial"], LANES_SPEEDUP_FLOOR)


def gate_hotpath(gate, base, fresh):
    """micro_components --hotpath-json: cached-plan / zero-copy / WAL A/B.

    Per-path speedups are wall-clock ratios, so each gets the same wide
    noise band as the certifier micro-bench.  Two checks are absolute:
    the best path must stay a >= 2x win (the PR's headline claim), and
    byte_identity must hold — the memoized serialization diverging from
    the fresh encoders is a correctness bug, not a perf regression.
    """
    fresh_paths = fresh.get("paths", {})
    best = 0.0
    for name, b in base.get("paths", {}).items():
        f = fresh_paths.get(name)
        if f is None:
            gate.check(f"path {name}", False, "path missing from fresh output")
            continue
        gate.floor(f"{name} speedup", f["speedup"], b["speedup"],
                   HOTPATH_SPEEDUP_FLOOR)
        best = max(best, f["speedup"])
    gate.check("best-path speedup", best >= HOTPATH_BEST_MIN,
               f"best fresh speedup {best:.2f}x vs required "
               f"{HOTPATH_BEST_MIN:.1f}x")
    gate.check("byte identity", fresh.get("byte_identity", False) is True,
               f"byte_identity={fresh.get('byte_identity')} — memoized "
               "encodings must match the fresh encoders exactly")


def gate_shards(gate, base, fresh):
    """micro_components --shard-sweep: partitioned certification scaling.

    The sweep runs in simulated time, so the per-K speedups reproduce
    exactly and get a tight floor.  Two checks are absolute: 4 lanes must
    keep a >= 2.5x certified-throughput win over the single-stream
    Certifier (the tentpole claim), and the K = 4 partial-replication
    end-to-end run must be audit-clean — a sharded history that is not
    1SR-equivalent is a correctness bug, not a perf regression.
    """
    fresh_sweep = {row["lanes"]: row for row in fresh.get("sweep", [])}
    speedup_at_4 = 0.0
    for row in base.get("sweep", []):
        f = fresh_sweep.get(row["lanes"])
        label = f"shards lanes={row['lanes']}"
        if f is None:
            gate.check(label, False, "lane count missing from fresh output")
            continue
        gate.floor(f"{label} speedup", f["speedup_vs_single"],
                   row["speedup_vs_single"], SHARD_SPEEDUP_FLOOR)
        if row["lanes"] == 4:
            speedup_at_4 = f["speedup_vs_single"]
    gate.check("4-lane scaling floor", speedup_at_4 >= SHARD_MIN_AT_4,
               f"fresh 4-lane speedup {speedup_at_4:.2f}x vs required "
               f"{SHARD_MIN_AT_4:.1f}x")
    e2e = fresh.get("e2e", {})
    gate.check("partial-replication audit", e2e.get("audit_ok", False) is True,
               f"audit_ok={e2e.get('audit_ok')} over "
               f"{e2e.get('audit_checks', '?')} checks")
    base_e2e = base.get("e2e", {})
    gate.floor("e2e committed", e2e.get("committed", 0),
               base_e2e.get("committed", 0), COMMITTED_FLOOR)


def gate_health(gate, base, fresh):
    """fault_timeline --health-sweep: detection latency + false positives.

    Every fault must still be detected by its matching detector, within
    both the scenario's hard sample bound and a drift band around the
    committed baseline latency.  Clean runs are a hard zero: a single
    detector firing on a default-config figure run is a regression, full
    stop — there is no tolerance band for false positives.
    """
    fresh_faults = {row["fault"]: row for row in fresh.get("faults", [])}
    for row in base.get("faults", []):
        f = fresh_faults.get(row["fault"])
        label = f"fault {row['fault']}"
        if f is None:
            gate.check(label, False, "scenario missing from fresh output")
            continue
        gate.check(f"{label} detected", f.get("detected", False),
                   f"detector {row['detector']} "
                   f"fired={f.get('fired', '') or '(none)'}")
        if not f.get("detected", False):
            continue
        bound = f["bound_samples"]
        drift = row["detection_samples"] * HEALTH_LATENCY_REL + \
            HEALTH_LATENCY_ABS
        limit = min(bound, drift)
        gate.check(f"{label} latency",
                   f["detection_samples"] <= limit,
                   f"fresh {f['detection_samples']} samples vs "
                   f"base {row['detection_samples']} "
                   f"(limit {limit:g} = min(bound {bound}, drift "
                   f"{drift:g}))")
    fresh_clean = {row["run"]: row for row in fresh.get("clean", [])}
    for row in base.get("clean", []):
        f = fresh_clean.get(row["run"])
        label = f"clean {row['run']}"
        if f is None:
            gate.check(label, False, "clean run missing from fresh output")
            continue
        gate.check(f"{label} quiet", f.get("firings", 1) == 0,
                   f"{f.get('firings')} firing(s) "
                   f"[{f.get('fired', '') or 'quiet'}] — must be 0")


def gate_network(gate, base, fresh):
    gate.floor("message_reduction", fresh["message_reduction"],
               base["message_reduction"], NETWORK_REDUCTION_FLOOR)
    gate.check("batched writesets",
               fresh["batched"]["writesets"] == base["batched"]["writesets"],
               f"fresh {fresh['batched']['writesets']} vs "
               f"base {base['batched']['writesets']}")


def gate_realtime(fresh):
    """bench/realtime: wall-clock closed loop over ThreadRuntime.

    Wall-clock numbers do not transfer across hosts, so there is no
    committed baseline and no latency ceiling — only floors that any
    functioning build clears by a wide margin (the run made progress,
    the audit machinery was on and clean, the event log kept every
    event) and hard zeros on consistency verdicts.
    """
    gate = Gate()
    print("gating driver 'realtime' (floors only, no baseline)")
    committed = fresh.get("committed", 0)
    gate.check("committed > 0", committed > 0,
               f"{committed} transactions committed")
    ops = fresh.get("ops_per_sec", 0.0)
    gate.check("throughput floor", ops >= REALTIME_OPS_FLOOR,
               f"{ops:.0f} ops/sec vs floor {REALTIME_OPS_FLOOR:.0f}")
    audit = fresh.get("audit", {})
    gate.check("audit enabled", audit.get("enabled", False) is True,
               f"enabled={audit.get('enabled')}")
    gate.check("online audit clean", audit.get("online_ok", False) is True,
               f"online_ok={audit.get('online_ok')} "
               f"({audit.get('violations', '?')} violation(s))")
    gate.check("replay audit clean", audit.get("replay_ok", False) is True,
               f"replay_ok={audit.get('replay_ok')} over "
               f"{audit.get('events', '?')} events")
    dropped = audit.get("events_dropped", -1)
    gate.check("event log complete", dropped == 0,
               f"{dropped} event(s) dropped — replay must see everything")
    if gate.failures:
        print(f"REGRESSION: {len(gate.failures)} of {gate.checked} "
              "checks failed")
        return 1
    print(f"PASS: {gate.checked} checks")
    return 0


def run_gate(base, fresh):
    driver = base.get("driver", "")
    if fresh.get("driver", "") != driver:
        print(f"driver mismatch: baseline '{driver}' vs "
              f"fresh '{fresh.get('driver', '')}'")
        return 1
    gate = Gate()
    print(f"gating driver '{driver}'")
    if driver == "micro_components":
        gate_micro_components(gate, base, fresh)
    elif driver == "micro_components_network":
        gate_network(gate, base, fresh)
    elif driver == "micro_components_hotpath":
        gate_hotpath(gate, base, fresh)
    elif driver == "micro_components_shards":
        gate_shards(gate, base, fresh)
    elif driver == "fault_timeline_health":
        gate_health(gate, base, fresh)
    elif "runs" in base:
        gate_experiment_runs(gate, base, fresh)
    else:
        print(f"unknown driver '{driver}' with no runs array")
        return 1
    if gate.checked == 0:
        print("no checks ran — empty baseline?")
        return 1
    if gate.failures:
        print(f"REGRESSION: {len(gate.failures)} of {gate.checked} "
              "checks failed")
        return 1
    print(f"PASS: {gate.checked} checks")
    return 0


def self_test():
    """The gate must pass on identity and fail on planted regressions."""
    base = {
        "driver": "saturation",
        "runs": [{
            "tag": "ESC-c8",
            "result": {
                "throughput_tps": 650.0, "committed": 13000,
                "response_ms": {"mean": 12.0, "p50": 6.0, "p95": 39.0,
                                "p99": 64.0},
                "lb_shed": 0, "certifier_shed": 0, "client_timeouts": 0,
                "profile": {"conservation": {"checked": 1000,
                                             "violations": 0}},
            },
        }],
    }
    failures = []

    def expect(name, expected_rc, fresh):
        print(f"-- self-test: {name} (expect rc={expected_rc})")
        rc = run_gate(base, fresh)
        if rc != expected_rc:
            failures.append(f"{name}: rc={rc}, expected {expected_rc}")

    identity = json.loads(json.dumps(base))
    expect("identity passes", 0, identity)

    slow_p99 = json.loads(json.dumps(base))
    # A 20% p99 regression must trip the gate: 64 ms -> 76.8 ms exceeds
    # the 64 * 1.15 + 1 = 74.6 ms ceiling.
    slow_p99["runs"][0]["result"]["response_ms"]["p99"] = \
        base["runs"][0]["result"]["response_ms"]["p99"] * 1.20
    expect("20% p99 regression fails", 1, slow_p99)

    low_tps = json.loads(json.dumps(base))
    low_tps["runs"][0]["result"]["throughput_tps"] = 650.0 * 0.8
    expect("throughput regression fails", 1, low_tps)

    broken_conservation = json.loads(json.dumps(base))
    broken_conservation["runs"][0]["result"]["profile"]["conservation"][
        "violations"] = 1
    expect("conservation violation fails", 1, broken_conservation)

    missing_run = {"driver": "saturation", "runs": []}
    expect("missing run fails", 1, missing_run)

    health_base = {
        "driver": "fault_timeline_health",
        "faults": [{
            "fault": "crash", "detector": "lag_divergence",
            "injected_at_ms": 4000, "detected": True,
            "detection_samples": 6, "bound_samples": 16,
            "fired": "lag_divergence",
        }],
        "clean": [{"run": "fig3", "firings": 0, "fired": ""}],
    }

    def expect_health(name, expected_rc, fresh):
        print(f"-- self-test: {name} (expect rc={expected_rc})")
        rc = run_gate(health_base, fresh)
        if rc != expected_rc:
            failures.append(f"{name}: rc={rc}, expected {expected_rc}")

    expect_health("health identity passes", 0,
                  json.loads(json.dumps(health_base)))

    undetected = json.loads(json.dumps(health_base))
    undetected["faults"][0]["detected"] = False
    undetected["faults"][0]["fired"] = ""
    expect_health("undetected fault fails", 1, undetected)

    slow_detect = json.loads(json.dumps(health_base))
    # 6-sample base latency allows min(16, 6*1.5+2) = 11; 12 must fail.
    slow_detect["faults"][0]["detection_samples"] = 12
    expect_health("detection-latency regression fails", 1, slow_detect)

    false_positive = json.loads(json.dumps(health_base))
    false_positive["clean"][0]["firings"] = 1
    false_positive["clean"][0]["fired"] = "slo_fast_burn"
    expect_health("clean-run false positive fails", 1, false_positive)

    hotpath_base = {
        "driver": "micro_components_hotpath",
        "paths": {
            "plan_cache": {"base_per_sec": 1.2e6, "opt_per_sec": 1.5e6,
                           "speedup": 1.25},
            "writeset_encode": {"base_per_sec": 6.2e5, "opt_per_sec": 1.0e8,
                                "speedup": 160.0},
            "group_commit_wal": {"base_per_sec": 2.5e6, "opt_per_sec": 6.3e6,
                                 "speedup": 2.5},
        },
        "byte_identity": True,
    }

    def expect_hotpath(name, expected_rc, fresh):
        print(f"-- self-test: {name} (expect rc={expected_rc})")
        rc = run_gate(hotpath_base, fresh)
        if rc != expected_rc:
            failures.append(f"{name}: rc={rc}, expected {expected_rc}")

    expect_hotpath("hotpath identity passes", 0,
                   json.loads(json.dumps(hotpath_base)))

    lost_speedup = json.loads(json.dumps(hotpath_base))
    # The zero-copy fan-out collapsing to parity must trip both its own
    # floor (160 * 0.25 = 40) and the absolute best-path requirement once
    # the WAL path dips under 2x.
    lost_speedup["paths"]["writeset_encode"]["speedup"] = 1.0
    lost_speedup["paths"]["group_commit_wal"]["speedup"] = 1.5
    expect_hotpath("hot-path speedup regression fails", 1, lost_speedup)

    broken_bytes = json.loads(json.dumps(hotpath_base))
    broken_bytes["byte_identity"] = False
    expect_hotpath("byte-identity break fails", 1, broken_bytes)

    missing_path = json.loads(json.dumps(hotpath_base))
    del missing_path["paths"]["plan_cache"]
    expect_hotpath("missing hot path fails", 1, missing_path)

    shards_base = {
        "driver": "micro_components_shards",
        "sweep": [
            {"lanes": 1, "certified_per_sec": 8300.0,
             "speedup_vs_single": 1.0},
            {"lanes": 2, "certified_per_sec": 16500.0,
             "speedup_vs_single": 1.99},
            {"lanes": 4, "certified_per_sec": 33000.0,
             "speedup_vs_single": 3.97},
            {"lanes": 8, "certified_per_sec": 65500.0,
             "speedup_vs_single": 7.88},
        ],
        "e2e": {"lanes": 4, "committed": 1578, "audit_checks": 16646,
                "audit_ok": True},
    }

    def expect_shards(name, expected_rc, fresh):
        print(f"-- self-test: {name} (expect rc={expected_rc})")
        rc = run_gate(shards_base, fresh)
        if rc != expected_rc:
            failures.append(f"{name}: rc={rc}, expected {expected_rc}")

    expect_shards("shards identity passes", 0,
                  json.loads(json.dumps(shards_base)))

    flat_scaling = json.loads(json.dumps(shards_base))
    # Partitioned certification collapsing back onto one stream: every
    # lane count reports ~1x.  Must trip both the per-K floors and the
    # absolute 2.5x requirement at 4 lanes.
    for row in flat_scaling["sweep"]:
        row["speedup_vs_single"] = 1.1
        row["certified_per_sec"] = 9000.0
    expect_shards("shard-scaling regression fails", 1, flat_scaling)

    dirty_audit = json.loads(json.dumps(shards_base))
    dirty_audit["e2e"]["audit_ok"] = False
    expect_shards("sharded audit violation fails", 1, dirty_audit)

    missing_lane = json.loads(json.dumps(shards_base))
    missing_lane["sweep"] = [row for row in missing_lane["sweep"]
                             if row["lanes"] != 8]
    expect_shards("missing lane count fails", 1, missing_lane)

    realtime_base = {
        "bench": "realtime", "clients": 8, "replicas": 2, "level": "LSC",
        "duration_s": 2.0, "committed": 6500, "aborted": 2, "retries": 2,
        "ops_per_sec": 3250.0,
        "latency_ms": {"p50": 2.2, "p95": 4.1, "p99": 6.0, "max": 12.0},
        "audit": {"enabled": True, "online_ok": True, "replay_ok": True,
                  "violations": 0, "events": 32000, "events_dropped": 0},
    }

    def expect_realtime(name, expected_rc, fresh):
        print(f"-- self-test: {name} (expect rc={expected_rc})")
        rc = gate_realtime(fresh)
        if rc != expected_rc:
            failures.append(f"{name}: rc={rc}, expected {expected_rc}")

    expect_realtime("realtime identity passes", 0,
                    json.loads(json.dumps(realtime_base)))

    no_progress = json.loads(json.dumps(realtime_base))
    no_progress["committed"] = 0
    no_progress["ops_per_sec"] = 0.0
    expect_realtime("zero-commit run fails", 1, no_progress)

    violating = json.loads(json.dumps(realtime_base))
    violating["audit"]["online_ok"] = False
    violating["audit"]["violations"] = 3
    expect_realtime("audit violation fails", 1, violating)

    lossy_log = json.loads(json.dumps(realtime_base))
    lossy_log["audit"]["events_dropped"] = 17
    expect_realtime("dropped-events run fails", 1, lossy_log)

    # A slow host must NOT fail the gate: 10x latency + 10x fewer ops
    # still clears every floor (there are deliberately no ceilings).
    slow_host = json.loads(json.dumps(realtime_base))
    slow_host["ops_per_sec"] = 325.0
    slow_host["committed"] = 650
    slow_host["latency_ms"] = {"p50": 22.0, "p95": 41.0, "p99": 60.0,
                               "max": 120.0}
    expect_realtime("slow-host run still passes", 0, slow_host)

    if failures:
        print("self-test FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print("self-test PASS")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", help="committed BENCH_*.json")
    parser.add_argument("--fresh", help="freshly produced BENCH_*.json")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate catches planted regressions")
    parser.add_argument("--realtime", metavar="FRESH",
                        help="gate a bench/realtime JSON (floors only; "
                             "wall-clock numbers carry no baseline)")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    if args.realtime:
        with open(args.realtime, encoding="utf-8") as f:
            return gate_realtime(json.load(f))
    if not args.baseline or not args.fresh:
        parser.error("--baseline and --fresh are required (or --self-test)")
    with open(args.baseline, encoding="utf-8") as f:
        base = json.load(f)
    with open(args.fresh, encoding="utf-8") as f:
        fresh = json.load(f)
    return run_gate(base, fresh)


if __name__ == "__main__":
    sys.exit(main())
