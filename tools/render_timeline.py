#!/usr/bin/env python3
"""Render a fault-timeline bundle as a self-contained HTML dashboard.

Input: the --timeline-json bundle written by the bench drivers /
Observability::WriteTimelineJson():

    {"sampler":  {"period_us": ..., "timestamps": [...],
                  "series": {name: [null|num, ...]},
                  "counter_deltas": {name: [...]}},
     "health":   {"states": [0|1|2, ...],
                  "detectors": {name: [0|1, ...]},
                  "transitions": [{"at":..,"from":..,"to":..,"trigger":..}]}
                 (or null when the run did not monitor health),
     "faults":   [{"kind":"crash|recover|failover","at":..,
                   "component":"...","replica":N}, ...]}

Output: one HTML file, no external assets: stacked time-series panels
(per-replica version lag, throughput/error rates, queue depths), a
health-state band, per-detector firing strips, and fault markers, with a
crosshair tooltip and a plain data table. Stdlib only.
"""

import argparse
import html
import json
import math
import sys

# ---------------------------------------------------------------------------
# Palette: the validated reference categorical order (slots assigned in this
# fixed order, never cycled), status colors for health states, and the chart
# chrome inks. Light and dark are both selected steps, swapped via CSS
# custom properties.
CATEGORICAL_LIGHT = ["#2a78d6", "#eb6834", "#1baf7a", "#eda100",
                     "#e87ba4", "#008300", "#4a3aa7", "#e34948"]
CATEGORICAL_DARK = ["#3987e5", "#d95926", "#199e70", "#c98500",
                    "#d55181", "#008300", "#9085e9", "#e66767"]
# Health states are status, not identity: good / warning / critical.
STATE_COLORS = {0: "var(--status-good)", 1: "var(--status-warning)",
                2: "var(--status-critical)"}
STATE_NAMES = {0: "healthy", 1: "degraded", 2: "critical"}

PLOT_W = 880
PLOT_H = 150
MARGIN_L = 64
MARGIN_R = 16
STRIP_H = 22

CSS = """
:root { color-scheme: light dark; }
.viz-root {
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --text-primary: #0b0b0b; --text-secondary: #52514e; --muted: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7; --border: rgba(11,11,11,0.10);
  --status-good: #0ca30c; --status-warning: #fab219;
  --status-serious: #ec835a; --status-critical: #d03b3b;
%LIGHT_SLOTS%
  color-scheme: light;
  background: var(--page); color: var(--text-primary);
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  margin: 0; padding: 24px; min-height: 100vh; box-sizing: border-box;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19; --page: #0d0d0d;
    --text-primary: #ffffff; --text-secondary: #c3c2b7;
    --grid: #2c2c2a; --axis: #383835; --border: rgba(255,255,255,0.10);
%DARK_SLOTS%
  }
}
:root[data-theme="dark"] .viz-root {
  color-scheme: dark;
  --surface-1: #1a1a19; --page: #0d0d0d;
  --text-primary: #ffffff; --text-secondary: #c3c2b7;
  --grid: #2c2c2a; --axis: #383835; --border: rgba(255,255,255,0.10);
%DARK_SLOTS%
}
.viz-root h1 { font-size: 18px; font-weight: 600; margin: 0 0 2px; }
.viz-root .subtitle { color: var(--text-secondary); font-size: 13px;
  margin: 0 0 18px; }
.panel { background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 14px 16px 10px; margin-bottom: 14px;
  max-width: %CARD_W%px; }
.panel h2 { font-size: 13px; font-weight: 600; margin: 0 0 2px; }
.legend { display: flex; flex-wrap: wrap; gap: 4px 14px;
  margin: 2px 0 6px; font-size: 12px; color: var(--text-secondary); }
.legend .key { display: inline-block; width: 14px; height: 0;
  border-top: 2px solid; border-radius: 1px; vertical-align: middle;
  margin-right: 5px; }
.legend .swatch { display: inline-block; width: 10px; height: 10px;
  border-radius: 2px; vertical-align: -1px; margin-right: 5px; }
.panel svg { display: block; }
.panel svg text { font-family: inherit; }
.axis-label { fill: var(--muted); font-size: 10px;
  font-variant-numeric: tabular-nums; }
.strip-label { fill: var(--text-secondary); font-size: 11px; }
.fault-label { fill: var(--text-secondary); font-size: 10px; }
.quiet-note { color: var(--text-secondary); font-size: 12px; margin: 4px 0; }
.tooltip { position: fixed; pointer-events: none; display: none;
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 6px; box-shadow: 0 2px 10px rgba(0,0,0,0.18);
  padding: 8px 10px; font-size: 12px; z-index: 10; max-width: 280px; }
.tooltip .tt-time { color: var(--text-secondary); margin-bottom: 4px; }
.tooltip .tt-row { display: flex; align-items: center; gap: 6px;
  white-space: nowrap; }
.tooltip .tt-val { font-weight: 600; font-variant-numeric: tabular-nums; }
.tooltip .tt-name { color: var(--text-secondary); }
details.table-view { max-width: %CARD_W%px; margin-top: 6px;
  font-size: 12px; }
details.table-view summary { cursor: pointer; color: var(--text-secondary); }
details.table-view table { border-collapse: collapse; margin-top: 8px;
  font-variant-numeric: tabular-nums; }
details.table-view th, details.table-view td { border: 1px solid var(--grid);
  padding: 2px 8px; text-align: right; }
details.table-view th { color: var(--text-secondary); font-weight: 500; }
.theme-toggle { float: right; font: inherit; font-size: 12px;
  color: var(--text-secondary); background: var(--surface-1);
  border: 1px solid var(--border); border-radius: 6px; padding: 4px 10px;
  cursor: pointer; }
"""

TOOLTIP_JS = """
(function () {
  var data = JSON.parse(document.getElementById('timeline-data').textContent);
  var tip = document.getElementById('tooltip');
  var marginL = %MARGIN_L%, plotW = %PLOT_W%;
  function fmt(v) {
    if (v === null || v === undefined) return null;
    if (Math.abs(v) >= 1000) return Math.round(v).toLocaleString();
    return (Math.round(v * 100) / 100).toLocaleString();
  }
  document.querySelectorAll('svg[data-panel]').forEach(function (svg) {
    var panel = data.panels[svg.getAttribute('data-panel')];
    var cross = svg.querySelector('.crosshair');
    function clear() {
      tip.style.display = 'none';
      if (cross) cross.setAttribute('visibility', 'hidden');
    }
    function move(ev) {
      var rect = svg.getBoundingClientRect();
      var scale = rect.width / svg.viewBox.baseVal.width;
      var x = (ev.clientX - rect.left) / scale;
      if (x < marginL || x > marginL + plotW || !data.times.length) {
        clear(); return;
      }
      var t = data.t0 + (x - marginL) / plotW * (data.t1 - data.t0);
      var best = 0, bestd = Infinity;
      for (var i = 0; i < data.times.length; i++) {
        var d = Math.abs(data.times[i] - t);
        if (d < bestd) { bestd = d; best = i; }
      }
      var sx = marginL + (data.times[best] - data.t0) /
               (data.t1 - data.t0 || 1) * plotW;
      if (cross) {
        cross.setAttribute('x1', sx); cross.setAttribute('x2', sx);
        cross.setAttribute('visibility', 'visible');
      }
      while (tip.firstChild) tip.removeChild(tip.firstChild);
      var head = document.createElement('div');
      head.className = 'tt-time';
      head.textContent = 't = ' + data.times[best].toFixed(2) + ' s';
      tip.appendChild(head);
      panel.series.forEach(function (s) {
        var v = fmt(s.values[best]);
        var row = document.createElement('div');
        row.className = 'tt-row';
        var key = document.createElement('span');
        key.className = 'key';
        key.style.borderTop = '2px solid ' + s.color;
        key.style.width = '12px'; key.style.display = 'inline-block';
        var val = document.createElement('span');
        val.className = 'tt-val';
        val.textContent = v === null ? '—' : v;
        var name = document.createElement('span');
        name.className = 'tt-name';
        name.textContent = s.name;
        row.appendChild(key); row.appendChild(val); row.appendChild(name);
        tip.appendChild(row);
      });
      if (panel.states) {
        var st = panel.states[best];
        if (st !== null && st !== undefined) {
          var row2 = document.createElement('div');
          row2.className = 'tt-row';
          var val2 = document.createElement('span');
          val2.className = 'tt-val';
          val2.textContent = data.stateNames[st];
          var name2 = document.createElement('span');
          name2.className = 'tt-name';
          name2.textContent = 'health';
          row2.appendChild(val2); row2.appendChild(name2);
          tip.appendChild(row2);
        }
      }
      tip.style.display = 'block';
      var tx = ev.clientX + 14, ty = ev.clientY + 14;
      if (tx + tip.offsetWidth > window.innerWidth - 8) {
        tx = ev.clientX - tip.offsetWidth - 14;
      }
      if (ty + tip.offsetHeight > window.innerHeight - 8) {
        ty = ev.clientY - tip.offsetHeight - 14;
      }
      tip.style.left = tx + 'px'; tip.style.top = ty + 'px';
    }
    svg.addEventListener('pointermove', move);
    svg.addEventListener('pointerleave', clear);
  });
  var toggle = document.getElementById('theme-toggle');
  if (toggle) toggle.addEventListener('click', function () {
    var root = document.documentElement;
    var dark = root.getAttribute('data-theme') === 'dark' ||
        (!root.getAttribute('data-theme') &&
         window.matchMedia('(prefers-color-scheme: dark)').matches);
    root.setAttribute('data-theme', dark ? 'light' : 'dark');
  });
})();
"""


def nice_ticks(lo, hi, n=4):
    """Clean 1-2-5 ticks covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1
    span = hi - lo
    raw = span / max(n, 1)
    mag = 10 ** math.floor(math.log10(raw))
    for mult in (1, 2, 5, 10):
        step = mult * mag
        if step >= raw:
            break
    first = math.ceil(lo / step) * step
    ticks = []
    t = first
    while t <= hi + 1e-9:
        ticks.append(round(t, 10))
        t += step
    return ticks


def fmt_tick(v):
    if v == int(v):
        return f"{int(v):,}"
    return f"{v:g}"


class Scale:
    def __init__(self, lo, hi, out_lo, out_hi):
        self.lo, self.hi = lo, hi
        self.out_lo, self.out_hi = out_lo, out_hi

    def __call__(self, v):
        span = self.hi - self.lo or 1.0
        return self.out_lo + (v - self.lo) / span * (self.out_hi - self.out_lo)


def line_path(times, values, xs, ys):
    """SVG path with gaps at nulls."""
    parts = []
    pen_up = True
    for t, v in zip(times, values):
        if v is None:
            pen_up = True
            continue
        cmd = "M" if pen_up else "L"
        parts.append(f"{cmd}{xs(t):.1f},{ys(v):.1f}")
        pen_up = False
    return " ".join(parts)


def fault_marker_svg(faults, xs, height):
    out = []
    for f in faults:
        x = xs(f["t"])
        label = f["kind"]
        if "replica" in f:
            label += f" r{f['replica']}"
        elif f.get("component"):
            label += f" {f['component']}"
        out.append(
            f'<line x1="{x:.1f}" y1="14" x2="{x:.1f}" y2="{height}" '
            f'stroke="var(--muted)" stroke-width="1"/>'
            f'<text x="{x + 3:.1f}" y="11" class="fault-label">'
            f'{html.escape(label)}</text>')
    return "".join(out)


def render_line_panel(pid, title, series, times, t0, t1, faults,
                      unit=""):
    """One line-chart panel: hairline grid, 2px lines, legend, crosshair."""
    height = PLOT_H + 34  # plot + x-axis band + fault-label headroom
    xs = Scale(t0, t1, MARGIN_L, MARGIN_L + PLOT_W)
    vmax = 0.0
    for s in series:
        for v in s["values"]:
            if v is not None:
                vmax = max(vmax, v)
    ticks = nice_ticks(0, vmax if vmax > 0 else 1)
    ys = Scale(0, ticks[-1], PLOT_H + 14, 14)

    grid = []
    for t in ticks:
        y = ys(t)
        grid.append(
            f'<line x1="{MARGIN_L}" y1="{y:.1f}" '
            f'x2="{MARGIN_L + PLOT_W}" y2="{y:.1f}" '
            f'stroke="var(--grid)" stroke-width="1"/>'
            f'<text x="{MARGIN_L - 6}" y="{y + 3:.1f}" class="axis-label" '
            f'text-anchor="end">{fmt_tick(t)}</text>')
    for t in nice_ticks(t0, t1, 8):
        if t < t0 or t > t1:
            continue
        x = xs(t)
        grid.append(
            f'<text x="{x:.1f}" y="{PLOT_H + 28}" class="axis-label" '
            f'text-anchor="middle">{fmt_tick(t)}s</text>')
    baseline = (f'<line x1="{MARGIN_L}" y1="{ys(0):.1f}" '
                f'x2="{MARGIN_L + PLOT_W}" y2="{ys(0):.1f}" '
                f'stroke="var(--axis)" stroke-width="1"/>')

    paths = []
    for s in series:
        d = line_path(times, s["values"], xs, ys)
        if d:
            paths.append(f'<path d="{d}" fill="none" stroke="{s["color"]}" '
                         f'stroke-width="2" stroke-linejoin="round" '
                         f'stroke-linecap="round"/>')

    crosshair = (f'<line class="crosshair" x1="0" y1="14" x2="0" '
                 f'y2="{PLOT_H + 14}" stroke="var(--axis)" '
                 f'stroke-width="1" visibility="hidden"/>')

    legend = "".join(
        f'<span><span class="key" style="border-color:{s["color"]}">'
        f'</span>{html.escape(s["name"])}</span>' for s in series)

    card_w = MARGIN_L + PLOT_W + MARGIN_R
    unit_note = f" ({unit})" if unit else ""
    return f"""
<div class="panel">
<h2>{html.escape(title)}{html.escape(unit_note)}</h2>
<div class="legend">{legend}</div>
<svg data-panel="{pid}" viewBox="0 0 {card_w} {height}"
     width="100%" role="img" aria-label="{html.escape(title)}">
{"".join(grid)}{baseline}
{fault_marker_svg(faults, xs, PLOT_H + 14)}
{"".join(paths)}
{crosshair}
</svg>
</div>"""


def render_health_panel(pid, health, times, t0, t1, faults):
    """Health-state band plus one firing strip per active detector."""
    states = health.get("states") or []
    detectors = health.get("detectors") or {}
    active = [(name, track) for name, track in detectors.items()
              if any(track)]
    quiet = [name for name, track in detectors.items() if not any(track)]

    n_strips = 1 + len(active)
    height = n_strips * (STRIP_H + 6) + 36
    xs = Scale(t0, t1, MARGIN_L, MARGIN_L + PLOT_W)

    # Align the health track with the tail of the sampler timestamps (the
    # monitor sees every sample once attached).
    offset = len(times) - len(states)

    def seg_rects(y, track, color_of):
        """Merge consecutive equal values into one rect per run."""
        rects = []
        i = 0
        while i < len(track):
            j = i
            while j + 1 < len(track) and track[j + 1] == track[i]:
                j += 1
            color = color_of(track[i])
            if color is not None and offset + i < len(times):
                x1 = xs(times[offset + i])
                x2 = xs(times[min(offset + j, len(times) - 1)])
                # Stretch each run half a sample left so bands abut.
                rects.append(
                    f'<rect x="{x1:.1f}" y="{y}" '
                    f'width="{max(x2 - x1, 2):.1f}" height="{STRIP_H}" '
                    f'rx="2" fill="{color}"/>')
            i = j + 1
        return rects

    rows = []
    y = 22
    rows.append(f'<text x="{MARGIN_L - 6}" y="{y + STRIP_H / 2 + 4}" '
                f'class="strip-label" text-anchor="end">state</text>')
    rows += seg_rects(y, states, lambda s: STATE_COLORS.get(s))
    y += STRIP_H + 6
    for name, track in active:
        rows.append(f'<text x="{MARGIN_L - 6}" y="{y + STRIP_H / 2 + 4}" '
                    f'class="strip-label" text-anchor="end">'
                    f'{html.escape(name)}</text>')
        rows += seg_rects(
            y, track,
            lambda v: "var(--status-serious)" if v else None)
        y += STRIP_H + 6

    for t in nice_ticks(t0, t1, 8):
        if t0 <= t <= t1:
            rows.append(f'<text x="{xs(t):.1f}" y="{y + 12}" '
                        f'class="axis-label" text-anchor="middle">'
                        f'{fmt_tick(t)}s</text>')

    crosshair = (f'<line class="crosshair" x1="0" y1="18" x2="0" '
                 f'y2="{y}" stroke="var(--axis)" stroke-width="1" '
                 f'visibility="hidden"/>')

    legend = "".join(
        f'<span><span class="swatch" style="background:{STATE_COLORS[s]}">'
        f'</span>{STATE_NAMES[s]}</span>' for s in (0, 1, 2))
    legend += ('<span><span class="swatch" '
               'style="background:var(--status-serious)"></span>'
               'detector firing</span>')

    quiet_note = ""
    if quiet:
        quiet_note = (f'<p class="quiet-note">quiet detectors: '
                      f'{html.escape(", ".join(sorted(quiet)))}</p>')
    card_w = MARGIN_L + PLOT_W + MARGIN_R
    return f"""
<div class="panel">
<h2>Health</h2>
<div class="legend">{legend}</div>
<svg data-panel="{pid}" viewBox="0 0 {card_w} {y + 18}"
     width="100%" role="img" aria-label="Health timeline">
{fault_marker_svg(faults, xs, y)}
{"".join(rows)}
{crosshair}
</svg>
{quiet_note}
</div>"""


def render_table(times, panels):
    """The no-hover fallback: every plotted value, plain HTML table."""
    cols = []
    for p in panels:
        for s in p["series"]:
            cols.append(s)
    head = "".join(f"<th>{html.escape(s['name'])}</th>" for s in cols)
    body = []
    for i, t in enumerate(times):
        cells = []
        for s in cols:
            v = s["values"][i] if i < len(s["values"]) else None
            cells.append(f"<td>{'—' if v is None else f'{v:g}'}</td>")
        body.append(f"<tr><td>{t:.2f}</td>{''.join(cells)}</tr>")
    return f"""
<details class="table-view">
<summary>Data table ({len(times)} samples)</summary>
<table><thead><tr><th>t (s)</th>{head}</tr></thead>
<tbody>{"".join(body)}</tbody></table>
</details>"""


def sum_series(tracks):
    """Element-wise sum; None where every input is None."""
    if not tracks:
        return []
    out = []
    for i in range(max(len(t) for t in tracks)):
        vals = [t[i] for t in tracks if i < len(t) and t[i] is not None]
        out.append(sum(vals) if vals else None)
    return out


def rate_of(deltas, period_s):
    return [None if v is None else v / period_s for v in deltas]


def build_panels(doc):
    sampler = doc.get("sampler") or {}
    times_us = sampler.get("timestamps") or []
    times = [t / 1e6 for t in times_us]
    period_s = (sampler.get("period_us") or 1e6) / 1e6
    series = sampler.get("series") or {}
    deltas = sampler.get("counter_deltas") or {}

    panels = []

    # Panel 1: per-replica version lag (identity => categorical by replica,
    # fixed slot order; the token ceiling is 8 replicas).
    lag = []
    for r in range(8):
        name = f"replica{r}.version_lag"
        if name in series:
            lag.append({"name": f"replica {r}", "color": f"var(--s{r + 1})",
                        "values": series[name]})
    if lag:
        panels.append({"id": "lag", "title": "Replica version lag",
                       "series": lag, "unit": "versions behind certifier"})

    # Panel 2: throughput and error rates from counter deltas.
    rates = []
    def add_rate(label, names):
        tracks = [deltas[n] for n in names if n in deltas]
        if tracks:
            rates.append({"name": label, "values": rate_of(
                sum_series(tracks), period_s)})
    add_rate("dispatched/s", ["lb.dispatched"])
    add_rate("certified/s", ["certifier.certified"])
    add_rate("aborts/s", ["certifier.aborts.ww", "certifier.aborts.rw",
                          "certifier.aborts.window"])
    add_rate("shed/s", ["lb.shed", "certifier.shed"])
    add_rate("refresh drops/s",
             [n for n in deltas if n.startswith("net.refresh.")
              and n.endswith(".dropped")])
    for i, s in enumerate(rates):
        s["color"] = f"var(--s{i + 1})"
    if rates:
        panels.append({"id": "rates", "title": "Throughput and errors",
                       "series": rates, "unit": "per second"})

    # Panel 3: queue depths and backlog gauges.
    queues = []
    for label, name in [("admission queue", "lb.admission_queue"),
                        ("certifier intake", "certifier.queue_depth"),
                        ("deferred refresh", "certifier.deferred_refresh")]:
        if name in series:
            queues.append({"name": label, "values": series[name]})
    for label, suffix in [("refresh queues (sum)", ".refresh_queue"),
                          ("cpu queues (sum)", ".cpu_queue")]:
        tracks = [series[n] for n in series
                  if n.startswith("replica") and n.endswith(suffix)]
        if tracks:
            queues.append({"name": label, "values": sum_series(tracks)})
    for i, s in enumerate(queues):
        s["color"] = f"var(--s{i + 1})"
    if queues:
        panels.append({"id": "queues", "title": "Queues and backlog",
                       "series": queues, "unit": "entries"})

    return times, panels


def main():
    parser = argparse.ArgumentParser(
        description="Render a timeline JSON bundle as an HTML dashboard.")
    parser.add_argument("input", help="timeline JSON from --timeline-json")
    parser.add_argument("-o", "--output", required=True,
                        help="output HTML path")
    parser.add_argument("--title", default=None,
                        help="dashboard title (default: input file name)")
    args = parser.parse_args()

    with open(args.input) as f:
        doc = json.load(f)

    times, panels = build_panels(doc)
    if not times:
        print("error: no sampled timestamps in", args.input, file=sys.stderr)
        return 1
    t0, t1 = times[0], times[-1]
    faults = [{"t": f["at"] / 1e6, **f} for f in (doc.get("faults") or [])]
    health = doc.get("health")

    body = []
    for p in panels:
        body.append(render_line_panel(p["id"], p["title"], p["series"],
                                      times, t0, t1, faults,
                                      unit=p.get("unit", "")))
    if health:
        panels.append({"id": "health", "title": "Health", "series": [],
                       "states": health.get("states") or []})
        body.append(render_health_panel("health", health, times, t0, t1,
                                        faults))

    # Embedded data for the crosshair tooltip.
    data = {
        "times": times, "t0": t0, "t1": t1,
        "stateNames": STATE_NAMES,
        "panels": {p["id"]: {
            "series": [{"name": s["name"], "color": s["color"],
                        "values": s["values"]} for s in p["series"]],
            **({"states": p["states"]} if "states" in p else {}),
        } for p in panels},
    }

    title = args.title or args.input
    n_transitions = len((health or {}).get("transitions") or [])
    subtitle = (f"{len(times)} samples over {t1 - t0:.1f}s · "
                f"{len(faults)} fault marker(s) · "
                f"{n_transitions} health transition(s)")

    light_slots = "".join(f"  --s{i + 1}: {c};\n"
                          for i, c in enumerate(CATEGORICAL_LIGHT))
    dark_slots = "".join(f"    --s{i + 1}: {c};\n"
                         for i, c in enumerate(CATEGORICAL_DARK))
    card_w = MARGIN_L + PLOT_W + MARGIN_R + 34
    css = (CSS.replace("%LIGHT_SLOTS%", light_slots)
              .replace("%DARK_SLOTS%", dark_slots)
              .replace("%CARD_W%", str(card_w)))
    js = (TOOLTIP_JS.replace("%MARGIN_L%", str(MARGIN_L))
                    .replace("%PLOT_W%", str(PLOT_W)))

    out = f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{html.escape(title)}</title>
<style>{css}</style>
</head>
<body class="viz-root">
<button class="theme-toggle" id="theme-toggle">light / dark</button>
<h1>{html.escape(title)}</h1>
<p class="subtitle">{html.escape(subtitle)}</p>
{"".join(body)}
{render_table(times, [p for p in panels if p["series"]])}
<div class="tooltip" id="tooltip"></div>
<script type="application/json" id="timeline-data">
{json.dumps(data)}
</script>
<script>{js}</script>
</body>
</html>
"""
    with open(args.output, "w") as f:
        f.write(out)
    print(f"wrote {args.output} ({len(panels)} panel(s), "
          f"{len(times)} samples)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
