// Side-by-side comparison of the four consistency configurations on the
// paper's micro-benchmark: throughput, response time, per-stage latency,
// and a consistency audit of the recorded history.

#include <cstdio>

#include "consistency/checker.h"
#include "workload/experiment.h"
#include "workload/micro.h"

using namespace screp;  // NOLINT — example code

int main() {
  std::printf(
      "Micro-benchmark (4 tables x 10,000 rows, 25%% updates), 8 replicas,\n"
      "8 back-to-back clients, 10 simulated seconds per configuration.\n\n");

  std::printf("%s\n", ExperimentResult::Header().c_str());
  for (ConsistencyLevel level : kAllConsistencyLevels) {
    MicroConfig micro;
    micro.update_fraction = 0.25;
    MicroWorkload workload(micro);

    History history;
    ExperimentConfig config;
    config.system.level = level;
    config.system.replica_count = 8;
    config.client_count = 8;
    config.warmup = Seconds(1);
    config.duration = Seconds(10);
    config.history = &history;

    auto result = RunExperiment(workload, config);
    if (!result.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", result->ToLine().c_str());

    // Audit the actual execution history against the guarantee the
    // configuration promises.
    const bool strong = ProvidesStrongConsistency(level);
    const CheckResult audit = CheckAll(history, strong);
    std::printf("   [%s audit: %s]\n", strong ? "strong" : "session",
                audit.ok ? "PASS" : "FAIL");
    if (!audit.ok) {
      std::printf("%s\n", audit.ToString().c_str());
    }
  }

  std::printf(
      "\nReading the table: ESC pays a large 'global' stage on every\n"
      "update; LSC/LFC shift the wait to a small 'version' stage at\n"
      "transaction start and match SC's throughput while guaranteeing\n"
      "strong consistency.\n");
  return 0;
}
