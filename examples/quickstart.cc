// Quickstart: stand up a 3-replica strongly consistent database, define a
#include "runtime/sim_runtime.h"
// schema and prepared transactions, run a few transactions, and watch the
// replicas converge.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "replication/system.h"

using namespace screp;  // NOLINT — example code

namespace {

// Every replica is populated identically by this builder.
Status BuildSchema(Database* db) {
  SCREP_ASSIGN_OR_RETURN(
      TableId accounts,
      db->CreateTable("accounts", Schema({{"id", ValueType::kInt64},
                                          {"owner", ValueType::kString},
                                          {"balance", ValueType::kInt64}})));
  SCREP_RETURN_NOT_OK(
      db->BulkLoad(accounts, {Value(1), Value("alice"), Value(1000)}));
  SCREP_RETURN_NOT_OK(
      db->BulkLoad(accounts, {Value(2), Value("bob"), Value(500)}));
  return Status::OK();
}

// Prepared transactions: the fine-grained consistency scheme reads their
// statically extracted table-sets from the catalog.
Status DefineTransactions(const Database& db,
                          sql::TransactionRegistry* registry) {
  {
    sql::PreparedTransaction txn;
    txn.name = "deposit";
    SCREP_ASSIGN_OR_RETURN(
        auto stmt, sql::PreparedStatement::Prepare(
                       db,
                       "UPDATE accounts SET balance = balance + ? WHERE "
                       "id = ?"));
    txn.statements.push_back(std::move(stmt));
    registry->Register(std::move(txn));
  }
  {
    sql::PreparedTransaction txn;
    txn.name = "check_balance";
    SCREP_ASSIGN_OR_RETURN(
        auto stmt,
        sql::PreparedStatement::Prepare(
            db, "SELECT owner, balance FROM accounts WHERE id = ?"));
    txn.statements.push_back(std::move(stmt));
    registry->Register(std::move(txn));
  }
  return Status::OK();
}

}  // namespace

int main() {
  Simulator sim;
  runtime::SimRuntime rt{&sim};

  SystemConfig config;
  config.replica_count = 3;
  // Lazy coarse-grained strong consistency: commits return as soon as the
  // local replica commits, yet every new transaction sees all
  // acknowledged updates.
  config.level = ConsistencyLevel::kLazyCoarse;

  auto system_or =
      ReplicatedSystem::Create(&rt, config, BuildSchema, DefineTransactions);
  if (!system_or.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 system_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<ReplicatedSystem> system = std::move(system_or).value();

  system->SetClientCallback([&](const TxnResponse& r) {
    std::printf("  txn %llu -> %s (replica %d, commit version %lld, "
                "%.2f ms: %s)\n",
                static_cast<unsigned long long>(r.txn_id),
                TxnOutcomeName(r.outcome), r.replica,
                static_cast<long long>(r.commit_version),
                ToMillis(sim.Now() - r.submit_time),
                r.stages.ToString().c_str());
  });

  auto submit = [&](const char* type, SessionId session,
                    std::vector<std::vector<Value>> params) {
    TxnRequest req;
    req.txn_id = system->NextTxnId();
    req.type = *system->registry().Find(type);
    req.session = session;
    req.client_id = 0;
    req.params = std::move(params);
    system->Submit(std::move(req));
    sim.RunAll();  // run the event loop to completion
  };

  std::printf("depositing 250 into account 1 (session 1):\n");
  submit("deposit", 1, {{Value(250), Value(1)}});

  std::printf("reading balance from session 2 (different client!):\n");
  submit("check_balance", 2, {{Value(1)}});

  std::printf("\nreplica states after the run:\n");
  for (int r = 0; r < system->replica_count(); ++r) {
    Database* db = system->replica(r)->db();
    auto txn = db->Begin();
    auto accounts = db->FindTable("accounts");
    auto row = txn->Get(*accounts, 1);
    std::printf("  replica %d @ version %lld: account 1 balance = %lld\n",
                r, static_cast<long long>(db->CommittedVersion()),
                row.ok() ? static_cast<long long>((*row)[2].AsInt()) : -1);
  }
  std::printf(
      "\nStrong consistency: the session-2 read observed session-1's\n"
      "acknowledged deposit even though it ran on a different replica.\n");
  return 0;
}
