// TPC-W demo: run the shopping mix against a 4-replica cluster under
// lazy fine-grained strong consistency, then poke at the resulting
// database with ad-hoc SQL through the embedded engine.

#include <cstdio>

#include "sql/executor.h"
#include "workload/experiment.h"
#include "workload/tpcw.h"

using namespace screp;  // NOLINT — example code

namespace {

void Query(Database* db, const std::string& text,
           std::vector<Value> params = {}) {
  auto stmt = sql::PreparedStatement::Prepare(*db, text);
  if (!stmt.ok()) {
    std::printf("  prepare failed: %s\n", stmt.status().ToString().c_str());
    return;
  }
  auto txn = db->Begin();
  auto rs = sql::Execute(txn.get(), **stmt, params);
  if (!rs.ok()) {
    std::printf("  execute failed: %s\n", rs.status().ToString().c_str());
    return;
  }
  std::printf("sql> %s\n%s", text.c_str(), rs->ToString().c_str());
}

}  // namespace

int main() {
  TpcwScale scale;  // default reduced population (see DESIGN.md)
  TpcwWorkload workload(scale, TpcwMix::kShopping);

  ExperimentConfig config;
  config.system.level = ConsistencyLevel::kLazyFine;
  config.system.proxy = TpcwProxyConfig();
  config.system.replica_count = 4;
  config.client_count = 4 * TpcwClientsPerReplica(TpcwMix::kShopping);
  config.mean_think_time = Millis(200);
  config.warmup = Seconds(1);
  config.duration = Seconds(15);

  std::printf("Running TPC-W shopping mix: %d clients on 4 replicas, LFC, "
              "15 simulated seconds...\n\n",
              config.client_count);
  auto result = RunExperiment(workload, config);
  if (!result.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n%s\n\n", ExperimentResult::Header().c_str(),
              result->ToLine().c_str());

  // Build a fresh standalone database and replay a client stream against
  // it, to poke at real TPC-W data with ad-hoc SQL.
  Database db;
  SCREP_CHECK(workload.BuildSchema(&db).ok());
  sql::TransactionRegistry registry;
  SCREP_CHECK(workload.DefineTransactions(db, &registry).ok());
  auto gen = workload.CreateGenerator(registry, /*client_id=*/0, Rng(7));
  for (int i = 0; i < 400; ++i) {
    TxnSpec spec = gen->Next();
    const sql::PreparedTransaction& prepared = registry.Get(spec.type);
    auto txn = db.Begin();
    bool ok = true;
    for (size_t s = 0; s < prepared.statements.size() && ok; ++s) {
      ok = sql::Execute(txn.get(), *prepared.statements[s], spec.params[s])
               .ok();
    }
    if (ok && !txn->read_only()) {
      WriteSet ws = txn->BuildWriteSet();
      ws.commit_version = db.CommittedVersion() + 1;
      SCREP_CHECK(db.ApplyWriteSet(ws).ok());
    }
    if (ok) gen->OnCommitted(spec);
  }

  std::printf("ad-hoc queries against the post-run database (version %lld):\n\n",
              static_cast<long long>(db.CommittedVersion()));
  Query(&db, "SELECT COUNT(*) FROM orders");
  Query(&db,
        "SELECT i_id, i_title, i_total_sold FROM item WHERE i_id BETWEEN 0 "
        "AND 99 ORDER BY i_total_sold DESC LIMIT 3");
  Query(&db, "SELECT COUNT(*), SUM(o_total) FROM orders WHERE o_id >= ?",
        {Value(tpcw::kClientKeyBase)});
  Query(&db, "SELECT c_id, c_balance, c_ytd_pmt FROM customer WHERE c_id = 0");
  return 0;
}
