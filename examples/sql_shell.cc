// Interactive SQL shell against a standalone instance of the embedded
// MVCC engine, pre-loaded with the TPC-W schema and population.
//
//   ./build/examples/sql_shell
//   sql> SELECT i_id, i_title FROM item WHERE i_subject = 3 LIMIT 5
//   sql> UPDATE item SET i_cost = 9.99 WHERE i_id = 7
//   sql> COMMIT        -- applies buffered writes as the next version
//   sql> ROLLBACK      -- discards buffered writes
//   sql> TABLES        -- lists tables
//   sql> EXIT
//
// Each statement runs inside the current transaction (opened lazily at the
// latest committed version); COMMIT applies its writeset exactly the way a
// replica applies certified writesets.

#include <cstdio>
#include <iostream>
#include <string>

#include "sql/executor.h"
#include "workload/tpcw_schema.h"

using namespace screp;  // NOLINT — example code

namespace {

std::string Upper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}

}  // namespace

int main() {
  Database db;
  TpcwScale scale;
  if (Status st = BuildTpcwSchema(&db, scale); !st.ok()) {
    std::fprintf(stderr, "population failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf(
      "TPC-W database loaded (%d items, %d customers). Type SQL, or\n"
      "COMMIT / ROLLBACK / TABLES / EXIT.\n",
      scale.items, scale.customers);

  std::unique_ptr<Transaction> txn;
  std::string line;
  while (true) {
    std::printf("sql> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    // Trim.
    const auto begin = line.find_first_not_of(" \t");
    if (begin == std::string::npos) continue;
    const auto end = line.find_last_not_of(" \t;");
    line = line.substr(begin, end - begin + 1);
    if (line.empty()) continue;
    const std::string upper = Upper(line);

    if (upper == "EXIT" || upper == "QUIT") break;
    if (upper == "TABLES") {
      for (const std::string& name : db.TableNames()) {
        auto id = db.FindTable(name);
        std::printf("  %-20s %zu rows  (%s)\n", name.c_str(),
                    db.table(*id)->LiveRowCount(db.CommittedVersion()),
                    db.table(*id)->schema().ToString().c_str());
      }
      continue;
    }
    if (upper == "COMMIT") {
      if (txn == nullptr || txn->read_only()) {
        std::printf("nothing to commit\n");
        txn.reset();
        continue;
      }
      WriteSet ws = txn->BuildWriteSet();
      ws.commit_version = db.CommittedVersion() + 1;
      if (Status st = db.ApplyWriteSet(ws); !st.ok()) {
        std::printf("commit failed: %s\n", st.ToString().c_str());
      } else {
        std::printf("committed %zu write(s) at version %lld\n", ws.size(),
                    static_cast<long long>(ws.commit_version));
      }
      txn.reset();
      continue;
    }
    if (upper == "ROLLBACK") {
      txn.reset();
      std::printf("rolled back\n");
      continue;
    }

    if (txn == nullptr) txn = db.Begin();
    auto stmt = sql::PreparedStatement::Prepare(db, line);
    if (!stmt.ok()) {
      std::printf("error: %s\n", stmt.status().ToString().c_str());
      continue;
    }
    auto rs = sql::Execute(txn.get(), **stmt, {});
    if (!rs.ok()) {
      std::printf("error: %s\n", rs.status().ToString().c_str());
      continue;
    }
    std::printf("%s", rs->ToString().c_str());
    if ((*stmt)->IsUpdate()) {
      std::printf("(buffered in the open transaction; COMMIT to apply)\n");
    } else if (rs->rows.size() > 20) {
      std::printf("(%zu rows)\n", rs->rows.size());
    }
  }
  return 0;
}
