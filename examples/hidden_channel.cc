// The hidden-channel example from the paper's introduction.
#include "runtime/sim_runtime.h"
//
// Agent A executes a trade (an update transaction) on behalf of Agent B.
// When A's commit is acknowledged, A notifies B through a channel the
// database cannot see, and B immediately queries the database — possibly
// at a *different replica*.  Under session consistency B has no session
// history linking it to A's update, so B can read a stale snapshot; under
// the lazy strong-consistency schemes B's transaction is delayed until its
// replica has caught up and always observes the trade.
//
// The example replays this pattern many times under SC, LSC, LFC and ESC
// and counts how often Agent B misses the trade.

#include <cstdio>

#include "replication/system.h"

using namespace screp;  // NOLINT — example code

namespace {

Status BuildSchema(Database* db) {
  SCREP_ASSIGN_OR_RETURN(
      TableId trades,
      db->CreateTable("trades", Schema({{"id", ValueType::kInt64},
                                        {"shares", ValueType::kInt64},
                                        {"status", ValueType::kString}})));
  for (int64_t k = 0; k < 512; ++k) {
    SCREP_RETURN_NOT_OK(
        db->BulkLoad(trades, {Value(k), Value(int64_t{0}), Value("NONE")}));
  }
  return Status::OK();
}

Status DefineTransactions(const Database& db,
                          sql::TransactionRegistry* registry) {
  {
    sql::PreparedTransaction txn;
    txn.name = "execute_trade";
    SCREP_ASSIGN_OR_RETURN(
        auto stmt,
        sql::PreparedStatement::Prepare(
            db,
            "UPDATE trades SET shares = ?, status = 'FILLED' WHERE id = ?"));
    txn.statements.push_back(std::move(stmt));
    registry->Register(std::move(txn));
  }
  {
    sql::PreparedTransaction txn;
    txn.name = "check_trade";
    SCREP_ASSIGN_OR_RETURN(auto stmt,
                           sql::PreparedStatement::Prepare(
                               db,
                               "SELECT shares, status FROM trades WHERE "
                               "id = ?"));
    txn.statements.push_back(std::move(stmt));
    registry->Register(std::move(txn));
  }
  return Status::OK();
}

/// Plays `rounds` A-trades-then-B-checks interactions; returns how many
/// times B saw the PRE-trade state.
int CountStaleReads(ConsistencyLevel level, int rounds) {
  Simulator sim;
  runtime::SimRuntime rt{&sim};
  SystemConfig config;
  config.replica_count = 4;
  config.level = level;
  // Make refresh propagation visibly slow so the race window is wide.
  config.proxy.refresh_base = Millis(15);

  auto system_or =
      ReplicatedSystem::Create(&rt, config, BuildSchema, DefineTransactions);
  SCREP_CHECK(system_or.ok());
  auto system = std::move(system_or).value();

  const TxnTypeId trade_type = *system->registry().Find("execute_trade");
  const TxnTypeId check_type = *system->registry().Find("check_trade");
  constexpr SessionId kAgentA = 1, kAgentB = 2;

  int stale = 0;
  DbVersion snapshot_seen = 0;
  bool filled_seen = false;

  system->SetClientCallback([&](const TxnResponse& r) {
    if (r.type == check_type) {
      snapshot_seen = r.snapshot;
      (void)snapshot_seen;
    }
  });

  for (int round = 0; round < rounds; ++round) {
    const int64_t trade_id = round % 512;
    // Agent A executes the trade.
    TxnRequest trade;
    trade.txn_id = system->NextTxnId();
    trade.type = trade_type;
    trade.session = kAgentA;
    trade.params = {{Value(100 + round), Value(trade_id)}};
    DbVersion trade_version = kNoVersion;
    bool trade_done = false;
    system->SetClientCallback([&](const TxnResponse& r) {
      if (r.txn_id == trade.txn_id) {
        trade_version = r.commit_version;
        trade_done = true;
      }
    });
    system->Submit(trade);
    while (!trade_done && sim.Step()) {
    }
    SCREP_CHECK(trade_done && trade_version != kNoVersion);

    // The hidden channel: A tells B "done" the moment the ack arrives.
    // B immediately checks the trade — on whichever replica the load
    // balancer picks.
    TxnRequest check;
    check.txn_id = system->NextTxnId();
    check.type = check_type;
    check.session = kAgentB;
    check.params = {{Value(trade_id)}};
    bool check_done = false;
    DbVersion check_snapshot = 0;
    system->SetClientCallback([&](const TxnResponse& r) {
      if (r.txn_id == check.txn_id) {
        check_snapshot = r.snapshot;
        check_done = true;
      }
    });
    system->Submit(check);
    while (!check_done && sim.Step()) {
    }
    SCREP_CHECK(check_done);
    if (check_snapshot < trade_version) ++stale;
    (void)filled_seen;
    // Drain background refresh work before the next round so rounds are
    // independent... deliberately NOT done: the steady refresh backlog is
    // exactly what creates the inconsistency window.
  }
  return stale;
}

}  // namespace

int main() {
  constexpr int kRounds = 200;
  std::printf(
      "Agent A trades, tells Agent B out-of-band, B immediately reads\n"
      "(%d rounds, 4 replicas, deliberately slow refresh propagation):\n\n",
      kRounds);
  std::printf("  %-44s %s\n", "configuration", "stale reads by Agent B");
  for (ConsistencyLevel level :
       {ConsistencyLevel::kSession, ConsistencyLevel::kLazyCoarse,
        ConsistencyLevel::kLazyFine, ConsistencyLevel::kEager}) {
    const int stale = CountStaleReads(level, kRounds);
    std::printf("  %-4s %-39s %6d / %d%s\n", ConsistencyLevelName(level),
                ConsistencyLevelDescription(level), stale, kRounds,
                stale == 0 ? "" : "   <-- B acted on stale data!");
  }
  std::printf(
      "\nSession consistency only orders transactions *within* a session;\n"
      "the A->B dependency flows through a hidden channel it cannot see.\n"
      "The paper's lazy schemes (LSC/LFC) close the window without the\n"
      "eager scheme's global commit delay.\n");
  return 0;
}
