// Partitioned certification: unit tests of the K-lane ShardedCertifier
// (dense per-shard versions, the cross-shard sequencer, per-shard
// first-committer-wins, intake shedding, idempotent replay, hosted-shard
// refresh filtering and per-stream credits), plus end-to-end sharded
// system runs under the online auditor — full replication, partial
// replication, and a cross-shard workload that drives the sequencer.

#include "replication/sharded_certifier.h"

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "replication/system.h"
#include "runtime/sim_runtime.h"
#include "sim/simulator.h"
#include "workload/client.h"
#include "workload/experiment.h"
#include "workload/metrics.h"
#include "workload/micro.h"

namespace screp {
namespace {

// ---------------------------------------------------------------------
// Unit tests: the certifier alone under a simulator.
// ---------------------------------------------------------------------

WriteSet MakeWs(TxnId id, ReplicaId origin,
                std::initializer_list<std::pair<TableId, int64_t>> writes,
                std::vector<std::pair<int32_t, DbVersion>> shard_snapshots =
                    {}) {
  WriteSet ws;
  ws.txn_id = id;
  ws.origin = origin;
  ws.shard_snapshots = std::move(shard_snapshots);
  for (const auto& [table, key] : writes) {
    ws.Add(table, key, WriteType::kUpdate, Row{Value(key), Value(0)});
  }
  return ws;
}

class ShardedCertifierTest : public ::testing::Test {
 protected:
  void Build(int tables, int shards, int replicas,
             CertifierConfig config = CertifierConfig{}) {
    config.shard_lanes = shards;
    certifier_ = std::make_unique<ShardedCertifier>(
        &rt_, config, ShardMap(tables, shards), replicas);
    certifier_->SetDecisionCallback(
        [this](ReplicaId origin, const CertDecision& decision) {
          decisions_.emplace_back(origin, decision);
        });
    certifier_->SetRefreshCallback(
        [this](ShardId shard, ReplicaId target, const RefreshBatch& batch) {
          for (const WriteSetRef& ws : batch.writesets) {
            refreshes_.push_back({shard, target, *ws});
          }
        });
  }

  /// The decision for `txn` (must exist exactly once... last one wins,
  /// which the idempotence test relies on being identical anyway).
  const CertDecision& DecisionOf(TxnId txn) const {
    const CertDecision* found = nullptr;
    for (const auto& [origin, decision] : decisions_) {
      (void)origin;
      if (decision.txn_id == txn) found = &decision;
    }
    SCREP_CHECK_MSG(found != nullptr, "no decision for txn " << txn);
    return *found;
  }

  static DbVersion ShardVersionIn(const CertDecision& decision,
                                  ShardId shard) {
    return ShardVersionOf(decision.shard_versions, shard, kNoVersion);
  }

  struct Refresh {
    ShardId shard;
    ReplicaId target;
    WriteSet ws;
  };

  Simulator sim_;
  runtime::SimRuntime rt_{&sim_};
  std::unique_ptr<ShardedCertifier> certifier_;
  std::vector<std::pair<ReplicaId, CertDecision>> decisions_;
  std::vector<Refresh> refreshes_;
};

TEST_F(ShardedCertifierTest, LaneVersionsAreDensePerShard) {
  // Four tables over two shards (round-robin: t0,t2 -> shard 0;
  // t1,t3 -> shard 1).  Disjoint-shard streams each get their own dense
  // version sequence starting at 1.
  Build(4, 2, 2);
  certifier_->SubmitCertification(MakeWs(1, 0, {{0, 5}}));
  certifier_->SubmitCertification(MakeWs(2, 1, {{1, 5}}));
  certifier_->SubmitCertification(MakeWs(3, 0, {{2, 9}}));
  certifier_->SubmitCertification(MakeWs(4, 1, {{3, 9}}));
  sim_.RunAll();
  ASSERT_EQ(decisions_.size(), 4u);
  for (const auto& [origin, decision] : decisions_) {
    (void)origin;
    EXPECT_TRUE(decision.commit) << "txn " << decision.txn_id;
  }
  EXPECT_EQ(ShardVersionIn(DecisionOf(1), 0), 1);
  EXPECT_EQ(ShardVersionIn(DecisionOf(3), 0), 2);
  EXPECT_EQ(ShardVersionIn(DecisionOf(2), 1), 1);
  EXPECT_EQ(ShardVersionIn(DecisionOf(4), 1), 2);
  EXPECT_EQ(certifier_->LaneCommitVersion(0), 2);
  EXPECT_EQ(certifier_->LaneCommitVersion(1), 2);
  EXPECT_EQ(certifier_->certified_count(), 4);
  EXPECT_EQ(certifier_->sequenced_count(), 0);
}

TEST_F(ShardedCertifierTest, CrossShardCommitGetsJointVersion) {
  Build(4, 2, 2);
  certifier_->SubmitCertification(MakeWs(1, 0, {{0, 5}, {1, 7}}));
  sim_.RunAll();
  ASSERT_EQ(decisions_.size(), 1u);
  const CertDecision& decision = decisions_[0].second;
  EXPECT_TRUE(decision.commit);
  // One version in each touched lane, assigned atomically at decide time.
  EXPECT_EQ(ShardVersionIn(decision, 0), 1);
  EXPECT_EQ(ShardVersionIn(decision, 1), 1);
  EXPECT_EQ(certifier_->LaneCommitVersion(0), 1);
  EXPECT_EQ(certifier_->LaneCommitVersion(1), 1);
  EXPECT_EQ(certifier_->sequenced_count(), 1);
}

TEST_F(ShardedCertifierTest, MixedStreamStaysDenseInEveryLane) {
  // Interleave single-shard and cross-shard submissions; every lane's
  // version sequence must come out dense regardless of decide order.
  Build(4, 2, 2);
  certifier_->SubmitCertification(MakeWs(1, 0, {{0, 1}}));
  certifier_->SubmitCertification(MakeWs(2, 1, {{0, 2}, {1, 2}}));
  certifier_->SubmitCertification(MakeWs(3, 0, {{1, 3}}));
  certifier_->SubmitCertification(MakeWs(4, 1, {{0, 4}}));
  sim_.RunAll();
  ASSERT_EQ(decisions_.size(), 4u);
  std::vector<DbVersion> lane0, lane1;
  for (const auto& [origin, decision] : decisions_) {
    (void)origin;
    ASSERT_TRUE(decision.commit);
    if (DbVersion v = ShardVersionIn(decision, 0); v != kNoVersion)
      lane0.push_back(v);
    if (DbVersion v = ShardVersionIn(decision, 1); v != kNoVersion)
      lane1.push_back(v);
  }
  std::sort(lane0.begin(), lane0.end());
  std::sort(lane1.begin(), lane1.end());
  EXPECT_EQ(lane0, (std::vector<DbVersion>{1, 2, 3}));
  EXPECT_EQ(lane1, (std::vector<DbVersion>{1, 2}));
  EXPECT_EQ(certifier_->sequenced_count(), 1);
}

TEST_F(ShardedCertifierTest, StaleWriterAbortsAgainstCrossShardCommit) {
  Build(4, 2, 2);
  certifier_->SubmitCertification(MakeWs(1, 0, {{0, 5}, {1, 7}}));
  sim_.RunAll();
  // Txn 2 writes shard 1's key 7 from a snapshot that predates txn 1's
  // commit in shard 1 (missing entry reads as 0): first-committer-wins.
  certifier_->SubmitCertification(MakeWs(2, 1, {{1, 7}}));
  sim_.RunAll();
  ASSERT_EQ(decisions_.size(), 2u);
  EXPECT_FALSE(DecisionOf(2).commit);
  EXPECT_EQ(certifier_->abort_count(), 1);
  // The aborted transaction consumed no version in any lane.
  EXPECT_EQ(certifier_->LaneCommitVersion(1), 1);
}

TEST_F(ShardedCertifierTest, FreshPerShardSnapshotEscapesConflict) {
  Build(4, 2, 2);
  certifier_->SubmitCertification(MakeWs(1, 0, {{1, 7}}));
  sim_.RunAll();
  // Snapshot {shard 1: 1} already includes txn 1's commit: no conflict.
  certifier_->SubmitCertification(MakeWs(2, 1, {{1, 7}}, {{1, 1}}));
  sim_.RunAll();
  EXPECT_TRUE(DecisionOf(2).commit);
  EXPECT_EQ(ShardVersionIn(DecisionOf(2), 1), 2);
  EXPECT_EQ(certifier_->abort_count(), 0);
}

TEST_F(ShardedCertifierTest, ConflictsAreShardLocal) {
  // Heavy write traffic in shard 0 never aborts a shard-1 transaction,
  // however stale its (irrelevant) view of shard 0 is.
  Build(4, 2, 2);
  for (TxnId id = 1; id <= 5; ++id) {
    certifier_->SubmitCertification(MakeWs(id, 0, {{0, 5}}, {{0, id - 1}}));
  }
  sim_.RunAll();
  certifier_->SubmitCertification(MakeWs(9, 1, {{1, 5}}));
  sim_.RunAll();
  EXPECT_TRUE(DecisionOf(9).commit);
  EXPECT_EQ(certifier_->LaneCommitVersion(0), 5);
  EXPECT_EQ(certifier_->LaneCommitVersion(1), 1);
}

TEST_F(ShardedCertifierTest, SnapshotOlderThanLaneWindowAborts) {
  CertifierConfig config;
  config.conflict_window = 1;
  Build(4, 2, 2, config);
  certifier_->SubmitCertification(MakeWs(1, 0, {{0, 1}}));
  sim_.RunAll();
  certifier_->SubmitCertification(MakeWs(2, 0, {{0, 2}}, {{0, 1}}));
  sim_.RunAll();
  // Lane 0 retains only version 2 now; snapshot 0 predates the window
  // and must be conservatively aborted even with disjoint keys.
  certifier_->SubmitCertification(MakeWs(3, 1, {{0, 3}}));
  sim_.RunAll();
  EXPECT_FALSE(DecisionOf(3).commit);
  EXPECT_EQ(certifier_->window_abort_count(), 1);
  // Shard 1's window is untouched: snapshot 0 is still fine there.
  certifier_->SubmitCertification(MakeWs(4, 1, {{1, 3}}));
  sim_.RunAll();
  EXPECT_TRUE(DecisionOf(4).commit);
}

TEST_F(ShardedCertifierTest, IntakeShedsAtBoundAndRecovers) {
  CertifierConfig config;
  config.max_intake = 1;
  Build(4, 2, 2, config);
  // All four hit lane 0 back-to-back: one enters service, one queues,
  // the rest find the queue at the bound and are refused on arrival.
  for (TxnId id = 1; id <= 4; ++id) {
    certifier_->SubmitCertification(MakeWs(id, 0, {{0, id}}, {{0, 0}}));
  }
  EXPECT_EQ(certifier_->shed_count(), 2);
  // Shed decisions surface as overloaded, not as certification aborts.
  ASSERT_EQ(decisions_.size(), 2u);
  for (const auto& [origin, decision] : decisions_) {
    (void)origin;
    EXPECT_FALSE(decision.commit);
    EXPECT_TRUE(decision.overloaded);
  }
  EXPECT_EQ(certifier_->abort_count(), 0);
  sim_.RunAll();
  // A shed submission never held an intake slot: once the admitted work
  // drains, full capacity is back.
  certifier_->SubmitCertification(MakeWs(9, 1, {{0, 9}}, {{0, 2}}));
  certifier_->SubmitCertification(MakeWs(10, 1, {{0, 10}}, {{0, 2}}));
  sim_.RunAll();
  EXPECT_EQ(certifier_->shed_count(), 2);
  EXPECT_TRUE(DecisionOf(9).commit);
  EXPECT_TRUE(DecisionOf(10).commit);
  EXPECT_EQ(certifier_->certified_count(), 4);
}

TEST_F(ShardedCertifierTest, ResubmittedDecisionReplaysVerbatim) {
  Build(4, 2, 2);
  certifier_->SubmitCertification(MakeWs(1, 0, {{0, 5}, {1, 7}}));
  sim_.RunAll();
  const CertDecision first = DecisionOf(1);
  certifier_->SubmitCertification(MakeWs(1, 0, {{0, 5}, {1, 7}}));
  sim_.RunAll();
  ASSERT_EQ(decisions_.size(), 2u);
  const CertDecision& replay = decisions_[1].second;
  EXPECT_EQ(replay.txn_id, first.txn_id);
  EXPECT_EQ(replay.commit, first.commit);
  EXPECT_EQ(replay.commit_version, first.commit_version);
  EXPECT_EQ(replay.shard_versions, first.shard_versions);
  // Nothing was re-certified: counters and lane versions are unchanged.
  EXPECT_EQ(certifier_->certified_count(), 1);
  EXPECT_EQ(certifier_->sequenced_count(), 1);
  EXPECT_EQ(certifier_->LaneCommitVersion(0), 1);
  EXPECT_EQ(certifier_->LaneCommitVersion(1), 1);
}

TEST_F(ShardedCertifierTest, RefreshSkipsReplicasNotHostingTheShard) {
  Build(4, 2, 3);
  certifier_->SetHostedShards({{0}, {1}, {0, 1}});
  // Shard-1 writeset from replica 2: replica 0 hosts only shard 0 and
  // must not receive it; replica 1 does; the origin never does.
  certifier_->SubmitCertification(MakeWs(1, 2, {{1, 7}}));
  sim_.RunAll();
  ASSERT_EQ(refreshes_.size(), 1u);
  EXPECT_EQ(refreshes_[0].shard, 1);
  EXPECT_EQ(refreshes_[0].target, 1);
  EXPECT_EQ(refreshes_[0].ws.txn_id, 1u);
}

TEST_F(ShardedCertifierTest, CrossShardRefreshSentOncePerTarget) {
  Build(4, 2, 3);
  certifier_->SetHostedShards({{0, 1}, {0, 1}, {1}});
  certifier_->SubmitCertification(MakeWs(1, 0, {{0, 5}, {1, 7}}));
  sim_.RunAll();
  // Replica 1 hosts both touched shards: exactly one copy, on the
  // lowest-numbered touched shard it hosts (0).  Replica 2 hosts only
  // shard 1, so its copy rides stream 1.
  ASSERT_EQ(refreshes_.size(), 2u);
  std::map<ReplicaId, ShardId> by_target;
  for (const Refresh& r : refreshes_) {
    EXPECT_EQ(by_target.count(r.target), 0u) << "duplicate to " << r.target;
    by_target[r.target] = r.shard;
    EXPECT_EQ(r.ws.txn_id, 1u);
  }
  EXPECT_EQ(by_target.at(1), 0);
  EXPECT_EQ(by_target.at(2), 1);
}

TEST_F(ShardedCertifierTest, PerStreamCreditsDeferAndDrain) {
  CertifierConfig config;
  config.refresh_credit_window = 1;
  Build(4, 2, 2, config);
  for (TxnId id = 1; id <= 3; ++id) {
    certifier_->SubmitCertification(MakeWs(id, 0, {{0, id}}, {{0, id - 1}}));
  }
  sim_.RunAll();
  // Only one writeset may be in flight to replica 1 on stream (0, 1);
  // the rest wait for credits.
  EXPECT_EQ(refreshes_.size(), 1u);
  EXPECT_EQ(certifier_->refresh_credits(0, 1), 0);
  EXPECT_EQ(certifier_->deferred_refresh_total(), 2u);
  certifier_->OnCreditReturned(0, 1, 1);
  sim_.RunAll();
  EXPECT_EQ(refreshes_.size(), 2u);
  certifier_->OnCreditReturned(0, 1, 1);
  sim_.RunAll();
  EXPECT_EQ(refreshes_.size(), 3u);
  EXPECT_EQ(certifier_->deferred_refresh_total(), 0u);
  // Versions arrive in shard order on the stream.
  for (size_t i = 0; i < refreshes_.size(); ++i) {
    EXPECT_EQ(refreshes_[i].ws.commit_version,
              static_cast<DbVersion>(i + 1));
  }
}

// ---------------------------------------------------------------------
// End-to-end: sharded systems under the online auditor.
// ---------------------------------------------------------------------

MicroConfig SmallMicro(double update_fraction) {
  MicroConfig config;
  config.rows_per_table = 200;
  config.update_fraction = update_fraction;
  return config;
}

ExperimentConfig ShardedRun(ConsistencyLevel level, int replicas,
                            int clients, int lanes) {
  ExperimentConfig config;
  config.system.level = level;
  config.system.replica_count = replicas;
  config.system.certifier.shard_lanes = lanes;
  config.client_count = clients;
  config.warmup = Seconds(0.5);
  config.duration = Seconds(3);
  config.seed = 7;
  config.audit = true;
  return config;
}

TEST(ShardedSystemTest, MicroWithFourLanesAuditsCleanly) {
  const MicroWorkload workload(SmallMicro(0.5));
  for (ConsistencyLevel level :
       {ConsistencyLevel::kLazyCoarse, ConsistencyLevel::kLazyFine,
        ConsistencyLevel::kSession}) {
    SCOPED_TRACE(ConsistencyLevelName(level));
    ExperimentConfig config = ShardedRun(level, 4, 8, /*lanes=*/4);
    auto result = RunExperiment(workload, config);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_GT(result->committed, 0);
    ASSERT_TRUE(result->audit.enabled);
    EXPECT_TRUE(result->audit.ok) << result->audit.ToString();
    EXPECT_GT(result->audit.checks, 0);
  }
}

TEST(ShardedSystemTest, PartialReplicationAuditsCleanly) {
  // Each replica hosts two of the four shards (every shard covered
  // twice); the LB must route by table-set and the per-shard refresh
  // fan-out must skip non-hosting replicas.
  const MicroWorkload workload(SmallMicro(0.5));
  ExperimentConfig config =
      ShardedRun(ConsistencyLevel::kLazyFine, 4, 8, /*lanes=*/4);
  config.system.hosted_shards = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
  auto result = RunExperiment(workload, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->committed, 0);
  ASSERT_TRUE(result->audit.enabled);
  EXPECT_TRUE(result->audit.ok) << result->audit.ToString();
}

TEST(ShardedSystemTest, UnsupportedCombinationsAreRefused) {
  SystemConfig config;
  config.replica_count = 2;
  config.certifier.shard_lanes = 2;
  config.level = ConsistencyLevel::kEager;
  Simulator sim;
  runtime::SimRuntime rt{&sim};
  auto eager = ReplicatedSystem::Create(
      &rt, config, [](Database*) { return Status::OK(); },
      [](const Database&, sql::TransactionRegistry*) {
        return Status::OK();
      });
  EXPECT_FALSE(eager.ok());
}

// A workload whose update mix includes a two-table transaction, so the
// sharded system exercises the sequencer end to end.
class TwoTableWorkload : public Workload {
 public:
  std::string name() const override { return "two-table"; }

  Status BuildSchema(Database* db) const override {
    for (const char* table : {"alpha", "beta"}) {
      SCREP_ASSIGN_OR_RETURN(
          TableId id,
          db->CreateTable(table, Schema({{"id", ValueType::kInt64},
                                         {"val", ValueType::kInt64}})));
      for (int64_t key = 0; key < 100; ++key) {
        SCREP_RETURN_NOT_OK(db->BulkLoad(id, Row{Value(key), Value(key)}));
      }
    }
    return Status::OK();
  }

  Status DefineTransactions(const Database& db,
                            sql::TransactionRegistry* registry) const
      override {
    for (const char* table : {"alpha", "beta"}) {
      sql::PreparedTransaction txn;
      txn.name = std::string("update_") + table;
      SCREP_ASSIGN_OR_RETURN(
          auto stmt, sql::PreparedStatement::Prepare(
                         db, std::string("UPDATE ") + table +
                                 " SET val = val + ? WHERE id = ?"));
      txn.statements.push_back(std::move(stmt));
      registry->Register(std::move(txn));
    }
    {
      sql::PreparedTransaction txn;
      txn.name = "update_both";
      SCREP_ASSIGN_OR_RETURN(auto a,
                             sql::PreparedStatement::Prepare(
                                 db,
                                 "UPDATE alpha SET val = val + ? "
                                 "WHERE id = ?"));
      SCREP_ASSIGN_OR_RETURN(auto b,
                             sql::PreparedStatement::Prepare(
                                 db,
                                 "UPDATE beta SET val = val + ? "
                                 "WHERE id = ?"));
      txn.statements.push_back(std::move(a));
      txn.statements.push_back(std::move(b));
      registry->Register(std::move(txn));
    }
    {
      sql::PreparedTransaction txn;
      txn.name = "read_alpha";
      SCREP_ASSIGN_OR_RETURN(auto stmt,
                             sql::PreparedStatement::Prepare(
                                 db, "SELECT id, val FROM alpha "
                                     "WHERE id = ?"));
      txn.statements.push_back(std::move(stmt));
      registry->Register(std::move(txn));
    }
    return Status::OK();
  }

  std::unique_ptr<TxnGenerator> CreateGenerator(
      const sql::TransactionRegistry& registry, int client_id,
      Rng rng) const override {
    (void)client_id;
    class Generator : public TxnGenerator {
     public:
      Generator(TxnTypeId read, TxnTypeId upd_a, TxnTypeId upd_b,
                TxnTypeId upd_both, Rng rng)
          : read_(read),
            upd_a_(upd_a),
            upd_b_(upd_b),
            upd_both_(upd_both),
            rng_(rng) {}

      TxnSpec Next() override {
        TxnSpec spec;
        const int64_t key = rng_.NextInRange(0, 99);
        const Value delta(rng_.NextInRange(1, 100));
        switch (rng_.NextBounded(4)) {
          case 0:
            spec.type = read_;
            spec.params = {{Value(key)}};
            break;
          case 1:
            spec.type = upd_a_;
            spec.params = {{delta, Value(key)}};
            break;
          case 2:
            spec.type = upd_b_;
            spec.params = {{delta, Value(key)}};
            break;
          default:
            spec.type = upd_both_;
            spec.params = {{delta, Value(key)},
                           {delta, Value(rng_.NextInRange(0, 99))}};
            break;
        }
        return spec;
      }

     private:
      TxnTypeId read_, upd_a_, upd_b_, upd_both_;
      Rng rng_;
    };
    auto find = [&registry](const char* name) {
      Result<TxnTypeId> id = registry.Find(name);
      SCREP_CHECK(id.ok());
      return *id;
    };
    return std::make_unique<Generator>(find("read_alpha"),
                                       find("update_alpha"),
                                       find("update_beta"),
                                       find("update_both"), rng);
  }
};

TEST(ShardedSystemTest, CrossShardWorkloadDrivesTheSequencerAuditClean) {
  const TwoTableWorkload workload;
  Simulator sim;
  runtime::SimRuntime rt{&sim};
  SystemConfig system_config;
  system_config.replica_count = 3;
  system_config.level = ConsistencyLevel::kLazyCoarse;
  system_config.certifier.shard_lanes = 2;
  system_config.obs.audit = true;
  system_config.obs.event_log_capacity = size_t{1} << 20;
  auto system_or = ReplicatedSystem::Create(
      &rt, system_config,
      [&workload](Database* db) { return workload.BuildSchema(db); },
      [&workload](const Database& db, sql::TransactionRegistry* reg) {
        return workload.DefineTransactions(db, reg);
      });
  ASSERT_TRUE(system_or.ok()) << system_or.status().ToString();
  auto system = std::move(*system_or);
  ASSERT_TRUE(system->sharded());
  // "alpha" and "beta" land on different shards of the two-lane map.
  ASSERT_NE(system->shard_map()->ShardOf(0), system->shard_map()->ShardOf(1));

  MetricsCollector metrics(/*warmup=*/0);
  Rng seed_rng(7);
  std::vector<std::unique_ptr<ClientDriver>> clients;
  for (int c = 0; c < 6; ++c) {
    clients.push_back(std::make_unique<ClientDriver>(
        system.get(), &metrics,
        workload.CreateGenerator(system->registry(), c, seed_rng.Fork()), c,
        ClientConfig{}, seed_rng.Fork()));
  }
  system->SetClientCallback([&clients](const TxnResponse& r) {
    clients[static_cast<size_t>(r.client_id)]->OnResponse(r);
  });
  for (auto& client : clients) client->Start();
  const SimTime end = Seconds(2);
  sim.Schedule(end, [&clients, &system]() {
    for (auto& client : clients) client->Stop();
    system->StopGc();
    system->obs()->StopSampling();
  });
  sim.RunUntil(end);
  sim.RunAll();

  const ShardedCertifier* certifier = system->sharded_certifier();
  ASSERT_NE(certifier, nullptr);
  EXPECT_GT(certifier->certified_count(), 0);
  EXPECT_GT(certifier->sequenced_count(), 0)
      << "the two-table transaction mix should have crossed shards";
  const obs::Auditor* auditor = system->obs()->auditor();
  ASSERT_NE(auditor, nullptr);
  EXPECT_GT(auditor->checks_performed(), 0);
  EXPECT_TRUE(auditor->ok()) << auditor->Summary();
  // Both lanes advanced and the auditor tracked each one.
  for (ShardId s : {0, 1}) {
    EXPECT_GT(certifier->LaneCommitVersion(s), 0) << "shard " << s;
    EXPECT_EQ(auditor->shard_max_commit_version(s),
              certifier->LaneCommitVersion(s))
        << "shard " << s;
  }
}

}  // namespace
}  // namespace screp
