// End-to-end observability tests: the spans recorded by the middleware
#include "runtime/sim_runtime.h"
// must agree with the client-side MetricsCollector stage accumulators,
// the sampler must capture real version lag under LSC, the JSON
// artifacts written by the experiment harness must be well-formed, and
// turning observability on must not perturb the simulation.

#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "replication/system.h"
#include "sim/simulator.h"
#include "workload/client.h"
#include "workload/experiment.h"
#include "workload/metrics.h"
#include "workload/micro.h"

namespace screp {
namespace {

MicroConfig SmallMicro(double update_fraction) {
  MicroConfig config;
  config.rows_per_table = 200;
  config.update_fraction = update_fraction;
  return config;
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Stands up a traced + sampled LSC system by hand (mirroring the
// experiment harness) so the test can see both sides of the ledger: the
// spans in the tracer and the stage times the clients recorded.
TEST(ObsIntegrationTest, SpanDurationsMatchStageAccumulators) {
  const MicroWorkload workload(SmallMicro(0.25));
  Simulator sim;
  runtime::SimRuntime rt{&sim};
  SystemConfig system_config;
  system_config.replica_count = 2;
  system_config.level = ConsistencyLevel::kLazyCoarse;
  system_config.obs.tracing = true;
  system_config.obs.trace_capacity = size_t{1} << 20;  // retain everything
  system_config.obs.sample_period = Millis(100);
  auto system_or = ReplicatedSystem::Create(
      &rt, system_config,
      [&workload](Database* db) { return workload.BuildSchema(db); },
      [&workload](const Database& db, sql::TransactionRegistry* reg) {
        return workload.DefineTransactions(db, reg);
      });
  ASSERT_TRUE(system_or.ok()) << system_or.status().ToString();
  auto system = std::move(*system_or);

  MetricsCollector metrics(/*warmup=*/0);
  Rng seed_rng(7);
  std::vector<std::unique_ptr<ClientDriver>> clients;
  for (int c = 0; c < 4; ++c) {
    clients.push_back(std::make_unique<ClientDriver>(
        system.get(), &metrics,
        workload.CreateGenerator(system->registry(), c, seed_rng.Fork()), c,
        ClientConfig{}, seed_rng.Fork()));
  }

  const SimTime end = Seconds(2);
  // Capture exactly the responses MetricsCollector records: the stop
  // event below is scheduled before any response at ts == end, so the
  // clients' stopped_ flag and the `Now() < end` filter agree.
  std::map<TxnId, bool> committed_read_only;
  system->SetClientCallback(
      [&clients, &committed_read_only, &rt, end](const TxnResponse& r) {
        if (rt.Now() < end && r.outcome == TxnOutcome::kCommitted) {
          committed_read_only[r.txn_id] = r.read_only;
        }
        clients[static_cast<size_t>(r.client_id)]->OnResponse(r);
      });
  for (auto& client : clients) client->Start();
  sim.Schedule(end, [&clients, &system]() {
    for (auto& client : clients) client->Stop();
    system->StopGc();
    system->obs()->StopSampling();
  });
  sim.RunUntil(end);
  metrics.Finish(end);
  sim.RunAll();

  ASSERT_GT(metrics.committed(), 0);
  ASSERT_GT(metrics.committed_updates(), 0);
  ASSERT_EQ(static_cast<int64_t>(committed_read_only.size()),
            metrics.committed());

  const obs::Tracer* tracer = system->obs()->tracer();
  ASSERT_EQ(tracer->dropped(), 0);
  std::map<std::string, double> span_sums;
  for (const obs::TraceSpan& span : tracer->Spans()) {
    if (committed_read_only.count(span.txn) == 0) continue;
    span_sums[span.name] += static_cast<double>(span.duration);
  }

  // Each per-stage span family, summed over the recorded committed
  // transactions, must reproduce the matching stage accumulator.
  const auto near = [](double stage_sum) {
    return stage_sum * 1e-9 + 0.5;  // float noise from incremental means
  };
  EXPECT_NEAR(span_sums["proxy.start_delay"], metrics.version_stage().sum(),
              near(metrics.version_stage().sum()));
  EXPECT_NEAR(span_sums["proxy.exec"], metrics.queries_stage().sum(),
              near(metrics.queries_stage().sum()));
  EXPECT_NEAR(span_sums["proxy.certify"], metrics.certify_stage().sum(),
              near(metrics.certify_stage().sum()));
  // The ordering wait is now decomposed: gap wait + lane wait for locally
  // applied commits, the whole claim wait for decisions that raced the
  // refresh stream.  Together they still equal the sync stage.
  EXPECT_NEAR(span_sums["proxy.gap_wait"] + span_sums["proxy.lane_wait"] +
                  span_sums["proxy.claim_wait"],
              metrics.sync_stage().sum(), near(metrics.sync_stage().sum()));
  // Likewise the commit stage: apply service + publish wait for updates,
  // plus the read-only commit span.
  EXPECT_NEAR(span_sums["proxy.apply"] + span_sums["proxy.publish_wait"] +
                  span_sums["proxy.commit"],
              metrics.commit_stage().sum(),
              near(metrics.commit_stage().sum()));

  // Under LSC at 25% updates the replicas visibly lag V_system: the
  // sampled per-replica version-lag series must show it.
  const auto& series = system->obs()->sampler()->series();
  ASSERT_FALSE(system->obs()->sampler()->timestamps().empty());
  double max_lag = 0;
  int lag_series = 0;
  for (const auto& [name, values] : series) {
    if (name.find(".version_lag") == std::string::npos) continue;
    ++lag_series;
    for (double v : values) max_lag = std::max(max_lag, v);
  }
  EXPECT_EQ(lag_series, system_config.replica_count);
  EXPECT_GT(max_lag, 0);

  // Certifier-side counters reconcile with the client-side view:
  // every committed update passed certification.
  EXPECT_GE(
      system->obs()->registry()->GetCounter("certifier.certified")->value(),
      metrics.committed_updates());
}

// A certifier failover mid-run must not tear the sampled time series:
// the gauges read through the system, so the promoted standby continues
// every certifier series in place and all series stay aligned with the
// timestamp grid.
TEST(ObsIntegrationTest, SamplerSeriesStayAlignedAcrossCertifierFailover) {
  const MicroWorkload workload(SmallMicro(0.5));
  Simulator sim;
  runtime::SimRuntime rt{&sim};
  SystemConfig system_config;
  system_config.replica_count = 3;
  system_config.level = ConsistencyLevel::kLazyCoarse;
  system_config.standby_certifier = true;
  system_config.obs.sample_period = Millis(100);
  auto system_or = ReplicatedSystem::Create(
      &rt, system_config,
      [&workload](Database* db) { return workload.BuildSchema(db); },
      [&workload](const Database& db, sql::TransactionRegistry* reg) {
        return workload.DefineTransactions(db, reg);
      });
  ASSERT_TRUE(system_or.ok()) << system_or.status().ToString();
  auto system = std::move(*system_or);

  MetricsCollector metrics(/*warmup=*/0);
  Rng seed_rng(7);
  std::vector<std::unique_ptr<ClientDriver>> clients;
  for (int c = 0; c < 6; ++c) {
    clients.push_back(std::make_unique<ClientDriver>(
        system.get(), &metrics,
        workload.CreateGenerator(system->registry(), c, seed_rng.Fork()), c,
        ClientConfig{}, seed_rng.Fork()));
  }
  system->SetClientCallback([&clients](const TxnResponse& r) {
    clients[static_cast<size_t>(r.client_id)]->OnResponse(r);
  });
  for (auto& client : clients) client->Start();

  sim.Schedule(Seconds(1), [&system]() { system->CrashCertifier(); });
  const SimTime end = Seconds(2);
  sim.Schedule(end, [&clients, &system]() {
    for (auto& client : clients) client->Stop();
    system->StopGc();
    system->obs()->StopSampling();
  });
  sim.RunUntil(end);
  sim.RunAll();

  ASSERT_TRUE(system->CertifierFailedOver());
  ASSERT_GT(metrics.committed(), 0);

  const obs::Sampler* sampler = system->obs()->sampler();
  const size_t ticks = sampler->timestamps().size();
  // The sampler ran on both sides of the failover.
  ASSERT_GT(ticks, size_t{12});
  size_t certifier_series = 0;
  for (const auto& [name, values] : sampler->series()) {
    EXPECT_EQ(values.size(), ticks) << "series " << name << " misaligned";
    if (name.rfind("certifier.", 0) == 0) ++certifier_series;
  }
  EXPECT_GE(certifier_series, 3u);  // queue_depth, force_pending, disk_util

  // The promoted standby keeps certifying: commits keep landing after the
  // crash, so the post-failover half of the run shows certifier activity.
  EXPECT_GT(
      system->obs()->registry()->GetCounter("certifier.certified")->value(),
      0);
}

TEST(ObsIntegrationTest, ExperimentWritesValidJsonWithoutPerturbingRun) {
  const MicroWorkload workload(SmallMicro(0.25));
  ExperimentConfig config;
  config.system.level = ConsistencyLevel::kLazyCoarse;
  config.system.replica_count = 2;
  config.client_count = 6;
  config.warmup = Seconds(0.5);
  config.duration = Seconds(2);
  config.seed = 7;

  // Baseline: observability off.
  auto plain = RunExperiment(workload, config);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();

  // Same run with tracing + sampling + JSON export enabled.
  config.system.obs.trace_capacity = size_t{1} << 20;
  config.metrics_json_path = ::testing::TempDir() + "/obs_metrics.json";
  config.trace_json_path = ::testing::TempDir() + "/obs_trace.json";
  auto traced = RunExperiment(workload, config);
  ASSERT_TRUE(traced.ok()) << traced.status().ToString();

  // Observability must not perturb the simulation.
  EXPECT_EQ(plain->committed, traced->committed);
  EXPECT_EQ(plain->committed_updates, traced->committed_updates);
  EXPECT_EQ(plain->cert_aborts, traced->cert_aborts);
  EXPECT_EQ(plain->early_aborts, traced->early_aborts);
  EXPECT_DOUBLE_EQ(plain->mean_response_ms, traced->mean_response_ms);

  // The trace file is valid Chrome trace-event JSON, and every fully
  // captured committed update (it has both certify and commit spans)
  // went through at least 5 distinct span phases.
  auto trace = obs::JsonValue::Parse(ReadFileOrDie(config.trace_json_path));
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  EXPECT_EQ(trace->Find("displayTimeUnit")->str(), "ms");
  const obs::JsonValue* events = trace->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  std::map<int64_t, std::set<std::string>> phases_by_tid;
  for (const obs::JsonValue& event : events->array()) {
    if (event.Find("ph")->str() != "X") continue;
    const int64_t tid = static_cast<int64_t>(event.Find("tid")->number());
    if (tid == 0) continue;  // batch-level spans (log forces)
    phases_by_tid[tid].insert(event.Find("name")->str());
  }
  int committed_updates_traced = 0;
  for (const auto& [tid, phases] : phases_by_tid) {
    if (phases.count("proxy.certify") == 0 ||
        phases.count("proxy.apply") == 0) {
      continue;  // aborted or only partially captured
    }
    ++committed_updates_traced;
    EXPECT_GE(phases.size(), 5u) << "txn " << tid;
  }
  EXPECT_GT(committed_updates_traced, 0);

  // The metrics file carries the registry snapshot and the sampled
  // series, including a positive per-replica version lag under LSC.
  auto doc = obs::JsonValue::Parse(ReadFileOrDie(config.metrics_json_path));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const obs::JsonValue* counters =
      doc->Find("registry")->Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_GT(counters->Find("certifier.certified")->number(), 0);
  EXPECT_GT(counters->Find("lb.dispatched")->number(), 0);
  const obs::JsonValue* series = doc->Find("sampler")->Find("series");
  ASSERT_NE(series, nullptr);
  double max_lag = 0;
  for (int r = 0; r < config.system.replica_count; ++r) {
    const obs::JsonValue* lag =
        series->Find("replica" + std::to_string(r) + ".version_lag");
    ASSERT_NE(lag, nullptr) << "replica " << r;
    for (const obs::JsonValue& v : lag->array()) {
      max_lag = std::max(max_lag, v.number());
    }
  }
  EXPECT_GT(max_lag, 0);
}

}  // namespace
}  // namespace screp
