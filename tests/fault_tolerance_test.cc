// Failure injection: replica crash-stop and recovery (paper §IV's
#include "runtime/sim_runtime.h"
// crash-recovery model). Covers failover of in-flight transactions,
// catch-up from the certifier's durable log, eager-mode membership
// changes, and consistency of histories recorded across failures.

#include <gtest/gtest.h>

#include "consistency/checker.h"
#include "workload/experiment.h"
#include "workload/micro.h"

namespace screp {
namespace {

MicroConfig SmallMicro(double update_fraction) {
  MicroConfig config;
  config.rows_per_table = 200;
  config.update_fraction = update_fraction;
  return config;
}

ExperimentConfig FaultRun(ConsistencyLevel level, int replicas,
                          int clients) {
  ExperimentConfig config;
  config.system.level = level;
  config.system.replica_count = replicas;
  config.client_count = clients;
  config.warmup = Seconds(0.5);
  config.duration = Seconds(5);
  config.seed = 11;
  return config;
}

TEST(FaultToleranceTest, SystemSurvivesCrashWithoutRecovery) {
  MicroWorkload workload(SmallMicro(0.25));
  ExperimentConfig config = FaultRun(ConsistencyLevel::kLazyCoarse, 4, 8);
  config.faults.push_back(FaultEvent{2, Seconds(2), FaultEvent::kNoRecovery});
  auto result = RunExperiment(workload, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Clients whose transactions were in flight at replica 2 were failed
  // over and kept committing on the survivors.
  EXPECT_GT(result->committed, 1000);
  EXPECT_GE(result->replica_failures, 0);
}

TEST(FaultToleranceTest, ThroughputRecoversAfterRestart) {
  MicroWorkload workload(SmallMicro(0.25));
  ExperimentConfig with_fault = FaultRun(ConsistencyLevel::kLazyCoarse, 4, 8);
  with_fault.faults.push_back(FaultEvent{1, Seconds(1.5), Seconds(3)});
  auto faulty = RunExperiment(workload, with_fault);
  ASSERT_TRUE(faulty.ok());
  auto clean =
      RunExperiment(workload, FaultRun(ConsistencyLevel::kLazyCoarse, 4, 8));
  ASSERT_TRUE(clean.ok());
  // One replica missing for ~30% of the run costs some throughput but
  // nowhere near a proportional outage.
  EXPECT_GT(faulty->throughput_tps, clean->throughput_tps * 0.6);
}

TEST(FaultToleranceTest, RecoveredReplicaConvergesViaCatchUp) {
  // Drive the system directly so we can inspect replica state.
  Simulator sim;
  runtime::SimRuntime rt{&sim};
  SystemConfig config;
  config.replica_count = 3;
  config.level = ConsistencyLevel::kLazyCoarse;
  MicroWorkload workload(SmallMicro(1.0));
  auto system_or = ReplicatedSystem::Create(
      &rt, config,
      [&workload](Database* db) { return workload.BuildSchema(db); },
      [&workload](const Database& db, sql::TransactionRegistry* reg) {
        return workload.DefineTransactions(db, reg);
      });
  ASSERT_TRUE(system_or.ok());
  auto system = std::move(system_or).value();
  int retryable_failures = 0;
  std::vector<TxnResponse> responses;
  system->SetClientCallback([&](const TxnResponse& r) {
    responses.push_back(r);
    if (r.outcome == TxnOutcome::kReplicaFailure) ++retryable_failures;
  });
  auto submit_update = [&](int64_t key) {
    TxnRequest req;
    req.txn_id = system->NextTxnId();
    req.type = *system->registry().Find("update_item0");
    req.session = 1;
    req.params = {{Value(1), Value(key)}};
    system->Submit(std::move(req));
  };

  // Ten committed updates, then crash replica 2.
  for (int64_t k = 0; k < 10; ++k) submit_update(k);
  sim.RunAll();
  system->CrashReplica(2);
  EXPECT_TRUE(system->IsReplicaDown(2));
  const DbVersion at_crash = system->replica(2)->db()->CommittedVersion();

  // Twenty more updates while replica 2 is down.
  for (int64_t k = 10; k < 30; ++k) submit_update(k);
  sim.RunAll();
  EXPECT_EQ(system->replica(2)->db()->CommittedVersion(), at_crash);
  EXPECT_GT(system->replica(0)->db()->CommittedVersion(), at_crash);

  // Recover: replica 2 catches up from the certifier's log.
  system->RecoverReplica(2);
  sim.RunAll();
  EXPECT_FALSE(system->IsReplicaDown(2));
  const DbVersion v0 = system->replica(0)->db()->CommittedVersion();
  EXPECT_EQ(system->replica(2)->db()->CommittedVersion(), v0);

  // And it serves transactions again: run enough to hit it via routing.
  for (int64_t k = 30; k < 50; ++k) submit_update(k);
  sim.RunAll();
  EXPECT_EQ(system->replica(2)->db()->CommittedVersion(),
            system->replica(0)->db()->CommittedVersion());
}

TEST(FaultToleranceTest, InFlightTransactionsFailOverToClient) {
  Simulator sim;
  runtime::SimRuntime rt{&sim};
  SystemConfig config;
  config.replica_count = 2;
  config.level = ConsistencyLevel::kLazyCoarse;
  MicroWorkload workload(SmallMicro(1.0));
  auto system_or = ReplicatedSystem::Create(
      &rt, config,
      [&workload](Database* db) { return workload.BuildSchema(db); },
      [&workload](const Database& db, sql::TransactionRegistry* reg) {
        return workload.DefineTransactions(db, reg);
      });
  ASSERT_TRUE(system_or.ok());
  auto system = std::move(system_or).value();
  std::vector<TxnResponse> responses;
  system->SetClientCallback(
      [&](const TxnResponse& r) { responses.push_back(r); });
  // Submit four updates; crash replica 0 before anything executes.
  for (int64_t k = 0; k < 4; ++k) {
    TxnRequest req;
    req.txn_id = system->NextTxnId();
    req.type = *system->registry().Find("update_item0");
    req.session = 1;
    req.params = {{Value(1), Value(k)}};
    system->Submit(std::move(req));
  }
  sim.RunUntil(Millis(0.5));  // requests dispatched, none finished
  system->CrashReplica(0);
  sim.RunAll();
  ASSERT_EQ(responses.size(), 4u);
  int failures = 0, commits = 0;
  for (const auto& r : responses) {
    if (r.outcome == TxnOutcome::kReplicaFailure) ++failures;
    if (r.outcome == TxnOutcome::kCommitted) ++commits;
  }
  // Roughly half were routed to the crashed replica and failed over; the
  // rest committed on the survivor.
  EXPECT_EQ(failures + commits, 4);
  EXPECT_GT(failures, 0);
  EXPECT_GT(commits, 0);
}

TEST(FaultToleranceTest, EagerGlobalCommitNotBlockedByCrash) {
  Simulator sim;
  runtime::SimRuntime rt{&sim};
  SystemConfig config;
  config.replica_count = 3;
  config.level = ConsistencyLevel::kEager;
  MicroWorkload workload(SmallMicro(1.0));
  auto system_or = ReplicatedSystem::Create(
      &rt, config,
      [&workload](Database* db) { return workload.BuildSchema(db); },
      [&workload](const Database& db, sql::TransactionRegistry* reg) {
        return workload.DefineTransactions(db, reg);
      });
  ASSERT_TRUE(system_or.ok());
  auto system = std::move(system_or).value();
  std::vector<TxnResponse> responses;
  system->SetClientCallback(
      [&](const TxnResponse& r) { responses.push_back(r); });

  // Crash replica 2 first so the update must globally commit without it.
  system->CrashReplica(2);
  sim.RunAll();
  TxnRequest req;
  req.txn_id = system->NextTxnId();
  req.type = *system->registry().Find("update_item0");
  req.session = 1;
  req.params = {{Value(1), Value(0)}};
  system->Submit(std::move(req));
  sim.RunAll();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].outcome, TxnOutcome::kCommitted);
  EXPECT_GE(responses[0].stages.global, 0);

  // The recovered replica still converges.
  system->RecoverReplica(2);
  sim.RunAll();
  EXPECT_EQ(system->replica(2)->db()->CommittedVersion(),
            system->replica(0)->db()->CommittedVersion());
}

TEST(FaultToleranceTest, CrashDuringEagerWaitFailsOverTheOrigin) {
  Simulator sim;
  runtime::SimRuntime rt{&sim};
  SystemConfig config;
  config.replica_count = 3;
  config.level = ConsistencyLevel::kEager;
  // Make refresh application slow so the global wait window is wide.
  config.proxy.refresh_base = Millis(50);
  MicroWorkload workload(SmallMicro(1.0));
  auto system_or = ReplicatedSystem::Create(
      &rt, config,
      [&workload](Database* db) { return workload.BuildSchema(db); },
      [&workload](const Database& db, sql::TransactionRegistry* reg) {
        return workload.DefineTransactions(db, reg);
      });
  ASSERT_TRUE(system_or.ok());
  auto system = std::move(system_or).value();
  std::vector<TxnResponse> responses;
  system->SetClientCallback(
      [&](const TxnResponse& r) { responses.push_back(r); });
  TxnRequest req;
  req.txn_id = system->NextTxnId();
  req.type = *system->registry().Find("update_item0");
  req.session = 1;
  req.params = {{Value(1), Value(0)}};
  system->Submit(std::move(req));
  // Let it commit locally and enter the global wait, then crash the
  // origin (replica picked first by routing).
  sim.RunUntil(Millis(15));
  ASSERT_TRUE(responses.empty());
  system->CrashReplica(0);
  sim.RunAll();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].outcome, TxnOutcome::kReplicaFailure);
  // The transaction itself committed system-wide: survivors have it.
  EXPECT_EQ(system->replica(1)->db()->CommittedVersion(), 1);
  EXPECT_EQ(system->replica(2)->db()->CommittedVersion(), 1);
}

struct FaultCase {
  ConsistencyLevel level;
  double update_fraction;
};

class FaultPropertyTest : public ::testing::TestWithParam<FaultCase> {};

TEST_P(FaultPropertyTest, GuaranteesHoldAcrossCrashAndRecovery) {
  const FaultCase& param = GetParam();
  MicroWorkload workload(SmallMicro(param.update_fraction));
  History history;
  ExperimentConfig config = FaultRun(param.level, 4, 8);
  config.history = &history;
  config.faults.push_back(FaultEvent{1, Seconds(1.5), Seconds(3)});
  config.faults.push_back(FaultEvent{3, Seconds(2.5), Seconds(4)});
  auto result = RunExperiment(workload, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GT(history.size(), 100u);

  // Strong/session guarantees hold across crashes; the total-order
  // density check is skipped because a transaction can commit while its
  // acknowledgment is lost in the crash (its version exists but its
  // client saw a failure), which is indistinguishable from a gap in the
  // recorded history.
  if (ProvidesStrongConsistency(param.level)) {
    CheckResult strong = CheckStrongConsistency(history);
    EXPECT_TRUE(strong.ok) << strong.ToString();
  }
  CheckResult session = CheckSessionConsistency(history);
  EXPECT_TRUE(session.ok) << session.ToString();
  CheckResult fcw = CheckFirstCommitterWins(history);
  EXPECT_TRUE(fcw.ok) << fcw.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FaultPropertyTest,
    ::testing::Values(FaultCase{ConsistencyLevel::kEager, 0.5},
                      FaultCase{ConsistencyLevel::kLazyCoarse, 0.5},
                      FaultCase{ConsistencyLevel::kLazyFine, 0.5},
                      FaultCase{ConsistencyLevel::kSession, 0.5},
                      FaultCase{ConsistencyLevel::kLazyCoarse, 1.0},
                      FaultCase{ConsistencyLevel::kLazyFine, 0.1}),
    [](const ::testing::TestParamInfo<FaultCase>& info) {
      return std::string(ConsistencyLevelName(info.param.level)) + "_u" +
             std::to_string(
                 static_cast<int>(info.param.update_fraction * 100));
    });

}  // namespace
}  // namespace screp
