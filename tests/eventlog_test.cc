// Unit tests for the structured event log: enable gating, ring eviction,
// live sinks, JSONL export (including escaping round-trips through the
// JSON parser), and history replay.

#include <gtest/gtest.h>

#include "obs/eventlog.h"
#include "obs/json.h"

namespace screp::obs {
namespace {

Event MakeRoute(TxnId txn, SimTime at) {
  Event e;
  e.kind = EventKind::kRoute;
  e.txn = txn;
  e.at = at;
  e.replica = 1;
  e.required_version = 3;
  e.satisfied_version = 5;
  return e;
}

TEST(EventLogTest, DisabledLogDropsEverything) {
  EventLog log(8);
  int sink_calls = 0;
  log.AddSink([&sink_calls](const Event&) { ++sink_calls; });
  log.Append(MakeRoute(1, 10));
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.appended(), 0);
  EXPECT_EQ(sink_calls, 0);
}

TEST(EventLogTest, RingEvictsOldestButSinksSeeEveryEvent) {
  EventLog log(3);
  log.set_enabled(true);
  std::vector<TxnId> seen;
  log.AddSink([&seen](const Event& e) { seen.push_back(e.txn); });
  for (TxnId t = 1; t <= 5; ++t) log.Append(MakeRoute(t, t * 10));

  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.appended(), 5);
  EXPECT_EQ(log.dropped(), 2);
  const std::vector<Event> events = log.Events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].txn, 3);  // oldest retained
  EXPECT_EQ(events[2].txn, 5);
  EXPECT_EQ(seen, (std::vector<TxnId>{1, 2, 3, 4, 5}));
}

TEST(EventLogTest, JsonlLinesParseAndEscapeDetails) {
  EventLog log(8);
  log.set_enabled(true);
  Event abort;
  abort.kind = EventKind::kCertVerdict;
  abort.at = 42;
  abort.txn = 7;
  abort.committed = false;
  abort.conflict_version = 3;
  abort.conflict_txn = 5;
  abort.detail = "ww\"quote\\and\nnewline";
  log.Append(abort);
  log.Append(MakeRoute(8, 50));

  const std::string jsonl = log.ToJsonl();
  std::vector<std::string> lines;
  size_t pos = 0;
  while (pos < jsonl.size()) {
    const size_t nl = jsonl.find('\n', pos);
    lines.push_back(jsonl.substr(pos, nl - pos));
    pos = nl + 1;
  }
  ASSERT_EQ(lines.size(), 2u);
  // Every line must survive a strict parse, with the escaped detail
  // round-tripping to the original string.
  Result<JsonValue> doc = JsonValue::Parse(lines[0]);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Find("kind")->str(), "cert");
  ASSERT_NE(doc->Find("reason"), nullptr);
  EXPECT_EQ(doc->Find("reason")->str(), "ww\"quote\\and\nnewline");
  ASSERT_NE(doc->Find("conflict_version"), nullptr);
  EXPECT_DOUBLE_EQ(doc->Find("conflict_version")->number(), 3.0);
  Result<JsonValue> route = JsonValue::Parse(lines[1]);
  ASSERT_TRUE(route.ok()) << route.status().ToString();
  EXPECT_EQ(route->Find("kind")->str(), "route");
}

TEST(EventLogTest, ReplayHistoryRebuildsTxnRecords) {
  EventLog log(8);
  log.set_enabled(true);
  log.Append(MakeRoute(1, 10));  // non-finish events are skipped

  Event fin;
  fin.kind = EventKind::kTxnFinished;
  fin.at = 90;
  fin.txn = 1;
  fin.session = 2;
  fin.replica = 3;
  fin.snapshot = 4;
  fin.commit_version = 5;
  fin.committed = true;
  fin.read_only = false;
  fin.submit_time = 10;
  fin.start_time = 20;
  fin.table_set = {0, 1};
  fin.tables_written = {1};
  fin.keys_written = {{1, 77}};
  log.Append(fin);

  const History history = log.ReplayHistory();
  ASSERT_EQ(history.size(), 1u);
  const TxnRecord& r = history.records()[0];
  EXPECT_EQ(r.id, 1);
  EXPECT_EQ(r.session, 2);
  EXPECT_EQ(r.replica, 3);
  EXPECT_EQ(r.snapshot, 4);
  EXPECT_EQ(r.commit_version, 5);
  EXPECT_TRUE(r.committed);
  EXPECT_FALSE(r.read_only);
  EXPECT_EQ(r.submit_time, 10);
  EXPECT_EQ(r.start_time, 20);
  EXPECT_EQ(r.ack_time, 90);
  EXPECT_EQ(r.table_set, (std::vector<TableId>{0, 1}));
  EXPECT_EQ(r.tables_written, (std::vector<TableId>{1}));
  ASSERT_EQ(r.keys_written.size(), 1u);
  EXPECT_EQ(r.keys_written[0], (std::pair<TableId, int64_t>{1, 77}));
}

TEST(EventLogTest, KindAndWaitCauseNamesAreStable) {
  EXPECT_STREQ(EventKindName(EventKind::kBeginAdmitted), "begin");
  EXPECT_STREQ(EventKindName(EventKind::kFailover), "failover");
  EXPECT_STREQ(WaitCauseName(WaitCause::kSystemVersion), "system_version");
  EXPECT_STREQ(WaitCauseName(WaitCause::kEagerGlobal), "eager_global");
}

}  // namespace
}  // namespace screp::obs
