// Network fault injection end to end: loss / jitter / reordering on the
#include "runtime/sim_runtime.h"
// certifier -> replica refresh stream (reliable channel absorbs them),
// replica partition + heal, and refresh batching equivalence.

#include <gtest/gtest.h>

#include <map>

#include "consistency/checker.h"
#include "workload/experiment.h"
#include "workload/micro.h"

namespace screp {
namespace {

MicroConfig SmallMicro(double update_fraction) {
  MicroConfig config;
  config.rows_per_table = 200;
  config.update_fraction = update_fraction;
  return config;
}

ExperimentConfig NetRun(ConsistencyLevel level) {
  ExperimentConfig config;
  config.system.level = level;
  config.system.replica_count = 3;
  config.client_count = 8;
  config.warmup = Seconds(0.5);
  config.duration = Seconds(3);
  config.seed = 17;
  config.audit = true;
  return config;
}

std::unique_ptr<ReplicatedSystem> BuildDirect(runtime::Runtime* rt,
                                              MicroWorkload* workload,
                                              SystemConfig config) {
  auto system_or = ReplicatedSystem::Create(
      rt, config,
      [workload](Database* db) { return workload->BuildSchema(db); },
      [workload](const Database& db, sql::TransactionRegistry* reg) {
        return workload->DefineTransactions(db, reg);
      });
  SCREP_CHECK(system_or.ok());
  return std::move(system_or).value();
}

// Loss + jitter on the refresh stream: the reliable channel retransmits
// and resequences, so every consistency level stays audit-clean.
class RefreshLossPropertyTest
    : public ::testing::TestWithParam<ConsistencyLevel> {};

TEST_P(RefreshLossPropertyTest, AuditCleanUnderLossAndJitter) {
  MicroWorkload workload(SmallMicro(0.5));
  ExperimentConfig config = NetRun(GetParam());
  config.system.network.refresh.drop_probability = 0.05;
  config.system.network.refresh.jitter_mean = Micros(200);
  auto result = RunExperiment(workload, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->committed, 500);
  EXPECT_TRUE(result->audit.enabled);
  EXPECT_TRUE(result->audit.ok) << result->audit.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Levels, RefreshLossPropertyTest,
    ::testing::Values(ConsistencyLevel::kEager, ConsistencyLevel::kLazyCoarse,
                      ConsistencyLevel::kLazyFine, ConsistencyLevel::kSession),
    [](const ::testing::TestParamInfo<ConsistencyLevel>& info) {
      return std::string(ConsistencyLevelName(info.param));
    });

TEST(NetFaultIntegrationTest, AuditCleanUnderRefreshReorderAndDuplication) {
  MicroWorkload workload(SmallMicro(0.5));
  ExperimentConfig config = NetRun(ConsistencyLevel::kLazyCoarse);
  config.system.network.refresh.reorder_probability = 0.2;
  config.system.network.refresh.reorder_window = Micros(600);
  config.system.network.refresh.duplicate_probability = 0.1;
  auto result = RunExperiment(workload, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->committed, 500);
  EXPECT_TRUE(result->audit.ok) << result->audit.ToString();
}

TEST(NetFaultIntegrationTest, AuditCleanUnderLossWithRefreshBatching) {
  MicroWorkload workload(SmallMicro(0.5));
  ExperimentConfig config = NetRun(ConsistencyLevel::kLazyCoarse);
  config.system.certifier.refresh_batching = true;
  config.system.network.refresh.drop_probability = 0.05;
  auto result = RunExperiment(workload, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->committed, 500);
  EXPECT_TRUE(result->audit.ok) << result->audit.ToString();
}

TEST(NetFaultIntegrationTest, PartitionedReplicaHealsAndCatchesUp) {
  Simulator sim;
  runtime::SimRuntime rt{&sim};
  SystemConfig config;
  config.replica_count = 3;
  config.level = ConsistencyLevel::kLazyCoarse;
  MicroWorkload workload(SmallMicro(1.0));
  auto system = BuildDirect(&rt, &workload, config);
  std::vector<TxnResponse> responses;
  system->SetClientCallback(
      [&](const TxnResponse& r) { responses.push_back(r); });
  auto submit_update = [&](int64_t key) {
    TxnRequest req;
    req.txn_id = system->NextTxnId();
    req.type = *system->registry().Find("update_item0");
    req.session = 1;
    req.params = {{Value(1), Value(key)}};
    system->Submit(std::move(req));
  };

  // Ten committed updates, then cut every link to replica 2.
  for (int64_t k = 0; k < 10; ++k) submit_update(k);
  sim.RunAll();
  ASSERT_EQ(responses.size(), 10u);
  system->PartitionReplica(2);
  EXPECT_TRUE(system->IsReplicaPartitioned(2));
  EXPECT_FALSE(system->IsReplicaDown(2));  // the process is alive
  const DbVersion at_partition = system->replica(2)->db()->CommittedVersion();

  // Twenty more while partitioned; requests routed to replica 2 before
  // the silence is detected are failed over to their clients by the LB.
  for (int64_t k = 10; k < 30; ++k) submit_update(k);
  sim.RunAll();
  ASSERT_EQ(responses.size(), 30u);
  int failed_over = 0, committed = 0;
  for (const auto& r : responses) {
    if (r.outcome == TxnOutcome::kReplicaFailure) ++failed_over;
    if (r.outcome == TxnOutcome::kCommitted) ++committed;
  }
  EXPECT_GT(failed_over, 0);
  EXPECT_GT(committed, 10);
  // Nothing crossed the partition: replica 2 is frozen, survivors moved.
  // (Requests routed to it before the LB detected the silence dropped at
  // the dispatch link; once detected, the certifier stops fanning out to
  // it, so the refresh channel sees no traffic at all.)
  EXPECT_EQ(system->replica(2)->db()->CommittedVersion(), at_partition);
  EXPECT_GT(system->replica(0)->db()->CommittedVersion(), at_partition);
  EXPECT_GT(system->dispatch_channel(2)->stats().dropped, 0);

  // Heal: replica 2 catches up out of band and rejoins routing.
  system->HealReplicaPartition(2);
  sim.RunAll();
  EXPECT_FALSE(system->IsReplicaPartitioned(2));
  EXPECT_EQ(system->replica(2)->db()->CommittedVersion(),
            system->replica(0)->db()->CommittedVersion());

  // And it serves traffic again: later updates keep all replicas equal.
  for (int64_t k = 30; k < 50; ++k) submit_update(k);
  sim.RunAll();
  EXPECT_EQ(system->replica(2)->db()->CommittedVersion(),
            system->replica(0)->db()->CommittedVersion());
  EXPECT_EQ(system->replica(1)->db()->CommittedVersion(),
            system->replica(0)->db()->CommittedVersion());
}

TEST(NetFaultIntegrationTest, RefreshBatchingEquivalentAndFewerMessages) {
  // Same submission sequence against two systems differing only in
  // certifier.refresh_batching; outcomes and final state must match,
  // while the batched refresh fan-out uses strictly fewer messages.
  auto run = [&](bool batching) {
    struct Run {
      std::map<TxnId, TxnOutcome> outcomes;
      DbVersion final_version = 0;
      int64_t refresh_messages = 0;
      int64_t refresh_writesets = 0;
    } out;
    Simulator sim;
    runtime::SimRuntime rt{&sim};
    SystemConfig config;
    config.replica_count = 3;
    config.level = ConsistencyLevel::kLazyCoarse;
    config.certifier.refresh_batching = batching;
    MicroWorkload workload(SmallMicro(1.0));
    auto system = BuildDirect(&rt, &workload, config);
    system->SetClientCallback([&](const TxnResponse& r) {
      out.outcomes[r.txn_id] = r.outcome;
    });
    // Back-to-back submissions pile up behind the 0.8ms log force, so
    // group commits carry batches larger than one.
    for (int64_t k = 0; k < 100; ++k) {
      TxnRequest req;
      req.txn_id = system->NextTxnId();
      req.type = *system->registry().Find("update_item0");
      req.session = 1;
      req.params = {{Value(1), Value(k % 50)}};
      system->Submit(std::move(req));
    }
    sim.RunAll();
    out.final_version = system->replica(0)->db()->CommittedVersion();
    for (int r = 0; r < system->replica_count(); ++r) {
      EXPECT_EQ(system->replica(r)->db()->CommittedVersion(),
                out.final_version);
      out.refresh_messages += system->refresh_channel(r)->stats().sent;
    }
    return out;
  };

  const auto unbatched = run(false);
  const auto batched = run(true);
  ASSERT_EQ(unbatched.outcomes.size(), 100u);
  EXPECT_EQ(batched.outcomes, unbatched.outcomes);
  EXPECT_EQ(batched.final_version, unbatched.final_version);
  EXPECT_GT(batched.refresh_messages, 0);
  EXPECT_LT(batched.refresh_messages, unbatched.refresh_messages);
}

}  // namespace
}  // namespace screp
