#include "replication/load_balancer.h"
#include "runtime/sim_runtime.h"

#include <gtest/gtest.h>

namespace screp {
namespace {

constexpr TableId kA = 0, kB = 1;

class LoadBalancerTest : public ::testing::Test {
 protected:
  void Build(ConsistencyLevel level, int replicas = 3,
             AdmissionConfig admission = AdmissionConfig{}) {
    lb_ = std::make_unique<LoadBalancer>(&rt_, level, 2, replicas,
                                         RoutingPolicy::kLeastActive, 0,
                                         admission);
    lb_->SetDispatchCallback([this](ReplicaId replica,
                                    const TxnRequest& request,
                                    DbVersion required) {
      dispatches_.push_back({replica, request, required});
    });
    lb_->SetClientResponseCallback(
        [this](const TxnResponse& r) { client_responses_.push_back(r); });
    lb_->SetTableSets({{0, {kA}}, {1, {kB}}, {2, {kA, kB}}});
  }

  TxnRequest MakeRequest(TxnId id, TxnTypeId type, SessionId session) {
    TxnRequest req;
    req.txn_id = id;
    req.type = type;
    req.session = session;
    return req;
  }

  TxnResponse MakeResponse(TxnId id, ReplicaId replica, SessionId session,
                           DbVersion v_local,
                           std::vector<std::pair<TableId, DbVersion>>
                               written = {}) {
    TxnResponse r;
    r.txn_id = id;
    r.replica = replica;
    r.session = session;
    r.outcome = TxnOutcome::kCommitted;
    r.v_local_after = v_local;
    r.written_table_versions = std::move(written);
    return r;
  }

  struct Dispatch {
    ReplicaId replica;
    TxnRequest request;
    DbVersion required;
  };

  Simulator sim_;
  runtime::SimRuntime rt_{&sim_};
  std::unique_ptr<LoadBalancer> lb_;
  std::vector<Dispatch> dispatches_;
  std::vector<TxnResponse> client_responses_;
};

TEST_F(LoadBalancerTest, SpreadsLoadAcrossIdleReplicas) {
  Build(ConsistencyLevel::kLazyCoarse);
  for (TxnId t = 0; t < 3; ++t) {
    lb_->OnClientRequest(MakeRequest(t, 0, 1));
  }
  ASSERT_EQ(dispatches_.size(), 3u);
  // Least-active with rotating tie-break: all three replicas used.
  std::vector<bool> used(3, false);
  for (const auto& d : dispatches_) {
    used[static_cast<size_t>(d.replica)] = true;
  }
  EXPECT_TRUE(used[0] && used[1] && used[2]);
}

TEST_F(LoadBalancerTest, RoutesToLeastActiveReplica) {
  Build(ConsistencyLevel::kLazyCoarse);
  // Occupy replicas 0 and 1 with one transaction each; finish replica 1's.
  lb_->OnClientRequest(MakeRequest(1, 0, 1));
  lb_->OnClientRequest(MakeRequest(2, 0, 1));
  lb_->OnClientRequest(MakeRequest(3, 0, 1));
  EXPECT_EQ(lb_->ActiveAt(0), 1);
  EXPECT_EQ(lb_->ActiveAt(1), 1);
  EXPECT_EQ(lb_->ActiveAt(2), 1);
  lb_->OnProxyResponse(MakeResponse(2, 1, 1, 0));
  EXPECT_EQ(lb_->ActiveAt(1), 0);
  lb_->OnClientRequest(MakeRequest(4, 0, 1));
  EXPECT_EQ(dispatches_.back().replica, 1);  // the only idle replica
}

TEST_F(LoadBalancerTest, CoarseTagsWithSystemVersion) {
  Build(ConsistencyLevel::kLazyCoarse);
  lb_->OnClientRequest(MakeRequest(1, 0, 1));
  EXPECT_EQ(dispatches_[0].required, 0);
  lb_->OnProxyResponse(MakeResponse(1, dispatches_[0].replica, 1, 5,
                                    {{kA, 5}}));
  // Any session's next transaction must see version 5.
  lb_->OnClientRequest(MakeRequest(2, 1, 99));
  EXPECT_EQ(dispatches_[1].required, 5);
}

TEST_F(LoadBalancerTest, FineTagsWithTableSetVersion) {
  Build(ConsistencyLevel::kLazyFine);
  lb_->OnClientRequest(MakeRequest(1, 0, 1));
  lb_->OnProxyResponse(
      MakeResponse(1, dispatches_[0].replica, 1, 5, {{kA, 5}}));
  // Type 1 touches only table B: no wait.
  lb_->OnClientRequest(MakeRequest(2, 1, 2));
  EXPECT_EQ(dispatches_[1].required, 0);
  // Type 0 (table A) and type 2 (A and B) must wait for version 5.
  lb_->OnClientRequest(MakeRequest(3, 0, 2));
  EXPECT_EQ(dispatches_[2].required, 5);
  lb_->OnClientRequest(MakeRequest(4, 2, 2));
  EXPECT_EQ(dispatches_[3].required, 5);
}

TEST_F(LoadBalancerTest, SessionTagsPerSession) {
  Build(ConsistencyLevel::kSession);
  lb_->OnClientRequest(MakeRequest(1, 0, 7));
  lb_->OnProxyResponse(
      MakeResponse(1, dispatches_[0].replica, 7, 4, {{kA, 4}}));
  lb_->OnClientRequest(MakeRequest(2, 0, 7));  // same session
  EXPECT_EQ(dispatches_[1].required, 4);
  lb_->OnClientRequest(MakeRequest(3, 0, 8));  // other session
  EXPECT_EQ(dispatches_[2].required, 0);
}

TEST_F(LoadBalancerTest, EagerNeverTags) {
  Build(ConsistencyLevel::kEager);
  lb_->OnClientRequest(MakeRequest(1, 0, 1));
  lb_->OnProxyResponse(
      MakeResponse(1, dispatches_[0].replica, 1, 9, {{kA, 9}}));
  lb_->OnClientRequest(MakeRequest(2, 0, 1));
  EXPECT_EQ(dispatches_[1].required, 0);
}

TEST_F(LoadBalancerTest, AbortedResponsesDoNotAdvanceVersions) {
  Build(ConsistencyLevel::kLazyCoarse);
  lb_->OnClientRequest(MakeRequest(1, 0, 1));
  TxnResponse aborted = MakeResponse(1, dispatches_[0].replica, 1, 9);
  aborted.outcome = TxnOutcome::kCertificationAbort;
  lb_->OnProxyResponse(aborted);
  lb_->OnClientRequest(MakeRequest(2, 0, 1));
  EXPECT_EQ(dispatches_[1].required, 0);
  // But the client still got the response and the replica slot freed.
  EXPECT_EQ(client_responses_.size(), 1u);
  EXPECT_EQ(lb_->ActiveAt(dispatches_[0].replica), 0);
}

TEST_F(LoadBalancerTest, ResponsesRelayedToClients) {
  Build(ConsistencyLevel::kLazyCoarse);
  lb_->OnClientRequest(MakeRequest(1, 0, 1));
  lb_->OnProxyResponse(MakeResponse(1, dispatches_[0].replica, 1, 1));
  ASSERT_EQ(client_responses_.size(), 1u);
  EXPECT_EQ(client_responses_[0].txn_id, 1u);
  EXPECT_EQ(lb_->dispatched_count(), 1);
}

TEST_F(LoadBalancerTest, SingleReplicaAlwaysPicked) {
  Build(ConsistencyLevel::kLazyCoarse, /*replicas=*/1);
  for (TxnId t = 0; t < 5; ++t) {
    lb_->OnClientRequest(MakeRequest(t, 0, 1));
  }
  for (const auto& d : dispatches_) EXPECT_EQ(d.replica, 0);
}

TEST_F(LoadBalancerTest, AllReplicasDownFailsRequestBackToClient) {
  Build(ConsistencyLevel::kLazyCoarse);
  for (ReplicaId r = 0; r < 3; ++r) lb_->MarkReplicaDown(r);
  // No live replica: the request must fail back, not abort the process.
  lb_->OnClientRequest(MakeRequest(1, 0, 1));
  EXPECT_TRUE(dispatches_.empty());
  ASSERT_EQ(client_responses_.size(), 1u);
  EXPECT_EQ(client_responses_[0].outcome, TxnOutcome::kReplicaFailure);
  EXPECT_EQ(client_responses_[0].replica, kNoReplica);
  EXPECT_EQ(lb_->unroutable_count(), 1);
  // One replica back: routable again.
  lb_->MarkReplicaUp(1);
  lb_->OnClientRequest(MakeRequest(2, 0, 1));
  ASSERT_EQ(dispatches_.size(), 1u);
  EXPECT_EQ(dispatches_[0].replica, 1);
}

TEST_F(LoadBalancerTest, AdmissionWindowQueuesThenSheds) {
  AdmissionConfig admission;
  admission.max_outstanding_per_replica = 1;
  admission.admission_queue_limit = 2;
  Build(ConsistencyLevel::kLazyCoarse, /*replicas=*/2, admission);
  // Two dispatches fill both windows; two more queue; the fifth is shed.
  for (TxnId t = 1; t <= 5; ++t) {
    lb_->OnClientRequest(MakeRequest(t, 0, 1));
  }
  EXPECT_EQ(dispatches_.size(), 2u);
  EXPECT_EQ(lb_->admission_queue_depth(), 2u);
  EXPECT_EQ(lb_->peak_admission_queue(), 2u);
  ASSERT_EQ(client_responses_.size(), 1u);
  EXPECT_EQ(client_responses_[0].txn_id, 5u);
  EXPECT_EQ(client_responses_[0].outcome, TxnOutcome::kOverloaded);
  EXPECT_EQ(lb_->shed_count(), 1);
  // A finished transaction frees a window slot and drains the queue FIFO.
  lb_->OnProxyResponse(MakeResponse(dispatches_[0].request.txn_id,
                                    dispatches_[0].replica, 1, 1));
  ASSERT_EQ(dispatches_.size(), 3u);
  EXPECT_EQ(dispatches_[2].request.txn_id, 3u);
  EXPECT_EQ(lb_->admission_queue_depth(), 1u);
}

TEST_F(LoadBalancerTest, MarkReplicaDownFailsQueuedRequestsWhenLastDies) {
  AdmissionConfig admission;
  admission.max_outstanding_per_replica = 1;
  Build(ConsistencyLevel::kLazyCoarse, /*replicas=*/1, admission);
  lb_->OnClientRequest(MakeRequest(1, 0, 1));  // dispatched
  lb_->OnClientRequest(MakeRequest(2, 0, 1));  // queued (window full)
  EXPECT_EQ(lb_->admission_queue_depth(), 1u);
  lb_->MarkReplicaDown(0);
  // Both the outstanding and the queued request fail back to clients.
  ASSERT_EQ(client_responses_.size(), 2u);
  EXPECT_EQ(client_responses_[0].outcome, TxnOutcome::kReplicaFailure);
  EXPECT_EQ(client_responses_[1].outcome, TxnOutcome::kReplicaFailure);
  EXPECT_EQ(lb_->admission_queue_depth(), 0u);
}

TEST_F(LoadBalancerTest, EndSessionDropsTrackerEntry) {
  Build(ConsistencyLevel::kSession);
  lb_->OnClientRequest(MakeRequest(1, 0, 7));
  lb_->OnProxyResponse(
      MakeResponse(1, dispatches_[0].replica, 7, 4, {{kA, 4}}));
  EXPECT_EQ(lb_->policy().sessions().session_count(), 1u);
  lb_->EndSession(7);
  EXPECT_EQ(lb_->policy().sessions().session_count(), 0u);
  // A later request under the same SID re-creates the entry safely, with
  // the conservative (no-requirement) floor.
  lb_->OnClientRequest(MakeRequest(2, 0, 7));
  EXPECT_EQ(dispatches_[1].required, 0);
}

}  // namespace
}  // namespace screp
