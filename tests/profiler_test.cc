// Unit tests for the critical-path profiler: span/event assembly,
// conservation checking, retry attribution, duplicate-span and stale-
// finish handling, and the JSON report shape — plus the Prometheus
// text-exposition escaping round trip and the tracer's sink plumbing.

#include <string>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/metrics_registry.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace screp::obs {
namespace {

TraceSpan Span(const char* name, TxnId txn, SimTime duration) {
  TraceSpan span;
  span.name = name;
  span.category = "test";
  span.tid = static_cast<int64_t>(txn);
  span.duration = duration;
  span.txn = txn;
  return span;
}

Event Finished(TxnId txn, SimTime submit, SimTime ack, bool committed) {
  Event e;
  e.kind = EventKind::kTxnFinished;
  e.at = ack;
  e.txn = txn;
  e.submit_time = submit;
  e.committed = committed;
  return e;
}

Event Timeout(TxnId txn, SimTime at, SimTime wait) {
  Event e;
  e.kind = EventKind::kTimeout;
  e.at = at;
  e.txn = txn;
  e.wait = wait;
  return e;
}

TEST(ProfilerTest, CommittedAttemptConserves) {
  Profiler profiler;
  profiler.OnSpan(Span("net.client_lb", 1, 100));
  profiler.OnSpan(Span("net.dispatch", 1, 200));
  profiler.OnSpan(Span("proxy.start_delay", 1, 50));
  profiler.OnSpan(Span("proxy.exec", 1, 400));
  profiler.OnSpan(Span("net.certreq", 1, 150));
  profiler.OnSpan(Span("certifier.intake_wait", 1, 10));
  profiler.OnSpan(Span("certifier.certify", 1, 120));
  profiler.OnSpan(Span("certifier.force_wait", 1, 30));
  profiler.OnSpan(Span("net.decision", 1, 150));
  profiler.OnSpan(Span("proxy.gap_wait", 1, 5));
  profiler.OnSpan(Span("proxy.lane_wait", 1, 15));
  profiler.OnSpan(Span("proxy.apply", 1, 300));
  profiler.OnSpan(Span("proxy.publish_wait", 1, 20));
  profiler.OnSpan(Span("net.response", 1, 200));
  profiler.OnSpan(Span("net.lb_client", 1, 100));
  const SimTime total = 100 + 200 + 50 + 400 + 150 + 10 + 120 + 30 + 150 +
                        5 + 15 + 300 + 20 + 200 + 100;
  profiler.OnEvent(Finished(1, 1000, 1000 + total, /*committed=*/true));

  EXPECT_EQ(profiler.finished(), 1);
  EXPECT_EQ(profiler.committed_count(), 1);
  EXPECT_EQ(profiler.conservation_checked(), 1);
  EXPECT_EQ(profiler.conservation_violations(), 0);
  EXPECT_EQ(profiler.max_abs_residual(), 0);
  ASSERT_EQ(profiler.attempts().size(), 1u);
  const Profiler::Attempt& attempt = profiler.attempts()[0];
  EXPECT_EQ(attempt.total, total);
  EXPECT_EQ(attempt.seg[static_cast<size_t>(ProfileSegment::kExec)], 400);
  // The two LB<->replica hops land in one exclusive segment.
  EXPECT_EQ(attempt.seg[static_cast<size_t>(ProfileSegment::kNetLbReplica)],
            400);
  EXPECT_EQ(attempt.seg[static_cast<size_t>(ProfileSegment::kRetry)], 0);
}

TEST(ProfilerTest, CommittedShortfallIsAViolation) {
  Profiler profiler;
  profiler.OnSpan(Span("proxy.exec", 2, 400));
  profiler.OnEvent(Finished(2, 0, 1000, /*committed=*/true));
  EXPECT_EQ(profiler.conservation_checked(), 1);
  EXPECT_EQ(profiler.conservation_violations(), 1);
  EXPECT_EQ(profiler.max_abs_residual(), 600);
  EXPECT_FALSE(profiler.first_violation().empty());
}

TEST(ProfilerTest, ToleranceAbsorbsOneTick) {
  Profiler profiler;
  profiler.OnSpan(Span("proxy.exec", 3, 999));
  profiler.OnEvent(Finished(3, 0, 1000, /*committed=*/true));
  EXPECT_EQ(profiler.conservation_violations(), 0);
  EXPECT_EQ(profiler.max_abs_residual(), 1);
}

TEST(ProfilerTest, FailedAttemptResidualBecomesRetry) {
  Profiler profiler;
  profiler.OnSpan(Span("net.client_lb", 4, 100));
  profiler.OnSpan(Span("proxy.exec", 4, 200));
  profiler.OnEvent(Finished(4, 0, 1000, /*committed=*/false));
  EXPECT_EQ(profiler.failed(), 1);
  EXPECT_EQ(profiler.conservation_checked(), 0);  // only commits checked
  EXPECT_EQ(profiler.conservation_violations(), 0);
  ASSERT_EQ(profiler.attempts().size(), 1u);
  EXPECT_EQ(profiler.attempts()[0].seg[static_cast<size_t>(
                ProfileSegment::kRetry)],
            700);
}

TEST(ProfilerTest, FailedAttemptOvercountIsAViolation) {
  Profiler profiler;
  profiler.OnSpan(Span("proxy.exec", 5, 2000));
  profiler.OnEvent(Finished(5, 0, 1000, /*committed=*/false));
  EXPECT_EQ(profiler.conservation_violations(), 1);
}

TEST(ProfilerTest, DuplicateSpanDeliveriesCountOnce) {
  Profiler profiler;
  profiler.OnSpan(Span("proxy.exec", 6, 400));
  profiler.OnSpan(Span("proxy.exec", 6, 400));  // duplicated delivery
  profiler.OnEvent(Finished(6, 0, 400, /*committed=*/true));
  EXPECT_EQ(profiler.conservation_violations(), 0);
  EXPECT_EQ(profiler.attempts()[0].seg[static_cast<size_t>(
                ProfileSegment::kExec)],
            400);
}

TEST(ProfilerTest, UnknownSpansAndTxnZeroIgnored) {
  Profiler profiler;
  profiler.OnSpan(Span("certifier.log_force", 0, 500));  // batch span
  profiler.OnSpan(Span("proxy.stmt", 7, 123));           // per-statement
  profiler.OnSpan(Span("lb.route", 7, 0));
  profiler.OnSpan(Span("proxy.certify", 7, 999));  // overlaps net+certifier
  profiler.OnSpan(Span("proxy.exec", 7, 400));
  profiler.OnEvent(Finished(7, 0, 400, /*committed=*/true));
  EXPECT_EQ(profiler.conservation_violations(), 0);
}

TEST(ProfilerTest, TimeoutThenStaleFinishIgnored) {
  Profiler profiler;
  profiler.OnSpan(Span("proxy.exec", 8, 100));
  profiler.OnEvent(Timeout(8, 5000, 1000));
  EXPECT_EQ(profiler.timeouts(), 1);
  EXPECT_EQ(profiler.finished(), 1);
  ASSERT_EQ(profiler.attempts().size(), 1u);
  EXPECT_TRUE(profiler.attempts()[0].timed_out);
  EXPECT_EQ(profiler.attempts()[0].total, 1000);
  // The response eventually lands after the client gave up: it must not
  // produce a second attempt.
  profiler.OnEvent(Finished(8, 4000, 6000, /*committed=*/true));
  EXPECT_EQ(profiler.finished(), 1);
  EXPECT_EQ(profiler.stale_finishes(), 1);
}

TEST(ProfilerTest, WarmupAttemptsExcludedFromAggregates) {
  Profiler profiler;
  profiler.set_measure_from(500);
  profiler.OnSpan(Span("proxy.exec", 9, 400));
  profiler.OnEvent(Finished(9, 0, 400, /*committed=*/true));  // in warm-up
  profiler.OnSpan(Span("proxy.exec", 10, 800));
  profiler.OnEvent(Finished(10, 0, 800, /*committed=*/true));
  EXPECT_EQ(profiler.finished(), 2);
  EXPECT_EQ(profiler.measured(), 1);
  // Conservation is still checked on the warm-up attempt.
  EXPECT_EQ(profiler.conservation_checked(), 2);
  EXPECT_DOUBLE_EQ(profiler.MeanSegmentMs(ProfileSegment::kExec), 0.8);
}

TEST(ProfilerTest, MeanSegmentsSumToMeanResponse) {
  Profiler profiler;
  profiler.OnSpan(Span("proxy.exec", 11, 400));
  profiler.OnEvent(Finished(11, 0, 400, /*committed=*/true));
  profiler.OnSpan(Span("net.client_lb", 12, 100));
  profiler.OnEvent(Finished(12, 0, 600, /*committed=*/false));
  double sum = 0;
  for (int s = 0; s < kProfileSegmentCount; ++s) {
    sum += profiler.MeanSegmentMs(static_cast<ProfileSegment>(s));
  }
  EXPECT_NEAR(sum, (400 + 600) / 2 / 1e3, 1e-12);
}

TEST(ProfilerTest, JsonReportShape) {
  Profiler profiler;
  profiler.OnSpan(Span("proxy.exec", 13, 400));
  profiler.OnSpan(Span("eager.global_wait", 13, 100));
  profiler.OnEvent(Finished(13, 0, 500, /*committed=*/true));
  auto doc = JsonValue::Parse(profiler.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Find("counts")->Find("finished")->number(), 1);
  EXPECT_EQ(doc->Find("conservation")->Find("checked")->number(), 1);
  EXPECT_EQ(doc->Find("conservation")->Find("violations")->number(), 0);
  const JsonValue* exec = doc->Find("segments")->Find("exec");
  ASSERT_NE(exec, nullptr);
  EXPECT_EQ(exec->Find("kind")->str(), "service");
  EXPECT_DOUBLE_EQ(exec->Find("mean_ms")->number(), 0.4);
  const JsonValue* global = doc->Find("segments")->Find("global_wait");
  ASSERT_NE(global, nullptr);
  EXPECT_EQ(global->Find("kind")->str(), "wait");
  ASSERT_NE(doc->Find("bands"), nullptr);
  ASSERT_NE(doc->Find("bands")->Find("gt_p99"), nullptr);
}

TEST(ProfilerTest, SegmentNamesAndKindsCoverAllSegments) {
  for (int s = 0; s < kProfileSegmentCount; ++s) {
    const auto segment = static_cast<ProfileSegment>(s);
    EXPECT_STRNE(ProfileSegmentName(segment), "");
    const char* kind = SegmentKindName(ProfileSegmentKind(segment));
    EXPECT_TRUE(std::string(kind) == "wait" ||
                std::string(kind) == "service" ||
                std::string(kind) == "network")
        << ProfileSegmentName(segment);
  }
}

TEST(TracerSinkTest, SinksSeeSpansWhileRingDisabled) {
  Tracer tracer(/*capacity=*/4);
  EXPECT_FALSE(tracer.active());
  int seen = 0;
  tracer.AddSink([&seen](const TraceSpan&) { ++seen; });
  EXPECT_TRUE(tracer.active());  // sinks make the tracer worth feeding
  EXPECT_FALSE(tracer.enabled());
  tracer.Add(Span("proxy.exec", 1, 10));
  EXPECT_EQ(seen, 1);
  EXPECT_TRUE(tracer.Spans().empty());  // the ring stays off
  EXPECT_EQ(tracer.dropped(), 0);
}

TEST(TracerSinkTest, SinksSeeSpansTheRingEvicts) {
  Tracer tracer(/*capacity=*/2);
  tracer.set_enabled(true);
  int seen = 0;
  tracer.AddSink([&seen](const TraceSpan&) { ++seen; });
  for (TxnId t = 1; t <= 5; ++t) tracer.Add(Span("proxy.exec", t, 10));
  EXPECT_EQ(seen, 5);
  EXPECT_EQ(tracer.Spans().size(), 2u);
  EXPECT_EQ(tracer.dropped(), 3);
}

TEST(PrometheusTest, EscapeRoundTrip) {
  const std::string tricky[] = {
      "plain.name", "with\"quote", "back\\slash", "new\nline",
      "all\\three\"\n\\\"", ""};
  for (const std::string& s : tricky) {
    EXPECT_EQ(PrometheusUnescapeLabel(PrometheusEscapeLabel(s)), s) << s;
  }
  EXPECT_EQ(PrometheusEscapeLabel("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(PrometheusTest, TextExpositionCarriesAllInstruments) {
  MetricsRegistry registry;
  registry.GetCounter("lb.dispatched")->Increment();
  registry.GetCounter("lb.dispatched")->Increment();
  Histogram* hist = registry.GetHistogram("resp_us");
  for (int i = 1; i <= 100; ++i) hist->Add(i);
  const std::string text = registry.ToPrometheusText();
  EXPECT_NE(text.find("# TYPE screp_counter counter"), std::string::npos);
  EXPECT_NE(text.find("screp_counter{name=\"lb.dispatched\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("screp_histogram{name=\"resp_us\",quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("screp_histogram_count{name=\"resp_us\"} 100"),
            std::string::npos);
  // Every line is either a comment or "name{labels} value".
  size_t start = 0;
  while (start < text.size()) {
    size_t nl = text.find('\n', start);
    if (nl == std::string::npos) nl = text.size();
    const std::string line = text.substr(start, nl - start);
    if (!line.empty() && line[0] != '#') {
      EXPECT_NE(line.find(' '), std::string::npos) << line;
    }
    start = nl + 1;
  }
}

}  // namespace
}  // namespace screp::obs
