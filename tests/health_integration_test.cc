// End-to-end health-monitor tests: clean runs at every consistency level
// stay detector-quiet, an injected crash trips the lag-divergence
// detector within a bounded number of samples, the health/timeline JSON
// exports are well-formed, and turning the monitor off leaves the result
// JSON without a "health" key (byte-identity with pre-monitor output).

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "workload/experiment.h"
#include "workload/micro.h"

namespace screp {
namespace {

MicroConfig SmallMicro(double update_fraction) {
  MicroConfig config;
  config.rows_per_table = 200;
  config.update_fraction = update_fraction;
  return config;
}

ExperimentConfig ShortRun(ConsistencyLevel level, int replicas,
                          int clients) {
  ExperimentConfig config;
  config.system.level = level;
  config.system.replica_count = replicas;
  config.client_count = clients;
  config.warmup = Seconds(0.5);
  config.duration = Seconds(4);
  config.seed = 7;
  return config;
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(HealthIntegrationTest, AllLevelsStayDetectorQuiet) {
  const MicroWorkload workload(SmallMicro(0.25));
  for (ConsistencyLevel level : kAllConsistencyLevels) {
    ExperimentConfig config = ShortRun(level, 4, 8);
    config.health = true;
    auto result = RunExperiment(workload, config);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_TRUE(result->health.enabled) << ConsistencyLevelName(level);
    EXPECT_EQ(result->health.firings, 0)
        << ConsistencyLevelName(level) << " fired "
        << result->health.detectors;
    EXPECT_EQ(result->health.final_state, "healthy");
    EXPECT_EQ(result->health.worst_state, "healthy");
    EXPECT_EQ(result->health.transitions, 0);
    EXPECT_EQ(result->health.first_transition_at, -1);
  }
}

TEST(HealthIntegrationTest, CrashTripsLagDivergenceWithinBound) {
  const MicroWorkload workload(SmallMicro(0.5));
  ExperimentConfig config =
      ShortRun(ConsistencyLevel::kLazyCoarse, 4, 16);
  config.duration = Seconds(8);
  config.health = true;
  config.faults.push_back(FaultEvent{.replica = 1, .crash_at = Seconds(2)});
  auto result = RunExperiment(workload, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->health.enabled);
  EXPECT_GT(result->health.firings, 0);
  EXPECT_NE(result->health.detectors.find("lag_divergence"),
            std::string::npos)
      << "fired: " << result->health.detectors;
  EXPECT_EQ(result->health.worst_state, "degraded");
  // Fires within 16 sampling periods (4 s at the default 250 ms) of the
  // crash — measured from the *run* start, which precedes the crash.
  ASSERT_GE(result->health.first_transition_at, 0);
  EXPECT_LE(result->health.first_transition_at,
            config.warmup + Seconds(2) + 16 * Millis(250));
}

TEST(HealthIntegrationTest, HealthAndTimelineJsonAreWellFormed) {
  const MicroWorkload workload(SmallMicro(0.25));
  ExperimentConfig config = ShortRun(ConsistencyLevel::kLazyCoarse, 4, 8);
  config.health_json_path = testing::TempDir() + "/health.json";
  config.timeline_json_path = testing::TempDir() + "/timeline.json";
  config.faults.push_back(FaultEvent{
      .replica = 2, .crash_at = Seconds(1), .recover_at = Seconds(2)});
  auto result = RunExperiment(workload, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // The paths imply health monitoring even without config.health.
  EXPECT_TRUE(result->health.enabled);

  auto health = obs::JsonValue::Parse(
      ReadFileOrDie(config.health_json_path));
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_NE(health->Find("state"), nullptr);
  EXPECT_NE(health->Find("detectors")->Find("lag_divergence"), nullptr);

  auto timeline = obs::JsonValue::Parse(
      ReadFileOrDie(config.timeline_json_path));
  ASSERT_TRUE(timeline.ok()) << timeline.status().ToString();
  // The bundle carries the sampled series, the health track, and the
  // injected fault markers (one crash + one recovery here).
  EXPECT_NE(timeline->Find("sampler"), nullptr);
  EXPECT_NE(timeline->Find("health")->Find("states"), nullptr);
  const auto& fault_markers = timeline->Find("faults")->array();
  ASSERT_EQ(fault_markers.size(), 2u);
  EXPECT_EQ(fault_markers[0].Find("kind")->str(), "crash");
  EXPECT_EQ(fault_markers[1].Find("kind")->str(), "recover");
}

TEST(HealthIntegrationTest, ResultJsonOmitsHealthWhenOff) {
  const MicroWorkload workload(SmallMicro(0.25));
  ExperimentConfig config = ShortRun(ConsistencyLevel::kLazyCoarse, 4, 8);
  auto off = RunExperiment(workload, config);
  ASSERT_TRUE(off.ok()) << off.status().ToString();
  EXPECT_FALSE(off->health.enabled);
  EXPECT_EQ(off->ToJson().find("\"health\""), std::string::npos);

  config.health = true;
  auto on = RunExperiment(workload, config);
  ASSERT_TRUE(on.ok()) << on.status().ToString();
  auto parsed = obs::JsonValue::Parse(on->ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_NE(parsed->Find("health"), nullptr);
  EXPECT_EQ(parsed->Find("health")->Find("state")->str(), "healthy");

  // Monitoring must not perturb the simulation: the measured aggregates
  // are bit-identical with and without the monitor attached.
  EXPECT_EQ(off->throughput_tps, on->throughput_tps);
  EXPECT_EQ(off->mean_response_ms, on->mean_response_ms);
  EXPECT_EQ(off->committed, on->committed);
  EXPECT_EQ(off->cert_aborts, on->cert_aborts);
  EXPECT_EQ(off->ToLine(), on->ToLine());
}

}  // namespace
}  // namespace screp
