#include "common/stats.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace screp {
namespace {

TEST(StatAccumulatorTest, EmptyIsZero) {
  StatAccumulator acc;
  EXPECT_EQ(acc.count(), 0);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.min(), 0.0);
  EXPECT_EQ(acc.max(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(StatAccumulatorTest, BasicMoments) {
  StatAccumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.Add(x);
  EXPECT_EQ(acc.count(), 8);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_NEAR(acc.stddev(), 2.0, 1e-9);  // classic example
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(StatAccumulatorTest, MergeMatchesCombinedStream) {
  StatAccumulator a, b, all;
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble() * 100;
    if (i % 2 == 0) {
      a.Add(x);
    } else {
      b.Add(x);
    }
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(StatAccumulatorTest, MergeWithEmpty) {
  StatAccumulator a, b;
  a.Add(3.0);
  a.Merge(b);  // no-op
  EXPECT_EQ(a.count(), 1);
  b.Merge(a);  // copy
  EXPECT_EQ(b.count(), 1);
  EXPECT_DOUBLE_EQ(b.mean(), 3.0);
}

TEST(StatAccumulatorTest, ResetClears) {
  StatAccumulator acc;
  acc.Add(5);
  acc.Reset();
  EXPECT_EQ(acc.count(), 0);
}

TEST(HistogramTest, EmptyPercentilesZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.Percentile(0.5), 0.0);
  // The extreme quantiles of nothing are also nothing — the audit report
  // renders p50/p95/p99 of runs that never blocked, so these must not
  // trap or return garbage.
  EXPECT_EQ(h.Percentile(0.0), 0.0);
  EXPECT_EQ(h.Percentile(1.0), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Add(1000.0);
  EXPECT_EQ(h.count(), 1);
  EXPECT_DOUBLE_EQ(h.mean(), 1000.0);
  EXPECT_NEAR(h.Percentile(0.5), 1000.0, 1000.0 * 0.03);
  // Every quantile of a single-sample series is that sample (within the
  // log-bucket resolution).
  EXPECT_NEAR(h.Percentile(0.01), 1000.0, 1000.0 * 0.03);
  EXPECT_NEAR(h.Percentile(0.99), 1000.0, 1000.0 * 0.03);
  EXPECT_DOUBLE_EQ(h.min(), 1000.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
}

TEST(HistogramTest, MergeWithEmptyIsIdentity) {
  Histogram a, empty;
  for (int i = 0; i < 50; ++i) a.Add(100);
  const double before = a.Percentile(0.5);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 50);
  EXPECT_DOUBLE_EQ(a.Percentile(0.5), before);

  Histogram b;
  b.Merge(a);  // merging into empty adopts the donor's distribution
  EXPECT_EQ(b.count(), 50);
  EXPECT_DOUBLE_EQ(b.Percentile(0.5), before);
  EXPECT_DOUBLE_EQ(b.min(), a.min());
  EXPECT_DOUBLE_EQ(b.max(), a.max());
}

TEST(HistogramTest, PercentilesWithinRelativeError) {
  Histogram h;
  for (int i = 1; i <= 10000; ++i) h.Add(static_cast<double>(i));
  EXPECT_NEAR(h.Percentile(0.5), 5000, 5000 * 0.03);
  EXPECT_NEAR(h.Percentile(0.99), 9900, 9900 * 0.03);
  EXPECT_NEAR(h.Percentile(1.0), 10000, 1e-9);  // capped at max
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 10000.0);
}

TEST(HistogramTest, MergeAddsCounts) {
  Histogram a, b;
  for (int i = 0; i < 100; ++i) a.Add(10);
  for (int i = 0; i < 100; ++i) b.Add(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 200);
  EXPECT_NEAR(a.Percentile(0.25), 10, 10 * 0.05);
  EXPECT_NEAR(a.Percentile(0.75), 1000, 1000 * 0.05);
}

TEST(HistogramTest, NegativeClampedToZero) {
  Histogram h;
  h.Add(-5);
  EXPECT_EQ(h.count(), 1);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
}

TEST(HistogramTest, SummaryMentionsCount) {
  Histogram h;
  h.Add(42);
  EXPECT_NE(h.Summary().find("n=1"), std::string::npos);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Add(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.Percentile(0.9), 0.0);
}

TEST(HistogramTest, LargeValuesDoNotOverflowBuckets) {
  Histogram h;
  h.Add(1e12);  // beyond the bucket range: lands in the last bucket
  EXPECT_EQ(h.count(), 1);
  EXPECT_DOUBLE_EQ(h.max(), 1e12);
  EXPECT_LE(h.Percentile(0.5), 1e12);
}

}  // namespace
}  // namespace screp
