#include "storage/transaction.h"

#include <gtest/gtest.h>

#include "storage/database.h"

namespace screp {
namespace {

class TransactionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto id = db_.CreateTable(
        "t", Schema({{"id", ValueType::kInt64}, {"val", ValueType::kInt64}}));
    ASSERT_TRUE(id.ok());
    table_ = *id;
    for (int64_t k = 1; k <= 5; ++k) {
      ASSERT_TRUE(db_.BulkLoad(table_, {Value(k), Value(k * 10)}).ok());
    }
  }

  /// Commits a transaction's writes at the next version (standalone-DBMS
  /// style, bypassing the certifier).
  void CommitLocal(Transaction* txn) {
    WriteSet ws = txn->BuildWriteSet();
    ws.commit_version = db_.CommittedVersion() + 1;
    ASSERT_TRUE(db_.ApplyWriteSet(ws).ok());
  }

  Database db_;
  TableId table_ = -1;
};

TEST_F(TransactionTest, ReadCommittedData) {
  auto txn = db_.Begin();
  Result<Row> row = txn->Get(table_, 3);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[1].AsInt(), 30);
  EXPECT_TRUE(txn->read_only());
}

TEST_F(TransactionTest, ReadYourOwnWrites) {
  auto txn = db_.Begin();
  ASSERT_TRUE(txn->Update(table_, 1, {Value(1), Value(111)}).ok());
  EXPECT_EQ((*txn->Get(table_, 1))[1].AsInt(), 111);
  EXPECT_FALSE(txn->read_only());
  // Another transaction does not see uncommitted writes.
  auto other = db_.Begin();
  EXPECT_EQ((*other->Get(table_, 1))[1].AsInt(), 10);
}

TEST_F(TransactionTest, InsertVisibleAfterCommitOnly) {
  auto txn = db_.Begin();
  ASSERT_TRUE(txn->Insert(table_, {Value(100), Value(1)}).ok());
  EXPECT_TRUE(txn->Exists(table_, 100));
  auto concurrent = db_.Begin();
  EXPECT_FALSE(concurrent->Exists(table_, 100));
  CommitLocal(txn.get());
  auto after = db_.Begin();
  EXPECT_TRUE(after->Exists(table_, 100));
}

TEST_F(TransactionTest, InsertDuplicateFails) {
  auto txn = db_.Begin();
  EXPECT_TRUE(txn->Insert(table_, {Value(1), Value(0)})
                  .code() == StatusCode::kAlreadyExists);
  ASSERT_TRUE(txn->Insert(table_, {Value(50), Value(0)}).ok());
  EXPECT_TRUE(txn->Insert(table_, {Value(50), Value(1)})
                  .code() == StatusCode::kAlreadyExists);
}

TEST_F(TransactionTest, UpdateMissingRowFails) {
  auto txn = db_.Begin();
  EXPECT_TRUE(txn->Update(table_, 99, {Value(99), Value(1)}).IsNotFound());
}

TEST_F(TransactionTest, UpdateCannotChangeKey) {
  auto txn = db_.Begin();
  EXPECT_FALSE(txn->Update(table_, 1, {Value(2), Value(1)}).ok());
}

TEST_F(TransactionTest, UpdateColumns) {
  auto txn = db_.Begin();
  ASSERT_TRUE(txn->UpdateColumns(table_, 2, {{1, Value(999)}}).ok());
  EXPECT_EQ((*txn->Get(table_, 2))[1].AsInt(), 999);
  EXPECT_FALSE(txn->UpdateColumns(table_, 2, {{0, Value(1)}}).ok());
  EXPECT_FALSE(txn->UpdateColumns(table_, 2, {{9, Value(1)}}).ok());
}

TEST_F(TransactionTest, DeleteThenReadIsNotFound) {
  auto txn = db_.Begin();
  ASSERT_TRUE(txn->Delete(table_, 1).ok());
  EXPECT_TRUE(txn->Get(table_, 1).status().IsNotFound());
  EXPECT_FALSE(txn->Exists(table_, 1));
  // Deleting again fails.
  EXPECT_TRUE(txn->Delete(table_, 1).IsNotFound());
}

TEST_F(TransactionTest, InsertThenDeleteIsNoop) {
  auto txn = db_.Begin();
  ASSERT_TRUE(txn->Insert(table_, {Value(70), Value(7)}).ok());
  ASSERT_TRUE(txn->Delete(table_, 70).ok());
  EXPECT_TRUE(txn->read_only());
  EXPECT_EQ(txn->BuildWriteSet().size(), 0u);
}

TEST_F(TransactionTest, InsertThenUpdateStaysInsert) {
  auto txn = db_.Begin();
  ASSERT_TRUE(txn->Insert(table_, {Value(70), Value(7)}).ok());
  ASSERT_TRUE(txn->Update(table_, 70, {Value(70), Value(8)}).ok());
  WriteSet ws = txn->BuildWriteSet();
  ASSERT_EQ(ws.size(), 1u);
  EXPECT_EQ(ws.ops[0].type, WriteType::kInsert);
  EXPECT_EQ((*ws.ops[0].row)[1].AsInt(), 8);
}

TEST_F(TransactionTest, SnapshotIgnoresLaterCommits) {
  auto reader = db_.Begin();
  auto writer = db_.Begin();
  ASSERT_TRUE(writer->Update(table_, 1, {Value(1), Value(77)}).ok());
  CommitLocal(writer.get());
  // The reader's snapshot predates the commit.
  EXPECT_EQ((*reader->Get(table_, 1))[1].AsInt(), 10);
  auto late = db_.Begin();
  EXPECT_EQ((*late->Get(table_, 1))[1].AsInt(), 77);
}

TEST_F(TransactionTest, ScanMergesOwnWrites) {
  auto txn = db_.Begin();
  ASSERT_TRUE(txn->Insert(table_, {Value(0), Value(0)}).ok());     // before
  ASSERT_TRUE(txn->Insert(table_, {Value(10), Value(100)}).ok());  // after
  ASSERT_TRUE(txn->Update(table_, 3, {Value(3), Value(333)}).ok());
  ASSERT_TRUE(txn->Delete(table_, 5).ok());
  std::vector<std::pair<int64_t, int64_t>> seen;
  txn->Scan(table_, [&](int64_t key, const Row& row) {
    seen.emplace_back(key, row[1].AsInt());
    return true;
  });
  const std::vector<std::pair<int64_t, int64_t>> expected = {
      {0, 0}, {1, 10}, {2, 20}, {3, 333}, {4, 40}, {10, 100}};
  EXPECT_EQ(seen, expected);
}

TEST_F(TransactionTest, ScanRangeMergesOwnWritesWithinBounds) {
  auto txn = db_.Begin();
  ASSERT_TRUE(txn->Insert(table_, {Value(7), Value(70)}).ok());
  std::vector<int64_t> keys;
  txn->ScanRange(table_, 3, 7, [&](int64_t key, const Row&) {
    keys.push_back(key);
    return true;
  });
  EXPECT_EQ(keys, (std::vector<int64_t>{3, 4, 5, 7}));
}

TEST_F(TransactionTest, ScanEarlyStopInBufferedTail) {
  auto txn = db_.Begin();
  ASSERT_TRUE(txn->Insert(table_, {Value(100), Value(1)}).ok());
  ASSERT_TRUE(txn->Insert(table_, {Value(101), Value(1)}).ok());
  int count = 0;
  txn->Scan(table_, [&](int64_t, const Row&) { return ++count < 6; });
  EXPECT_EQ(count, 6);  // 5 committed + first buffered, then stop
}

TEST_F(TransactionTest, BuildWriteSetReflectsSnapshot) {
  auto txn = db_.Begin();
  ASSERT_TRUE(txn->Update(table_, 1, {Value(1), Value(11)}).ok());
  WriteSet ws = txn->BuildWriteSet();
  EXPECT_EQ(ws.snapshot_version, 0);
  EXPECT_EQ(ws.size(), 1u);
  EXPECT_EQ(ws.commit_version, kNoVersion);
}

TEST_F(TransactionTest, AbortDiscardsWrites) {
  auto txn = db_.Begin();
  ASSERT_TRUE(txn->Update(table_, 1, {Value(1), Value(11)}).ok());
  txn->Abort();
  EXPECT_TRUE(txn->read_only());
  EXPECT_EQ(txn->WriteCount(), 0u);
}

TEST_F(TransactionTest, BeginAtHistoricalSnapshot) {
  auto writer = db_.Begin();
  ASSERT_TRUE(writer->Update(table_, 1, {Value(1), Value(111)}).ok());
  CommitLocal(writer.get());
  auto historical = db_.BeginAt(0);
  EXPECT_EQ((*historical->Get(table_, 1))[1].AsInt(), 10);
}

TEST_F(TransactionTest, ApplyWriteSetRejectsOutOfOrderVersions) {
  WriteSet ws;
  ws.commit_version = 5;  // expected 1
  EXPECT_FALSE(db_.ApplyWriteSet(ws).ok());
  EXPECT_EQ(db_.CommittedVersion(), 0);
}

TEST_F(TransactionTest, RecoverFromWalRebuildsState) {
  // Commit two transactions with forced logging.
  auto t1 = db_.Begin();
  ASSERT_TRUE(t1->Update(table_, 1, {Value(1), Value(101)}).ok());
  WriteSet ws1 = t1->BuildWriteSet();
  ws1.commit_version = 1;
  ASSERT_TRUE(db_.ApplyWriteSet(ws1, /*force_log=*/true).ok());
  auto t2 = db_.Begin();
  ASSERT_TRUE(t2->Delete(table_, 2).ok());
  WriteSet ws2 = t2->BuildWriteSet();
  ws2.commit_version = 2;
  ASSERT_TRUE(db_.ApplyWriteSet(ws2, /*force_log=*/true).ok());

  // Fresh database with the same schema, recovered from the WAL.
  Database recovered;
  auto id = recovered.CreateTable(
      "t", Schema({{"id", ValueType::kInt64}, {"val", ValueType::kInt64}}));
  ASSERT_TRUE(id.ok());
  for (int64_t k = 1; k <= 5; ++k) {
    ASSERT_TRUE(recovered.BulkLoad(*id, {Value(k), Value(k * 10)}).ok());
  }
  ASSERT_TRUE(recovered.RecoverFrom(*db_.wal()).ok());
  EXPECT_EQ(recovered.CommittedVersion(), 2);
  auto txn = recovered.Begin();
  EXPECT_EQ((*txn->Get(*id, 1))[1].AsInt(), 101);
  EXPECT_FALSE(txn->Exists(*id, 2));
}

}  // namespace
}  // namespace screp
