#include <gtest/gtest.h>

#include "core/consistency_level.h"
#include "core/eager_tracker.h"
#include "core/session_tracker.h"
#include "core/table_version_tracker.h"
#include "core/version_tracker.h"

namespace screp {
namespace {

TEST(ConsistencyLevelTest, NamesAndParsing) {
  EXPECT_STREQ(ConsistencyLevelName(ConsistencyLevel::kEager), "ESC");
  EXPECT_STREQ(ConsistencyLevelName(ConsistencyLevel::kLazyCoarse), "LSC");
  EXPECT_STREQ(ConsistencyLevelName(ConsistencyLevel::kLazyFine), "LFC");
  EXPECT_STREQ(ConsistencyLevelName(ConsistencyLevel::kSession), "SC");
  for (ConsistencyLevel level : kAllConsistencyLevels) {
    auto parsed = ParseConsistencyLevel(ConsistencyLevelName(level));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, level);
  }
  EXPECT_EQ(*ParseConsistencyLevel("eager"), ConsistencyLevel::kEager);
  EXPECT_EQ(*ParseConsistencyLevel("session"), ConsistencyLevel::kSession);
  EXPECT_FALSE(ParseConsistencyLevel("bogus").ok());
}

TEST(ConsistencyLevelTest, StrongConsistencyPredicate) {
  EXPECT_TRUE(ProvidesStrongConsistency(ConsistencyLevel::kEager));
  EXPECT_TRUE(ProvidesStrongConsistency(ConsistencyLevel::kLazyCoarse));
  EXPECT_TRUE(ProvidesStrongConsistency(ConsistencyLevel::kLazyFine));
  EXPECT_FALSE(ProvidesStrongConsistency(ConsistencyLevel::kSession));
}

TEST(VersionTrackerTest, MonotoneMax) {
  VersionTracker vt;
  EXPECT_EQ(vt.SystemVersion(), 0);
  vt.OnCommitAcknowledged(5);
  EXPECT_EQ(vt.SystemVersion(), 5);
  vt.OnCommitAcknowledged(3);  // stale ack: no regression
  EXPECT_EQ(vt.SystemVersion(), 5);
  vt.OnCommitAcknowledged(9);
  EXPECT_EQ(vt.RequiredVersion(), 9);
}

// Reproduces the paper's Table I: transactions T1..T6 over tables A, B, C.
TEST(TableVersionTrackerTest, PaperTableOne) {
  const TableId A = 0, B = 1, C = 2;
  TableVersionTracker tracker(3);
  // T1 updates A at version 1.
  tracker.OnCommit(1, {A});
  EXPECT_EQ(tracker.TableVersion(A), 1);
  EXPECT_EQ(tracker.TableVersion(B), 0);
  EXPECT_EQ(tracker.TableVersion(C), 0);
  // T2 updates B, C at version 2.
  tracker.OnCommit(2, {B, C});
  EXPECT_EQ(tracker.TableVersion(B), 2);
  EXPECT_EQ(tracker.TableVersion(C), 2);
  // T3 updates B at 3; T4 updates C at 4; T5 updates B, C at 5.
  tracker.OnCommit(3, {B});
  tracker.OnCommit(4, {C});
  tracker.OnCommit(5, {B, C});
  EXPECT_EQ(tracker.TableVersion(A), 1);
  EXPECT_EQ(tracker.TableVersion(B), 5);
  EXPECT_EQ(tracker.TableVersion(C), 5);
  // T6 accesses table A only: it can start at any V_local >= 1, not 5.
  EXPECT_EQ(tracker.RequiredVersion({A}), 1);
  EXPECT_EQ(tracker.RequiredVersion({B}), 5);
  EXPECT_EQ(tracker.RequiredVersion({A, C}), 5);
}

TEST(TableVersionTrackerTest, EmptyTableSetNeedsNothing) {
  TableVersionTracker tracker(2);
  tracker.OnCommit(9, {0});
  EXPECT_EQ(tracker.RequiredVersion({}), 0);
}

TEST(TableVersionTrackerTest, MergeIsMonotone) {
  TableVersionTracker tracker(2);
  tracker.Merge({{0, 4}, {1, 2}});
  tracker.Merge({{0, 3}});  // stale
  EXPECT_EQ(tracker.TableVersion(0), 4);
  EXPECT_EQ(tracker.TableVersion(1), 2);
}

TEST(TableVersionTrackerTest, MergeGrowsTableSpace) {
  TableVersionTracker tracker;
  tracker.Merge({{5, 7}});
  EXPECT_EQ(tracker.table_count(), 6u);
  EXPECT_EQ(tracker.TableVersion(5), 7);
  EXPECT_EQ(tracker.TableVersion(0), 0);
}

TEST(TableVersionTrackerTest, StaleCommitDoesNotRegress) {
  TableVersionTracker tracker(1);
  tracker.OnCommit(10, {0});
  tracker.OnCommit(4, {0});  // acknowledgments may arrive out of order
  EXPECT_EQ(tracker.TableVersion(0), 10);
}

TEST(SessionTrackerTest, PerSessionVersions) {
  SessionTracker st;
  EXPECT_EQ(st.RequiredVersion(1), 0);  // unknown session
  st.OnCommitAcknowledged(1, 5);
  st.OnCommitAcknowledged(2, 9);
  EXPECT_EQ(st.RequiredVersion(1), 5);
  EXPECT_EQ(st.RequiredVersion(2), 9);
  st.OnCommitAcknowledged(1, 3);  // stale
  EXPECT_EQ(st.RequiredVersion(1), 5);
  EXPECT_EQ(st.session_count(), 2u);
}

TEST(SessionTrackerTest, EndSessionForgets) {
  SessionTracker st;
  st.OnCommitAcknowledged(1, 5);
  st.EndSession(1);
  EXPECT_EQ(st.RequiredVersion(1), 0);
  EXPECT_EQ(st.session_count(), 0u);
}

TEST(EagerCommitTrackerTest, GlobalCommitAtFullCount) {
  EagerCommitTracker tracker(3);
  tracker.OnCertified(7);
  EXPECT_FALSE(tracker.OnReplicaCommitted(7));
  EXPECT_FALSE(tracker.OnReplicaCommitted(7));
  EXPECT_TRUE(tracker.OnReplicaCommitted(7));
  EXPECT_EQ(tracker.pending(), 0u);
}

TEST(EagerCommitTrackerTest, SingleReplicaImmediate) {
  EagerCommitTracker tracker(1);
  tracker.OnCertified(1);
  EXPECT_TRUE(tracker.OnReplicaCommitted(1));
}

TEST(EagerCommitTrackerTest, IndependentTransactions) {
  EagerCommitTracker tracker(2);
  tracker.OnCertified(1);
  tracker.OnCertified(2);
  EXPECT_FALSE(tracker.OnReplicaCommitted(1));
  EXPECT_FALSE(tracker.OnReplicaCommitted(2));
  EXPECT_EQ(tracker.pending(), 2u);
  EXPECT_TRUE(tracker.OnReplicaCommitted(2));
  EXPECT_TRUE(tracker.OnReplicaCommitted(1));
}

TEST(EagerCommitTrackerTest, UnknownTxnReportIgnored) {
  // A recovered replica may re-report a commit whose global commit
  // already completed while it was down.
  EagerCommitTracker tracker(2);
  EXPECT_FALSE(tracker.OnReplicaCommitted(99));
}

TEST(EagerCommitTrackerTest, CrashLowersTheBar) {
  EagerCommitTracker tracker(3);
  tracker.OnCertified(1);
  tracker.OnCertified(2);
  EXPECT_FALSE(tracker.OnReplicaCommitted(1));
  EXPECT_FALSE(tracker.OnReplicaCommitted(1));  // 2 of 3
  // Replica crashes: bar drops to 2; txn 1 completes, txn 2 (count 0)
  // does not.
  const std::vector<TxnId> ready = tracker.SetActiveReplicaCount(2);
  EXPECT_EQ(ready, (std::vector<TxnId>{1}));
  EXPECT_EQ(tracker.pending(), 1u);
  EXPECT_FALSE(tracker.OnReplicaCommitted(2));
  EXPECT_TRUE(tracker.OnReplicaCommitted(2));
}

TEST(EagerCommitTrackerTest, RecoveryRaisesTheBar) {
  EagerCommitTracker tracker(3);
  (void)tracker.SetActiveReplicaCount(2);
  tracker.OnCertified(1);
  EXPECT_FALSE(tracker.OnReplicaCommitted(1));
  (void)tracker.SetActiveReplicaCount(3);
  EXPECT_FALSE(tracker.OnReplicaCommitted(1));
  EXPECT_TRUE(tracker.OnReplicaCommitted(1));
}

}  // namespace
}  // namespace screp
