#include "storage/wal.h"

#include <gtest/gtest.h>

namespace screp {
namespace {

WriteSet MakeWs(TxnId id, DbVersion version) {
  WriteSet ws;
  ws.txn_id = id;
  ws.commit_version = version;
  ws.Add(0, static_cast<int64_t>(id), WriteType::kUpdate,
         Row{Value(static_cast<int64_t>(id)), Value(version)});
  return ws;
}

TEST(WalTest, AppendForcedIsImmediatelyDurable) {
  Wal wal;
  EXPECT_EQ(wal.Append(MakeWs(1, 1), /*force=*/true), 0u);
  EXPECT_EQ(wal.Size(), 1u);
  EXPECT_EQ(wal.DurableSize(), 1u);
  EXPECT_GT(wal.DurableBytes(), 0u);
}

TEST(WalTest, UnforcedAppendsBufferUntilForce) {
  Wal wal;
  wal.Append(MakeWs(1, 1), false);
  wal.Append(MakeWs(2, 2), false);
  EXPECT_EQ(wal.Size(), 2u);
  EXPECT_EQ(wal.DurableSize(), 0u);
  wal.Force();
  EXPECT_EQ(wal.DurableSize(), 2u);
}

TEST(WalTest, ForcedAppendFlushesEarlierBuffered) {
  Wal wal;
  wal.Append(MakeWs(1, 1), false);
  wal.Append(MakeWs(2, 2), true);  // must flush #1 first to keep order
  EXPECT_EQ(wal.DurableSize(), 2u);
  std::vector<WriteSet> records;
  ASSERT_TRUE(wal.ReadAll(&records).ok());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].txn_id, 1u);
  EXPECT_EQ(records[1].txn_id, 2u);
}

TEST(WalTest, ReadAllDecodesContent) {
  Wal wal;
  for (int i = 1; i <= 5; ++i) {
    wal.Append(MakeWs(static_cast<TxnId>(i), i), true);
  }
  std::vector<WriteSet> records;
  ASSERT_TRUE(wal.ReadAll(&records).ok());
  ASSERT_EQ(records.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(records[static_cast<size_t>(i)].commit_version, i + 1);
    EXPECT_EQ(records[static_cast<size_t>(i)].size(), 1u);
  }
}

TEST(WalTest, DropUnforcedSimulatesCrash) {
  Wal wal;
  wal.Append(MakeWs(1, 1), true);
  wal.Append(MakeWs(2, 2), false);
  wal.DropUnforced();
  EXPECT_EQ(wal.Size(), 1u);
  EXPECT_EQ(wal.DurableSize(), 1u);
  std::vector<WriteSet> records;
  ASSERT_TRUE(wal.ReadAll(&records).ok());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].txn_id, 1u);
}

TEST(WalTest, EmptyReadAllOk) {
  Wal wal;
  std::vector<WriteSet> records;
  EXPECT_TRUE(wal.ReadAll(&records).ok());
  EXPECT_TRUE(records.empty());
}

}  // namespace
}  // namespace screp
