// High-availability failover of the middleware components themselves:
#include "runtime/sim_runtime.h"
// the certifier (state-machine-replicated hot standby) and the load
// balancer (stateless standby with conservative re-initialization) —
// the paper's §IV fault-tolerance design, made executable.

#include <gtest/gtest.h>

#include "consistency/checker.h"
#include "workload/experiment.h"
#include "workload/micro.h"

namespace screp {
namespace {

MicroConfig SmallMicro(double update_fraction) {
  MicroConfig config;
  config.rows_per_table = 200;
  config.update_fraction = update_fraction;
  return config;
}

class HaFailoverTest : public ::testing::Test {
 protected:
  void Build(ConsistencyLevel level, int replicas, bool standby_certifier) {
    workload_ = std::make_unique<MicroWorkload>(SmallMicro(1.0));
    sim_ = std::make_unique<Simulator>();
    rt_ = std::make_unique<runtime::SimRuntime>(sim_.get());
    responses_.clear();
    SystemConfig config;
    config.replica_count = replicas;
    config.level = level;
    config.standby_certifier = standby_certifier;
    auto system = ReplicatedSystem::Create(
        rt_.get(), config,
        [this](Database* db) { return workload_->BuildSchema(db); },
        [this](const Database& db, sql::TransactionRegistry* reg) {
          return workload_->DefineTransactions(db, reg);
        });
    ASSERT_TRUE(system.ok()) << system.status().ToString();
    system_ = std::move(system).value();
    system_->SetClientCallback(
        [this](const TxnResponse& r) { responses_.push_back(r); });
  }

  void SubmitUpdate(SessionId session, int64_t key) {
    TxnRequest req;
    req.txn_id = system_->NextTxnId();
    req.type = *system_->registry().Find("update_item0");
    req.session = session;
    req.params = {{Value(1), Value(key)}};
    system_->Submit(std::move(req));
  }

  int CountCommitted() const {
    int n = 0;
    for (const auto& r : responses_) {
      if (r.outcome == TxnOutcome::kCommitted) ++n;
    }
    return n;
  }

  void ExpectConverged() {
    const DbVersion v = system_->replica(0)->db()->CommittedVersion();
    for (int r = 1; r < system_->replica_count(); ++r) {
      EXPECT_EQ(system_->replica(r)->db()->CommittedVersion(), v);
    }
  }

  std::unique_ptr<MicroWorkload> workload_;
  std::unique_ptr<Simulator> sim_;
  std::unique_ptr<runtime::SimRuntime> rt_;
  std::unique_ptr<ReplicatedSystem> system_;
  std::vector<TxnResponse> responses_;
};

TEST_F(HaFailoverTest, StandbyTracksPrimaryState) {
  Build(ConsistencyLevel::kLazyCoarse, 3, /*standby_certifier=*/true);
  for (int i = 0; i < 20; ++i) {
    SubmitUpdate(1, i % 50);
  }
  sim_->RunAll();
  EXPECT_EQ(CountCommitted(), 20);
  EXPECT_EQ(system_->certifier()->CommitVersion(), 20);
  // Promote and verify the standby reached the identical state.
  system_->CrashCertifier();
  sim_->RunAll();
  EXPECT_TRUE(system_->CertifierFailedOver());
  EXPECT_EQ(system_->certifier()->CommitVersion(), 20);
  std::vector<WriteSet> log;
  ASSERT_TRUE(system_->certifier()->wal().ReadAll(&log).ok());
  EXPECT_EQ(log.size(), 20u);
}

TEST_F(HaFailoverTest, CommitsContinueAfterCertifierFailover) {
  Build(ConsistencyLevel::kLazyCoarse, 3, true);
  for (int i = 0; i < 10; ++i) SubmitUpdate(1, i);
  sim_->RunAll();
  system_->CrashCertifier();
  for (int i = 10; i < 30; ++i) SubmitUpdate(1, i);
  sim_->RunAll();
  EXPECT_EQ(CountCommitted(), 30);
  EXPECT_EQ(system_->certifier()->CommitVersion(), 30);
  ExpectConverged();
}

TEST_F(HaFailoverTest, InFlightCertificationSurvivesFailover) {
  Build(ConsistencyLevel::kLazyCoarse, 2, true);
  SubmitUpdate(1, 0);
  // Crash the certifier while the transaction is mid-flight: either the
  // decision was lost (resubmission handles it) or not yet made (the
  // forwarded request reaches the promoted standby).
  sim_->RunUntil(Millis(2.5));
  system_->CrashCertifier();
  sim_->RunAll();
  ASSERT_EQ(responses_.size(), 1u);
  EXPECT_EQ(responses_[0].outcome, TxnOutcome::kCommitted);
  ExpectConverged();
}

TEST_F(HaFailoverTest, FailoverMidLoadPreservesStrongConsistency) {
  MicroWorkload workload(SmallMicro(0.5));
  History history;
  ExperimentConfig config;
  config.system.level = ConsistencyLevel::kLazyFine;
  config.system.replica_count = 4;
  config.system.standby_certifier = true;
  config.client_count = 8;
  config.warmup = 0;
  config.duration = Seconds(4);
  config.history = &history;
  // No FaultEvent plumbing for the certifier: drive it via a scheduled
  // callback through a custom run instead.
  Simulator sim;
  runtime::SimRuntime rt{&sim};
  auto system_or = ReplicatedSystem::Create(
      &rt, config.system,
      [&workload](Database* db) { return workload.BuildSchema(db); },
      [&workload](const Database& db, sql::TransactionRegistry* reg) {
        return workload.DefineTransactions(db, reg);
      });
  ASSERT_TRUE(system_or.ok());
  auto system = std::move(system_or).value();
  system->SetHistory(&history);
  MetricsCollector metrics(0);
  std::vector<std::unique_ptr<ClientDriver>> clients;
  Rng rng(9);
  for (int c = 0; c < config.client_count; ++c) {
    clients.push_back(std::make_unique<ClientDriver>(
        system.get(), &metrics,
        workload.CreateGenerator(system->registry(), c, rng.Fork()), c,
        ClientConfig{}, rng.Fork()));
  }
  system->SetClientCallback([&clients](const TxnResponse& r) {
    clients[static_cast<size_t>(r.client_id)]->OnResponse(r);
  });
  for (auto& client : clients) client->Start();
  sim.Schedule(Seconds(2), [&system]() { system->CrashCertifier(); });
  sim.Schedule(Seconds(4), [&clients]() {
    for (auto& client : clients) client->Stop();
  });
  sim.RunUntil(Seconds(4));
  sim.RunAll();
  ASSERT_GT(history.size(), 300u);
  CheckResult strong = CheckStrongConsistency(history);
  EXPECT_TRUE(strong.ok) << strong.ToString();
  CheckResult fcw = CheckFirstCommitterWins(history);
  EXPECT_TRUE(fcw.ok) << fcw.ToString();
}

TEST_F(HaFailoverTest, CertifierCrashWithoutStandbyRefused) {
  Build(ConsistencyLevel::kLazyCoarse, 2, /*standby_certifier=*/false);
  EXPECT_DEATH(system_->CrashCertifier(), "no standby certifier");
}

TEST_F(HaFailoverTest, StandbyWithEagerRejected) {
  Simulator sim;
  runtime::SimRuntime rt{&sim};
  SystemConfig config;
  config.replica_count = 2;
  config.level = ConsistencyLevel::kEager;
  config.standby_certifier = true;
  MicroWorkload workload(SmallMicro(0.5));
  auto result = ReplicatedSystem::Create(
      &rt, config,
      [&workload](Database* db) { return workload.BuildSchema(db); },
      [&workload](const Database& db, sql::TransactionRegistry* reg) {
        return workload.DefineTransactions(db, reg);
      });
  EXPECT_FALSE(result.ok());
}

TEST_F(HaFailoverTest, LoadBalancerFailoverContinuesService) {
  Build(ConsistencyLevel::kLazyCoarse, 3, false);
  for (int i = 0; i < 10; ++i) SubmitUpdate(1, i);
  sim_->RunAll();
  system_->CrashLoadBalancer();
  EXPECT_EQ(system_->load_balancer_failovers(), 1);
  EXPECT_TRUE(system_->load_balancer()->promoted());
  for (int i = 10; i < 20; ++i) SubmitUpdate(2, i);
  sim_->RunAll();
  EXPECT_EQ(CountCommitted(), 20);
  ExpectConverged();
}

TEST_F(HaFailoverTest, PromotedBalancerIsConservative) {
  Build(ConsistencyLevel::kSession, 3, false);
  for (int i = 0; i < 10; ++i) SubmitUpdate(1, i);
  sim_->RunAll();
  system_->CrashLoadBalancer();
  // The new balancer lost the session map; its conservative floor must be
  // at least the certifier's commit version, so session guarantees hold.
  EXPECT_GE(system_->load_balancer()->policy().conservative_floor(), 10);
  EXPECT_GE(
      system_->load_balancer()->policy().RequiredStartVersion(1, {}), 10);
}

TEST_F(HaFailoverTest, InFlightResponsesRelayedAfterLbFailover) {
  Build(ConsistencyLevel::kLazyCoarse, 2, false);
  SubmitUpdate(1, 0);
  // Crash the balancer while the transaction is in flight; the response
  // from the replica lands at the promoted standby and is relayed.
  sim_->RunUntil(Millis(1));
  system_->CrashLoadBalancer();
  sim_->RunAll();
  ASSERT_EQ(responses_.size(), 1u);
  EXPECT_EQ(responses_[0].outcome, TxnOutcome::kCommitted);
}

TEST_F(HaFailoverTest, SessionGuaranteeHoldsAcrossLbFailover) {
  MicroWorkload workload(SmallMicro(0.5));
  History history;
  SystemConfig sys_config;
  sys_config.level = ConsistencyLevel::kSession;
  sys_config.replica_count = 4;
  Simulator sim;
  runtime::SimRuntime rt{&sim};
  auto system_or = ReplicatedSystem::Create(
      &rt, sys_config,
      [&workload](Database* db) { return workload.BuildSchema(db); },
      [&workload](const Database& db, sql::TransactionRegistry* reg) {
        return workload.DefineTransactions(db, reg);
      });
  ASSERT_TRUE(system_or.ok());
  auto system = std::move(system_or).value();
  system->SetHistory(&history);
  MetricsCollector metrics(0);
  std::vector<std::unique_ptr<ClientDriver>> clients;
  Rng rng(13);
  for (int c = 0; c < 8; ++c) {
    clients.push_back(std::make_unique<ClientDriver>(
        system.get(), &metrics,
        workload.CreateGenerator(system->registry(), c, rng.Fork()), c,
        ClientConfig{}, rng.Fork()));
  }
  system->SetClientCallback([&clients](const TxnResponse& r) {
    clients[static_cast<size_t>(r.client_id)]->OnResponse(r);
  });
  for (auto& client : clients) client->Start();
  sim.Schedule(Seconds(1), [&system]() { system->CrashLoadBalancer(); });
  sim.Schedule(Seconds(2.5), [&system]() { system->CrashLoadBalancer(); });
  sim.Schedule(Seconds(4), [&clients]() {
    for (auto& client : clients) client->Stop();
  });
  sim.RunUntil(Seconds(4));
  sim.RunAll();
  ASSERT_GT(history.size(), 300u);
  CheckResult session = CheckSessionConsistency(history);
  EXPECT_TRUE(session.ok) << session.ToString();
  EXPECT_TRUE(CheckFirstCommitterWins(history).ok);
}

}  // namespace
}  // namespace screp
