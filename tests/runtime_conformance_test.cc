// Conformance suite over the Runtime contract (runtime/runtime.h), run
// against both backends: scheduling order, cancellation, the Post MPSC
// ingress, Spawn, Stop drain semantics, and typed-channel delivery.
//
// Each TEST_P drives one backend through a BackendHarness that hides the
// operational difference: SimRuntime needs the harness to run the event
// loop (RunAll), ThreadRuntime runs it live and the harness just waits.

#include "runtime/runtime.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/channel.h"
#include "runtime/sim_runtime.h"
#include "runtime/thread_runtime.h"

namespace screp {
namespace {

using runtime::Runtime;
using runtime::SimRuntime;
using runtime::TaskHandle;
using runtime::ThreadRuntime;
using runtime::ThreadRuntimeConfig;

/// Abstracts "make the runtime execute what was scheduled" per backend.
class BackendHarness {
 public:
  virtual ~BackendHarness() = default;
  virtual Runtime* rt() = 0;
  /// Blocks until everything scheduled so far (and its transitive
  /// zero-delay follow-ups) ran.
  virtual void Settle() = 0;
  /// True when Stop() discards not-yet-due timers instead of asserting.
  virtual bool stop_discards() const = 0;
};

class SimHarness : public BackendHarness {
 public:
  Runtime* rt() override { return &rt_; }
  void Settle() override { rt_.sim()->RunAll(); }
  bool stop_discards() const override { return false; }

 private:
  SimRuntime rt_;
};

class ThreadHarness : public BackendHarness {
 public:
  ThreadHarness() : rt_(MakeConfig()) {}

  Runtime* rt() override { return &rt_; }

  void Settle() override {
    // A marker posted now runs after everything already queued; delays in
    // this suite are a few milliseconds, so wait generously past them.
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    rt_.Post([&]() {
      std::lock_guard<std::mutex> lock(mu);
      done = true;
      cv.notify_all();
    });
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10),
                            [&]() { return done; }));
  }

  bool stop_discards() const override { return true; }

  ThreadRuntime* thread_rt() { return &rt_; }

 private:
  static ThreadRuntimeConfig MakeConfig() {
    ThreadRuntimeConfig config;
    config.worker_threads = 2;
    config.entropy_seed = 7;
    return config;
  }

  ThreadRuntime rt_;
};

class RuntimeConformanceTest
    : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    if (GetParam() == "sim") {
      harness_ = std::make_unique<SimHarness>();
    } else {
      harness_ = std::make_unique<ThreadHarness>();
    }
  }

  Runtime* rt() { return harness_->rt(); }
  std::unique_ptr<BackendHarness> harness_;
};

TEST_P(RuntimeConformanceTest, SameTimeCallbacksRunInSubmissionOrder) {
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    rt()->Schedule(Millis(1), [&order, i]() { order.push_back(i); });
  }
  harness_->Settle();
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST_P(RuntimeConformanceTest, ShorterDelayRunsFirst) {
  std::vector<int> order;
  rt()->Schedule(Millis(20), [&order]() { order.push_back(2); });
  rt()->Schedule(Millis(5), [&order]() { order.push_back(1); });
  rt()->Schedule(0, [&order]() { order.push_back(0); });
  harness_->Settle();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST_P(RuntimeConformanceTest, NowIsMonotonicAcrossCallbacks) {
  std::vector<TimePoint> stamps;
  for (int i = 0; i < 5; ++i) {
    rt()->Schedule(Millis(i), [this, &stamps]() {
      stamps.push_back(rt()->Now());
    });
  }
  harness_->Settle();
  ASSERT_EQ(stamps.size(), 5u);
  for (size_t i = 1; i < stamps.size(); ++i) {
    EXPECT_LE(stamps[i - 1], stamps[i]);
  }
}

TEST_P(RuntimeConformanceTest, ScheduledDelayIsHonored) {
  const TimePoint start = rt()->Now();
  TimePoint fired_at = -1;
  rt()->Schedule(Millis(10), [this, &fired_at]() { fired_at = rt()->Now(); });
  harness_->Settle();
  ASSERT_GE(fired_at, 0);
  EXPECT_GE(fired_at - start, Millis(10));
}

TEST_P(RuntimeConformanceTest, CancelSuppressesCallback) {
  bool cancelled_ran = false;
  bool kept_ran = false;
  TaskHandle handle = rt()->ScheduleCancellable(
      Millis(5), [&cancelled_ran]() { cancelled_ran = true; });
  rt()->ScheduleCancellable(Millis(5), [&kept_ran]() { kept_ran = true; });
  handle.Cancel();
  harness_->Settle();
  EXPECT_FALSE(cancelled_ran);
  EXPECT_TRUE(kept_ran);
}

TEST_P(RuntimeConformanceTest, CancelAfterFireIsANoOp) {
  int runs = 0;
  TaskHandle handle =
      rt()->ScheduleCancellable(0, [&runs]() { ++runs; });
  harness_->Settle();
  handle.Cancel();  // already fired; must not crash or un-run
  EXPECT_EQ(runs, 1);
}

TEST_P(RuntimeConformanceTest, PostFromForeignThreadReachesEventThread) {
  std::atomic<bool> ran{false};
  std::thread foreign([this, &ran]() {
    rt()->Post([&ran]() { ran.store(true); });
  });
  foreign.join();
  harness_->Settle();
  EXPECT_TRUE(ran.load());
}

TEST_P(RuntimeConformanceTest, SpawnRunsTheTask) {
  std::atomic<bool> ran{false};
  rt()->Spawn([&ran]() { ran.store(true); });
  harness_->Settle();
  // ThreadRuntime workers run concurrently with Settle's marker; give
  // the pool a moment if it lost the race.
  for (int i = 0; i < 100 && !ran.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(ran.load());
}

TEST_P(RuntimeConformanceTest, EntropyStreamIsUsable) {
  Rng* entropy = rt()->entropy();
  ASSERT_NE(entropy, nullptr);
  const uint64_t a = entropy->Next();
  const uint64_t b = entropy->Next();
  (void)a;
  (void)b;  // just must not crash or hand out the same engine state
}

TEST_P(RuntimeConformanceTest, DeterministicFlagMatchesBackend) {
  EXPECT_EQ(rt()->deterministic(), GetParam() == "sim");
}

TEST_P(RuntimeConformanceTest, ChannelDeliversInFifoOrderWithLatency) {
  net::LinkConfig link(Millis(2));
  net::Channel<int> channel(rt(), "conf", link, /*seed=*/11);
  std::vector<int> received;
  channel.SetHandler([&received](const int& v) { received.push_back(v); });
  // Sends must come from the event thread (channels are middleware
  // state); Post is the portable way to get there on both backends.
  rt()->Post([&channel]() {
    for (int i = 0; i < 16; ++i) channel.Send(i);
  });
  harness_->Settle();
  ASSERT_EQ(received.size(), 16u);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(received[static_cast<size_t>(i)], i);
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, RuntimeConformanceTest,
                         ::testing::Values("sim", "thread"),
                         [](const auto& info) { return info.param; });

// --- Backend-specific shutdown semantics -------------------------------

TEST(ThreadRuntimeStopTest, StopDiscardsFarFutureTimersAndCounts) {
  ThreadRuntimeConfig config;
  config.worker_threads = 0;
  config.drain_grace = Millis(50);
  std::atomic<bool> far_ran{false};
  std::atomic<bool> near_ran{false};
  auto rt = std::make_unique<ThreadRuntime>(config);
  rt->Schedule(Seconds(3600), [&far_ran]() { far_ran.store(true); });
  rt->Schedule(0, [&near_ran]() { near_ran.store(true); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  rt->Stop();
  EXPECT_TRUE(near_ran.load());
  EXPECT_FALSE(far_ran.load());
  EXPECT_EQ(rt->discarded_on_stop(), 1u);
  EXPECT_TRUE(rt->stopped());
}

TEST(ThreadRuntimeStopTest, StopDrainsInFlightZeroDelayChains) {
  // A chain of zero-delay reschedules models an in-flight channel
  // delivery: everything already due when Stop() lands must still run.
  ThreadRuntimeConfig config;
  config.worker_threads = 0;
  auto rt = std::make_unique<ThreadRuntime>(config);
  std::atomic<int> depth{0};
  std::function<void()> chain = [&]() {
    if (depth.fetch_add(1) < 9) rt->Schedule(0, chain);
  };
  rt->Schedule(0, chain);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  rt->Stop();
  EXPECT_EQ(depth.load(), 10);
}

TEST(ThreadRuntimeStopTest, StopIsIdempotent) {
  ThreadRuntimeConfig config;
  config.worker_threads = 1;
  ThreadRuntime rt(config);
  rt.Stop();
  rt.Stop();  // second call must be a no-op, not a double-join
  EXPECT_TRUE(rt.stopped());
}

TEST(ThreadRuntimeStopTest, ScheduleAfterStopIsDiscardedNotRun) {
  ThreadRuntimeConfig config;
  config.worker_threads = 0;
  config.drain_grace = 0;
  ThreadRuntime rt(config);
  rt.Stop();
  std::atomic<bool> ran{false};
  rt.Schedule(Millis(5), [&ran]() { ran.store(true); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(ran.load());
  EXPECT_GE(rt.discarded_on_stop(), 1u);
}

TEST(SimRuntimeStopTest, StopWithDrainedQueueSucceeds) {
  SimRuntime rt;
  rt.Schedule(Millis(1), []() {});
  rt.sim()->RunAll();
  rt.Stop();  // empty queue: fine
}

#ifdef GTEST_HAS_DEATH_TEST
TEST(SimRuntimeStopTest, StopWithPendingEventsDies) {
  ASSERT_DEATH(
      {
        SimRuntime rt;
        rt.Schedule(Millis(1), []() {});
        rt.Stop();  // queue not drained: harness bug, must trip the check
      },
      "pending");
}
#endif

TEST(SimRuntimeTest, WrapsExternalSimulatorSharingItsClock) {
  Simulator sim;
  SimRuntime rt(&sim);
  bool ran = false;
  rt.Schedule(Millis(3), [&ran]() { ran = true; });
  sim.RunAll();
  EXPECT_TRUE(ran);
  EXPECT_EQ(rt.Now(), sim.Now());
  EXPECT_EQ(rt.Now(), Millis(3));
}

}  // namespace
}  // namespace screp
