#include "core/sync_policy.h"

#include <gtest/gtest.h>

namespace screp {
namespace {

constexpr TableId kA = 0, kB = 1;

TEST(SyncPolicyTest, EagerNeverDelaysStart) {
  SyncPolicy policy(ConsistencyLevel::kEager, 2);
  policy.OnCommitAcknowledged(1, 50, {{kA, 50}});
  EXPECT_EQ(policy.RequiredStartVersion(1, {kA}), 0);
  EXPECT_EQ(policy.RequiredStartVersion(2, {kA, kB}), 0);
}

TEST(SyncPolicyTest, CoarseRequiresSystemVersionForEveryone) {
  SyncPolicy policy(ConsistencyLevel::kLazyCoarse, 2);
  policy.OnCommitAcknowledged(1, 7, {{kA, 7}});
  // Session 2 never committed anything but still must see version 7.
  EXPECT_EQ(policy.RequiredStartVersion(2, {}), 7);
  EXPECT_EQ(policy.RequiredStartVersion(1, {kB}), 7);
}

TEST(SyncPolicyTest, FineRequiresOnlyTableSetVersions) {
  SyncPolicy policy(ConsistencyLevel::kLazyFine, 2);
  policy.OnCommitAcknowledged(1, 7, {{kA, 7}});
  // Transactions on B need nothing; transactions on A need version 7.
  EXPECT_EQ(policy.RequiredStartVersion(2, {kB}), 0);
  EXPECT_EQ(policy.RequiredStartVersion(2, {kA}), 7);
  EXPECT_EQ(policy.RequiredStartVersion(2, {kA, kB}), 7);
}

TEST(SyncPolicyTest, SessionRequiresOwnHistoryOnly) {
  SyncPolicy policy(ConsistencyLevel::kSession, 2);
  policy.OnCommitAcknowledged(1, 7, {{kA, 7}});
  EXPECT_EQ(policy.RequiredStartVersion(1, {kA}), 7);
  EXPECT_EQ(policy.RequiredStartVersion(2, {kA}), 0);  // other session
}

TEST(SyncPolicyTest, ReadOnlyAcksAdvanceVersionsWithoutTables) {
  SyncPolicy policy(ConsistencyLevel::kLazyCoarse, 2);
  // A read-only commit tagged with the replica's V_local = 4.
  policy.OnCommitAcknowledged(1, 4, {});
  EXPECT_EQ(policy.RequiredStartVersion(2, {}), 4);
  EXPECT_EQ(policy.table_versions().TableVersion(kA), 0);
}

TEST(SyncPolicyTest, AllTrackersMaintainedRegardlessOfLevel) {
  SyncPolicy policy(ConsistencyLevel::kSession, 2);
  policy.OnCommitAcknowledged(3, 9, {{kB, 9}});
  EXPECT_EQ(policy.system_version().SystemVersion(), 9);
  EXPECT_EQ(policy.table_versions().TableVersion(kB), 9);
  EXPECT_EQ(policy.sessions().RequiredVersion(3), 9);
}

// The paper's §III-C observation: a transaction on a read-only table can
// start immediately under LFC even though LSC and SC would wait.
TEST(SyncPolicyTest, FineBeatsSessionOnColdTables) {
  SyncPolicy fine(ConsistencyLevel::kLazyFine, 2);
  SyncPolicy session(ConsistencyLevel::kSession, 2);
  // The same client committed an update to table A at version 12.
  fine.OnCommitAcknowledged(1, 12, {{kA, 12}});
  session.OnCommitAcknowledged(1, 12, {{kA, 12}});
  // Its next transaction reads only table B.
  EXPECT_EQ(fine.RequiredStartVersion(1, {kB}), 0);      // immediate
  EXPECT_EQ(session.RequiredStartVersion(1, {kB}), 12);  // must wait
}

}  // namespace
}  // namespace screp
