#include "common/status.h"

#include <gtest/gtest.h>

namespace screp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  Status s = Status::NotFound("row 42");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "row 42");
  EXPECT_EQ(s.ToString(), "NotFound: row 42");
}

TEST(StatusTest, ConflictAndAbortedPredicates) {
  EXPECT_TRUE(Status::Conflict("ww").IsConflict());
  EXPECT_FALSE(Status::Conflict("ww").IsAborted());
  EXPECT_TRUE(Status::Aborted("early").IsAborted());
  EXPECT_FALSE(Status::OK().IsConflict());
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kConflict,
        StatusCode::kAborted, StatusCode::kOutOfRange,
        StatusCode::kNotSupported, StatusCode::kInternal,
        StatusCode::kIOError}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UseReturnNotOk(int x) {
  SCREP_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(MacroTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(UseReturnNotOk(1).ok());
  EXPECT_FALSE(UseReturnNotOk(-1).ok());
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  SCREP_ASSIGN_OR_RETURN(int h, Half(x));
  SCREP_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(MacroTest, AssignOrReturnChainsAndSupportsMultipleUsesPerFunction) {
  Result<int> r = Quarter(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 2);
  EXPECT_FALSE(Quarter(6).ok());
  EXPECT_FALSE(Quarter(3).ok());
}

}  // namespace
}  // namespace screp
