#include "common/rng.h"

#include <gtest/gtest.h>

#include <vector>

namespace screp {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, ForkIsIndependentAndDeterministic) {
  Rng a(7);
  Rng fork1 = a.Fork();
  Rng b(7);
  Rng fork2 = b.Fork();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(fork1.Next(), fork2.Next());
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBoundedWithinBound) {
  Rng rng(5);
  for (uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedCoversAllValues) {
  Rng rng(11);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10000; ++i) ++seen[rng.NextBounded(10)];
  for (int count : seen) EXPECT_GT(count, 800);  // roughly uniform
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextBoolProbability) {
  Rng rng(17);
  int trues = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.NextBool(0.25)) ++trues;
  }
  EXPECT_NEAR(trues / 100000.0, 0.25, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(23);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(200.0);
  EXPECT_NEAR(sum / n, 200.0, 5.0);
}

TEST(RngTest, ExponentialNonNegative) {
  Rng rng(29);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.NextExponential(1.0), 0.0);
  }
}

TEST(RngTest, ZipfThetaZeroIsUniformRange) {
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextZipf(100, 0.0), 100u);
  }
}

TEST(RngTest, ZipfSkewsTowardLowIndexes) {
  Rng rng(37);
  int low = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextZipf(1000, 0.8) < 100) ++low;
  }
  // With theta=0.8 far more than 10% of the mass is in the first decile.
  EXPECT_GT(low, n / 4);
}

}  // namespace
}  // namespace screp
