#include "replication/certifier.h"
#include "runtime/sim_runtime.h"

#include <gtest/gtest.h>

#include <map>
#include <tuple>

namespace screp {
namespace {

WriteSet MakeWs(TxnId id, ReplicaId origin, DbVersion snapshot,
                std::initializer_list<int64_t> keys, TableId table = 0) {
  WriteSet ws;
  ws.txn_id = id;
  ws.origin = origin;
  ws.snapshot_version = snapshot;
  for (int64_t key : keys) {
    ws.Add(table, key, WriteType::kUpdate, Row{Value(key), Value(0)});
  }
  return ws;
}

class CertifierTest : public ::testing::Test {
 protected:
  void Build(int replicas, bool eager) {
    Build(replicas, eager, CertifierConfig{});
  }

  void Build(int replicas, bool eager, CertifierConfig config) {
    certifier_ = std::make_unique<Certifier>(&rt_, config,
                                             replicas, eager);
    certifier_->SetDecisionCallback(
        [this](ReplicaId origin, const CertDecision& decision) {
          decisions_.emplace_back(origin, decision);
        });
    certifier_->SetRefreshCallback(
        [this](ReplicaId target, const RefreshBatch& batch) {
          for (const WriteSetRef& ws : batch.writesets) {
            refreshes_.emplace_back(target, *ws);
          }
        });
    certifier_->SetGlobalCommitCallback([this](ReplicaId origin, TxnId txn) {
      global_commits_.emplace_back(origin, txn);
    });
  }

  Simulator sim_;
  runtime::SimRuntime rt_{&sim_};
  std::unique_ptr<Certifier> certifier_;
  std::vector<std::pair<ReplicaId, CertDecision>> decisions_;
  std::vector<std::pair<ReplicaId, WriteSet>> refreshes_;
  std::vector<std::pair<ReplicaId, TxnId>> global_commits_;
};

TEST_F(CertifierTest, FirstCommitGetsVersionOne) {
  Build(3, false);
  certifier_->SubmitCertification(MakeWs(1, 0, 0, {5}));
  sim_.RunAll();
  ASSERT_EQ(decisions_.size(), 1u);
  EXPECT_EQ(decisions_[0].first, 0);
  EXPECT_TRUE(decisions_[0].second.commit);
  EXPECT_EQ(decisions_[0].second.commit_version, 1);
  EXPECT_EQ(certifier_->CommitVersion(), 1);
  EXPECT_EQ(certifier_->certified_count(), 1);
}

TEST_F(CertifierTest, RefreshFanOutSkipsOrigin) {
  Build(4, false);
  certifier_->SubmitCertification(MakeWs(1, 2, 0, {5}));
  sim_.RunAll();
  ASSERT_EQ(refreshes_.size(), 3u);
  for (const auto& [target, ws] : refreshes_) {
    EXPECT_NE(target, 2);
    EXPECT_EQ(ws.commit_version, 1);
    EXPECT_EQ(ws.txn_id, 1u);
  }
}

TEST_F(CertifierTest, ConflictAborted) {
  Build(2, false);
  // Both transactions read snapshot 0 and write key 5.
  certifier_->SubmitCertification(MakeWs(1, 0, 0, {5}));
  certifier_->SubmitCertification(MakeWs(2, 1, 0, {5}));
  sim_.RunAll();
  ASSERT_EQ(decisions_.size(), 2u);
  // Abort decisions skip the log force, so they may overtake commit
  // decisions — look decisions up by transaction id.
  std::map<TxnId, bool> verdicts;
  for (const auto& [origin, decision] : decisions_) {
    (void)origin;
    verdicts[decision.txn_id] = decision.commit;
  }
  EXPECT_TRUE(verdicts.at(1));
  EXPECT_FALSE(verdicts.at(2));
  EXPECT_EQ(certifier_->abort_count(), 1);
  // The aborted transaction consumed no version.
  EXPECT_EQ(certifier_->CommitVersion(), 1);
  // No refresh for the aborted transaction.
  EXPECT_EQ(refreshes_.size(), 1u);
}

TEST_F(CertifierTest, NonConflictingConcurrentCommitsBoth) {
  Build(2, false);
  certifier_->SubmitCertification(MakeWs(1, 0, 0, {5}));
  certifier_->SubmitCertification(MakeWs(2, 1, 0, {6}));
  sim_.RunAll();
  EXPECT_TRUE(decisions_[0].second.commit);
  EXPECT_TRUE(decisions_[1].second.commit);
  EXPECT_EQ(decisions_[1].second.commit_version, 2);
}

TEST_F(CertifierTest, LaterSnapshotEscapesOldConflict) {
  Build(2, false);
  certifier_->SubmitCertification(MakeWs(1, 0, 0, {5}));
  sim_.RunAll();
  // Snapshot 1 already includes txn 1's commit: no conflict.
  certifier_->SubmitCertification(MakeWs(2, 1, 1, {5}));
  sim_.RunAll();
  ASSERT_EQ(decisions_.size(), 2u);
  EXPECT_TRUE(decisions_[1].second.commit);
}

TEST_F(CertifierTest, SameTransactionKeysDifferentTablesNoConflict) {
  Build(2, false);
  certifier_->SubmitCertification(MakeWs(1, 0, 0, {5}, /*table=*/0));
  certifier_->SubmitCertification(MakeWs(2, 1, 0, {5}, /*table=*/1));
  sim_.RunAll();
  EXPECT_TRUE(decisions_[0].second.commit);
  EXPECT_TRUE(decisions_[1].second.commit);
}

TEST_F(CertifierTest, DecisionsArriveInVersionOrder) {
  Build(2, false);
  for (TxnId t = 1; t <= 10; ++t) {
    certifier_->SubmitCertification(
        MakeWs(t, 0, 0, {static_cast<int64_t>(t * 100)}));
  }
  sim_.RunAll();
  ASSERT_EQ(decisions_.size(), 10u);
  for (size_t i = 0; i < decisions_.size(); ++i) {
    EXPECT_EQ(decisions_[i].second.commit_version,
              static_cast<DbVersion>(i + 1));
  }
}

TEST_F(CertifierTest, DurabilityLogGrowsWithCommits) {
  Build(2, false);
  certifier_->SubmitCertification(MakeWs(1, 0, 0, {5}));
  certifier_->SubmitCertification(MakeWs(2, 1, 0, {6}));
  sim_.RunAll();
  EXPECT_EQ(certifier_->wal().DurableSize(), 2u);
  std::vector<WriteSet> records;
  ASSERT_TRUE(certifier_->wal().ReadAll(&records).ok());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].commit_version, 1);
  EXPECT_EQ(records[1].commit_version, 2);
}

TEST_F(CertifierTest, GroupCommitBatchesShareForce) {
  Build(2, false);
  // Submit many certifications back-to-back: with the default 0.8ms force
  // and 0.12ms certify time, most commits should share forces (far fewer
  // disk busy-time than one force each).
  for (TxnId t = 1; t <= 20; ++t) {
    certifier_->SubmitCertification(
        MakeWs(t, 0, 0, {static_cast<int64_t>(t * 7)}));
  }
  sim_.RunAll();
  EXPECT_EQ(certifier_->certified_count(), 20);
  const SimTime disk_time = certifier_->disk()->BusyTime();
  EXPECT_LT(disk_time, 20 * Millis(0.8));
}

TEST_F(CertifierTest, EagerGlobalCommitAfterAllReplicas) {
  Build(3, true);
  certifier_->SubmitCertification(MakeWs(1, 1, 0, {5}));
  sim_.RunAll();
  EXPECT_TRUE(global_commits_.empty());
  certifier_->NotifyReplicaCommitted(1);
  certifier_->NotifyReplicaCommitted(1);
  EXPECT_TRUE(global_commits_.empty());
  certifier_->NotifyReplicaCommitted(1);
  ASSERT_EQ(global_commits_.size(), 1u);
  EXPECT_EQ(global_commits_[0].first, 1);   // origin replica
  EXPECT_EQ(global_commits_[0].second, 1u);  // txn id
}

TEST_F(CertifierTest, NonEagerIgnoresCommitNotifications) {
  Build(2, false);
  certifier_->SubmitCertification(MakeWs(1, 0, 0, {5}));
  sim_.RunAll();
  certifier_->NotifyReplicaCommitted(1);  // no-op, must not crash
  EXPECT_TRUE(global_commits_.empty());
}

TEST_F(CertifierTest, WindowOverflowAbortsConservatively) {
  CertifierConfig config;
  config.conflict_window = 2;
  certifier_ = std::make_unique<Certifier>(&rt_, config, 2, false);
  certifier_->SetDecisionCallback(
      [this](ReplicaId origin, const CertDecision& decision) {
        decisions_.emplace_back(origin, decision);
      });
  certifier_->SetRefreshCallback([](ReplicaId, const RefreshBatch&) {});
  for (TxnId t = 1; t <= 4; ++t) {
    certifier_->SubmitCertification(
        MakeWs(t, 0, static_cast<DbVersion>(t - 1),
               {static_cast<int64_t>(t)}));
  }
  sim_.RunAll();
  // A transaction with an ancient snapshot must be aborted, not certified
  // incorrectly.
  certifier_->SubmitCertification(MakeWs(99, 0, 0, {999}));
  sim_.RunAll();
  EXPECT_FALSE(decisions_.back().second.commit);
  EXPECT_EQ(certifier_->window_abort_count(), 1);
}

TEST_F(CertifierTest, DecisionMapBoundedByConflictWindow) {
  CertifierConfig config;
  config.conflict_window = 16;
  certifier_ = std::make_unique<Certifier>(&rt_, config, 2, false);
  certifier_->SetDecisionCallback(
      [this](ReplicaId origin, const CertDecision& decision) {
        decisions_.emplace_back(origin, decision);
      });
  certifier_->SetRefreshCallback([](ReplicaId, const RefreshBatch&) {});
  for (TxnId t = 1; t <= 500; ++t) {
    certifier_->SubmitCertification(
        MakeWs(t, 0, static_cast<DbVersion>(t - 1),
               {static_cast<int64_t>(t)}));
    sim_.RunAll();
  }
  EXPECT_EQ(certifier_->certified_count(), 500);
  // Retired once certification advances a full window past them — the
  // map no longer grows with run length.
  EXPECT_LE(certifier_->decided_size(), 18u);
  // The index over the committed window is pruned alongside it.
  EXPECT_LE(certifier_->conflict_index_size(), 16u);

  // In-window idempotence survives the retirement: a recent decision is
  // replayed, not re-decided (no new commit version is consumed).
  const DbVersion before = certifier_->CommitVersion();
  decisions_.clear();
  certifier_->SubmitCertification(MakeWs(500, 0, 499, {500}));
  sim_.RunAll();
  ASSERT_EQ(decisions_.size(), 1u);
  EXPECT_TRUE(decisions_[0].second.commit);
  EXPECT_EQ(decisions_[0].second.commit_version, before);
  EXPECT_EQ(certifier_->CommitVersion(), before);
}

TEST_F(CertifierTest, ConflictIndexMatchesNewestConflictingVersion) {
  Build(2, false);
  // Three successive writers of key 5.
  certifier_->SubmitCertification(MakeWs(1, 0, 0, {5}));
  certifier_->SubmitCertification(MakeWs(2, 0, 1, {5, 6}));
  certifier_->SubmitCertification(MakeWs(3, 0, 2, {5, 7}));
  sim_.RunAll();
  EXPECT_EQ(certifier_->CommitVersion(), 3);
  // A stale writer of key 6 must be aborted against version 2 (the
  // newest write to key 6), even though key 5 was rewritten at 3.
  certifier_->SubmitCertification(MakeWs(10, 1, 1, {6}));
  sim_.RunAll();
  EXPECT_FALSE(decisions_.back().second.commit);
  // A writer of key 6 whose snapshot already saw version 2 commits.
  certifier_->SubmitCertification(MakeWs(11, 1, 2, {6}));
  sim_.RunAll();
  EXPECT_TRUE(decisions_.back().second.commit);
}

TEST_F(CertifierTest, ForceBatchCapOneForcesEveryCommitSeparately) {
  CertifierConfig config;
  config.max_force_batch = 1;
  Build(2, false, config);
  for (TxnId t = 1; t <= 20; ++t) {
    certifier_->SubmitCertification(
        MakeWs(t, 0, 0, {static_cast<int64_t>(t * 7)}));
  }
  sim_.RunAll();
  EXPECT_EQ(certifier_->certified_count(), 20);
  // A cap of one disables group commit entirely: 20 commits, 20 forces.
  EXPECT_EQ(certifier_->disk()->BusyTime(), 20 * Millis(0.8));
  EXPECT_EQ(certifier_->wal().DurableSize(), 20u);
}

TEST_F(CertifierTest, ForceBatchCapKeepsCommitVersionOrder) {
  CertifierConfig config;
  config.max_force_batch = 2;
  Build(2, false, config);
  for (TxnId t = 1; t <= 11; ++t) {
    certifier_->SubmitCertification(
        MakeWs(t, 0, 0, {static_cast<int64_t>(t * 7)}));
  }
  sim_.RunAll();
  EXPECT_EQ(certifier_->certified_count(), 11);
  // Every commit still reaches the other replica, oldest first: capped
  // forces take the head of the pending batch, never reorder it.
  ASSERT_EQ(refreshes_.size(), 11u);
  for (size_t i = 0; i < refreshes_.size(); ++i) {
    EXPECT_EQ(refreshes_[i].first, 1);
    EXPECT_EQ(refreshes_[i].second.commit_version,
              static_cast<DbVersion>(i + 1));
  }
  std::vector<WriteSet> records;
  ASSERT_TRUE(certifier_->wal().ReadAll(&records).ok());
  ASSERT_EQ(records.size(), 11u);
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].commit_version, static_cast<DbVersion>(i + 1));
  }
}

TEST_F(CertifierTest, UnboundedForceBatchEquivalentToHugeCap) {
  // max_force_batch = 0 (the legacy unbounded behaviour) and a cap that
  // never binds must produce identical refresh schedules and disk time.
  auto run = [](size_t cap) {
    Simulator sim;
    runtime::SimRuntime rt{&sim};
    CertifierConfig config;
    config.max_force_batch = cap;
    Certifier certifier(&rt, config, 3, false);
    std::vector<std::tuple<ReplicaId, TxnId, DbVersion, SimTime>> refreshes;
    certifier.SetDecisionCallback(
        [](ReplicaId, const CertDecision&) {});
    certifier.SetRefreshCallback(
        [&](ReplicaId target, const RefreshBatch& batch) {
          for (const WriteSetRef& ws : batch.writesets) {
            refreshes.emplace_back(target, ws->txn_id, ws->commit_version,
                                   sim.Now());
          }
        });
    for (TxnId t = 1; t <= 30; ++t) {
      certifier.SubmitCertification(
          MakeWs(t, 0, 0, {static_cast<int64_t>(t * 3)}));
    }
    sim.RunAll();
    return std::make_pair(refreshes, certifier.disk()->BusyTime());
  };
  const auto unbounded = run(0);
  const auto huge = run(1000);
  EXPECT_EQ(unbounded.first, huge.first);
  EXPECT_EQ(unbounded.second, huge.second);
}

TEST_F(CertifierTest, ShedSubmissionsNeverLeakAnIntakeSlot) {
  CertifierConfig config;
  config.max_intake = 2;
  Build(2, false, config);
  // Flood: one enters service, two queue, the rest are refused on
  // arrival.  A shed submission must not occupy CPU or an intake slot.
  for (TxnId t = 1; t <= 10; ++t) {
    certifier_->SubmitCertification(
        MakeWs(t, 0, 0, {static_cast<int64_t>(t)}));
  }
  EXPECT_EQ(certifier_->shed_count(), 7);
  EXPECT_EQ(certifier_->cpu()->QueueLength(), 2u);
  ASSERT_EQ(decisions_.size(), 7u);
  for (const auto& [origin, decision] : decisions_) {
    (void)origin;
    EXPECT_FALSE(decision.commit);
    EXPECT_TRUE(decision.overloaded);
    EXPECT_EQ(decision.commit_version, kNoVersion);
  }
  sim_.RunAll();
  // The admitted three were certified normally; the queue is empty again.
  EXPECT_EQ(certifier_->certified_count(), 3);
  EXPECT_EQ(certifier_->CommitVersion(), 3);
  EXPECT_EQ(certifier_->cpu()->QueueLength(), 0u);
  // Full capacity is back: another burst at the bound is admitted whole.
  decisions_.clear();
  for (TxnId t = 11; t <= 13; ++t) {
    certifier_->SubmitCertification(
        MakeWs(t, 0, 3, {static_cast<int64_t>(t)}));
  }
  EXPECT_EQ(certifier_->shed_count(), 7);
  sim_.RunAll();
  EXPECT_EQ(certifier_->certified_count(), 6);
  ASSERT_EQ(decisions_.size(), 3u);
  for (const auto& [origin, decision] : decisions_) {
    (void)origin;
    EXPECT_TRUE(decision.commit);
  }
}

TEST_F(CertifierTest, DecidedResubmissionExemptFromIntakeBound) {
  CertifierConfig config;
  config.max_intake = 1;
  Build(2, false, config);
  certifier_->SubmitCertification(MakeWs(1, 0, 0, {5}));
  sim_.RunAll();
  ASSERT_EQ(decisions_.size(), 1u);
  const DbVersion version = decisions_[0].second.commit_version;
  // Saturate the intake, then resubmit the decided transaction: the
  // replay bypasses the bound (the decision already exists — refusing
  // the retry would strand the origin), while a fresh submission at the
  // bound is still shed.
  certifier_->SubmitCertification(MakeWs(2, 1, 1, {6}));  // enters service
  certifier_->SubmitCertification(MakeWs(3, 1, 1, {7}));  // takes the slot
  certifier_->SubmitCertification(MakeWs(5, 1, 1, {9}));  // shed: at bound
  certifier_->SubmitCertification(MakeWs(1, 0, 0, {5}));  // decided: exempt
  certifier_->SubmitCertification(MakeWs(4, 1, 1, {8}));  // still shed
  EXPECT_EQ(certifier_->shed_count(), 2);  // txn 5 and txn 4
  sim_.RunAll();
  // The replayed decision is verbatim and nothing was certified twice.
  std::map<TxnId, int> seen;
  for (const auto& [origin, decision] : decisions_) {
    (void)origin;
    ++seen[decision.txn_id];
    if (decision.txn_id == 1) {
      EXPECT_TRUE(decision.commit);
      EXPECT_EQ(decision.commit_version, version);
    }
  }
  EXPECT_EQ(seen[1], 2);
  EXPECT_EQ(certifier_->certified_count(), 3);  // txn 1, 2 and 3
  // The resubmission held no slot: the queue drained to empty.
  EXPECT_EQ(certifier_->cpu()->QueueLength(), 0u);
}

}  // namespace
}  // namespace screp
