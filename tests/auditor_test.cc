// Unit tests for the online consistency auditor, driven by synthetic
// event streams: a clean history passes, each check fires on the exact
// anomaly it guards against, and the failover duplicate-verdict case is
// tolerated.

#include <gtest/gtest.h>

#include "obs/auditor.h"
#include "obs/metrics_registry.h"

namespace screp::obs {
namespace {

Event Certify(TxnId txn, DbVersion version, SimTime at) {
  Event e;
  e.kind = EventKind::kCertVerdict;
  e.txn = txn;
  e.at = at;
  e.commit_version = version;
  e.snapshot = version - 1;
  e.committed = true;
  e.read_only = false;
  return e;
}

Event Begin(TxnId txn, DbVersion required, DbVersion satisfied, SimTime at) {
  Event e;
  e.kind = EventKind::kBeginAdmitted;
  e.txn = txn;
  e.at = at;
  e.replica = 0;
  e.required_version = required;
  e.satisfied_version = satisfied;
  e.wait_cause = WaitCause::kSystemVersion;
  return e;
}

Event Apply(ReplicaId replica, DbVersion version, SimTime at) {
  Event e;
  e.kind = EventKind::kApply;
  e.txn = version;
  e.at = at;
  e.replica = replica;
  e.commit_version = version;
  return e;
}

Event FinishUpdate(TxnId txn, DbVersion snapshot, DbVersion commit,
                   SimTime submit, SimTime ack,
                   std::vector<std::pair<TableId, int64_t>> keys) {
  Event e;
  e.kind = EventKind::kTxnFinished;
  e.txn = txn;
  e.at = ack;
  e.session = 1;
  e.snapshot = snapshot;
  e.commit_version = commit;
  e.committed = true;
  e.read_only = false;
  e.submit_time = submit;
  e.start_time = submit;
  for (const auto& key : keys) {
    if (e.table_set.empty() || e.table_set.back() != key.first) {
      e.table_set.push_back(key.first);
      e.tables_written.push_back(key.first);
    }
  }
  e.keys_written = std::move(keys);
  return e;
}

Event FinishRead(TxnId txn, DbVersion snapshot, SimTime submit, SimTime ack,
                 std::vector<TableId> table_set, SessionId session = 1) {
  Event e;
  e.kind = EventKind::kTxnFinished;
  e.txn = txn;
  e.at = ack;
  e.session = session;
  e.snapshot = snapshot;
  e.committed = true;
  e.read_only = true;
  e.submit_time = submit;
  e.start_time = submit;
  e.table_set = std::move(table_set);
  return e;
}

TEST(AuditorTest, CleanHistoryPasses) {
  Auditor auditor(AuditorConfig{}, nullptr);
  auditor.OnEvent(Certify(1, 1, 10));
  auditor.OnEvent(Apply(0, 1, 12));
  auditor.OnEvent(FinishUpdate(1, 0, 1, 5, 15, {{0, 7}}));
  auditor.OnEvent(Begin(2, 1, 1, 20));
  auditor.OnEvent(FinishRead(2, 1, 18, 25, {0}));
  auditor.OnEvent(Certify(3, 2, 30));
  auditor.OnEvent(Apply(0, 2, 32));
  auditor.OnEvent(FinishUpdate(3, 1, 2, 20, 35, {{0, 8}}));
  EXPECT_TRUE(auditor.ok()) << auditor.Summary();
  EXPECT_EQ(auditor.max_commit_version(), 2);
  EXPECT_GT(auditor.checks_performed(), 0);
  EXPECT_EQ(auditor.events_consumed(), 8);
}

TEST(AuditorTest, AdmissionBelowVersionTagFires) {
  Auditor auditor(AuditorConfig{}, nullptr);
  auditor.OnEvent(Begin(1, /*required=*/5, /*satisfied=*/3, 10));
  ASSERT_EQ(auditor.violation_count(), 1);
  EXPECT_EQ(auditor.violations()[0].check, "admission");
  EXPECT_EQ(auditor.violations()[0].txn, 1);
}

TEST(AuditorTest, RouteTagBeyondIssuedVersionsFires) {
  Auditor auditor(AuditorConfig{}, nullptr);
  auditor.OnEvent(Certify(1, 1, 10));
  Event route;
  route.kind = EventKind::kRoute;
  route.txn = 2;
  route.at = 20;
  route.required_version = 9;  // certifier only issued up to 1
  auditor.OnEvent(route);
  ASSERT_EQ(auditor.violation_count(), 1);
  EXPECT_EQ(auditor.violations()[0].check, "route");
}

TEST(AuditorTest, DuplicateVersionFromDifferentTxnFires) {
  Auditor auditor(AuditorConfig{}, nullptr);
  auditor.OnEvent(Certify(1, 1, 10));
  auditor.OnEvent(Certify(2, 1, 20));  // different txn claims version 1
  ASSERT_EQ(auditor.violation_count(), 1);
  EXPECT_EQ(auditor.violations()[0].check, "total-order");
}

TEST(AuditorTest, FailoverReannouncementIsTolerated) {
  Auditor auditor(AuditorConfig{}, nullptr);
  auditor.OnEvent(Certify(1, 1, 10));
  // A promoted standby re-decides the forwarded writeset: same txn, same
  // version. Benign.
  auditor.OnEvent(Certify(1, 1, 30));
  EXPECT_TRUE(auditor.ok()) << auditor.Summary();
}

TEST(AuditorTest, VersionGapFiresOnceThenResyncs) {
  Auditor auditor(AuditorConfig{}, nullptr);
  auditor.OnEvent(Certify(1, 1, 10));
  auditor.OnEvent(Certify(2, 4, 20));  // skips 2 and 3
  auditor.OnEvent(Certify(3, 5, 30));  // dense again after resync
  EXPECT_EQ(auditor.violation_count(), 1);
  EXPECT_EQ(auditor.violations()[0].check, "total-order");
  EXPECT_EQ(auditor.max_commit_version(), 5);
}

TEST(AuditorTest, OutOfOrderApplyFires) {
  Auditor auditor(AuditorConfig{}, nullptr);
  auditor.OnEvent(Certify(1, 1, 10));
  auditor.OnEvent(Certify(2, 2, 11));
  auditor.OnEvent(Apply(0, 1, 12));
  auditor.OnEvent(Apply(1, 2, 13));  // replica 1 skipped version 1
  ASSERT_EQ(auditor.violation_count(), 1);
  EXPECT_EQ(auditor.violations()[0].check, "apply-order");
  EXPECT_NE(auditor.violations()[0].detail.find("replica 1"),
            std::string::npos);
}

TEST(AuditorTest, FirstCommitterWinsOverlapFires) {
  Auditor auditor(AuditorConfig{}, nullptr);
  auditor.OnEvent(Certify(1, 1, 10));
  auditor.OnEvent(Certify(2, 2, 20));
  auditor.OnEvent(FinishUpdate(1, 0, 1, 5, 15, {{0, 7}}));
  // Txn 2 also read snapshot 0 (concurrent with txn 1) and wrote the same
  // key — the certifier should have aborted it.
  auditor.OnEvent(FinishUpdate(2, 0, 2, 6, 25, {{0, 7}}));
  ASSERT_GE(auditor.violation_count(), 1);
  EXPECT_EQ(auditor.violations()[0].check, "fcw");
}

TEST(AuditorTest, Definition1StaleSnapshotFires) {
  Auditor auditor(AuditorConfig{}, nullptr);
  auditor.OnEvent(Certify(1, 1, 10));
  auditor.OnEvent(FinishUpdate(1, 0, 1, 5, 15, {{0, 7}}));
  // Submitted at t=20, after txn 1's ack at t=15, but read snapshot 0:
  // misses a transaction committed before it was submitted.  (Different
  // session, so Definition 2 stays quiet and only Definition 1 fires.)
  auditor.OnEvent(FinishRead(2, 0, 20, 30, {0}, /*session=*/2));
  ASSERT_EQ(auditor.violation_count(), 1);
  EXPECT_EQ(auditor.violations()[0].check, "definition1");
  EXPECT_NE(auditor.violations()[0].detail.find("txn 1"), std::string::npos);
}

TEST(AuditorTest, Definition1AllowsConcurrentSubmission) {
  Auditor auditor(AuditorConfig{}, nullptr);
  auditor.OnEvent(Certify(1, 1, 10));
  auditor.OnEvent(FinishUpdate(1, 0, 1, 5, 15, {{0, 7}}));
  // Submitted at t=12 < ack t=15: concurrent, allowed to miss txn 1.
  auditor.OnEvent(FinishRead(2, 0, 12, 30, {0}));
  EXPECT_TRUE(auditor.ok()) << auditor.Summary();
}

TEST(AuditorTest, Definition2FiresWhenStrongCheckingIsOff) {
  AuditorConfig config;
  config.check_strong = false;  // session-consistency configurations
  Auditor auditor(config, nullptr);
  auditor.OnEvent(Certify(1, 1, 10));
  auditor.OnEvent(FinishUpdate(1, 0, 1, 5, 15, {{0, 7}}));  // session 1
  // Same session submits after the ack but reads the old snapshot: breaks
  // Definition 2 even though Definition 1 is not being enforced.
  auditor.OnEvent(FinishRead(2, 0, 20, 30, {0}, /*session=*/1));
  ASSERT_EQ(auditor.violation_count(), 1);
  EXPECT_EQ(auditor.violations()[0].check, "definition2");

  // A different session reading stale is fine under session consistency.
  Auditor relaxed(config, nullptr);
  relaxed.OnEvent(Certify(1, 1, 10));
  relaxed.OnEvent(FinishUpdate(1, 0, 1, 5, 15, {{0, 7}}));
  relaxed.OnEvent(FinishRead(2, 0, 20, 30, {0}, /*session=*/2));
  EXPECT_TRUE(relaxed.ok()) << relaxed.Summary();
}

TEST(AuditorTest, SnapshotBeyondCertifiedVersionFires) {
  Auditor auditor(AuditorConfig{}, nullptr);
  auditor.OnEvent(FinishRead(1, 5, 10, 20, {0}));  // nothing certified yet
  ASSERT_EQ(auditor.violation_count(), 1);
  EXPECT_EQ(auditor.violations()[0].check, "total-order");
}

TEST(AuditorTest, ViolationRecordingIsCappedButCountRuns) {
  AuditorConfig config;
  config.max_recorded_violations = 2;
  Auditor auditor(config, nullptr);
  for (TxnId t = 1; t <= 5; ++t) {
    auditor.OnEvent(Begin(t, /*required=*/10, /*satisfied=*/0, t));
  }
  EXPECT_EQ(auditor.violation_count(), 5);
  EXPECT_EQ(auditor.violations().size(), 2u);
}

TEST(AuditorTest, StalenessHistogramsLandInTheRegistry) {
  MetricsRegistry registry;
  Auditor auditor(AuditorConfig{}, &registry);
  auditor.OnEvent(Certify(1, 1, 10));
  auditor.OnEvent(Certify(2, 2, 20));
  // BEGIN at version 1 while the certifier is at 2: lag 1, snapshot age
  // = now - certify time of the first missed version (2, certified t=20).
  auditor.OnEvent(Begin(3, 1, 1, 50));
  const Histogram* lag = registry.GetHistogram(kVersionLagHistogram);
  ASSERT_EQ(lag->count(), 1);
  EXPECT_DOUBLE_EQ(lag->max(), 1.0);
  const Histogram* age = registry.GetHistogram(kSnapshotAgeHistogram);
  ASSERT_EQ(age->count(), 1);
  EXPECT_DOUBLE_EQ(age->max(), 30.0);
}

TEST(AuditorTest, JsonReportCarriesViolations) {
  Auditor auditor(AuditorConfig{}, nullptr);
  auditor.OnEvent(Begin(1, 5, 3, 10));
  const std::string json = auditor.ToJson();
  EXPECT_NE(json.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(json.find("\"check\":\"admission\""), std::string::npos);
  EXPECT_NE(auditor.Summary().find("audit FAILED"), std::string::npos);
}

}  // namespace
}  // namespace screp::obs
