#include "replication/proxy.h"
#include "runtime/sim_runtime.h"

#include <gtest/gtest.h>

namespace screp {
namespace {

/// Drives a single Proxy directly, playing the roles of load balancer and
/// certifier.
class ProxyTest : public ::testing::Test {
 protected:
  void Build(bool eager = false, ProxyConfig config = ProxyConfig{}) {
    auto table = db_.CreateTable(
        "t", Schema({{"id", ValueType::kInt64}, {"val", ValueType::kInt64}}));
    ASSERT_TRUE(table.ok());
    table_ = *table;
    auto t2 = db_.CreateTable(
        "u", Schema({{"id", ValueType::kInt64}, {"val", ValueType::kInt64}}));
    ASSERT_TRUE(t2.ok());
    table2_ = *t2;
    for (int64_t k = 0; k < 10; ++k) {
      ASSERT_TRUE(db_.BulkLoad(table_, {Value(k), Value(0)}).ok());
      ASSERT_TRUE(db_.BulkLoad(table2_, {Value(k), Value(0)}).ok());
    }

    auto add = [&](const char* name, const char* text) {
      sql::PreparedTransaction txn;
      txn.name = name;
      auto stmt = sql::PreparedStatement::Prepare(db_, text);
      ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
      txn.statements.push_back(std::move(stmt).value());
      registry_.Register(std::move(txn));
    };
    add("read", "SELECT val FROM t WHERE id = ?");
    add("write", "UPDATE t SET val = val + ? WHERE id = ?");
    {
      sql::PreparedTransaction txn;
      txn.name = "write2";
      for (const char* text :
           {"UPDATE t SET val = val + ? WHERE id = ?",
            "UPDATE u SET val = val + ? WHERE id = ?"}) {
        auto stmt = sql::PreparedStatement::Prepare(db_, text);
        ASSERT_TRUE(stmt.ok());
        txn.statements.push_back(std::move(stmt).value());
      }
      registry_.Register(std::move(txn));
    }

    proxy_ = std::make_unique<Proxy>(&rt_, 0, &db_, &registry_, config,
                                     eager);
    proxy_->SetCertRequestCallback(
        [this](const WriteSet& ws) { cert_requests_.push_back(ws); });
    proxy_->SetResponseCallback(
        [this](const TxnResponse& r) { responses_.push_back(r); });
    proxy_->SetReplicaCommittedCallback(
        [this](TxnId txn) { commit_reports_.push_back(txn); });
  }

  TxnRequest MakeRequest(TxnId id, const char* type,
                         std::vector<std::vector<Value>> params) {
    TxnRequest req;
    req.txn_id = id;
    req.type = *registry_.Find(type);
    req.session = 1;
    req.params = std::move(params);
    return req;
  }

  WriteSet MakeRefresh(TxnId id, DbVersion version, int64_t key,
                       TableId table = -1) {
    WriteSet ws;
    ws.txn_id = id;
    ws.origin = 1;  // another replica
    ws.commit_version = version;
    ws.Add(table < 0 ? table_ : table, key, WriteType::kUpdate,
           Row{Value(key), Value(version * 1000)});
    return ws;
  }

  Simulator sim_;
  runtime::SimRuntime rt_{&sim_};
  Database db_;
  TableId table_ = -1, table2_ = -1;
  sql::TransactionRegistry registry_;
  std::unique_ptr<Proxy> proxy_;
  std::vector<WriteSet> cert_requests_;
  std::vector<TxnResponse> responses_;
  std::vector<TxnId> commit_reports_;
};

TEST_F(ProxyTest, ReadOnlyFastPath) {
  Build();
  proxy_->OnTxnRequest(MakeRequest(1, "read", {{Value(3)}}), 0);
  sim_.RunAll();
  ASSERT_EQ(responses_.size(), 1u);
  const TxnResponse& r = responses_[0];
  EXPECT_EQ(r.outcome, TxnOutcome::kCommitted);
  EXPECT_TRUE(r.read_only);
  EXPECT_EQ(r.commit_version, kNoVersion);
  EXPECT_TRUE(r.written_table_versions.empty());
  EXPECT_TRUE(cert_requests_.empty());  // never touched the certifier
  EXPECT_GT(r.stages.queries, 0);
  EXPECT_GT(r.stages.commit, 0);
  EXPECT_EQ(r.stages.version, 0);
}

TEST_F(ProxyTest, UpdateGoesThroughCertification) {
  Build();
  proxy_->OnTxnRequest(MakeRequest(1, "write", {{Value(5), Value(3)}}), 0);
  sim_.RunAll();
  ASSERT_EQ(cert_requests_.size(), 1u);
  EXPECT_EQ(cert_requests_[0].txn_id, 1u);
  EXPECT_EQ(cert_requests_[0].origin, 0);
  EXPECT_EQ(cert_requests_[0].size(), 1u);
  EXPECT_TRUE(responses_.empty());  // waiting for the decision

  proxy_->OnCertDecision(CertDecision{1, true, 1});
  sim_.RunAll();
  ASSERT_EQ(responses_.size(), 1u);
  const TxnResponse& r = responses_[0];
  EXPECT_EQ(r.outcome, TxnOutcome::kCommitted);
  EXPECT_FALSE(r.read_only);
  EXPECT_EQ(r.commit_version, 1);
  EXPECT_EQ(r.v_local_after, 1);
  ASSERT_EQ(r.written_table_versions.size(), 1u);
  EXPECT_EQ(r.written_table_versions[0].first, table_);
  EXPECT_EQ(r.written_table_versions[0].second, 1);
  // The write is in the local database.
  EXPECT_EQ((*db_.Begin()->Get(table_, 3))[1].AsInt(), 5);
}

TEST_F(ProxyTest, CertificationAbortRollsBack) {
  Build();
  proxy_->OnTxnRequest(MakeRequest(1, "write", {{Value(5), Value(3)}}), 0);
  sim_.RunAll();
  proxy_->OnCertDecision(CertDecision{1, false, kNoVersion});
  sim_.RunAll();
  ASSERT_EQ(responses_.size(), 1u);
  EXPECT_EQ(responses_[0].outcome, TxnOutcome::kCertificationAbort);
  EXPECT_EQ(db_.CommittedVersion(), 0);
  EXPECT_EQ((*db_.Begin()->Get(table_, 3))[1].AsInt(), 0);
  EXPECT_EQ(proxy_->active_transactions(), 0u);
}

TEST_F(ProxyTest, SynchronizationStartDelay) {
  Build();
  // The load balancer demands version 2; the replica is at 0.
  proxy_->OnTxnRequest(MakeRequest(1, "read", {{Value(3)}}), 2);
  sim_.RunAll();
  EXPECT_TRUE(responses_.empty());  // blocked at BEGIN
  proxy_->OnRefresh(MakeRefresh(10, 1, 7));
  sim_.RunAll();
  EXPECT_TRUE(responses_.empty());  // still short of version 2
  proxy_->OnRefresh(MakeRefresh(11, 2, 8));
  sim_.RunAll();
  ASSERT_EQ(responses_.size(), 1u);
  EXPECT_EQ(responses_[0].outcome, TxnOutcome::kCommitted);
  EXPECT_GT(responses_[0].stages.version, 0);
  EXPECT_EQ(responses_[0].snapshot, 2);  // reads the synchronized state
}

TEST_F(ProxyTest, RefreshesApplyInVersionOrder) {
  Build();
  // Deliver out of order: 3, then 1, then 2.
  proxy_->OnRefresh(MakeRefresh(13, 3, 3));
  sim_.RunAll();
  EXPECT_EQ(proxy_->v_local(), 0);  // cannot apply v3 first
  EXPECT_EQ(proxy_->pending_writesets(), 1u);
  proxy_->OnRefresh(MakeRefresh(11, 1, 1));
  sim_.RunAll();
  EXPECT_EQ(proxy_->v_local(), 1);
  proxy_->OnRefresh(MakeRefresh(12, 2, 2));
  sim_.RunAll();
  EXPECT_EQ(proxy_->v_local(), 3);
  EXPECT_EQ(proxy_->refresh_applied_count(), 3);
  // All three rows reflect their refresh values.
  auto txn = db_.Begin();
  EXPECT_EQ((*txn->Get(table_, 1))[1].AsInt(), 1000);
  EXPECT_EQ((*txn->Get(table_, 3))[1].AsInt(), 3000);
}

TEST_F(ProxyTest, LocalCommitInterleavesWithRefreshOrder) {
  Build();
  // Local update certified at version 2; refresh v1 arrives afterwards.
  proxy_->OnTxnRequest(MakeRequest(1, "write", {{Value(5), Value(3)}}), 0);
  sim_.RunAll();
  proxy_->OnCertDecision(CertDecision{1, true, 2});
  sim_.RunAll();
  // Must wait: v1 has not been applied yet.
  EXPECT_TRUE(responses_.empty());
  proxy_->OnRefresh(MakeRefresh(11, 1, 7));
  sim_.RunAll();
  ASSERT_EQ(responses_.size(), 1u);
  EXPECT_EQ(proxy_->v_local(), 2);
  EXPECT_GT(responses_[0].stages.sync, 0);
}

TEST_F(ProxyTest, EarlyCertificationAgainstPendingRefresh) {
  Build();
  // A pending refresh (v2, not yet applicable) writes key 3.
  proxy_->OnRefresh(MakeRefresh(12, 2, 3));
  sim_.RunAll();
  ASSERT_EQ(proxy_->pending_writesets(), 1u);
  // A client update on key 3 must be aborted early.
  proxy_->OnTxnRequest(MakeRequest(1, "write", {{Value(5), Value(3)}}), 0);
  sim_.RunAll();
  ASSERT_EQ(responses_.size(), 1u);
  EXPECT_EQ(responses_[0].outcome, TxnOutcome::kEarlyAbort);
  EXPECT_TRUE(cert_requests_.empty());
  EXPECT_GE(proxy_->early_abort_count(), 1);
}

TEST_F(ProxyTest, EarlyCertificationDisabledLetsCertifierDecide) {
  ProxyConfig config;
  config.early_certification = false;
  Build(false, config);
  proxy_->OnRefresh(MakeRefresh(12, 2, 3));
  sim_.RunAll();
  proxy_->OnTxnRequest(MakeRequest(1, "write", {{Value(5), Value(3)}}), 0);
  sim_.RunAll();
  EXPECT_TRUE(responses_.empty());
  EXPECT_EQ(cert_requests_.size(), 1u);  // went to the certifier instead
}

TEST_F(ProxyTest, ArrivingRefreshAbortsConflictingActiveTxn) {
  Build();
  // Two-statement update transaction: after statement 1 it is still
  // active when the conflicting refresh arrives.
  proxy_->OnTxnRequest(
      MakeRequest(1, "write2", {{Value(5), Value(3)}, {Value(5), Value(4)}}),
      0);
  // Let statement 1 execute but not the whole transaction.
  sim_.RunUntil(Micros(100));
  EXPECT_EQ(proxy_->active_transactions(), 1u);
  proxy_->OnRefresh(MakeRefresh(11, 1, 3));  // conflicts with statement 1
  sim_.RunAll();
  ASSERT_EQ(responses_.size(), 1u);
  EXPECT_EQ(responses_[0].outcome, TxnOutcome::kEarlyAbort);
}

TEST_F(ProxyTest, NonConflictingRefreshLeavesActiveTxnAlone) {
  Build();
  proxy_->OnTxnRequest(
      MakeRequest(1, "write2", {{Value(5), Value(3)}, {Value(5), Value(4)}}),
      0);
  sim_.RunUntil(Micros(100));
  proxy_->OnRefresh(MakeRefresh(11, 1, 9));  // different key
  sim_.RunAll();
  // The transaction proceeds to certification.
  ASSERT_EQ(cert_requests_.size(), 1u);
  EXPECT_EQ(cert_requests_[0].size(), 2u);
}

TEST_F(ProxyTest, EagerHoldsResponseUntilGlobalCommit) {
  Build(/*eager=*/true);
  proxy_->OnTxnRequest(MakeRequest(1, "write", {{Value(5), Value(3)}}), 0);
  sim_.RunAll();
  proxy_->OnCertDecision(CertDecision{1, true, 1});
  sim_.RunAll();
  // Local commit happened (reported to the certifier), but the client has
  // no answer yet.
  ASSERT_EQ(commit_reports_.size(), 1u);
  EXPECT_EQ(commit_reports_[0], 1u);
  EXPECT_TRUE(responses_.empty());
  proxy_->OnGlobalCommit(1);
  sim_.RunAll();
  ASSERT_EQ(responses_.size(), 1u);
  EXPECT_EQ(responses_[0].outcome, TxnOutcome::kCommitted);
  EXPECT_GE(responses_[0].stages.global, 0);
}

TEST_F(ProxyTest, EagerReportsRefreshCommitsToo) {
  Build(/*eager=*/true);
  proxy_->OnRefresh(MakeRefresh(11, 1, 7));
  sim_.RunAll();
  ASSERT_EQ(commit_reports_.size(), 1u);
  EXPECT_EQ(commit_reports_[0], 11u);
}

TEST_F(ProxyTest, ExecutionErrorRespondsWithoutCertification) {
  Build();
  // Updating a missing key: 0 rows affected is fine, so use an insert
  // conflict instead — "write" on key 3 twice in one txn is legal, so
  // craft a read of a missing row via a type that fails: parameter arity
  // mismatch triggers the execution error path.
  proxy_->OnTxnRequest(MakeRequest(1, "write", {{Value(5)}}), 0);
  sim_.RunAll();
  ASSERT_EQ(responses_.size(), 1u);
  EXPECT_EQ(responses_[0].outcome, TxnOutcome::kExecutionError);
  EXPECT_TRUE(cert_requests_.empty());
}

TEST_F(ProxyTest, StageTimingsSumBelowTotalLatency) {
  Build();
  proxy_->OnTxnRequest(MakeRequest(1, "write", {{Value(5), Value(3)}}), 0);
  sim_.RunAll();
  const SimTime decision_at = sim_.Now();
  proxy_->OnCertDecision(CertDecision{1, true, 1});
  sim_.RunAll();
  const TxnResponse& r = responses_.at(0);
  // certify stage covers the decision wait measured at the proxy.
  EXPECT_GE(r.stages.certify, decision_at - r.start_time - r.stages.queries);
  EXPECT_GT(r.stages.Total(), 0);
}

/// Deterministic service times + `lanes` apply lanes, for the pipeline
/// tests below (refresh cost = refresh_base + refresh_per_op * size).
ProxyConfig LaneConfig(int lanes) {
  ProxyConfig config;
  config.apply_lanes = lanes;
  config.cpu_cores = 4;
  config.service_spread = 0.0;
  config.stall_probability = 0.0;
  return config;
}

TEST_F(ProxyTest, LanesExecuteOutOfOrderButPublishInOrder) {
  Build(false, LaneConfig(4));
  // Version 1 is an 8-op refresh (1 + 2.5*8 = 21ms); versions 2..4 are
  // 1-op refreshes (3.5ms) on distinct keys.
  WriteSet big = MakeRefresh(101, 1, 0);
  for (int64_t k = 1; k < 8; ++k) {
    big.Add(table_, k, WriteType::kUpdate, Row{Value(k), Value(1000)});
  }
  proxy_->OnRefresh(big);
  proxy_->OnRefresh(MakeRefresh(102, 2, 8));
  proxy_->OnRefresh(MakeRefresh(103, 3, 9));
  proxy_->OnRefresh(MakeRefresh(104, 4, 8, table2_));
  // Mid-flight: the three small writesets have executed out of order but
  // must not be visible — version 1 is still running.
  sim_.RunUntil(Millis(10));
  EXPECT_EQ(proxy_->v_local(), 0);
  EXPECT_EQ(proxy_->publish_backlog(), 3u);
  // Once version 1 finishes, all four publish back-to-back: the makespan
  // is the longest writeset, not the sum.
  sim_.RunAll();
  EXPECT_EQ(proxy_->v_local(), 4);
  EXPECT_EQ(proxy_->publish_backlog(), 0u);
  EXPECT_EQ(proxy_->pending_writesets(), 0u);
  EXPECT_EQ(sim_.Now(), Millis(21));
  EXPECT_EQ(proxy_->refresh_applied_count(), 4);
}

TEST_F(ProxyTest, SerialLaneMatchesSequentialMakespan) {
  Build(false, LaneConfig(1));
  proxy_->OnRefresh(MakeRefresh(101, 1, 0));
  proxy_->OnRefresh(MakeRefresh(102, 2, 1));
  proxy_->OnRefresh(MakeRefresh(103, 3, 2));
  sim_.RunAll();
  EXPECT_EQ(proxy_->v_local(), 3);
  // One lane: 3 * 3.5ms, strictly sequential.
  EXPECT_EQ(sim_.Now(), Millis(10.5));
}

TEST_F(ProxyTest, ConflictingWritesetsNeverOverlapInLanes) {
  Build(false, LaneConfig(4));
  // Both write key 5: version 2 must wait for version 1 to publish.
  proxy_->OnRefresh(MakeRefresh(101, 1, 5));
  proxy_->OnRefresh(MakeRefresh(102, 2, 5));
  sim_.RunUntil(Millis(5));
  EXPECT_EQ(proxy_->v_local(), 1);  // v2 not even dispatched at 3.5ms
  sim_.RunAll();
  EXPECT_EQ(proxy_->v_local(), 2);
  EXPECT_EQ(sim_.Now(), Millis(7));  // sequential: 3.5 + 3.5
  // In-order apply: the surviving value is version 2's.
  auto txn = db_.Begin();
  Result<Row> row = txn->Get(table_, 5);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[1].AsInt(), 2000);
}

TEST_F(ProxyTest, VersionGapBlocksDispatch) {
  Build(false, LaneConfig(4));
  // Version 2 arrives first: it may not execute — an unseen version 1
  // could conflict with it.
  proxy_->OnRefresh(MakeRefresh(102, 2, 1));
  sim_.RunAll();
  EXPECT_EQ(proxy_->v_local(), 0);
  EXPECT_EQ(proxy_->pending_writesets(), 1u);
  proxy_->OnRefresh(MakeRefresh(101, 1, 0));
  sim_.RunAll();
  EXPECT_EQ(proxy_->v_local(), 2);
}

TEST_F(ProxyTest, CrashReleasesApplyLanes) {
  Build(false, LaneConfig(2));
  proxy_->OnRefresh(MakeRefresh(101, 1, 0));
  proxy_->OnRefresh(MakeRefresh(102, 2, 1));
  sim_.RunUntil(Millis(1));  // both mid-execution in their lanes
  proxy_->Crash();
  sim_.RunAll();
  proxy_->Restart();
  // Recovery re-delivers everything after the crash point; the lanes
  // must all be free again or this stalls below 3.
  proxy_->OnRefresh(MakeRefresh(101, 1, 0));
  proxy_->OnRefresh(MakeRefresh(102, 2, 1));
  proxy_->OnRefresh(MakeRefresh(103, 3, 2));
  sim_.RunAll();
  EXPECT_EQ(proxy_->v_local(), 3);
  EXPECT_EQ(proxy_->apply_lanes()->Busy(), 0);
}

}  // namespace
}  // namespace screp
