// End-to-end tests for the multi-lane apply pipeline: out-of-order
// writeset execution with in-order version publish must preserve every
// consistency configuration (the online auditor checks sequential applies
// per replica, snapshot monotonicity and the start-delay guarantee), and
// parallel lanes must actually shorten the synchronization start delay
// under an update-heavy workload.

#include <gtest/gtest.h>

#include "workload/experiment.h"
#include "workload/micro.h"

namespace screp {
namespace {

MicroConfig UpdateHeavyMicro() {
  MicroConfig config;
  config.rows_per_table = 400;
  config.update_fraction = 0.6;
  return config;
}

ExperimentConfig LaneRun(ConsistencyLevel level, int apply_lanes) {
  ExperimentConfig config;
  config.system.level = level;
  config.system.replica_count = 4;
  config.system.proxy.cpu_cores = 4;
  config.system.proxy.apply_lanes = apply_lanes;
  config.client_count = 16;
  config.warmup = Seconds(0.5);
  config.duration = Seconds(4);
  config.seed = 11;
  config.audit = true;
  return config;
}

TEST(ApplyLanesIntegrationTest, FourLanesAuditCleanlyAtEveryLevel) {
  const MicroWorkload workload(UpdateHeavyMicro());
  for (ConsistencyLevel level : kAllConsistencyLevels) {
    auto result = RunExperiment(workload, LaneRun(level, 4));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_TRUE(result->audit.enabled) << ConsistencyLevelName(level);
    EXPECT_TRUE(result->audit.ok)
        << ConsistencyLevelName(level) << ": " << result->audit.ToString();
    EXPECT_GT(result->audit.checks, 0);
    EXPECT_GT(result->committed_updates, 0);
  }
}

TEST(ApplyLanesIntegrationTest, LanesReduceSyncStartDelay) {
  const MicroWorkload workload(UpdateHeavyMicro());
  auto serial = RunExperiment(workload, LaneRun(ConsistencyLevel::kLazyCoarse, 1));
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  auto laned = RunExperiment(workload, LaneRun(ConsistencyLevel::kLazyCoarse, 4));
  ASSERT_TRUE(laned.ok()) << laned.status().ToString();
  EXPECT_TRUE(serial->audit.ok) << serial->audit.ToString();
  EXPECT_TRUE(laned->audit.ok) << laned->audit.ToString();
  // The point of the lanes: non-conflicting refresh writesets apply in
  // parallel, replicas track V_system more closely, and transactions
  // spend less time blocked at BEGIN.
  EXPECT_GT(serial->sync_delay_ms, 0.0);
  EXPECT_LT(laned->sync_delay_ms, serial->sync_delay_ms);
  // Both runs decide the same workload; throughput must not regress.
  EXPECT_GE(laned->throughput_tps, serial->throughput_tps * 0.95);
}

TEST(ApplyLanesIntegrationTest, LanesSurviveCrashAndRecovery) {
  const MicroWorkload workload(UpdateHeavyMicro());
  ExperimentConfig config = LaneRun(ConsistencyLevel::kLazyFine, 4);
  config.faults.push_back(FaultEvent{/*replica=*/2,
                                     /*crash_at=*/Seconds(1.5),
                                     /*recover_at=*/Seconds(2.5)});
  auto result = RunExperiment(workload, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->audit.ok) << result->audit.ToString();
  EXPECT_GT(result->committed_updates, 0);
}

}  // namespace
}  // namespace screp
