// Unit tests for the streaming time-series layer: RollingWindow summary
// statistics (mean/min/max, nearest-rank percentile, least-squares slope,
// eviction at capacity) and TimeSeriesStore ingestion (gauge windows,
// counter deltas converted to per-second rates, absent series).

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/sim_time.h"
#include "obs/timeseries.h"

namespace screp::obs {
namespace {

TEST(RollingWindowTest, EmptyWindowIsInert) {
  RollingWindow w(4);
  EXPECT_TRUE(w.empty());
  EXPECT_EQ(w.count(), 0u);
  EXPECT_EQ(w.latest(), 0.0);
  EXPECT_EQ(w.latest_time(), 0);
  EXPECT_EQ(w.mean(), 0.0);
  EXPECT_EQ(w.min(), 0.0);
  EXPECT_EQ(w.max(), 0.0);
  EXPECT_EQ(w.Percentile(0.99), 0.0);
  EXPECT_EQ(w.SlopePerSec(), 0.0);
}

TEST(RollingWindowTest, SummariesCoverExactlyTheWindow) {
  RollingWindow w(3);
  w.Add(Millis(1), 10);
  w.Add(Millis(2), 20);
  w.Add(Millis(3), 30);
  EXPECT_DOUBLE_EQ(w.mean(), 20.0);
  EXPECT_DOUBLE_EQ(w.min(), 10.0);
  EXPECT_DOUBLE_EQ(w.max(), 30.0);
  EXPECT_DOUBLE_EQ(w.latest(), 30.0);
  EXPECT_EQ(w.latest_time(), Millis(3));

  // A fourth sample evicts the oldest: the window is now {20, 30, 40}.
  w.Add(Millis(4), 40);
  EXPECT_EQ(w.count(), 3u);
  EXPECT_DOUBLE_EQ(w.mean(), 30.0);
  EXPECT_DOUBLE_EQ(w.min(), 20.0);
  EXPECT_DOUBLE_EQ(w.max(), 40.0);
}

TEST(RollingWindowTest, PercentileIsNearestRankOnTheSortedWindow) {
  RollingWindow w(8);
  // Insert out of order by value; percentile must sort.
  const double values[] = {50, 10, 40, 20, 30};
  SimTime t = 0;
  for (double v : values) w.Add(t += Millis(1), v);
  EXPECT_DOUBLE_EQ(w.Percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(w.Percentile(0.5), 30.0);
  EXPECT_DOUBLE_EQ(w.Percentile(1.0), 50.0);
  EXPECT_DOUBLE_EQ(w.Percentile(0.99), 50.0);
}

TEST(RollingWindowTest, SlopeIsLeastSquaresPerSecond) {
  RollingWindow w(8);
  // value = 5 * t_seconds + 7: exact fit, slope 5 per second.
  for (int i = 0; i < 5; ++i) {
    const SimTime at = Seconds(i);
    w.Add(at, 5.0 * i + 7.0);
  }
  EXPECT_NEAR(w.SlopePerSec(), 5.0, 1e-9);

  // Constant series: slope 0.
  RollingWindow flat(8);
  for (int i = 0; i < 5; ++i) flat.Add(Seconds(i), 3.0);
  EXPECT_NEAR(flat.SlopePerSec(), 0.0, 1e-12);
}

TEST(RollingWindowTest, SlopeDegenerateCasesAreZero) {
  RollingWindow w(4);
  EXPECT_EQ(w.SlopePerSec(), 0.0);
  w.Add(Millis(1), 42);
  EXPECT_EQ(w.SlopePerSec(), 0.0);  // one sample
  w.Add(Millis(1), 43);
  EXPECT_EQ(w.SlopePerSec(), 0.0);  // zero time spread
}

TEST(RollingWindowTest, EvictionKeepsSlopeOnTheRecentSamples) {
  RollingWindow w(3);
  // Early flat phase, then a steep ramp; after eviction only the ramp
  // remains in the window.
  w.Add(Seconds(0), 0);
  w.Add(Seconds(1), 0);
  w.Add(Seconds(2), 0);
  w.Add(Seconds(3), 100);
  w.Add(Seconds(4), 200);
  // Window = {(2,0),(3,100),(4,200)}: slope exactly 100 per second.
  EXPECT_NEAR(w.SlopePerSec(), 100.0, 1e-9);
}

TEST(TimeSeriesStoreTest, IngestBuildsGaugeWindowsAndRateWindows) {
  TimeSeriesStore store(TimeSeriesConfig{.window = 8});
  const SimTime period = Millis(250);
  store.Ingest(period, period, {{"replica0.version_lag", 5.0}},
               {{"committed", 50.0}});
  store.Ingest(2 * period, period, {{"replica0.version_lag", 9.0}},
               {{"committed", 100.0}});

  EXPECT_EQ(store.samples(), 2u);
  EXPECT_EQ(store.last_sample_at(), 2 * period);

  const RollingWindow* lag = store.gauge("replica0.version_lag");
  ASSERT_NE(lag, nullptr);
  EXPECT_EQ(lag->count(), 2u);
  EXPECT_DOUBLE_EQ(lag->latest(), 9.0);

  // Counter deltas become per-second rates: 50 per 250 ms = 200/s,
  // 100 per 250 ms = 400/s.
  const RollingWindow* rate = store.rate("committed");
  ASSERT_NE(rate, nullptr);
  EXPECT_EQ(rate->count(), 2u);
  EXPECT_DOUBLE_EQ(rate->samples()[0].second, 200.0);
  EXPECT_DOUBLE_EQ(rate->latest(), 400.0);
}

TEST(TimeSeriesStoreTest, AbsentSeriesAreNullNotZero) {
  TimeSeriesStore store(TimeSeriesConfig{.window = 4});
  store.Ingest(Millis(250), Millis(250), {{"present", 1.0}}, {});
  EXPECT_NE(store.gauge("present"), nullptr);
  EXPECT_EQ(store.gauge("absent"), nullptr);
  EXPECT_EQ(store.rate("absent"), nullptr);
}

TEST(TimeSeriesStoreTest, NamesEnumerateEverySeries) {
  TimeSeriesStore store(TimeSeriesConfig{.window = 4});
  store.Ingest(Millis(250), Millis(250), {{"b", 1.0}, {"a", 2.0}},
               {{"c", 3.0}});
  EXPECT_EQ(store.GaugeNames(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(store.RateNames(), (std::vector<std::string>{"c"}));
}

}  // namespace
}  // namespace screp::obs
