#include "sim/resource.h"
#include "runtime/sim_runtime.h"

#include <gtest/gtest.h>

#include <vector>

namespace screp {
namespace {

TEST(ResourceTest, SingleServerSerializes) {
  Simulator sim;
  runtime::SimRuntime rt{&sim};
  Resource res(&rt, "cpu", 1);
  std::vector<SimTime> completions;
  for (int i = 0; i < 3; ++i) {
    res.Submit(Millis(10), [&] { completions.push_back(sim.Now()); });
  }
  sim.RunAll();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[0], Millis(10));
  EXPECT_EQ(completions[1], Millis(20));
  EXPECT_EQ(completions[2], Millis(30));
}

TEST(ResourceTest, TwoServersOverlap) {
  Simulator sim;
  runtime::SimRuntime rt{&sim};
  Resource res(&rt, "cpu", 2);
  std::vector<SimTime> completions;
  for (int i = 0; i < 4; ++i) {
    res.Submit(Millis(10), [&] { completions.push_back(sim.Now()); });
  }
  sim.RunAll();
  ASSERT_EQ(completions.size(), 4u);
  EXPECT_EQ(completions[0], Millis(10));
  EXPECT_EQ(completions[1], Millis(10));
  EXPECT_EQ(completions[2], Millis(20));
  EXPECT_EQ(completions[3], Millis(20));
}

TEST(ResourceTest, FifoOrder) {
  Simulator sim;
  runtime::SimRuntime rt{&sim};
  Resource res(&rt, "cpu", 1);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    res.Submit(Millis(1), [&order, i] { order.push_back(i); });
  }
  sim.RunAll();
  for (int i = 0; i < 5; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ResourceTest, QueueLengthAndBusy) {
  Simulator sim;
  runtime::SimRuntime rt{&sim};
  Resource res(&rt, "cpu", 1);
  res.Submit(Millis(10), [] {});
  res.Submit(Millis(10), [] {});
  res.Submit(Millis(10), [] {});
  EXPECT_EQ(res.Busy(), 1);
  EXPECT_EQ(res.QueueLength(), 2u);
  sim.RunUntil(Millis(15));
  EXPECT_EQ(res.Busy(), 1);
  EXPECT_EQ(res.QueueLength(), 1u);
  sim.RunAll();
  EXPECT_EQ(res.Busy(), 0);
  EXPECT_EQ(res.QueueLength(), 0u);
}

TEST(ResourceTest, UtilizationFullWhenAlwaysBusy) {
  Simulator sim;
  runtime::SimRuntime rt{&sim};
  Resource res(&rt, "cpu", 1);
  res.Submit(Millis(10), [] {});
  sim.RunAll();
  EXPECT_NEAR(res.Utilization(), 1.0, 1e-9);
}

TEST(ResourceTest, UtilizationHalf) {
  Simulator sim;
  runtime::SimRuntime rt{&sim};
  Resource res(&rt, "cpu", 2);
  res.Submit(Millis(10), [] {});  // one of two servers busy
  sim.RunAll();
  EXPECT_NEAR(res.Utilization(), 0.5, 1e-9);
}

TEST(ResourceTest, QueueDelayRecorded) {
  Simulator sim;
  runtime::SimRuntime rt{&sim};
  Resource res(&rt, "cpu", 1);
  res.Submit(Millis(10), [] {});
  res.Submit(Millis(10), [] {});
  sim.RunAll();
  EXPECT_EQ(res.queue_delay().count(), 2);
  // Second request waited 10ms.
  EXPECT_NEAR(res.queue_delay().max(), 10000.0, 10000.0 * 0.05);
}

TEST(ResourceTest, ResetStatsClearsBusyTime) {
  Simulator sim;
  runtime::SimRuntime rt{&sim};
  Resource res(&rt, "cpu", 1);
  res.Submit(Millis(10), [] {});
  sim.RunAll();
  res.ResetStats();
  EXPECT_EQ(res.BusyTime(), 0);
  EXPECT_EQ(res.queue_delay().count(), 0);
  EXPECT_NEAR(res.Utilization(), 0.0, 1e-9);
}

TEST(ResourceTest, ZeroServiceTimeCompletes) {
  Simulator sim;
  runtime::SimRuntime rt{&sim};
  Resource res(&rt, "cpu", 1);
  bool done = false;
  res.Submit(0, [&] { done = true; });
  sim.RunAll();
  EXPECT_TRUE(done);
}

TEST(ResourceTest, TryAcquireClaimsAndReleaseReturnsServers) {
  Simulator sim;
  runtime::SimRuntime rt{&sim};
  Resource res(&rt, "lanes", 2);
  EXPECT_EQ(res.FreeServers(), 2);
  EXPECT_TRUE(res.TryAcquire());
  EXPECT_TRUE(res.TryAcquire());
  EXPECT_EQ(res.Busy(), 2);
  EXPECT_EQ(res.FreeServers(), 0);
  EXPECT_FALSE(res.TryAcquire());  // all claimed
  res.Release();
  EXPECT_EQ(res.FreeServers(), 1);
  EXPECT_TRUE(res.TryAcquire());
  res.Release();
  res.Release();
  EXPECT_EQ(res.Busy(), 0);
}

TEST(ResourceTest, TryAcquireHoldTimeCountsAsBusyTime) {
  Simulator sim;
  runtime::SimRuntime rt{&sim};
  Resource res(&rt, "lanes", 2);
  // Two overlapping claims: [0, 10ms] and [5ms, 15ms] — 20ms of busy
  // server-time over 15ms of wall time on 2 servers.
  ASSERT_TRUE(res.TryAcquire());
  sim.Schedule(Millis(5), [&] { ASSERT_TRUE(res.TryAcquire()); });
  sim.Schedule(Millis(10), [&] { res.Release(); });
  sim.Schedule(Millis(15), [&] { res.Release(); });
  sim.RunAll();
  EXPECT_EQ(res.BusyTime(), Millis(20));
  EXPECT_NEAR(res.Utilization(), 20.0 / 30.0, 1e-9);
}

TEST(ResourceTest, ReleaseStartsQueuedSubmitWork) {
  Simulator sim;
  runtime::SimRuntime rt{&sim};
  Resource res(&rt, "mixed", 1);
  ASSERT_TRUE(res.TryAcquire());
  bool done = false;
  res.Submit(Millis(1), [&] { done = true; });
  sim.RunAll();
  EXPECT_FALSE(done);  // queued behind the claim
  res.Release();
  sim.RunAll();
  EXPECT_TRUE(done);
}

TEST(ResourceTest, ResetStatsClampsInFlightClaims) {
  Simulator sim;
  runtime::SimRuntime rt{&sim};
  Resource res(&rt, "lanes", 1);
  ASSERT_TRUE(res.TryAcquire());
  sim.Schedule(Millis(10), [&] { res.ResetStats(); });
  sim.Schedule(Millis(15), [&] { res.Release(); });
  sim.RunAll();
  // Only the 5ms after the reset counts.
  EXPECT_EQ(res.BusyTime(), Millis(5));
}

TEST(ResourceTest, SubmitFromCompletionCallback) {
  Simulator sim;
  runtime::SimRuntime rt{&sim};
  Resource res(&rt, "cpu", 1);
  int completed = 0;
  res.Submit(Millis(1), [&] {
    ++completed;
    res.Submit(Millis(1), [&] { ++completed; });
  });
  sim.RunAll();
  EXPECT_EQ(completed, 2);
  EXPECT_EQ(sim.Now(), Millis(2));
}

}  // namespace
}  // namespace screp
