// Property-based sweeps: run the full replicated system across a grid of
// (consistency level, replica count, update fraction, seed) and verify the
// recorded histories satisfy exactly the guarantees each level promises.
//
// These are the paper's Theorems 1 and 2 as executable checks: the lazy
// coarse- and fine-grained schemes (and eager) must always produce
// strongly consistent histories; session consistency must always produce
// session-consistent histories; every configuration must satisfy
// generalized snapshot isolation (first-committer-wins + total commit
// order).

#include <gtest/gtest.h>

#include "consistency/checker.h"
#include "workload/experiment.h"
#include "workload/micro.h"

namespace screp {
namespace {

struct PropertyCase {
  ConsistencyLevel level;
  int replicas;
  double update_fraction;
  uint64_t seed;
};

std::string CaseName(const ::testing::TestParamInfo<PropertyCase>& info) {
  const PropertyCase& c = info.param;
  return std::string(ConsistencyLevelName(c.level)) + "_r" +
         std::to_string(c.replicas) + "_u" +
         std::to_string(static_cast<int>(c.update_fraction * 100)) + "_s" +
         std::to_string(c.seed);
}

class ConsistencyPropertyTest
    : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(ConsistencyPropertyTest, HistorySatisfiesPromisedGuarantees) {
  const PropertyCase& param = GetParam();

  MicroConfig micro;
  micro.rows_per_table = 40;  // small table => frequent conflicts
  micro.update_fraction = param.update_fraction;
  MicroWorkload workload(micro);

  History history;
  ExperimentConfig config;
  config.system.level = param.level;
  config.system.replica_count = param.replicas;
  config.client_count = param.replicas * 2;
  config.warmup = 0;
  config.duration = Seconds(2);
  config.seed = param.seed;
  config.history = &history;

  auto result = RunExperiment(workload, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GT(history.size(), 50u) << "history too small to be meaningful";

  const bool strong = ProvidesStrongConsistency(param.level);
  CheckResult check = CheckAll(history, strong);
  EXPECT_TRUE(check.ok) << ConsistencyLevelName(param.level) << ": "
                          << check.ToString();
  // Session consistency holds under every configuration (strong implies
  // session).
  CheckResult session = CheckSessionConsistency(history);
  EXPECT_TRUE(session.ok) << session.ToString();
  // GSI invariants hold under every configuration.
  EXPECT_TRUE(CheckFirstCommitterWins(history).ok);
  EXPECT_TRUE(CheckCommitTotalOrder(history).ok);
  // The strict per-table monotonic-snapshot property is an implementation
  // guarantee of the SC and LSC configurations only (the fine-grained and
  // eager schemes trade it for earlier starts while preserving strong
  // consistency in the Definition 1 sense).
  if (param.level == ConsistencyLevel::kSession ||
      param.level == ConsistencyLevel::kLazyCoarse) {
    CheckResult monotonic = CheckMonotonicSessionSnapshots(history);
    EXPECT_TRUE(monotonic.ok) << monotonic.ToString();
  }
}

std::vector<PropertyCase> MakeCases() {
  std::vector<PropertyCase> cases;
  for (ConsistencyLevel level : kAllConsistencyLevels) {
    for (int replicas : {1, 3, 6}) {
      for (double update_fraction : {0.1, 0.5, 1.0}) {
        cases.push_back(PropertyCase{level, replicas, update_fraction,
                                     41 + static_cast<uint64_t>(replicas)});
      }
    }
  }
  // A few extra seeds on the most interesting configurations.
  for (uint64_t seed : {101, 202, 303}) {
    cases.push_back(
        PropertyCase{ConsistencyLevel::kLazyFine, 4, 0.5, seed});
    cases.push_back(
        PropertyCase{ConsistencyLevel::kLazyCoarse, 4, 0.5, seed});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ConsistencyPropertyTest,
                         ::testing::ValuesIn(MakeCases()), CaseName);

}  // namespace
}  // namespace screp
