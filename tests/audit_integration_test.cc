// End-to-end audit tests: every consistency configuration passes the
#include "runtime/sim_runtime.h"
// online auditor on real runs (with and without faults), the event log
// replays into a history the offline checkers accept, the audit report
// JSON is well-formed, turning auditing on does not perturb the
// simulation, and the test-only version-check fault knob proves the
// auditor actually fires on a real violation.

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "consistency/checker.h"
#include "obs/json.h"
#include "replication/system.h"
#include "sim/simulator.h"
#include "workload/client.h"
#include "workload/experiment.h"
#include "workload/metrics.h"
#include "workload/micro.h"

namespace screp {
namespace {

MicroConfig SmallMicro(double update_fraction) {
  MicroConfig config;
  config.rows_per_table = 200;
  config.update_fraction = update_fraction;
  return config;
}

ExperimentConfig ShortRun(ConsistencyLevel level, int replicas,
                          int clients) {
  ExperimentConfig config;
  config.system.level = level;
  config.system.replica_count = replicas;
  config.client_count = clients;
  config.warmup = Seconds(0.5);
  config.duration = Seconds(3);
  config.seed = 7;
  return config;
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(AuditIntegrationTest, AllLevelsAuditCleanly) {
  const MicroWorkload workload(SmallMicro(0.25));
  for (ConsistencyLevel level : kAllConsistencyLevels) {
    ExperimentConfig config = ShortRun(level, 4, 8);
    config.audit = true;
    auto result = RunExperiment(workload, config);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_TRUE(result->audit.enabled) << ConsistencyLevelName(level);
    EXPECT_TRUE(result->audit.ok)
        << ConsistencyLevelName(level) << ": " << result->audit.ToString();
    EXPECT_GT(result->audit.events, 0);
    EXPECT_GT(result->audit.checks, 0);
    EXPECT_TRUE(result->audit.first_violation.empty());
  }
}

TEST(AuditIntegrationTest, BoundedStalenessAuditsCleanly) {
  const MicroWorkload workload(SmallMicro(0.5));
  ExperimentConfig config =
      ShortRun(ConsistencyLevel::kBoundedStaleness, 4, 8);
  config.system.staleness_bound = 10;
  config.audit = true;
  auto result = RunExperiment(workload, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->audit.enabled);
  EXPECT_TRUE(result->audit.ok) << result->audit.ToString();
}

TEST(AuditIntegrationTest, AuditSurvivesReplicaCrashAndRecovery) {
  const MicroWorkload workload(SmallMicro(0.5));
  ExperimentConfig config = ShortRun(ConsistencyLevel::kLazyCoarse, 4, 8);
  config.audit = true;
  config.faults.push_back(FaultEvent{1, Seconds(1), Seconds(2)});
  auto result = RunExperiment(workload, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->audit.ok) << result->audit.ToString();
}

TEST(AuditIntegrationTest, AuditOnDoesNotPerturbTheRun) {
  const MicroWorkload workload(SmallMicro(0.25));
  const ExperimentConfig plain_config =
      ShortRun(ConsistencyLevel::kLazyCoarse, 3, 6);
  auto plain = RunExperiment(workload, plain_config);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  EXPECT_FALSE(plain->audit.enabled);

  ExperimentConfig audited_config = plain_config;
  audited_config.audit = true;
  auto audited = RunExperiment(workload, audited_config);
  ASSERT_TRUE(audited.ok()) << audited.status().ToString();
  ASSERT_TRUE(audited->audit.enabled);
  EXPECT_TRUE(audited->audit.ok) << audited->audit.ToString();

  // Virtual-time results are identical; the report line (which excludes
  // the audit block precisely for this reason) is byte-identical.
  EXPECT_EQ(plain->committed, audited->committed);
  EXPECT_EQ(plain->cert_aborts, audited->cert_aborts);
  EXPECT_DOUBLE_EQ(plain->mean_response_ms, audited->mean_response_ms);
  EXPECT_EQ(plain->ToLine(), audited->ToLine());
}

TEST(AuditIntegrationTest, AuditReportJsonIsValid) {
  const MicroWorkload workload(SmallMicro(0.25));
  ExperimentConfig config = ShortRun(ConsistencyLevel::kLazyCoarse, 3, 6);
  config.audit_json_path = ::testing::TempDir() + "/audit_report.json";
  auto result = RunExperiment(workload, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  auto doc = obs::JsonValue::Parse(ReadFileOrDie(config.audit_json_path));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const obs::JsonValue* auditor = doc->Find("auditor");
  ASSERT_NE(auditor, nullptr);
  EXPECT_TRUE(auditor->Find("ok")->boolean());
  EXPECT_GT(auditor->Find("events")->number(), 0);
  EXPECT_GT(auditor->Find("checks")->number(), 0);
  EXPECT_EQ(auditor->Find("violations_total")->number(), 0);
  const obs::JsonValue* staleness = doc->Find("staleness");
  ASSERT_NE(staleness, nullptr);
  const obs::JsonValue* lag =
      staleness->Find(obs::kVersionLagHistogram);
  ASSERT_NE(lag, nullptr);
  EXPECT_GT(lag->Find("count")->number(), 0);
  ASSERT_NE(staleness->Find(obs::kSnapshotAgeHistogram), nullptr);

  // The machine-readable result JSON parses too and carries the verdict.
  auto result_doc = obs::JsonValue::Parse(result->ToJson());
  ASSERT_TRUE(result_doc.ok()) << result_doc.status().ToString();
  EXPECT_TRUE(result_doc->Find("audit")->Find("ok")->boolean());
  EXPECT_GE(result_doc->Find("response_ms")->Find("p99")->number(),
            result_doc->Find("response_ms")->Find("p50")->number());
}

// Stands up a system by hand so the event log is still alive after the
// run: its replayed history must agree with the directly recorded one,
// and the offline checkers must accept it — the online auditor and the
// offline suite see the same world.
TEST(AuditIntegrationTest, ReplayedHistoryAgreesWithOfflineCheckers) {
  const MicroWorkload workload(SmallMicro(0.25));
  Simulator sim;
  runtime::SimRuntime rt{&sim};
  SystemConfig system_config;
  system_config.replica_count = 3;
  system_config.level = ConsistencyLevel::kLazyCoarse;
  system_config.obs.audit = true;
  system_config.obs.event_log_capacity = size_t{1} << 20;
  auto system_or = ReplicatedSystem::Create(
      &rt, system_config,
      [&workload](Database* db) { return workload.BuildSchema(db); },
      [&workload](const Database& db, sql::TransactionRegistry* reg) {
        return workload.DefineTransactions(db, reg);
      });
  ASSERT_TRUE(system_or.ok()) << system_or.status().ToString();
  auto system = std::move(*system_or);

  History recorded;
  system->SetHistory(&recorded);
  MetricsCollector metrics(/*warmup=*/0);
  Rng seed_rng(7);
  std::vector<std::unique_ptr<ClientDriver>> clients;
  for (int c = 0; c < 6; ++c) {
    clients.push_back(std::make_unique<ClientDriver>(
        system.get(), &metrics,
        workload.CreateGenerator(system->registry(), c, seed_rng.Fork()), c,
        ClientConfig{}, seed_rng.Fork()));
  }
  system->SetClientCallback([&clients](const TxnResponse& r) {
    clients[static_cast<size_t>(r.client_id)]->OnResponse(r);
  });
  for (auto& client : clients) client->Start();
  const SimTime end = Seconds(2);
  sim.Schedule(end, [&clients, &system]() {
    for (auto& client : clients) client->Stop();
    system->StopGc();
    system->obs()->StopSampling();
  });
  sim.RunUntil(end);
  sim.RunAll();

  const obs::EventLog* log = system->obs()->event_log();
  ASSERT_EQ(log->dropped(), 0);
  const History replayed = log->ReplayHistory();
  ASSERT_GT(replayed.size(), 0u);
  ASSERT_EQ(replayed.size(), recorded.size());
  for (size_t i = 0; i < replayed.size(); ++i) {
    const TxnRecord& a = replayed.records()[i];
    const TxnRecord& b = recorded.records()[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.snapshot, b.snapshot);
    EXPECT_EQ(a.commit_version, b.commit_version);
    EXPECT_EQ(a.submit_time, b.submit_time);
    EXPECT_EQ(a.ack_time, b.ack_time);
    EXPECT_EQ(a.committed, b.committed);
    EXPECT_EQ(a.keys_written, b.keys_written);
  }

  const CheckResult offline = CheckAll(replayed, /*expect_strong=*/true);
  EXPECT_TRUE(offline.ok) << offline.ToString();
  const obs::Auditor* auditor = system->obs()->auditor();
  ASSERT_NE(auditor, nullptr);
  EXPECT_TRUE(auditor->ok()) << auditor->Summary();
}

// The reason the auditor is trustworthy: with the test-only knob that
// makes proxies skip the version admission check, stale BEGINs slip
// through and the auditor reports them — with the causal chain intact.
TEST(AuditIntegrationTest, VersionCheckFaultKnobTripsTheAuditor) {
  const MicroWorkload workload(SmallMicro(0.5));
  ExperimentConfig config = ShortRun(ConsistencyLevel::kLazyCoarse, 4, 8);
  config.audit = true;
  config.system.proxy.test_skip_version_check = true;
  auto result = RunExperiment(workload, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->audit.enabled);
  EXPECT_FALSE(result->audit.ok)
      << "the fault knob should have produced admission violations";
  EXPECT_GT(result->audit.violations, 0);
  EXPECT_NE(result->audit.first_violation.find("admission"),
            std::string::npos)
      << result->audit.first_violation;
  // The summary line surfaces the failure for humans too.
  EXPECT_NE(result->audit.ToString().find("FAILED"), std::string::npos);
}

}  // namespace
}  // namespace screp
