#include "sql/parser.h"

#include <gtest/gtest.h>

namespace screp::sql {
namespace {

StatementAst ParseOk(const std::string& text) {
  Result<StatementAst> result = Parse(text);
  EXPECT_TRUE(result.ok()) << text << " -> " << result.status().ToString();
  return std::move(result).value();
}

TEST(ParserTest, SimpleSelectStar) {
  StatementAst ast = ParseOk("SELECT * FROM item");
  EXPECT_EQ(ast.kind, StatementKind::kSelect);
  EXPECT_TRUE(ast.select_star);
  EXPECT_EQ(ast.table, "item");
  EXPECT_TRUE(ast.where.empty());
  EXPECT_EQ(ast.param_count, 0);
}

TEST(ParserTest, SelectColumnsWithWhere) {
  StatementAst ast =
      ParseOk("SELECT a, b FROM t WHERE id = ? AND b > 3");
  ASSERT_EQ(ast.select_items.size(), 2u);
  EXPECT_EQ(ast.select_items[0].column, "a");
  ASSERT_EQ(ast.where.conjuncts.size(), 2u);
  EXPECT_EQ(ast.where.conjuncts[0].op, CompareOp::kEq);
  EXPECT_EQ(ast.where.conjuncts[0].value.kind, Expr::Kind::kParam);
  EXPECT_EQ(ast.where.conjuncts[1].op, CompareOp::kGt);
  EXPECT_EQ(ast.param_count, 1);
}

TEST(ParserTest, SelectBetweenOrderLimit) {
  StatementAst ast = ParseOk(
      "SELECT i_id FROM item WHERE i_id BETWEEN ? AND ? ORDER BY i_cost "
      "DESC LIMIT 20");
  ASSERT_EQ(ast.where.conjuncts.size(), 1u);
  EXPECT_EQ(ast.where.conjuncts[0].op, CompareOp::kBetween);
  ASSERT_TRUE(ast.order_by.has_value());
  EXPECT_EQ(ast.order_by->column, "i_cost");
  EXPECT_TRUE(ast.order_by->descending);
  ASSERT_TRUE(ast.limit.has_value());
  EXPECT_EQ(ast.limit->literal.AsInt(), 20);
  EXPECT_EQ(ast.param_count, 2);
}

TEST(ParserTest, OrderByDefaultsAscending) {
  StatementAst ast = ParseOk("SELECT a FROM t ORDER BY a");
  ASSERT_TRUE(ast.order_by.has_value());
  EXPECT_FALSE(ast.order_by->descending);
}

TEST(ParserTest, Aggregates) {
  StatementAst ast =
      ParseOk("SELECT COUNT(*), SUM(x), AVG(x), MIN(x), MAX(x) FROM t");
  ASSERT_EQ(ast.select_items.size(), 5u);
  EXPECT_EQ(ast.select_items[0].agg, AggFunc::kCount);
  EXPECT_TRUE(ast.select_items[0].column.empty());
  EXPECT_EQ(ast.select_items[1].agg, AggFunc::kSum);
  EXPECT_EQ(ast.select_items[1].column, "x");
  EXPECT_EQ(ast.select_items[4].agg, AggFunc::kMax);
}

TEST(ParserTest, UpdateWithArithmeticAssignments) {
  StatementAst ast = ParseOk(
      "UPDATE item SET i_stock = i_stock - ?, i_sold = i_sold + 1 WHERE "
      "i_id = ?");
  EXPECT_EQ(ast.kind, StatementKind::kUpdate);
  ASSERT_EQ(ast.assignments.size(), 2u);
  EXPECT_EQ(ast.assignments[0].first, "i_stock");
  EXPECT_EQ(ast.assignments[0].second.kind, Expr::Kind::kBinary);
  EXPECT_EQ(ast.assignments[0].second.op, '-');
  EXPECT_EQ(ast.param_count, 2);
}

TEST(ParserTest, ParamIndexesLeftToRight) {
  StatementAst ast =
      ParseOk("UPDATE t SET a = ?, b = ? WHERE id = ?");
  EXPECT_EQ(ast.assignments[0].second.param_index, 0);
  EXPECT_EQ(ast.assignments[1].second.param_index, 1);
  EXPECT_EQ(ast.where.conjuncts[0].value.param_index, 2);
}

TEST(ParserTest, InsertValues) {
  StatementAst ast =
      ParseOk("INSERT INTO t VALUES (?, 'abc', 2.5, -3, NULL)");
  EXPECT_EQ(ast.kind, StatementKind::kInsert);
  ASSERT_EQ(ast.insert_values.size(), 5u);
  EXPECT_EQ(ast.insert_values[0].kind, Expr::Kind::kParam);
  EXPECT_EQ(ast.insert_values[1].literal.AsString(), "abc");
  EXPECT_EQ(ast.insert_values[3].literal.AsInt(), -3);
  EXPECT_TRUE(ast.insert_values[4].literal.is_null());
}

TEST(ParserTest, DeleteWithRange) {
  StatementAst ast =
      ParseOk("DELETE FROM cart_line WHERE id BETWEEN ? AND ?");
  EXPECT_EQ(ast.kind, StatementKind::kDelete);
  EXPECT_EQ(ast.param_count, 2);
}

TEST(ParserTest, ParenthesizedExpression) {
  StatementAst ast = ParseOk("UPDATE t SET a = (b + 1) * 2 WHERE id = 1");
  EXPECT_EQ(ast.assignments[0].second.kind, Expr::Kind::kBinary);
  EXPECT_EQ(ast.assignments[0].second.op, '*');
}

TEST(ParserTest, ToStringRoundTripsThroughParser) {
  const char* statements[] = {
      "SELECT a, b FROM t WHERE id = ? AND b >= 3",
      "UPDATE t SET a = a + ? WHERE id = ?",
      "INSERT INTO t VALUES (1, 'x')",
      "DELETE FROM t WHERE id BETWEEN 1 AND 9",
      "SELECT COUNT(*) FROM t",
  };
  for (const char* text : statements) {
    StatementAst first = ParseOk(text);
    StatementAst second = ParseOk(first.ToString());
    EXPECT_EQ(first.ToString(), second.ToString()) << text;
  }
}

struct BadCase {
  const char* name;
  const char* sql;
};

class ParserErrorTest : public ::testing::TestWithParam<BadCase> {};

TEST_P(ParserErrorTest, RejectsMalformedStatement) {
  EXPECT_FALSE(Parse(GetParam().sql).ok()) << GetParam().sql;
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, ParserErrorTest,
    ::testing::Values(
        BadCase{"empty", ""},
        BadCase{"unknown_verb", "UPSERT t"},
        BadCase{"missing_from", "SELECT a WHERE id = 1"},
        BadCase{"missing_table", "SELECT a FROM WHERE id = 1"},
        BadCase{"trailing_garbage", "SELECT a FROM t extra"},
        BadCase{"bad_comparison", "SELECT a FROM t WHERE id ! 1"},
        BadCase{"update_without_set", "UPDATE t a = 1"},
        BadCase{"insert_without_values", "INSERT INTO t (1, 2)"},
        BadCase{"unclosed_paren", "INSERT INTO t VALUES (1, 2"},
        BadCase{"limit_column", "SELECT a FROM t LIMIT b"},
        BadCase{"between_missing_and", "SELECT a FROM t WHERE x BETWEEN 1 2"},
        BadCase{"lone_operator", "SELECT a FROM t WHERE x = "},
        BadCase{"insert_column_ref", "INSERT INTO t VALUES (a)"}),
    [](const ::testing::TestParamInfo<BadCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace screp::sql
