// Serializable certification mode: GSI upgraded with read-write conflict
#include "runtime/sim_runtime.h"
// detection. The paper's history H3 (§II) is snapshot isolated and
// strongly consistent but NOT serializable — write skew; this mode aborts
// one of the two transactions.

#include <gtest/gtest.h>

#include "replication/system.h"
#include "storage/transaction.h"

namespace screp {
namespace {

// ---- Read-set tracking at the storage layer -----------------------------

class ReadSetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto id = db_.CreateTable(
        "t", Schema({{"id", ValueType::kInt64}, {"val", ValueType::kInt64}}));
    ASSERT_TRUE(id.ok());
    table_ = *id;
    for (int64_t k = 0; k < 10; ++k) {
      ASSERT_TRUE(db_.BulkLoad(table_, {Value(k), Value(k)}).ok());
    }
  }

  Database db_;
  TableId table_ = -1;
};

TEST_F(ReadSetTest, GetRecordsKeysIncludingMisses) {
  auto txn = db_.Begin();
  (void)txn->Get(table_, 3);
  (void)txn->Get(table_, 99);  // miss — still an observation
  ASSERT_EQ(txn->read_keys().size(), 2u);
  EXPECT_EQ(txn->read_keys()[0], (std::pair<TableId, int64_t>{table_, 3}));
  EXPECT_EQ(txn->read_keys()[1], (std::pair<TableId, int64_t>{table_, 99}));
}

TEST_F(ReadSetTest, RepeatedReadDeduplicated) {
  auto txn = db_.Begin();
  (void)txn->Get(table_, 3);
  (void)txn->Get(table_, 3);
  EXPECT_EQ(txn->read_keys().size(), 1u);
}

TEST_F(ReadSetTest, ScanRecordsRange) {
  auto txn = db_.Begin();
  txn->ScanRange(table_, 2, 7, [](int64_t, const Row&) { return true; });
  ASSERT_EQ(txn->read_ranges().size(), 1u);
  EXPECT_EQ(txn->read_ranges()[0].lo, 2);
  EXPECT_EQ(txn->read_ranges()[0].hi, 7);
}

TEST_F(ReadSetTest, WriteSetCarriesReadsOnlyWhenAsked) {
  auto txn = db_.Begin();
  (void)txn->Get(table_, 1);
  ASSERT_TRUE(txn->UpdateColumns(table_, 2, {{1, Value(9)}}).ok());
  WriteSet without = txn->BuildWriteSet(false);
  EXPECT_TRUE(without.read_keys.empty());
  WriteSet with = txn->BuildWriteSet(true);
  EXPECT_FALSE(with.read_keys.empty());
}

TEST_F(ReadSetTest, ReadWriteConflictDetection) {
  auto reader = db_.Begin();
  (void)reader->Get(table_, 5);
  WriteSet ws = reader->BuildWriteSet(true);

  WriteSet writer;
  writer.Add(table_, 5, WriteType::kUpdate, Row{Value(5), Value(0)});
  EXPECT_TRUE(ws.ReadsConflictWith(writer));

  WriteSet other;
  other.Add(table_, 6, WriteType::kUpdate, Row{Value(6), Value(0)});
  EXPECT_FALSE(ws.ReadsConflictWith(other));
}

TEST_F(ReadSetTest, RangeConflictCatchesPhantoms) {
  auto scanner = db_.Begin();
  scanner->ScanRange(table_, 2, 7, [](int64_t, const Row&) { return true; });
  WriteSet ws = scanner->BuildWriteSet(true);
  // An insert into the scanned range is a phantom.
  WriteSet phantom;
  phantom.Add(table_, 4, WriteType::kInsert, Row{Value(4), Value(0)});
  EXPECT_TRUE(ws.ReadsConflictWith(phantom));
  WriteSet outside;
  outside.Add(table_, 8, WriteType::kInsert, Row{Value(8), Value(0)});
  EXPECT_FALSE(ws.ReadsConflictWith(outside));
}

TEST_F(ReadSetTest, EncodeDecodePreservesReadSet) {
  auto txn = db_.Begin();
  (void)txn->Get(table_, 1);
  txn->ScanRange(table_, 3, 5, [](int64_t, const Row&) { return true; });
  ASSERT_TRUE(txn->UpdateColumns(table_, 2, {{1, Value(9)}}).ok());
  WriteSet ws = txn->BuildWriteSet(true);
  std::string buf;
  ws.EncodeTo(&buf);
  WriteSet decoded;
  size_t offset = 0;
  ASSERT_TRUE(WriteSet::DecodeFrom(buf, &offset, &decoded));
  EXPECT_EQ(decoded.read_keys, ws.read_keys);
  ASSERT_EQ(decoded.read_ranges.size(), 1u);
  EXPECT_EQ(decoded.read_ranges[0].lo, 3);
  EXPECT_EQ(decoded.read_ranges[0].hi, 5);
}

// ---- End-to-end write skew (the paper's H3) ------------------------------

Status BuildSkewSchema(Database* db) {
  SCREP_ASSIGN_OR_RETURN(
      TableId t, db->CreateTable("oncall", Schema({{"id", ValueType::kInt64},
                                                   {"on_duty",
                                                    ValueType::kInt64}})));
  // Two doctors, both on duty. The invariant "at least one on duty" is
  // maintained by transactions that first check the other doctor.
  SCREP_RETURN_NOT_OK(db->BulkLoad(t, {Value(0), Value(1)}));
  SCREP_RETURN_NOT_OK(db->BulkLoad(t, {Value(1), Value(1)}));
  return Status::OK();
}

Status DefineSkewTxns(const Database& db, sql::TransactionRegistry* reg) {
  // "If my colleague is on duty, I go off duty": reads the other row,
  // writes my own — the classic write-skew pair.
  for (const char* name : {"doc0_off", "doc1_off"}) {
    sql::PreparedTransaction txn;
    txn.name = name;
    const bool is_doc0 = std::string(name) == "doc0_off";
    SCREP_ASSIGN_OR_RETURN(
        auto check,
        sql::PreparedStatement::Prepare(
            db, std::string("SELECT on_duty FROM oncall WHERE id = ") +
                    (is_doc0 ? "1" : "0")));
    SCREP_ASSIGN_OR_RETURN(
        auto off, sql::PreparedStatement::Prepare(
                      db, std::string("UPDATE oncall SET on_duty = 0 "
                                      "WHERE id = ") +
                              (is_doc0 ? "0" : "1")));
    txn.statements.push_back(std::move(check));
    txn.statements.push_back(std::move(off));
    reg->Register(std::move(txn));
  }
  return Status::OK();
}

class WriteSkewTest : public ::testing::Test {
 protected:
  void Build(CertificationMode mode) {
    sim_ = std::make_unique<Simulator>();
    rt_ = std::make_unique<runtime::SimRuntime>(sim_.get());
    responses_.clear();
    SystemConfig config;
    config.replica_count = 2;
    config.level = ConsistencyLevel::kLazyCoarse;
    config.certifier.mode = mode;
    auto system = ReplicatedSystem::Create(rt_.get(), config,
                                           BuildSkewSchema, DefineSkewTxns);
    ASSERT_TRUE(system.ok()) << system.status().ToString();
    system_ = std::move(system).value();
    system_->SetClientCallback(
        [this](const TxnResponse& r) { responses_.push_back(r); });
  }

  /// Runs the two skew transactions concurrently on different replicas.
  void RunSkewPair() {
    for (const char* name : {"doc0_off", "doc1_off"}) {
      TxnRequest req;
      req.txn_id = system_->NextTxnId();
      req.type = *system_->registry().Find(name);
      req.session = req.txn_id;
      req.params = {{}, {}};  // no parameters in either statement
      system_->Submit(std::move(req));
    }
    sim_->RunAll();
  }

  /// Number of doctors on duty in replica 0's final state.
  int64_t OnDutyCount() {
    Database* db = system_->replica(0)->db();
    auto txn = db->Begin();
    const TableId t = *db->FindTable("oncall");
    int64_t on_duty = 0;
    txn->Scan(t, [&](int64_t, const Row& row) {
      on_duty += row[1].AsInt();
      return true;
    });
    return on_duty;
  }

  std::unique_ptr<Simulator> sim_;
  std::unique_ptr<runtime::SimRuntime> rt_;
  std::unique_ptr<ReplicatedSystem> system_;
  std::vector<TxnResponse> responses_;
};

TEST_F(WriteSkewTest, GsiAllowsWriteSkew) {
  Build(CertificationMode::kGsi);
  RunSkewPair();
  ASSERT_EQ(responses_.size(), 2u);
  // Disjoint writesets: GSI commits both — history H3, snapshot isolated
  // but not serializable; the invariant breaks.
  EXPECT_EQ(responses_[0].outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(responses_[1].outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(OnDutyCount(), 0);  // both off duty!
}

TEST_F(WriteSkewTest, SerializableModeAbortsOne) {
  Build(CertificationMode::kSerializable);
  RunSkewPair();
  ASSERT_EQ(responses_.size(), 2u);
  int committed = 0, aborted = 0;
  for (const auto& r : responses_) {
    if (r.outcome == TxnOutcome::kCommitted) ++committed;
    if (r.outcome == TxnOutcome::kCertificationAbort) ++aborted;
  }
  EXPECT_EQ(committed, 1);
  EXPECT_EQ(aborted, 1);
  EXPECT_EQ(OnDutyCount(), 1);  // invariant preserved
  EXPECT_EQ(system_->certifier()->rw_abort_count(), 1);
}

TEST_F(WriteSkewTest, SerializableModeSequentialPairBothCommit) {
  Build(CertificationMode::kSerializable);
  // Run them one after the other: the second sees the first's commit, so
  // there is no concurrency and no abort — but its read stops it from
  // going off duty only if the application checks; here both commit
  // because the second's snapshot includes the first's write (its read of
  // the now-off-duty colleague is a *current* read).
  TxnRequest first;
  first.txn_id = system_->NextTxnId();
  first.type = *system_->registry().Find("doc0_off");
  first.session = 1;
  first.params = {{}, {}};
  system_->Submit(std::move(first));
  sim_->RunAll();
  TxnRequest second;
  second.txn_id = system_->NextTxnId();
  second.type = *system_->registry().Find("doc1_off");
  second.session = 2;
  second.params = {{}, {}};
  system_->Submit(std::move(second));
  sim_->RunAll();
  ASSERT_EQ(responses_.size(), 2u);
  EXPECT_EQ(responses_[0].outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(responses_[1].outcome, TxnOutcome::kCommitted);
}

TEST_F(WriteSkewTest, SerializableCatchesPhantomInsert) {
  Build(CertificationMode::kSerializable);
  // Two registrations that first scan the full table (count) then insert
  // different new rows: disjoint writes, overlapping scan ranges.
  Database* db0 = system_->replica(0)->db();
  (void)db0;
  // Submit two concurrent "scan then insert" transactions via raw system
  // access is not possible without a registered type, so drive the
  // certifier directly: a scanning writeset vs a concurrent insert.
  WriteSet scanner;
  scanner.txn_id = 100;
  scanner.origin = 0;
  scanner.snapshot_version = system_->certifier()->CommitVersion();
  scanner.read_ranges.push_back(ReadRange{0, 0, 1000});
  scanner.Add(0, 500, WriteType::kInsert, Row{Value(500), Value(1)});
  WriteSet inserter;
  inserter.txn_id = 101;
  inserter.origin = 1;
  inserter.snapshot_version = system_->certifier()->CommitVersion();
  inserter.Add(0, 600, WriteType::kInsert, Row{Value(600), Value(1)});
  // inserter commits first, scanner must abort (phantom in its range).
  std::vector<CertDecision> decisions;
  system_->certifier()->SetDecisionCallback(
      [&](ReplicaId, const CertDecision& d) { decisions.push_back(d); });
  system_->certifier()->SetRefreshCallback([](ReplicaId, const RefreshBatch&) {});
  system_->certifier()->SubmitCertification(inserter);
  system_->certifier()->SubmitCertification(scanner);
  sim_->RunAll();
  ASSERT_EQ(decisions.size(), 2u);
  std::map<TxnId, bool> verdicts;
  for (const auto& d : decisions) verdicts[d.txn_id] = d.commit;
  EXPECT_TRUE(verdicts.at(101));
  EXPECT_FALSE(verdicts.at(100));
}

}  // namespace
}  // namespace screp
