// Bounded staleness (relaxed currency, §VI related work): transaction
// start waits only until the replica is within K versions of V_system.

#include <gtest/gtest.h>

#include "consistency/checker.h"
#include "core/sync_policy.h"
#include "workload/experiment.h"
#include "workload/micro.h"

namespace screp {
namespace {

TEST(BoundedStalenessPolicyTest, RequiredVersionLagsByBound) {
  SyncPolicy policy(ConsistencyLevel::kBoundedStaleness, 2,
                    /*staleness_bound=*/10);
  policy.OnCommitAcknowledged(1, 25, {});
  EXPECT_EQ(policy.RequiredStartVersion(2, {}), 15);
  // Below the bound nothing is required.
  SyncPolicy fresh(ConsistencyLevel::kBoundedStaleness, 2, 10);
  fresh.OnCommitAcknowledged(1, 7, {});
  EXPECT_EQ(fresh.RequiredStartVersion(2, {}), 0);
}

TEST(BoundedStalenessPolicyTest, BoundZeroDegeneratesToCoarse) {
  SyncPolicy bounded(ConsistencyLevel::kBoundedStaleness, 2, 0);
  SyncPolicy coarse(ConsistencyLevel::kLazyCoarse, 2);
  for (DbVersion v : {3, 9, 42}) {
    bounded.OnCommitAcknowledged(1, v, {});
    coarse.OnCommitAcknowledged(1, v, {});
    EXPECT_EQ(bounded.RequiredStartVersion(2, {}),
              coarse.RequiredStartVersion(2, {}));
  }
}

TEST(BoundedStalenessTest, LevelMetadata) {
  EXPECT_STREQ(ConsistencyLevelName(ConsistencyLevel::kBoundedStaleness),
               "BSC");
  EXPECT_FALSE(
      ProvidesStrongConsistency(ConsistencyLevel::kBoundedStaleness));
  auto parsed = ParseConsistencyLevel("bounded");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, ConsistencyLevel::kBoundedStaleness);
}

TEST(BoundedStalenessTest, DelayBetweenSessionAndCoarse) {
  // BSC's start delay sits between SC's (no global requirement) and
  // LSC's (full requirement); throughput accordingly.
  MicroConfig micro;
  micro.update_fraction = 0.5;
  MicroWorkload workload(micro);
  double delay[3];
  int i = 0;
  for (auto [level, bound] :
       {std::pair<ConsistencyLevel, DbVersion>{ConsistencyLevel::kLazyCoarse,
                                               0},
        {ConsistencyLevel::kBoundedStaleness, 20},
        {ConsistencyLevel::kSession, 0}}) {
    ExperimentConfig config;
    config.system.level = level;
    config.system.staleness_bound = bound;
    config.system.replica_count = 8;
    config.client_count = 8;
    config.warmup = Seconds(0.5);
    config.duration = Seconds(5);
    auto result = RunExperiment(workload, config);
    ASSERT_TRUE(result.ok());
    delay[i++] = result->version_ms;
  }
  EXPECT_LE(delay[1], delay[0] * 1.05);  // BSC <= LSC
  EXPECT_LE(delay[2], delay[1] * 1.05);  // SC  <= BSC
}

TEST(BoundedStalenessTest, StalenessActuallyBounded) {
  // Every transaction's snapshot is within K versions of the V_system the
  // load balancer knew when tagging — verify via history: snapshot >=
  // (largest commit acked before submit) - K.
  MicroConfig micro;
  micro.update_fraction = 1.0;
  MicroWorkload workload(micro);
  History history;
  ExperimentConfig config;
  config.system.level = ConsistencyLevel::kBoundedStaleness;
  config.system.staleness_bound = 20;
  config.system.replica_count = 6;
  config.client_count = 12;
  config.warmup = 0;
  config.duration = Seconds(3);
  config.history = &history;
  auto result = RunExperiment(workload, config);
  ASSERT_TRUE(result.ok());
  ASSERT_GT(history.size(), 200u);

  const auto updates = history.CommittedUpdates();
  int64_t checked = 0;
  for (const TxnRecord& record : history.records()) {
    if (!record.committed) continue;
    DbVersion acked_before = 0;
    for (const TxnRecord* u : updates) {
      if (u->ack_time <= record.submit_time) {
        acked_before = std::max(acked_before, u->commit_version);
      }
    }
    ++checked;
    EXPECT_GE(record.snapshot, acked_before - 20)
        << "txn " << record.id << " snapshot " << record.snapshot
        << " vs acked " << acked_before;
  }
  EXPECT_GT(checked, 200);
  // Session consistency still holds (BSC >= session? No — it is not;
  // but GSI invariants must).
  EXPECT_TRUE(CheckFirstCommitterWins(history).ok);
  EXPECT_TRUE(CheckCommitTotalOrder(history).ok);
}

}  // namespace
}  // namespace screp
