// Routing-policy and MVCC-garbage-collection behaviour at system level.
#include "runtime/sim_runtime.h"

#include <gtest/gtest.h>

#include "consistency/checker.h"
#include "workload/experiment.h"
#include "workload/micro.h"

namespace screp {
namespace {

TEST(RoutingPolicyTest, RoundRobinCycles) {
  Simulator sim;
  runtime::SimRuntime rt{&sim};
  LoadBalancer lb(&rt, ConsistencyLevel::kLazyCoarse, 1, 3,
                  RoutingPolicy::kRoundRobin);
  std::vector<ReplicaId> picks;
  lb.SetDispatchCallback(
      [&picks](ReplicaId replica, const TxnRequest&, DbVersion) {
        picks.push_back(replica);
      });
  lb.SetClientResponseCallback([](const TxnResponse&) {});
  for (TxnId t = 0; t < 6; ++t) {
    TxnRequest req;
    req.txn_id = t;
    lb.OnClientRequest(req);
  }
  EXPECT_EQ(picks, (std::vector<ReplicaId>{0, 1, 2, 0, 1, 2}));
}

TEST(RoutingPolicyTest, RoundRobinSkipsDownReplicas) {
  Simulator sim;
  runtime::SimRuntime rt{&sim};
  LoadBalancer lb(&rt, ConsistencyLevel::kLazyCoarse, 1, 3,
                  RoutingPolicy::kRoundRobin);
  std::vector<ReplicaId> picks;
  lb.SetDispatchCallback(
      [&picks](ReplicaId replica, const TxnRequest&, DbVersion) {
        picks.push_back(replica);
      });
  lb.SetClientResponseCallback([](const TxnResponse&) {});
  lb.MarkReplicaDown(1);
  for (TxnId t = 0; t < 4; ++t) {
    TxnRequest req;
    req.txn_id = t;
    lb.OnClientRequest(req);
  }
  for (ReplicaId r : picks) EXPECT_NE(r, 1);
}

TEST(RoutingPolicyTest, LeastActiveBeatsRoundRobinOnSkewedWork) {
  // A workload where some transactions are far heavier than others: the
  // load-aware policy should achieve at least the throughput of blind
  // round-robin (usually more).
  MicroConfig micro;
  micro.update_fraction = 0.5;
  MicroWorkload workload(micro);
  double tps[2];
  int i = 0;
  for (RoutingPolicy routing :
       {RoutingPolicy::kLeastActive, RoutingPolicy::kRoundRobin}) {
    ExperimentConfig config;
    config.system.level = ConsistencyLevel::kLazyCoarse;
    config.system.replica_count = 4;
    config.system.routing = routing;
    config.client_count = 16;
    config.warmup = Seconds(0.5);
    config.duration = Seconds(4);
    auto result = RunExperiment(workload, config);
    ASSERT_TRUE(result.ok());
    tps[i++] = result->throughput_tps;
  }
  EXPECT_GE(tps[0], tps[1] * 0.95);
}

TEST(GcTest, VersionCountBoundedWithGc) {
  // A tiny hot table hammered with updates accumulates versions without
  // GC; with a periodic sweep the chains stay bounded.
  MicroConfig micro;
  micro.table_count = 1;
  micro.rows_per_table = 10;  // hot rows: many versions each
  micro.update_fraction = 1.0;
  MicroWorkload workload(micro);

  size_t versions[2];
  int i = 0;
  for (SimTime gc_interval : {SimTime{0}, Millis(200)}) {
    Simulator sim;
    runtime::SimRuntime rt{&sim};
    SystemConfig config;
    config.replica_count = 2;
    config.level = ConsistencyLevel::kLazyCoarse;
    config.gc_interval = gc_interval;
    auto system_or = ReplicatedSystem::Create(
        &rt, config,
        [&workload](Database* db) { return workload.BuildSchema(db); },
        [&workload](const Database& db, sql::TransactionRegistry* reg) {
          return workload.DefineTransactions(db, reg);
        });
    ASSERT_TRUE(system_or.ok());
    auto system = std::move(system_or).value();
    system->SetClientCallback([](const TxnResponse&) {});
    Rng rng(3);
    for (int n = 0; n < 500; ++n) {
      TxnRequest req;
      req.txn_id = system->NextTxnId();
      req.type = *system->registry().Find("update_item0");
      req.session = 1;
      req.params = {{Value(1), Value(rng.NextInRange(0, 9))}};
      system->Submit(std::move(req));
      sim.RunUntil(sim.Now() + Millis(5));
    }
    sim.RunUntil(sim.Now() + Seconds(1));
    auto table = system->replica(0)->db()->FindTable("item0");
    ASSERT_TRUE(table.ok());
    versions[i++] =
        system->replica(0)->db()->table(*table)->VersionCount();
  }
  // Without GC every update leaves a version (500 + initial 10-ish);
  // with GC the table stays near its live row count.
  EXPECT_GT(versions[0], 400u);
  EXPECT_LT(versions[1], 60u);
}

TEST(GcTest, GcPreservesCorrectResults) {
  MicroConfig micro;
  micro.rows_per_table = 50;
  micro.update_fraction = 0.5;
  MicroWorkload workload(micro);
  ExperimentConfig config;
  config.system.level = ConsistencyLevel::kLazyCoarse;
  config.system.replica_count = 3;
  config.system.gc_interval = Millis(50);  // aggressive
  config.client_count = 6;
  config.warmup = Seconds(0.5);
  config.duration = Seconds(3);
  History history;
  config.history = &history;
  auto result = RunExperiment(workload, config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->exec_errors, 0);
  CheckResult check = CheckAll(history, /*expect_strong=*/true);
  EXPECT_TRUE(check.ok) << check.ToString();
}

}  // namespace
}  // namespace screp
