// Property test for the keyed conflict index: the indexed certification
#include "runtime/sim_runtime.h"
// path must make exactly the decisions the pre-index linear-scan oracle
// (CertifierConfig::linear_scan_oracle) makes — same verdicts, same
// commit versions, same conflict attribution (version, transaction and
// ww/rw/window reason) — over randomized workloads that exercise
// write-write conflicts, serializable read-key and read-range conflicts,
// and conservative window aborts.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "obs/observability.h"
#include "replication/certifier.h"
#include "replication/sharded_certifier.h"

namespace screp {
namespace {

/// One certifier plus everything needed to compare it against a twin.
struct Lane {
  Simulator sim;
  runtime::SimRuntime rt{&sim};
  std::unique_ptr<obs::Observability> obs;
  std::unique_ptr<Certifier> certifier;
  std::vector<CertDecision> decisions;

  Lane(CertifierConfig config, bool linear_scan) {
    config.linear_scan_oracle = linear_scan;
    obs::ObsConfig obs_config;
    obs_config.event_log = true;
    obs = std::make_unique<obs::Observability>(&rt, obs_config);
    certifier = std::make_unique<Certifier>(&rt, config, 3, /*eager=*/false);
    certifier->SetDecisionCallback(
        [this](ReplicaId, const CertDecision& decision) {
          decisions.push_back(decision);
        });
    certifier->SetRefreshCallback([](ReplicaId, const RefreshBatch&) {});
    certifier->SetObservability(obs.get());
  }
};

class CertifierOracleTest : public ::testing::Test {
 protected:
  void Build(CertifierConfig config) {
    indexed_ = std::make_unique<Lane>(config, /*linear_scan=*/false);
    oracle_ = std::make_unique<Lane>(config, /*linear_scan=*/true);
  }

  /// Submits the identical writeset to both certifiers and processes it.
  void Submit(const WriteSet& ws) {
    indexed_->certifier->SubmitCertification(ws);
    oracle_->certifier->SubmitCertification(ws);
    indexed_->sim.RunAll();
    oracle_->sim.RunAll();
    ASSERT_EQ(indexed_->certifier->CommitVersion(),
              oracle_->certifier->CommitVersion());
  }

  /// Builds one random writeset against the current commit version:
  /// small key space (to make conflicts common), random snapshot lag
  /// (sometimes beyond the window), and — when `with_reads` — random
  /// read keys and read ranges for the serializable mode.
  WriteSet RandomWs(Rng* rng, bool with_reads, int max_lag) {
    const DbVersion v = indexed_->certifier->CommitVersion();
    WriteSet ws;
    ws.txn_id = next_txn_++;
    ws.origin = static_cast<ReplicaId>(rng->NextInRange(0, 2));
    ws.snapshot_version =
        std::max<DbVersion>(0, v - rng->NextInRange(0, max_lag));
    const int ops = static_cast<int>(rng->NextInRange(1, 4));
    for (int i = 0; i < ops; ++i) {
      const TableId table = static_cast<TableId>(rng->NextInRange(0, 2));
      const int64_t key = rng->NextInRange(0, 199);
      ws.Add(table, key, WriteType::kUpdate, Row{Value(key), Value(0)});
    }
    if (with_reads) {
      const int reads = static_cast<int>(rng->NextInRange(0, 3));
      for (int i = 0; i < reads; ++i) {
        ws.read_keys.emplace_back(static_cast<TableId>(rng->NextInRange(0, 2)),
                                  rng->NextInRange(0, 199));
      }
      if (rng->NextBool(0.4)) {
        const int64_t lo = rng->NextInRange(0, 180);
        ws.read_ranges.push_back(
            ReadRange{static_cast<TableId>(rng->NextInRange(0, 2)), lo,
                      lo + rng->NextInRange(0, 30)});
      }
    }
    return ws;
  }

  /// Full equivalence: decision stream, abort attribution counters, and
  /// the per-verdict conflict attribution recorded in the event log.
  void ExpectIdenticalOutcomes() {
    ASSERT_EQ(indexed_->decisions.size(), oracle_->decisions.size());
    for (size_t i = 0; i < indexed_->decisions.size(); ++i) {
      const CertDecision& a = indexed_->decisions[i];
      const CertDecision& b = oracle_->decisions[i];
      EXPECT_EQ(a.txn_id, b.txn_id) << "decision " << i;
      EXPECT_EQ(a.commit, b.commit) << "txn " << a.txn_id;
      EXPECT_EQ(a.commit_version, b.commit_version) << "txn " << a.txn_id;
    }
    EXPECT_EQ(indexed_->certifier->certified_count(),
              oracle_->certifier->certified_count());
    EXPECT_EQ(indexed_->certifier->abort_count(),
              oracle_->certifier->abort_count());
    EXPECT_EQ(indexed_->certifier->rw_abort_count(),
              oracle_->certifier->rw_abort_count());
    EXPECT_EQ(indexed_->certifier->window_abort_count(),
              oracle_->certifier->window_abort_count());

    const std::vector<obs::Event>& ia = indexed_->obs->event_log()->Events();
    const std::vector<obs::Event>& ib = oracle_->obs->event_log()->Events();
    ASSERT_EQ(ia.size(), ib.size());
    int aborts_checked = 0;
    for (size_t i = 0; i < ia.size(); ++i) {
      ASSERT_EQ(ia[i].kind, obs::EventKind::kCertVerdict);
      EXPECT_EQ(ia[i].txn, ib[i].txn);
      EXPECT_EQ(ia[i].committed, ib[i].committed);
      EXPECT_EQ(ia[i].commit_version, ib[i].commit_version);
      // The heart of the property: aborts blame the identical committed
      // version, transaction and reason either way.
      EXPECT_EQ(ia[i].conflict_version, ib[i].conflict_version)
          << "txn " << ia[i].txn;
      EXPECT_EQ(ia[i].conflict_txn, ib[i].conflict_txn)
          << "txn " << ia[i].txn;
      EXPECT_EQ(ia[i].detail, ib[i].detail) << "txn " << ia[i].txn;
      if (!ia[i].committed) ++aborts_checked;
    }
    aborts_seen_ = aborts_checked;
  }

  std::unique_ptr<Lane> indexed_;
  std::unique_ptr<Lane> oracle_;
  TxnId next_txn_ = 1;
  int aborts_seen_ = 0;
};

TEST_F(CertifierOracleTest, GsiRandomizedWorkloadMatchesOracle) {
  CertifierConfig config;
  config.conflict_window = 64;  // small: window aborts actually occur
  Build(config);
  Rng rng(20260806);
  for (int i = 0; i < 1500; ++i) {
    Submit(RandomWs(&rng, /*with_reads=*/false, /*max_lag=*/80));
  }
  ExpectIdenticalOutcomes();
  // The workload must actually have exercised the abort paths.
  EXPECT_GT(aborts_seen_, 0);
  EXPECT_GT(indexed_->certifier->window_abort_count(), 0);
  EXPECT_GT(indexed_->certifier->abort_count(),
            indexed_->certifier->window_abort_count());
}

TEST_F(CertifierOracleTest, SerializableRandomizedWorkloadMatchesOracle) {
  CertifierConfig config;
  config.conflict_window = 64;
  config.mode = CertificationMode::kSerializable;
  Build(config);
  Rng rng(987654321);
  for (int i = 0; i < 1500; ++i) {
    Submit(RandomWs(&rng, /*with_reads=*/true, /*max_lag=*/80));
  }
  ExpectIdenticalOutcomes();
  EXPECT_GT(aborts_seen_, 0);
  // Read-write (including read-range) conflicts must have occurred.
  EXPECT_GT(indexed_->certifier->rw_abort_count(), 0);
}

TEST_F(CertifierOracleTest, LargeWindowNoWindowAborts) {
  CertifierConfig config;
  config.conflict_window = 4096;
  Build(config);
  Rng rng(7);
  for (int i = 0; i < 800; ++i) {
    Submit(RandomWs(&rng, /*with_reads=*/false, /*max_lag=*/40));
  }
  ExpectIdenticalOutcomes();
  EXPECT_EQ(indexed_->certifier->window_abort_count(), 0);
  // The index prunes with the window, so it is bounded by the window's
  // key footprint.
  EXPECT_GT(indexed_->certifier->conflict_index_size(), 0u);
}

// ---------------------------------------------------------------------
// Partitioned certification vs. the single-stream oracle: over a
// randomized multi-shard workload, the K-lane certifier must reach
// exactly the verdicts of one linear-scan certifier consuming the same
// history — same commits, same aborts, same conflict attribution (the
// blamed transaction and ww/rw reason), with the blamed version mapped
// into the conflicting transaction's shard-local coordinates.
//
// The lockstep works because snapshots are generated as *consistent
// prefixes* of the committed history: a snapshot "after the first p
// commits" is global version p for the single-stream twin and, for the
// sharded twin, each lane's commit count within that same prefix.  A
// committed writeset then conflicts in the global version space iff it
// conflicts in its shard's — both mean "committed after the prefix and
// overlapping".  (Window aborts are excluded by a wide window: a
// per-lane window of W sub-writesets and a global window of W writesets
// retain genuinely different histories, so equivalence only holds where
// neither window prunes.)
// ---------------------------------------------------------------------

class ShardedOracleTest : public ::testing::Test {
 protected:
  static constexpr int kTables = 6;
  static constexpr int kShards = 3;

  void Build(CertifierConfig config) {
    config.linear_scan_oracle = true;
    oracle_ = std::make_unique<Lane>(config, /*linear_scan=*/true);
    config.shard_lanes = kShards;
    obs::ObsConfig obs_config;
    obs_config.event_log = true;
    sharded_obs_ = std::make_unique<obs::Observability>(&sharded_rt_,
                                                        obs_config);
    sharded_ = std::make_unique<ShardedCertifier>(
        &sharded_rt_, config, ShardMap(kTables, kShards),
        /*replica_count=*/3);
    sharded_->SetDecisionCallback(
        [this](ReplicaId, const CertDecision& decision) {
          sharded_decisions_.push_back(decision);
        });
    sharded_->SetRefreshCallback(
        [](ShardId, ReplicaId, const RefreshBatch&) {});
    sharded_->SetObservability(sharded_obs_.get());
    lane_at_prefix_.push_back(std::vector<DbVersion>(kShards, 0));
  }

  /// A random multi-shard writeset whose snapshot is a consistent prefix
  /// of the committed history, expressed in both version spaces.
  WriteSet RandomWs(Rng* rng, bool with_reads, int max_lag) {
    const auto committed = static_cast<DbVersion>(lane_at_prefix_.size() - 1);
    const DbVersion prefix =
        std::max<DbVersion>(0, committed - rng->NextInRange(0, max_lag));
    WriteSet ws;
    ws.txn_id = next_txn_++;
    ws.origin = static_cast<ReplicaId>(rng->NextInRange(0, 2));
    ws.snapshot_version = prefix;
    for (int s = 0; s < kShards; ++s) {
      ws.shard_snapshots.emplace_back(
          s, lane_at_prefix_[static_cast<size_t>(prefix)][static_cast<size_t>(
                 s)]);
    }
    const int ops = static_cast<int>(rng->NextInRange(1, 4));
    for (int i = 0; i < ops; ++i) {
      const TableId table =
          static_cast<TableId>(rng->NextInRange(0, kTables - 1));
      const int64_t key = rng->NextInRange(0, 149);
      ws.Add(table, key, WriteType::kUpdate, Row{Value(key), Value(0)});
    }
    if (with_reads) {
      const int reads = static_cast<int>(rng->NextInRange(0, 3));
      for (int i = 0; i < reads; ++i) {
        ws.read_keys.emplace_back(
            static_cast<TableId>(rng->NextInRange(0, kTables - 1)),
            rng->NextInRange(0, 149));
      }
      if (rng->NextBool(0.4)) {
        const int64_t lo = rng->NextInRange(0, 130);
        ws.read_ranges.push_back(
            ReadRange{static_cast<TableId>(rng->NextInRange(0, kTables - 1)),
                      lo, lo + rng->NextInRange(0, 20)});
      }
    }
    return ws;
  }

  /// Lockstep: both certifiers decide the identical writeset; on commit,
  /// the sharded side must have advanced exactly its touched lanes and
  /// the history prefix table grows by one row.
  void Submit(WriteSet ws) {
    const TxnId txn = ws.txn_id;
    oracle_->certifier->SubmitCertification(ws);
    sharded_->SubmitCertification(ws);
    oracle_->sim.RunAll();
    sharded_sim_.RunAll();
    ASSERT_EQ(oracle_->decisions.size(), sharded_decisions_.size());
    const CertDecision& single = oracle_->decisions.back();
    const CertDecision& sharded = sharded_decisions_.back();
    ASSERT_EQ(single.txn_id, txn);
    ASSERT_EQ(sharded.txn_id, txn);
    ASSERT_EQ(single.commit, sharded.commit) << "txn " << txn;
    if (!single.commit) return;
    // Joint version assignment: exactly the touched lanes advanced by 1.
    std::vector<DbVersion> lanes = lane_at_prefix_.back();
    for (const auto& [s, v] : sharded.shard_versions) {
      EXPECT_EQ(v, lanes[static_cast<size_t>(s)] + 1) << "txn " << txn;
      lanes[static_cast<size_t>(s)] = v;
    }
    shard_versions_[txn] = sharded.shard_versions;
    lane_at_prefix_.push_back(std::move(lanes));
    ASSERT_EQ(static_cast<DbVersion>(lane_at_prefix_.size() - 1),
              oracle_->certifier->CommitVersion());
  }

  /// Abort attribution: both sides blame the same transaction for the
  /// same reason; the sharded side's blamed version is that
  /// transaction's commit version in a shard both writesets touch.
  void ExpectIdenticalAttribution() {
    EXPECT_EQ(oracle_->certifier->certified_count(),
              sharded_->certified_count());
    EXPECT_EQ(oracle_->certifier->abort_count(), sharded_->abort_count());
    EXPECT_EQ(oracle_->certifier->rw_abort_count(),
              sharded_->rw_abort_count());
    EXPECT_EQ(oracle_->certifier->window_abort_count(), 0);
    EXPECT_EQ(sharded_->window_abort_count(), 0);

    const std::vector<obs::Event>& oe = oracle_->obs->event_log()->Events();
    const std::vector<obs::Event>& se = sharded_obs_->event_log()->Events();
    ASSERT_EQ(oe.size(), se.size());
    int aborts_checked = 0;
    for (size_t i = 0; i < oe.size(); ++i) {
      ASSERT_EQ(oe[i].kind, obs::EventKind::kCertVerdict);
      ASSERT_EQ(se[i].kind, obs::EventKind::kCertVerdict);
      EXPECT_EQ(oe[i].txn, se[i].txn);
      EXPECT_EQ(oe[i].committed, se[i].committed);
      if (oe[i].committed) continue;
      ++aborts_checked;
      EXPECT_EQ(oe[i].conflict_txn, se[i].conflict_txn)
          << "txn " << oe[i].txn;
      EXPECT_EQ(oe[i].detail, se[i].detail) << "txn " << oe[i].txn;
      const auto it = shard_versions_.find(se[i].conflict_txn);
      ASSERT_NE(it, shard_versions_.end()) << "txn " << oe[i].txn;
      EXPECT_NE(ShardVersionOf(it->second, BlameShard(se[i]), kNoVersion),
                kNoVersion)
          << "txn " << oe[i].txn << " blamed version " << se[i].conflict_version
          << " not issued to txn " << se[i].conflict_txn;
      EXPECT_EQ(se[i].conflict_version,
                ShardVersionOf(it->second, BlameShard(se[i]), kNoVersion))
          << "txn " << oe[i].txn;
    }
    aborts_seen_ = aborts_checked;
  }

  /// The shard whose lane produced the blame: the conflicting
  /// transaction's shard whose version equals the reported one.
  ShardId BlameShard(const obs::Event& e) const {
    const auto it = shard_versions_.find(e.conflict_txn);
    if (it == shard_versions_.end()) return -1;
    for (const auto& [s, v] : it->second) {
      if (v == e.conflict_version) return s;
    }
    return -1;
  }

  Simulator sharded_sim_;
  runtime::SimRuntime sharded_rt_{&sharded_sim_};
  std::unique_ptr<obs::Observability> sharded_obs_;
  std::unique_ptr<ShardedCertifier> sharded_;
  std::vector<CertDecision> sharded_decisions_;
  std::unique_ptr<Lane> oracle_;
  /// lane_at_prefix_[p][s]: shard s's commit count within the first p
  /// globally committed transactions.
  std::vector<std::vector<DbVersion>> lane_at_prefix_;
  std::unordered_map<TxnId, std::vector<std::pair<int32_t, DbVersion>>>
      shard_versions_;
  TxnId next_txn_ = 1;
  int aborts_seen_ = 0;
};

TEST_F(ShardedOracleTest, GsiMultiShardWorkloadMatchesSingleStreamOracle) {
  Build(CertifierConfig{});
  Rng rng(20260807);
  for (int i = 0; i < 1500; ++i) {
    Submit(RandomWs(&rng, /*with_reads=*/false, /*max_lag=*/30));
    if (HasFatalFailure()) return;
  }
  ExpectIdenticalAttribution();
  EXPECT_GT(aborts_seen_, 0);
  // The workload genuinely crossed shards, through the sequencer.
  EXPECT_GT(sharded_->sequenced_count(), 0);
  EXPECT_GT(sharded_->certified_count(), 0);
}

TEST_F(ShardedOracleTest,
       SerializableMultiShardWorkloadMatchesSingleStreamOracle) {
  CertifierConfig config;
  config.mode = CertificationMode::kSerializable;
  Build(config);
  Rng rng(424242);
  for (int i = 0; i < 1500; ++i) {
    Submit(RandomWs(&rng, /*with_reads=*/true, /*max_lag=*/30));
    if (HasFatalFailure()) return;
  }
  ExpectIdenticalAttribution();
  EXPECT_GT(aborts_seen_, 0);
  EXPECT_GT(sharded_->rw_abort_count(), 0);
  EXPECT_GT(sharded_->sequenced_count(), 0);
}

}  // namespace
}  // namespace screp
