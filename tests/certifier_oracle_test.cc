// Property test for the keyed conflict index: the indexed certification
#include "runtime/sim_runtime.h"
// path must make exactly the decisions the pre-index linear-scan oracle
// (CertifierConfig::linear_scan_oracle) makes — same verdicts, same
// commit versions, same conflict attribution (version, transaction and
// ww/rw/window reason) — over randomized workloads that exercise
// write-write conflicts, serializable read-key and read-range conflicts,
// and conservative window aborts.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "obs/observability.h"
#include "replication/certifier.h"

namespace screp {
namespace {

/// One certifier plus everything needed to compare it against a twin.
struct Lane {
  Simulator sim;
  runtime::SimRuntime rt{&sim};
  std::unique_ptr<obs::Observability> obs;
  std::unique_ptr<Certifier> certifier;
  std::vector<CertDecision> decisions;

  Lane(CertifierConfig config, bool linear_scan) {
    config.linear_scan_oracle = linear_scan;
    obs::ObsConfig obs_config;
    obs_config.event_log = true;
    obs = std::make_unique<obs::Observability>(&rt, obs_config);
    certifier = std::make_unique<Certifier>(&rt, config, 3, /*eager=*/false);
    certifier->SetDecisionCallback(
        [this](ReplicaId, const CertDecision& decision) {
          decisions.push_back(decision);
        });
    certifier->SetRefreshCallback([](ReplicaId, const RefreshBatch&) {});
    certifier->SetObservability(obs.get());
  }
};

class CertifierOracleTest : public ::testing::Test {
 protected:
  void Build(CertifierConfig config) {
    indexed_ = std::make_unique<Lane>(config, /*linear_scan=*/false);
    oracle_ = std::make_unique<Lane>(config, /*linear_scan=*/true);
  }

  /// Submits the identical writeset to both certifiers and processes it.
  void Submit(const WriteSet& ws) {
    indexed_->certifier->SubmitCertification(ws);
    oracle_->certifier->SubmitCertification(ws);
    indexed_->sim.RunAll();
    oracle_->sim.RunAll();
    ASSERT_EQ(indexed_->certifier->CommitVersion(),
              oracle_->certifier->CommitVersion());
  }

  /// Builds one random writeset against the current commit version:
  /// small key space (to make conflicts common), random snapshot lag
  /// (sometimes beyond the window), and — when `with_reads` — random
  /// read keys and read ranges for the serializable mode.
  WriteSet RandomWs(Rng* rng, bool with_reads, int max_lag) {
    const DbVersion v = indexed_->certifier->CommitVersion();
    WriteSet ws;
    ws.txn_id = next_txn_++;
    ws.origin = static_cast<ReplicaId>(rng->NextInRange(0, 2));
    ws.snapshot_version =
        std::max<DbVersion>(0, v - rng->NextInRange(0, max_lag));
    const int ops = static_cast<int>(rng->NextInRange(1, 4));
    for (int i = 0; i < ops; ++i) {
      const TableId table = static_cast<TableId>(rng->NextInRange(0, 2));
      const int64_t key = rng->NextInRange(0, 199);
      ws.Add(table, key, WriteType::kUpdate, Row{Value(key), Value(0)});
    }
    if (with_reads) {
      const int reads = static_cast<int>(rng->NextInRange(0, 3));
      for (int i = 0; i < reads; ++i) {
        ws.read_keys.emplace_back(static_cast<TableId>(rng->NextInRange(0, 2)),
                                  rng->NextInRange(0, 199));
      }
      if (rng->NextBool(0.4)) {
        const int64_t lo = rng->NextInRange(0, 180);
        ws.read_ranges.push_back(
            ReadRange{static_cast<TableId>(rng->NextInRange(0, 2)), lo,
                      lo + rng->NextInRange(0, 30)});
      }
    }
    return ws;
  }

  /// Full equivalence: decision stream, abort attribution counters, and
  /// the per-verdict conflict attribution recorded in the event log.
  void ExpectIdenticalOutcomes() {
    ASSERT_EQ(indexed_->decisions.size(), oracle_->decisions.size());
    for (size_t i = 0; i < indexed_->decisions.size(); ++i) {
      const CertDecision& a = indexed_->decisions[i];
      const CertDecision& b = oracle_->decisions[i];
      EXPECT_EQ(a.txn_id, b.txn_id) << "decision " << i;
      EXPECT_EQ(a.commit, b.commit) << "txn " << a.txn_id;
      EXPECT_EQ(a.commit_version, b.commit_version) << "txn " << a.txn_id;
    }
    EXPECT_EQ(indexed_->certifier->certified_count(),
              oracle_->certifier->certified_count());
    EXPECT_EQ(indexed_->certifier->abort_count(),
              oracle_->certifier->abort_count());
    EXPECT_EQ(indexed_->certifier->rw_abort_count(),
              oracle_->certifier->rw_abort_count());
    EXPECT_EQ(indexed_->certifier->window_abort_count(),
              oracle_->certifier->window_abort_count());

    const std::vector<obs::Event>& ia = indexed_->obs->event_log()->Events();
    const std::vector<obs::Event>& ib = oracle_->obs->event_log()->Events();
    ASSERT_EQ(ia.size(), ib.size());
    int aborts_checked = 0;
    for (size_t i = 0; i < ia.size(); ++i) {
      ASSERT_EQ(ia[i].kind, obs::EventKind::kCertVerdict);
      EXPECT_EQ(ia[i].txn, ib[i].txn);
      EXPECT_EQ(ia[i].committed, ib[i].committed);
      EXPECT_EQ(ia[i].commit_version, ib[i].commit_version);
      // The heart of the property: aborts blame the identical committed
      // version, transaction and reason either way.
      EXPECT_EQ(ia[i].conflict_version, ib[i].conflict_version)
          << "txn " << ia[i].txn;
      EXPECT_EQ(ia[i].conflict_txn, ib[i].conflict_txn)
          << "txn " << ia[i].txn;
      EXPECT_EQ(ia[i].detail, ib[i].detail) << "txn " << ia[i].txn;
      if (!ia[i].committed) ++aborts_checked;
    }
    aborts_seen_ = aborts_checked;
  }

  std::unique_ptr<Lane> indexed_;
  std::unique_ptr<Lane> oracle_;
  TxnId next_txn_ = 1;
  int aborts_seen_ = 0;
};

TEST_F(CertifierOracleTest, GsiRandomizedWorkloadMatchesOracle) {
  CertifierConfig config;
  config.conflict_window = 64;  // small: window aborts actually occur
  Build(config);
  Rng rng(20260806);
  for (int i = 0; i < 1500; ++i) {
    Submit(RandomWs(&rng, /*with_reads=*/false, /*max_lag=*/80));
  }
  ExpectIdenticalOutcomes();
  // The workload must actually have exercised the abort paths.
  EXPECT_GT(aborts_seen_, 0);
  EXPECT_GT(indexed_->certifier->window_abort_count(), 0);
  EXPECT_GT(indexed_->certifier->abort_count(),
            indexed_->certifier->window_abort_count());
}

TEST_F(CertifierOracleTest, SerializableRandomizedWorkloadMatchesOracle) {
  CertifierConfig config;
  config.conflict_window = 64;
  config.mode = CertificationMode::kSerializable;
  Build(config);
  Rng rng(987654321);
  for (int i = 0; i < 1500; ++i) {
    Submit(RandomWs(&rng, /*with_reads=*/true, /*max_lag=*/80));
  }
  ExpectIdenticalOutcomes();
  EXPECT_GT(aborts_seen_, 0);
  // Read-write (including read-range) conflicts must have occurred.
  EXPECT_GT(indexed_->certifier->rw_abort_count(), 0);
}

TEST_F(CertifierOracleTest, LargeWindowNoWindowAborts) {
  CertifierConfig config;
  config.conflict_window = 4096;
  Build(config);
  Rng rng(7);
  for (int i = 0; i < 800; ++i) {
    Submit(RandomWs(&rng, /*with_reads=*/false, /*max_lag=*/40));
  }
  ExpectIdenticalOutcomes();
  EXPECT_EQ(indexed_->certifier->window_abort_count(), 0);
  // The index prunes with the window, so it is bounded by the window's
  // key footprint.
  EXPECT_GT(indexed_->certifier->conflict_index_size(), 0u);
}

}  // namespace
}  // namespace screp
