// Unit tests for the observability layer: metrics registry (instruments,
#include "runtime/sim_runtime.h"
// snapshot, JSON round-trip), the span tracer (ring eviction, Chrome
// trace-event export), the periodic gauge sampler, and the JSON helpers.

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/metrics_registry.h"
#include "obs/observability.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "sim/simulator.h"

namespace screp::obs {
namespace {

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(JsonParserTest, ParsesScalarsArraysAndObjects) {
  Result<JsonValue> doc = JsonValue::Parse(
      R"({"n":-12.5,"s":"hi\"x","b":true,"z":null,"a":[1,2,3],"o":{"k":4}})");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  ASSERT_TRUE(doc->is_object());
  EXPECT_DOUBLE_EQ(doc->Find("n")->number(), -12.5);
  EXPECT_EQ(doc->Find("s")->str(), "hi\"x");
  EXPECT_TRUE(doc->Find("b")->boolean());
  EXPECT_EQ(doc->Find("z")->kind(), JsonValue::Kind::kNull);
  ASSERT_TRUE(doc->Find("a")->is_array());
  EXPECT_EQ(doc->Find("a")->array().size(), 3u);
  EXPECT_DOUBLE_EQ(doc->Find("a")->array()[1].number(), 2.0);
  EXPECT_DOUBLE_EQ(doc->Find("o")->Find("k")->number(), 4.0);
  EXPECT_EQ(doc->Find("missing"), nullptr);
}

TEST(JsonParserTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("[1,]").ok());
  EXPECT_FALSE(JsonValue::Parse("{} trailing").ok());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").ok());
}

TEST(MetricsRegistryTest, InstrumentsAreCreatedOnceAndStable) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("certifier.certified");
  EXPECT_EQ(c->value(), 0);
  c->Increment();
  c->Increment(5);
  // Same name => same instrument (a promoted standby continues the series).
  EXPECT_EQ(registry.GetCounter("certifier.certified"), c);
  EXPECT_EQ(c->value(), 6);

  Gauge* g = registry.GetGauge("certifier.last_batch_size");
  g->Set(3.5);
  EXPECT_EQ(registry.GetGauge("certifier.last_batch_size"), g);
  EXPECT_DOUBLE_EQ(registry.GaugeValue("certifier.last_batch_size"), 3.5);

  Histogram* h = registry.GetHistogram("certifier.batch_size");
  h->Add(2);
  h->Add(4);
  EXPECT_EQ(registry.GetHistogram("certifier.batch_size"), h);
  EXPECT_EQ(h->count(), 2);
}

TEST(MetricsRegistryTest, CallbackGaugesJoinTheSortedPollSet) {
  MetricsRegistry registry;
  double lag = 7;
  registry.RegisterCallbackGauge("replica0.version_lag",
                                 [&lag]() { return lag; });
  registry.GetGauge("certifier.last_batch_size")->Set(1);
  const std::vector<std::string> names = registry.GaugeNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "certifier.last_batch_size");  // sorted
  EXPECT_EQ(names[1], "replica0.version_lag");
  EXPECT_DOUBLE_EQ(registry.GaugeValue("replica0.version_lag"), 7);
  lag = 9;  // evaluated on demand, not cached
  EXPECT_DOUBLE_EQ(registry.GaugeValue("replica0.version_lag"), 9);
  EXPECT_DOUBLE_EQ(registry.GaugeValue("no.such.gauge"), 0);
}

TEST(MetricsRegistryTest, SnapshotJsonRoundTrips) {
  MetricsRegistry registry;
  registry.GetCounter("lb.dispatched")->Increment(42);
  registry.GetCounter("certifier.aborts.ww")->Increment(3);
  registry.GetGauge("certifier.last_batch_size")->Set(2.25);
  registry.RegisterCallbackGauge("replica1.version_lag",
                                 []() { return 11.0; });
  Histogram* h = registry.GetHistogram("certifier.batch_size");
  for (int i = 1; i <= 10; ++i) h->Add(i);

  const std::string json = registry.ToJson();
  Result<MetricsRegistry::Snapshot> parsed =
      MetricsRegistry::SnapshotFromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  const MetricsRegistry::Snapshot direct = registry.TakeSnapshot();
  EXPECT_EQ(parsed->counters, direct.counters);
  EXPECT_EQ(parsed->counters.at("lb.dispatched"), 42);
  EXPECT_DOUBLE_EQ(parsed->gauges.at("certifier.last_batch_size"), 2.25);
  EXPECT_DOUBLE_EQ(parsed->gauges.at("replica1.version_lag"), 11.0);
  const auto& hist = parsed->histograms.at("certifier.batch_size");
  EXPECT_EQ(hist.count, 10);
  EXPECT_NEAR(hist.mean, 5.5, 1e-9);
  EXPECT_NEAR(hist.max, direct.histograms.at("certifier.batch_size").max,
              1e-9);
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer tracer(8);
  EXPECT_FALSE(tracer.enabled());
  tracer.Add({.name = "x"});
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0);
}

TEST(TracerTest, RingEvictsOldestSpansAndCountsDrops) {
  Tracer tracer(4);
  tracer.set_enabled(true);
  for (int64_t i = 1; i <= 6; ++i) {
    tracer.Add({.name = "span", .start = i * 10});
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.capacity(), 4u);
  EXPECT_EQ(tracer.dropped(), 2);
  const std::vector<TraceSpan> spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest first, the two oldest evicted.
  EXPECT_EQ(spans[0].start, 30);
  EXPECT_EQ(spans[3].start, 60);

  tracer.Clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0);
}

TEST(TracerTest, ChromeJsonIsValidAndCarriesSpanFields) {
  Tracer tracer(8);
  tracer.set_enabled(true);
  tracer.SetProcessName(kCertifierPid, "certifier");
  tracer.Add({.name = "certifier.certify",
              .category = "certifier",
              .pid = kCertifierPid,
              .tid = 77,
              .start = 1000,
              .duration = 120,
              .txn = 77});
  tracer.Add({.name = "certifier.log_force",
              .category = "certifier",
              .pid = kCertifierPid,
              .tid = 0,
              .start = 1200,
              .duration = 800,
              .txn = 0,
              .arg_name = "batch",
              .arg_value = 3});

  Result<JsonValue> doc = JsonValue::Parse(tracer.ToChromeJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Find("displayTimeUnit")->str(), "ms");
  const JsonValue* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->array().size(), 3u);  // 1 metadata + 2 spans

  const JsonValue& meta = events->array()[0];
  EXPECT_EQ(meta.Find("ph")->str(), "M");
  EXPECT_EQ(meta.Find("name")->str(), "process_name");
  EXPECT_EQ(meta.Find("args")->Find("name")->str(), "certifier");

  const JsonValue& certify = events->array()[1];
  EXPECT_EQ(certify.Find("ph")->str(), "X");
  EXPECT_EQ(certify.Find("name")->str(), "certifier.certify");
  EXPECT_DOUBLE_EQ(certify.Find("ts")->number(), 1000);
  EXPECT_DOUBLE_EQ(certify.Find("dur")->number(), 120);
  EXPECT_DOUBLE_EQ(certify.Find("pid")->number(), kCertifierPid);
  EXPECT_DOUBLE_EQ(certify.Find("tid")->number(), 77);

  const JsonValue& force = events->array()[2];
  EXPECT_DOUBLE_EQ(force.Find("args")->Find("batch")->number(), 3);
}

TEST(SamplerTest, SamplesEveryGaugeOnThePeriodGrid) {
  Simulator sim;
  runtime::SimRuntime rt{&sim};
  MetricsRegistry registry;
  double depth = 0;
  registry.RegisterCallbackGauge("certifier.queue_depth",
                                 [&depth]() { return depth; });
  Sampler sampler(&rt, &registry);
  sampler.Start(Millis(10));
  // The gauge value changes between ticks; each tick must see the value
  // current at its own virtual time.
  sim.Schedule(Millis(5), [&depth]() { depth = 1; });
  sim.Schedule(Millis(15), [&depth]() { depth = 2; });
  sim.Schedule(Millis(35), [&sampler]() { sampler.Stop(); });
  sim.RunAll();

  ASSERT_EQ(sampler.timestamps().size(), 3u);  // 10ms, 20ms, 30ms
  EXPECT_EQ(sampler.timestamps()[0], Millis(10));
  EXPECT_EQ(sampler.timestamps()[2], Millis(30));
  const auto& series = sampler.series().at("certifier.queue_depth");
  ASSERT_EQ(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series[0], 1);
  EXPECT_DOUBLE_EQ(series[1], 2);
  EXPECT_DOUBLE_EQ(series[2], 2);
}

TEST(SamplerTest, LateRegisteredGaugesAreZeroPaddedIntoAlignment) {
  Simulator sim;
  runtime::SimRuntime rt{&sim};
  MetricsRegistry registry;
  registry.RegisterCallbackGauge("early", []() { return 1.0; });
  Sampler sampler(&rt, &registry);
  sampler.Start(Millis(10));
  sim.Schedule(Millis(15), [&registry]() {
    registry.RegisterCallbackGauge("late", []() { return 9.0; });
  });
  sim.Schedule(Millis(25), [&sampler]() { sampler.Stop(); });
  sim.RunAll();

  ASSERT_EQ(sampler.timestamps().size(), 2u);
  const auto& late = sampler.series().at("late");
  ASSERT_EQ(late.size(), 2u);  // aligned despite missing the first tick
  EXPECT_DOUBLE_EQ(late[0], 0);
  EXPECT_DOUBLE_EQ(late[1], 9.0);
  const auto& early = sampler.series().at("early");
  ASSERT_EQ(early.size(), 2u);
  EXPECT_DOUBLE_EQ(early[0], 1.0);
}

TEST(SamplerTest, JsonExportNullsPaddingAndCarriesCounterDeltas) {
  Simulator sim;
  runtime::SimRuntime rt{&sim};
  MetricsRegistry registry;
  Counter* certified = registry.GetCounter("certified");
  certified->Increment(3);
  Sampler sampler(&rt, &registry);
  sampler.Start(Millis(10));
  sim.Schedule(Millis(12), [certified]() { certified->Increment(4); });
  sim.Schedule(Millis(15), [&registry]() {
    registry.RegisterCallbackGauge("late", []() { return 9.0; });
  });
  sim.Schedule(Millis(25), [&sampler]() { sampler.Stop(); });
  sim.RunAll();

  Result<JsonValue> doc = JsonValue::Parse(sampler.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  // The in-memory series zero-pads the slot before "late" existed; the
  // JSON export must emit null there so a dashboard can tell "not yet
  // registered" apart from a real zero.
  const auto& late = doc->Find("series")->Find("late")->array();
  ASSERT_EQ(late.size(), 2u);
  EXPECT_EQ(late[0].kind(), JsonValue::Kind::kNull);
  EXPECT_DOUBLE_EQ(late[1].number(), 9.0);
  EXPECT_EQ(sampler.SeriesStart("late"), 1u);
  // Counters export per-period deltas: 3 before the first poll, then 4.
  const auto& deltas =
      doc->Find("counter_deltas")->Find("certified")->array();
  ASSERT_EQ(deltas.size(), 2u);
  EXPECT_DOUBLE_EQ(deltas[0].number(), 3);
  EXPECT_DOUBLE_EQ(deltas[1].number(), 4);
}

TEST(ObservabilityTest, MetricsJsonBundlesRegistryAndSampler) {
  Simulator sim;
  runtime::SimRuntime rt{&sim};
  ObsConfig config;
  config.sample_period = Millis(10);
  Observability obs(&rt, config);
  obs.registry()->GetCounter("certifier.certified")->Increment(5);
  obs.registry()->RegisterCallbackGauge("replica0.version_lag",
                                        []() { return 4.0; });
  obs.StartSampling();
  sim.Schedule(Millis(25), [&obs]() { obs.StopSampling(); });
  sim.RunAll();

  Result<JsonValue> doc = JsonValue::Parse(obs.MetricsJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* registry = doc->Find("registry");
  ASSERT_NE(registry, nullptr);
  EXPECT_DOUBLE_EQ(
      registry->Find("counters")->Find("certifier.certified")->number(), 5);
  const JsonValue* sampler = doc->Find("sampler");
  ASSERT_NE(sampler, nullptr);
  EXPECT_EQ(sampler->Find("timestamps")->array().size(), 2u);
  const JsonValue* lag =
      sampler->Find("series")->Find("replica0.version_lag");
  ASSERT_NE(lag, nullptr);
  EXPECT_DOUBLE_EQ(lag->array()[0].number(), 4.0);
}

TEST(ObservabilityTest, TracingDisabledByDefaultConfig) {
  Simulator sim;
  runtime::SimRuntime rt{&sim};
  Observability obs(&rt, ObsConfig{});
  EXPECT_FALSE(obs.tracer()->enabled());
  obs.tracer()->Add({.name = "ignored"});
  EXPECT_EQ(obs.tracer()->size(), 0u);
}

}  // namespace
}  // namespace screp::obs
