#include "storage/schema.h"

#include <gtest/gtest.h>

namespace screp {
namespace {

Schema TestSchema() {
  return Schema({{"id", ValueType::kInt64},
                 {"name", ValueType::kString},
                 {"score", ValueType::kDouble}});
}

TEST(SchemaTest, ColumnAccessors) {
  Schema s = TestSchema();
  EXPECT_EQ(s.num_columns(), 3u);
  EXPECT_EQ(s.column(0).name, "id");
  EXPECT_EQ(s.column(2).type, ValueType::kDouble);
}

TEST(SchemaTest, ColumnIndexLookup) {
  Schema s = TestSchema();
  EXPECT_EQ(s.ColumnIndex("id"), 0);
  EXPECT_EQ(s.ColumnIndex("score"), 2);
  EXPECT_EQ(s.ColumnIndex("missing"), -1);
}

TEST(SchemaTest, ValidateAcceptsMatchingRow) {
  Schema s = TestSchema();
  EXPECT_TRUE(s.ValidateRow({Value(1), Value("a"), Value(2.5)}).ok());
}

TEST(SchemaTest, ValidateAcceptsIntWideningToDouble) {
  Schema s = TestSchema();
  EXPECT_TRUE(s.ValidateRow({Value(1), Value("a"), Value(3)}).ok());
}

TEST(SchemaTest, ValidateAcceptsNullsInNonKeyColumns) {
  Schema s = TestSchema();
  EXPECT_TRUE(s.ValidateRow({Value(1), Value(), Value()}).ok());
}

TEST(SchemaTest, ValidateRejectsArityMismatch) {
  Schema s = TestSchema();
  EXPECT_FALSE(s.ValidateRow({Value(1), Value("a")}).ok());
  EXPECT_FALSE(
      s.ValidateRow({Value(1), Value("a"), Value(1.0), Value(2)}).ok());
}

TEST(SchemaTest, ValidateRejectsNonIntKey) {
  Schema s = TestSchema();
  EXPECT_FALSE(s.ValidateRow({Value("k"), Value("a"), Value(1.0)}).ok());
  EXPECT_FALSE(s.ValidateRow({Value(), Value("a"), Value(1.0)}).ok());
}

TEST(SchemaTest, ValidateRejectsTypeMismatch) {
  Schema s = TestSchema();
  EXPECT_FALSE(s.ValidateRow({Value(1), Value(2), Value(1.0)}).ok());
  EXPECT_FALSE(s.ValidateRow({Value(1), Value("a"), Value("x")}).ok());
}

TEST(SchemaTest, ToStringListsColumns) {
  EXPECT_EQ(TestSchema().ToString(), "id INT, name STRING, score DOUBLE");
}

TEST(SchemaDeathTest, FirstColumnMustBeIntKey) {
  EXPECT_DEATH(Schema({{"id", ValueType::kString}}), "primary key");
}

TEST(SchemaDeathTest, DuplicateColumnNamesRejected) {
  EXPECT_DEATH(
      Schema({{"id", ValueType::kInt64}, {"id", ValueType::kInt64}}),
      "duplicate");
}

}  // namespace
}  // namespace screp
