// Lockstep tests for the WriteSet serialization memos.
//
// SerializedBytes() and EncodedBytes() cache their results so the
// certifier's fan-out and the WAL can reuse one frozen encoding per
// writeset.  The un-memoized walkers (SerializedBytesUncached(), a
// fresh EncodeTo()) are the oracles: through any interleaving of
// mutations and queries the memos must agree with them bit for bit.

#include "storage/write_set.h"

#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"

namespace screp {
namespace {

Row RandomRow(Rng& rng) {
  Row row;
  const int cols = 1 + static_cast<int>(rng.NextBounded(4));
  for (int c = 0; c < cols; ++c) {
    switch (rng.NextBounded(4)) {
      case 0: row.push_back(Value(static_cast<int64_t>(rng.Next()))); break;
      case 1: row.push_back(Value(rng.NextDouble())); break;
      case 2: row.push_back(Value()); break;
      default:
        row.push_back(Value(std::string(rng.NextBounded(100), 'p')));
    }
  }
  return row;
}

TEST(WriteSetMemoTest, SizeMemoTracksMutations) {
  Rng rng(11);
  WriteSet ws;
  ws.txn_id = 1;
  for (int i = 0; i < 500; ++i) {
    // Small key space so Add() frequently coalesces into an existing op
    // (rewriting a row in place without changing the op count).
    ws.Add(static_cast<TableId>(rng.NextBounded(2)),
           static_cast<int64_t>(rng.NextBounded(6)), WriteType::kUpdate,
           RandomRow(rng));
    if (rng.NextBool(0.3)) ws.read_keys.push_back({0, i});
    if (rng.NextBool(0.1)) ws.read_ranges.push_back({0, i, i + 10});
    ASSERT_EQ(ws.SerializedBytes(), ws.SerializedBytesUncached()) << i;
  }
}

TEST(WriteSetMemoTest, EncodeArenaMatchesFreshEncode) {
  Rng rng(12);
  WriteSet ws;
  ws.txn_id = 99;
  ws.origin = 2;
  ws.snapshot_version = 7;
  for (int i = 0; i < 100; ++i) {
    ws.Add(0, static_cast<int64_t>(rng.NextBounded(10)), WriteType::kUpdate,
           RandomRow(rng));
    std::string fresh;
    ws.EncodeTo(&fresh);
    ASSERT_EQ(ws.EncodedBytes(), fresh) << i;
    ASSERT_EQ(ws.EncodedBytes().size(), ws.SerializedBytes()) << i;
  }
}

TEST(WriteSetMemoTest, HeaderFieldChangeInvalidatesArena) {
  WriteSet ws;
  ws.txn_id = 5;
  ws.Add(0, 1, WriteType::kUpdate, Row{Value(int64_t{1})});
  const std::string before = ws.EncodedBytes();
  // The certifier stamps the commit version after the size (and possibly
  // the encoding) was already queried; the arena must re-encode.
  ws.commit_version = 42;
  const std::string after = ws.EncodedBytes();
  EXPECT_NE(before, after);
  std::string fresh;
  ws.EncodeTo(&fresh);
  EXPECT_EQ(after, fresh);
  // Size is commit-version independent (fixed-width header field).
  EXPECT_EQ(before.size(), after.size());
  EXPECT_EQ(ws.SerializedBytes(), ws.SerializedBytesUncached());
}

TEST(WriteSetMemoTest, DecodeFromResetsBothMemos) {
  WriteSet source;
  source.txn_id = 8;
  source.Add(0, 3, WriteType::kUpdate, Row{Value(int64_t{3}), Value(2.5)});
  source.Add(1, 4, WriteType::kDelete, {});
  std::string encoded;
  source.EncodeTo(&encoded);

  WriteSet target;
  target.Add(0, 99, WriteType::kUpdate, Row{Value(std::string(200, 'z'))});
  // Populate both memos with the pre-decode state.
  ASSERT_EQ(target.SerializedBytes(), target.SerializedBytesUncached());
  ASSERT_FALSE(target.EncodedBytes().empty());

  size_t offset = 0;
  ASSERT_TRUE(WriteSet::DecodeFrom(encoded, &offset, &target));
  EXPECT_EQ(offset, encoded.size());
  EXPECT_EQ(target.SerializedBytes(), target.SerializedBytesUncached());
  EXPECT_EQ(target.EncodedBytes(), encoded);
}

TEST(WriteSetMemoTest, RoundTripThroughMemoizedEncoding) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    WriteSet ws;
    ws.txn_id = static_cast<TxnId>(i);
    ws.origin = static_cast<ReplicaId>(rng.NextBounded(4));
    ws.snapshot_version = rng.NextBounded(100);
    ws.commit_version = rng.NextBounded(100);
    const int ops = 1 + static_cast<int>(rng.NextBounded(8));
    for (int k = 0; k < ops; ++k) {
      ws.Add(0, static_cast<int64_t>(rng.NextBounded(20)),
             rng.NextBool(0.2) ? WriteType::kDelete : WriteType::kUpdate,
             rng.NextBool(0.2) ? Row{} : RandomRow(rng));
    }
    WriteSet decoded;
    size_t offset = 0;
    ASSERT_TRUE(WriteSet::DecodeFrom(ws.EncodedBytes(), &offset, &decoded));
    EXPECT_EQ(offset, ws.SerializedBytes());
    EXPECT_EQ(decoded.EncodedBytes(), ws.EncodedBytes());
  }
}

}  // namespace
}  // namespace screp
