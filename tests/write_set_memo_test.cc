// Lockstep tests for the WriteSet serialization memos.
//
// SerializedBytes() and EncodedBytes() cache their results so the
// certifier's fan-out and the WAL can reuse one frozen encoding per
// writeset.  The un-memoized walkers (SerializedBytesUncached(), a
// fresh EncodeTo()) are the oracles: through any interleaving of
// mutations and queries the memos must agree with them bit for bit.

#include "storage/write_set.h"

#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"

namespace screp {
namespace {

Row RandomRow(Rng& rng) {
  Row row;
  const int cols = 1 + static_cast<int>(rng.NextBounded(4));
  for (int c = 0; c < cols; ++c) {
    switch (rng.NextBounded(4)) {
      case 0: row.push_back(Value(static_cast<int64_t>(rng.Next()))); break;
      case 1: row.push_back(Value(rng.NextDouble())); break;
      case 2: row.push_back(Value()); break;
      default:
        row.push_back(Value(std::string(rng.NextBounded(100), 'p')));
    }
  }
  return row;
}

TEST(WriteSetMemoTest, SizeMemoTracksMutations) {
  Rng rng(11);
  WriteSet ws;
  ws.txn_id = 1;
  for (int i = 0; i < 500; ++i) {
    // Small key space so Add() frequently coalesces into an existing op
    // (rewriting a row in place without changing the op count).
    ws.Add(static_cast<TableId>(rng.NextBounded(2)),
           static_cast<int64_t>(rng.NextBounded(6)), WriteType::kUpdate,
           RandomRow(rng));
    if (rng.NextBool(0.3)) ws.read_keys.push_back({0, i});
    if (rng.NextBool(0.1)) ws.read_ranges.push_back({0, i, i + 10});
    ASSERT_EQ(ws.SerializedBytes(), ws.SerializedBytesUncached()) << i;
  }
}

TEST(WriteSetMemoTest, EncodeArenaMatchesFreshEncode) {
  Rng rng(12);
  WriteSet ws;
  ws.txn_id = 99;
  ws.origin = 2;
  ws.snapshot_version = 7;
  for (int i = 0; i < 100; ++i) {
    ws.Add(0, static_cast<int64_t>(rng.NextBounded(10)), WriteType::kUpdate,
           RandomRow(rng));
    std::string fresh;
    ws.EncodeTo(&fresh);
    ASSERT_EQ(ws.EncodedBytes(), fresh) << i;
    ASSERT_EQ(ws.EncodedBytes().size(), ws.SerializedBytes()) << i;
  }
}

TEST(WriteSetMemoTest, HeaderFieldChangeInvalidatesArena) {
  WriteSet ws;
  ws.txn_id = 5;
  ws.Add(0, 1, WriteType::kUpdate, Row{Value(int64_t{1})});
  const std::string before = ws.EncodedBytes();
  // The certifier stamps the commit version after the size (and possibly
  // the encoding) was already queried; the arena must re-encode.
  ws.commit_version = 42;
  const std::string after = ws.EncodedBytes();
  EXPECT_NE(before, after);
  std::string fresh;
  ws.EncodeTo(&fresh);
  EXPECT_EQ(after, fresh);
  // Size is commit-version independent (fixed-width header field).
  EXPECT_EQ(before.size(), after.size());
  EXPECT_EQ(ws.SerializedBytes(), ws.SerializedBytesUncached());
}

TEST(WriteSetMemoTest, DecodeFromResetsBothMemos) {
  WriteSet source;
  source.txn_id = 8;
  source.Add(0, 3, WriteType::kUpdate, Row{Value(int64_t{3}), Value(2.5)});
  source.Add(1, 4, WriteType::kDelete, {});
  std::string encoded;
  source.EncodeTo(&encoded);

  WriteSet target;
  target.Add(0, 99, WriteType::kUpdate, Row{Value(std::string(200, 'z'))});
  // Populate both memos with the pre-decode state.
  ASSERT_EQ(target.SerializedBytes(), target.SerializedBytesUncached());
  ASSERT_FALSE(target.EncodedBytes().empty());

  size_t offset = 0;
  ASSERT_TRUE(WriteSet::DecodeFrom(encoded, &offset, &target));
  EXPECT_EQ(offset, encoded.size());
  EXPECT_EQ(target.SerializedBytes(), target.SerializedBytesUncached());
  EXPECT_EQ(target.EncodedBytes(), encoded);
}

TEST(WriteSetMemoTest, RoundTripThroughMemoizedEncoding) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    WriteSet ws;
    ws.txn_id = static_cast<TxnId>(i);
    ws.origin = static_cast<ReplicaId>(rng.NextBounded(4));
    ws.snapshot_version = rng.NextBounded(100);
    ws.commit_version = rng.NextBounded(100);
    const int ops = 1 + static_cast<int>(rng.NextBounded(8));
    for (int k = 0; k < ops; ++k) {
      ws.Add(0, static_cast<int64_t>(rng.NextBounded(20)),
             rng.NextBool(0.2) ? WriteType::kDelete : WriteType::kUpdate,
             rng.NextBool(0.2) ? Row{} : RandomRow(rng));
    }
    WriteSet decoded;
    size_t offset = 0;
    ASSERT_TRUE(WriteSet::DecodeFrom(ws.EncodedBytes(), &offset, &decoded));
    EXPECT_EQ(offset, ws.SerializedBytes());
    EXPECT_EQ(decoded.EncodedBytes(), ws.EncodedBytes());
  }
}

// Per-mutator lockstep coverage: each branch of Add()'s coalescing can
// rewrite state in place without changing any container size, so each
// must invalidate the memos itself (mutate, then immediately query both
// memos against their oracles).

TEST(WriteSetMemoTest, AddCoalescedUpdateRewriteInvalidates) {
  WriteSet ws;
  ws.txn_id = 1;
  ws.Add(0, 7, WriteType::kUpdate, Row{Value(std::string("short"))});
  ASSERT_EQ(ws.SerializedBytes(), ws.SerializedBytesUncached());
  const std::string before = ws.EncodedBytes();
  // Update-over-update: same op count, different row bytes.
  ws.Add(0, 7, WriteType::kUpdate, Row{Value(std::string(300, 'y'))});
  EXPECT_EQ(ws.SerializedBytes(), ws.SerializedBytesUncached());
  std::string fresh;
  ws.EncodeTo(&fresh);
  EXPECT_EQ(ws.EncodedBytes(), fresh);
  EXPECT_NE(ws.EncodedBytes(), before);
}

TEST(WriteSetMemoTest, AddUpdateOverInsertKeepsInsertAndInvalidates) {
  WriteSet ws;
  ws.txn_id = 2;
  ws.Add(0, 7, WriteType::kInsert, Row{Value(int64_t{1})});
  ASSERT_EQ(ws.SerializedBytes(), ws.SerializedBytesUncached());
  ASSERT_FALSE(ws.EncodedBytes().empty());
  ws.Add(0, 7, WriteType::kUpdate, Row{Value(std::string(64, 'q'))});
  ASSERT_EQ(ws.ops.size(), 1u);
  EXPECT_EQ(ws.ops[0].type, WriteType::kInsert);
  EXPECT_EQ(ws.SerializedBytes(), ws.SerializedBytesUncached());
  std::string fresh;
  ws.EncodeTo(&fresh);
  EXPECT_EQ(ws.EncodedBytes(), fresh);
}

TEST(WriteSetMemoTest, AddInsertThenDeleteDropsRowAndInvalidates) {
  WriteSet ws;
  ws.txn_id = 3;
  ws.Add(0, 7, WriteType::kInsert, Row{Value(std::string(128, 'r'))});
  ASSERT_EQ(ws.SerializedBytes(), ws.SerializedBytesUncached());
  const size_t with_row = ws.SerializedBytes();
  ws.Add(0, 7, WriteType::kDelete, {});
  ASSERT_EQ(ws.ops.size(), 1u);
  EXPECT_EQ(ws.ops[0].type, WriteType::kDelete);
  EXPECT_FALSE(ws.ops[0].row.has_value());
  EXPECT_EQ(ws.SerializedBytes(), ws.SerializedBytesUncached());
  EXPECT_LT(ws.SerializedBytes(), with_row);
  std::string fresh;
  ws.EncodeTo(&fresh);
  EXPECT_EQ(ws.EncodedBytes(), fresh);
}

TEST(WriteSetMemoTest, AddDeleteOverUpdateInvalidates) {
  WriteSet ws;
  ws.txn_id = 4;
  ws.Add(0, 7, WriteType::kUpdate, Row{Value(std::string(90, 's'))});
  ASSERT_EQ(ws.SerializedBytes(), ws.SerializedBytesUncached());
  ASSERT_FALSE(ws.EncodedBytes().empty());
  ws.Add(0, 7, WriteType::kDelete, {});
  ASSERT_EQ(ws.ops.size(), 1u);
  EXPECT_EQ(ws.ops[0].type, WriteType::kDelete);
  EXPECT_EQ(ws.SerializedBytes(), ws.SerializedBytesUncached());
  std::string fresh;
  ws.EncodeTo(&fresh);
  EXPECT_EQ(ws.EncodedBytes(), fresh);
}

// The partitioned-certification contract: shard coordinates ride the
// writeset as plain C++ state, never entering the wire format or the
// memos — a K = 1 run's bytes cannot depend on them.

TEST(WriteSetMemoTest, ShardFieldsNeverTouchTheEncoding) {
  WriteSet plain;
  plain.txn_id = 5;
  plain.Add(0, 1, WriteType::kUpdate, Row{Value(int64_t{1})});
  WriteSet sharded = plain;
  ASSERT_EQ(plain.EncodedBytes(), sharded.EncodedBytes());
  const std::string before = sharded.EncodedBytes();
  sharded.shard_versions = {{0, 3}, {1, 9}};
  sharded.shard_snapshots = {{0, 2}, {1, 8}};
  // Stamping shard coordinates is not a mutation of the encoding: the
  // memos stay valid and byte-identical to the shard-free twin.
  EXPECT_EQ(sharded.EncodedBytes(), before);
  EXPECT_EQ(sharded.EncodedBytes(), plain.EncodedBytes());
  EXPECT_EQ(sharded.SerializedBytes(), plain.SerializedBytes());
  EXPECT_EQ(sharded.SerializedBytes(), sharded.SerializedBytesUncached());
}

TEST(WriteSetMemoTest, DecodeFromClearsStaleShardCoordinates) {
  WriteSet source;
  source.txn_id = 6;
  source.Add(0, 3, WriteType::kUpdate, Row{Value(int64_t{3})});
  std::string encoded;
  source.EncodeTo(&encoded);

  WriteSet target;
  target.txn_id = 99;
  target.shard_versions = {{2, 17}};
  target.shard_snapshots = {{2, 16}};
  size_t offset = 0;
  ASSERT_TRUE(WriteSet::DecodeFrom(encoded, &offset, &target));
  // The wire format carries no shard data; none may survive the decode.
  EXPECT_TRUE(target.shard_versions.empty());
  EXPECT_TRUE(target.shard_snapshots.empty());
  EXPECT_EQ(target.txn_id, 6u);
  EXPECT_EQ(target.SerializedBytes(), target.SerializedBytesUncached());
  EXPECT_EQ(target.EncodedBytes(), encoded);
}

}  // namespace
}  // namespace screp
