#include "workload/experiment.h"

#include <gtest/gtest.h>

#include "consistency/checker.h"

#include "workload/micro.h"
#include "workload/tpcw.h"

namespace screp {
namespace {

MicroConfig SmallMicro(double update_fraction) {
  MicroConfig config;
  config.rows_per_table = 200;
  config.update_fraction = update_fraction;
  return config;
}

ExperimentConfig ShortRun(ConsistencyLevel level, int replicas,
                          int clients) {
  ExperimentConfig config;
  config.system.level = level;
  config.system.replica_count = replicas;
  config.client_count = clients;
  config.warmup = Seconds(0.5);
  config.duration = Seconds(3);
  config.seed = 7;
  return config;
}

TEST(ExperimentTest, MicroRunProducesThroughput) {
  MicroWorkload workload(SmallMicro(0.25));
  auto result =
      RunExperiment(workload, ShortRun(ConsistencyLevel::kLazyCoarse, 4, 8));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->throughput_tps, 10.0);
  EXPECT_GT(result->committed, 0);
  EXPECT_GT(result->committed_updates, 0);
  EXPECT_GT(result->mean_response_ms, 0.0);
  EXPECT_GT(result->queries_ms, 0.0);
  EXPECT_EQ(result->replicas, 4);
  EXPECT_EQ(result->clients, 8);
}

TEST(ExperimentTest, DeterministicAcrossRuns) {
  MicroWorkload workload(SmallMicro(0.25));
  const ExperimentConfig config =
      ShortRun(ConsistencyLevel::kLazyFine, 2, 4);
  auto a = RunExperiment(workload, config);
  auto b = RunExperiment(workload, config);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->committed, b->committed);
  EXPECT_DOUBLE_EQ(a->throughput_tps, b->throughput_tps);
  EXPECT_DOUBLE_EQ(a->mean_response_ms, b->mean_response_ms);
}

TEST(ExperimentTest, DifferentSeedsDifferentButClose) {
  MicroWorkload workload(SmallMicro(0.25));
  ExperimentConfig config = ShortRun(ConsistencyLevel::kSession, 2, 4);
  auto a = RunExperiment(workload, config);
  config.seed = 99;
  auto b = RunExperiment(workload, config);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NEAR(a->throughput_tps, b->throughput_tps,
              a->throughput_tps * 0.25);
}

TEST(ExperimentTest, EagerHasGlobalStageOthersDoNot) {
  MicroWorkload workload(SmallMicro(0.5));
  auto eager =
      RunExperiment(workload, ShortRun(ConsistencyLevel::kEager, 4, 8));
  auto lazy =
      RunExperiment(workload, ShortRun(ConsistencyLevel::kLazyCoarse, 4, 8));
  ASSERT_TRUE(eager.ok() && lazy.ok());
  EXPECT_GT(eager->global_ms, 0.0);
  EXPECT_EQ(lazy->global_ms, 0.0);
  // Eager never delays transaction start.
  EXPECT_EQ(eager->version_ms, 0.0);
}

TEST(ExperimentTest, EagerSlowerThanLazyOnUpdateHeavyMix) {
  MicroWorkload workload(SmallMicro(0.5));
  auto eager =
      RunExperiment(workload, ShortRun(ConsistencyLevel::kEager, 8, 8));
  auto lazy =
      RunExperiment(workload, ShortRun(ConsistencyLevel::kLazyCoarse, 8, 8));
  ASSERT_TRUE(eager.ok() && lazy.ok());
  EXPECT_GT(lazy->throughput_tps, eager->throughput_tps);
  EXPECT_GT(eager->mean_response_ms, lazy->mean_response_ms);
}

TEST(ExperimentTest, FineDelayAtMostCoarseDelay) {
  MicroWorkload workload(SmallMicro(0.25));
  auto coarse =
      RunExperiment(workload, ShortRun(ConsistencyLevel::kLazyCoarse, 8, 8));
  auto fine =
      RunExperiment(workload, ShortRun(ConsistencyLevel::kLazyFine, 8, 8));
  ASSERT_TRUE(coarse.ok() && fine.ok());
  EXPECT_LE(fine->version_ms, coarse->version_ms * 1.1);
}

TEST(ExperimentTest, HistoryFromRunSatisfiesConsistency) {
  MicroWorkload workload(SmallMicro(0.25));
  History history;
  ExperimentConfig config = ShortRun(ConsistencyLevel::kLazyCoarse, 3, 6);
  config.duration = Seconds(1.5);
  config.history = &history;
  auto result = RunExperiment(workload, config);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(history.size(), 0u);
  CheckResult check = CheckAll(history, /*expect_strong=*/true);
  EXPECT_TRUE(check.ok) << check.ToString();
}

TEST(ExperimentTest, TpcwSmokeRunAllLevels) {
  TpcwScale scale;
  scale.items = 200;
  scale.customers = 100;
  scale.initial_orders = 60;
  scale.subjects = 8;
  TpcwWorkload workload(scale, TpcwMix::kShopping);
  for (ConsistencyLevel level : kAllConsistencyLevels) {
    SCOPED_TRACE(ConsistencyLevelName(level));
    ExperimentConfig config = ShortRun(level, 2, 8);
    config.mean_think_time = Millis(50);
    config.duration = Seconds(3);
    auto result = RunExperiment(workload, config);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_GT(result->committed, 20);
    EXPECT_EQ(result->exec_errors, 0);
  }
}

TEST(ExperimentTest, ResultLineFormatting) {
  ExperimentResult result;
  result.level = ConsistencyLevel::kLazyFine;
  result.replicas = 8;
  result.clients = 64;
  result.throughput_tps = 123.4;
  const std::string line = result.ToLine();
  EXPECT_NE(line.find("LFC"), std::string::npos);
  EXPECT_FALSE(ExperimentResult::Header().empty());
}

}  // namespace
}  // namespace screp
