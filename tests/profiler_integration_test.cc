// End-to-end profiler tests: on real runs across every consistency
// configuration the critical-path segments tile the measured response
// time (zero conservation violations) while the online auditor stays
// clean, the eager level attributes time to the global-commit barrier,
// crash-induced retries land in the `retry` segment without breaking
// conservation, the profile JSON export is well-formed, and turning the
// profiler on does not perturb the simulation.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/profiler.h"
#include "workload/experiment.h"
#include "workload/micro.h"

namespace screp {
namespace {

MicroConfig SmallMicro(double update_fraction) {
  MicroConfig config;
  config.rows_per_table = 200;
  config.update_fraction = update_fraction;
  return config;
}

ExperimentConfig ShortRun(ConsistencyLevel level, int replicas,
                          int clients) {
  ExperimentConfig config;
  config.system.level = level;
  config.system.replica_count = replicas;
  config.client_count = clients;
  config.warmup = Seconds(0.5);
  config.duration = Seconds(3);
  config.seed = 7;
  return config;
}

double SegmentMs(const ExperimentResult& r, obs::ProfileSegment s) {
  return r.profile.segment_mean_ms[static_cast<size_t>(s)];
}

TEST(ProfilerIntegrationTest, AllLevelsConserveAndAuditCleanly) {
  const MicroWorkload workload(SmallMicro(0.25));
  for (ConsistencyLevel level : kAllConsistencyLevels) {
    ExperimentConfig config = ShortRun(level, 4, 8);
    config.profile = true;
    config.audit = true;
    auto result = RunExperiment(workload, config);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_TRUE(result->profile.enabled) << ConsistencyLevelName(level);
    EXPECT_GT(result->profile.measured, 0) << ConsistencyLevelName(level);
    EXPECT_GT(result->profile.conservation_checked, 0)
        << ConsistencyLevelName(level);
    EXPECT_EQ(result->profile.conservation_violations, 0)
        << ConsistencyLevelName(level) << ": "
        << result->profile.first_violation;
    EXPECT_TRUE(result->audit.ok)
        << ConsistencyLevelName(level) << ": " << result->audit.ToString();

    // The per-segment means are an exact decomposition of the profiled
    // mean response time.
    double sum = 0;
    for (int s = 0; s < obs::kProfileSegmentCount; ++s) {
      sum += result->profile.segment_mean_ms[static_cast<size_t>(s)];
    }
    EXPECT_GT(sum, 0) << ConsistencyLevelName(level);

    // Statement execution shows up at every level; the global-commit
    // barrier only under eager replication.
    EXPECT_GT(SegmentMs(*result, obs::ProfileSegment::kExec), 0)
        << ConsistencyLevelName(level);
    if (level == ConsistencyLevel::kEager) {
      EXPECT_GT(SegmentMs(*result, obs::ProfileSegment::kGlobalWait), 0);
    } else {
      EXPECT_EQ(SegmentMs(*result, obs::ProfileSegment::kGlobalWait), 0)
          << ConsistencyLevelName(level);
    }
  }
}

TEST(ProfilerIntegrationTest, CrashRetriesChargedToRetrySegment) {
  const MicroWorkload workload(SmallMicro(0.5));
  ExperimentConfig config = ShortRun(ConsistencyLevel::kLazyCoarse, 4, 16);
  config.profile = true;
  config.audit = true;
  config.client.request_timeout = Millis(200);
  config.client.backoff_base = Millis(2);
  config.faults.push_back(
      FaultEvent{1, Seconds(1), FaultEvent::kNoRecovery});
  auto result = RunExperiment(workload, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->replica_failures, 0);
  ASSERT_TRUE(result->profile.enabled);
  EXPECT_EQ(result->profile.conservation_violations, 0)
      << result->profile.first_violation;
  EXPECT_TRUE(result->audit.ok) << result->audit.ToString();
  // Requests stranded on the crashed replica were abandoned and retried;
  // that dead time belongs to no stage and must land in `retry`.
  EXPECT_GT(SegmentMs(*result, obs::ProfileSegment::kRetry), 0);
}

TEST(ProfilerIntegrationTest, ProfileJsonExportIsWellFormed) {
  const MicroWorkload workload(SmallMicro(0.25));
  ExperimentConfig config = ShortRun(ConsistencyLevel::kLazyCoarse, 4, 8);
  const std::string path =
      ::testing::TempDir() + "/profiler_integration_profile.json";
  config.profile_json_path = path;  // implies profile
  auto result = RunExperiment(workload, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->profile.enabled);

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "profile JSON not written: " << path;
  std::ostringstream text;
  text << in.rdbuf();
  auto doc = obs::JsonValue::Parse(text.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  ASSERT_NE(doc->Find("conservation"), nullptr);
  EXPECT_EQ(doc->Find("conservation")->Find("violations")->number(), 0);
  ASSERT_NE(doc->Find("segments"), nullptr);
  ASSERT_NE(doc->Find("bands"), nullptr);
  // The embedded summary is the same document.
  auto embedded = obs::JsonValue::Parse(result->profile.json);
  ASSERT_TRUE(embedded.ok()) << embedded.status().ToString();
  std::remove(path.c_str());
}

TEST(ProfilerIntegrationTest, ProfilingDoesNotPerturbTheRun) {
  const MicroWorkload workload(SmallMicro(0.25));
  ExperimentConfig plain = ShortRun(ConsistencyLevel::kLazyFine, 4, 8);
  ExperimentConfig profiled = plain;
  profiled.profile = true;
  auto base = RunExperiment(workload, plain);
  auto prof = RunExperiment(workload, profiled);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(prof.ok());
  // The profiler consumes spans and events but no randomness: every
  // virtual-time aggregate must be bit-identical.
  EXPECT_EQ(base->ToLine(), prof->ToLine());
  EXPECT_EQ(base->committed, prof->committed);
  EXPECT_EQ(base->throughput_tps, prof->throughput_tps);
  EXPECT_FALSE(base->profile.enabled);
  ASSERT_TRUE(prof->profile.enabled);
  // The off-run's JSON omits the profile key entirely (byte-compat with
  // pre-profiler output); the on-run embeds it.
  EXPECT_EQ(base->ToJson().find("\"profile\""), std::string::npos);
  EXPECT_NE(prof->ToJson().find("\"profile\""), std::string::npos);
}

}  // namespace
}  // namespace screp
