// Multi-threaded stress tests for the storage engine: the simulator drives
// it single-threaded, but the engine itself is thread-safe and these tests
// exercise that contract (readers at fixed snapshots racing a committing
// writer must always observe consistent states).

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "storage/database.h"
#include "storage/transaction.h"

namespace screp {
namespace {

TEST(StorageConcurrencyTest, ReadersNeverSeePartialCommits) {
  Database db;
  auto table = db.CreateTable(
      "t", Schema({{"id", ValueType::kInt64}, {"val", ValueType::kInt64}}));
  ASSERT_TRUE(table.ok());
  constexpr int kRows = 16;
  for (int64_t k = 0; k < kRows; ++k) {
    ASSERT_TRUE(db.BulkLoad(*table, {Value(k), Value(int64_t{0})}).ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};

  // Writer: each commit sets ALL rows to the same new value v; a reader at
  // any snapshot must therefore see all rows equal.
  std::thread writer([&] {
    for (DbVersion v = 1; v <= 300; ++v) {
      WriteSet ws;
      ws.commit_version = v;
      for (int64_t k = 0; k < kRows; ++k) {
        ws.Add(*table, k, WriteType::kUpdate, Row{Value(k), Value(v)});
      }
      ASSERT_TRUE(db.ApplyWriteSet(ws).ok());
    }
    stop.store(true);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        auto txn = db.Begin();
        int64_t first = -1;
        bool consistent = true;
        for (int64_t k = 0; k < kRows; ++k) {
          auto row = txn->Get(*table, k);
          if (!row.ok()) {
            consistent = false;
            break;
          }
          const int64_t v = (*row)[1].AsInt();
          if (first < 0) {
            first = v;
          } else if (v != first) {
            consistent = false;
            break;
          }
        }
        if (!consistent) violations.fetch_add(1);
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(db.CommittedVersion(), 300);
}

TEST(StorageConcurrencyTest, ConcurrentScansDuringWrites) {
  Database db;
  auto table = db.CreateTable(
      "t", Schema({{"id", ValueType::kInt64}, {"val", ValueType::kInt64}}));
  ASSERT_TRUE(table.ok());
  for (int64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(db.BulkLoad(*table, {Value(k), Value(k)}).ok());
  }
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    // Each commit inserts one new row.
    for (DbVersion v = 1; v <= 200; ++v) {
      WriteSet ws;
      ws.commit_version = v;
      ws.Add(*table, 1000 + v, WriteType::kInsert,
             Row{Value(1000 + v), Value(v)});
      ASSERT_TRUE(db.ApplyWriteSet(ws).ok());
    }
    stop.store(true);
  });
  std::atomic<int> bad_counts{0};
  std::vector<std::thread> scanners;
  for (int r = 0; r < 3; ++r) {
    scanners.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        auto txn = db.Begin();
        const DbVersion snapshot = txn->snapshot();
        size_t count = 0;
        txn->Scan(*table, [&](int64_t, const Row&) {
          ++count;
          return true;
        });
        // At snapshot v there are exactly 100 + v live rows... but rows
        // may have been committed after our snapshot was taken; the scan
        // must still return exactly the snapshot's count.
        if (count != 100 + static_cast<size_t>(snapshot)) {
          bad_counts.fetch_add(1);
        }
      }
    });
  }
  writer.join();
  for (auto& t : scanners) t.join();
  EXPECT_EQ(bad_counts.load(), 0);
}

TEST(StorageConcurrencyTest, TruncateClampsToLiveSnapshots) {
  Database db;
  auto table = db.CreateTable(
      "t", Schema({{"id", ValueType::kInt64}, {"val", ValueType::kInt64}}));
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(db.BulkLoad(*table, {Value(0), Value(int64_t{0})}).ok());
  for (DbVersion v = 1; v <= 20; ++v) {
    WriteSet ws;
    ws.commit_version = v;
    ws.Add(*table, 0, WriteType::kUpdate, Row{Value(0), Value(v)});
    ASSERT_TRUE(db.ApplyWriteSet(ws).ok());
  }
  auto old_txn = db.BeginAt(5);
  // A horizon beyond the live snapshot must be clamped to it.
  db.TruncateVersions(15);
  auto row = old_txn->Get(*table, 0);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[1].AsInt(), 5);
  const size_t kept = db.table(*table)->VersionCount();
  old_txn.reset();
  // With the old reader gone the same horizon takes effect.
  db.TruncateVersions(15);
  EXPECT_LT(db.table(*table)->VersionCount(), kept);
  auto txn = db.Begin();
  row = txn->Get(*table, 0);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[1].AsInt(), 20);
}

TEST(StorageConcurrencyTest, GcRacesReadersSafely) {
  Database db;
  auto table = db.CreateTable(
      "t", Schema({{"id", ValueType::kInt64}, {"val", ValueType::kInt64}}));
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(db.BulkLoad(*table, {Value(0), Value(int64_t{0})}).ok());
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (DbVersion v = 1; v <= 500; ++v) {
      WriteSet ws;
      ws.commit_version = v;
      ws.Add(*table, 0, WriteType::kUpdate, Row{Value(0), Value(v)});
      ASSERT_TRUE(db.ApplyWriteSet(ws).ok());
      if (v % 50 == 0) db.TruncateVersions(v - 10);
    }
    stop.store(true);
  });
  std::atomic<int> errors{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      auto txn = db.Begin();  // snapshot is always >= GC horizon
      auto row = txn->Get(*table, 0);
      if (!row.ok()) errors.fetch_add(1);
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(errors.load(), 0);
  // While readers are live GC clamps to their snapshots, so the chain may
  // lag; with all readers gone one pass bounds it.
  db.TruncateVersions(490);
  EXPECT_LT(db.table(*table)->VersionCount(), 100u);
}

}  // namespace
}  // namespace screp
