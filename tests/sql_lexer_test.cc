#include "sql/lexer.h"

#include <gtest/gtest.h>

namespace screp::sql {
namespace {

std::vector<Token> Lex(const std::string& text) {
  std::vector<Token> tokens;
  Status st = Tokenize(text, &tokens);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return tokens;
}

TEST(LexerTest, EmptyInputYieldsEnd) {
  auto tokens = Lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kEnd);
}

TEST(LexerTest, KeywordsUppercasedIdentifiersLowercased) {
  auto tokens = Lex("SeLeCt FooBar fRoM t1");
  EXPECT_EQ(tokens[0].type, TokenType::kKeyword);
  EXPECT_EQ(tokens[0].text, "SELECT");
  EXPECT_EQ(tokens[1].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[1].text, "foobar");
  EXPECT_EQ(tokens[2].text, "FROM");
  EXPECT_EQ(tokens[3].text, "t1");
}

TEST(LexerTest, IntegerAndFloatLiterals) {
  auto tokens = Lex("42 3.5");
  EXPECT_EQ(tokens[0].type, TokenType::kInteger);
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].type, TokenType::kFloat);
  EXPECT_DOUBLE_EQ(tokens[1].float_value, 3.5);
}

TEST(LexerTest, StringLiteralWithEscapedQuote) {
  auto tokens = Lex("'it''s'");
  EXPECT_EQ(tokens[0].type, TokenType::kString);
  EXPECT_EQ(tokens[0].text, "it's");
}

TEST(LexerTest, UnterminatedStringFails) {
  std::vector<Token> tokens;
  EXPECT_FALSE(Tokenize("'oops", &tokens).ok());
}

TEST(LexerTest, OperatorsAndPunctuation) {
  auto tokens = Lex("= <> < <= > >= , ( ) * + - ?");
  const TokenType expected[] = {
      TokenType::kEq,    TokenType::kNe,     TokenType::kLt,
      TokenType::kLe,    TokenType::kGt,     TokenType::kGe,
      TokenType::kComma, TokenType::kLParen, TokenType::kRParen,
      TokenType::kStar,  TokenType::kPlus,   TokenType::kMinus,
      TokenType::kParam, TokenType::kEnd};
  ASSERT_EQ(tokens.size(), std::size(expected));
  for (size_t i = 0; i < tokens.size(); ++i) {
    EXPECT_EQ(tokens[i].type, expected[i]) << "token " << i;
  }
}

TEST(LexerTest, StrayCharacterFails) {
  std::vector<Token> tokens;
  EXPECT_FALSE(Tokenize("SELECT @", &tokens).ok());
}

TEST(LexerTest, PositionsRecorded) {
  auto tokens = Lex("SELECT x");
  EXPECT_EQ(tokens[0].position, 0u);
  EXPECT_EQ(tokens[1].position, 7u);
}

TEST(LexerTest, AggregateKeywords) {
  auto tokens = Lex("COUNT SUM AVG MIN MAX BETWEEN NULL");
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    EXPECT_EQ(tokens[i].type, TokenType::kKeyword) << i;
  }
}

TEST(LexerTest, IdentifiersWithUnderscoresAndDigits) {
  auto tokens = Lex("order_line scl_id2");
  EXPECT_EQ(tokens[0].text, "order_line");
  EXPECT_EQ(tokens[1].text, "scl_id2");
}

}  // namespace
}  // namespace screp::sql
