// Channel semantics: latency/jitter/size modeling, FIFO preservation,
#include "runtime/sim_runtime.h"
// seeded-deterministic fault injection (drop/duplicate/reorder), the
// reliable sequence-number + redelivery mode, and crash/partition drop
// accounting (net/channel.h).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/channel.h"
#include "sim/simulator.h"

namespace screp::net {
namespace {

struct Delivery {
  int msg = 0;
  SimTime at = 0;
};

struct Harness {
  Simulator sim;
  runtime::SimRuntime rt{&sim};
  std::vector<Delivery> delivered;

  std::unique_ptr<Channel<int>> Make(const LinkConfig& config,
                                     uint64_t seed = 7) {
    auto ch = std::make_unique<Channel<int>>(&rt, "test", config, seed);
    ch->SetHandler([this](const int& m) {
      delivered.push_back({m, sim.Now()});
    });
    return ch;
  }
};

TEST(NetChannelTest, DefaultConfigDeliversAtBaseLatencyInOrder) {
  Harness h;
  LinkConfig link{Micros(100)};
  auto ch = h.Make(link);
  for (int i = 0; i < 3; ++i) ch->Send(i);
  h.sim.RunAll();
  ASSERT_EQ(h.delivered.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(h.delivered[static_cast<size_t>(i)].msg, i);
    EXPECT_EQ(h.delivered[static_cast<size_t>(i)].at, Micros(100));
  }
  EXPECT_EQ(ch->stats().sent, 3);
  EXPECT_EQ(ch->stats().delivered, 3);
  EXPECT_EQ(ch->stats().dropped, 0);
  EXPECT_EQ(ch->stats().in_flight, 0);
}

TEST(NetChannelTest, PerByteCostScalesWithPayloadSize) {
  Harness h;
  LinkConfig link{Micros(10)};
  link.per_byte_us = 1.0;  // 1us per byte, exaggerated for the test
  auto ch = h.Make(link);
  ch->SetSizeFn([](const int& m) { return static_cast<size_t>(m); });
  ch->Send(50);
  h.sim.RunAll();
  ASSERT_EQ(h.delivered.size(), 1u);
  EXPECT_EQ(h.delivered[0].at, Micros(10) + Micros(50));
  EXPECT_EQ(ch->stats().bytes, 50);
}

TEST(NetChannelTest, FifoPreservedUnderJitter) {
  Harness h;
  LinkConfig link{Micros(100)};
  link.jitter_mean = Micros(200);
  auto ch = h.Make(link);
  for (int i = 0; i < 200; ++i) ch->Send(i);
  h.sim.RunAll();
  ASSERT_EQ(h.delivered.size(), 200u);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(h.delivered[static_cast<size_t>(i)].msg, i);
    if (i > 0) {
      EXPECT_GE(h.delivered[static_cast<size_t>(i)].at,
                h.delivered[static_cast<size_t>(i - 1)].at);
    }
  }
}

TEST(NetChannelTest, JitterWithoutFifoReordersSomeMessages) {
  Harness h;
  LinkConfig link{Micros(100)};
  link.jitter_mean = Micros(200);
  link.fifo = false;
  auto ch = h.Make(link);
  for (int i = 0; i < 200; ++i) ch->Send(i);
  h.sim.RunAll();
  ASSERT_EQ(h.delivered.size(), 200u);
  bool inverted = false;
  for (size_t i = 1; i < h.delivered.size(); ++i) {
    if (h.delivered[i].msg < h.delivered[i - 1].msg) inverted = true;
  }
  EXPECT_TRUE(inverted);
}

TEST(NetChannelTest, SameSeedSameSchedule) {
  LinkConfig link{Micros(100)};
  link.jitter_mean = Micros(150);
  link.drop_probability = 0.2;
  link.duplicate_probability = 0.1;
  auto run = [&](uint64_t seed) {
    Harness h;
    auto ch = h.Make(link, seed);
    for (int i = 0; i < 100; ++i) ch->Send(i);
    h.sim.RunAll();
    return h.delivered;
  };
  const auto a = run(42);
  const auto b = run(42);
  const auto c = run(43);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].msg, b[i].msg);
    EXPECT_EQ(a[i].at, b[i].at);
  }
  // A different seed draws a different fault/jitter stream.
  bool differs = a.size() != c.size();
  for (size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a[i].msg != c[i].msg || a[i].at != c[i].at;
  }
  EXPECT_TRUE(differs);
}

TEST(NetChannelTest, DropAndDuplicateFaultsAreCounted) {
  Harness h;
  LinkConfig link{Micros(100)};
  link.drop_probability = 0.3;
  link.duplicate_probability = 0.2;
  auto ch = h.Make(link);
  for (int i = 0; i < 500; ++i) ch->Send(i);
  h.sim.RunAll();
  EXPECT_GT(ch->stats().dropped, 0);
  EXPECT_GT(ch->stats().duplicated, 0);
  EXPECT_EQ(ch->stats().delivered,
            static_cast<int64_t>(h.delivered.size()));
  // Best-effort conservation: every transmission (original or duplicate
  // copy) either drops or delivers.
  EXPECT_EQ(ch->stats().delivered,
            ch->stats().sent - ch->stats().dropped + ch->stats().duplicated);
}

TEST(NetChannelTest, ReorderFaultBreaksFifoForMarkedMessagesOnly) {
  Harness h;
  LinkConfig link{Micros(100)};
  link.reorder_probability = 0.2;
  link.reorder_window = Micros(1000);
  auto ch = h.Make(link);
  for (int i = 0; i < 300; ++i) ch->Send(i);
  h.sim.RunAll();
  ASSERT_EQ(h.delivered.size(), 300u);
  bool inverted = false;
  for (size_t i = 1; i < h.delivered.size(); ++i) {
    if (h.delivered[i].msg < h.delivered[i - 1].msg) inverted = true;
  }
  EXPECT_TRUE(inverted);
  EXPECT_GT(ch->stats().reordered, 0);
}

TEST(NetChannelTest, ReliableRedeliversLossesExactlyOnceInOrder) {
  Harness h;
  LinkConfig link{Micros(100)};
  link.drop_probability = 0.4;
  link.reliability = Reliability::kReliable;
  auto ch = h.Make(link);
  for (int i = 0; i < 300; ++i) ch->Send(i);
  h.sim.RunAll();
  // Every message arrives exactly once, in send order, despite 40% loss.
  ASSERT_EQ(h.delivered.size(), 300u);
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(h.delivered[static_cast<size_t>(i)].msg, i);
  }
  EXPECT_GT(ch->stats().dropped, 0);
  EXPECT_GT(ch->stats().redelivered, 0);
}

TEST(NetChannelTest, ReliableSequencingHoldsReorderedArrivals) {
  Harness h;
  LinkConfig link{Micros(100)};
  link.reorder_probability = 0.3;
  link.reorder_window = Micros(2000);
  link.duplicate_probability = 0.1;
  link.reliability = Reliability::kReliable;
  auto ch = h.Make(link);
  for (int i = 0; i < 300; ++i) ch->Send(i);
  h.sim.RunAll();
  // Reordered + duplicated arrivals are resequenced and deduplicated.
  ASSERT_EQ(h.delivered.size(), 300u);
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(h.delivered[static_cast<size_t>(i)].msg, i);
  }
}

TEST(NetChannelTest, MutePartitionAndClosedEndpointDropAtSend) {
  Harness h;
  LinkConfig link{Micros(100)};
  auto ch = h.Make(link);
  Endpoint dst("peer");
  ch->SetDestination(&dst);

  ch->SetMuted(true);
  ch->Send(1);
  ch->SetMuted(false);
  ch->SetPartitioned(true);
  ch->Send(2);
  ch->SetPartitioned(false);
  dst.Close();
  ch->Send(3);
  dst.Open();
  ch->Send(4);
  h.sim.RunAll();
  ASSERT_EQ(h.delivered.size(), 1u);
  EXPECT_EQ(h.delivered[0].msg, 4);
  EXPECT_EQ(ch->stats().sent, 4);
  EXPECT_EQ(ch->stats().dropped, 3);
}

TEST(NetChannelTest, RetransmissionGivesUpWhileBlocked) {
  Harness h;
  LinkConfig link{Micros(100)};
  link.drop_probability = 1.0;  // every transmission lost
  link.reliability = Reliability::kReliable;
  link.retransmit_timeout = Micros(500);
  auto ch = h.Make(link);
  Endpoint dst("peer");
  ch->SetDestination(&dst);

  ch->Send(1);  // dropped; retransmission pending
  h.sim.RunUntil(Micros(200));
  dst.Close();  // peer dies before the retransmission fires
  h.sim.RunAll();
  // The retransmission found the link blocked, gave up, and did not
  // schedule another attempt — the simulator drains instead of looping.
  EXPECT_TRUE(h.delivered.empty());
  EXPECT_GE(ch->stats().dropped, 2);  // original loss + abandoned resend
}

TEST(NetChannelTest, ResetUnblocksPostHealTraffic) {
  Harness h;
  LinkConfig link{Micros(100)};
  link.drop_probability = 0.5;
  link.reliability = Reliability::kReliable;
  link.retransmit_timeout = Micros(400);
  auto ch = h.Make(link);
  Endpoint dst("peer");
  ch->SetDestination(&dst);

  for (int i = 0; i < 50; ++i) ch->Send(i);
  h.sim.RunUntil(Micros(150));  // some delivered, some retransmitting
  dst.Close();                  // crash: pending retransmissions give up
  h.sim.RunAll();
  const auto delivered_before = h.delivered.size();
  EXPECT_LT(delivered_before, 50u);

  dst.Open();
  ch->Reset();
  for (int i = 100; i < 150; ++i) ch->Send(i);
  h.sim.RunAll();
  // All post-heal messages arrive in order despite the pre-crash gap.
  ASSERT_EQ(h.delivered.size(), delivered_before + 50);
  for (size_t i = delivered_before; i < h.delivered.size(); ++i) {
    EXPECT_EQ(h.delivered[i].msg,
              100 + static_cast<int>(i - delivered_before));
  }
}

}  // namespace
}  // namespace screp::net
