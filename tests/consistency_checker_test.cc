#include "consistency/checker.h"

#include <gtest/gtest.h>

namespace screp {
namespace {

constexpr TableId kX = 0, kY = 1;

TxnRecord Committed(TxnId id, SessionId session, SimTime submit,
                    SimTime ack, DbVersion snapshot, DbVersion commit,
                    std::vector<TableId> table_set,
                    std::vector<TableId> written) {
  TxnRecord r;
  r.id = id;
  r.session = session;
  r.submit_time = submit;
  r.start_time = submit + 1;
  r.ack_time = ack;
  r.snapshot = snapshot;
  r.commit_version = commit;
  r.committed = true;
  r.read_only = commit == kNoVersion;
  r.table_set = std::move(table_set);
  r.tables_written = std::move(written);
  for (TableId t : r.tables_written) r.keys_written.emplace_back(t, 1);
  return r;
}

// The paper's history H1: T1 writes X and is acknowledged, then T2 reads
// the old value of X (snapshot 0). Not strongly consistent.
TEST(StrongConsistencyTest, PaperHistoryH1Violates) {
  History h;
  h.Add(Committed(1, 1, 0, 10, 0, 1, {kX}, {kX}));
  h.Add(Committed(2, 2, 20, 30, 0, kNoVersion, {kX}, {}));
  CheckResult result = CheckStrongConsistency(h);
  EXPECT_FALSE(result.ok);
  EXPECT_GE(result.examined, 1);
}

// The paper's history H2: T2 reads the latest value (snapshot 1). Strongly
// consistent.
TEST(StrongConsistencyTest, PaperHistoryH2Passes) {
  History h;
  h.Add(Committed(1, 1, 0, 10, 0, 1, {kX}, {kX}));
  h.Add(Committed(2, 2, 20, 30, 1, kNoVersion, {kX}, {}));
  EXPECT_TRUE(CheckStrongConsistency(h).ok);
}

// Overlapping (concurrent) transactions are unconstrained: T2 submitted
// before T1's acknowledgment may read the old snapshot.
TEST(StrongConsistencyTest, ConcurrentTransactionsUnconstrained) {
  History h;
  h.Add(Committed(1, 1, 0, 10, 0, 1, {kX}, {kX}));
  h.Add(Committed(2, 2, 5, 15, 0, kNoVersion, {kX}, {}));
  EXPECT_TRUE(CheckStrongConsistency(h).ok);
}

// The fine-grained relaxation: T2 misses T1's update but accesses only
// table Y, which T1 did not write — view-equivalent, so still strong.
TEST(StrongConsistencyTest, DisjointTableSetAllowsOldSnapshot) {
  History h;
  h.Add(Committed(1, 1, 0, 10, 0, 1, {kX}, {kX}));
  h.Add(Committed(2, 2, 20, 30, 0, kNoVersion, {kY}, {}));
  EXPECT_TRUE(CheckStrongConsistency(h).ok);
}

TEST(StrongConsistencyTest, CrossSessionVisibilityRequired) {
  // Session consistency would accept this; strong consistency must not:
  // session 2's transaction misses session 1's acknowledged update on a
  // table it reads.
  History h;
  h.Add(Committed(1, 1, 0, 10, 0, 1, {kX}, {kX}));
  h.Add(Committed(2, 2, 50, 60, 0, kNoVersion, {kX, kY}, {}));
  EXPECT_FALSE(CheckStrongConsistency(h).ok);
  EXPECT_TRUE(CheckSessionConsistency(h).ok);
}

TEST(SessionConsistencyTest, OwnUpdatesMustBeVisible) {
  History h;
  h.Add(Committed(1, 1, 0, 10, 0, 1, {kX}, {kX}));
  h.Add(Committed(2, 1, 20, 30, 0, kNoVersion, {kX}, {}));  // same session!
  CheckResult result = CheckSessionConsistency(h);
  EXPECT_FALSE(result.ok);
}

TEST(SessionConsistencyTest, ConcurrentOwnUpdateUnconstrained) {
  History h;
  h.Add(Committed(1, 1, 0, 10, 0, 1, {kX}, {kX}));
  // Submitted at 5, before txn 1's acknowledgment at 10.
  h.Add(Committed(2, 1, 5, 30, 0, kNoVersion, {kX}, {}));
  EXPECT_TRUE(CheckSessionConsistency(h).ok);
}

TEST(MonotonicSnapshotsTest, ObservableSnapshotRegressionRejected) {
  History h;
  // Some other session committed a write to X at version 4.
  h.Add(Committed(9, 9, 0, 1, 3, 4, {kX}, {kX}));
  // Session 1 observed table X at version 5, then went back to 3 —
  // missing the version-4 write to a table it reads: an observable
  // regression of its own observations.
  h.Add(Committed(1, 1, 2, 10, 5, kNoVersion, {kX}, {}));
  h.Add(Committed(2, 1, 20, 30, 3, kNoVersion, {kX}, {}));
  // Definition 2 is silent here (version 4 is not this session's commit),
  // but the implementation-level monotonicity property is violated.
  EXPECT_TRUE(CheckSessionConsistency(h).ok);
  EXPECT_FALSE(CheckMonotonicSessionSnapshots(h).ok);
}

TEST(MonotonicSnapshotsTest, UnobservableSnapshotRegressionAllowed) {
  History h;
  // Version 4 wrote only table Y; the session's second transaction reads
  // X, so going back from 5 to 3 is view-equivalent to an in-order
  // history (the fine-grained scheme's slack).
  h.Add(Committed(9, 9, 0, 1, 3, 4, {kY}, {kY}));
  h.Add(Committed(1, 1, 2, 10, 5, kNoVersion, {kX}, {}));
  h.Add(Committed(2, 1, 20, 30, 3, kNoVersion, {kX}, {}));
  EXPECT_TRUE(CheckMonotonicSessionSnapshots(h).ok);
}

TEST(MonotonicSnapshotsTest, PerTableHorizonsAreIndependent) {
  History h;
  // Writers on X (v1) and Y (v2), fully acknowledged early.
  h.Add(Committed(8, 8, 0, 1, 0, 1, {kX}, {kX}));
  h.Add(Committed(9, 9, 0, 1, 1, 2, {kY}, {kY}));
  // Session 1 read Y at snapshot 2, then reads X at snapshot 1: the X
  // horizon for the session is untouched by the Y read, so no regression.
  h.Add(Committed(1, 1, 2, 10, 2, kNoVersion, {kY}, {}));
  h.Add(Committed(2, 1, 20, 30, 1, kNoVersion, {kX}, {}));
  EXPECT_TRUE(CheckMonotonicSessionSnapshots(h).ok);
}

TEST(MonotonicSnapshotsTest, ConcurrentSameSessionUnconstrained) {
  History h;
  // The second transaction was submitted before the first was
  // acknowledged, so its snapshot is unconstrained.
  h.Add(Committed(8, 8, 0, 1, 0, 1, {kX}, {kX}));
  h.Add(Committed(1, 1, 2, 50, 1, kNoVersion, {kX}, {}));
  h.Add(Committed(2, 1, 10, 60, 0, kNoVersion, {kX}, {}));
  EXPECT_TRUE(CheckMonotonicSessionSnapshots(h).ok);
}

TEST(SessionConsistencyTest, OwnUpdateToUnaccessedTableMaySkip) {
  History h;
  // Session 1 updates table Y, then reads table X at an older snapshot:
  // allowed, because its own update is unobservable to the read.
  h.Add(Committed(1, 1, 0, 10, 0, 1, {kY}, {kY}));
  h.Add(Committed(2, 1, 20, 30, 0, kNoVersion, {kX}, {}));
  EXPECT_TRUE(CheckSessionConsistency(h).ok);
}

TEST(SessionConsistencyTest, IndependentSessionsPass) {
  History h;
  h.Add(Committed(1, 1, 0, 10, 5, kNoVersion, {kX}, {}));
  h.Add(Committed(2, 2, 20, 30, 3, kNoVersion, {kX}, {}));
  EXPECT_TRUE(CheckSessionConsistency(h).ok);
}

TEST(FirstCommitterWinsTest, ConcurrentOverlapViolates) {
  History h;
  // Both read snapshot 0, both write (kX, key 1), both commit.
  h.Add(Committed(1, 1, 0, 10, 0, 1, {kX}, {kX}));
  h.Add(Committed(2, 2, 0, 12, 0, 2, {kX}, {kX}));
  EXPECT_FALSE(CheckFirstCommitterWins(h).ok);
}

TEST(FirstCommitterWinsTest, SerialOverlapAllowed) {
  History h;
  h.Add(Committed(1, 1, 0, 10, 0, 1, {kX}, {kX}));
  // Second writer's snapshot (1) includes the first commit: not concurrent.
  h.Add(Committed(2, 2, 11, 20, 1, 2, {kX}, {kX}));
  EXPECT_TRUE(CheckFirstCommitterWins(h).ok);
}

TEST(FirstCommitterWinsTest, ConcurrentDisjointKeysAllowed) {
  History h;
  TxnRecord a = Committed(1, 1, 0, 10, 0, 1, {kX}, {kX});
  TxnRecord b = Committed(2, 2, 0, 12, 0, 2, {kX}, {kX});
  a.keys_written = {{kX, 1}};
  b.keys_written = {{kX, 2}};
  h.Add(a);
  h.Add(b);
  EXPECT_TRUE(CheckFirstCommitterWins(h).ok);
}

TEST(CommitTotalOrderTest, DenseVersionsPass) {
  History h;
  h.Add(Committed(1, 1, 0, 10, 0, 1, {kX}, {kX}));
  h.Add(Committed(2, 1, 11, 20, 1, 2, {kX}, {kX}));
  h.Add(Committed(3, 1, 21, 30, 2, 3, {kX}, {kX}));
  EXPECT_TRUE(CheckCommitTotalOrder(h).ok);
}

TEST(CommitTotalOrderTest, DuplicateVersionFails) {
  History h;
  h.Add(Committed(1, 1, 0, 10, 0, 1, {kX}, {kX}));
  h.Add(Committed(2, 1, 11, 20, 0, 1, {kX}, {kX}));
  EXPECT_FALSE(CheckCommitTotalOrder(h).ok);
}

TEST(CommitTotalOrderTest, GapFails) {
  History h;
  h.Add(Committed(1, 1, 0, 10, 0, 1, {kX}, {kX}));
  h.Add(Committed(2, 1, 11, 20, 1, 3, {kX}, {kX}));
  EXPECT_FALSE(CheckCommitTotalOrder(h).ok);
}

TEST(CommitTotalOrderTest, SnapshotBeyondLastCommitFails) {
  History h;
  h.Add(Committed(1, 1, 0, 10, 0, 1, {kX}, {kX}));
  h.Add(Committed(2, 1, 11, 20, 7, kNoVersion, {kX}, {}));
  EXPECT_FALSE(CheckCommitTotalOrder(h).ok);
}

TEST(CommitTotalOrderTest, SnapshotAtOrAfterOwnCommitFails) {
  History h;
  h.Add(Committed(1, 1, 0, 10, 1, 1, {kX}, {kX}));
  EXPECT_FALSE(CheckCommitTotalOrder(h).ok);
}

TEST(CheckAllTest, MergesAndRespectsExpectStrong) {
  History h;  // the H1-style violation
  h.Add(Committed(1, 1, 0, 10, 0, 1, {kX}, {kX}));
  h.Add(Committed(2, 2, 20, 30, 0, kNoVersion, {kX}, {}));
  EXPECT_FALSE(CheckAll(h, /*expect_strong=*/true).ok);
  // Under session-only expectations the same history is fine.
  EXPECT_TRUE(CheckAll(h, /*expect_strong=*/false).ok);
}

TEST(CheckAllTest, EmptyHistoryPasses) {
  History h;
  EXPECT_TRUE(CheckAll(h, true).ok);
}

TEST(HistoryTest, CommittedUpdatesSortedByVersion) {
  History h;
  h.Add(Committed(1, 1, 0, 10, 2, 3, {kX}, {kX}));
  h.Add(Committed(2, 1, 0, 10, 0, 1, {kX}, {kX}));
  h.Add(Committed(3, 1, 0, 10, 1, 2, {kX}, {kX}));
  TxnRecord aborted;
  aborted.id = 4;
  aborted.committed = false;
  h.Add(aborted);
  auto updates = h.CommittedUpdates();
  ASSERT_EQ(updates.size(), 3u);
  EXPECT_EQ(updates[0]->commit_version, 1);
  EXPECT_EQ(updates[2]->commit_version, 3);
}

TEST(HistoryTest, RecordToStringMentionsOutcome) {
  TxnRecord r = Committed(1, 1, 0, 10, 0, 1, {kX}, {kX});
  EXPECT_NE(r.ToString().find("committed @1"), std::string::npos);
  r.committed = false;
  EXPECT_NE(r.ToString().find("aborted"), std::string::npos);
}

}  // namespace
}  // namespace screp
