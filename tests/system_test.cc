#include "replication/system.h"
#include "runtime/sim_runtime.h"

#include <gtest/gtest.h>

#include "consistency/checker.h"

namespace screp {
namespace {

/// Two tables, a handful of rows, three transaction types.
Status BuildTinySchema(Database* db) {
  SCREP_ASSIGN_OR_RETURN(
      TableId a, db->CreateTable("alpha", Schema({{"id", ValueType::kInt64},
                                                  {"val", ValueType::kInt64}})));
  SCREP_ASSIGN_OR_RETURN(
      TableId b, db->CreateTable("beta", Schema({{"id", ValueType::kInt64},
                                                 {"val", ValueType::kInt64}})));
  for (int64_t k = 0; k < 20; ++k) {
    SCREP_RETURN_NOT_OK(db->BulkLoad(a, {Value(k), Value(0)}));
    SCREP_RETURN_NOT_OK(db->BulkLoad(b, {Value(k), Value(0)}));
  }
  return Status::OK();
}

Status DefineTinyTxns(const Database& db, sql::TransactionRegistry* reg) {
  auto add = [&](const char* name,
                 std::initializer_list<const char*> texts) -> Status {
    sql::PreparedTransaction txn;
    txn.name = name;
    for (const char* text : texts) {
      SCREP_ASSIGN_OR_RETURN(auto stmt,
                             sql::PreparedStatement::Prepare(db, text));
      txn.statements.push_back(std::move(stmt));
    }
    reg->Register(std::move(txn));
    return Status::OK();
  };
  SCREP_RETURN_NOT_OK(add("read_alpha",
                          {"SELECT val FROM alpha WHERE id = ?"}));
  SCREP_RETURN_NOT_OK(
      add("write_alpha", {"UPDATE alpha SET val = val + ? WHERE id = ?"}));
  SCREP_RETURN_NOT_OK(
      add("write_beta", {"UPDATE beta SET val = val + ? WHERE id = ?"}));
  return Status::OK();
}

class SystemTest : public ::testing::Test {
 protected:
  void Build(ConsistencyLevel level, int replicas) {
    responses_.clear();
    history_.Clear();
    sim_ = std::make_unique<Simulator>();
    rt_ = std::make_unique<runtime::SimRuntime>(sim_.get());
    SystemConfig config;
    config.replica_count = replicas;
    config.level = level;
    auto system = ReplicatedSystem::Create(rt_.get(), config,
                                           BuildTinySchema, DefineTinyTxns);
    ASSERT_TRUE(system.ok()) << system.status().ToString();
    system_ = std::move(system).value();
    system_->SetHistory(&history_);
    system_->SetClientCallback(
        [this](const TxnResponse& r) { responses_.push_back(r); });
  }

  void Submit(const char* type, SessionId session,
              std::vector<std::vector<Value>> params) {
    TxnRequest req;
    req.txn_id = system_->NextTxnId();
    req.type = *system_->registry().Find(type);
    req.session = session;
    req.client_id = static_cast<int>(session);
    req.params = std::move(params);
    system_->Submit(std::move(req));
  }

  /// All replicas at the same version with identical table contents.
  void ExpectReplicasConverged() {
    const DbVersion version = system_->replica(0)->db()->CommittedVersion();
    for (int r = 1; r < system_->replica_count(); ++r) {
      EXPECT_EQ(system_->replica(r)->db()->CommittedVersion(), version)
          << "replica " << r;
    }
    const size_t tables = system_->replica(0)->db()->TableCount();
    for (size_t t = 0; t < tables; ++t) {
      std::vector<std::pair<int64_t, std::string>> reference;
      system_->replica(0)->db()->table(static_cast<TableId>(t))->Scan(
          version, [&](int64_t key, const Row& row) {
            reference.emplace_back(key, RowToString(row));
            return true;
          });
      for (int r = 1; r < system_->replica_count(); ++r) {
        std::vector<std::pair<int64_t, std::string>> other;
        system_->replica(r)->db()->table(static_cast<TableId>(t))->Scan(
            version, [&](int64_t key, const Row& row) {
              other.emplace_back(key, RowToString(row));
              return true;
            });
        EXPECT_EQ(other, reference) << "table " << t << " replica " << r;
      }
    }
  }

  std::unique_ptr<Simulator> sim_;
  std::unique_ptr<runtime::SimRuntime> rt_;
  std::unique_ptr<ReplicatedSystem> system_;
  History history_;
  std::vector<TxnResponse> responses_;
};

TEST_F(SystemTest, SingleUpdatePropagatesToAllReplicas) {
  Build(ConsistencyLevel::kLazyCoarse, 3);
  Submit("write_alpha", 1, {{Value(42), Value(5)}});
  sim_->RunAll();
  ASSERT_EQ(responses_.size(), 1u);
  EXPECT_EQ(responses_[0].outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(responses_[0].commit_version, 1);
  ExpectReplicasConverged();
  auto alpha = system_->replica(2)->db()->FindTable("alpha");
  ASSERT_TRUE(alpha.ok());
  auto row = system_->replica(2)->db()->table(*alpha)->Get(5, 1);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[1].AsInt(), 42);
}

TEST_F(SystemTest, ManyUpdatesConvergeUnderEveryLevel) {
  for (ConsistencyLevel level : kAllConsistencyLevels) {
    SCOPED_TRACE(ConsistencyLevelName(level));
    Build(level, 4);
    for (int i = 0; i < 40; ++i) {
      Submit(i % 2 == 0 ? "write_alpha" : "write_beta",
             static_cast<SessionId>(i % 5 + 1),
             {{Value(1), Value(i % 20)}});
    }
    sim_->RunAll();
    EXPECT_EQ(responses_.size(), 40u);
    ExpectReplicasConverged();
    // Commit versions are a dense total order.
    EXPECT_TRUE(CheckCommitTotalOrder(history_).ok);
  }
}

TEST_F(SystemTest, ConflictingConcurrentUpdatesOneAborts) {
  Build(ConsistencyLevel::kLazyCoarse, 2);
  // Two clients update the same key at the same instant on different
  // replicas (least-active routing sends them to different replicas).
  Submit("write_alpha", 1, {{Value(1), Value(7)}});
  Submit("write_alpha", 2, {{Value(2), Value(7)}});
  sim_->RunAll();
  ASSERT_EQ(responses_.size(), 2u);
  int committed = 0, aborted = 0;
  for (const auto& r : responses_) {
    if (r.outcome == TxnOutcome::kCommitted) ++committed;
    if (r.outcome == TxnOutcome::kCertificationAbort ||
        r.outcome == TxnOutcome::kEarlyAbort) {
      ++aborted;
    }
  }
  EXPECT_EQ(committed, 1);
  EXPECT_EQ(aborted, 1);
  ExpectReplicasConverged();
}

TEST_F(SystemTest, NonConflictingConcurrentUpdatesBothCommit) {
  Build(ConsistencyLevel::kLazyCoarse, 2);
  Submit("write_alpha", 1, {{Value(1), Value(3)}});
  Submit("write_alpha", 2, {{Value(2), Value(4)}});
  sim_->RunAll();
  for (const auto& r : responses_) {
    EXPECT_EQ(r.outcome, TxnOutcome::kCommitted);
  }
  ExpectReplicasConverged();
}

TEST_F(SystemTest, ReadAfterAcknowledgedWriteSeesItUnderStrongLevels) {
  for (ConsistencyLevel level :
       {ConsistencyLevel::kEager, ConsistencyLevel::kLazyCoarse,
        ConsistencyLevel::kLazyFine}) {
    SCOPED_TRACE(ConsistencyLevelName(level));
    Build(level, 3);
    // Session 1 writes; once acknowledged, session 2 reads.
    Submit("write_alpha", 1, {{Value(99), Value(0)}});
    sim_->RunAll();
    ASSERT_EQ(responses_.size(), 1u);
    ASSERT_EQ(responses_[0].outcome, TxnOutcome::kCommitted);
    Submit("read_alpha", 2, {{Value(0)}});
    sim_->RunAll();
    ASSERT_EQ(responses_.size(), 2u);
    // The read began at a snapshot that includes the write.
    EXPECT_GE(responses_[1].snapshot, responses_[0].commit_version);
  }
}

TEST_F(SystemTest, HistoryPassesCheckersUnderStrongLevels) {
  for (ConsistencyLevel level :
       {ConsistencyLevel::kEager, ConsistencyLevel::kLazyCoarse,
        ConsistencyLevel::kLazyFine}) {
    SCOPED_TRACE(ConsistencyLevelName(level));
    Build(level, 3);
    for (int i = 0; i < 30; ++i) {
      if (i % 3 == 0) {
        Submit("read_alpha", static_cast<SessionId>(i % 4 + 1),
               {{Value(i % 20)}});
      } else {
        Submit("write_alpha", static_cast<SessionId>(i % 4 + 1),
               {{Value(1), Value(i % 20)}});
      }
    }
    sim_->RunAll();
    CheckResult result = CheckAll(history_, /*expect_strong=*/true);
    EXPECT_TRUE(result.ok) << result.ToString();
    EXPECT_GT(result.examined, 0);
  }
}

TEST_F(SystemTest, SessionLevelStillSessionConsistent) {
  Build(ConsistencyLevel::kSession, 3);
  for (int i = 0; i < 30; ++i) {
    Submit(i % 2 == 0 ? "write_alpha" : "read_alpha",
           static_cast<SessionId>(i % 3 + 1),
           i % 2 == 0
               ? std::vector<std::vector<Value>>{{Value(1), Value(i % 20)}}
               : std::vector<std::vector<Value>>{{Value(i % 20)}});
  }
  sim_->RunAll();
  CheckResult result = CheckAll(history_, /*expect_strong=*/false);
  EXPECT_TRUE(result.ok) << result.ToString();
}

TEST_F(SystemTest, EagerResponseWaitsForAllReplicas) {
  Build(ConsistencyLevel::kEager, 4);
  Submit("write_alpha", 1, {{Value(5), Value(1)}});
  sim_->RunAll();
  ASSERT_EQ(responses_.size(), 1u);
  // By the time the client heard back, every replica had the update.
  EXPECT_GT(responses_[0].stages.global, 0);
  ExpectReplicasConverged();
}

TEST_F(SystemTest, SingleReplicaWorks) {
  Build(ConsistencyLevel::kLazyCoarse, 1);
  Submit("write_alpha", 1, {{Value(5), Value(1)}});
  Submit("read_alpha", 1, {{Value(1)}});
  sim_->RunAll();
  EXPECT_EQ(responses_.size(), 2u);
  for (const auto& r : responses_) {
    EXPECT_EQ(r.outcome, TxnOutcome::kCommitted);
  }
}

TEST_F(SystemTest, CreateRejectsZeroReplicas) {
  SystemConfig config;
  config.replica_count = 0;
  Simulator sim;
  runtime::SimRuntime rt{&sim};
  auto result =
      ReplicatedSystem::Create(&rt, config, BuildTinySchema, DefineTinyTxns);
  EXPECT_FALSE(result.ok());
}

TEST_F(SystemTest, CertifierWalMatchesCommittedVersions) {
  Build(ConsistencyLevel::kLazyCoarse, 2);
  for (int i = 0; i < 10; ++i) {
    Submit("write_alpha", 1, {{Value(1), Value(i)}});
  }
  sim_->RunAll();
  std::vector<WriteSet> log;
  ASSERT_TRUE(system_->certifier()->wal().ReadAll(&log).ok());
  EXPECT_EQ(static_cast<DbVersion>(log.size()),
            system_->certifier()->CommitVersion());
  for (size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(log[i].commit_version, static_cast<DbVersion>(i + 1));
  }
}

}  // namespace
}  // namespace screp
