// Unit tests for the metrics collector and the closed-loop client driver.
#include "runtime/sim_runtime.h"

#include <gtest/gtest.h>

#include "workload/experiment.h"
#include "workload/micro.h"

namespace screp {
namespace {

TxnResponse CommittedResponse(SimTime submit, bool read_only,
                              StageTimes stages = {}) {
  TxnResponse r;
  r.outcome = TxnOutcome::kCommitted;
  r.read_only = read_only;
  r.submit_time = submit;
  r.stages = stages;
  return r;
}

TEST(MetricsTest, WarmupDiscarded) {
  MetricsCollector metrics(Seconds(1));
  metrics.Record(CommittedResponse(Millis(100), true), Millis(200), false);
  metrics.Record(CommittedResponse(Seconds(1.1), true), Seconds(1.2),
                 false);
  metrics.Finish(Seconds(2));
  EXPECT_EQ(metrics.committed(), 1);
  EXPECT_DOUBLE_EQ(metrics.Throughput(), 1.0);
}

TEST(MetricsTest, OutcomeCounters) {
  MetricsCollector metrics(0);
  TxnResponse r;
  r.outcome = TxnOutcome::kCertificationAbort;
  metrics.Record(r, 1, false);
  r.outcome = TxnOutcome::kEarlyAbort;
  metrics.Record(r, 2, false);
  metrics.Record(r, 3, false);
  r.outcome = TxnOutcome::kExecutionError;
  metrics.Record(r, 4, false);
  r.outcome = TxnOutcome::kReplicaFailure;
  metrics.Record(r, 5, false);
  EXPECT_EQ(metrics.cert_aborts(), 1);
  EXPECT_EQ(metrics.early_aborts(), 2);
  EXPECT_EQ(metrics.exec_errors(), 1);
  EXPECT_EQ(metrics.replica_failures(), 1);
  EXPECT_EQ(metrics.committed(), 0);
}

TEST(MetricsTest, StageMeansSplitByClass) {
  MetricsCollector metrics(0);
  StageTimes read_stages;
  read_stages.version = Millis(2);
  read_stages.queries = Millis(4);
  metrics.Record(CommittedResponse(0, true, read_stages), Millis(10),
                 false);
  StageTimes update_stages;
  update_stages.certify = Millis(6);
  update_stages.sync = Millis(8);
  metrics.Record(CommittedResponse(0, false, update_stages), Millis(20),
                 false);
  EXPECT_EQ(metrics.committed(), 2);
  EXPECT_EQ(metrics.committed_updates(), 1);
  EXPECT_EQ(metrics.committed_readonly(), 1);
  // certify/sync recorded only for the update transaction.
  EXPECT_DOUBLE_EQ(metrics.certify_stage().mean(), 6000.0);
  EXPECT_DOUBLE_EQ(metrics.sync_stage().mean(), 8000.0);
  EXPECT_EQ(metrics.certify_stage().count(), 1);
}

TEST(MetricsTest, SyncDelayDefinitionPerConfiguration) {
  // Non-eager: version stage of every transaction; eager: global stage of
  // update transactions (the Fig. 6 definition).
  MetricsCollector lazy(0);
  StageTimes stages;
  stages.version = Millis(5);
  stages.global = Millis(50);
  lazy.Record(CommittedResponse(0, false, stages), 1, /*eager=*/false);
  EXPECT_DOUBLE_EQ(lazy.MeanSyncDelayMs(), 5.0);

  MetricsCollector eager(0);
  eager.Record(CommittedResponse(0, false, stages), 1, /*eager=*/true);
  EXPECT_DOUBLE_EQ(eager.MeanSyncDelayMs(), 50.0);
  // Eager read-only transactions contribute nothing.
  eager.Record(CommittedResponse(0, true, stages), 2, /*eager=*/true);
  EXPECT_DOUBLE_EQ(eager.MeanSyncDelayMs(), 50.0);
}

TEST(MetricsTest, TimelineBuckets) {
  MetricsCollector metrics(0);
  metrics.EnableTimeline(Millis(100));
  metrics.Record(CommittedResponse(Millis(10), true), Millis(50), false);
  metrics.Record(CommittedResponse(Millis(120), true), Millis(150), false);
  TxnResponse failure;
  failure.outcome = TxnOutcome::kReplicaFailure;
  metrics.Record(failure, Millis(160), false);
  ASSERT_EQ(metrics.timeline().size(), 2u);
  EXPECT_EQ(metrics.timeline()[0].committed, 1);
  EXPECT_EQ(metrics.timeline()[1].committed, 1);
  EXPECT_EQ(metrics.timeline()[1].failures, 1);
  EXPECT_NEAR(metrics.timeline()[0].MeanResponseMs(), 40.0, 1e-9);
}

TEST(MetricsTest, TimelineDisabledByDefault) {
  MetricsCollector metrics(0);
  metrics.Record(CommittedResponse(0, true), 1, false);
  EXPECT_TRUE(metrics.timeline().empty());
}

TEST(MetricsTest, SummaryMentionsThroughput) {
  MetricsCollector metrics(0);
  metrics.Record(CommittedResponse(0, true), Millis(10), false);
  metrics.Finish(Seconds(1));
  EXPECT_NE(metrics.Summary().find("throughput"), std::string::npos);
}

// ---- Client driver --------------------------------------------------------

class ClientDriverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MicroConfig micro;
    micro.rows_per_table = 50;
    micro.update_fraction = 1.0;
    workload_ = std::make_unique<MicroWorkload>(micro);
    SystemConfig config;
    config.replica_count = 2;
    auto system = ReplicatedSystem::Create(
        &rt_, config,
        [this](Database* db) { return workload_->BuildSchema(db); },
        [this](const Database& db, sql::TransactionRegistry* reg) {
          return workload_->DefineTransactions(db, reg);
        });
    ASSERT_TRUE(system.ok());
    system_ = std::move(system).value();
  }

  std::unique_ptr<ClientDriver> MakeClient(ClientConfig config,
                                           int client_id = 0) {
    return std::make_unique<ClientDriver>(
        system_.get(), &metrics_,
        workload_->CreateGenerator(system_->registry(), client_id, Rng(5)),
        client_id, config, Rng(7));
  }

  Simulator sim_;
  runtime::SimRuntime rt_{&sim_};
  std::unique_ptr<MicroWorkload> workload_;
  std::unique_ptr<ReplicatedSystem> system_;
  MetricsCollector metrics_{0};
};

TEST_F(ClientDriverTest, ClosedLoopSubmitsSequentially) {
  auto client = MakeClient(ClientConfig{});
  system_->SetClientCallback(
      [&client](const TxnResponse& r) { client->OnResponse(r); });
  client->Start();
  sim_.RunUntil(Seconds(1));
  client->Stop();
  sim_.RunAll();
  // Back-to-back: many transactions, one at a time; the final in-flight
  // transaction may complete after Stop() and go unrecorded.
  EXPECT_GT(client->submitted(), 20);
  EXPECT_GE(metrics_.committed(), client->submitted() - 1);
  EXPECT_LE(metrics_.committed(), client->submitted());
}

TEST_F(ClientDriverTest, ThinkTimeSlowsTheLoop) {
  auto fast = MakeClient(ClientConfig{});
  system_->SetClientCallback(
      [&fast](const TxnResponse& r) { fast->OnResponse(r); });
  fast->Start();
  sim_.RunUntil(Seconds(1));
  fast->Stop();
  sim_.RunAll();
  const int64_t fast_count = fast->submitted();

  // Fresh system for the slow client (the simulator keeps running, so
  // use a window relative to the current virtual time).
  SetUp();
  ClientConfig slow_config;
  slow_config.mean_think_time = Millis(100);
  auto slow = MakeClient(slow_config);
  system_->SetClientCallback(
      [&slow](const TxnResponse& r) { slow->OnResponse(r); });
  slow->Start();
  sim_.RunUntil(sim_.Now() + Seconds(1));
  slow->Stop();
  sim_.RunAll();
  EXPECT_LT(slow->submitted(), fast_count / 2);
  EXPECT_GT(slow->submitted(), 2);
}

TEST_F(ClientDriverTest, StopPreventsFurtherSubmissions) {
  auto client = MakeClient(ClientConfig{});
  system_->SetClientCallback(
      [&client](const TxnResponse& r) { client->OnResponse(r); });
  client->Start();
  sim_.RunUntil(Millis(200));
  client->Stop();
  const int64_t at_stop = client->submitted();
  sim_.RunAll();
  // At most the in-flight transaction completes; nothing new starts.
  EXPECT_LE(client->submitted(), at_stop);
}

TEST_F(ClientDriverTest, SessionIdsAreStablePerClient) {
  auto a = MakeClient(ClientConfig{}, 3);
  EXPECT_EQ(a->client_id(), 3);
  EXPECT_EQ(a->session(), 4u);  // client_id + 1 (0 is reserved)
}

}  // namespace
}  // namespace screp
