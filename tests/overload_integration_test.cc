// Overload-protection integration tests: LB admission control (window +
#include "runtime/sim_runtime.h"
// bounded queue), certifier intake backpressure, credit-based refresh
// flow control, client request timeouts with jittered exponential
// backoff, and the all-replicas-down path — each checked end to end and
// (where a full run is involved) under the online consistency auditor.

#include <gtest/gtest.h>

#include <algorithm>

#include "workload/experiment.h"
#include "workload/micro.h"

namespace screp {
namespace {

MicroConfig SmallMicro(double update_fraction) {
  MicroConfig config;
  config.rows_per_table = 200;
  config.update_fraction = update_fraction;
  return config;
}

ExperimentConfig ShortRun(ConsistencyLevel level, int replicas,
                          int clients) {
  ExperimentConfig config;
  config.system.level = level;
  config.system.replica_count = replicas;
  config.client_count = clients;
  config.warmup = Seconds(0.5);
  config.duration = Seconds(3);
  config.seed = 7;
  config.audit = true;
  return config;
}

// ---- RetryBackoff ---------------------------------------------------------

TEST(RetryBackoffTest, LegacyFixedDelayDrawsNoRandomness) {
  ClientConfig config;  // backoff_base = 0: the legacy path
  config.retry_delay = Millis(3);
  Rng used(42), untouched(42);
  for (int attempt = 1; attempt <= 5; ++attempt) {
    EXPECT_EQ(RetryBackoff(config, attempt, &used), Millis(3));
  }
  // The legacy path must not consume the client's random stream — runs
  // configured without backoff stay byte-identical to older builds.
  EXPECT_EQ(used.Next(), untouched.Next());
}

TEST(RetryBackoffTest, GrowsExponentiallyWithinJitterBounds) {
  ClientConfig config;
  config.backoff_base = Millis(1);
  config.backoff_cap = Millis(64);
  config.backoff_jitter = 0.5;
  Rng rng(1);
  for (int attempt = 1; attempt <= 12; ++attempt) {
    const SimTime nominal =
        std::min<SimTime>(Millis(64), Millis(1) << (attempt - 1));
    const SimTime delay = RetryBackoff(config, attempt, &rng);
    EXPECT_GE(delay, nominal / 2) << "attempt " << attempt;
    EXPECT_LE(delay, nominal + nominal / 2) << "attempt " << attempt;
  }
}

TEST(RetryBackoffTest, CapsAndJitterFreeWhenConfigured) {
  ClientConfig config;
  config.backoff_base = Millis(2);
  config.backoff_cap = Millis(10);
  config.backoff_jitter = 0;  // deterministic
  Rng rng(9);
  EXPECT_EQ(RetryBackoff(config, 1, &rng), Millis(2));
  EXPECT_EQ(RetryBackoff(config, 2, &rng), Millis(4));
  EXPECT_EQ(RetryBackoff(config, 3, &rng), Millis(8));
  EXPECT_EQ(RetryBackoff(config, 4, &rng), Millis(10));  // capped
  EXPECT_EQ(RetryBackoff(config, 100, &rng), Millis(10));
}

TEST(RetryBackoffTest, DeterministicGivenSeed) {
  ClientConfig config;
  config.backoff_base = Millis(1);
  Rng a(5), b(5);
  for (int attempt = 1; attempt <= 8; ++attempt) {
    EXPECT_EQ(RetryBackoff(config, attempt, &a),
              RetryBackoff(config, attempt, &b));
  }
}

// ---- All replicas down ----------------------------------------------------

TEST(OverloadIntegrationTest, AllReplicasDownFailsRequestsWithoutAbort) {
  Simulator sim;
  runtime::SimRuntime rt{&sim};
  SystemConfig config;
  config.replica_count = 3;
  config.level = ConsistencyLevel::kLazyCoarse;
  MicroWorkload workload(SmallMicro(1.0));
  auto system_or = ReplicatedSystem::Create(
      &rt, config,
      [&workload](Database* db) { return workload.BuildSchema(db); },
      [&workload](const Database& db, sql::TransactionRegistry* reg) {
        return workload.DefineTransactions(db, reg);
      });
  ASSERT_TRUE(system_or.ok());
  auto system = std::move(system_or).value();
  std::vector<TxnResponse> responses;
  system->SetClientCallback(
      [&](const TxnResponse& r) { responses.push_back(r); });

  for (ReplicaId r = 0; r < 3; ++r) system->CrashReplica(r);
  sim.RunAll();
  responses.clear();

  // A request with no live replica anywhere must come back as a failure
  // — the LB's state is soft, so aborting the process would turn a
  // transient total outage into a permanent one.
  for (int64_t k = 0; k < 4; ++k) {
    TxnRequest req;
    req.txn_id = system->NextTxnId();
    req.type = *system->registry().Find("update_item0");
    req.session = 1;
    req.params = {{Value(1), Value(k)}};
    system->Submit(std::move(req));
  }
  sim.RunAll();
  ASSERT_EQ(responses.size(), 4u);
  for (const auto& r : responses) {
    EXPECT_EQ(r.outcome, TxnOutcome::kReplicaFailure);
    EXPECT_EQ(r.replica, kNoReplica);
  }
  EXPECT_EQ(system->load_balancer()->unroutable_count(), 4);

  // One replica recovering makes the system serve again.
  system->RecoverReplica(1);
  sim.RunAll();
  responses.clear();
  TxnRequest req;
  req.txn_id = system->NextTxnId();
  req.type = *system->registry().Find("update_item0");
  req.session = 1;
  req.params = {{Value(1), Value(99)}};
  system->Submit(std::move(req));
  sim.RunAll();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].outcome, TxnOutcome::kCommitted);
}

// ---- Admission control ----------------------------------------------------

TEST(OverloadIntegrationTest, AdmissionSheddingAuditCleanAtAllLevels) {
  MicroWorkload workload(SmallMicro(0.25));
  for (ConsistencyLevel level : kAllConsistencyLevels) {
    SCOPED_TRACE(ConsistencyLevelName(level));
    // 64 back-to-back clients against 2 replicas * window 4 + queue 8:
    // permanently oversubscribed, so admission must shed throughout.
    ExperimentConfig config = ShortRun(level, 2, 64);
    config.system.admission.max_outstanding_per_replica = 4;
    config.system.admission.admission_queue_limit = 8;
    config.client.backoff_base = Millis(1);
    config.client.backoff_cap = Millis(16);
    auto result = RunExperiment(workload, config);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_GT(result->committed, 0);
    EXPECT_GT(result->lb_shed, 0);
    EXPECT_GT(result->overloaded, 0);  // shed responses reached clients
    EXPECT_LE(result->peak_admission_queue, 8);
    EXPECT_TRUE(result->audit.ok) << result->audit.ToString();
  }
}

// ---- Certifier intake backpressure ----------------------------------------

TEST(OverloadIntegrationTest, CertifierIntakeBoundShedsToClients) {
  MicroWorkload workload(SmallMicro(1.0));
  // A deliberately slow certifier with a tiny intake bound and no LB
  // window in front: the flood reaches certification and must be refused
  // there, not queued without limit.
  ExperimentConfig config = ShortRun(ConsistencyLevel::kLazyCoarse, 2, 32);
  config.system.certifier.certify_cpu_time = Millis(2);
  config.system.certifier.max_intake = 4;
  config.client.backoff_base = Millis(1);
  auto result = RunExperiment(workload, config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->committed, 0);
  EXPECT_GT(result->certifier_shed, 0);
  EXPECT_GT(result->overloaded, 0);
  EXPECT_TRUE(result->audit.ok) << result->audit.ToString();
}

// ---- Credit-based refresh flow control ------------------------------------

TEST(OverloadIntegrationTest, RefreshCreditsBoundPendingWritesets) {
  MicroWorkload workload(SmallMicro(1.0));
  constexpr size_t kCredits = 8;
  constexpr int kWindow = 4;
  ExperimentConfig config = ShortRun(ConsistencyLevel::kSession, 3, 24);
  config.system.admission.max_outstanding_per_replica = kWindow;
  config.system.certifier.refresh_credit_window = kCredits;
  config.client.backoff_base = Millis(1);
  auto bounded = RunExperiment(workload, config);
  ASSERT_TRUE(bounded.ok()) << bounded.status().ToString();
  EXPECT_GT(bounded->committed, 0);
  EXPECT_GT(bounded->peak_pending_writesets, 0);
  // Per replica: at most kCredits credited refreshes in flight plus its
  // own local applies (bounded by the admission window), with a little
  // slack for decisions already queued at the proxy.
  EXPECT_LE(bounded->peak_pending_writesets,
            static_cast<int64_t>(kCredits) + kWindow + 4);
  EXPECT_TRUE(bounded->audit.ok) << bounded->audit.ToString();

  // Same run without credits: the apply backlog is allowed to grow past
  // the credited bound (the regression the credits exist to prevent).
  config.system.certifier.refresh_credit_window = 0;
  auto unbounded = RunExperiment(workload, config);
  ASSERT_TRUE(unbounded.ok());
  EXPECT_GE(unbounded->peak_pending_writesets,
            bounded->peak_pending_writesets);
}

// ---- Request timeouts + backoff across a crash ----------------------------

TEST(OverloadIntegrationTest, TimeoutBackoffAcrossCrashAuditClean) {
  MicroWorkload workload(SmallMicro(0.25));
  for (ConsistencyLevel level : kAllConsistencyLevels) {
    SCOPED_TRACE(ConsistencyLevelName(level));
    ExperimentConfig config = ShortRun(level, 2, 24);
    config.duration = Seconds(4);
    // Tight enough that loaded-response tails cross it: timed-out
    // attempts are abandoned client-side and resubmitted under fresh
    // transaction ids, racing their own stale responses.
    config.client.request_timeout = Millis(25);
    config.client.backoff_base = Millis(1);
    config.client.backoff_cap = Millis(16);
    config.faults.push_back(FaultEvent{1, Seconds(1.5), Seconds(2.5)});
    auto result = RunExperiment(workload, config);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_GT(result->committed, 0);
    EXPECT_GT(result->client_timeouts, 0);
    EXPECT_TRUE(result->audit.ok) << result->audit.ToString();
  }
}

// ---- Session teardown -----------------------------------------------------

TEST(OverloadIntegrationTest, SessionCountReturnsToZeroAfterStop) {
  Simulator sim;
  runtime::SimRuntime rt{&sim};
  SystemConfig config;
  config.replica_count = 2;
  config.level = ConsistencyLevel::kSession;
  MicroConfig micro = SmallMicro(1.0);
  micro.rows_per_table = 50;
  MicroWorkload workload(micro);
  auto system_or = ReplicatedSystem::Create(
      &rt, config,
      [&workload](Database* db) { return workload.BuildSchema(db); },
      [&workload](const Database& db, sql::TransactionRegistry* reg) {
        return workload.DefineTransactions(db, reg);
      });
  ASSERT_TRUE(system_or.ok());
  auto system = std::move(system_or).value();

  MetricsCollector metrics(0);
  std::vector<std::unique_ptr<ClientDriver>> clients;
  for (int c = 0; c < 4; ++c) {
    clients.push_back(std::make_unique<ClientDriver>(
        system.get(), &metrics,
        workload.CreateGenerator(system->registry(), c, Rng(c + 1)), c,
        ClientConfig{}, Rng(c + 100)));
  }
  system->SetClientCallback([&clients](const TxnResponse& r) {
    clients[static_cast<size_t>(r.client_id)]->OnResponse(r);
  });
  for (auto& client : clients) client->Start();
  sim.RunUntil(Seconds(1));
  // Every client has committed, so every session is tracked.
  EXPECT_EQ(system->load_balancer()->policy().sessions().session_count(),
            4u);
  for (auto& client : clients) client->Stop();
  sim.RunAll();
  // Stopping ends the sessions once their last response drains: the
  // tracker must not leak one entry per client that ever connected.
  EXPECT_EQ(system->load_balancer()->policy().sessions().session_count(),
            0u);
}

}  // namespace
}  // namespace screp
