#include "storage/table.h"

#include <gtest/gtest.h>

namespace screp {
namespace {

Schema KvSchema() {
  return Schema({{"id", ValueType::kInt64}, {"val", ValueType::kInt64}});
}

TEST(TableTest, GetMissingKeyIsNotFound) {
  Table t(0, "t", KvSchema());
  EXPECT_TRUE(t.Get(1, 0).status().IsNotFound());
  EXPECT_FALSE(t.Exists(1, 0));
}

TEST(TableTest, InstallAndGet) {
  Table t(0, "t", KvSchema());
  t.Install(1, 1, false, {Value(1), Value(10)});
  Result<Row> row = t.Get(1, 1);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[1].AsInt(), 10);
}

TEST(TableTest, SnapshotVisibility) {
  Table t(0, "t", KvSchema());
  t.Install(1, 5, false, {Value(1), Value(10)});
  // Before version 5 the row does not exist.
  EXPECT_TRUE(t.Get(1, 4).status().IsNotFound());
  EXPECT_TRUE(t.Get(1, 5).ok());
  EXPECT_TRUE(t.Get(1, 100).ok());
}

TEST(TableTest, VersionChainsReturnNewestVisible) {
  Table t(0, "t", KvSchema());
  t.Install(1, 1, false, {Value(1), Value(10)});
  t.Install(1, 3, false, {Value(1), Value(30)});
  t.Install(1, 7, false, {Value(1), Value(70)});
  EXPECT_EQ((*t.Get(1, 1))[1].AsInt(), 10);
  EXPECT_EQ((*t.Get(1, 2))[1].AsInt(), 10);
  EXPECT_EQ((*t.Get(1, 3))[1].AsInt(), 30);
  EXPECT_EQ((*t.Get(1, 6))[1].AsInt(), 30);
  EXPECT_EQ((*t.Get(1, 7))[1].AsInt(), 70);
}

TEST(TableTest, DeleteTombstones) {
  Table t(0, "t", KvSchema());
  t.Install(1, 1, false, {Value(1), Value(10)});
  t.Install(1, 2, true, {});
  EXPECT_TRUE(t.Get(1, 1).ok());
  EXPECT_TRUE(t.Get(1, 2).status().IsNotFound());
  EXPECT_FALSE(t.Exists(1, 2));
  // Re-insert after delete.
  t.Install(1, 3, false, {Value(1), Value(99)});
  EXPECT_EQ((*t.Get(1, 3))[1].AsInt(), 99);
}

TEST(TableTest, SameVersionOverwriteWins) {
  Table t(0, "t", KvSchema());
  t.Install(1, 1, false, {Value(1), Value(10)});
  t.Install(1, 1, false, {Value(1), Value(11)});
  EXPECT_EQ((*t.Get(1, 1))[1].AsInt(), 11);
  EXPECT_EQ(t.VersionCount(), 1u);
}

TEST(TableDeathTest, OutOfOrderInstallAborts) {
  Table t(0, "t", KvSchema());
  t.Install(1, 5, false, {Value(1), Value(10)});
  EXPECT_DEATH(t.Install(1, 4, false, {Value(1), Value(9)}),
               "out-of-order");
}

TEST(TableTest, ScanInKeyOrderAtSnapshot) {
  Table t(0, "t", KvSchema());
  t.Install(3, 1, false, {Value(3), Value(30)});
  t.Install(1, 1, false, {Value(1), Value(10)});
  t.Install(2, 2, false, {Value(2), Value(20)});
  std::vector<int64_t> keys;
  t.Scan(1, [&](int64_t key, const Row&) {
    keys.push_back(key);
    return true;
  });
  EXPECT_EQ(keys, (std::vector<int64_t>{1, 3}));  // key 2 not visible at v1
  keys.clear();
  t.Scan(2, [&](int64_t key, const Row&) {
    keys.push_back(key);
    return true;
  });
  EXPECT_EQ(keys, (std::vector<int64_t>{1, 2, 3}));
}

TEST(TableTest, ScanEarlyStop) {
  Table t(0, "t", KvSchema());
  for (int64_t k = 0; k < 10; ++k) {
    t.Install(k, 1, false, {Value(k), Value(k)});
  }
  int visited = 0;
  t.Scan(1, [&](int64_t, const Row&) { return ++visited < 3; });
  EXPECT_EQ(visited, 3);
}

TEST(TableTest, ScanRangeBounds) {
  Table t(0, "t", KvSchema());
  for (int64_t k = 0; k < 10; ++k) {
    t.Install(k, 1, false, {Value(k), Value(k)});
  }
  std::vector<int64_t> keys;
  t.ScanRange(3, 6, 1, [&](int64_t key, const Row&) {
    keys.push_back(key);
    return true;
  });
  EXPECT_EQ(keys, (std::vector<int64_t>{3, 4, 5, 6}));
}

TEST(TableTest, ScanSkipsDeleted) {
  Table t(0, "t", KvSchema());
  t.Install(1, 1, false, {Value(1), Value(10)});
  t.Install(2, 1, false, {Value(2), Value(20)});
  t.Install(1, 2, true, {});
  std::vector<int64_t> keys;
  t.Scan(2, [&](int64_t key, const Row&) {
    keys.push_back(key);
    return true;
  });
  EXPECT_EQ(keys, (std::vector<int64_t>{2}));
}

TEST(TableTest, LiveRowCount) {
  Table t(0, "t", KvSchema());
  t.Install(1, 1, false, {Value(1), Value(1)});
  t.Install(2, 2, false, {Value(2), Value(2)});
  t.Install(1, 3, true, {});
  EXPECT_EQ(t.LiveRowCount(1), 1u);
  EXPECT_EQ(t.LiveRowCount(2), 2u);
  EXPECT_EQ(t.LiveRowCount(3), 1u);
}

TEST(TableTest, TruncateVersionsKeepsNewestVisible) {
  Table t(0, "t", KvSchema());
  for (DbVersion v = 1; v <= 5; ++v) {
    t.Install(1, v, false, {Value(1), Value(v * 10)});
  }
  EXPECT_EQ(t.VersionCount(), 5u);
  const size_t discarded = t.TruncateVersions(3);
  EXPECT_EQ(discarded, 2u);  // versions 1,2 unreachable
  // Snapshot 3 still reads value 30; snapshot 5 reads 50.
  EXPECT_EQ((*t.Get(1, 3))[1].AsInt(), 30);
  EXPECT_EQ((*t.Get(1, 5))[1].AsInt(), 50);
}

TEST(TableTest, TruncateRemovesOldTombstonedKeys) {
  Table t(0, "t", KvSchema());
  t.Install(1, 1, false, {Value(1), Value(1)});
  t.Install(1, 2, true, {});
  t.TruncateVersions(10);
  EXPECT_EQ(t.KeyCount(), 0u);
}

}  // namespace
}  // namespace screp
