// Plan-cache equivalence and invalidation tests.
//
// The cached execution plan must be behaviorally invisible: every
// statement must produce the same results, the same rows_examined, the
// same access path, and the same errors whether it runs through the
// plan built at Prepare or through the legacy per-Execute planning
// path (sql::SetPlanCacheEnabled(false), kept verbatim in the
// executor).  A catalog change after Prepare must be picked up on the
// next Execute, not served from the stale plan.

#include "sql/plan.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "sql/executor.h"
#include "sql/statement.h"
#include "storage/database.h"

namespace screp::sql {
namespace {

/// Restores the default (cache on) after every test so test order never
/// leaks the switch.
class PlanCacheTest : public ::testing::Test {
 protected:
  void TearDown() override { SetPlanCacheEnabled(true); }

 public:
  /// A fresh database with the bench/test "item" shape plus a secondary
  /// int column worth indexing.
  static std::unique_ptr<Database> MakeDb(int rows) {
    auto db = std::make_unique<Database>();
    auto id = db->CreateTable("item", Schema({{"i_id", ValueType::kInt64},
                                              {"i_cat", ValueType::kInt64},
                                              {"i_title", ValueType::kString},
                                              {"i_cost", ValueType::kDouble}}));
    EXPECT_TRUE(id.ok());
    for (int64_t k = 0; k < rows; ++k) {
      EXPECT_TRUE(db->BulkLoad(*id, {Value(k), Value(k % 7),
                                     Value("t" + std::to_string(k)),
                                     Value(1.5 * static_cast<double>(k))})
                      .ok());
    }
    return db;
  }
};

/// Runs `text` with `params` against its own fresh database under both
/// cache settings and requires identical outcomes (status or full
/// result set), identical rows_examined, and — for non-inserts — an
/// identical explained access path.
void ExpectEquivalent(const std::string& text,
                      const std::vector<Value>& params, int rows = 50) {
  struct Outcome {
    bool ok;
    std::string error;
    ResultSet rs;
    std::string path;
  };
  Outcome outcomes[2];
  for (const bool cached : {false, true}) {
    SetPlanCacheEnabled(cached);
    auto db = PlanCacheTest::MakeDb(rows);
    auto stmt = PreparedStatement::Prepare(*db, text);
    ASSERT_TRUE(stmt.ok()) << text;
    auto txn = db->Begin();
    Outcome& out = outcomes[cached ? 1 : 0];
    auto rs = Execute(txn.get(), **stmt, params);
    out.ok = rs.ok();
    if (rs.ok()) {
      out.rs = std::move(rs).value();
    } else {
      out.error = rs.status().ToString();
    }
    auto path = ExplainAccessPath(txn.get(), **stmt, params);
    out.path = path.ok() ? *path : "error: " + path.status().ToString();
  }
  SetPlanCacheEnabled(true);
  const Outcome& fresh = outcomes[0];
  const Outcome& cached = outcomes[1];
  EXPECT_EQ(fresh.ok, cached.ok) << text;
  EXPECT_EQ(fresh.error, cached.error) << text;
  EXPECT_EQ(fresh.path, cached.path) << text;
  if (fresh.ok && cached.ok) {
    EXPECT_EQ(fresh.rs.columns, cached.rs.columns) << text;
    EXPECT_EQ(fresh.rs.rows_examined, cached.rs.rows_examined) << text;
    EXPECT_EQ(fresh.rs.rows_affected, cached.rs.rows_affected) << text;
    ASSERT_EQ(fresh.rs.rows.size(), cached.rs.rows.size()) << text;
    for (size_t r = 0; r < fresh.rs.rows.size(); ++r) {
      ASSERT_EQ(fresh.rs.rows[r].size(), cached.rs.rows[r].size()) << text;
      for (size_t c = 0; c < fresh.rs.rows[r].size(); ++c) {
        EXPECT_TRUE(fresh.rs.rows[r][c] == cached.rs.rows[r][c])
            << text << " row " << r << " col " << c;
      }
    }
  }
}

TEST_F(PlanCacheTest, StatementCatalogEquivalence) {
  ExpectEquivalent("SELECT i_title FROM item WHERE i_id = ?", {Value(3)});
  ExpectEquivalent("SELECT i_id FROM item WHERE i_id BETWEEN ? AND ?",
                   {Value(5), Value(11)});
  ExpectEquivalent("SELECT * FROM item WHERE i_cat = ?", {Value(2)});
  ExpectEquivalent("SELECT i_id FROM item WHERE i_cost > ?", {Value(40.0)});
  ExpectEquivalent("SELECT COUNT(*) FROM item WHERE i_cat = 3", {});
  ExpectEquivalent("SELECT SUM(i_cost), MAX(i_id) FROM item", {});
  ExpectEquivalent("SELECT i_id FROM item WHERE i_cat = ? LIMIT 4",
                   {Value(1)});
  ExpectEquivalent("SELECT i_id FROM item WHERE i_cat = ? LIMIT ?",
                   {Value(1), Value(3)});
  ExpectEquivalent("UPDATE item SET i_cost = i_cost + ? WHERE i_id = ?",
                   {Value(2.5), Value(7)});
  ExpectEquivalent("UPDATE item SET i_cat = ? WHERE i_cat = ?",
                   {Value(9), Value(4)});
  ExpectEquivalent("DELETE FROM item WHERE i_id BETWEEN ? AND ?",
                   {Value(10), Value(20)});
  ExpectEquivalent("INSERT INTO item VALUES (?, ?, ?, ?)",
                   {Value(999), Value(1), Value("new"), Value(0.5)});
}

TEST_F(PlanCacheTest, ErrorParity) {
  // Unbound parameter: same message either way.
  ExpectEquivalent("SELECT i_id FROM item WHERE i_cat = ?", {});
  // A parameter of the wrong type for the primary key falls back to a
  // scan rather than erroring — in both modes.
  ExpectEquivalent("SELECT i_id FROM item WHERE i_id = ?",
                   {Value("not-a-key")});
  // Mixed aggregate/plain select lists stay an Execute-time error.
  ExpectEquivalent("SELECT i_id, COUNT(*) FROM item", {});
}

TEST_F(PlanCacheTest, RandomizedPointAndRangeEquivalence) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const int64_t a = static_cast<int64_t>(rng.NextBounded(60));
    const int64_t b = a + static_cast<int64_t>(rng.NextBounded(20));
    switch (rng.NextBounded(4)) {
      case 0:
        ExpectEquivalent("SELECT i_title FROM item WHERE i_id = ?",
                         {Value(a)});
        break;
      case 1:
        ExpectEquivalent("SELECT i_id FROM item WHERE i_id BETWEEN ? AND ?",
                         {Value(a), Value(b)});
        break;
      case 2:
        ExpectEquivalent("SELECT i_id FROM item WHERE i_cat = ? AND i_id < ?",
                         {Value(a % 7), Value(b)});
        break;
      default:
        ExpectEquivalent("UPDATE item SET i_cost = ? WHERE i_id BETWEEN "
                         "? AND ?",
                         {Value(0.25 * static_cast<double>(a)), Value(a),
                          Value(b)});
    }
    if (HasFatalFailure()) return;
  }
}

TEST_F(PlanCacheTest, PlanIsBuiltAtPrepare) {
  auto db = MakeDb(10);
  auto stmt = PreparedStatement::Prepare(
      *db, "SELECT i_title FROM item WHERE i_id = ?");
  ASSERT_TRUE(stmt.ok());
  const ExecutionPlan* plan = (*stmt)->plan();
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->catalog_epoch(), db->CatalogEpoch());
  EXPECT_EQ(plan->column_labels(),
            (std::vector<std::string>{"i_title"}));
  EXPECT_FALSE(plan->has_agg());
}

TEST_F(PlanCacheTest, CreateIndexAfterPrepareIsPickedUp) {
  auto db = MakeDb(50);
  auto stmt = PreparedStatement::Prepare(
      *db, "SELECT i_id FROM item WHERE i_cat = ?");
  ASSERT_TRUE(stmt.ok());
  {
    auto txn = db->Begin();
    auto path = ExplainAccessPath(txn.get(), **stmt, {Value(3)});
    ASSERT_TRUE(path.ok());
    EXPECT_EQ(*path, "full_scan");
    auto rs = Execute(txn.get(), **stmt, {Value(3)});
    ASSERT_TRUE(rs.ok());
    EXPECT_EQ(rs->rows_examined, 50);  // scanned everything
  }
  // The plan was built before the index existed; the epoch bump must
  // force a transient replan that sees it.
  ASSERT_TRUE(db->CreateIndex(0, "i_cat").ok());
  EXPECT_NE((*stmt)->plan()->catalog_epoch(), db->CatalogEpoch());
  {
    auto txn = db->Begin();
    auto path = ExplainAccessPath(txn.get(), **stmt, {Value(3)});
    ASSERT_TRUE(path.ok());
    EXPECT_EQ(*path, "index_eq(col 1)");
    auto rs = Execute(txn.get(), **stmt, {Value(3)});
    ASSERT_TRUE(rs.ok());
    EXPECT_LT(rs->rows_examined, 50);  // probed the index
  }
  // A statement prepared after the index bakes it into the cached plan.
  auto fresh = PreparedStatement::Prepare(
      *db, "SELECT i_id FROM item WHERE i_cat = ?");
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ((*fresh)->plan()->catalog_epoch(), db->CatalogEpoch());
}

TEST_F(PlanCacheTest, PathChoiceFollowsBoundValueTypes) {
  auto db = MakeDb(20);
  auto stmt = PreparedStatement::Prepare(
      *db, "SELECT i_title FROM item WHERE i_id = ?");
  ASSERT_TRUE(stmt.ok());
  auto txn = db->Begin();
  auto int_path = ExplainAccessPath(txn.get(), **stmt, {Value(4)});
  ASSERT_TRUE(int_path.ok());
  EXPECT_EQ(*int_path, "point(4)");
  // The same cached plan must degrade to a scan when the bound value
  // cannot key the primary index.
  auto str_path = ExplainAccessPath(txn.get(), **stmt, {Value("x")});
  ASSERT_TRUE(str_path.ok());
  EXPECT_EQ(*str_path, "full_scan");
}

}  // namespace
}  // namespace screp::sql
