#include "storage/value.h"

#include <gtest/gtest.h>

namespace screp {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
  EXPECT_EQ(v.ToString(), "NULL");
}

TEST(ValueTest, IntRoundTrip) {
  Value v(int64_t{42});
  EXPECT_EQ(v.type(), ValueType::kInt64);
  EXPECT_EQ(v.AsInt(), 42);
  EXPECT_EQ(v.ToString(), "42");
}

TEST(ValueTest, IntFromPlainInt) {
  Value v(7);
  EXPECT_EQ(v.type(), ValueType::kInt64);
  EXPECT_EQ(v.AsInt(), 7);
}

TEST(ValueTest, DoubleRoundTrip) {
  Value v(3.5);
  EXPECT_EQ(v.type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(v.AsDouble(), 3.5);
}

TEST(ValueTest, StringRoundTrip) {
  Value v(std::string("hello"));
  EXPECT_EQ(v.type(), ValueType::kString);
  EXPECT_EQ(v.AsString(), "hello");
  EXPECT_EQ(v.ToString(), "'hello'");
}

TEST(ValueTest, CStringConstructor) {
  Value v("abc");
  EXPECT_EQ(v.type(), ValueType::kString);
  EXPECT_EQ(v.AsString(), "abc");
}

TEST(ValueTest, NumericComparisonAcrossTypes) {
  EXPECT_EQ(Value(1).Compare(Value(1.0)), 0);
  EXPECT_LT(Value(1).Compare(Value(1.5)), 0);
  EXPECT_GT(Value(2.5).Compare(Value(2)), 0);
}

TEST(ValueTest, IntComparisonExactForLargeValues) {
  // Values beyond double's 53-bit mantissa must still compare exactly.
  const int64_t big = (int64_t{1} << 60);
  EXPECT_LT(Value(big).Compare(Value(big + 1)), 0);
  EXPECT_EQ(Value(big).Compare(Value(big)), 0);
}

TEST(ValueTest, NullSortsFirst) {
  EXPECT_LT(Value().Compare(Value(0)), 0);
  EXPECT_LT(Value().Compare(Value("a")), 0);
  EXPECT_EQ(Value().Compare(Value()), 0);
}

TEST(ValueTest, NumericsBeforeStrings) {
  EXPECT_LT(Value(999).Compare(Value("0")), 0);
}

TEST(ValueTest, StringOrdering) {
  EXPECT_LT(Value("abc").Compare(Value("abd")), 0);
  EXPECT_EQ(Value("x").Compare(Value("x")), 0);
  EXPECT_GT(Value("b").Compare(Value("a")), 0);
}

TEST(ValueTest, RelationalOperators) {
  EXPECT_TRUE(Value(1) < Value(2));
  EXPECT_TRUE(Value(2) >= Value(2));
  EXPECT_TRUE(Value("a") != Value("b"));
  EXPECT_TRUE(Value(3.0) == Value(3));
}

TEST(ValueTest, ByteSizes) {
  EXPECT_EQ(Value().ByteSize(), 1u);
  EXPECT_EQ(Value(1).ByteSize(), 8u);
  EXPECT_EQ(Value(1.0).ByteSize(), 8u);
  EXPECT_EQ(Value("abcd").ByteSize(), 8u);  // 4 chars + 4 overhead
}

TEST(RowTest, ToStringAndSize) {
  Row row{Value(1), Value("a"), Value(2.5)};
  EXPECT_EQ(RowToString(row), "(1, 'a', 2.5)");
  EXPECT_GT(RowByteSize(row), 16u);
}

}  // namespace
}  // namespace screp
