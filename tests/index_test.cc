// Secondary indexes: candidate maintenance, MVCC revalidation, executor
// access-path selection, and own-write overlay in transactions.

#include <gtest/gtest.h>

#include "sql/executor.h"
#include "storage/database.h"
#include "storage/transaction.h"

namespace screp {
namespace {

class IndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto id = db_.CreateTable("item",
                              Schema({{"i_id", ValueType::kInt64},
                                      {"i_subject", ValueType::kInt64},
                                      {"i_title", ValueType::kString}}));
    ASSERT_TRUE(id.ok());
    item_ = *id;
    for (int64_t k = 0; k < 30; ++k) {
      ASSERT_TRUE(db_.BulkLoad(item_, {Value(k), Value(k % 3),
                                       Value("t" + std::to_string(k))})
                      .ok());
    }
  }

  /// Commits a transaction's writes at the next version.
  void CommitLocal(Transaction* txn) {
    WriteSet ws = txn->BuildWriteSet();
    ws.commit_version = db_.CommittedVersion() + 1;
    ASSERT_TRUE(db_.ApplyWriteSet(ws).ok());
  }

  Database db_;
  TableId item_ = -1;
};

TEST_F(IndexTest, CreateIndexBackfillsExistingRows) {
  ASSERT_TRUE(db_.CreateIndex(item_, "i_subject").ok());
  EXPECT_TRUE(db_.table(item_)->HasIndex(1));
  std::vector<int64_t> keys;
  db_.table(item_)->IndexLookup(1, Value(0), 0,
                                [&](int64_t key, const Row&) {
                                  keys.push_back(key);
                                  return true;
                                });
  // Subjects cycle 0,1,2 over 30 keys: subject 0 = {0,3,6,...,27}.
  ASSERT_EQ(keys.size(), 10u);
  EXPECT_EQ(keys.front(), 0);
  EXPECT_EQ(keys.back(), 27);
  // Results in primary-key order.
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST_F(IndexTest, CreateIndexValidation) {
  EXPECT_FALSE(db_.CreateIndex(item_, "missing").ok());
  EXPECT_FALSE(db_.table(item_)->CreateIndex(0).ok());   // key column
  EXPECT_FALSE(db_.table(item_)->CreateIndex(99).ok());  // out of range
  ASSERT_TRUE(db_.CreateIndex(item_, "i_subject").ok());
  EXPECT_TRUE(db_.CreateIndex(item_, "i_subject").ok());  // idempotent
}

TEST_F(IndexTest, IndexMaintainedOnCommit) {
  ASSERT_TRUE(db_.CreateIndex(item_, "i_subject").ok());
  auto txn = db_.Begin();
  ASSERT_TRUE(txn->Insert(item_, {Value(100), Value(7), Value("new")}).ok());
  CommitLocal(txn.get());
  std::vector<int64_t> keys;
  db_.table(item_)->IndexLookup(1, Value(7), db_.CommittedVersion(),
                                [&](int64_t key, const Row&) {
                                  keys.push_back(key);
                                  return true;
                                });
  EXPECT_EQ(keys, (std::vector<int64_t>{100}));
}

TEST_F(IndexTest, RevalidationAfterValueChange) {
  ASSERT_TRUE(db_.CreateIndex(item_, "i_subject").ok());
  // Move key 0 from subject 0 to subject 9.
  auto txn = db_.Begin();
  ASSERT_TRUE(txn->UpdateColumns(item_, 0, {{1, Value(9)}}).ok());
  CommitLocal(txn.get());
  const DbVersion now = db_.CommittedVersion();
  std::vector<int64_t> subject0, subject9;
  db_.table(item_)->IndexLookup(1, Value(0), now,
                                [&](int64_t key, const Row&) {
                                  subject0.push_back(key);
                                  return true;
                                });
  db_.table(item_)->IndexLookup(1, Value(9), now,
                                [&](int64_t key, const Row&) {
                                  subject9.push_back(key);
                                  return true;
                                });
  // Key 0 is no longer reported under subject 0 (revalidated away)...
  EXPECT_EQ(std::count(subject0.begin(), subject0.end(), 0), 0);
  // ...and appears under subject 9.
  EXPECT_EQ(subject9, (std::vector<int64_t>{0}));
  // But a snapshot *before* the change still sees the old placement.
  std::vector<int64_t> historical;
  db_.table(item_)->IndexLookup(1, Value(0), now - 1,
                                [&](int64_t key, const Row&) {
                                  historical.push_back(key);
                                  return true;
                                });
  EXPECT_EQ(std::count(historical.begin(), historical.end(), 0), 1);
}

TEST_F(IndexTest, DeletedRowsFiltered) {
  ASSERT_TRUE(db_.CreateIndex(item_, "i_subject").ok());
  auto txn = db_.Begin();
  ASSERT_TRUE(txn->Delete(item_, 3).ok());
  CommitLocal(txn.get());
  std::vector<int64_t> keys;
  db_.table(item_)->IndexLookup(1, Value(0), db_.CommittedVersion(),
                                [&](int64_t key, const Row&) {
                                  keys.push_back(key);
                                  return true;
                                });
  EXPECT_EQ(std::count(keys.begin(), keys.end(), 3), 0);
  EXPECT_EQ(keys.size(), 9u);
}

TEST_F(IndexTest, TransactionIndexScanSeesOwnWrites) {
  ASSERT_TRUE(db_.CreateIndex(item_, "i_subject").ok());
  auto txn = db_.Begin();
  ASSERT_TRUE(txn->Insert(item_, {Value(200), Value(0), Value("mine")}).ok());
  ASSERT_TRUE(txn->Delete(item_, 0).ok());
  ASSERT_TRUE(txn->UpdateColumns(item_, 6, {{1, Value(5)}}).ok());
  std::vector<int64_t> keys;
  txn->IndexScan(item_, 1, Value(0), [&](int64_t key, const Row&) {
    keys.push_back(key);
    return true;
  });
  EXPECT_EQ(std::count(keys.begin(), keys.end(), 200), 1);  // own insert
  EXPECT_EQ(std::count(keys.begin(), keys.end(), 0), 0);    // own delete
  EXPECT_EQ(std::count(keys.begin(), keys.end(), 6), 0);    // moved away
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST_F(IndexTest, ExecutorUsesIndexPath) {
  ASSERT_TRUE(db_.CreateIndex(item_, "i_subject").ok());
  auto stmt = sql::PreparedStatement::Prepare(
      db_, "SELECT i_id FROM item WHERE i_subject = ?");
  ASSERT_TRUE(stmt.ok());
  auto txn = db_.Begin();
  auto rs = sql::Execute(txn.get(), **stmt, {Value(1)});
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 10u);
  // Index path examines only the candidates, not all 30 rows.
  EXPECT_EQ(rs->rows_examined, 10);
}

TEST_F(IndexTest, ExecutorFallsBackToScanWithoutIndex) {
  auto stmt = sql::PreparedStatement::Prepare(
      db_, "SELECT i_id FROM item WHERE i_subject = ?");
  ASSERT_TRUE(stmt.ok());
  auto txn = db_.Begin();
  auto rs = sql::Execute(txn.get(), **stmt, {Value(1)});
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 10u);
  EXPECT_EQ(rs->rows_examined, 30);  // full scan
}

TEST_F(IndexTest, PrimaryKeyPathStillWinsOverIndex) {
  ASSERT_TRUE(db_.CreateIndex(item_, "i_subject").ok());
  auto stmt = sql::PreparedStatement::Prepare(
      db_, "SELECT i_id FROM item WHERE i_subject = ? AND i_id = ?");
  ASSERT_TRUE(stmt.ok());
  auto txn = db_.Begin();
  auto rs = sql::Execute(txn.get(), **stmt, {Value(0), Value(3)});
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows.size(), 1u);
  EXPECT_EQ(rs->rows_examined, 1);  // point access
}

TEST_F(IndexTest, IndexedUpdateStatement) {
  ASSERT_TRUE(db_.CreateIndex(item_, "i_subject").ok());
  auto stmt = sql::PreparedStatement::Prepare(
      db_, "UPDATE item SET i_title = 'x' WHERE i_subject = ?");
  ASSERT_TRUE(stmt.ok());
  auto txn = db_.Begin();
  auto rs = sql::Execute(txn.get(), **stmt, {Value(2)});
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->rows_affected, 10);
  EXPECT_EQ(rs->rows_examined, 10);
}

TEST_F(IndexTest, StringIndexedColumn) {
  auto id = db_.CreateTable("customer",
                            Schema({{"c_id", ValueType::kInt64},
                                    {"c_uname", ValueType::kString}}));
  ASSERT_TRUE(id.ok());
  for (int64_t k = 0; k < 5; ++k) {
    ASSERT_TRUE(
        db_.BulkLoad(*id, {Value(k), Value("user" + std::to_string(k))})
            .ok());
  }
  ASSERT_TRUE(db_.CreateIndex(*id, "c_uname").ok());
  auto stmt = sql::PreparedStatement::Prepare(
      db_, "SELECT c_id FROM customer WHERE c_uname = ?");
  ASSERT_TRUE(stmt.ok());
  auto txn = db_.Begin();
  auto rs = sql::Execute(txn.get(), **stmt, {Value("user3")});
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->rows.size(), 1u);
  EXPECT_EQ(rs->rows[0][0].AsInt(), 3);
  EXPECT_EQ(rs->rows_examined, 1);
}

TEST_F(IndexTest, LookupOfAbsentValueIsEmpty) {
  ASSERT_TRUE(db_.CreateIndex(item_, "i_subject").ok());
  int visits = 0;
  db_.table(item_)->IndexLookup(1, Value(777), 0, [&](int64_t, const Row&) {
    ++visits;
    return true;
  });
  EXPECT_EQ(visits, 0);
}

}  // namespace
}  // namespace screp
