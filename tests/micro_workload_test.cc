#include "workload/micro.h"

#include <gtest/gtest.h>

namespace screp {
namespace {

MicroConfig SmallConfig(double update_fraction) {
  MicroConfig config;
  config.table_count = 4;
  config.rows_per_table = 50;
  config.update_fraction = update_fraction;
  return config;
}

TEST(MicroWorkloadTest, BuildsFourTablesWithRows) {
  MicroWorkload workload(SmallConfig(0.25));
  Database db;
  ASSERT_TRUE(workload.BuildSchema(&db).ok());
  EXPECT_EQ(db.TableCount(), 4u);
  for (int t = 0; t < 4; ++t) {
    auto id = db.FindTable(MicroWorkload::TableName(t));
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(db.table(*id)->LiveRowCount(0), 50u);
  }
}

TEST(MicroWorkloadTest, RegistersReadAndUpdatePerTable) {
  MicroWorkload workload(SmallConfig(0.25));
  Database db;
  ASSERT_TRUE(workload.BuildSchema(&db).ok());
  sql::TransactionRegistry registry;
  ASSERT_TRUE(workload.DefineTransactions(db, &registry).ok());
  EXPECT_EQ(registry.size(), 8u);
  ASSERT_TRUE(registry.Find("read_item0").ok());
  ASSERT_TRUE(registry.Find("update_item3").ok());
  // Table sets are single-table.
  EXPECT_EQ(registry.Get(*registry.Find("read_item2")).TableSet(),
            (std::vector<std::string>{"item2"}));
  EXPECT_FALSE(registry.Get(*registry.Find("read_item0")).HasUpdates());
  EXPECT_TRUE(registry.Get(*registry.Find("update_item0")).HasUpdates());
}

TEST(MicroWorkloadTest, GeneratorHonorsUpdateFraction) {
  for (double fraction : {0.0, 0.25, 1.0}) {
    MicroWorkload workload(SmallConfig(fraction));
    Database db;
    ASSERT_TRUE(workload.BuildSchema(&db).ok());
    sql::TransactionRegistry registry;
    ASSERT_TRUE(workload.DefineTransactions(db, &registry).ok());
    auto gen = workload.CreateGenerator(registry, 0, Rng(7));
    int updates = 0;
    const int n = 2000;
    for (int i = 0; i < n; ++i) {
      TxnSpec spec = gen->Next();
      if (registry.Get(spec.type).HasUpdates()) ++updates;
    }
    EXPECT_NEAR(updates / static_cast<double>(n), fraction, 0.05)
        << "fraction " << fraction;
  }
}

TEST(MicroWorkloadTest, GeneratorParamsMatchStatementArity) {
  MicroWorkload workload(SmallConfig(0.5));
  Database db;
  ASSERT_TRUE(workload.BuildSchema(&db).ok());
  sql::TransactionRegistry registry;
  ASSERT_TRUE(workload.DefineTransactions(db, &registry).ok());
  auto gen = workload.CreateGenerator(registry, 0, Rng(11));
  for (int i = 0; i < 500; ++i) {
    TxnSpec spec = gen->Next();
    const sql::PreparedTransaction& txn = registry.Get(spec.type);
    ASSERT_EQ(spec.params.size(), txn.statements.size());
    for (size_t s = 0; s < txn.statements.size(); ++s) {
      EXPECT_EQ(static_cast<int>(spec.params[s].size()),
                txn.statements[s]->param_count());
    }
  }
}

TEST(MicroWorkloadTest, GeneratorKeysInRange) {
  MicroWorkload workload(SmallConfig(1.0));
  Database db;
  ASSERT_TRUE(workload.BuildSchema(&db).ok());
  sql::TransactionRegistry registry;
  ASSERT_TRUE(workload.DefineTransactions(db, &registry).ok());
  auto gen = workload.CreateGenerator(registry, 0, Rng(13));
  for (int i = 0; i < 500; ++i) {
    TxnSpec spec = gen->Next();
    // UPDATE params: (delta, key).
    const int64_t key = spec.params[0][1].AsInt();
    EXPECT_GE(key, 0);
    EXPECT_LT(key, 50);
  }
}

TEST(MicroWorkloadTest, GeneratorsWithSameSeedAgree) {
  MicroWorkload workload(SmallConfig(0.5));
  Database db;
  ASSERT_TRUE(workload.BuildSchema(&db).ok());
  sql::TransactionRegistry registry;
  ASSERT_TRUE(workload.DefineTransactions(db, &registry).ok());
  auto a = workload.CreateGenerator(registry, 0, Rng(17));
  auto b = workload.CreateGenerator(registry, 0, Rng(17));
  for (int i = 0; i < 100; ++i) {
    TxnSpec sa = a->Next();
    TxnSpec sb = b->Next();
    EXPECT_EQ(sa.type, sb.type);
    ASSERT_EQ(sa.params.size(), sb.params.size());
  }
}

}  // namespace
}  // namespace screp
