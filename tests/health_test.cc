// Unit tests for the online health monitor: each detector is driven with
// synthetic time-series samples and events (no simulator), checking that
// it fires on its failure signature, stays quiet on healthy input, and
// that state transitions reach the event log as kHealth events.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/sim_time.h"
#include "obs/eventlog.h"
#include "obs/health.h"
#include "obs/json.h"
#include "obs/metrics_registry.h"
#include "obs/timeseries.h"

namespace screp::obs {
namespace {

constexpr SimTime kPeriod = Millis(250);

/// Drives a store + monitor pair with synthetic samples: a tiny harness
/// standing in for the Sampler.
class HealthHarness {
 public:
  explicit HealthHarness(const HealthConfig& config, int replicas = 4)
      : store_(TimeSeriesConfig{.window = 64}),
        log_(1024),
        monitor_(config, replicas, &store_, &registry_, &log_) {
    log_.set_enabled(true);
    log_.AddSink([this](const Event& e) { monitor_.OnEvent(e); });
  }

  /// One sampling tick at the next period boundary.
  void Tick(const std::map<std::string, double>& gauges,
            const std::map<std::string, double>& counter_deltas = {}) {
    now_ += kPeriod;
    store_.Ingest(now_, kPeriod, gauges, counter_deltas);
    monitor_.OnSample(now_);
  }

  /// A finished attempt `ms` milliseconds after submit.
  void Finish(double ms, bool committed = true) {
    Event e;
    e.kind = EventKind::kTxnFinished;
    e.at = now_ + Millis(1);
    e.submit_time = e.at - Millis(ms);
    e.committed = committed;
    log_.Append(std::move(e));
  }

  void Shed() {
    Event e;
    e.kind = EventKind::kShed;
    e.at = now_ + Millis(1);
    e.detail = "lb";
    log_.Append(std::move(e));
  }

  void Timeout() {
    Event e;
    e.kind = EventKind::kTimeout;
    e.at = now_ + Millis(1);
    log_.Append(std::move(e));
  }

  void Recover(int replica) {
    Event e;
    e.kind = EventKind::kRecover;
    e.at = now_ + Millis(1);
    e.replica = replica;
    e.detail = "replica";
    log_.Append(std::move(e));
  }

  SimTime now() const { return now_; }
  HealthMonitor& monitor() { return monitor_; }
  EventLog& log() { return log_; }
  MetricsRegistry& registry() { return registry_; }

 private:
  SimTime now_ = 0;
  MetricsRegistry registry_;
  TimeSeriesStore store_;
  EventLog log_;
  HealthMonitor monitor_;
};

/// Healthy per-replica gauges for an N-replica cluster.
std::map<std::string, double> HealthyGauges(int replicas) {
  std::map<std::string, double> g;
  for (int r = 0; r < replicas; ++r) {
    const std::string prefix = "replica" + std::to_string(r) + ".";
    g[prefix + "version_lag"] = 2;
    g[prefix + "refresh_credits"] = 32;
  }
  g["lb.admission_queue"] = 0;
  g["certifier.queue_depth"] = 1;
  g["certifier.deferred_refresh"] = 0;
  return g;
}

TEST(HealthMonitorTest, StaysHealthyOnQuietInput) {
  HealthHarness h{HealthConfig{}};
  for (int i = 0; i < 40; ++i) {
    for (int a = 0; a < 10; ++a) h.Finish(20.0);
    h.Tick(HealthyGauges(4));
  }
  EXPECT_EQ(h.monitor().state(), HealthState::kHealthy);
  EXPECT_EQ(h.monitor().worst_state(), HealthState::kHealthy);
  EXPECT_EQ(h.monitor().total_firings(), 0);
  EXPECT_TRUE(h.monitor().transitions().empty());
  EXPECT_EQ(h.monitor().FiredDetectorNames(), "");
}

TEST(HealthMonitorTest, SlowBurnFiresWhenBudgetBurnsSlowly) {
  HealthConfig config;
  config.min_attempts = 10;
  HealthHarness h{config};
  // 5% of attempts above the objective = 5x the 1% budget: above the
  // slow threshold (3) but nowhere near the fast one (14).
  for (int i = 0; i < config.slow_window + 2; ++i) {
    for (int a = 0; a < 19; ++a) h.Finish(20.0);
    h.Finish(900.0);
    h.Tick(HealthyGauges(4));
  }
  EXPECT_GE(h.monitor().firings(HealthDetector::kSloSlowBurn), 1);
  EXPECT_EQ(h.monitor().firings(HealthDetector::kSloFastBurn), 0);
  EXPECT_EQ(h.monitor().state(), HealthState::kDegraded);
}

TEST(HealthMonitorTest, FastBurnRequiresSlowWindowAgreement) {
  HealthConfig config;
  config.min_attempts = 10;
  HealthHarness h{config};
  // Long healthy run, then one terrible sample: the fast window burns but
  // the slow window dilutes it below its threshold => no fast-burn page.
  for (int i = 0; i < config.slow_window; ++i) {
    for (int a = 0; a < 20; ++a) h.Finish(20.0);
    h.Tick(HealthyGauges(4));
  }
  for (int a = 0; a < 20; ++a) h.Finish(900.0);
  h.Tick(HealthyGauges(4));
  EXPECT_EQ(h.monitor().firings(HealthDetector::kSloFastBurn), 0);

  // Sustained badness: both windows agree and the page fires (critical).
  for (int i = 0; i < config.slow_window; ++i) {
    for (int a = 0; a < 20; ++a) h.Finish(900.0);
    h.Tick(HealthyGauges(4));
  }
  EXPECT_GE(h.monitor().firings(HealthDetector::kSloFastBurn), 1);
  EXPECT_EQ(h.monitor().worst_state(), HealthState::kCritical);
}

TEST(HealthMonitorTest, NearIdleWindowsAreNotJudged) {
  HealthConfig config;
  config.min_attempts = 30;
  HealthHarness h{config};
  // One slow attempt per sample — awful ratio, but even the slow window
  // (24 samples) never accumulates min_attempts, so neither is judged.
  for (int i = 0; i < config.slow_window + 2; ++i) {
    h.Finish(900.0);
    h.Tick(HealthyGauges(4));
  }
  EXPECT_EQ(h.monitor().total_firings(), 0);
}

TEST(HealthMonitorTest, AvailabilityCountsShedsTimeoutsAndAborts) {
  HealthConfig config;
  config.min_attempts = 10;
  HealthHarness h{config};
  // 60% of attempts shed / timed out / aborted: availability 0.4 is far
  // below the 0.80 objective.
  for (int i = 0; i < config.slow_window + 2; ++i) {
    for (int a = 0; a < 4; ++a) h.Finish(20.0);
    for (int a = 0; a < 3; ++a) h.Shed();
    h.Timeout();
    for (int a = 0; a < 2; ++a) h.Finish(20.0, /*committed=*/false);
    h.Tick(HealthyGauges(4));
  }
  EXPECT_GE(h.monitor().firings(HealthDetector::kAvailability), 1);
  EXPECT_EQ(h.monitor().worst_state(), HealthState::kCritical);
}

TEST(HealthMonitorTest, LagDivergenceNeedsConsecutiveSamples) {
  HealthConfig config;
  HealthHarness h{config};
  auto gauges = HealthyGauges(4);
  gauges["replica1.version_lag"] = 5000;  // >> median 2, > min, > factor
  for (int i = 0; i < config.lag_divergence_samples - 1; ++i) {
    h.Tick(gauges);
  }
  EXPECT_EQ(h.monitor().firings(HealthDetector::kLagDivergence), 0);
  h.Tick(gauges);  // the debounce threshold-th consecutive sample
  EXPECT_EQ(h.monitor().firings(HealthDetector::kLagDivergence), 1);
  EXPECT_TRUE(h.monitor().firing(HealthDetector::kLagDivergence));
  EXPECT_EQ(h.monitor().state(), HealthState::kDegraded);

  // Lag back to normal: the detector clears and health recovers.
  h.Tick(HealthyGauges(4));
  EXPECT_FALSE(h.monitor().firing(HealthDetector::kLagDivergence));
  EXPECT_EQ(h.monitor().state(), HealthState::kHealthy);
  EXPECT_EQ(h.monitor().worst_state(), HealthState::kDegraded);
}

TEST(HealthMonitorTest, UniformLagIsNotDivergence) {
  HealthConfig config;
  HealthHarness h{config};
  // Every replica equally behind (e.g. update-heavy phase): lag is high
  // but the *cluster median* is too, so nobody diverges.
  auto gauges = HealthyGauges(4);
  for (int r = 0; r < 4; ++r) {
    gauges["replica" + std::to_string(r) + ".version_lag"] = 5000;
  }
  for (int i = 0; i < 10; ++i) h.Tick(gauges);
  EXPECT_EQ(h.monitor().firings(HealthDetector::kLagDivergence), 0);
}

TEST(HealthMonitorTest, QueueGrowthFiresOnRampNotOnFlatDepth) {
  HealthConfig config;
  HealthHarness h{config};
  // Deep but flat queue: no growth, no firing.
  auto gauges = HealthyGauges(4);
  gauges["lb.admission_queue"] = 100;
  for (int i = 0; i < 10; ++i) h.Tick(gauges);
  EXPECT_EQ(h.monitor().firings(HealthDetector::kQueueGrowth), 0);

  // Ramp at 40 requests/second: fires after the debounce.
  double depth = 100;
  for (int i = 0; i < config.queue_growth_window +
                          config.queue_growth_samples; ++i) {
    depth += 40 * ToSeconds(kPeriod);
    gauges["lb.admission_queue"] = depth;
    h.Tick(gauges);
  }
  EXPECT_GE(h.monitor().firings(HealthDetector::kQueueGrowth), 1);
}

TEST(HealthMonitorTest, CreditStarvationNeedsZeroCreditsAndBacklog) {
  HealthConfig config;
  HealthHarness h{config};
  // Zero credits but no deferred fan-out: not starvation (e.g. idle).
  auto gauges = HealthyGauges(4);
  gauges["replica2.refresh_credits"] = 0;
  for (int i = 0; i < 10; ++i) h.Tick(gauges);
  EXPECT_EQ(h.monitor().firings(HealthDetector::kCreditStarvation), 0);

  // Zero credits while the certifier holds deferred refreshes: fires
  // after the debounce.
  gauges["certifier.deferred_refresh"] = 12;
  for (int i = 0; i < config.credit_starvation_samples; ++i) h.Tick(gauges);
  EXPECT_EQ(h.monitor().firings(HealthDetector::kCreditStarvation), 1);
}

TEST(HealthMonitorTest, CertifierSaturationFiresAtCriticalDepth) {
  HealthConfig config;
  HealthHarness h{config};
  auto gauges = HealthyGauges(4);
  gauges["certifier.queue_depth"] = config.certifier_queue_critical - 1;
  for (int i = 0; i < 10; ++i) h.Tick(gauges);
  EXPECT_EQ(h.monitor().firings(HealthDetector::kCertifierSaturation), 0);

  gauges["certifier.queue_depth"] = config.certifier_queue_critical;
  for (int i = 0; i < config.certifier_saturation_samples; ++i) {
    h.Tick(gauges);
  }
  EXPECT_EQ(h.monitor().firings(HealthDetector::kCertifierSaturation), 1);
}

TEST(HealthMonitorTest, CatchupStallFiresWhenRecoveredReplicaStopsGaining) {
  HealthConfig config;
  HealthHarness h{config};
  auto gauges = HealthyGauges(4);
  h.Tick(gauges);
  h.Recover(1);
  // Post-recovery lag stuck way above the done threshold, never
  // improving: grace passes, then the stall countdown fires.
  gauges["replica1.version_lag"] = 4000;
  for (int i = 0;
       i < config.catchup_grace_samples + config.catchup_stall_samples;
       ++i) {
    h.Tick(gauges);
  }
  EXPECT_EQ(h.monitor().firings(HealthDetector::kCatchupStall), 1);
}

TEST(HealthMonitorTest, CatchupProgressDisarmsTheStallDetector) {
  HealthConfig config;
  HealthHarness h{config};
  auto gauges = HealthyGauges(4);
  h.Tick(gauges);
  h.Recover(1);
  // Lag halves every sample: steady progress, then convergence below the
  // done threshold — never a stall.
  double lag = 4000;
  for (int i = 0; i < 12; ++i) {
    gauges["replica1.version_lag"] = lag;
    h.Tick(gauges);
    lag /= 2;
  }
  EXPECT_EQ(h.monitor().firings(HealthDetector::kCatchupStall), 0);
}

TEST(HealthMonitorTest, RefreshLossSumsDropRatesAcrossReplicas) {
  HealthConfig config;
  HealthHarness h{config};
  const auto gauges = HealthyGauges(4);
  // 4 drops per replica per 250 ms tick = 16/s per replica, 48/s summed
  // over the three lossy links: above the 25/s threshold.
  const std::map<std::string, double> drops = {
      {"net.refresh.r1.dropped", 4},
      {"net.refresh.r2.dropped", 4},
      {"net.refresh.r3.dropped", 4},
  };
  for (int i = 0; i < config.refresh_loss_samples; ++i) h.Tick(gauges, drops);
  EXPECT_EQ(h.monitor().firings(HealthDetector::kRefreshLoss), 1);

  // A trickle (one drop per tick on one link = 4/s) stays quiet.
  HealthHarness quiet{config};
  for (int i = 0; i < 10; ++i) {
    quiet.Tick(gauges, {{"net.refresh.r1.dropped", 1}});
  }
  EXPECT_EQ(quiet.monitor().firings(HealthDetector::kRefreshLoss), 0);
}

TEST(HealthMonitorTest, TransitionsAreLoggedAsHealthEventsWithoutReentry) {
  HealthConfig config;
  HealthHarness h{config};
  auto gauges = HealthyGauges(4);
  gauges["replica3.version_lag"] = 9000;
  for (int i = 0; i < config.lag_divergence_samples; ++i) h.Tick(gauges);
  h.Tick(HealthyGauges(4));  // recover

  ASSERT_EQ(h.monitor().transitions().size(), 2u);
  const HealthTransition& up = h.monitor().transitions()[0];
  EXPECT_EQ(up.from, HealthState::kHealthy);
  EXPECT_EQ(up.to, HealthState::kDegraded);
  EXPECT_EQ(up.trigger, "lag_divergence");
  const HealthTransition& down = h.monitor().transitions()[1];
  EXPECT_EQ(down.to, HealthState::kHealthy);
  EXPECT_TRUE(down.trigger.empty());

  int health_events = 0;
  for (const Event& e : h.log().Events()) {
    if (e.kind == EventKind::kHealth) {
      ++health_events;
      EXPECT_NE(e.detail.find("->"), std::string::npos);
    }
  }
  // The monitor is itself a log sink; kHealth events must not feed back
  // into the SLO accounting (which would double-count or recurse).
  EXPECT_EQ(health_events, 2);
}

TEST(HealthMonitorTest, GaugesExposeStateAndFiringFlags) {
  HealthConfig config;
  HealthHarness h{config};
  auto gauges = HealthyGauges(4);
  gauges["replica1.version_lag"] = 9000;
  for (int i = 0; i < config.lag_divergence_samples; ++i) h.Tick(gauges);
  EXPECT_EQ(h.registry().GetGauge("health.state")->value(), 1.0);
  EXPECT_EQ(h.registry().GetGauge("health.lag_divergence")->value(), 1.0);
  EXPECT_EQ(h.registry().GetGauge("health.queue_growth")->value(), 0.0);
}

TEST(HealthMonitorTest, JsonReportsParseAndCarryTheCatalog) {
  HealthConfig config;
  HealthHarness h{config};
  auto gauges = HealthyGauges(4);
  gauges["replica1.version_lag"] = 9000;
  for (int i = 0; i < config.lag_divergence_samples; ++i) h.Tick(gauges);

  Result<JsonValue> report = JsonValue::Parse(h.monitor().ToJson());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->Find("state")->str(), "degraded");
  EXPECT_EQ(report->Find("worst")->str(), "degraded");
  const JsonValue* detectors = report->Find("detectors");
  ASSERT_NE(detectors, nullptr);
  EXPECT_EQ(detectors->Find("lag_divergence")->Find("firings")->number(), 1);
  EXPECT_EQ(detectors->Find("refresh_loss")->Find("firings")->number(), 0);
  ASSERT_EQ(report->Find("transitions")->array().size(), 1u);

  Result<JsonValue> timeline = JsonValue::Parse(h.monitor().TimelineJson());
  ASSERT_TRUE(timeline.ok()) << timeline.status().ToString();
  const auto& states = timeline->Find("states")->array();
  ASSERT_EQ(states.size(),
            static_cast<size_t>(h.monitor().samples()));
  EXPECT_EQ(states.back().number(), 1);  // degraded at the end
  const auto& lag_track =
      timeline->Find("detectors")->Find("lag_divergence")->array();
  ASSERT_EQ(lag_track.size(), states.size());
  EXPECT_EQ(lag_track.back().number(), 1);
}

}  // namespace
}  // namespace screp::obs
