// Integration edge cases across modules: cold-start replica rebuild from
#include "runtime/sim_runtime.h"
// the certifier's durable log, duplicate message delivery, and
// interactions between begin-waiters and version waiters.

#include <gtest/gtest.h>

#include "consistency/checker.h"
#include "workload/experiment.h"
#include "workload/micro.h"

namespace screp {
namespace {

MicroConfig SmallMicro() {
  MicroConfig config;
  config.rows_per_table = 100;
  config.update_fraction = 1.0;
  return config;
}

class IntegrationEdgeTest : public ::testing::Test {
 protected:
  void Build(int replicas) {
    workload_ = std::make_unique<MicroWorkload>(SmallMicro());
    sim_ = std::make_unique<Simulator>();
    rt_ = std::make_unique<runtime::SimRuntime>(sim_.get());
    responses_.clear();
    SystemConfig config;
    config.replica_count = replicas;
    config.level = ConsistencyLevel::kLazyCoarse;
    auto system = ReplicatedSystem::Create(
        rt_.get(), config,
        [this](Database* db) { return workload_->BuildSchema(db); },
        [this](const Database& db, sql::TransactionRegistry* reg) {
          return workload_->DefineTransactions(db, reg);
        });
    ASSERT_TRUE(system.ok());
    system_ = std::move(system).value();
    system_->SetClientCallback(
        [this](const TxnResponse& r) { responses_.push_back(r); });
  }

  void SubmitUpdate(int64_t key, int64_t delta = 1) {
    TxnRequest req;
    req.txn_id = system_->NextTxnId();
    req.type = *system_->registry().Find("update_item0");
    req.session = 1;
    req.params = {{Value(delta), Value(key)}};
    system_->Submit(std::move(req));
  }

  std::unique_ptr<MicroWorkload> workload_;
  std::unique_ptr<Simulator> sim_;
  std::unique_ptr<runtime::SimRuntime> rt_;
  std::unique_ptr<ReplicatedSystem> system_;
  std::vector<TxnResponse> responses_;
};

// A brand-new node can be built from the initial population plus the
// certifier's durable writeset log — the cold-start join path.
TEST_F(IntegrationEdgeTest, ColdStartReplicaFromCertifierLog) {
  Build(2);
  for (int i = 0; i < 25; ++i) SubmitUpdate(i % 100);
  sim_->RunAll();
  ASSERT_EQ(responses_.size(), 25u);

  Database fresh;
  ASSERT_TRUE(workload_->BuildSchema(&fresh).ok());
  ASSERT_TRUE(fresh.RecoverFrom(system_->certifier()->wal()).ok());
  EXPECT_EQ(fresh.CommittedVersion(),
            system_->replica(0)->db()->CommittedVersion());
  // Content equals an existing replica's, row by row.
  const TableId t = *fresh.FindTable("item0");
  const DbVersion v = fresh.CommittedVersion();
  std::vector<std::string> fresh_rows, live_rows;
  fresh.table(t)->Scan(v, [&](int64_t, const Row& row) {
    fresh_rows.push_back(RowToString(row));
    return true;
  });
  system_->replica(0)->db()->table(t)->Scan(v, [&](int64_t,
                                                   const Row& row) {
    live_rows.push_back(RowToString(row));
    return true;
  });
  EXPECT_EQ(fresh_rows, live_rows);
}

TEST_F(IntegrationEdgeTest, DuplicateRefreshDeliveryIsIdempotent) {
  Build(2);
  SubmitUpdate(7, 5);
  sim_->RunAll();
  ASSERT_EQ(responses_.size(), 1u);
  const DbVersion v = system_->replica(1)->db()->CommittedVersion();
  ASSERT_EQ(v, 1);
  // Re-deliver the same refresh writeset (failover overlap): dropped.
  std::vector<WriteSet> log;
  ASSERT_TRUE(system_->certifier()->wal().ReadAll(&log).ok());
  ASSERT_EQ(log.size(), 1u);
  system_->replica(1)->proxy()->OnRefresh(log[0]);
  sim_->RunAll();
  EXPECT_EQ(system_->replica(1)->db()->CommittedVersion(), 1);
  const TableId t = *system_->replica(1)->db()->FindTable("item0");
  auto row = system_->replica(1)->db()->table(t)->Get(7, 1);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[1].AsInt(), (7 % 997) + 5);
}

TEST_F(IntegrationEdgeTest, VersionWaiterFiresExactlyOnce) {
  Build(2);
  int fired = 0;
  system_->replica(1)->proxy()->CallWhenVersionReached(
      2, [&fired]() { ++fired; });
  EXPECT_EQ(fired, 0);
  SubmitUpdate(1);
  sim_->RunAll();
  EXPECT_EQ(fired, 0);  // only at version 1
  SubmitUpdate(2);
  sim_->RunAll();
  EXPECT_EQ(fired, 1);
  SubmitUpdate(3);
  sim_->RunAll();
  EXPECT_EQ(fired, 1);  // not again
}

TEST_F(IntegrationEdgeTest, VersionWaiterImmediateWhenCurrent) {
  Build(2);
  int fired = 0;
  system_->replica(0)->proxy()->CallWhenVersionReached(
      0, [&fired]() { ++fired; });
  EXPECT_EQ(fired, 1);
}

TEST_F(IntegrationEdgeTest, ManyConcurrentClientsConvergeAndAudit) {
  // Heavier concurrency than the harness defaults: 24 clients on 3
  // replicas, hot 100-row table, pure updates — then audit everything.
  MicroWorkload workload(SmallMicro());
  History history;
  ExperimentConfig config;
  config.system.level = ConsistencyLevel::kLazyCoarse;
  config.system.replica_count = 3;
  config.client_count = 24;
  config.warmup = 0;
  config.duration = Seconds(2);
  config.history = &history;
  auto result = RunExperiment(workload, config);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->cert_aborts + result->early_aborts, 0)
      << "hot table should produce conflicts";
  CheckResult check = CheckAll(history, /*expect_strong=*/true);
  EXPECT_TRUE(check.ok) << check.ToString();
}

TEST_F(IntegrationEdgeTest, ReadOnlyTransactionsNeverTouchCertifier) {
  MicroConfig micro;
  micro.update_fraction = 0.0;
  MicroWorkload workload(micro);
  ExperimentConfig config;
  config.system.replica_count = 4;
  config.client_count = 8;
  config.warmup = 0;
  config.duration = Seconds(1);
  auto result = RunExperiment(workload, config);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->committed, 100);
  EXPECT_EQ(result->committed_updates, 0);
  EXPECT_EQ(result->certify_ms, 0.0);
  EXPECT_EQ(result->sync_ms, 0.0);
}

TEST_F(IntegrationEdgeTest, StageTimesSumMatchesServerSideLatency) {
  Build(3);
  SubmitUpdate(5);
  sim_->RunAll();
  ASSERT_EQ(responses_.size(), 1u);
  const TxnResponse& r = responses_[0];
  // Client response time = network hops + stage total; stages alone are
  // strictly less but in the same order of magnitude.
  const SimTime total = r.stages.Total();
  EXPECT_GT(total, 0);
  EXPECT_GT(Millis(1000), total);
  EXPECT_EQ(r.stages.version, 0);  // nothing to wait for on first txn
  EXPECT_GT(r.stages.queries, 0);
  EXPECT_GT(r.stages.certify, 0);
  EXPECT_GT(r.stages.commit, 0);
}

TEST_F(IntegrationEdgeTest, TxnIdsAreUniqueAndMonotonic) {
  Build(2);
  TxnId prev = 0;
  for (int i = 0; i < 100; ++i) {
    const TxnId id = system_->NextTxnId();
    EXPECT_GT(id, prev);
    prev = id;
  }
}

}  // namespace
}  // namespace screp
