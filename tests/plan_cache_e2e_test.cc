// End-to-end regression: the plan cache must not change what any figure
// driver prints.
//
// Every driver line goes through ExperimentResult::ToLine(), and every
// run goes through the SQL executor at every replica.  Running the same
// experiment with the cache on (the default) and off (the verbatim
// legacy per-Execute planning path) and comparing the full serialized
// results proves the hot-path rewrite is behaviorally invisible — the
// PR's byte-identity discipline as a test instead of a manual diff.

#include <gtest/gtest.h>

#include <string>

#include "sql/plan.h"
#include "workload/experiment.h"
#include "workload/micro.h"
#include "workload/tpcw.h"

namespace screp {
namespace {

ExperimentConfig ShortRun(ConsistencyLevel level) {
  ExperimentConfig config;
  config.system.level = level;
  config.system.replica_count = 3;
  config.client_count = 6;
  config.warmup = Seconds(0.5);
  config.duration = Seconds(3);
  config.seed = 11;
  return config;
}

/// Runs one experiment under both cache settings and returns the two
/// (ToLine, ToJson) serializations.
std::pair<std::string, std::string> RunBoth(const Workload& workload,
                                            const ExperimentConfig& config) {
  std::string serialized[2];
  for (const bool cached : {false, true}) {
    sql::SetPlanCacheEnabled(cached);
    auto result = RunExperiment(workload, config);
    sql::SetPlanCacheEnabled(true);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    if (!result.ok()) return {};
    serialized[cached ? 1 : 0] = result->ToLine() + "\n" + result->ToJson();
  }
  return {serialized[0], serialized[1]};
}

TEST(PlanCacheE2eTest, MicroRunByteIdenticalWithCacheOff) {
  MicroConfig micro;
  micro.rows_per_table = 500;
  micro.update_fraction = 0.3;
  MicroWorkload workload(micro);
  const auto [fresh, cached] =
      RunBoth(workload, ShortRun(ConsistencyLevel::kLazyCoarse));
  ASSERT_FALSE(fresh.empty());
  EXPECT_EQ(fresh, cached);
}

TEST(PlanCacheE2eTest, EagerMicroRunByteIdenticalWithCacheOff) {
  MicroConfig micro;
  micro.rows_per_table = 300;
  MicroWorkload workload(micro);
  const auto [fresh, cached] =
      RunBoth(workload, ShortRun(ConsistencyLevel::kEager));
  ASSERT_FALSE(fresh.empty());
  EXPECT_EQ(fresh, cached);
}

TEST(PlanCacheE2eTest, TpcwRunByteIdenticalWithCacheOff) {
  TpcwScale scale;
  TpcwWorkload workload(scale, TpcwMix::kShopping);
  ExperimentConfig config = ShortRun(ConsistencyLevel::kSession);
  config.system.proxy = TpcwProxyConfig();
  const auto [fresh, cached] = RunBoth(workload, config);
  ASSERT_FALSE(fresh.empty());
  EXPECT_EQ(fresh, cached);
}

}  // namespace
}  // namespace screp
