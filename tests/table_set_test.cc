#include "sql/table_set.h"

#include <gtest/gtest.h>

#include "storage/database.h"

namespace screp::sql {
namespace {

TEST(ExtractTableSetTest, DistinctSortedTables) {
  auto result = ExtractTableSet({
      "SELECT a FROM zebra WHERE a = 1",
      "UPDATE apple SET b = 2 WHERE a = 1",
      "SELECT a FROM zebra WHERE a = 2",
      "INSERT INTO mango VALUES (1)",
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result,
            (std::vector<std::string>{"apple", "mango", "zebra"}));
}

TEST(ExtractTableSetTest, FailsOnUnparsableStatement) {
  EXPECT_FALSE(ExtractTableSet({"SELECT FROM"}).ok());
}

TEST(ExtractTableSetTest, EmptyInputYieldsEmptySet) {
  auto result = ExtractTableSet({});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

class RegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.CreateTable("alpha",
                                Schema({{"id", ValueType::kInt64},
                                        {"v", ValueType::kInt64}}))
                    .ok());
    ASSERT_TRUE(db_.CreateTable("beta",
                                Schema({{"id", ValueType::kInt64},
                                        {"v", ValueType::kInt64}}))
                    .ok());
  }

  PreparedTransaction MakeTxn(const std::string& name,
                              std::vector<std::string> texts) {
    PreparedTransaction txn;
    txn.name = name;
    for (const std::string& text : texts) {
      auto stmt = PreparedStatement::Prepare(db_, text);
      EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
      txn.statements.push_back(std::move(stmt).value());
    }
    return txn;
  }

  Database db_;
};

TEST_F(RegistryTest, RegisterAssignsDenseIds) {
  TransactionRegistry registry;
  const TxnTypeId a =
      registry.Register(MakeTxn("read_a", {"SELECT v FROM alpha WHERE id = ?"}));
  const TxnTypeId b = registry.Register(
      MakeTxn("write_b", {"UPDATE beta SET v = ? WHERE id = ?"}));
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.Get(a).name, "read_a");
  EXPECT_FALSE(registry.Get(a).HasUpdates());
  EXPECT_TRUE(registry.Get(b).HasUpdates());
}

TEST_F(RegistryTest, FindByName) {
  TransactionRegistry registry;
  registry.Register(MakeTxn("t1", {"SELECT v FROM alpha WHERE id = ?"}));
  auto found = registry.Find("t1");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, 0);
  EXPECT_FALSE(registry.Find("missing").ok());
}

TEST_F(RegistryTest, TransactionTableSet) {
  TransactionRegistry registry;
  registry.Register(MakeTxn(
      "multi", {"SELECT v FROM beta WHERE id = ?",
                "UPDATE alpha SET v = ? WHERE id = ?",
                "SELECT v FROM beta WHERE id = ?"}));
  EXPECT_EQ(registry.Get(0).TableSet(),
            (std::vector<std::string>{"alpha", "beta"}));
}

TEST_F(RegistryTest, PersistAndLoadCatalogRoundTrip) {
  TransactionRegistry registry;
  registry.Register(MakeTxn("r", {"SELECT v FROM alpha WHERE id = ?"}));
  registry.Register(
      MakeTxn("w", {"UPDATE beta SET v = ? WHERE id = ?",
                    "UPDATE alpha SET v = ? WHERE id = ?"}));
  ASSERT_TRUE(registry.PersistCatalog(&db_).ok());

  auto loaded = TransactionRegistry::LoadCatalog(db_);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ(loaded->at(0), (std::vector<std::string>{"alpha"}));
  EXPECT_EQ(loaded->at(1), (std::vector<std::string>{"alpha", "beta"}));
}

TEST_F(RegistryTest, LoadCatalogWithoutPersistFails) {
  EXPECT_FALSE(TransactionRegistry::LoadCatalog(db_).ok());
}

TEST_F(RegistryTest, CatalogTableVisibleAsSysTablesets) {
  TransactionRegistry registry;
  registry.Register(MakeTxn("r", {"SELECT v FROM alpha WHERE id = ?"}));
  ASSERT_TRUE(registry.PersistCatalog(&db_).ok());
  EXPECT_TRUE(db_.FindTable("sys_tablesets").ok());
}

}  // namespace
}  // namespace screp::sql
