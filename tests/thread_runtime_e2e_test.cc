// End-to-end: the full replicated middleware on the wall-clock
// ThreadRuntime backend, driven by real client threads through the
// Post() MPSC ingress, with the online consistency auditor attached and
// a post-hoc replay of the event log.  This is the threading analogue of
// system_test — it exercises every cross-thread seam (Spawn workers,
// Post handoff, completion-slot rendezvous, Stop() drain) and is the
// test the TSan build stage leans on.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/auditor.h"
#include "runtime/thread_runtime.h"
#include "workload/micro.h"
#include "workload/realtime.h"

namespace screp {
namespace {

struct CompletionSlot {
  std::mutex mu;
  std::condition_variable cv;
  bool has_response = false;
  TxnResponse response;
};

struct E2eResult {
  int64_t committed = 0;
  int64_t aborted = 0;
  bool online_ok = false;
  bool replay_ok = false;
  int64_t events = 0;
  int64_t events_dropped = 0;
};

/// Runs `clients` closed-loop client threads for `txns_per_client`
/// committed transactions each over a fresh ThreadRuntime system.
E2eResult RunThreaded(ConsistencyLevel level, int clients,
                      int txns_per_client) {
  runtime::ThreadRuntimeConfig rt_config;
  rt_config.worker_threads = clients;
  rt_config.entropy_seed = 99;
  runtime::ThreadRuntime rt(rt_config);

  SystemConfig sys = RealtimeSystemConfig(/*replicas=*/2, level);
  sys.seed = 1234;
  sys.obs.audit = true;
  sys.obs.event_log = true;
  sys.obs.event_log_capacity = 1u << 18;

  MicroConfig micro_config;
  micro_config.update_fraction = 0.5;
  MicroWorkload workload(micro_config);

  auto system_or = ReplicatedSystem::Create(
      &rt, sys, [&](Database* db) { return workload.BuildSchema(db); },
      [&](const Database& db, sql::TransactionRegistry* reg) {
        return workload.DefineTransactions(db, reg);
      });
  SCREP_CHECK_MSG(system_or.ok(), system_or.status().ToString());
  std::unique_ptr<ReplicatedSystem> system = std::move(system_or).value();

  std::vector<std::unique_ptr<CompletionSlot>> slots;
  for (int c = 0; c < clients; ++c) {
    slots.push_back(std::make_unique<CompletionSlot>());
  }
  system->SetClientCallback([&slots](const TxnResponse& r) {
    CompletionSlot* slot = slots[static_cast<size_t>(r.client_id)].get();
    {
      std::lock_guard<std::mutex> lock(slot->mu);
      slot->response = r;
      slot->has_response = true;
    }
    slot->cv.notify_one();
  });

  std::vector<int64_t> committed(static_cast<size_t>(clients), 0);
  std::vector<int64_t> aborted(static_cast<size_t>(clients), 0);
  std::atomic<int> clients_done{0};
  std::mutex done_mu;
  std::condition_variable done_cv;

  Rng seed_rng(7);
  for (int c = 0; c < clients; ++c) {
    auto generator =
        workload.CreateGenerator(system->registry(), c, seed_rng.Fork());
    rt.Spawn([&, c,
              gen = std::shared_ptr<TxnGenerator>(std::move(generator))]() {
      CompletionSlot* slot = slots[static_cast<size_t>(c)].get();
      while (committed[static_cast<size_t>(c)] < txns_per_client) {
        const TxnSpec spec = gen->Next();
        rt.Post([&rt, &system, &spec, c]() {
          TxnRequest req;
          req.txn_id = system->NextTxnId();
          req.type = spec.type;
          req.session = static_cast<SessionId>(c);
          req.client_id = c;
          req.params = spec.params;
          req.submit_time = rt.Now();
          system->Submit(std::move(req));
        });
        TxnResponse response;
        {
          std::unique_lock<std::mutex> lock(slot->mu);
          slot->cv.wait(lock, [slot]() { return slot->has_response; });
          response = slot->response;
          slot->has_response = false;
        }
        if (response.outcome == TxnOutcome::kCommitted) {
          gen->OnCommitted(spec);
          ++committed[static_cast<size_t>(c)];
        } else {
          ++aborted[static_cast<size_t>(c)];
        }
      }
      if (clients_done.fetch_add(1) + 1 == clients) {
        std::lock_guard<std::mutex> lock(done_mu);
        done_cv.notify_all();
      }
    });
  }
  {
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&]() { return clients_done.load() == clients; });
  }

  E2eResult result;
  std::mutex verdict_mu;
  std::condition_variable verdict_cv;
  bool verdict_done = false;
  rt.Post([&]() {
    for (int c = 0; c < clients; ++c) {
      system->EndSession(static_cast<SessionId>(c));
    }
    std::lock_guard<std::mutex> lock(verdict_mu);
    const obs::Auditor* online = system->obs()->auditor();
    result.online_ok = online != nullptr && online->ok();
    const obs::EventLog* log = system->obs()->event_log();
    result.events = static_cast<int64_t>(log->Events().size());
    result.events_dropped = log->dropped();
    obs::AuditorConfig post_config;
    post_config.check_strong = ProvidesStrongConsistency(level);
    post_config.check_session =
        level != ConsistencyLevel::kBoundedStaleness;
    obs::MetricsRegistry scratch;
    obs::Auditor posthoc(post_config, &scratch);
    for (const obs::Event& e : log->Events()) posthoc.OnEvent(e);
    result.replay_ok = posthoc.ok();
    verdict_done = true;
    verdict_cv.notify_all();
  });
  {
    std::unique_lock<std::mutex> lock(verdict_mu);
    verdict_cv.wait(lock, [&]() { return verdict_done; });
  }
  rt.Stop();

  for (int c = 0; c < clients; ++c) {
    result.committed += committed[static_cast<size_t>(c)];
    result.aborted += aborted[static_cast<size_t>(c)];
  }
  return result;
}

TEST(ThreadRuntimeE2eTest, LazyCoarseWorkloadCommitsAuditClean) {
  const E2eResult r =
      RunThreaded(ConsistencyLevel::kLazyCoarse, /*clients=*/4,
                  /*txns_per_client=*/50);
  EXPECT_EQ(r.committed, 4 * 50);
  EXPECT_TRUE(r.online_ok);
  EXPECT_TRUE(r.replay_ok);
  EXPECT_GT(r.events, 0);
  EXPECT_EQ(r.events_dropped, 0);
}

TEST(ThreadRuntimeE2eTest, EagerStrongWorkloadCommitsAuditClean) {
  const E2eResult r =
      RunThreaded(ConsistencyLevel::kEager, /*clients=*/3,
                  /*txns_per_client=*/30);
  EXPECT_EQ(r.committed, 3 * 30);
  EXPECT_TRUE(r.online_ok);
  EXPECT_TRUE(r.replay_ok);
  EXPECT_EQ(r.events_dropped, 0);
}

TEST(ThreadRuntimeE2eTest, KvGridWorkloadReturnsReadResults) {
  // Drives the KvGrid workload (the TCP front-end's transaction family)
  // with collect_results set, checking read-your-writes through the
  // response's result rows.
  runtime::ThreadRuntimeConfig rt_config;
  rt_config.worker_threads = 1;
  rt_config.entropy_seed = 5;
  runtime::ThreadRuntime rt(rt_config);

  SystemConfig sys =
      RealtimeSystemConfig(/*replicas=*/2, ConsistencyLevel::kLazyCoarse);
  sys.seed = 77;

  KvGridConfig grid;
  grid.rows = 100;
  KvGridWorkload workload(grid);
  auto system_or = ReplicatedSystem::Create(
      &rt, sys, [&](Database* db) { return workload.BuildSchema(db); },
      [&](const Database& db, sql::TransactionRegistry* reg) {
        return workload.DefineTransactions(db, reg);
      });
  SCREP_CHECK_MSG(system_or.ok(), system_or.status().ToString());
  std::unique_ptr<ReplicatedSystem> system = std::move(system_or).value();

  CompletionSlot slot;
  system->SetClientCallback([&slot](const TxnResponse& r) {
    std::lock_guard<std::mutex> lock(slot.mu);
    slot.response = r;
    slot.has_response = true;
    slot.cv.notify_one();
  });

  auto run_txn = [&](int reads, int updates,
                     std::vector<std::vector<Value>> params) -> TxnResponse {
    auto type = workload.TypeFor(system->registry(), reads, updates);
    SCREP_CHECK_MSG(type.ok(), type.status().ToString());
    rt.Post([&rt, &system, &type, params = std::move(params)]() {
      TxnRequest req;
      req.txn_id = system->NextTxnId();
      req.type = *type;
      req.session = 0;
      req.client_id = 0;
      req.params = params;
      req.collect_results = true;
      req.submit_time = rt.Now();
      system->Submit(std::move(req));
    });
    std::unique_lock<std::mutex> lock(slot.mu);
    slot.cv.wait(lock, [&slot]() { return slot.has_response; });
    slot.has_response = false;
    return slot.response;
  };

  // UPDATE kv SET val = 4242 WHERE id = 17.
  TxnResponse w = run_txn(0, 1, {{Value(4242), Value(17)}});
  ASSERT_EQ(w.outcome, TxnOutcome::kCommitted);

  // SELECT id, val FROM kv WHERE id = 17 — same session, so session
  // guarantees make the write visible at every level.
  TxnResponse r = run_txn(1, 0, {{Value(17)}});
  ASSERT_EQ(r.outcome, TxnOutcome::kCommitted);
  ASSERT_EQ(r.results.size(), 1u);
  ASSERT_EQ(r.results[0].size(), 1u);
  ASSERT_EQ(r.results[0][0].size(), 2u);
  EXPECT_EQ(r.results[0][0][0].AsInt(), 17);
  EXPECT_EQ(r.results[0][0][1].AsInt(), 4242);

  std::mutex end_mu;
  std::condition_variable end_cv;
  bool ended = false;
  rt.Post([&]() {
    system->EndSession(0);
    std::lock_guard<std::mutex> lock(end_mu);
    ended = true;
    end_cv.notify_all();
  });
  {
    std::unique_lock<std::mutex> lock(end_mu);
    end_cv.wait(lock, [&]() { return ended; });
  }
  rt.Stop();
}

}  // namespace
}  // namespace screp
