#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace screp {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.Now(), 0);
  EXPECT_TRUE(sim.Empty());
}

TEST(SimulatorTest, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(Millis(3), [&] { order.push_back(3); });
  sim.Schedule(Millis(1), [&] { order.push_back(1); });
  sim.Schedule(Millis(2), [&] { order.push_back(2); });
  sim.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), Millis(3));
}

TEST(SimulatorTest, SameTimeEventsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(Millis(1), [&order, i] { order.push_back(i); });
  }
  sim.RunAll();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator sim;
  SimTime fired_at = -1;
  sim.Schedule(Millis(1), [&] {
    sim.Schedule(Millis(2), [&] { fired_at = sim.Now(); });
  });
  sim.RunAll();
  EXPECT_EQ(fired_at, Millis(3));
}

TEST(SimulatorTest, NegativeDelayClampsToNow) {
  Simulator sim;
  sim.Schedule(Millis(5), [&] {
    sim.Schedule(-Millis(1), [&] { EXPECT_EQ(sim.Now(), Millis(5)); });
  });
  sim.RunAll();
}

TEST(SimulatorTest, RunUntilStopsAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(Millis(1), [&] { ++fired; });
  sim.Schedule(Millis(10), [&] { ++fired; });
  sim.RunUntil(Millis(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), Millis(5));
  EXPECT_EQ(sim.PendingEvents(), 1u);
  sim.RunUntil(Millis(20));
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, StepExecutesExactlyOne) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(1, [&] { ++fired; });
  sim.Schedule(2, [&] { ++fired; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.Schedule(i, [] {});
  sim.RunAll();
  EXPECT_EQ(sim.EventsExecuted(), 5u);
}

TEST(SimulatorTest, RunAllWithCascades) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&]() {
    if (++depth < 100) sim.Schedule(1, chain);
  };
  sim.Schedule(1, chain);
  sim.RunAll();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.Now(), 100);
}

TEST(TimeHelpersTest, Conversions) {
  EXPECT_EQ(Millis(1.5), 1500);
  EXPECT_EQ(Seconds(2), 2000000);
  EXPECT_DOUBLE_EQ(ToMillis(1500), 1.5);
  EXPECT_DOUBLE_EQ(ToSeconds(2000000), 2.0);
}

}  // namespace
}  // namespace screp
