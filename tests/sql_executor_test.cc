#include "sql/executor.h"

#include <gtest/gtest.h>

#include "storage/database.h"

namespace screp::sql {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto id = db_.CreateTable("item",
                              Schema({{"i_id", ValueType::kInt64},
                                      {"i_title", ValueType::kString},
                                      {"i_cost", ValueType::kDouble},
                                      {"i_stock", ValueType::kInt64}}));
    ASSERT_TRUE(id.ok());
    item_ = *id;
    for (int64_t k = 0; k < 20; ++k) {
      ASSERT_TRUE(db_.BulkLoad(item_, {Value(k),
                                       Value("title" + std::to_string(k)),
                                       Value(5.0 + static_cast<double>(k)),
                                       Value(100 - k)})
                      .ok());
    }
  }

  PreparedStatementPtr Prep(const std::string& text) {
    auto stmt = PreparedStatement::Prepare(db_, text);
    EXPECT_TRUE(stmt.ok()) << text << ": " << stmt.status().ToString();
    return std::move(stmt).value();
  }

  ResultSet Exec(Transaction* txn, const std::string& text,
                 std::vector<Value> params = {}) {
    auto stmt = Prep(text);
    auto rs = Execute(txn, *stmt, params);
    EXPECT_TRUE(rs.ok()) << text << ": " << rs.status().ToString();
    return std::move(rs).value();
  }

  Database db_;
  TableId item_ = -1;
};

TEST_F(ExecutorTest, PointSelectByPrimaryKey) {
  auto txn = db_.Begin();
  ResultSet rs =
      Exec(txn.get(), "SELECT i_title, i_cost FROM item WHERE i_id = ?",
           {Value(3)});
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].AsString(), "title3");
  EXPECT_DOUBLE_EQ(rs.rows[0][1].AsDouble(), 8.0);
  EXPECT_EQ(rs.rows_examined, 1);  // point access, not a scan
  EXPECT_EQ(rs.columns, (std::vector<std::string>{"i_title", "i_cost"}));
}

TEST_F(ExecutorTest, PointSelectMissingKeyEmpty) {
  auto txn = db_.Begin();
  ResultSet rs = Exec(txn.get(), "SELECT i_id FROM item WHERE i_id = ?",
                      {Value(999)});
  EXPECT_TRUE(rs.rows.empty());
}

TEST_F(ExecutorTest, SelectStarExpandsSchema) {
  auto txn = db_.Begin();
  ResultSet rs =
      Exec(txn.get(), "SELECT * FROM item WHERE i_id = 0");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0].size(), 4u);
  EXPECT_EQ(rs.columns[0], "i_id");
}

TEST_F(ExecutorTest, RangeScanWithBetween) {
  auto txn = db_.Begin();
  ResultSet rs = Exec(txn.get(),
                      "SELECT i_id FROM item WHERE i_id BETWEEN ? AND ?",
                      {Value(5), Value(8)});
  ASSERT_EQ(rs.rows.size(), 4u);
  EXPECT_EQ(rs.rows.front()[0].AsInt(), 5);
  EXPECT_EQ(rs.rows.back()[0].AsInt(), 8);
  EXPECT_EQ(rs.rows_examined, 4);
}

TEST_F(ExecutorTest, FullScanWithSecondaryPredicate) {
  auto txn = db_.Begin();
  ResultSet rs = Exec(txn.get(),
                      "SELECT i_id FROM item WHERE i_stock >= ?",
                      {Value(95)});
  EXPECT_EQ(rs.rows.size(), 6u);  // stock 100..95 for ids 0..5
  EXPECT_EQ(rs.rows_examined, 20);  // full scan
}

TEST_F(ExecutorTest, ConjunctionFiltersOnTopOfPointAccess) {
  auto txn = db_.Begin();
  ResultSet rs = Exec(txn.get(),
                      "SELECT i_id FROM item WHERE i_id = ? AND i_stock > ?",
                      {Value(3), Value(500)});
  EXPECT_TRUE(rs.rows.empty());
}

TEST_F(ExecutorTest, OrderByDescWithLimit) {
  auto txn = db_.Begin();
  ResultSet rs = Exec(
      txn.get(),
      "SELECT i_id, i_cost FROM item ORDER BY i_cost DESC LIMIT 3");
  ASSERT_EQ(rs.rows.size(), 3u);
  EXPECT_EQ(rs.rows[0][0].AsInt(), 19);
  EXPECT_EQ(rs.rows[1][0].AsInt(), 18);
  EXPECT_EQ(rs.rows[2][0].AsInt(), 17);
}

TEST_F(ExecutorTest, LimitWithoutOrderStopsEarly) {
  auto txn = db_.Begin();
  ResultSet rs = Exec(txn.get(), "SELECT i_id FROM item LIMIT 5");
  EXPECT_EQ(rs.rows.size(), 5u);
  EXPECT_EQ(rs.rows_examined, 5);  // early-stopped scan
}

TEST_F(ExecutorTest, LimitAsParameter) {
  auto txn = db_.Begin();
  ResultSet rs =
      Exec(txn.get(), "SELECT i_id FROM item LIMIT ?", {Value(2)});
  EXPECT_EQ(rs.rows.size(), 2u);
}

TEST_F(ExecutorTest, Aggregates) {
  auto txn = db_.Begin();
  ResultSet rs = Exec(
      txn.get(),
      "SELECT COUNT(*), SUM(i_stock), MIN(i_cost), MAX(i_cost), "
      "AVG(i_stock) FROM item");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].AsInt(), 20);
  EXPECT_DOUBLE_EQ(rs.rows[0][1].AsDouble(), 1810.0);  // sum 81..100
  EXPECT_DOUBLE_EQ(rs.rows[0][2].AsDouble(), 5.0);
  EXPECT_DOUBLE_EQ(rs.rows[0][3].AsDouble(), 24.0);
  EXPECT_DOUBLE_EQ(rs.rows[0][4].AsDouble(), 90.5);
}

TEST_F(ExecutorTest, AggregateOverEmptyMatch) {
  auto txn = db_.Begin();
  ResultSet rs = Exec(txn.get(),
                      "SELECT COUNT(*), MAX(i_cost) FROM item WHERE i_id = "
                      "12345");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].AsInt(), 0);
  EXPECT_TRUE(rs.rows[0][1].is_null());
}

TEST_F(ExecutorTest, MixedAggregateAndColumnRejected) {
  auto txn = db_.Begin();
  auto stmt = Prep("SELECT i_id, COUNT(*) FROM item");
  EXPECT_FALSE(Execute(txn.get(), *stmt, {}).ok());
}

TEST_F(ExecutorTest, UpdateByKeyWithArithmetic) {
  auto txn = db_.Begin();
  ResultSet rs =
      Exec(txn.get(),
           "UPDATE item SET i_stock = i_stock - ? WHERE i_id = ?",
           {Value(10), Value(0)});
  EXPECT_EQ(rs.rows_affected, 1);
  ResultSet check = Exec(txn.get(),
                         "SELECT i_stock FROM item WHERE i_id = 0");
  EXPECT_EQ(check.rows[0][0].AsInt(), 90);
}

TEST_F(ExecutorTest, UpdateByPredicateAffectsAllMatches) {
  auto txn = db_.Begin();
  ResultSet rs = Exec(txn.get(),
                      "UPDATE item SET i_stock = 0 WHERE i_id BETWEEN ? AND ?",
                      {Value(1), Value(3)});
  EXPECT_EQ(rs.rows_affected, 3);
}

TEST_F(ExecutorTest, UpdateStringConcat) {
  auto txn = db_.Begin();
  Exec(txn.get(),
       "UPDATE item SET i_title = i_title + '!' WHERE i_id = 1");
  ResultSet rs = Exec(txn.get(), "SELECT i_title FROM item WHERE i_id = 1");
  EXPECT_EQ(rs.rows[0][0].AsString(), "title1!");
}

TEST_F(ExecutorTest, InsertThenVisibleInSameTxn) {
  auto txn = db_.Begin();
  ResultSet rs = Exec(txn.get(), "INSERT INTO item VALUES (?, ?, ?, ?)",
                      {Value(100), Value("new"), Value(9.99), Value(5)});
  EXPECT_EQ(rs.rows_affected, 1);
  ResultSet check =
      Exec(txn.get(), "SELECT i_title FROM item WHERE i_id = 100");
  ASSERT_EQ(check.rows.size(), 1u);
  EXPECT_EQ(check.rows[0][0].AsString(), "new");
}

TEST_F(ExecutorTest, InsertDuplicateFails) {
  auto txn = db_.Begin();
  auto stmt = Prep("INSERT INTO item VALUES (?, ?, ?, ?)");
  auto rs = Execute(txn.get(), *stmt,
                    {Value(0), Value("dup"), Value(1.0), Value(1)});
  EXPECT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kAlreadyExists);
}

TEST_F(ExecutorTest, DeleteByRange) {
  auto txn = db_.Begin();
  ResultSet rs = Exec(txn.get(),
                      "DELETE FROM item WHERE i_id BETWEEN ? AND ?",
                      {Value(0), Value(4)});
  EXPECT_EQ(rs.rows_affected, 5);
  ResultSet count = Exec(txn.get(), "SELECT COUNT(*) FROM item");
  EXPECT_EQ(count.rows[0][0].AsInt(), 15);
}

TEST_F(ExecutorTest, DeleteNoMatchesIsZeroAffected) {
  auto txn = db_.Begin();
  ResultSet rs = Exec(txn.get(), "DELETE FROM item WHERE i_id = ?",
                      {Value(777)});
  EXPECT_EQ(rs.rows_affected, 0);
}

TEST_F(ExecutorTest, ParameterArityChecked) {
  auto txn = db_.Begin();
  auto stmt = Prep("SELECT i_id FROM item WHERE i_id = ?");
  EXPECT_FALSE(Execute(txn.get(), *stmt, {}).ok());
  EXPECT_FALSE(Execute(txn.get(), *stmt, {Value(1), Value(2)}).ok());
}

TEST_F(ExecutorTest, NotEqualsAndInequalities) {
  auto txn = db_.Begin();
  ResultSet ne = Exec(txn.get(),
                      "SELECT COUNT(*) FROM item WHERE i_id <> 0");
  EXPECT_EQ(ne.rows[0][0].AsInt(), 19);
  ResultSet lt =
      Exec(txn.get(), "SELECT COUNT(*) FROM item WHERE i_id < 5");
  EXPECT_EQ(lt.rows[0][0].AsInt(), 5);
  ResultSet ge =
      Exec(txn.get(), "SELECT COUNT(*) FROM item WHERE i_id >= 18");
  EXPECT_EQ(ge.rows[0][0].AsInt(), 2);
}

TEST_F(ExecutorTest, PrepareRejectsBadReferences) {
  EXPECT_FALSE(PreparedStatement::Prepare(db_, "SELECT x FROM item").ok());
  EXPECT_FALSE(
      PreparedStatement::Prepare(db_, "SELECT i_id FROM missing").ok());
  EXPECT_FALSE(PreparedStatement::Prepare(
                   db_, "UPDATE item SET i_id = 1 WHERE i_id = 0")
                   .ok());
  EXPECT_FALSE(
      PreparedStatement::Prepare(db_, "INSERT INTO item VALUES (1)").ok());
  EXPECT_FALSE(PreparedStatement::Prepare(
                   db_, "DELETE FROM item")  // no WHERE
                   .ok());
  EXPECT_FALSE(PreparedStatement::Prepare(
                   db_, "SELECT i_id FROM item ORDER BY zzz")
                   .ok());
}

TEST_F(ExecutorTest, UpdateSeenThroughSnapshotAfterCommit) {
  // Commit an update through the writeset path, then re-read.
  auto writer = db_.Begin();
  Exec(writer.get(), "UPDATE item SET i_stock = 7 WHERE i_id = 9");
  WriteSet ws = writer->BuildWriteSet();
  ws.commit_version = 1;
  ASSERT_TRUE(db_.ApplyWriteSet(ws).ok());
  auto reader = db_.Begin();
  ResultSet rs = Exec(reader.get(),
                      "SELECT i_stock FROM item WHERE i_id = 9");
  EXPECT_EQ(rs.rows[0][0].AsInt(), 7);
}

}  // namespace
}  // namespace screp::sql
