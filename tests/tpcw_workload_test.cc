#include "workload/tpcw.h"

#include <gtest/gtest.h>

namespace screp {
namespace {

TpcwScale TinyScale() {
  TpcwScale scale;
  scale.items = 120;
  scale.customers = 60;
  scale.initial_orders = 40;
  scale.subjects = 6;
  return scale;
}

class TpcwTest : public ::testing::Test {
 protected:
  void Build(TpcwMix mix = TpcwMix::kShopping) {
    db_ptr_ = std::make_unique<Database>();
    registry_ptr_ = std::make_unique<sql::TransactionRegistry>();
    workload_ = std::make_unique<TpcwWorkload>(TinyScale(), mix);
    ASSERT_TRUE(workload_->BuildSchema(db_ptr_.get()).ok());
    ASSERT_TRUE(
        workload_->DefineTransactions(*db_ptr_, registry_ptr_.get()).ok());
  }

  Database& db() { return *db_ptr_; }
  sql::TransactionRegistry& registry() { return *registry_ptr_; }

  std::unique_ptr<Database> db_ptr_;
  std::unique_ptr<sql::TransactionRegistry> registry_ptr_;
  std::unique_ptr<TpcwWorkload> workload_;
};

TEST_F(TpcwTest, SchemaHasTenTables) {
  Build();
  EXPECT_EQ(db().TableCount(), 10u);
  for (const char* table :
       {"country", "author", "address", "customer", "item", "orders",
        "order_line", "cc_xacts", "shopping_cart", "shopping_cart_line"}) {
    EXPECT_TRUE(db().FindTable(table).ok()) << table;
  }
}

TEST_F(TpcwTest, PopulationMatchesScale) {
  Build();
  const TpcwScale scale = TinyScale();
  auto rows = [&](const char* name) {
    return db().table(*db().FindTable(name))->LiveRowCount(0);
  };
  EXPECT_EQ(rows("item"), static_cast<size_t>(scale.items));
  EXPECT_EQ(rows("customer"), static_cast<size_t>(scale.customers));
  EXPECT_EQ(rows("country"), static_cast<size_t>(scale.countries));
  EXPECT_EQ(rows("orders"), static_cast<size_t>(scale.initial_orders));
  EXPECT_EQ(rows("order_line"),
            static_cast<size_t>(scale.initial_orders *
                                scale.lines_per_order));
  EXPECT_EQ(rows("shopping_cart"), 0u);
}

TEST_F(TpcwTest, PopulationIsDeterministicAcrossReplicas) {
  Build();
  Database db2;
  ASSERT_TRUE(workload_->BuildSchema(&db2).ok());
  const TableId item = *db().FindTable("item");
  std::vector<std::string> a, b;
  db().table(item)->Scan(0, [&](int64_t, const Row& row) {
    a.push_back(RowToString(row));
    return true;
  });
  db2.table(item)->Scan(0, [&](int64_t, const Row& row) {
    b.push_back(RowToString(row));
    return true;
  });
  EXPECT_EQ(a, b);
}

TEST_F(TpcwTest, AllTwelveInteractionsRegistered) {
  Build();
  EXPECT_EQ(registry().size(), 12u);
  for (const char* name :
       {tpcw::kHome, tpcw::kProductDetail, tpcw::kSearchBySubject,
        tpcw::kNewProducts, tpcw::kBestSellers, tpcw::kOrderInquiry,
        tpcw::kShoppingCart, tpcw::kCartUpdate,
        tpcw::kCustomerRegistration, tpcw::kBuyRequest, tpcw::kBuyConfirm,
        tpcw::kAdminUpdate}) {
    EXPECT_TRUE(registry().Find(name).ok()) << name;
  }
}

TEST_F(TpcwTest, TableSetsAreStaticallyMeaningful) {
  Build();
  // Search touches only the item table — the fine-grained scheme's best
  // case when carts are the hot update target.
  EXPECT_EQ(registry().Get(*registry().Find(tpcw::kSearchBySubject)).TableSet(),
            (std::vector<std::string>{"item"}));
  // Buy confirm touches six tables.
  const auto buy = registry().Get(*registry().Find(tpcw::kBuyConfirm)).TableSet();
  EXPECT_EQ(buy.size(), 6u);
  // Product detail reads item and author only.
  EXPECT_EQ(registry().Get(*registry().Find(tpcw::kProductDetail)).TableSet(),
            (std::vector<std::string>{"author", "item"}));
}

TEST_F(TpcwTest, MixUpdateFractions) {
  EXPECT_DOUBLE_EQ(TpcwUpdateFraction(TpcwMix::kBrowsing), 0.05);
  EXPECT_DOUBLE_EQ(TpcwUpdateFraction(TpcwMix::kShopping), 0.20);
  EXPECT_DOUBLE_EQ(TpcwUpdateFraction(TpcwMix::kOrdering), 0.50);
  EXPECT_EQ(TpcwClientsPerReplica(TpcwMix::kBrowsing), 10);
  EXPECT_EQ(TpcwClientsPerReplica(TpcwMix::kShopping), 8);
  EXPECT_EQ(TpcwClientsPerReplica(TpcwMix::kOrdering), 5);
  EXPECT_STREQ(TpcwMixName(TpcwMix::kOrdering), "ordering");
}

TEST_F(TpcwTest, GeneratorUpdateFractionTracksMix) {
  for (TpcwMix mix :
       {TpcwMix::kBrowsing, TpcwMix::kShopping, TpcwMix::kOrdering}) {
    Build(mix);
    auto gen = workload_->CreateGenerator(registry(), 0, Rng(5));
    int updates = 0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
      TxnSpec spec = gen->Next();
      if (registry().Get(spec.type).HasUpdates()) ++updates;
      gen->OnCommitted(spec);  // drive the state machine forward
    }
    EXPECT_NEAR(updates / static_cast<double>(n), TpcwUpdateFraction(mix),
                0.03)
        << TpcwMixName(mix);
  }
}

TEST_F(TpcwTest, GeneratorParamsAlwaysMatchStatementArity) {
  Build(TpcwMix::kOrdering);
  auto gen = workload_->CreateGenerator(registry(), 3, Rng(9));
  for (int i = 0; i < 3000; ++i) {
    TxnSpec spec = gen->Next();
    const sql::PreparedTransaction& txn = registry().Get(spec.type);
    ASSERT_EQ(spec.params.size(), txn.statements.size())
        << txn.name << " at iteration " << i;
    for (size_t s = 0; s < txn.statements.size(); ++s) {
      ASSERT_EQ(static_cast<int>(spec.params[s].size()),
                txn.statements[s]->param_count())
          << txn.name << " statement " << s;
    }
    gen->OnCommitted(spec);
  }
}

TEST_F(TpcwTest, EveryGeneratedTransactionExecutes) {
  // Execute a long generated stream against a standalone database,
  // committing each transaction — no statement may fail.
  Build(TpcwMix::kOrdering);
  auto gen = workload_->CreateGenerator(registry(), 1, Rng(21));
  for (int i = 0; i < 500; ++i) {
    TxnSpec spec = gen->Next();
    const sql::PreparedTransaction& prepared = registry().Get(spec.type);
    auto txn = db().Begin();
    for (size_t s = 0; s < prepared.statements.size(); ++s) {
      auto rs = sql::Execute(txn.get(), *prepared.statements[s],
                             spec.params[s]);
      ASSERT_TRUE(rs.ok()) << prepared.name << " stmt " << s << " iter "
                           << i << ": " << rs.status().ToString();
    }
    if (!txn->read_only()) {
      WriteSet ws = txn->BuildWriteSet();
      ws.commit_version = db().CommittedVersion() + 1;
      ASSERT_TRUE(db().ApplyWriteSet(ws).ok());
    }
    gen->OnCommitted(spec);
  }
  // The stream created real orders and carts.
  EXPECT_GT(db().table(*db().FindTable("orders"))
                ->LiveRowCount(db().CommittedVersion()),
            static_cast<size_t>(TinyScale().initial_orders));
}

TEST_F(TpcwTest, BuyConfirmOnlyAfterCommittedCart) {
  Build(TpcwMix::kOrdering);
  auto gen = workload_->CreateGenerator(registry(), 0, Rng(33));
  const TxnTypeId buy_confirm = *registry().Find(tpcw::kBuyConfirm);
  const TxnTypeId cart = *registry().Find(tpcw::kShoppingCart);
  int committed_carts = 0;
  int buys = 0;
  for (int i = 0; i < 2000; ++i) {
    TxnSpec spec = gen->Next();
    if (spec.type == buy_confirm) {
      ++buys;
      ASSERT_GT(committed_carts, 0) << "buy before any cart committed";
      --committed_carts;  // consumed on commit
    }
    if (spec.type == cart) ++committed_carts;
    gen->OnCommitted(spec);
  }
  EXPECT_GT(buys, 0);
}

TEST_F(TpcwTest, SubjectRangesPartitionItems) {
  const TpcwScale scale = TinyScale();
  int64_t expected_lo = 0;
  for (int s = 0; s < scale.subjects; ++s) {
    int64_t lo, hi;
    tpcw::SubjectRange(scale, s, &lo, &hi);
    EXPECT_EQ(lo, expected_lo);
    EXPECT_GE(hi, lo);
    expected_lo = hi + 1;
  }
  EXPECT_EQ(expected_lo, scale.items);
}

}  // namespace
}  // namespace screp
