#include "storage/write_set.h"

#include <gtest/gtest.h>

namespace screp {
namespace {

TEST(WriteSetTest, EmptyByDefault) {
  WriteSet ws;
  EXPECT_TRUE(ws.empty());
  EXPECT_EQ(ws.commit_version, kNoVersion);
}

TEST(WriteSetTest, AddCoalescesLastWriteWins) {
  WriteSet ws;
  ws.Add(0, 1, WriteType::kUpdate, Row{Value(1), Value(10)});
  ws.Add(0, 1, WriteType::kUpdate, Row{Value(1), Value(20)});
  ASSERT_EQ(ws.size(), 1u);
  EXPECT_EQ((*ws.ops[0].row)[1].AsInt(), 20);
}

TEST(WriteSetTest, InsertThenUpdateStaysInsert) {
  WriteSet ws;
  ws.Add(0, 1, WriteType::kInsert, Row{Value(1), Value(10)});
  ws.Add(0, 1, WriteType::kUpdate, Row{Value(1), Value(20)});
  ASSERT_EQ(ws.size(), 1u);
  EXPECT_EQ(ws.ops[0].type, WriteType::kInsert);
  EXPECT_EQ((*ws.ops[0].row)[1].AsInt(), 20);
}

TEST(WriteSetTest, InsertThenDeleteBecomesDelete) {
  WriteSet ws;
  ws.Add(0, 1, WriteType::kInsert, Row{Value(1), Value(10)});
  ws.Add(0, 1, WriteType::kDelete, std::nullopt);
  ASSERT_EQ(ws.size(), 1u);
  EXPECT_EQ(ws.ops[0].type, WriteType::kDelete);
  EXPECT_FALSE(ws.ops[0].row.has_value());
}

TEST(WriteSetTest, DistinctKeysKept) {
  WriteSet ws;
  ws.Add(0, 1, WriteType::kUpdate, Row{Value(1)});
  ws.Add(0, 2, WriteType::kUpdate, Row{Value(2)});
  ws.Add(1, 1, WriteType::kUpdate, Row{Value(1)});
  EXPECT_EQ(ws.size(), 3u);
}

TEST(WriteSetTest, ConflictDetection) {
  WriteSet a, b, c;
  a.Add(0, 1, WriteType::kUpdate, Row{Value(1)});
  b.Add(0, 1, WriteType::kDelete, std::nullopt);
  c.Add(0, 2, WriteType::kUpdate, Row{Value(2)});
  EXPECT_TRUE(a.ConflictsWith(b));
  EXPECT_TRUE(b.ConflictsWith(a));
  EXPECT_FALSE(a.ConflictsWith(c));
  // Same key, different table: no conflict.
  WriteSet d;
  d.Add(1, 1, WriteType::kUpdate, Row{Value(1)});
  EXPECT_FALSE(a.ConflictsWith(d));
}

TEST(WriteSetTest, EmptyNeverConflicts) {
  WriteSet a, empty;
  a.Add(0, 1, WriteType::kUpdate, Row{Value(1)});
  EXPECT_FALSE(a.ConflictsWith(empty));
  EXPECT_FALSE(empty.ConflictsWith(a));
}

TEST(WriteSetTest, TablesWrittenSortedDistinct) {
  WriteSet ws;
  ws.Add(2, 1, WriteType::kUpdate, Row{Value(1)});
  ws.Add(0, 1, WriteType::kUpdate, Row{Value(1)});
  ws.Add(2, 2, WriteType::kUpdate, Row{Value(2)});
  EXPECT_EQ(ws.TablesWritten(), (std::vector<TableId>{0, 2}));
}

TEST(WriteSetTest, ByteSizeGrowsWithContent) {
  WriteSet small, large;
  small.Add(0, 1, WriteType::kUpdate, Row{Value(1)});
  large.Add(0, 1, WriteType::kUpdate,
            Row{Value(1), Value(std::string(500, 'x'))});
  EXPECT_GT(large.ByteSize(), small.ByteSize());
}

TEST(WriteSetTest, SerializedBytesMatchesEncodedSize) {
  // SerializedBytes() is the network size model (per-byte link latency);
  // it must stay in lockstep with the actual wire encoding.
  WriteSet empty;
  std::string buf;
  empty.EncodeTo(&buf);
  EXPECT_EQ(empty.SerializedBytes(), buf.size());

  WriteSet ws;
  ws.txn_id = 42;
  ws.snapshot_version = 7;
  ws.commit_version = 9;
  ws.origin = 3;
  ws.Add(0, 1, WriteType::kInsert,
         Row{Value(1), Value("hello"), Value(2.5), Value()});
  ws.Add(1, 2, WriteType::kDelete, std::nullopt);
  ws.Add(2, 3, WriteType::kUpdate, Row{Value(3), Value(-5)});
  ws.read_keys = {{0, 1}, {2, 99}};
  ws.read_ranges = {{1, 10, 20}};
  buf.clear();
  ws.EncodeTo(&buf);
  EXPECT_EQ(ws.SerializedBytes(), buf.size());

  WriteSet big;
  big.Add(0, 5, WriteType::kUpdate,
          Row{Value(5), Value(std::string(500, 'x'))});
  buf.clear();
  big.EncodeTo(&buf);
  EXPECT_EQ(big.SerializedBytes(), buf.size());
}

TEST(WriteSetTest, EncodeDecodeRoundTrip) {
  WriteSet ws;
  ws.txn_id = 42;
  ws.snapshot_version = 7;
  ws.commit_version = 9;
  ws.origin = 3;
  ws.Add(0, 1, WriteType::kInsert,
         Row{Value(1), Value("hello"), Value(2.5), Value()});
  ws.Add(1, 2, WriteType::kDelete, std::nullopt);
  ws.Add(2, 3, WriteType::kUpdate, Row{Value(3), Value(-5)});

  std::string buf;
  ws.EncodeTo(&buf);
  WriteSet decoded;
  size_t offset = 0;
  ASSERT_TRUE(WriteSet::DecodeFrom(buf, &offset, &decoded));
  EXPECT_EQ(offset, buf.size());
  EXPECT_EQ(decoded.txn_id, 42u);
  EXPECT_EQ(decoded.snapshot_version, 7);
  EXPECT_EQ(decoded.commit_version, 9);
  EXPECT_EQ(decoded.origin, 3);
  ASSERT_EQ(decoded.size(), 3u);
  EXPECT_EQ(decoded.ops[0].type, WriteType::kInsert);
  EXPECT_EQ((*decoded.ops[0].row)[1].AsString(), "hello");
  EXPECT_DOUBLE_EQ((*decoded.ops[0].row)[2].AsDouble(), 2.5);
  EXPECT_TRUE((*decoded.ops[0].row)[3].is_null());
  EXPECT_EQ(decoded.ops[1].type, WriteType::kDelete);
  EXPECT_FALSE(decoded.ops[1].row.has_value());
  EXPECT_EQ((*decoded.ops[2].row)[1].AsInt(), -5);
}

TEST(WriteSetTest, DecodeTruncatedFails) {
  WriteSet ws;
  ws.Add(0, 1, WriteType::kUpdate, Row{Value(1), Value("payload")});
  std::string buf;
  ws.EncodeTo(&buf);
  for (size_t cut : {buf.size() - 1, buf.size() / 2, size_t{3}}) {
    WriteSet decoded;
    size_t offset = 0;
    EXPECT_FALSE(
        WriteSet::DecodeFrom(buf.substr(0, cut), &offset, &decoded));
  }
}

TEST(WriteSetTest, MultipleRecordsSequentialDecode) {
  std::string buf;
  for (int i = 0; i < 3; ++i) {
    WriteSet ws;
    ws.txn_id = static_cast<TxnId>(i);
    ws.Add(0, i, WriteType::kUpdate, Row{Value(i)});
    ws.EncodeTo(&buf);
  }
  size_t offset = 0;
  for (int i = 0; i < 3; ++i) {
    WriteSet decoded;
    ASSERT_TRUE(WriteSet::DecodeFrom(buf, &offset, &decoded));
    EXPECT_EQ(decoded.txn_id, static_cast<TxnId>(i));
  }
  EXPECT_EQ(offset, buf.size());
}

TEST(WriteSetTest, ToStringMentionsOps) {
  WriteSet ws;
  ws.txn_id = 1;
  ws.Add(0, 7, WriteType::kDelete, std::nullopt);
  EXPECT_NE(ws.ToString().find("del t0#7"), std::string::npos);
}

}  // namespace
}  // namespace screp
