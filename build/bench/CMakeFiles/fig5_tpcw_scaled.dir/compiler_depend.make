# Empty compiler generated dependencies file for fig5_tpcw_scaled.
# This may be replaced when dependencies are built.
