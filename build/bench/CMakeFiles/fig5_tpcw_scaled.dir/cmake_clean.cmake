file(REMOVE_RECURSE
  "CMakeFiles/fig5_tpcw_scaled.dir/fig5_tpcw_scaled.cc.o"
  "CMakeFiles/fig5_tpcw_scaled.dir/fig5_tpcw_scaled.cc.o.d"
  "fig5_tpcw_scaled"
  "fig5_tpcw_scaled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_tpcw_scaled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
