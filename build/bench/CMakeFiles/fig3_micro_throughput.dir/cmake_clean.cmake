file(REMOVE_RECURSE
  "CMakeFiles/fig3_micro_throughput.dir/fig3_micro_throughput.cc.o"
  "CMakeFiles/fig3_micro_throughput.dir/fig3_micro_throughput.cc.o.d"
  "fig3_micro_throughput"
  "fig3_micro_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_micro_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
