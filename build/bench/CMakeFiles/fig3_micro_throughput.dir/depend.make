# Empty dependencies file for fig3_micro_throughput.
# This may be replaced when dependencies are built.
