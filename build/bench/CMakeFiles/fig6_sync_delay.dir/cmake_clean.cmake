file(REMOVE_RECURSE
  "CMakeFiles/fig6_sync_delay.dir/fig6_sync_delay.cc.o"
  "CMakeFiles/fig6_sync_delay.dir/fig6_sync_delay.cc.o.d"
  "fig6_sync_delay"
  "fig6_sync_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_sync_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
