# Empty compiler generated dependencies file for fig6_sync_delay.
# This may be replaced when dependencies are built.
