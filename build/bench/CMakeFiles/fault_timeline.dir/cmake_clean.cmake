file(REMOVE_RECURSE
  "CMakeFiles/fault_timeline.dir/fault_timeline.cc.o"
  "CMakeFiles/fault_timeline.dir/fault_timeline.cc.o.d"
  "fault_timeline"
  "fault_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
