file(REMOVE_RECURSE
  "CMakeFiles/fig7_fixed_load.dir/fig7_fixed_load.cc.o"
  "CMakeFiles/fig7_fixed_load.dir/fig7_fixed_load.cc.o.d"
  "fig7_fixed_load"
  "fig7_fixed_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_fixed_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
