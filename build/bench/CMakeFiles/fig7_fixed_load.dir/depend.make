# Empty dependencies file for fig7_fixed_load.
# This may be replaced when dependencies are built.
