# Empty dependencies file for hidden_channel.
# This may be replaced when dependencies are built.
