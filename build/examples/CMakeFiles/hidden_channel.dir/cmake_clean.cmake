file(REMOVE_RECURSE
  "CMakeFiles/hidden_channel.dir/hidden_channel.cc.o"
  "CMakeFiles/hidden_channel.dir/hidden_channel.cc.o.d"
  "hidden_channel"
  "hidden_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hidden_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
