# Empty dependencies file for tpcw_demo.
# This may be replaced when dependencies are built.
