file(REMOVE_RECURSE
  "CMakeFiles/tpcw_demo.dir/tpcw_demo.cc.o"
  "CMakeFiles/tpcw_demo.dir/tpcw_demo.cc.o.d"
  "tpcw_demo"
  "tpcw_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcw_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
