# Empty compiler generated dependencies file for consistency_comparison.
# This may be replaced when dependencies are built.
