file(REMOVE_RECURSE
  "CMakeFiles/consistency_comparison.dir/consistency_comparison.cc.o"
  "CMakeFiles/consistency_comparison.dir/consistency_comparison.cc.o.d"
  "consistency_comparison"
  "consistency_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consistency_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
