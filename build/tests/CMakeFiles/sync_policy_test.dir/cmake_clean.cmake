file(REMOVE_RECURSE
  "CMakeFiles/sync_policy_test.dir/sync_policy_test.cc.o"
  "CMakeFiles/sync_policy_test.dir/sync_policy_test.cc.o.d"
  "sync_policy_test"
  "sync_policy_test.pdb"
  "sync_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
