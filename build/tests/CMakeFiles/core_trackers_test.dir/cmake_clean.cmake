file(REMOVE_RECURSE
  "CMakeFiles/core_trackers_test.dir/core_trackers_test.cc.o"
  "CMakeFiles/core_trackers_test.dir/core_trackers_test.cc.o.d"
  "core_trackers_test"
  "core_trackers_test.pdb"
  "core_trackers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_trackers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
