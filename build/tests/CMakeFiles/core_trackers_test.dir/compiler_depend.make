# Empty compiler generated dependencies file for core_trackers_test.
# This may be replaced when dependencies are built.
