
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/table_set_test.cc" "tests/CMakeFiles/table_set_test.dir/table_set_test.cc.o" "gcc" "tests/CMakeFiles/table_set_test.dir/table_set_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/screp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/screp_replication.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/screp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/screp_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/screp_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/screp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/screp_consistency.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/screp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
