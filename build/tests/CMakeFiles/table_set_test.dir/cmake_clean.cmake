file(REMOVE_RECURSE
  "CMakeFiles/table_set_test.dir/table_set_test.cc.o"
  "CMakeFiles/table_set_test.dir/table_set_test.cc.o.d"
  "table_set_test"
  "table_set_test.pdb"
  "table_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
