file(REMOVE_RECURSE
  "CMakeFiles/write_set_test.dir/write_set_test.cc.o"
  "CMakeFiles/write_set_test.dir/write_set_test.cc.o.d"
  "write_set_test"
  "write_set_test.pdb"
  "write_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/write_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
