# Empty dependencies file for write_set_test.
# This may be replaced when dependencies are built.
