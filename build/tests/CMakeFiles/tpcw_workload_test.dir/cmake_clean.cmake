file(REMOVE_RECURSE
  "CMakeFiles/tpcw_workload_test.dir/tpcw_workload_test.cc.o"
  "CMakeFiles/tpcw_workload_test.dir/tpcw_workload_test.cc.o.d"
  "tpcw_workload_test"
  "tpcw_workload_test.pdb"
  "tpcw_workload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcw_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
