# Empty dependencies file for micro_workload_test.
# This may be replaced when dependencies are built.
