file(REMOVE_RECURSE
  "CMakeFiles/micro_workload_test.dir/micro_workload_test.cc.o"
  "CMakeFiles/micro_workload_test.dir/micro_workload_test.cc.o.d"
  "micro_workload_test"
  "micro_workload_test.pdb"
  "micro_workload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
