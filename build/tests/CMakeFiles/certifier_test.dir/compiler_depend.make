# Empty compiler generated dependencies file for certifier_test.
# This may be replaced when dependencies are built.
