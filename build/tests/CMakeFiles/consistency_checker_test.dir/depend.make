# Empty dependencies file for consistency_checker_test.
# This may be replaced when dependencies are built.
