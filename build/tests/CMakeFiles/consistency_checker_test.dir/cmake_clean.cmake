file(REMOVE_RECURSE
  "CMakeFiles/consistency_checker_test.dir/consistency_checker_test.cc.o"
  "CMakeFiles/consistency_checker_test.dir/consistency_checker_test.cc.o.d"
  "consistency_checker_test"
  "consistency_checker_test.pdb"
  "consistency_checker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consistency_checker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
