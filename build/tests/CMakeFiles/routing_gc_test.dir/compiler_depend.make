# Empty compiler generated dependencies file for routing_gc_test.
# This may be replaced when dependencies are built.
