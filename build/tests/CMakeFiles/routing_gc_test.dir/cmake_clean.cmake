file(REMOVE_RECURSE
  "CMakeFiles/routing_gc_test.dir/routing_gc_test.cc.o"
  "CMakeFiles/routing_gc_test.dir/routing_gc_test.cc.o.d"
  "routing_gc_test"
  "routing_gc_test.pdb"
  "routing_gc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_gc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
