file(REMOVE_RECURSE
  "CMakeFiles/metrics_client_test.dir/metrics_client_test.cc.o"
  "CMakeFiles/metrics_client_test.dir/metrics_client_test.cc.o.d"
  "metrics_client_test"
  "metrics_client_test.pdb"
  "metrics_client_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_client_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
