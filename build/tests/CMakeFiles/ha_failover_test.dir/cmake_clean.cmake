file(REMOVE_RECURSE
  "CMakeFiles/ha_failover_test.dir/ha_failover_test.cc.o"
  "CMakeFiles/ha_failover_test.dir/ha_failover_test.cc.o.d"
  "ha_failover_test"
  "ha_failover_test.pdb"
  "ha_failover_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ha_failover_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
