# Empty dependencies file for ha_failover_test.
# This may be replaced when dependencies are built.
