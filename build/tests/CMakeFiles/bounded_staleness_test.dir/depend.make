# Empty dependencies file for bounded_staleness_test.
# This may be replaced when dependencies are built.
