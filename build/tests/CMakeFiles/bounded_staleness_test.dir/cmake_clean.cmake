file(REMOVE_RECURSE
  "CMakeFiles/bounded_staleness_test.dir/bounded_staleness_test.cc.o"
  "CMakeFiles/bounded_staleness_test.dir/bounded_staleness_test.cc.o.d"
  "bounded_staleness_test"
  "bounded_staleness_test.pdb"
  "bounded_staleness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bounded_staleness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
