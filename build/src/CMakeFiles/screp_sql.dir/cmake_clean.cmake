file(REMOVE_RECURSE
  "CMakeFiles/screp_sql.dir/sql/ast.cc.o"
  "CMakeFiles/screp_sql.dir/sql/ast.cc.o.d"
  "CMakeFiles/screp_sql.dir/sql/executor.cc.o"
  "CMakeFiles/screp_sql.dir/sql/executor.cc.o.d"
  "CMakeFiles/screp_sql.dir/sql/lexer.cc.o"
  "CMakeFiles/screp_sql.dir/sql/lexer.cc.o.d"
  "CMakeFiles/screp_sql.dir/sql/parser.cc.o"
  "CMakeFiles/screp_sql.dir/sql/parser.cc.o.d"
  "CMakeFiles/screp_sql.dir/sql/statement.cc.o"
  "CMakeFiles/screp_sql.dir/sql/statement.cc.o.d"
  "CMakeFiles/screp_sql.dir/sql/table_set.cc.o"
  "CMakeFiles/screp_sql.dir/sql/table_set.cc.o.d"
  "CMakeFiles/screp_sql.dir/sql/token.cc.o"
  "CMakeFiles/screp_sql.dir/sql/token.cc.o.d"
  "libscrep_sql.a"
  "libscrep_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/screp_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
