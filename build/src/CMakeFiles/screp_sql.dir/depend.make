# Empty dependencies file for screp_sql.
# This may be replaced when dependencies are built.
