file(REMOVE_RECURSE
  "libscrep_sql.a"
)
