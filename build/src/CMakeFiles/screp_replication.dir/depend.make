# Empty dependencies file for screp_replication.
# This may be replaced when dependencies are built.
