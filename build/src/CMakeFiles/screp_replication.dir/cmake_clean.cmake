file(REMOVE_RECURSE
  "CMakeFiles/screp_replication.dir/replication/certifier.cc.o"
  "CMakeFiles/screp_replication.dir/replication/certifier.cc.o.d"
  "CMakeFiles/screp_replication.dir/replication/load_balancer.cc.o"
  "CMakeFiles/screp_replication.dir/replication/load_balancer.cc.o.d"
  "CMakeFiles/screp_replication.dir/replication/message.cc.o"
  "CMakeFiles/screp_replication.dir/replication/message.cc.o.d"
  "CMakeFiles/screp_replication.dir/replication/proxy.cc.o"
  "CMakeFiles/screp_replication.dir/replication/proxy.cc.o.d"
  "CMakeFiles/screp_replication.dir/replication/replica.cc.o"
  "CMakeFiles/screp_replication.dir/replication/replica.cc.o.d"
  "CMakeFiles/screp_replication.dir/replication/system.cc.o"
  "CMakeFiles/screp_replication.dir/replication/system.cc.o.d"
  "libscrep_replication.a"
  "libscrep_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/screp_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
