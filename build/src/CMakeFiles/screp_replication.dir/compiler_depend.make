# Empty compiler generated dependencies file for screp_replication.
# This may be replaced when dependencies are built.
