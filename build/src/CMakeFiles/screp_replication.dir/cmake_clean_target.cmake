file(REMOVE_RECURSE
  "libscrep_replication.a"
)
