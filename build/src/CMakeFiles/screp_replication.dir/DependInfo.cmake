
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/replication/certifier.cc" "src/CMakeFiles/screp_replication.dir/replication/certifier.cc.o" "gcc" "src/CMakeFiles/screp_replication.dir/replication/certifier.cc.o.d"
  "/root/repo/src/replication/load_balancer.cc" "src/CMakeFiles/screp_replication.dir/replication/load_balancer.cc.o" "gcc" "src/CMakeFiles/screp_replication.dir/replication/load_balancer.cc.o.d"
  "/root/repo/src/replication/message.cc" "src/CMakeFiles/screp_replication.dir/replication/message.cc.o" "gcc" "src/CMakeFiles/screp_replication.dir/replication/message.cc.o.d"
  "/root/repo/src/replication/proxy.cc" "src/CMakeFiles/screp_replication.dir/replication/proxy.cc.o" "gcc" "src/CMakeFiles/screp_replication.dir/replication/proxy.cc.o.d"
  "/root/repo/src/replication/replica.cc" "src/CMakeFiles/screp_replication.dir/replication/replica.cc.o" "gcc" "src/CMakeFiles/screp_replication.dir/replication/replica.cc.o.d"
  "/root/repo/src/replication/system.cc" "src/CMakeFiles/screp_replication.dir/replication/system.cc.o" "gcc" "src/CMakeFiles/screp_replication.dir/replication/system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/screp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/screp_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/screp_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/screp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/screp_consistency.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/screp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
