file(REMOVE_RECURSE
  "libscrep_consistency.a"
)
