# Empty dependencies file for screp_consistency.
# This may be replaced when dependencies are built.
