file(REMOVE_RECURSE
  "CMakeFiles/screp_consistency.dir/consistency/checker.cc.o"
  "CMakeFiles/screp_consistency.dir/consistency/checker.cc.o.d"
  "CMakeFiles/screp_consistency.dir/consistency/history.cc.o"
  "CMakeFiles/screp_consistency.dir/consistency/history.cc.o.d"
  "libscrep_consistency.a"
  "libscrep_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/screp_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
