# Empty dependencies file for screp_common.
# This may be replaced when dependencies are built.
