file(REMOVE_RECURSE
  "libscrep_common.a"
)
