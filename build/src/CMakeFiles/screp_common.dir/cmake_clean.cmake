file(REMOVE_RECURSE
  "CMakeFiles/screp_common.dir/common/logging.cc.o"
  "CMakeFiles/screp_common.dir/common/logging.cc.o.d"
  "CMakeFiles/screp_common.dir/common/stats.cc.o"
  "CMakeFiles/screp_common.dir/common/stats.cc.o.d"
  "CMakeFiles/screp_common.dir/common/status.cc.o"
  "CMakeFiles/screp_common.dir/common/status.cc.o.d"
  "libscrep_common.a"
  "libscrep_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/screp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
