file(REMOVE_RECURSE
  "CMakeFiles/screp_workload.dir/workload/client.cc.o"
  "CMakeFiles/screp_workload.dir/workload/client.cc.o.d"
  "CMakeFiles/screp_workload.dir/workload/experiment.cc.o"
  "CMakeFiles/screp_workload.dir/workload/experiment.cc.o.d"
  "CMakeFiles/screp_workload.dir/workload/metrics.cc.o"
  "CMakeFiles/screp_workload.dir/workload/metrics.cc.o.d"
  "CMakeFiles/screp_workload.dir/workload/micro.cc.o"
  "CMakeFiles/screp_workload.dir/workload/micro.cc.o.d"
  "CMakeFiles/screp_workload.dir/workload/tpcw.cc.o"
  "CMakeFiles/screp_workload.dir/workload/tpcw.cc.o.d"
  "CMakeFiles/screp_workload.dir/workload/tpcw_schema.cc.o"
  "CMakeFiles/screp_workload.dir/workload/tpcw_schema.cc.o.d"
  "CMakeFiles/screp_workload.dir/workload/tpcw_transactions.cc.o"
  "CMakeFiles/screp_workload.dir/workload/tpcw_transactions.cc.o.d"
  "libscrep_workload.a"
  "libscrep_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/screp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
