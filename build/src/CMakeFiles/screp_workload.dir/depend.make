# Empty dependencies file for screp_workload.
# This may be replaced when dependencies are built.
