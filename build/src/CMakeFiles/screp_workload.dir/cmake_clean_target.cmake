file(REMOVE_RECURSE
  "libscrep_workload.a"
)
