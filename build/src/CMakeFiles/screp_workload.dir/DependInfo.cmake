
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/client.cc" "src/CMakeFiles/screp_workload.dir/workload/client.cc.o" "gcc" "src/CMakeFiles/screp_workload.dir/workload/client.cc.o.d"
  "/root/repo/src/workload/experiment.cc" "src/CMakeFiles/screp_workload.dir/workload/experiment.cc.o" "gcc" "src/CMakeFiles/screp_workload.dir/workload/experiment.cc.o.d"
  "/root/repo/src/workload/metrics.cc" "src/CMakeFiles/screp_workload.dir/workload/metrics.cc.o" "gcc" "src/CMakeFiles/screp_workload.dir/workload/metrics.cc.o.d"
  "/root/repo/src/workload/micro.cc" "src/CMakeFiles/screp_workload.dir/workload/micro.cc.o" "gcc" "src/CMakeFiles/screp_workload.dir/workload/micro.cc.o.d"
  "/root/repo/src/workload/tpcw.cc" "src/CMakeFiles/screp_workload.dir/workload/tpcw.cc.o" "gcc" "src/CMakeFiles/screp_workload.dir/workload/tpcw.cc.o.d"
  "/root/repo/src/workload/tpcw_schema.cc" "src/CMakeFiles/screp_workload.dir/workload/tpcw_schema.cc.o" "gcc" "src/CMakeFiles/screp_workload.dir/workload/tpcw_schema.cc.o.d"
  "/root/repo/src/workload/tpcw_transactions.cc" "src/CMakeFiles/screp_workload.dir/workload/tpcw_transactions.cc.o" "gcc" "src/CMakeFiles/screp_workload.dir/workload/tpcw_transactions.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/screp_replication.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/screp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/screp_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/screp_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/screp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/screp_consistency.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/screp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
