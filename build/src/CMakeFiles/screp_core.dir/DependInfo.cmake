
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/consistency_level.cc" "src/CMakeFiles/screp_core.dir/core/consistency_level.cc.o" "gcc" "src/CMakeFiles/screp_core.dir/core/consistency_level.cc.o.d"
  "/root/repo/src/core/eager_tracker.cc" "src/CMakeFiles/screp_core.dir/core/eager_tracker.cc.o" "gcc" "src/CMakeFiles/screp_core.dir/core/eager_tracker.cc.o.d"
  "/root/repo/src/core/session_tracker.cc" "src/CMakeFiles/screp_core.dir/core/session_tracker.cc.o" "gcc" "src/CMakeFiles/screp_core.dir/core/session_tracker.cc.o.d"
  "/root/repo/src/core/sync_policy.cc" "src/CMakeFiles/screp_core.dir/core/sync_policy.cc.o" "gcc" "src/CMakeFiles/screp_core.dir/core/sync_policy.cc.o.d"
  "/root/repo/src/core/table_version_tracker.cc" "src/CMakeFiles/screp_core.dir/core/table_version_tracker.cc.o" "gcc" "src/CMakeFiles/screp_core.dir/core/table_version_tracker.cc.o.d"
  "/root/repo/src/core/version_tracker.cc" "src/CMakeFiles/screp_core.dir/core/version_tracker.cc.o" "gcc" "src/CMakeFiles/screp_core.dir/core/version_tracker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/screp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
