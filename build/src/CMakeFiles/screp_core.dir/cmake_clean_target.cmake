file(REMOVE_RECURSE
  "libscrep_core.a"
)
