file(REMOVE_RECURSE
  "CMakeFiles/screp_core.dir/core/consistency_level.cc.o"
  "CMakeFiles/screp_core.dir/core/consistency_level.cc.o.d"
  "CMakeFiles/screp_core.dir/core/eager_tracker.cc.o"
  "CMakeFiles/screp_core.dir/core/eager_tracker.cc.o.d"
  "CMakeFiles/screp_core.dir/core/session_tracker.cc.o"
  "CMakeFiles/screp_core.dir/core/session_tracker.cc.o.d"
  "CMakeFiles/screp_core.dir/core/sync_policy.cc.o"
  "CMakeFiles/screp_core.dir/core/sync_policy.cc.o.d"
  "CMakeFiles/screp_core.dir/core/table_version_tracker.cc.o"
  "CMakeFiles/screp_core.dir/core/table_version_tracker.cc.o.d"
  "CMakeFiles/screp_core.dir/core/version_tracker.cc.o"
  "CMakeFiles/screp_core.dir/core/version_tracker.cc.o.d"
  "libscrep_core.a"
  "libscrep_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/screp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
