# Empty compiler generated dependencies file for screp_core.
# This may be replaced when dependencies are built.
