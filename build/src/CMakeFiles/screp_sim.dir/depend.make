# Empty dependencies file for screp_sim.
# This may be replaced when dependencies are built.
