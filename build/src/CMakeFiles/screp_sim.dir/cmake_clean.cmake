file(REMOVE_RECURSE
  "CMakeFiles/screp_sim.dir/sim/resource.cc.o"
  "CMakeFiles/screp_sim.dir/sim/resource.cc.o.d"
  "CMakeFiles/screp_sim.dir/sim/simulator.cc.o"
  "CMakeFiles/screp_sim.dir/sim/simulator.cc.o.d"
  "libscrep_sim.a"
  "libscrep_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/screp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
