file(REMOVE_RECURSE
  "libscrep_sim.a"
)
