file(REMOVE_RECURSE
  "CMakeFiles/screp_storage.dir/storage/database.cc.o"
  "CMakeFiles/screp_storage.dir/storage/database.cc.o.d"
  "CMakeFiles/screp_storage.dir/storage/schema.cc.o"
  "CMakeFiles/screp_storage.dir/storage/schema.cc.o.d"
  "CMakeFiles/screp_storage.dir/storage/table.cc.o"
  "CMakeFiles/screp_storage.dir/storage/table.cc.o.d"
  "CMakeFiles/screp_storage.dir/storage/transaction.cc.o"
  "CMakeFiles/screp_storage.dir/storage/transaction.cc.o.d"
  "CMakeFiles/screp_storage.dir/storage/value.cc.o"
  "CMakeFiles/screp_storage.dir/storage/value.cc.o.d"
  "CMakeFiles/screp_storage.dir/storage/wal.cc.o"
  "CMakeFiles/screp_storage.dir/storage/wal.cc.o.d"
  "CMakeFiles/screp_storage.dir/storage/write_set.cc.o"
  "CMakeFiles/screp_storage.dir/storage/write_set.cc.o.d"
  "libscrep_storage.a"
  "libscrep_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/screp_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
