file(REMOVE_RECURSE
  "libscrep_storage.a"
)
