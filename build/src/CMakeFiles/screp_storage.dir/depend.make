# Empty dependencies file for screp_storage.
# This may be replaced when dependencies are built.
