// Figure 7: TPC-W response time under *fixed* load — the client count
// stays constant (shopping 8, ordering 5) while replicas grow 1..8, i.e.
// replication used to reduce response time rather than raise throughput.
//
// Expected shape (paper §V-C.2): for the lazy configurations response
// time decreases with replicas and flattens around five replicas; for ESC
// the shopping mix stays well above the others and on the ordering mix
// adding replicas *increases* response time (more replicas => the slowest
// of more replicas dictates every update's global commit).

#include "bench/bench_util.h"
#include "workload/tpcw.h"

namespace screp::bench {
namespace {

void RunMix(const BenchOptions& options, TpcwMix mix, BenchReport* report) {
  const int clients = TpcwClientsPerReplica(mix);
  std::printf("\n-- %s mix: mean response time (ms), %d clients total --\n",
              TpcwMixName(mix), clients);
  std::printf("%-9s", "replicas");
  for (ConsistencyLevel level : kAllConsistencyLevels) {
    std::printf("%10s", ConsistencyLevelName(level));
  }
  std::printf("\n");
  for (int replicas = 1; replicas <= 8; ++replicas) {
    std::printf("%-9d", replicas);
    for (ConsistencyLevel level : kAllConsistencyLevels) {
      TpcwWorkload workload(TpcwScale{}, mix);
      ExperimentConfig config;
      config.system.proxy = TpcwProxyConfig();
      config.system.level = level;
      config.system.replica_count = replicas;
      config.client_count = clients;  // fixed, independent of replicas
      config.mean_think_time = Millis(200);
      config.warmup = options.warmup;
      config.duration = options.duration;
      config.seed = options.seed;
      const std::string tag = std::string(TpcwMixName(mix)) +
                              ConsistencyLevelName(level) + "r" +
                              std::to_string(replicas);
      ApplyObservability(options, tag, &config);
      const ExperimentResult& r = report->Add(tag, MustRun(workload, config));
      std::printf("%10.2f", r.mean_response_ms);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
}

int Main(int argc, char** argv) {
  const BenchOptions options = ParseOptions(argc, argv);
  PrintHeader("Figure 7: TPC-W response time under fixed load",
              "Fig. 7(a) shopping and Fig. 7(b) ordering");
  BenchReport report("fig7", options);
  RunMix(options, TpcwMix::kShopping, &report);
  RunMix(options, TpcwMix::kOrdering, &report);
  return report.Finish();
}

}  // namespace
}  // namespace screp::bench

int main(int argc, char** argv) { return screp::bench::Main(argc, argv); }
