// Figure 4: micro-benchmark latency breakdown by transaction stage for the
// 25% and 100% update mixes (8 replicas, 8 clients).
//
// Expected shape (paper §V-B): similar query execution everywhere; LSC
// pays a start-up (version) delay larger than SC's, LFC's is smaller than
// LSC's (zero for read-only tables); ESC has no version delay but a
// global commit delay that dwarfs every other stage — 36% higher total at
// the 25% mix, an order of magnitude at 100%.

#include "bench/bench_util.h"
#include "workload/micro.h"

namespace screp::bench {
namespace {

/// The figure's six stage columns (ms).  Profiled runs derive them from
/// the critical-path profiler's exclusive segments — the same numbers the
/// conservation self-check guarantees sum to the response time — instead
/// of the legacy per-response stage accumulators.
struct StageColumns {
  double version = 0, queries = 0, certify = 0, sync = 0, commit = 0,
         global = 0;
};

StageColumns Columns(const ExperimentResult& r) {
  if (!r.profile.enabled) {
    return {r.version_ms, r.queries_ms, r.certify_ms,
            r.sync_ms,    r.commit_ms,  r.global_ms};
  }
  const auto& seg = r.profile.segment_mean_ms;
  const auto at = [&seg](obs::ProfileSegment s) {
    return seg[static_cast<size_t>(s)];
  };
  StageColumns c;
  c.version = at(obs::ProfileSegment::kVersionWait);
  c.queries = at(obs::ProfileSegment::kExec);
  c.certify = at(obs::ProfileSegment::kNetCertifier) +
              at(obs::ProfileSegment::kCertIntakeWait) +
              at(obs::ProfileSegment::kCertify) +
              at(obs::ProfileSegment::kForceWait);
  c.sync = at(obs::ProfileSegment::kGapWait) +
           at(obs::ProfileSegment::kLaneWait) +
           at(obs::ProfileSegment::kClaimWait);
  c.commit = at(obs::ProfileSegment::kApply) +
             at(obs::ProfileSegment::kPublishWait) +
             at(obs::ProfileSegment::kCommit);
  c.global = at(obs::ProfileSegment::kGlobalWait);
  return c;
}

void RunMix(const BenchOptions& options, double mix, BenchReport* report) {
  std::printf("\n-- %.0f%% update mix --\n", mix * 100);
  std::printf("%-7s %9s %9s %9s %9s %9s %9s | %9s\n", "config", "version",
              "queries", "certify", "sync", "commit", "global", "total");
  for (ConsistencyLevel level : kAllConsistencyLevels) {
    MicroConfig micro;
    micro.update_fraction = mix;
    MicroWorkload workload(micro);

    ExperimentConfig config;
    config.system.level = level;
    config.system.replica_count = 8;
    config.client_count = 8;
    config.warmup = options.warmup;
    config.duration = options.duration;
    config.seed = options.seed;
    const std::string tag = std::string(ConsistencyLevelName(level)) +
                            std::to_string(static_cast<int>(mix * 100));
    ApplyObservability(options, tag, &config);

    const ExperimentResult& r = report->Add(tag, MustRun(workload, config));
    const StageColumns c = Columns(r);
    const double total = c.version + c.queries + c.certify + c.sync +
                         c.commit + c.global;
    std::printf("%-7s %9.2f %9.2f %9.2f %9.2f %9.2f %9.2f | %9.2f\n",
                ConsistencyLevelName(level), c.version, c.queries, c.certify,
                c.sync, c.commit, c.global, total);
    std::fflush(stdout);
  }
}

int Main(int argc, char** argv) {
  const BenchOptions options = ParseOptions(argc, argv);
  PrintHeader(
      "Figure 4: latency breakdown per stage (ms), micro-benchmark, "
      "8 replicas",
      "Fig. 4(a) 25% updates and Fig. 4(b) 100% updates");
  BenchReport report("fig4", options);
  RunMix(options, 0.25, &report);
  RunMix(options, 1.00, &report);
  return report.Finish();
}

}  // namespace
}  // namespace screp::bench

int main(int argc, char** argv) { return screp::bench::Main(argc, argv); }
