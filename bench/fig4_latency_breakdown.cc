// Figure 4: micro-benchmark latency breakdown by transaction stage for the
// 25% and 100% update mixes (8 replicas, 8 clients).
//
// Expected shape (paper §V-B): similar query execution everywhere; LSC
// pays a start-up (version) delay larger than SC's, LFC's is smaller than
// LSC's (zero for read-only tables); ESC has no version delay but a
// global commit delay that dwarfs every other stage — 36% higher total at
// the 25% mix, an order of magnitude at 100%.

#include "bench/bench_util.h"
#include "workload/micro.h"

namespace screp::bench {
namespace {

void RunMix(const BenchOptions& options, double mix, BenchReport* report) {
  std::printf("\n-- %.0f%% update mix --\n", mix * 100);
  std::printf("%-7s %9s %9s %9s %9s %9s %9s | %9s\n", "config", "version",
              "queries", "certify", "sync", "commit", "global", "total");
  for (ConsistencyLevel level : kAllConsistencyLevels) {
    MicroConfig micro;
    micro.update_fraction = mix;
    MicroWorkload workload(micro);

    ExperimentConfig config;
    config.system.level = level;
    config.system.replica_count = 8;
    config.client_count = 8;
    config.warmup = options.warmup;
    config.duration = options.duration;
    config.seed = options.seed;
    const std::string tag = std::string(ConsistencyLevelName(level)) +
                            std::to_string(static_cast<int>(mix * 100));
    ApplyObservability(options, tag, &config);

    const ExperimentResult& r = report->Add(tag, MustRun(workload, config));
    const double total = r.version_ms + r.queries_ms + r.certify_ms +
                         r.sync_ms + r.commit_ms + r.global_ms;
    std::printf("%-7s %9.2f %9.2f %9.2f %9.2f %9.2f %9.2f | %9.2f\n",
                ConsistencyLevelName(level), r.version_ms, r.queries_ms,
                r.certify_ms, r.sync_ms, r.commit_ms, r.global_ms, total);
    std::fflush(stdout);
  }
}

int Main(int argc, char** argv) {
  const BenchOptions options = ParseOptions(argc, argv);
  PrintHeader(
      "Figure 4: latency breakdown per stage (ms), micro-benchmark, "
      "8 replicas",
      "Fig. 4(a) 25% updates and Fig. 4(b) 100% updates");
  BenchReport report("fig4", options);
  RunMix(options, 0.25, &report);
  RunMix(options, 1.00, &report);
  return report.Finish();
}

}  // namespace
}  // namespace screp::bench

int main(int argc, char** argv) { return screp::bench::Main(argc, argv); }
