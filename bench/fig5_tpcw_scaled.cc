// Figure 5: TPC-W throughput and response time under scaled load —
// clients grow with the replica count (browsing 10/replica, shopping
// 8/replica, ordering 5/replica); 1..8 replicas; all four configurations.
//
// Expected shape (paper §V-C.1): browsing (5% updates) scales ~7x for
// every configuration; shopping (20%) scales ~5x for the lazy
// configurations with ESC ~30% slower at 8 replicas; ordering (50%)
// scales ~3x for the lazy configurations while ESC barely scales and its
// response time grows with the replica count.

#include "bench/bench_util.h"
#include "workload/tpcw.h"

namespace screp::bench {
namespace {

void RunMix(const BenchOptions& options, TpcwMix mix, BenchReport* report) {
  std::printf("\n-- %s mix (%d%% updates, %d clients/replica) --\n",
              TpcwMixName(mix),
              static_cast<int>(TpcwUpdateFraction(mix) * 100),
              TpcwClientsPerReplica(mix));
  std::printf("%-9s", "replicas");
  for (ConsistencyLevel level : kAllConsistencyLevels) {
    std::printf("  %8s-TPS %8s-ms", ConsistencyLevelName(level),
                ConsistencyLevelName(level));
  }
  std::printf("\n");

  for (int replicas = 1; replicas <= 8; ++replicas) {
    std::printf("%-9d", replicas);
    for (ConsistencyLevel level : kAllConsistencyLevels) {
      TpcwWorkload workload(TpcwScale{}, mix);
      ExperimentConfig config;
      config.system.proxy = TpcwProxyConfig();
      config.system.level = level;
      config.system.replica_count = replicas;
      config.client_count = replicas * TpcwClientsPerReplica(mix);
      config.mean_think_time = Millis(200);  // RTE think time
      config.warmup = options.warmup;
      config.duration = options.duration;
      config.seed = options.seed;
      const std::string tag = std::string(TpcwMixName(mix)) +
                              ConsistencyLevelName(level) + "r" +
                              std::to_string(replicas);
      ApplyObservability(options, tag, &config);

      const ExperimentResult& r = report->Add(tag, MustRun(workload, config));
      std::printf("  %12.1f %11.2f", r.throughput_tps, r.mean_response_ms);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
}

int Main(int argc, char** argv) {
  const BenchOptions options = ParseOptions(argc, argv);
  PrintHeader(
      "Figure 5: TPC-W throughput (TPS) and response time (ms), scaled "
      "load",
      "Fig. 5(a)-(f)");
  BenchReport report("fig5", options);
  RunMix(options, TpcwMix::kBrowsing, &report);
  RunMix(options, TpcwMix::kShopping, &report);
  RunMix(options, TpcwMix::kOrdering, &report);
  return report.Finish();
}

}  // namespace
}  // namespace screp::bench

int main(int argc, char** argv) { return screp::bench::Main(argc, argv); }
