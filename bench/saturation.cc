// Saturation sweep: client count vs. throughput / tail latency with the
// overload-protection stack ON (LB admission window + bounded queue,
// certifier intake bound, credited refresh fan-out, client request
// timeouts with jittered exponential backoff).
//
// Expected shape: throughput climbs to a knee near the admission
// capacity, then stays flat while excess offered load is shed; p99 stays
// bounded past the knee (clients time out and back off instead of
// queueing without limit).  Without flow control the same sweep would
// grow the queues — and p99 — with every added client.
//
// The driver doubles as a regression check: it verifies the structural
// bounds (admission queue never exceeds its limit, per-replica pending
// writesets never exceed the credit + admission windows) and that the
// top-load runs actually shed, exiting non-zero otherwise.
//
// `--batch-sweep` switches to the group-commit tuning sweep instead: a
// grid over certifier force-batch size x refresh credit window x refresh
// batching, under a generous admission envelope (so the knee reflects
// resource saturation, not the admission cap).  It finds the
// best-throughput combination, re-measures its full client curve, runs
// it once more with the consistency auditor on, and exits non-zero
// unless the tuned saturation knee lands at >= 128 clients — at least
// 2x the protected baseline's knee — with the audit clean.

#include <cstdlib>
#include <cstring>

#include "bench/bench_util.h"
#include "workload/micro.h"

namespace screp::bench {
namespace {

// The overload-protection configuration under test.
constexpr int kReplicas = 4;
constexpr int kWindowPerReplica = 16;
constexpr size_t kAdmissionQueueLimit = 64;
constexpr size_t kCertifierIntake = 128;
constexpr size_t kRefreshCredits = 64;

ExperimentConfig FlowControlledConfig(const BenchOptions& options) {
  ExperimentConfig config;
  config.system.replica_count = kReplicas;
  config.system.admission.max_outstanding_per_replica = kWindowPerReplica;
  config.system.admission.admission_queue_limit = kAdmissionQueueLimit;
  config.system.certifier.max_intake = kCertifierIntake;
  config.system.certifier.refresh_credit_window = kRefreshCredits;
  config.client.backoff_base = Millis(1);
  config.client.backoff_cap = Millis(32);
  config.client.request_timeout = Seconds(1);
  config.mean_think_time = 0;  // back-to-back, closed loop
  config.warmup = options.warmup;
  config.duration = options.duration;
  config.seed = options.seed;
  return config;
}

// ---------------------------------------------------------------------
// --batch-sweep: group-commit batching tuning under a generous
// admission envelope.

// The sweep envelope: wide enough that the knee is set by the pipeline
// (certification, refresh fan-out, apply lanes), not by the admission
// window.  The protected baseline above caps in-service concurrency at
// kReplicas * kWindowPerReplica = 64, which by construction pins its
// knee near 64 clients.
constexpr int kSweepWindowPerReplica = 64;
constexpr size_t kSweepQueueLimit = 256;
constexpr size_t kSweepIntake = 512;
// The protected baseline saturates its 2-core replicas near 1000 TPS,
// where group commits hold ~1 writeset each (0.8 ms per force) — in
// that regime the batching knobs never bind and the knee is a replica
// CPU fact.  The sweep envelope therefore models the paper's larger
// middleware box (more cores, parallel apply lanes) so the certifier's
// group-commit / refresh fan-out stage is the contended resource the
// grid actually tunes.
constexpr int kSweepCpuCores = 8;
constexpr int kSweepApplyLanes = 8;

/// One point of the tuning grid.
struct SweepPoint {
  bool batching;
  size_t force_batch;  // certifier max_force_batch (0 = unbounded)
  size_t credits;      // refresh_credit_window
  std::string Tag() const {
    return std::string(batching ? "batch" : "nobatch") + "-f" +
           std::to_string(force_batch) + "-cr" + std::to_string(credits);
  }
};

ExperimentConfig SweepConfig(const BenchOptions& options,
                             const SweepPoint& point) {
  ExperimentConfig config;
  config.system.replica_count = kReplicas;
  config.system.level = ConsistencyLevel::kEager;
  config.system.admission.max_outstanding_per_replica =
      kSweepWindowPerReplica;
  config.system.admission.admission_queue_limit = kSweepQueueLimit;
  config.system.certifier.max_intake = kSweepIntake;
  config.system.proxy.cpu_cores = kSweepCpuCores;
  config.system.proxy.apply_lanes = kSweepApplyLanes;
  config.system.certifier.refresh_credit_window = point.credits;
  config.system.certifier.refresh_batching = point.batching;
  config.system.certifier.max_force_batch = point.force_batch;
  config.client.backoff_base = Millis(1);
  config.client.backoff_cap = Millis(32);
  config.client.request_timeout = Seconds(1);
  config.mean_think_time = 0;
  config.warmup = options.warmup;
  config.duration = options.duration;
  config.seed = options.seed;
  return config;
}

/// The saturation knee: the largest client count that still bought >=10%
/// more throughput than the previous point of the curve.  Past the knee
/// added clients only add queueing.
int KneeClients(const std::vector<std::pair<int, double>>& curve) {
  int knee = curve.front().first;
  for (size_t i = 1; i < curve.size(); ++i) {
    if (curve[i].second >= 1.10 * curve[i - 1].second) {
      knee = curve[i].first;
    }
  }
  return knee;
}

int BatchSweep(const BenchOptions& options) {
  BenchReport report("batch_sweep", options);
  PrintHeader("Group-commit batching sweep: force-batch size x refresh "
              "credits x fan-out batching",
              "the batching/flow-control tuning implied by Sec. V");
  const int kClients[] = {8, 32, 64, 128, 192};
  MicroConfig micro;
  MicroWorkload workload(micro);

  // Protected baseline (the regular saturation config, batching off):
  // its knee is the reference the tuned config must at least double.
  std::printf("\nbaseline: protected config, window/replica=%d, "
              "batching off (ESC)\n", kWindowPerReplica);
  std::printf("%-24s %4s | %8s %8s\n", "config", "cli", "TPS", "p99(ms)");
  std::vector<std::pair<int, double>> base_curve;
  for (int clients : kClients) {
    ExperimentConfig config = FlowControlledConfig(options);
    config.system.level = ConsistencyLevel::kEager;
    config.client_count = clients;
    const std::string tag = "base-c" + std::to_string(clients);
    ApplyObservability(options, tag, &config);
    const ExperimentResult& result = report.Add(tag, MustRun(workload, config));
    base_curve.emplace_back(clients, result.throughput_tps);
    std::printf("%-24s %4d | %8.1f %8.2f\n", "baseline", clients,
                result.throughput_tps, result.p99_response_ms);
    std::fflush(stdout);
  }
  const int base_knee = KneeClients(base_curve);
  std::printf("baseline knee: %d clients\n", base_knee);

  // Grid, ranked at the target load (128 clients, past the baseline
  // knee): every combination of fan-out batching, certifier force-batch
  // cap, and refresh credit window under the generous envelope.
  const int rank_load = 128;
  std::printf("\ngrid at %d clients: window/replica=%d queue<=%zu "
              "intake<=%zu (ESC)\n", rank_load, kSweepWindowPerReplica,
              kSweepQueueLimit, kSweepIntake);
  std::printf("%-24s %4s | %8s %8s\n", "config", "cli", "TPS", "p99(ms)");
  std::vector<SweepPoint> grid;
  for (const bool batching : {false, true}) {
    for (const size_t force_batch : {size_t{1}, size_t{4}, size_t{0}}) {
      for (const size_t credits :
           {size_t{0}, size_t{16}, size_t{64}, size_t{256}}) {
        grid.push_back({batching, force_batch, credits});
      }
    }
  }
  SweepPoint best = grid.front();
  double best_tps = -1;
  for (const SweepPoint& point : grid) {
    ExperimentConfig config = SweepConfig(options, point);
    config.client_count = rank_load;
    const std::string tag = "grid-" + point.Tag();
    ApplyObservability(options, tag, &config);
    const ExperimentResult& result = report.Add(tag, MustRun(workload, config));
    std::printf("%-24s %4d | %8.1f %8.2f\n", point.Tag().c_str(), rank_load,
                result.throughput_tps, result.p99_response_ms);
    std::fflush(stdout);
    if (result.throughput_tps > best_tps) {
      best_tps = result.throughput_tps;
      best = point;
    }
  }
  std::printf("best at %d clients: %s (%.1f TPS)\n", rank_load,
              best.Tag().c_str(), best_tps);

  // The winner's full client curve, for its knee.
  std::printf("\ntuned curve: %s\n", best.Tag().c_str());
  std::printf("%-24s %4s | %8s %8s\n", "config", "cli", "TPS", "p99(ms)");
  std::vector<std::pair<int, double>> tuned_curve;
  for (int clients : kClients) {
    ExperimentConfig config = SweepConfig(options, best);
    config.client_count = clients;
    const std::string tag = "tuned-c" + std::to_string(clients);
    ApplyObservability(options, tag, &config);
    const ExperimentResult& result = report.Add(tag, MustRun(workload, config));
    tuned_curve.emplace_back(clients, result.throughput_tps);
    std::printf("%-24s %4d | %8.1f %8.2f\n", best.Tag().c_str(), clients,
                result.throughput_tps, result.p99_response_ms);
    std::fflush(stdout);
  }
  const int tuned_knee = KneeClients(tuned_curve);
  std::printf("tuned knee: %d clients (baseline %d)\n", tuned_knee,
              base_knee);

  // The tuned config must not buy throughput with correctness: one more
  // top-load run with the online consistency auditor forced on.
  bool ok = true;
  {
    ExperimentConfig config = SweepConfig(options, best);
    config.client_count = kClients[sizeof(kClients) / sizeof(int) - 1];
    config.audit = true;
    const std::string tag = "audit-" + best.Tag();
    ApplyObservability(options, tag, &config);
    const ExperimentResult& result = report.Add(tag, MustRun(workload, config));
    std::printf("\naudit run (%d clients): %s\n", config.client_count,
                result.audit.ToString().c_str());
    if (!result.audit.ok) {
      std::fprintf(stderr, "tuned config failed the consistency audit\n");
      ok = false;
    }
  }
  if (tuned_knee < 128) {
    std::fprintf(stderr, "tuned knee %d clients is below 128\n", tuned_knee);
    ok = false;
  }
  if (tuned_knee < 2 * base_knee) {
    std::fprintf(stderr, "tuned knee %d is not 2x the baseline knee %d\n",
                 tuned_knee, base_knee);
    ok = false;
  }
  const int report_rc = report.Finish();
  if (!ok) std::fprintf(stderr, "batch sweep self-check FAILED\n");
  return ok ? report_rc : 1;
}

int Main(int argc, char** argv) {
  const BenchOptions options = ParseOptions(argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--batch-sweep") == 0) {
      return BatchSweep(options);
    }
  }
  BenchReport report("saturation", options);
  PrintHeader(
      "Saturation sweep: offered load vs. throughput with flow control on",
      "the overload behaviour implied by Sec. V");
  std::printf("window/replica=%d queue<=%zu intake<=%zu credits=%zu "
              "timeout=1s backoff=1..32ms\n\n",
              kWindowPerReplica, kAdmissionQueueLimit, kCertifierIntake,
              kRefreshCredits);
  std::printf("%-7s %4s | %8s %8s %8s | %9s %8s %7s %9s | %6s %8s\n",
              "config", "cli", "TPS", "p99(ms)", "commits", "shed(lb)",
              "shed(ct)", "tmo", "overload", "peakQ", "peakPend");

  const int kClients[] = {8, 32, 64, 128, 192};
  const int top_load = kClients[sizeof(kClients) / sizeof(kClients[0]) - 1];
  bool ok = true;
  int64_t overloaded_at_top = 0;

  for (ConsistencyLevel level : kAllConsistencyLevels) {
    for (int clients : kClients) {
      MicroConfig micro;
      MicroWorkload workload(micro);
      ExperimentConfig config = FlowControlledConfig(options);
      config.system.level = level;
      config.client_count = clients;
      const std::string tag = std::string(ConsistencyLevelName(level)) +
                              "-c" + std::to_string(clients);
      ApplyObservability(options, tag, &config);

      const ExperimentResult result = MustRun(workload, config);
      std::printf("%-7s %4d | %8.1f %8.2f %8lld | %9lld %8lld %7lld "
                  "%9lld | %6lld %8lld\n",
                  ConsistencyLevelName(level), clients,
                  result.throughput_tps, result.p99_response_ms,
                  static_cast<long long>(result.committed),
                  static_cast<long long>(result.lb_shed),
                  static_cast<long long>(result.certifier_shed),
                  static_cast<long long>(result.client_timeouts),
                  static_cast<long long>(result.overloaded),
                  static_cast<long long>(result.peak_admission_queue),
                  static_cast<long long>(result.peak_pending_writesets));
      std::fflush(stdout);
      report.Add(tag, result);

      // Structural bounds: these hold by construction, at every load.
      if (result.peak_admission_queue >
          static_cast<int64_t>(kAdmissionQueueLimit)) {
        std::fprintf(stderr,
                     "[%s] admission queue peaked at %lld > limit %zu\n",
                     tag.c_str(),
                     static_cast<long long>(result.peak_admission_queue),
                     kAdmissionQueueLimit);
        ok = false;
      }
      // Per-replica pending writesets = credited refreshes in flight
      // (<= credit window) + the replica's own local applies (<= its
      // admission window), with slack for decisions already queued.
      const int64_t pending_bound = static_cast<int64_t>(kRefreshCredits) +
                                    kWindowPerReplica + 8;
      if (result.peak_pending_writesets > pending_bound) {
        std::fprintf(stderr,
                     "[%s] pending writesets peaked at %lld > bound %lld\n",
                     tag.c_str(),
                     static_cast<long long>(result.peak_pending_writesets),
                     static_cast<long long>(pending_bound));
        ok = false;
      }
      if (clients == top_load) {
        overloaded_at_top += result.overloaded;
        // 192 back-to-back clients against 64 dispatch slots + 64 queue
        // slots must shed the first wave alone.
        if (result.lb_shed == 0) {
          std::fprintf(stderr, "[%s] expected LB shedding at %d clients\n",
                       tag.c_str(), clients);
          ok = false;
        }
        // Past the knee p99 is bounded by the request timeout: anything
        // slower times out client-side and is retried, not recorded.
        const double p99_bound_ms =
            2.0 * ToMillis(config.client.request_timeout);
        if (result.p99_response_ms > p99_bound_ms) {
          std::fprintf(stderr, "[%s] p99 %.2f ms unbounded (> %.0f ms)\n",
                       tag.c_str(), result.p99_response_ms, p99_bound_ms);
          ok = false;
        }
      }
    }
    std::printf("\n");
  }

  if (overloaded_at_top == 0) {
    std::fprintf(stderr,
                 "no client observed a shed response at %d clients\n",
                 top_load);
    ok = false;
  }
  const int report_rc = report.Finish();
  if (!ok) std::fprintf(stderr, "saturation self-check FAILED\n");
  return ok ? report_rc : 1;
}

}  // namespace
}  // namespace screp::bench

int main(int argc, char** argv) { return screp::bench::Main(argc, argv); }
