// Saturation sweep: client count vs. throughput / tail latency with the
// overload-protection stack ON (LB admission window + bounded queue,
// certifier intake bound, credited refresh fan-out, client request
// timeouts with jittered exponential backoff).
//
// Expected shape: throughput climbs to a knee near the admission
// capacity, then stays flat while excess offered load is shed; p99 stays
// bounded past the knee (clients time out and back off instead of
// queueing without limit).  Without flow control the same sweep would
// grow the queues — and p99 — with every added client.
//
// The driver doubles as a regression check: it verifies the structural
// bounds (admission queue never exceeds its limit, per-replica pending
// writesets never exceed the credit + admission windows) and that the
// top-load runs actually shed, exiting non-zero otherwise.

#include <cstdlib>

#include "bench/bench_util.h"
#include "workload/micro.h"

namespace screp::bench {
namespace {

// The overload-protection configuration under test.
constexpr int kReplicas = 4;
constexpr int kWindowPerReplica = 16;
constexpr size_t kAdmissionQueueLimit = 64;
constexpr size_t kCertifierIntake = 128;
constexpr size_t kRefreshCredits = 64;

ExperimentConfig FlowControlledConfig(const BenchOptions& options) {
  ExperimentConfig config;
  config.system.replica_count = kReplicas;
  config.system.admission.max_outstanding_per_replica = kWindowPerReplica;
  config.system.admission.admission_queue_limit = kAdmissionQueueLimit;
  config.system.certifier.max_intake = kCertifierIntake;
  config.system.certifier.refresh_credit_window = kRefreshCredits;
  config.client.backoff_base = Millis(1);
  config.client.backoff_cap = Millis(32);
  config.client.request_timeout = Seconds(1);
  config.mean_think_time = 0;  // back-to-back, closed loop
  config.warmup = options.warmup;
  config.duration = options.duration;
  config.seed = options.seed;
  return config;
}

int Main(int argc, char** argv) {
  const BenchOptions options = ParseOptions(argc, argv);
  BenchReport report("saturation", options);
  PrintHeader(
      "Saturation sweep: offered load vs. throughput with flow control on",
      "the overload behaviour implied by Sec. V");
  std::printf("window/replica=%d queue<=%zu intake<=%zu credits=%zu "
              "timeout=1s backoff=1..32ms\n\n",
              kWindowPerReplica, kAdmissionQueueLimit, kCertifierIntake,
              kRefreshCredits);
  std::printf("%-7s %4s | %8s %8s %8s | %9s %8s %7s %9s | %6s %8s\n",
              "config", "cli", "TPS", "p99(ms)", "commits", "shed(lb)",
              "shed(ct)", "tmo", "overload", "peakQ", "peakPend");

  const int kClients[] = {8, 32, 64, 128, 192};
  const int top_load = kClients[sizeof(kClients) / sizeof(kClients[0]) - 1];
  bool ok = true;
  int64_t overloaded_at_top = 0;

  for (ConsistencyLevel level : kAllConsistencyLevels) {
    for (int clients : kClients) {
      MicroConfig micro;
      MicroWorkload workload(micro);
      ExperimentConfig config = FlowControlledConfig(options);
      config.system.level = level;
      config.client_count = clients;
      const std::string tag = std::string(ConsistencyLevelName(level)) +
                              "-c" + std::to_string(clients);
      ApplyObservability(options, tag, &config);

      const ExperimentResult result = MustRun(workload, config);
      std::printf("%-7s %4d | %8.1f %8.2f %8lld | %9lld %8lld %7lld "
                  "%9lld | %6lld %8lld\n",
                  ConsistencyLevelName(level), clients,
                  result.throughput_tps, result.p99_response_ms,
                  static_cast<long long>(result.committed),
                  static_cast<long long>(result.lb_shed),
                  static_cast<long long>(result.certifier_shed),
                  static_cast<long long>(result.client_timeouts),
                  static_cast<long long>(result.overloaded),
                  static_cast<long long>(result.peak_admission_queue),
                  static_cast<long long>(result.peak_pending_writesets));
      std::fflush(stdout);
      report.Add(tag, result);

      // Structural bounds: these hold by construction, at every load.
      if (result.peak_admission_queue >
          static_cast<int64_t>(kAdmissionQueueLimit)) {
        std::fprintf(stderr,
                     "[%s] admission queue peaked at %lld > limit %zu\n",
                     tag.c_str(),
                     static_cast<long long>(result.peak_admission_queue),
                     kAdmissionQueueLimit);
        ok = false;
      }
      // Per-replica pending writesets = credited refreshes in flight
      // (<= credit window) + the replica's own local applies (<= its
      // admission window), with slack for decisions already queued.
      const int64_t pending_bound = static_cast<int64_t>(kRefreshCredits) +
                                    kWindowPerReplica + 8;
      if (result.peak_pending_writesets > pending_bound) {
        std::fprintf(stderr,
                     "[%s] pending writesets peaked at %lld > bound %lld\n",
                     tag.c_str(),
                     static_cast<long long>(result.peak_pending_writesets),
                     static_cast<long long>(pending_bound));
        ok = false;
      }
      if (clients == top_load) {
        overloaded_at_top += result.overloaded;
        // 192 back-to-back clients against 64 dispatch slots + 64 queue
        // slots must shed the first wave alone.
        if (result.lb_shed == 0) {
          std::fprintf(stderr, "[%s] expected LB shedding at %d clients\n",
                       tag.c_str(), clients);
          ok = false;
        }
        // Past the knee p99 is bounded by the request timeout: anything
        // slower times out client-side and is retried, not recorded.
        const double p99_bound_ms =
            2.0 * ToMillis(config.client.request_timeout);
        if (result.p99_response_ms > p99_bound_ms) {
          std::fprintf(stderr, "[%s] p99 %.2f ms unbounded (> %.0f ms)\n",
                       tag.c_str(), result.p99_response_ms, p99_bound_ms);
          ok = false;
        }
      }
    }
    std::printf("\n");
  }

  if (overloaded_at_top == 0) {
    std::fprintf(stderr,
                 "no client observed a shed response at %d clients\n",
                 top_load);
    ok = false;
  }
  const int report_rc = report.Finish();
  if (!ok) std::fprintf(stderr, "saturation self-check FAILED\n");
  return ok ? report_rc : 1;
}

}  // namespace
}  // namespace screp::bench

int main(int argc, char** argv) { return screp::bench::Main(argc, argv); }
