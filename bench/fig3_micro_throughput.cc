// Figure 3: micro-benchmark throughput vs. fraction of update
// transactions, 8 replicas / 8 clients, one curve per consistency
// configuration.
//
// Expected shape (paper §V-B): all configurations coincide at 0% updates;
// as updates grow, ESC falls ~40% behind while LSC/LFC stay within a few
// percent of SC (LFC matching SC).

#include "bench/bench_util.h"
#include "workload/micro.h"

namespace screp::bench {
namespace {

int Main(int argc, char** argv) {
  const BenchOptions options = ParseOptions(argc, argv);
  BenchReport report("fig3", options);
  PrintHeader("Figure 3: micro-benchmark throughput (TPS), 8 replicas",
              "Fig. 3");

  const double kMixes[] = {0.0, 0.10, 0.25, 0.50, 0.75, 1.00};
  std::printf("%-10s", "update%");
  for (ConsistencyLevel level : kAllConsistencyLevels) {
    std::printf("%10s", ConsistencyLevelName(level));
  }
  std::printf("\n");

  for (double mix : kMixes) {
    std::printf("%-10.0f", mix * 100);
    for (ConsistencyLevel level : kAllConsistencyLevels) {
      MicroConfig micro;
      micro.update_fraction = mix;
      MicroWorkload workload(micro);

      ExperimentConfig config;
      config.system.level = level;
      config.system.replica_count = 8;
      config.client_count = 8;
      config.mean_think_time = 0;  // back-to-back, closed loop
      config.warmup = options.warmup;
      config.duration = options.duration;
      config.seed = options.seed;
      const std::string tag = std::string(ConsistencyLevelName(level)) +
                              std::to_string(static_cast<int>(mix * 100));
      ApplyObservability(options, tag, &config);

      const ExperimentResult result = MustRun(workload, config);
      std::printf("%10.1f", result.throughput_tps);
      std::fflush(stdout);
      report.Add(tag, result);
    }
    std::printf("\n");
  }
  return report.Finish();
}

}  // namespace
}  // namespace screp::bench

int main(int argc, char** argv) { return screp::bench::Main(argc, argv); }
