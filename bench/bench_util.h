// Shared helpers for the figure-reproduction drivers.
//
// Every driver prints the rows/series of one table or figure from the
// paper.  Simulated runs replace the paper's 10-minute measurement
// intervals with (configurable) tens of simulated seconds; pass --quick
// for an even shorter smoke run, --full for longer windows.

#ifndef SCREP_BENCH_BENCH_UTIL_H_
#define SCREP_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstring>
#include <string>

#include "workload/experiment.h"

namespace screp::bench {

/// Run-length profile selected on the command line.
struct BenchOptions {
  SimTime warmup = Seconds(2);
  SimTime duration = Seconds(20);
  uint64_t seed = 42;
  /// --metrics-json <path>: write each run's metrics snapshot + sampled
  /// time series as JSON (multi-run drivers tag the path per run).
  std::string metrics_json;
  /// --trace-json <path>: write each run's per-transaction trace in
  /// Chrome trace-event JSON (open in chrome://tracing or Perfetto).
  std::string trace_json;
};

inline BenchOptions ParseOptions(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      options.warmup = Seconds(0.5);
      options.duration = Seconds(4);
    } else if (std::strcmp(argv[i], "--full") == 0) {
      options.warmup = Seconds(5);
      options.duration = Seconds(60);
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      options.seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strncmp(argv[i], "--metrics-json=", 15) == 0) {
      options.metrics_json = argv[i] + 15;
    } else if (std::strcmp(argv[i], "--metrics-json") == 0 && i + 1 < argc) {
      options.metrics_json = argv[++i];
    } else if (std::strncmp(argv[i], "--trace-json=", 13) == 0) {
      options.trace_json = argv[i] + 13;
    } else if (std::strcmp(argv[i], "--trace-json") == 0 && i + 1 < argc) {
      options.trace_json = argv[++i];
    }
  }
  return options;
}

/// Inserts `tag` before the path's extension ("out.json" + "lsc25" ->
/// "out.lsc25.json") so multi-run drivers write one file per run.
inline std::string TaggedPath(const std::string& path,
                              const std::string& tag) {
  if (tag.empty()) return path;
  const size_t dot = path.find_last_of('.');
  const size_t slash = path.find_last_of('/');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return path + "." + tag;
  }
  return path.substr(0, dot) + "." + tag + path.substr(dot);
}

/// Copies the observability output options into one run's config, tagging
/// the paths with a per-run label.
inline void ApplyObservability(const BenchOptions& options,
                               const std::string& tag,
                               ExperimentConfig* config) {
  if (!options.metrics_json.empty()) {
    config->metrics_json_path = TaggedPath(options.metrics_json, tag);
  }
  if (!options.trace_json.empty()) {
    config->trace_json_path = TaggedPath(options.trace_json, tag);
  }
}

inline void PrintHeader(const char* title, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("(reproduces %s; simulated cluster, shapes comparable, absolute\n",
              paper_ref);
  std::printf(" numbers depend on the simulated service-time model)\n");
  std::printf("================================================================\n");
}

/// Runs one experiment, aborting the binary on setup failure.
inline ExperimentResult MustRun(const Workload& workload,
                                const ExperimentConfig& config) {
  Result<ExperimentResult> result = RunExperiment(workload, config);
  if (!result.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace screp::bench

#endif  // SCREP_BENCH_BENCH_UTIL_H_
