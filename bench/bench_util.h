// Shared helpers for the figure-reproduction drivers.
//
// Every driver prints the rows/series of one table or figure from the
// paper.  Simulated runs replace the paper's 10-minute measurement
// intervals with (configurable) tens of simulated seconds; pass --quick
// for an even shorter smoke run, --full for longer windows.

#ifndef SCREP_BENCH_BENCH_UTIL_H_
#define SCREP_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "workload/experiment.h"

namespace screp::bench {

/// Run-length profile selected on the command line.
struct BenchOptions {
  SimTime warmup = Seconds(2);
  SimTime duration = Seconds(20);
  uint64_t seed = 42;
  /// --metrics-json <path>: write each run's metrics snapshot + sampled
  /// time series as JSON (multi-run drivers tag the path per run).
  std::string metrics_json;
  /// --trace-json <path>: write each run's per-transaction trace in
  /// Chrome trace-event JSON (open in chrome://tracing or Perfetto).
  std::string trace_json;
  /// --audit: run the online consistency auditor during every run and
  /// print the per-run verdict + staleness attribution (exit 1 on any
  /// violation).
  bool audit = false;
  /// --audit-json <path>: additionally write each run's audit report as
  /// JSON (tagged per run; implies --audit).
  std::string audit_json;
  /// --bench-json [path]: write the machine-readable run summary
  /// (throughput, latency percentiles, staleness percentiles).  The bare
  /// flag defaults to BENCH_<driver>.json in the working directory.
  std::string bench_json;
  /// --profile: run the critical-path profiler during every run, print
  /// the per-run segment breakdown, and embed the full report in the
  /// bench JSON.  The driver exits 1 if any run's segment sums fail the
  /// conservation self-check.
  bool profile = false;
  /// --profile-json <path>: additionally write each run's full profiler
  /// report as JSON (tagged per run; implies --profile).
  std::string profile_json;
  /// --metrics-prom <path>: write each run's end-of-run metrics snapshot
  /// in Prometheus text exposition format (tagged per run).
  std::string metrics_prom;
  /// --apply-lanes=N: how many certified writesets each replica may
  /// execute concurrently (out-of-order execution, in-order version
  /// publish).  0 keeps the driver's own default (the paper's serial
  /// apply, N=1).
  int apply_lanes = 0;
  /// --net-jitter=<us>: mean exponential jitter added to every cluster
  /// link (FIFO per link is preserved; 0 keeps the deterministic
  /// latencies).
  SimTime net_jitter = 0;
  /// --net-loss=<p>: drop probability injected on the certifier->replica
  /// refresh stream (the reliable channel retransmits, so runs finish
  /// audit-clean — slower, not wrong).
  double net_loss = 0;
  /// --refresh-batch: coalesce each group commit's refresh fan-out into
  /// one message per target replica.
  bool refresh_batch = false;
  /// --health: run the online health monitor during every run and print
  /// the per-run verdict (state transitions, detector firings).  Does
  /// not affect the exit code — detection policy belongs to the health
  /// sweep, not the figure drivers.
  bool health = false;
  /// --health-json <path>: additionally write each run's health report as
  /// JSON (tagged per run; implies --health).
  std::string health_json;
  /// --timeline-json <path>: write each run's timeline bundle (sampled
  /// series + health track + fault markers) as JSON for
  /// tools/render_timeline.py (tagged per run; implies --health).
  std::string timeline_json;
};

inline BenchOptions ParseOptions(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      options.warmup = Seconds(0.5);
      options.duration = Seconds(4);
    } else if (std::strcmp(argv[i], "--full") == 0) {
      options.warmup = Seconds(5);
      options.duration = Seconds(60);
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      options.seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strncmp(argv[i], "--metrics-json=", 15) == 0) {
      options.metrics_json = argv[i] + 15;
    } else if (std::strcmp(argv[i], "--metrics-json") == 0 && i + 1 < argc) {
      options.metrics_json = argv[++i];
    } else if (std::strncmp(argv[i], "--trace-json=", 13) == 0) {
      options.trace_json = argv[i] + 13;
    } else if (std::strcmp(argv[i], "--trace-json") == 0 && i + 1 < argc) {
      options.trace_json = argv[++i];
    } else if (std::strcmp(argv[i], "--audit") == 0) {
      options.audit = true;
    } else if (std::strncmp(argv[i], "--audit-json=", 13) == 0) {
      options.audit_json = argv[i] + 13;
      options.audit = true;
    } else if (std::strcmp(argv[i], "--audit-json") == 0 && i + 1 < argc) {
      options.audit_json = argv[++i];
      options.audit = true;
    } else if (std::strncmp(argv[i], "--apply-lanes=", 14) == 0) {
      options.apply_lanes = static_cast<int>(std::strtol(argv[i] + 14,
                                                         nullptr, 10));
    } else if (std::strncmp(argv[i], "--net-jitter=", 13) == 0) {
      options.net_jitter = Micros(std::strtod(argv[i] + 13, nullptr));
    } else if (std::strncmp(argv[i], "--net-loss=", 11) == 0) {
      options.net_loss = std::strtod(argv[i] + 11, nullptr);
    } else if (std::strcmp(argv[i], "--refresh-batch") == 0) {
      options.refresh_batch = true;
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      options.profile = true;
    } else if (std::strncmp(argv[i], "--profile-json=", 15) == 0) {
      options.profile_json = argv[i] + 15;
      options.profile = true;
    } else if (std::strcmp(argv[i], "--profile-json") == 0 && i + 1 < argc) {
      options.profile_json = argv[++i];
      options.profile = true;
    } else if (std::strcmp(argv[i], "--health") == 0) {
      options.health = true;
    } else if (std::strncmp(argv[i], "--health-json=", 14) == 0) {
      options.health_json = argv[i] + 14;
      options.health = true;
    } else if (std::strcmp(argv[i], "--health-json") == 0 && i + 1 < argc) {
      options.health_json = argv[++i];
      options.health = true;
    } else if (std::strncmp(argv[i], "--timeline-json=", 16) == 0) {
      options.timeline_json = argv[i] + 16;
      options.health = true;
    } else if (std::strcmp(argv[i], "--timeline-json") == 0 && i + 1 < argc) {
      options.timeline_json = argv[++i];
      options.health = true;
    } else if (std::strncmp(argv[i], "--metrics-prom=", 15) == 0) {
      options.metrics_prom = argv[i] + 15;
    } else if (std::strcmp(argv[i], "--metrics-prom") == 0 && i + 1 < argc) {
      options.metrics_prom = argv[++i];
    } else if (std::strncmp(argv[i], "--bench-json=", 13) == 0) {
      options.bench_json = argv[i] + 13;
    } else if (std::strcmp(argv[i], "--bench-json") == 0) {
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        options.bench_json = argv[++i];
      } else {
        options.bench_json = "auto";  // resolved per driver by BenchReport
      }
    }
  }
  return options;
}

/// Inserts `tag` before the path's extension ("out.json" + "lsc25" ->
/// "out.lsc25.json") so multi-run drivers write one file per run.
inline std::string TaggedPath(const std::string& path,
                              const std::string& tag) {
  if (tag.empty()) return path;
  const size_t dot = path.find_last_of('.');
  const size_t slash = path.find_last_of('/');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return path + "." + tag;
  }
  return path.substr(0, dot) + "." + tag + path.substr(dot);
}

/// Applies the --net-jitter / --net-loss / --refresh-batch knobs to one
/// system config (used directly by drivers that build a SystemConfig by
/// hand; ApplyObservability calls it for the experiment-based drivers).
inline void ApplyNetworkOptions(const BenchOptions& options,
                                SystemConfig* system) {
  if (options.net_jitter > 0) {
    system->network.client_lb.jitter_mean = options.net_jitter;
    system->network.lb_replica.jitter_mean = options.net_jitter;
    system->network.replica_certifier.jitter_mean = options.net_jitter;
    system->network.refresh.jitter_mean = options.net_jitter;
  }
  if (options.net_loss > 0) {
    system->network.refresh.drop_probability = options.net_loss;
  }
  if (options.refresh_batch) system->certifier.refresh_batching = true;
}

/// Copies the observability output options into one run's config, tagging
/// the paths with a per-run label.
inline void ApplyObservability(const BenchOptions& options,
                               const std::string& tag,
                               ExperimentConfig* config) {
  if (!options.metrics_json.empty()) {
    config->metrics_json_path = TaggedPath(options.metrics_json, tag);
  }
  if (!options.trace_json.empty()) {
    config->trace_json_path = TaggedPath(options.trace_json, tag);
  }
  if (options.audit) config->audit = true;
  if (!options.audit_json.empty()) {
    config->audit_json_path = TaggedPath(options.audit_json, tag);
  }
  if (options.profile) config->profile = true;
  if (!options.profile_json.empty()) {
    config->profile_json_path = TaggedPath(options.profile_json, tag);
  }
  if (!options.metrics_prom.empty()) {
    config->metrics_prom_path = TaggedPath(options.metrics_prom, tag);
  }
  if (options.health) config->health = true;
  if (!options.health_json.empty()) {
    config->health_json_path = TaggedPath(options.health_json, tag);
  }
  if (!options.timeline_json.empty()) {
    config->timeline_json_path = TaggedPath(options.timeline_json, tag);
  }
  if (options.apply_lanes > 0) {
    config->system.proxy.apply_lanes = options.apply_lanes;
  }
  ApplyNetworkOptions(options, &config->system);
}

inline void PrintHeader(const char* title, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("(reproduces %s; simulated cluster, shapes comparable, absolute\n",
              paper_ref);
  std::printf(" numbers depend on the simulated service-time model)\n");
  std::printf("================================================================\n");
}

/// "segment=mean_ms ..." over the nonzero segments of one profiled run
/// (population means, so the printed values sum to the mean response).
inline std::string ProfileBreakdownLine(const ProfileSummary& profile) {
  char buf[64];
  std::string out;
  for (int s = 0; s < obs::kProfileSegmentCount; ++s) {
    const double ms = profile.segment_mean_ms[static_cast<size_t>(s)];
    if (ms <= 0) continue;
    std::snprintf(buf, sizeof(buf), "%s%s=%.2f", out.empty() ? "" : " ",
                  obs::ProfileSegmentName(static_cast<obs::ProfileSegment>(s)),
                  ms);
    out += buf;
  }
  return out.empty() ? "(all segments zero)" : out;
}

/// Runs one experiment, aborting the binary on setup failure.
inline ExperimentResult MustRun(const Workload& workload,
                                const ExperimentConfig& config) {
  Result<ExperimentResult> result = RunExperiment(workload, config);
  if (!result.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

/// Collects every run of a driver into the machine-readable BENCH_*.json
/// summary and the end-of-run audit report.  Usage:
///
///   BenchReport report("fig3", options);
///   ... per run: report.Add(tag, MustRun(workload, config));
///   return report.Finish();
///
/// With auditing off this adds nothing to stdout (runs stay
/// byte-identical); with --audit it prints one verdict line per run plus
/// a final summary, and Finish() returns 1 if any run saw a violation.
class BenchReport {
 public:
  BenchReport(std::string driver, const BenchOptions& options)
      : driver_(std::move(driver)), options_(options) {}

  /// Records one run under a per-run tag; returns the result untouched so
  /// callers can keep using it.
  const ExperimentResult& Add(const std::string& tag,
                              const ExperimentResult& result) {
    runs_.emplace_back(tag, result.ToJson());
    if (result.audit.enabled) {
      audited_ = true;
      audit_events_ += result.audit.events;
      audit_checks_ += result.audit.checks;
      audit_violations_ += result.audit.violations;
      if (!result.audit.ok && first_violation_tag_.empty()) {
        first_violation_tag_ = tag;
        first_violation_ = result.audit.first_violation;
      }
      audit_lines_.push_back("  [" + tag + "] " + result.audit.ToString());
    }
    if (result.profile.enabled) {
      profiled_ = true;
      profile_checked_ += result.profile.conservation_checked;
      profile_violations_ += result.profile.conservation_violations;
      if (result.profile.conservation_violations > 0 &&
          first_profile_violation_tag_.empty()) {
        first_profile_violation_tag_ = tag;
        first_profile_violation_ = result.profile.first_violation;
      }
      profile_lines_.push_back("  [" + tag + "] " +
                               ProfileBreakdownLine(result.profile));
    }
    if (result.health.enabled) {
      health_monitored_ = true;
      health_firings_ += result.health.firings;
      health_lines_.push_back("  [" + tag + "] " +
                              result.health.ToString());
    }
    return results_.emplace_back(result);
  }

  /// Writes the BENCH JSON (when requested), prints the end-of-run audit
  /// report, and returns the driver's exit code (1 on any violation).
  int Finish() {
    if (!options_.bench_json.empty()) {
      const std::string path = options_.bench_json == "auto"
                                   ? "BENCH_" + driver_ + ".json"
                                   : options_.bench_json;
      std::ofstream out(path);
      out << "{\"driver\":\"" << driver_ << "\",\"runs\":[";
      for (size_t i = 0; i < runs_.size(); ++i) {
        if (i > 0) out << ",";
        out << "{\"tag\":\"" << runs_[i].first
            << "\",\"result\":" << runs_[i].second << "}";
      }
      out << "]}\n";
      if (!out) {
        std::fprintf(stderr, "failed to write %s\n", path.c_str());
        return 1;
      }
      std::printf("\nwrote %s (%zu runs)\n", path.c_str(), runs_.size());
    }
    if (audited_) {
      std::printf("\n---- audit report (%zu runs) ----\n", runs_.size());
      for (const std::string& line : audit_lines_) {
        std::printf("%s\n", line.c_str());
      }
      std::printf("events consumed: %lld, checks performed: %lld\n",
                  static_cast<long long>(audit_events_),
                  static_cast<long long>(audit_checks_));
      if (audit_violations_ == 0) {
        std::printf("consistency: OK — no violations in any run\n");
      } else {
        std::printf("consistency: FAILED — %lld violation(s); first in "
                    "run [%s]: %s\n",
                    static_cast<long long>(audit_violations_),
                    first_violation_tag_.c_str(), first_violation_.c_str());
      }
    }
    if (profiled_) {
      std::printf("\n---- critical-path profile (%zu runs; mean ms per "
                  "segment) ----\n", runs_.size());
      for (const std::string& line : profile_lines_) {
        std::printf("%s\n", line.c_str());
      }
      if (profile_violations_ == 0) {
        std::printf("conservation: OK — segments sum to the response time "
                    "on all %lld checked attempt(s)\n",
                    static_cast<long long>(profile_checked_));
      } else {
        std::printf("conservation: FAILED — %lld of %lld checked "
                    "attempt(s); first in run [%s]: %s\n",
                    static_cast<long long>(profile_violations_),
                    static_cast<long long>(profile_checked_),
                    first_profile_violation_tag_.c_str(),
                    first_profile_violation_.c_str());
      }
    }
    if (health_monitored_) {
      std::printf("\n---- health report (%zu runs) ----\n", runs_.size());
      for (const std::string& line : health_lines_) {
        std::printf("%s\n", line.c_str());
      }
      if (health_firings_ == 0) {
        std::printf("health: quiet — no detector fired in any run\n");
      } else {
        std::printf("health: %lld detector firing(s) across runs (see "
                    "per-run lines; not an error for figure drivers)\n",
                    static_cast<long long>(health_firings_));
      }
    }
    return (audit_violations_ > 0 || profile_violations_ > 0) ? 1 : 0;
  }

  const std::vector<ExperimentResult>& results() const { return results_; }

 private:
  std::string driver_;
  const BenchOptions& options_;
  std::vector<std::pair<std::string, std::string>> runs_;  // tag -> json
  std::vector<ExperimentResult> results_;
  bool audited_ = false;
  std::vector<std::string> audit_lines_;
  int64_t audit_events_ = 0;
  int64_t audit_checks_ = 0;
  int64_t audit_violations_ = 0;
  std::string first_violation_tag_;
  std::string first_violation_;
  bool profiled_ = false;
  std::vector<std::string> profile_lines_;
  int64_t profile_checked_ = 0;
  int64_t profile_violations_ = 0;
  std::string first_profile_violation_tag_;
  std::string first_profile_violation_;
  bool health_monitored_ = false;
  std::vector<std::string> health_lines_;
  int64_t health_firings_ = 0;
};

}  // namespace screp::bench

#endif  // SCREP_BENCH_BENCH_UTIL_H_
