// Shared helpers for the figure-reproduction drivers.
//
// Every driver prints the rows/series of one table or figure from the
// paper.  Simulated runs replace the paper's 10-minute measurement
// intervals with (configurable) tens of simulated seconds; pass --quick
// for an even shorter smoke run, --full for longer windows.

#ifndef SCREP_BENCH_BENCH_UTIL_H_
#define SCREP_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstring>
#include <string>

#include "workload/experiment.h"

namespace screp::bench {

/// Run-length profile selected on the command line.
struct BenchOptions {
  SimTime warmup = Seconds(2);
  SimTime duration = Seconds(20);
  uint64_t seed = 42;
};

inline BenchOptions ParseOptions(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      options.warmup = Seconds(0.5);
      options.duration = Seconds(4);
    } else if (std::strcmp(argv[i], "--full") == 0) {
      options.warmup = Seconds(5);
      options.duration = Seconds(60);
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      options.seed = std::strtoull(argv[i] + 7, nullptr, 10);
    }
  }
  return options;
}

inline void PrintHeader(const char* title, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("(reproduces %s; simulated cluster, shapes comparable, absolute\n",
              paper_ref);
  std::printf(" numbers depend on the simulated service-time model)\n");
  std::printf("================================================================\n");
}

/// Runs one experiment, aborting the binary on setup failure.
inline ExperimentResult MustRun(const Workload& workload,
                                const ExperimentConfig& config) {
  Result<ExperimentResult> result = RunExperiment(workload, config);
  if (!result.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace screp::bench

#endif  // SCREP_BENCH_BENCH_UTIL_H_
