// Availability timeline (extension, not a paper figure): throughput and
// response time per half-second around a replica crash and recovery,
// and around a certifier failover — making the crash-recovery design of
// §IV visible as a time series.

#include "bench/bench_util.h"
#include "workload/micro.h"

namespace screp::bench {
namespace {

void PrintTimeline(const MetricsCollector& metrics, SimTime crash_at,
                   SimTime recover_at) {
  const double width_s = ToSeconds(metrics.timeline_bucket_width());
  std::printf("%8s %10s %10s %9s  %s\n", "t(s)", "TPS", "resp(ms)",
              "failures", "events");
  const auto& timeline = metrics.timeline();
  for (size_t i = 0; i < timeline.size(); ++i) {
    const auto& bucket = timeline[i];
    const double t0 = static_cast<double>(i) * width_s;
    std::string note;
    if (crash_at >= Seconds(t0) && crash_at < Seconds(t0 + width_s)) {
      note += "  <- replica crash";
    }
    if (recover_at >= Seconds(t0) && recover_at < Seconds(t0 + width_s)) {
      note += "  <- recovery";
    }
    std::printf("%8.1f %10.1f %10.2f %9lld%s\n", t0,
                static_cast<double>(bucket.committed) / width_s,
                bucket.MeanResponseMs(),
                static_cast<long long>(bucket.failures), note.c_str());
  }
}

// Network-sensitivity sweep (--net-sweep): instead of a crash, replica 1
// is *partitioned* at t=4s (links cut, process alive) and healed at
// t=8s, optionally under --net-jitter / --net-loss.  Verifies that the
// LB fails the silent replica over, that the healed replica catches
// back up to the survivors, and that the run stays audit-clean.
int NetSweep(const BenchOptions& options) {
  PrintHeader("Network sweep: replica partition at t=4s, heal at t=8s "
              "(LSC, 4 replicas, 16 clients)",
              "the crash-recovery design of §IV (extension)");
  std::printf("link jitter mean: %.0fus, refresh loss: %.2f, refresh "
              "batching: %s\n",
              static_cast<double>(options.net_jitter), options.net_loss,
              options.refresh_batch ? "on" : "off");

  MicroConfig micro;
  micro.update_fraction = 0.5;
  MicroWorkload workload(micro);

  Simulator sim;
  SystemConfig sys_config;
  sys_config.level = ConsistencyLevel::kLazyCoarse;
  sys_config.replica_count = 4;
  sys_config.obs.audit = true;
  ApplyNetworkOptions(options, &sys_config);
  auto system_or = ReplicatedSystem::Create(
      &sim, sys_config,
      [&workload](Database* db) { return workload.BuildSchema(db); },
      [&workload](const Database& db, sql::TransactionRegistry* reg) {
        return workload.DefineTransactions(db, reg);
      });
  if (!system_or.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 system_or.status().ToString().c_str());
    return 1;
  }
  auto system = std::move(system_or).value();

  MetricsCollector metrics(0);
  metrics.EnableTimeline(Millis(500));
  std::vector<std::unique_ptr<ClientDriver>> clients;
  Rng rng(17);
  for (int c = 0; c < 16; ++c) {
    clients.push_back(std::make_unique<ClientDriver>(
        system.get(), &metrics,
        workload.CreateGenerator(system->registry(), c, rng.Fork()), c,
        ClientConfig{}, rng.Fork()));
  }
  system->SetClientCallback([&clients](const TxnResponse& r) {
    clients[static_cast<size_t>(r.client_id)]->OnResponse(r);
  });
  for (auto& client : clients) client->Start();

  const SimTime partition_at = Seconds(4);
  const SimTime heal_at = Seconds(8);
  sim.Schedule(partition_at, [&system]() { system->PartitionReplica(1); });
  sim.Schedule(heal_at, [&system]() { system->HealReplicaPartition(1); });
  sim.Schedule(Seconds(12), [&clients, &system]() {
    for (auto& client : clients) client->Stop();
    system->obs()->StopSampling();
  });
  sim.RunUntil(Seconds(12));
  sim.RunAll();

  PrintTimeline(metrics, partition_at, heal_at);

  // The partition must have been detected (transactions failed over) and
  // fully repaired (the healed replica converged with the survivors).
  int64_t failures = 0;
  for (const auto& bucket : metrics.timeline()) failures += bucket.failures;
  const DbVersion v_healed = system->replica(1)->db()->CommittedVersion();
  const DbVersion v_survivor = system->replica(0)->db()->CommittedVersion();
  const auto& refresh = system->refresh_channel(1)->stats();
  std::printf("\nfailed-over transactions: %lld\n",
              static_cast<long long>(failures));
  std::printf("healed replica version: %lld (survivor: %lld)\n",
              static_cast<long long>(v_healed),
              static_cast<long long>(v_survivor));
  std::printf("refresh link to healed replica: %s\n",
              refresh.ToString().c_str());
  bool ok = true;
  if (failures == 0) {
    std::printf("FAIL: no transaction failed over at the partition\n");
    ok = false;
  }
  if (v_healed != v_survivor) {
    std::printf("FAIL: healed replica did not converge\n");
    ok = false;
  }
  const obs::Auditor* auditor = system->obs()->auditor();
  std::printf("\n---- audit report ----\n%s\n", auditor->Summary().c_str());
  if (!auditor->ok()) ok = false;
  std::printf("%s\n", ok ? "net sweep: OK" : "net sweep: FAILED");
  return ok ? 0 : 1;
}

int Main(int argc, char** argv) {
  const BenchOptions options = ParseOptions(argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--net-sweep") == 0) return NetSweep(options);
  }
  PrintHeader("Availability timeline: replica crash at t=4s, recovery at "
              "t=8s (LSC, 4 replicas, 16 clients)",
              "the crash-recovery design of §IV (extension)");

  MicroConfig micro;
  micro.update_fraction = 0.5;
  MicroWorkload workload(micro);

  Simulator sim;
  SystemConfig sys_config;
  sys_config.level = ConsistencyLevel::kLazyCoarse;
  sys_config.replica_count = 4;
  if (!options.trace_json.empty()) sys_config.obs.tracing = true;
  if (!options.metrics_json.empty()) sys_config.obs.sample_period = Millis(500);
  if (options.audit) sys_config.obs.audit = true;
  ApplyNetworkOptions(options, &sys_config);
  auto system_or = ReplicatedSystem::Create(
      &sim, sys_config,
      [&workload](Database* db) { return workload.BuildSchema(db); },
      [&workload](const Database& db, sql::TransactionRegistry* reg) {
        return workload.DefineTransactions(db, reg);
      });
  if (!system_or.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 system_or.status().ToString().c_str());
    return 1;
  }
  auto system = std::move(system_or).value();

  MetricsCollector metrics(0);
  metrics.EnableTimeline(Millis(500));
  std::vector<std::unique_ptr<ClientDriver>> clients;
  Rng rng(17);
  for (int c = 0; c < 16; ++c) {
    clients.push_back(std::make_unique<ClientDriver>(
        system.get(), &metrics,
        workload.CreateGenerator(system->registry(), c, rng.Fork()), c,
        ClientConfig{}, rng.Fork()));
  }
  system->SetClientCallback([&clients](const TxnResponse& r) {
    clients[static_cast<size_t>(r.client_id)]->OnResponse(r);
  });
  for (auto& client : clients) client->Start();

  const SimTime crash_at = Seconds(4);
  const SimTime recover_at = Seconds(8);
  sim.Schedule(crash_at, [&system]() { system->CrashReplica(1); });
  sim.Schedule(recover_at, [&system]() { system->RecoverReplica(1); });
  sim.Schedule(Seconds(12), [&clients, &system]() {
    for (auto& client : clients) client->Stop();
    system->obs()->StopSampling();
  });
  sim.RunUntil(Seconds(12));
  sim.RunAll();

  if (!options.metrics_json.empty()) {
    const Status st = system->obs()->WriteMetricsJson(options.metrics_json);
    if (!st.ok()) {
      std::fprintf(stderr, "metrics write failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
  }
  if (!options.trace_json.empty()) {
    const Status st = system->obs()->WriteTraceJson(options.trace_json);
    if (!st.ok()) {
      std::fprintf(stderr, "trace write failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  PrintTimeline(metrics, crash_at, recover_at);
  std::printf(
      "\nThe failure spike at the crash is the failed-over in-flight\n"
      "transactions (clients retried them on the survivors); the cluster\n"
      "keeps serving throughout, and the recovered replica rejoins after\n"
      "catching up from the certifier's log.\n");

  if (!options.audit_json.empty()) {
    const Status st = system->obs()->WriteAuditJson(options.audit_json);
    if (!st.ok()) {
      std::fprintf(stderr, "audit write failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  if (const obs::Auditor* auditor = system->obs()->auditor()) {
    std::printf("\n---- audit report ----\n%s\n",
                auditor->Summary().c_str());
    return auditor->ok() ? 0 : 1;
  }
  return 0;
}

}  // namespace
}  // namespace screp::bench

int main(int argc, char** argv) { return screp::bench::Main(argc, argv); }
