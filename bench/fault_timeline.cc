// Availability timeline (extension, not a paper figure): throughput and
#include "runtime/sim_runtime.h"
// response time per half-second around a replica crash and recovery,
// and around a certifier failover — making the crash-recovery design of
// §IV visible as a time series.
//
// --health-sweep turns the driver into the end-to-end self-check of the
// online health monitor: one run per fault class (each must trip its
// matching detector within a bounded number of samples) plus one clean
// default-config run per figure driver (each must stay detector-quiet),
// written as BENCH_health.json for tools/bench_gate.py.

#include "bench/bench_util.h"
#include "workload/micro.h"
#include "workload/tpcw.h"

namespace screp::bench {
namespace {

void PrintTimeline(const MetricsCollector& metrics, SimTime crash_at,
                   SimTime recover_at) {
  const double width_s = ToSeconds(metrics.timeline_bucket_width());
  std::printf("%8s %10s %10s %9s  %s\n", "t(s)", "TPS", "resp(ms)",
              "failures", "events");
  const auto& timeline = metrics.timeline();
  for (size_t i = 0; i < timeline.size(); ++i) {
    const auto& bucket = timeline[i];
    const double t0 = static_cast<double>(i) * width_s;
    std::string note;
    if (crash_at >= Seconds(t0) && crash_at < Seconds(t0 + width_s)) {
      note += "  <- replica crash";
    }
    if (recover_at >= Seconds(t0) && recover_at < Seconds(t0 + width_s)) {
      note += "  <- recovery";
    }
    std::printf("%8.1f %10.1f %10.2f %9lld%s\n", t0,
                static_cast<double>(bucket.committed) / width_s,
                bucket.MeanResponseMs(),
                static_cast<long long>(bucket.failures), note.c_str());
  }
}

// Network-sensitivity sweep (--net-sweep): instead of a crash, replica 1
// is *partitioned* at t=4s (links cut, process alive) and healed at
// t=8s, optionally under --net-jitter / --net-loss.  Verifies that the
// LB fails the silent replica over, that the healed replica catches
// back up to the survivors, and that the run stays audit-clean.
int NetSweep(const BenchOptions& options) {
  PrintHeader("Network sweep: replica partition at t=4s, heal at t=8s "
              "(LSC, 4 replicas, 16 clients)",
              "the crash-recovery design of §IV (extension)");
  std::printf("link jitter mean: %.0fus, refresh loss: %.2f, refresh "
              "batching: %s\n",
              static_cast<double>(options.net_jitter), options.net_loss,
              options.refresh_batch ? "on" : "off");

  MicroConfig micro;
  micro.update_fraction = 0.5;
  MicroWorkload workload(micro);

  Simulator sim;
  runtime::SimRuntime rt{&sim};
  SystemConfig sys_config;
  sys_config.level = ConsistencyLevel::kLazyCoarse;
  sys_config.replica_count = 4;
  sys_config.obs.audit = true;
  if (options.health) sys_config.obs.health = true;
  ApplyNetworkOptions(options, &sys_config);
  auto system_or = ReplicatedSystem::Create(
      &rt, sys_config,
      [&workload](Database* db) { return workload.BuildSchema(db); },
      [&workload](const Database& db, sql::TransactionRegistry* reg) {
        return workload.DefineTransactions(db, reg);
      });
  if (!system_or.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 system_or.status().ToString().c_str());
    return 1;
  }
  auto system = std::move(system_or).value();

  MetricsCollector metrics(0);
  metrics.EnableTimeline(Millis(500));
  std::vector<std::unique_ptr<ClientDriver>> clients;
  Rng rng(17);
  for (int c = 0; c < 16; ++c) {
    clients.push_back(std::make_unique<ClientDriver>(
        system.get(), &metrics,
        workload.CreateGenerator(system->registry(), c, rng.Fork()), c,
        ClientConfig{}, rng.Fork()));
  }
  system->SetClientCallback([&clients](const TxnResponse& r) {
    clients[static_cast<size_t>(r.client_id)]->OnResponse(r);
  });
  for (auto& client : clients) client->Start();

  const SimTime partition_at = Seconds(4);
  const SimTime heal_at = Seconds(8);
  sim.Schedule(partition_at, [&system]() { system->PartitionReplica(1); });
  sim.Schedule(heal_at, [&system]() { system->HealReplicaPartition(1); });
  sim.Schedule(Seconds(12), [&clients, &system]() {
    for (auto& client : clients) client->Stop();
    system->obs()->StopSampling();
  });
  sim.RunUntil(Seconds(12));
  sim.RunAll();

  PrintTimeline(metrics, partition_at, heal_at);

  // The partition must have been detected (transactions failed over) and
  // fully repaired (the healed replica converged with the survivors).
  int64_t failures = 0;
  for (const auto& bucket : metrics.timeline()) failures += bucket.failures;
  const DbVersion v_healed = system->replica(1)->db()->CommittedVersion();
  const DbVersion v_survivor = system->replica(0)->db()->CommittedVersion();
  const auto& refresh = system->refresh_channel(1)->stats();
  std::printf("\nfailed-over transactions: %lld\n",
              static_cast<long long>(failures));
  std::printf("healed replica version: %lld (survivor: %lld)\n",
              static_cast<long long>(v_healed),
              static_cast<long long>(v_survivor));
  std::printf("refresh link to healed replica: %s\n",
              refresh.ToString().c_str());
  bool ok = true;
  if (failures == 0) {
    std::printf("FAIL: no transaction failed over at the partition\n");
    ok = false;
  }
  if (v_healed != v_survivor) {
    std::printf("FAIL: healed replica did not converge\n");
    ok = false;
  }
  const obs::Auditor* auditor = system->obs()->auditor();
  std::printf("\n---- audit report ----\n%s\n", auditor->Summary().c_str());
  if (!auditor->ok()) ok = false;
  if (const obs::HealthMonitor* monitor = system->obs()->health_monitor()) {
    std::printf("---- health ----\n%s\n", monitor->Summary().c_str());
  }
  std::printf("%s\n", ok ? "net sweep: OK" : "net sweep: FAILED");
  return ok ? 0 : 1;
}

// ---- Health sweep -------------------------------------------------------

/// One fault scenario's verdict.
struct FaultOutcome {
  std::string fault;
  std::string detector;  ///< the detector this fault must trip
  SimTime injected_at = 0;
  SimTime first_fired_at = -1;
  bool detected = false;
  /// Samples from injection to the first firing of the matching detector.
  int64_t detection_samples = 0;
  /// Ceiling the gate enforces on detection_samples.
  int64_t bound_samples = 0;
  /// Every detector that fired during the run (context, not gated).
  std::string fired;
  bool audit_ok = true;
};

/// One clean run's verdict.
struct CleanOutcome {
  std::string run;
  int64_t firings = 0;
  double p99_ms = 0;  ///< to sanity-check the latency objective's headroom
  std::string fired;  ///< names, to diagnose a false positive
  bool audit_ok = true;
};

/// Stands up a hand-built LSC system with health monitoring on, runs
/// `clients` closed-loop micro clients for `duration`, applying
/// `mutate` to the config and `inject` to the running simulation.
struct ScenarioResult {
  SimTime first_fired_at = -1;
  int64_t firings_of_detector = 0;
  int64_t total_firings = 0;
  std::string fired;
  bool audit_ok = true;
  SimTime sample_period = 0;
};

template <typename Mutate, typename Inject>
ScenarioResult RunFaultScenario(const BenchOptions& options, int clients,
                                int start_clients, double update_fraction,
                                SimTime duration,
                                obs::HealthDetector detector, Mutate mutate,
                                Inject inject) {
  MicroConfig micro;
  micro.update_fraction = update_fraction;
  MicroWorkload workload(micro);

  Simulator sim;
  runtime::SimRuntime rt{&sim};
  SystemConfig sys_config;
  sys_config.level = ConsistencyLevel::kLazyCoarse;
  sys_config.replica_count = 4;
  sys_config.obs.audit = true;
  sys_config.obs.health = true;
  sys_config.seed = options.seed;
  ApplyNetworkOptions(options, &sys_config);
  mutate(&sys_config);
  auto system_or = ReplicatedSystem::Create(
      &rt, sys_config,
      [&workload](Database* db) { return workload.BuildSchema(db); },
      [&workload](const Database& db, sql::TransactionRegistry* reg) {
        return workload.DefineTransactions(db, reg);
      });
  if (!system_or.ok()) {
    std::fprintf(stderr, "health sweep setup failed: %s\n",
                 system_or.status().ToString().c_str());
    std::exit(1);
  }
  auto system = std::move(system_or).value();

  MetricsCollector metrics(0);
  std::vector<std::unique_ptr<ClientDriver>> clients_vec;
  Rng rng(options.seed ^ 0x9e3779b9);
  for (int c = 0; c < clients; ++c) {
    clients_vec.push_back(std::make_unique<ClientDriver>(
        system.get(), &metrics,
        workload.CreateGenerator(system->registry(), c, rng.Fork()), c,
        ClientConfig{}, rng.Fork()));
  }
  system->SetClientCallback([&clients_vec](const TxnResponse& r) {
    clients_vec[static_cast<size_t>(r.client_id)]->OnResponse(r);
  });
  // Clients beyond `start_clients` are left idle for the injector to
  // start later (the overload burst).
  for (int c = 0; c < start_clients; ++c) {
    clients_vec[static_cast<size_t>(c)]->Start();
  }

  inject(&sim, system.get(), &clients_vec);

  sim.Schedule(duration, [&clients_vec, &system]() {
    for (auto& client : clients_vec) client->Stop();
    system->obs()->StopSampling();
  });
  sim.RunUntil(duration);
  sim.RunAll();

  const obs::HealthMonitor* monitor = system->obs()->health_monitor();
  ScenarioResult result;
  result.first_fired_at = monitor->first_fired_at(detector);
  result.firings_of_detector = monitor->firings(detector);
  result.total_firings = monitor->total_firings();
  result.fired = monitor->FiredDetectorNames();
  result.audit_ok = system->obs()->auditor()->ok();
  result.sample_period = system->obs()->sampler()->period();
  if (!options.timeline_json.empty()) {
    const std::string path = TaggedPath(
        options.timeline_json, obs::HealthDetectorName(detector));
    const Status st = system->obs()->WriteTimelineJson(path);
    if (!st.ok()) {
      std::fprintf(stderr, "timeline write failed: %s\n",
                   st.ToString().c_str());
      std::exit(1);
    }
  }
  return result;
}

/// Samples between injection and first firing (1 = the first sample after
/// injection already fired).
int64_t SamplesBetween(SimTime injected_at, SimTime fired_at,
                       SimTime period) {
  if (fired_at < injected_at || period <= 0) return 0;
  return (fired_at - injected_at + period - 1) / period;
}

int HealthSweep(const BenchOptions& options) {
  PrintHeader("Health sweep: every fault class must trip its detector; "
              "clean runs must stay quiet",
              "the online health monitor (extension)");
  const SimTime kDuration = Seconds(12);
  std::vector<FaultOutcome> faults;

  struct FaultSpec {
    const char* name;
    obs::HealthDetector detector;
    SimTime injected_at;
    int64_t bound_samples;
  };

  // -- crash: replica 1 crash-stops and its version lag diverges from
  // the cluster median.
  {
    const FaultSpec spec{"crash", obs::HealthDetector::kLagDivergence,
                         Seconds(4), 16};
    const ScenarioResult r = RunFaultScenario(
        options, 16, 16, 0.5, kDuration, spec.detector,
        [](SystemConfig*) {},
        [&](Simulator* sim, ReplicatedSystem* system, auto*) {
          sim->Schedule(spec.injected_at,
                        [system]() { system->CrashReplica(1); });
        });
    faults.push_back({spec.name, obs::HealthDetectorName(spec.detector),
                      spec.injected_at, r.first_fired_at,
                      r.firings_of_detector > 0,
                      SamplesBetween(spec.injected_at, r.first_fired_at,
                                     r.sample_period),
                      spec.bound_samples, r.fired, r.audit_ok});
  }

  // -- partition: links cut (process alive); same divergence signature,
  // healed before the end so the run finishes audit-clean.
  {
    const FaultSpec spec{"partition", obs::HealthDetector::kLagDivergence,
                         Seconds(4), 16};
    const ScenarioResult r = RunFaultScenario(
        options, 16, 16, 0.5, kDuration, spec.detector,
        [](SystemConfig*) {},
        [&](Simulator* sim, ReplicatedSystem* system, auto*) {
          sim->Schedule(spec.injected_at,
                        [system]() { system->PartitionReplica(1); });
          sim->Schedule(Seconds(9),
                        [system]() { system->HealReplicaPartition(1); });
        });
    faults.push_back({spec.name, obs::HealthDetectorName(spec.detector),
                      spec.injected_at, r.first_fired_at,
                      r.firings_of_detector > 0,
                      SamplesBetween(spec.injected_at, r.first_fired_at,
                                     r.sample_period),
                      spec.bound_samples, r.fired, r.audit_ok});
  }

  // -- overload burst: 96 extra clients arrive over ~2.4s starting at
  // t=4s against a tight admission window with a deep queue, so the
  // admission queue ramps (trend detector) before shedding would kick in.
  {
    const FaultSpec spec{"overload", obs::HealthDetector::kQueueGrowth,
                         Seconds(4), 16};
    const ScenarioResult r = RunFaultScenario(
        options, 16 + 96, 16, 0.5, kDuration, spec.detector,
        [](SystemConfig* sys) {
          sys->admission.max_outstanding_per_replica = 4;
          sys->admission.admission_queue_limit = 4096;
        },
        [&](Simulator* sim, ReplicatedSystem*, auto* clients_vec) {
          // The burst: clients 16.. submit their first request one every
          // 25 ms from t=4s (~40 new clients per second).
          for (size_t c = 16; c < clients_vec->size(); ++c) {
            sim->Schedule(
                spec.injected_at + Millis(25) * static_cast<int64_t>(c - 16),
                [clients_vec, c]() { (*clients_vec)[c]->Start(); });
          }
        });
    faults.push_back({spec.name, obs::HealthDetectorName(spec.detector),
                      spec.injected_at, r.first_fired_at,
                      r.firings_of_detector > 0,
                      SamplesBetween(spec.injected_at, r.first_fired_at,
                                     r.sample_period),
                      spec.bound_samples, r.fired, r.audit_ok});
  }

  // -- loss: 30% refresh-stream drop probability from t=0; the reliable
  // channel retransmits (audit-clean) but the drop-rate series spikes.
  {
    const FaultSpec spec{"loss", obs::HealthDetector::kRefreshLoss, 0, 16};
    const ScenarioResult r = RunFaultScenario(
        options, 16, 16, 0.5, kDuration, spec.detector,
        [](SystemConfig* sys) {
          sys->network.refresh.drop_probability = 0.3;
        },
        [](Simulator*, ReplicatedSystem*, auto*) {});
    faults.push_back({spec.name, obs::HealthDetectorName(spec.detector),
                      spec.injected_at, r.first_fired_at,
                      r.firings_of_detector > 0,
                      SamplesBetween(spec.injected_at, r.first_fired_at,
                                     r.sample_period),
                      spec.bound_samples, r.fired, r.audit_ok});
  }

  // -- stall: replica 1 crashes, recovers at t=6s, and is partitioned
  // right after the recovery catch-up — so its lag never converges below
  // the done-threshold and the catch-up stall detector must notice.
  {
    const FaultSpec spec{"stall", obs::HealthDetector::kCatchupStall,
                         Seconds(6), 24};
    const ScenarioResult r = RunFaultScenario(
        options, 16, 16, 0.5, kDuration, spec.detector,
        [](SystemConfig*) {},
        [&](Simulator* sim, ReplicatedSystem* system, auto*) {
          sim->Schedule(Seconds(3), [system]() { system->CrashReplica(1); });
          sim->Schedule(spec.injected_at,
                        [system]() { system->RecoverReplica(1); });
          sim->Schedule(spec.injected_at + Millis(50),
                        [system]() { system->PartitionReplica(1); });
        });
    faults.push_back({spec.name, obs::HealthDetectorName(spec.detector),
                      spec.injected_at, r.first_fired_at,
                      r.firings_of_detector > 0,
                      SamplesBetween(spec.injected_at, r.first_fired_at,
                                     r.sample_period),
                      spec.bound_samples, r.fired, r.audit_ok});
  }

  // -- credit squeeze: a tiny refresh-credit window under update-heavy
  // load with expensive refresh application pins every replica's credits
  // at zero while the certifier holds deferred fan-out.
  {
    const FaultSpec spec{"credit", obs::HealthDetector::kCreditStarvation,
                         0, 24};
    const ScenarioResult r = RunFaultScenario(
        options, 32, 32, 1.0, kDuration, spec.detector,
        [](SystemConfig* sys) {
          sys->certifier.refresh_credit_window = 1;
          sys->proxy.refresh_base = Millis(6);
          sys->proxy.refresh_per_op = Millis(6);
        },
        [](Simulator*, ReplicatedSystem*, auto*) {});
    faults.push_back({spec.name, obs::HealthDetectorName(spec.detector),
                      spec.injected_at, r.first_fired_at,
                      r.firings_of_detector > 0,
                      SamplesBetween(spec.injected_at, r.first_fired_at,
                                     r.sample_period),
                      spec.bound_samples, r.fired, r.audit_ok});
  }

  // -- certifier saturation: certification is made the bottleneck (slow
  // certify CPU, unbounded intake, update-only load) so the intake queue
  // climbs past the critical depth.
  {
    const FaultSpec spec{"certsat",
                         obs::HealthDetector::kCertifierSaturation, 0, 24};
    const ScenarioResult r = RunFaultScenario(
        options, 96, 96, 1.0, kDuration, spec.detector,
        [](SystemConfig* sys) {
          sys->certifier.certify_cpu_time = Millis(4);
        },
        [](Simulator*, ReplicatedSystem*, auto*) {});
    faults.push_back({spec.name, obs::HealthDetectorName(spec.detector),
                      spec.injected_at, r.first_fired_at,
                      r.firings_of_detector > 0,
                      SamplesBetween(spec.injected_at, r.first_fired_at,
                                     r.sample_period),
                      spec.bound_samples, r.fired, r.audit_ok});
  }

  // ---- Clean runs: one default-config run in the shape of each figure
  // driver; every one must stay detector-quiet.
  std::vector<CleanOutcome> cleans;
  const auto run_clean = [&](const std::string& name,
                             const Workload& workload,
                             ExperimentConfig config) {
    config.health = true;
    config.audit = true;
    config.warmup = options.warmup;
    config.duration = options.duration;
    config.seed = options.seed;
    if (!options.timeline_json.empty()) {
      config.timeline_json_path =
          TaggedPath(options.timeline_json, "clean_" + name);
    }
    const ExperimentResult result = MustRun(workload, config);
    CleanOutcome clean;
    clean.run = name;
    clean.firings = result.health.firings;
    clean.p99_ms = result.p99_response_ms;
    clean.fired = result.health.detectors;
    clean.audit_ok = result.audit.ok;
    cleans.push_back(clean);
  };

  {
    MicroConfig micro;
    micro.update_fraction = 0.25;
    ExperimentConfig config;
    config.system.replica_count = 8;
    config.client_count = 8;
    run_clean("fig3", MicroWorkload(micro), config);
  }
  {
    ExperimentConfig config;
    config.system.proxy = TpcwProxyConfig();
    config.system.replica_count = 4;
    config.client_count =
        4 * TpcwClientsPerReplica(TpcwMix::kShopping);
    config.mean_think_time = Millis(200);
    run_clean("fig5", TpcwWorkload(TpcwScale{}, TpcwMix::kShopping),
              config);
  }
  {
    ExperimentConfig config;
    config.system.proxy = TpcwProxyConfig();
    config.system.level = ConsistencyLevel::kSession;
    config.system.replica_count = 4;
    config.client_count =
        4 * TpcwClientsPerReplica(TpcwMix::kBrowsing);
    config.mean_think_time = Millis(200);
    run_clean("fig6", TpcwWorkload(TpcwScale{}, TpcwMix::kBrowsing),
              config);
  }
  {
    ExperimentConfig config;
    config.system.proxy = TpcwProxyConfig();
    config.system.level = ConsistencyLevel::kEager;
    config.system.replica_count = 4;
    config.client_count = TpcwClientsPerReplica(TpcwMix::kOrdering);
    config.mean_think_time = Millis(200);
    run_clean("fig7", TpcwWorkload(TpcwScale{}, TpcwMix::kOrdering),
              config);
  }
  {
    MicroConfig micro;
    micro.update_fraction = 0.2;
    ExperimentConfig config;
    config.system.replica_count = 4;
    config.system.admission.max_outstanding_per_replica = 16;
    config.system.admission.admission_queue_limit = 64;
    config.system.certifier.max_intake = 128;
    config.system.certifier.refresh_credit_window = 64;
    config.client.backoff_base = Millis(1);
    config.client.backoff_cap = Millis(32);
    config.client.request_timeout = Seconds(1);
    config.client_count = 32;
    run_clean("saturation", MicroWorkload(micro), config);
  }

  // ---- Report + verdict.
  std::printf("\n%-10s %-22s %11s %11s %9s %7s  %s\n", "fault",
              "detector", "injected(s)", "detected(s)", "samples",
              "bound", "fired");
  bool ok = true;
  for (const FaultOutcome& f : faults) {
    std::printf("%-10s %-22s %11.2f %11.2f %9lld %7lld  %s\n",
                f.fault.c_str(), f.detector.c_str(),
                ToSeconds(f.injected_at),
                f.detected ? ToSeconds(f.first_fired_at) : -1.0,
                static_cast<long long>(f.detection_samples),
                static_cast<long long>(f.bound_samples), f.fired.c_str());
    if (!f.detected) {
      std::printf("FAIL: fault '%s' never tripped %s\n", f.fault.c_str(),
                  f.detector.c_str());
      ok = false;
    } else if (f.detection_samples > f.bound_samples) {
      std::printf("FAIL: fault '%s' took %lld samples (> bound %lld)\n",
                  f.fault.c_str(),
                  static_cast<long long>(f.detection_samples),
                  static_cast<long long>(f.bound_samples));
      ok = false;
    }
    if (!f.audit_ok) {
      std::printf("FAIL: fault '%s' violated consistency\n",
                  f.fault.c_str());
      ok = false;
    }
  }
  std::printf("\n%-12s %9s %9s  %s\n", "clean run", "firings", "p99(ms)",
              "fired");
  for (const CleanOutcome& c : cleans) {
    std::printf("%-12s %9lld %9.1f  %s\n", c.run.c_str(),
                static_cast<long long>(c.firings), c.p99_ms,
                c.firings == 0 ? "(quiet)" : c.fired.c_str());
    if (c.firings != 0) {
      std::printf("FAIL: clean run '%s' fired %s\n", c.run.c_str(),
                  c.fired.c_str());
      ok = false;
    }
    if (!c.audit_ok) {
      std::printf("FAIL: clean run '%s' violated consistency\n",
                  c.run.c_str());
      ok = false;
    }
  }

  if (!options.bench_json.empty()) {
    const std::string path = options.bench_json == "auto"
                                 ? "BENCH_health.json"
                                 : options.bench_json;
    std::ofstream out(path);
    out << "{\"driver\":\"fault_timeline_health\",\"faults\":[";
    for (size_t i = 0; i < faults.size(); ++i) {
      const FaultOutcome& f = faults[i];
      if (i > 0) out << ",";
      out << "{\"fault\":\"" << f.fault << "\",\"detector\":\""
          << f.detector << "\",\"injected_at_ms\":"
          << ToMillis(f.injected_at)
          << ",\"detected\":" << (f.detected ? "true" : "false")
          << ",\"detection_samples\":" << f.detection_samples
          << ",\"bound_samples\":" << f.bound_samples << ",\"fired\":\""
          << f.fired << "\"}";
    }
    out << "],\"clean\":[";
    for (size_t i = 0; i < cleans.size(); ++i) {
      const CleanOutcome& c = cleans[i];
      if (i > 0) out << ",";
      out << "{\"run\":\"" << c.run << "\",\"firings\":" << c.firings
          << ",\"fired\":\"" << c.fired << "\"}";
    }
    out << "]}\n";
    if (!out) {
      std::fprintf(stderr, "failed to write %s\n", path.c_str());
      return 1;
    }
    std::printf("\nwrote %s (%zu faults, %zu clean runs)\n", path.c_str(),
                faults.size(), cleans.size());
  }

  std::printf("\nhealth sweep: %s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}

int Main(int argc, char** argv) {
  const BenchOptions options = ParseOptions(argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--net-sweep") == 0) return NetSweep(options);
    if (std::strcmp(argv[i], "--health-sweep") == 0) {
      return HealthSweep(options);
    }
  }
  PrintHeader("Availability timeline: replica crash at t=4s, recovery at "
              "t=8s (LSC, 4 replicas, 16 clients)",
              "the crash-recovery design of §IV (extension)");

  MicroConfig micro;
  micro.update_fraction = 0.5;
  MicroWorkload workload(micro);

  Simulator sim;
  runtime::SimRuntime rt{&sim};
  SystemConfig sys_config;
  sys_config.level = ConsistencyLevel::kLazyCoarse;
  sys_config.replica_count = 4;
  if (!options.trace_json.empty()) sys_config.obs.tracing = true;
  if (!options.metrics_json.empty()) sys_config.obs.sample_period = Millis(500);
  if (options.audit) sys_config.obs.audit = true;
  if (options.health) sys_config.obs.health = true;
  ApplyNetworkOptions(options, &sys_config);
  auto system_or = ReplicatedSystem::Create(
      &rt, sys_config,
      [&workload](Database* db) { return workload.BuildSchema(db); },
      [&workload](const Database& db, sql::TransactionRegistry* reg) {
        return workload.DefineTransactions(db, reg);
      });
  if (!system_or.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 system_or.status().ToString().c_str());
    return 1;
  }
  auto system = std::move(system_or).value();

  MetricsCollector metrics(0);
  metrics.EnableTimeline(Millis(500));
  std::vector<std::unique_ptr<ClientDriver>> clients;
  Rng rng(17);
  for (int c = 0; c < 16; ++c) {
    clients.push_back(std::make_unique<ClientDriver>(
        system.get(), &metrics,
        workload.CreateGenerator(system->registry(), c, rng.Fork()), c,
        ClientConfig{}, rng.Fork()));
  }
  system->SetClientCallback([&clients](const TxnResponse& r) {
    clients[static_cast<size_t>(r.client_id)]->OnResponse(r);
  });
  for (auto& client : clients) client->Start();

  const SimTime crash_at = Seconds(4);
  const SimTime recover_at = Seconds(8);
  sim.Schedule(crash_at, [&system]() { system->CrashReplica(1); });
  sim.Schedule(recover_at, [&system]() { system->RecoverReplica(1); });
  sim.Schedule(Seconds(12), [&clients, &system]() {
    for (auto& client : clients) client->Stop();
    system->obs()->StopSampling();
  });
  sim.RunUntil(Seconds(12));
  sim.RunAll();

  if (!options.metrics_json.empty()) {
    const Status st = system->obs()->WriteMetricsJson(options.metrics_json);
    if (!st.ok()) {
      std::fprintf(stderr, "metrics write failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
  }
  if (!options.trace_json.empty()) {
    const Status st = system->obs()->WriteTraceJson(options.trace_json);
    if (!st.ok()) {
      std::fprintf(stderr, "trace write failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  PrintTimeline(metrics, crash_at, recover_at);
  std::printf(
      "\nThe failure spike at the crash is the failed-over in-flight\n"
      "transactions (clients retried them on the survivors); the cluster\n"
      "keeps serving throughout, and the recovered replica rejoins after\n"
      "catching up from the certifier's log.\n");

  if (!options.audit_json.empty()) {
    const Status st = system->obs()->WriteAuditJson(options.audit_json);
    if (!st.ok()) {
      std::fprintf(stderr, "audit write failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  if (!options.health_json.empty()) {
    const Status st = system->obs()->WriteHealthJson(options.health_json);
    if (!st.ok()) {
      std::fprintf(stderr, "health write failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
  }
  if (!options.timeline_json.empty()) {
    const Status st =
        system->obs()->WriteTimelineJson(options.timeline_json);
    if (!st.ok()) {
      std::fprintf(stderr, "timeline write failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
  }
  if (const obs::HealthMonitor* monitor = system->obs()->health_monitor()) {
    std::printf("\n---- health ----\n%s\n", monitor->Summary().c_str());
  }
  if (const obs::Auditor* auditor = system->obs()->auditor()) {
    std::printf("\n---- audit report ----\n%s\n",
                auditor->Summary().c_str());
    return auditor->ok() ? 0 : 1;
  }
  return 0;
}

}  // namespace
}  // namespace screp::bench

int main(int argc, char** argv) { return screp::bench::Main(argc, argv); }
