// Availability timeline (extension, not a paper figure): throughput and
// response time per half-second around a replica crash and recovery,
// and around a certifier failover — making the crash-recovery design of
// §IV visible as a time series.

#include "bench/bench_util.h"
#include "workload/micro.h"

namespace screp::bench {
namespace {

void PrintTimeline(const MetricsCollector& metrics, SimTime crash_at,
                   SimTime recover_at) {
  const double width_s = ToSeconds(metrics.timeline_bucket_width());
  std::printf("%8s %10s %10s %9s  %s\n", "t(s)", "TPS", "resp(ms)",
              "failures", "events");
  const auto& timeline = metrics.timeline();
  for (size_t i = 0; i < timeline.size(); ++i) {
    const auto& bucket = timeline[i];
    const double t0 = static_cast<double>(i) * width_s;
    std::string note;
    if (crash_at >= Seconds(t0) && crash_at < Seconds(t0 + width_s)) {
      note += "  <- replica crash";
    }
    if (recover_at >= Seconds(t0) && recover_at < Seconds(t0 + width_s)) {
      note += "  <- recovery";
    }
    std::printf("%8.1f %10.1f %10.2f %9lld%s\n", t0,
                static_cast<double>(bucket.committed) / width_s,
                bucket.MeanResponseMs(),
                static_cast<long long>(bucket.failures), note.c_str());
  }
}

int Main(int argc, char** argv) {
  const BenchOptions options = ParseOptions(argc, argv);
  PrintHeader("Availability timeline: replica crash at t=4s, recovery at "
              "t=8s (LSC, 4 replicas, 16 clients)",
              "the crash-recovery design of §IV (extension)");

  MicroConfig micro;
  micro.update_fraction = 0.5;
  MicroWorkload workload(micro);

  Simulator sim;
  SystemConfig sys_config;
  sys_config.level = ConsistencyLevel::kLazyCoarse;
  sys_config.replica_count = 4;
  if (!options.trace_json.empty()) sys_config.obs.tracing = true;
  if (!options.metrics_json.empty()) sys_config.obs.sample_period = Millis(500);
  if (options.audit) sys_config.obs.audit = true;
  auto system_or = ReplicatedSystem::Create(
      &sim, sys_config,
      [&workload](Database* db) { return workload.BuildSchema(db); },
      [&workload](const Database& db, sql::TransactionRegistry* reg) {
        return workload.DefineTransactions(db, reg);
      });
  if (!system_or.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 system_or.status().ToString().c_str());
    return 1;
  }
  auto system = std::move(system_or).value();

  MetricsCollector metrics(0);
  metrics.EnableTimeline(Millis(500));
  std::vector<std::unique_ptr<ClientDriver>> clients;
  Rng rng(17);
  for (int c = 0; c < 16; ++c) {
    clients.push_back(std::make_unique<ClientDriver>(
        system.get(), &metrics,
        workload.CreateGenerator(system->registry(), c, rng.Fork()), c,
        ClientConfig{}, rng.Fork()));
  }
  system->SetClientCallback([&clients](const TxnResponse& r) {
    clients[static_cast<size_t>(r.client_id)]->OnResponse(r);
  });
  for (auto& client : clients) client->Start();

  const SimTime crash_at = Seconds(4);
  const SimTime recover_at = Seconds(8);
  sim.Schedule(crash_at, [&system]() { system->CrashReplica(1); });
  sim.Schedule(recover_at, [&system]() { system->RecoverReplica(1); });
  sim.Schedule(Seconds(12), [&clients, &system]() {
    for (auto& client : clients) client->Stop();
    system->obs()->StopSampling();
  });
  sim.RunUntil(Seconds(12));
  sim.RunAll();

  if (!options.metrics_json.empty()) {
    const Status st = system->obs()->WriteMetricsJson(options.metrics_json);
    if (!st.ok()) {
      std::fprintf(stderr, "metrics write failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
  }
  if (!options.trace_json.empty()) {
    const Status st = system->obs()->WriteTraceJson(options.trace_json);
    if (!st.ok()) {
      std::fprintf(stderr, "trace write failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  PrintTimeline(metrics, crash_at, recover_at);
  std::printf(
      "\nThe failure spike at the crash is the failed-over in-flight\n"
      "transactions (clients retried them on the survivors); the cluster\n"
      "keeps serving throughout, and the recovered replica rejoins after\n"
      "catching up from the certifier's log.\n");

  if (!options.audit_json.empty()) {
    const Status st = system->obs()->WriteAuditJson(options.audit_json);
    if (!st.ok()) {
      std::fprintf(stderr, "audit write failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  if (const obs::Auditor* auditor = system->obs()->auditor()) {
    std::printf("\n---- audit report ----\n%s\n",
                auditor->Summary().c_str());
    return auditor->ok() ? 0 : 1;
  }
  return 0;
}

}  // namespace
}  // namespace screp::bench

int main(int argc, char** argv) { return screp::bench::Main(argc, argv); }
