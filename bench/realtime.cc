// Wall-clock closed-loop load generator: the whole middleware runs over
// ThreadRuntime (real threads, real queues, the steady clock) while N
// client threads drive it back-to-back, so the numbers reported here are
// genuine operations per second and genuine tail latency — not virtual
// time played back.
//
// Each client thread runs on the runtime's worker pool (Runtime::Spawn)
// and submits through Runtime::Post — the same MPSC ingress the TCP
// front-end (tools/screp_server) uses — then blocks on a per-client
// completion slot until the loop thread delivers its response.  All
// middleware state stays on the loop thread; the only shared structures
// are the slots, each guarded by its own mutex.
//
// With --audit (default on) the run keeps the online consistency auditor
// attached and, after the run, replays the retained event log through a
// fresh post-hoc auditor — both must report zero violations for the
// process to exit 0, making this binary the wall-clock analogue of the
// audited figure drivers.
//
// Usage: realtime [--clients N] [--duration SECONDS] [--replicas N]
//                 [--level ESC|LSC|LFC|SC] [--update-fraction F]
//                 [--no-audit] [--bench-json PATH] [--seed S]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "obs/auditor.h"
#include "runtime/thread_runtime.h"
#include "workload/micro.h"
#include "workload/realtime.h"

namespace screp::bench {
namespace {

struct Options {
  int clients = 8;
  double duration_s = 5.0;
  int replicas = 2;
  ConsistencyLevel level = ConsistencyLevel::kLazyCoarse;
  double update_fraction = 0.25;
  bool audit = true;
  std::string bench_json;
  uint64_t seed = 42;
};

Options ParseOptions(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      SCREP_CHECK_MSG(i + 1 < argc, arg << " needs a value");
      return argv[++i];
    };
    if (arg == "--clients") {
      opt.clients = std::stoi(next());
    } else if (arg == "--duration") {
      opt.duration_s = std::stod(next());
    } else if (arg == "--replicas") {
      opt.replicas = std::stoi(next());
    } else if (arg == "--level") {
      auto level = ParseConsistencyLevel(next());
      SCREP_CHECK_MSG(level.ok(), level.status().ToString());
      opt.level = *level;
    } else if (arg == "--update-fraction") {
      opt.update_fraction = std::stod(next());
    } else if (arg == "--no-audit") {
      opt.audit = false;
    } else if (arg == "--bench-json") {
      opt.bench_json = next();
    } else if (arg == "--seed") {
      opt.seed = std::stoull(next());
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  SCREP_CHECK(opt.clients > 0 && opt.duration_s > 0 && opt.replicas > 0);
  return opt;
}

/// One client's rendezvous with the loop thread: the response callback
/// fills the slot, the client thread sleeps on the condvar.
struct CompletionSlot {
  std::mutex mu;
  std::condition_variable cv;
  bool has_response = false;
  TxnResponse response;
};

struct ClientStats {
  int64_t committed = 0;
  int64_t aborted = 0;
  int64_t retries = 0;
  std::vector<double> latencies_us;
};

double Percentile(std::vector<double>* sorted, double p) {
  if (sorted->empty()) return 0.0;
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted->size() - 1) + 0.5);
  return (*sorted)[std::min(idx, sorted->size() - 1)];
}

int Main(int argc, char** argv) {
  const Options opt = ParseOptions(argc, argv);

  runtime::ThreadRuntimeConfig rt_config;
  rt_config.worker_threads = opt.clients;
  rt_config.entropy_seed = opt.seed;
  runtime::ThreadRuntime rt(rt_config);

  SystemConfig sys = RealtimeSystemConfig(opt.replicas, opt.level);
  sys.seed = opt.seed;
  if (opt.audit) {
    sys.obs.audit = true;
    sys.obs.event_log = true;
    // Retain the full event stream: the post-hoc replay below asserts
    // nothing was evicted.
    sys.obs.event_log_capacity = 1u << 21;
  }

  MicroConfig micro_config;
  micro_config.update_fraction = opt.update_fraction;
  MicroWorkload workload(micro_config);

  auto system_or = ReplicatedSystem::Create(
      &rt, sys,
      [&](Database* db) { return workload.BuildSchema(db); },
      [&](const Database& db, sql::TransactionRegistry* reg) {
        return workload.DefineTransactions(db, reg);
      });
  SCREP_CHECK_MSG(system_or.ok(), system_or.status().ToString());
  std::unique_ptr<ReplicatedSystem> system = std::move(system_or).value();

  // Per-client completion slots, indexed by client_id.
  std::vector<std::unique_ptr<CompletionSlot>> slots;
  for (int c = 0; c < opt.clients; ++c) {
    slots.push_back(std::make_unique<CompletionSlot>());
  }
  system->SetClientCallback([&slots](const TxnResponse& r) {
    CompletionSlot* slot = slots[static_cast<size_t>(r.client_id)].get();
    {
      std::lock_guard<std::mutex> lock(slot->mu);
      slot->response = r;
      slot->has_response = true;
    }
    slot->cv.notify_one();
  });

  std::vector<ClientStats> stats(static_cast<size_t>(opt.clients));
  std::atomic<int> clients_done{0};
  std::mutex done_mu;
  std::condition_variable done_cv;

  const auto wall_start = std::chrono::steady_clock::now();
  const auto deadline =
      wall_start + std::chrono::duration_cast<
                       std::chrono::steady_clock::duration>(
                       std::chrono::duration<double>(opt.duration_s));

  Rng seed_rng(opt.seed);
  for (int c = 0; c < opt.clients; ++c) {
    auto generator =
        workload.CreateGenerator(system->registry(), c, seed_rng.Fork());
    rt.Spawn([&, c, gen = std::shared_ptr<TxnGenerator>(
                     std::move(generator))]() {
      CompletionSlot* slot = slots[static_cast<size_t>(c)].get();
      ClientStats* my = &stats[static_cast<size_t>(c)];
      while (std::chrono::steady_clock::now() < deadline) {
        const TxnSpec spec = gen->Next();
        bool committed = false;
        while (!committed) {
          const auto sent = std::chrono::steady_clock::now();
          // Transaction ids are allocated on the loop thread (the
          // allocator is plain middleware state, like everything else
          // behind Post).
          rt.Post([&rt, &system, &spec, c]() {
            TxnRequest req;
            req.txn_id = system->NextTxnId();
            req.type = spec.type;
            req.session = static_cast<SessionId>(c);
            req.client_id = c;
            req.params = spec.params;
            req.submit_time = rt.Now();
            system->Submit(std::move(req));
          });
          TxnResponse response;
          {
            std::unique_lock<std::mutex> lock(slot->mu);
            slot->cv.wait(lock, [slot]() { return slot->has_response; });
            response = slot->response;
            slot->has_response = false;
          }
          const double latency_us =
              std::chrono::duration_cast<std::chrono::duration<double,
                                                               std::micro>>(
                  std::chrono::steady_clock::now() - sent)
                  .count();
          if (response.outcome == TxnOutcome::kCommitted) {
            committed = true;
            gen->OnCommitted(spec);
            ++my->committed;
            my->latencies_us.push_back(latency_us);
          } else {
            ++my->aborted;
            ++my->retries;
            if (std::chrono::steady_clock::now() >= deadline) break;
          }
        }
      }
      if (clients_done.fetch_add(1) + 1 == opt.clients) {
        std::lock_guard<std::mutex> lock(done_mu);
        done_cv.notify_all();
      }
    });
  }

  {
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&]() { return clients_done.load() == opt.clients; });
  }
  const double elapsed_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - wall_start)
          .count();

  // End the sessions and read the audit verdict on the loop thread, then
  // stop the runtime (drains in-flight deliveries before joining).
  struct AuditResult {
    bool online_ok = true;
    int64_t violations = 0;
    int64_t events = 0;
    int64_t events_dropped = 0;
    bool replay_ok = true;
    bool done = false;
  } audit;
  std::mutex audit_mu;
  std::condition_variable audit_cv;
  rt.Post([&]() {
    for (int c = 0; c < opt.clients; ++c) {
      system->EndSession(static_cast<SessionId>(c));
    }
    std::lock_guard<std::mutex> lock(audit_mu);
    if (opt.audit) {
      const obs::Auditor* online = system->obs()->auditor();
      SCREP_CHECK(online != nullptr);
      audit.online_ok = online->ok();
      audit.violations = static_cast<int64_t>(online->violation_count());
      const obs::EventLog* log = system->obs()->event_log();
      audit.events = static_cast<int64_t>(log->Events().size());
      audit.events_dropped = log->dropped();
      // Post-hoc pass: replay the retained event stream through a fresh
      // auditor — same verdict expected from the log alone.
      obs::AuditorConfig post_config;
      post_config.check_strong = ProvidesStrongConsistency(opt.level);
      post_config.check_session =
          opt.level != ConsistencyLevel::kBoundedStaleness;
      obs::MetricsRegistry scratch;
      obs::Auditor posthoc(post_config, &scratch);
      for (const obs::Event& e : log->Events()) posthoc.OnEvent(e);
      audit.replay_ok = posthoc.ok();
    }
    audit.done = true;
    audit_cv.notify_all();
  });
  {
    std::unique_lock<std::mutex> lock(audit_mu);
    audit_cv.wait(lock, [&]() { return audit.done; });
  }
  rt.Stop();

  int64_t committed = 0;
  int64_t aborted = 0;
  int64_t retries = 0;
  std::vector<double> latencies;
  for (const ClientStats& s : stats) {
    committed += s.committed;
    aborted += s.aborted;
    retries += s.retries;
    latencies.insert(latencies.end(), s.latencies_us.begin(),
                     s.latencies_us.end());
  }
  std::sort(latencies.begin(), latencies.end());
  const double ops_per_sec = static_cast<double>(committed) / elapsed_s;
  const double p50 = Percentile(&latencies, 0.50) / 1e3;
  const double p95 = Percentile(&latencies, 0.95) / 1e3;
  const double p99 = Percentile(&latencies, 0.99) / 1e3;
  const double max_ms = latencies.empty() ? 0.0 : latencies.back() / 1e3;

  std::printf("realtime: %d clients, %d replicas, %s, %.0f%% updates, "
              "%.1fs wall\n",
              opt.clients, opt.replicas, ConsistencyLevelName(opt.level),
              opt.update_fraction * 100.0, elapsed_s);
  std::printf("  committed %lld  aborted %lld  retries %lld\n",
              static_cast<long long>(committed),
              static_cast<long long>(aborted),
              static_cast<long long>(retries));
  std::printf("  throughput %.0f ops/sec\n", ops_per_sec);
  std::printf("  latency ms: p50 %.3f  p95 %.3f  p99 %.3f  max %.3f\n", p50,
              p95, p99, max_ms);
  std::printf("  runtime: %llu callbacks executed, %llu discarded at stop\n",
              static_cast<unsigned long long>(rt.executed()),
              static_cast<unsigned long long>(rt.discarded_on_stop()));
  if (opt.audit) {
    std::printf("  audit: online %s (%lld violations), replay %s "
                "(%lld events, %lld dropped)\n",
                audit.online_ok ? "ok" : "VIOLATIONS",
                static_cast<long long>(audit.violations),
                audit.replay_ok ? "ok" : "VIOLATIONS",
                static_cast<long long>(audit.events),
                static_cast<long long>(audit.events_dropped));
  }

  if (!opt.bench_json.empty()) {
    std::ofstream out(opt.bench_json);
    out << "{\n"
        << "  \"bench\": \"realtime\",\n"
        << "  \"clients\": " << opt.clients << ",\n"
        << "  \"replicas\": " << opt.replicas << ",\n"
        << "  \"level\": \"" << ConsistencyLevelName(opt.level) << "\",\n"
        << "  \"update_fraction\": " << opt.update_fraction << ",\n"
        << "  \"duration_s\": " << elapsed_s << ",\n"
        << "  \"committed\": " << committed << ",\n"
        << "  \"aborted\": " << aborted << ",\n"
        << "  \"retries\": " << retries << ",\n"
        << "  \"ops_per_sec\": " << ops_per_sec << ",\n"
        << "  \"latency_ms\": {\"p50\": " << p50 << ", \"p95\": " << p95
        << ", \"p99\": " << p99 << ", \"max\": " << max_ms << "},\n"
        << "  \"audit\": {\"enabled\": " << (opt.audit ? "true" : "false")
        << ", \"online_ok\": " << (audit.online_ok ? "true" : "false")
        << ", \"replay_ok\": " << (audit.replay_ok ? "true" : "false")
        << ", \"violations\": " << audit.violations
        << ", \"events\": " << audit.events
        << ", \"events_dropped\": " << audit.events_dropped << "}\n"
        << "}\n";
    std::printf("wrote %s\n", opt.bench_json.c_str());
  }

  if (committed == 0) {
    std::fprintf(stderr, "FAIL: no transactions committed\n");
    return 1;
  }
  if (opt.audit &&
      (!audit.online_ok || !audit.replay_ok || audit.events_dropped != 0)) {
    std::fprintf(stderr, "FAIL: audit violations or dropped events\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace screp::bench

int main(int argc, char** argv) { return screp::bench::Main(argc, argv); }
