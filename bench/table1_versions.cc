// Table I: database and table version bookkeeping under the fine-grained
// scheme — the exact six-transaction example of paper §IV-B, executed
// against the real TableVersionTracker, printed in the paper's layout.

#include <cstdio>

#include "core/table_version_tracker.h"
#include "core/version_tracker.h"

namespace screp::bench {
namespace {

int Main() {
  std::printf(
      "\n================================================================\n"
      "Table I: database and table versions (paper §IV-B example)\n"
      "================================================================\n");
  const TableId A = 0, B = 1, C = 2;
  TableVersionTracker tracker(3);
  VersionTracker system_version;

  struct Step {
    const char* txn;
    const char* updated;
    std::vector<TableId> tables;
  };
  const Step steps[] = {
      {"T1", "A", {A}},    {"T2", "B,C", {B, C}}, {"T3", "B", {B}},
      {"T4", "C", {C}},    {"T5", "B,C", {B, C}},
  };

  std::printf("%-5s %-14s %-9s %-6s %-6s %-6s\n", "Txn", "Updated tables",
              "V_system", "V_A", "V_B", "V_C");
  std::printf("%-5s %-14s %9lld %6lld %6lld %6lld\n", "-", "-",
              static_cast<long long>(system_version.SystemVersion()),
              static_cast<long long>(tracker.TableVersion(A)),
              static_cast<long long>(tracker.TableVersion(B)),
              static_cast<long long>(tracker.TableVersion(C)));
  DbVersion v = 0;
  for (const Step& step : steps) {
    ++v;
    tracker.OnCommit(v, step.tables);
    system_version.OnCommitAcknowledged(v);
    std::printf("%-5s %-14s %9lld %6lld %6lld %6lld\n", step.txn,
                step.updated,
                static_cast<long long>(system_version.SystemVersion()),
                static_cast<long long>(tracker.TableVersion(A)),
                static_cast<long long>(tracker.TableVersion(B)),
                static_cast<long long>(tracker.TableVersion(C)));
  }

  // T6 accesses table A only.
  std::printf(
      "\nT6 accesses table A only:\n"
      "  coarse-grained start requirement (V_system) = %lld\n"
      "  fine-grained start requirement (max V_t, t in {A}) = %lld\n"
      "  => any replica at V_local >= %lld can start T6 immediately.\n",
      static_cast<long long>(system_version.RequiredVersion()),
      static_cast<long long>(tracker.RequiredVersion({A})),
      static_cast<long long>(tracker.RequiredVersion({A})));
  return 0;
}

}  // namespace
}  // namespace screp::bench

int main() { return screp::bench::Main(); }
