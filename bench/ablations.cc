// Ablation studies for the design choices DESIGN.md calls out:
//  1. early certification on/off (aborted work vs. wasted certification),
//  2. least-active routing vs. degenerate routing (1 replica handling all),
//  3. table-set granularity sensitivity: how the fine-grained scheme's
//     advantage shrinks as transactions touch more tables,
//  4. certifier group commit: log force time sensitivity.

#include "bench/bench_util.h"
#include "workload/micro.h"
#include "workload/tpcw.h"

namespace screp::bench {
namespace {

ExperimentConfig BaseConfig(const BenchOptions& options,
                            ConsistencyLevel level, int replicas,
                            int clients) {
  ExperimentConfig config;
  config.system.level = level;
  config.system.replica_count = replicas;
  config.client_count = clients;
  config.warmup = options.warmup;
  config.duration = options.duration;
  config.seed = options.seed;
  return config;
}

void EarlyCertificationAblation(const BenchOptions& options,
                                BenchReport* report) {
  std::printf("\n-- Ablation: early certification (micro, 50%% updates, "
              "8 replicas) --\n");
  std::printf("%-22s %8s %10s %12s %12s\n", "variant", "TPS", "resp(ms)",
              "early-aborts", "cert-aborts");
  for (bool early : {true, false}) {
    MicroConfig micro;
    micro.update_fraction = 0.5;
    micro.rows_per_table = 500;  // small table => frequent conflicts
    MicroWorkload workload(micro);
    ExperimentConfig config =
        BaseConfig(options, ConsistencyLevel::kLazyCoarse, 8, 16);
    config.system.proxy.early_certification = early;
    const std::string tag = early ? "earlyon" : "earlyoff";
    ApplyObservability(options, tag, &config);
    const ExperimentResult& r = report->Add(tag, MustRun(workload, config));
    std::printf("%-22s %8.1f %10.2f %12lld %12lld\n",
                early ? "early-cert ON" : "early-cert OFF",
                r.throughput_tps, r.mean_response_ms,
                static_cast<long long>(r.early_aborts),
                static_cast<long long>(r.cert_aborts));
    std::fflush(stdout);
  }
}

void TableSetGranularityAblation(const BenchOptions& options,
                                 BenchReport* report) {
  std::printf("\n-- Ablation: LFC advantage vs. table count (micro, 25%% "
              "updates, 8 replicas) --\n");
  std::printf("%-8s %14s %14s %16s\n", "tables", "LSC delay(ms)",
              "LFC delay(ms)", "LFC/LSC delay");
  for (int tables : {1, 2, 4, 8, 16}) {
    double delays[2];
    int i = 0;
    for (ConsistencyLevel level :
         {ConsistencyLevel::kLazyCoarse, ConsistencyLevel::kLazyFine}) {
      MicroConfig micro;
      micro.table_count = tables;
      micro.update_fraction = 0.25;
      MicroWorkload workload(micro);
      ExperimentConfig config = BaseConfig(options, level, 8, 8);
      const std::string tag = std::string(ConsistencyLevelName(level)) +
                              "t" + std::to_string(tables);
      ApplyObservability(options, tag, &config);
      const ExperimentResult& r = report->Add(tag, MustRun(workload, config));
      delays[i++] = r.sync_delay_ms;
    }
    std::printf("%-8d %14.2f %14.2f %15.2f%%\n", tables, delays[0],
                delays[1],
                delays[0] > 0 ? 100.0 * delays[1] / delays[0] : 0.0);
    std::fflush(stdout);
  }
}

void GroupCommitAblation(const BenchOptions& options,
                         BenchReport* report) {
  std::printf("\n-- Ablation: certifier log-force time (micro, 100%% "
              "updates, 4 replicas) --\n");
  std::printf("%-18s %8s %12s\n", "force time (ms)", "TPS", "certify(ms)");
  for (double force_ms : {0.2, 0.8, 2.0, 5.0}) {
    MicroConfig micro;
    micro.update_fraction = 1.0;
    MicroWorkload workload(micro);
    ExperimentConfig config =
        BaseConfig(options, ConsistencyLevel::kLazyCoarse, 4, 8);
    config.system.certifier.log_force_time = Millis(force_ms);
    const std::string tag =
        "force" + std::to_string(static_cast<int>(force_ms * 10));
    ApplyObservability(options, tag, &config);
    const ExperimentResult& r = report->Add(tag, MustRun(workload, config));
    std::printf("%-18.1f %8.1f %12.2f\n", force_ms, r.throughput_tps,
                r.certify_ms);
    std::fflush(stdout);
  }
}

void RoutingPolicyAblation(const BenchOptions& options,
                           BenchReport* report) {
  std::printf("\n-- Ablation: routing policy (tpcw shopping, 4 replicas, "
              "32 clients) --\n");
  std::printf("%-14s %8s %10s\n", "policy", "TPS", "resp(ms)");
  for (RoutingPolicy routing :
       {RoutingPolicy::kLeastActive, RoutingPolicy::kRoundRobin}) {
    TpcwWorkload workload(TpcwScale{}, TpcwMix::kShopping);
    ExperimentConfig config =
        BaseConfig(options, ConsistencyLevel::kLazyCoarse, 4, 32);
    config.system.proxy = TpcwProxyConfig();
    config.system.routing = routing;
    config.mean_think_time = Millis(200);
    const std::string tag = routing == RoutingPolicy::kLeastActive
                                ? "leastactive"
                                : "roundrobin";
    ApplyObservability(options, tag, &config);
    const ExperimentResult& r = report->Add(tag, MustRun(workload, config));
    std::printf("%-14s %8.1f %10.2f\n",
                routing == RoutingPolicy::kLeastActive ? "least-active"
                                                       : "round-robin",
                r.throughput_tps, r.mean_response_ms);
    std::fflush(stdout);
  }
}

void SerializableModeAblation(const BenchOptions& options,
                              BenchReport* report) {
  std::printf("\n-- Ablation: GSI vs serializable certification (tpcw "
              "shopping, 4 replicas) --\n");
  std::printf("%-14s %8s %12s %12s\n", "mode", "TPS", "total-aborts",
              "rw-aborts");
  for (CertificationMode mode :
       {CertificationMode::kGsi, CertificationMode::kSerializable}) {
    TpcwWorkload workload(TpcwScale{}, TpcwMix::kShopping);
    ExperimentConfig config =
        BaseConfig(options, ConsistencyLevel::kLazyCoarse, 4, 32);
    config.system.proxy = TpcwProxyConfig();
    config.system.certifier.mode = mode;
    config.mean_think_time = Millis(200);
    const std::string tag =
        mode == CertificationMode::kGsi ? "gsi" : "serializable";
    ApplyObservability(options, tag, &config);
    const ExperimentResult& r = report->Add(tag, MustRun(workload, config));
    std::printf("%-14s %8.1f %12lld %12lld\n",
                mode == CertificationMode::kGsi ? "GSI" : "serializable",
                r.throughput_tps,
                static_cast<long long>(r.cert_aborts + r.early_aborts),
                static_cast<long long>(r.cert_aborts));
    std::fflush(stdout);
  }
}

void RefreshCostAblation(const BenchOptions& options,
                         BenchReport* report) {
  std::printf("\n-- Ablation: refresh apply cost vs. ESC global delay "
              "(micro, 50%% updates, 8 replicas) --\n");
  std::printf("%-18s %10s %12s\n", "refresh base(ms)", "ESC TPS",
              "global(ms)");
  for (double base_ms : {0.5, 1.0, 2.2, 4.0}) {
    MicroConfig micro;
    micro.update_fraction = 0.5;
    MicroWorkload workload(micro);
    ExperimentConfig config =
        BaseConfig(options, ConsistencyLevel::kEager, 8, 8);
    config.system.proxy.refresh_base = Millis(base_ms);
    const std::string tag =
        "refresh" + std::to_string(static_cast<int>(base_ms * 10));
    ApplyObservability(options, tag, &config);
    const ExperimentResult& r = report->Add(tag, MustRun(workload, config));
    std::printf("%-18.1f %10.1f %12.2f\n", base_ms, r.throughput_tps,
                r.global_ms);
    std::fflush(stdout);
  }
}

int Main(int argc, char** argv) {
  const BenchOptions options = ParseOptions(argc, argv);
  PrintHeader("Ablations: early certification, table-set granularity, "
              "group commit, refresh cost",
              "design choices of §IV (not a paper figure)");
  BenchReport report("ablations", options);
  EarlyCertificationAblation(options, &report);
  TableSetGranularityAblation(options, &report);
  GroupCommitAblation(options, &report);
  RefreshCostAblation(options, &report);
  RoutingPolicyAblation(options, &report);
  SerializableModeAblation(options, &report);
  return report.Finish();
}

}  // namespace
}  // namespace screp::bench

int main(int argc, char** argv) { return screp::bench::Main(argc, argv); }
