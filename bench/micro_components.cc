// Component microbenchmarks (google-benchmark): storage engine point
#include "runtime/sim_runtime.h"
// operations, SQL parse/execute, writeset certification, version
// trackers, and the discrete-event core. These are sanity/ablation
// benches, not paper figures.
//
// `--bench-json[=path]` switches to a self-measured summary mode instead:
// it times indexed vs. linear-scan certification across conflict-window
// sizes and the apply-lane pipeline across lane counts, prints the
// speedups, and writes them as JSON (default BENCH_certifier.json).
//
// `--net-json[=path]` measures the certifier->replica refresh fan-out
// over real channels, batched vs unbatched, and writes the message/byte
// counts as JSON (default BENCH_network.json).
//
// `--hotpath-json[=path]` A/B-measures the three hot paths this repo
// optimizes in place — cached execution plans vs per-call planning,
// zero-copy (frozen-reference) refresh fan-out vs deep-copy batches, and
// arena-backed group-commit WAL appends vs per-record re-encoding — and
// writes the per-path speedups plus a byte-identity verdict as JSON
// (default BENCH_hotpath.json).
//
// `--shard-sweep[=path]` measures partitioned certification: certified
// throughput (in simulated time, so the numbers are deterministic) of a
// shard-disjoint update stream at K = 1, 2, 4, 8 lanes — K = 1 is the
// plain single-stream Certifier — plus an audited end-to-end run at
// K = 4 with partial replication.  Writes BENCH_shards.json and fails
// unless K = 4 reaches the scaling floor and the audit is clean.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>

#include "common/rng.h"
#include "core/table_version_tracker.h"
#include "net/channel.h"
#include "replication/certifier.h"
#include "replication/proxy.h"
#include "replication/sharded_certifier.h"
#include "workload/experiment.h"
#include "workload/micro.h"
#include "sim/simulator.h"
#include "sql/executor.h"
#include "sql/parser.h"
#include "sql/plan.h"
#include "storage/database.h"
#include "storage/transaction.h"
#include "storage/wal.h"

namespace screp {
namespace {

std::unique_ptr<Database> MakeDb(int rows) {
  auto db = std::make_unique<Database>();
  auto id = db->CreateTable("item", Schema({{"i_id", ValueType::kInt64},
                                            {"i_val", ValueType::kInt64},
                                            {"i_pad", ValueType::kString}}));
  SCREP_CHECK(id.ok());
  const std::string pad(100, 'x');
  for (int64_t k = 0; k < rows; ++k) {
    SCREP_CHECK(db->BulkLoad(*id, {Value(k), Value(k), Value(pad)}).ok());
  }
  return db;
}

void BM_StorageGet(benchmark::State& state) {
  auto db = MakeDb(10000);
  const TableId t = *db->FindTable("item");
  auto txn = db->Begin();
  int64_t key = 0;
  for (auto _ : state) {
    auto row = txn->Get(t, key);
    benchmark::DoNotOptimize(row);
    key = (key + 7919) % 10000;
  }
}
BENCHMARK(BM_StorageGet);

void BM_StorageInsertCommit(benchmark::State& state) {
  auto db = MakeDb(0);
  const TableId t = *db->FindTable("item");
  int64_t key = 0;
  const std::string pad(100, 'x');
  for (auto _ : state) {
    auto txn = db->Begin();
    SCREP_CHECK(txn->Insert(t, {Value(key), Value(key), Value(pad)}).ok());
    WriteSet ws = txn->BuildWriteSet();
    ws.commit_version = db->CommittedVersion() + 1;
    SCREP_CHECK(db->ApplyWriteSet(ws).ok());
    ++key;
  }
}
BENCHMARK(BM_StorageInsertCommit);

void BM_StorageScan1000(benchmark::State& state) {
  auto db = MakeDb(1000);
  const TableId t = *db->FindTable("item");
  auto txn = db->Begin();
  for (auto _ : state) {
    int64_t sum = 0;
    txn->Scan(t, [&](int64_t key, const Row&) {
      sum += key;
      return true;
    });
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_StorageScan1000);

void BM_SqlParse(benchmark::State& state) {
  const std::string text =
      "SELECT i_id, i_val FROM item WHERE i_id BETWEEN ? AND ? ORDER BY "
      "i_val DESC LIMIT 20";
  for (auto _ : state) {
    auto ast = sql::Parse(text);
    benchmark::DoNotOptimize(ast);
  }
}
BENCHMARK(BM_SqlParse);

void BM_SqlPointSelect(benchmark::State& state) {
  auto db = MakeDb(10000);
  auto stmt = sql::PreparedStatement::Prepare(
      *db, "SELECT i_val FROM item WHERE i_id = ?");
  SCREP_CHECK(stmt.ok());
  auto txn = db->Begin();
  int64_t key = 0;
  for (auto _ : state) {
    auto rs = sql::Execute(txn.get(), **stmt, {Value(key)});
    benchmark::DoNotOptimize(rs);
    key = (key + 7919) % 10000;
  }
}
BENCHMARK(BM_SqlPointSelect);

void BM_SqlUpdate(benchmark::State& state) {
  auto db = MakeDb(10000);
  auto stmt = sql::PreparedStatement::Prepare(
      *db, "UPDATE item SET i_val = i_val + ? WHERE i_id = ?");
  SCREP_CHECK(stmt.ok());
  auto txn = db->Begin();
  int64_t key = 0;
  for (auto _ : state) {
    auto rs = sql::Execute(txn.get(), **stmt, {Value(1), Value(key)});
    benchmark::DoNotOptimize(rs);
    key = (key + 7919) % 10000;
  }
}
BENCHMARK(BM_SqlUpdate);

void BM_WriteSetConflictCheck(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<WriteSet> committed(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    committed[static_cast<size_t>(i)].Add(0, i, WriteType::kUpdate,
                                          Row{Value(i)});
  }
  WriteSet probe;
  probe.Add(0, -1, WriteType::kUpdate, Row{Value(-1)});
  for (auto _ : state) {
    bool conflict = false;
    for (const WriteSet& ws : committed) {
      conflict |= probe.ConflictsWith(ws);
    }
    benchmark::DoNotOptimize(conflict);
  }
}
BENCHMARK(BM_WriteSetConflictCheck)->Arg(64)->Arg(1024);

void BM_WriteSetEncodeDecode(benchmark::State& state) {
  WriteSet ws;
  for (int64_t i = 0; i < 8; ++i) {
    ws.Add(0, i, WriteType::kUpdate,
           Row{Value(i), Value(std::string(100, 'x'))});
  }
  for (auto _ : state) {
    std::string buf;
    ws.EncodeTo(&buf);
    WriteSet decoded;
    size_t offset = 0;
    SCREP_CHECK(WriteSet::DecodeFrom(buf, &offset, &decoded));
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_WriteSetEncodeDecode);

void BM_TableVersionTracker(benchmark::State& state) {
  TableVersionTracker tracker(10);
  std::vector<TableId> table_set = {2, 5, 7};
  DbVersion v = 0;
  for (auto _ : state) {
    tracker.OnCommit(++v, {static_cast<TableId>(v % 10)});
    benchmark::DoNotOptimize(tracker.RequiredVersion(table_set));
  }
}
BENCHMARK(BM_TableVersionTracker);

void BM_SimulatorEventLoop(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    runtime::SimRuntime rt{&sim};
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      sim.Schedule(i, [&fired] { ++fired; });
    }
    sim.RunAll();
    benchmark::DoNotOptimize(fired);
  }
}
BENCHMARK(BM_SimulatorEventLoop);

void BM_CertifierThroughput(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    runtime::SimRuntime rt{&sim};
    Certifier certifier(&rt, CertifierConfig{}, 4, /*eager=*/false);
    int decisions = 0;
    certifier.SetDecisionCallback(
        [&decisions](ReplicaId, const CertDecision&) { ++decisions; });
    certifier.SetRefreshCallback([](ReplicaId, const RefreshBatch&) {});
    for (TxnId t = 1; t <= 500; ++t) {
      WriteSet ws;
      ws.txn_id = t;
      ws.origin = static_cast<ReplicaId>(t % 4);
      ws.snapshot_version = static_cast<DbVersion>(t) - 1;
      ws.Add(0, static_cast<int64_t>(t), WriteType::kUpdate,
             Row{Value(static_cast<int64_t>(t))});
      certifier.SubmitCertification(std::move(ws));
    }
    sim.RunAll();
    SCREP_CHECK(decisions == 500);
    benchmark::DoNotOptimize(decisions);
  }
}
BENCHMARK(BM_CertifierThroughput);

// A certifier with its conflict window pre-filled with distinct-key
// commits, fed probe writesets whose snapshots sit at the far edge of the
// window — the linear-scan oracle must rescan the entire window per
// decision while the indexed path does O(|writeset|) lookups.
class CertifierHarness {
 public:
  CertifierHarness(size_t window, bool linear_scan, int ws_size)
      : ws_size_(ws_size), window_(static_cast<DbVersion>(window)) {
    CertifierConfig config;
    config.conflict_window = window;
    config.linear_scan_oracle = linear_scan;
    certifier_ = std::make_unique<Certifier>(&rt_, config, 4,
                                             /*eager=*/false);
    certifier_->SetDecisionCallback([](ReplicaId, const CertDecision&) {});
    certifier_->SetRefreshCallback([](ReplicaId, const RefreshBatch&) {});
    for (size_t i = 0; i < window; ++i) Submit(certifier_->CommitVersion());
    sim_.RunAll();
    SCREP_CHECK(certifier_->abort_count() == 0);
  }

  /// Submits and decides `count` non-conflicting probes.  Probe i is
  /// certified at commit version v+i with snapshot v+i-window: the oldest
  /// snapshot that escapes the conservative window abort, so the whole
  /// window is eligible for conflicts.
  void RunProbes(int count) {
    const DbVersion v = certifier_->CommitVersion();
    for (int i = 0; i < count; ++i) {
      Submit(v - window_ + static_cast<DbVersion>(i));
    }
    sim_.RunAll();
    SCREP_CHECK(certifier_->window_abort_count() == 0);
  }

 private:
  void Submit(DbVersion snapshot) {
    WriteSet ws;
    ws.txn_id = next_txn_++;
    ws.origin = 0;
    ws.snapshot_version = snapshot;
    for (int i = 0; i < ws_size_; ++i) {
      ws.Add(0, next_key_++, WriteType::kUpdate, Row{Value(int64_t{1})});
    }
    certifier_->SubmitCertification(std::move(ws));
  }

  Simulator sim_;
  runtime::SimRuntime rt_{&sim_};
  std::unique_ptr<Certifier> certifier_;
  int ws_size_;
  DbVersion window_;
  TxnId next_txn_ = 1;
  int64_t next_key_ = 0;
};

void BM_CertifierDecisionIndexed(benchmark::State& state) {
  CertifierHarness harness(static_cast<size_t>(state.range(0)),
                           /*linear_scan=*/false,
                           static_cast<int>(state.range(1)));
  for (auto _ : state) harness.RunProbes(32);
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_CertifierDecisionIndexed)
    ->Args({1024, 2})
    ->Args({1024, 8})
    ->Args({4096, 8})
    ->Args({16384, 8})
    ->Args({4096, 32});

void BM_CertifierDecisionLinearScan(benchmark::State& state) {
  CertifierHarness harness(static_cast<size_t>(state.range(0)),
                           /*linear_scan=*/true,
                           static_cast<int>(state.range(1)));
  for (auto _ : state) harness.RunProbes(32);
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_CertifierDecisionLinearScan)
    ->Args({1024, 2})
    ->Args({1024, 8})
    ->Args({4096, 8})
    ->Args({16384, 8})
    ->Args({4096, 32});

// One proxy fed a backlog of distinct-key refresh writesets under a
// deterministic service-time model; the interesting number is the
// *simulated* makespan, which shrinks as lanes are added.
class ApplyLaneHarness {
 public:
  ApplyLaneHarness(int lanes, int64_t refreshes) : refreshes_(refreshes) {
    auto table = db_.CreateTable(
        "t", Schema({{"id", ValueType::kInt64}, {"val", ValueType::kInt64}}));
    SCREP_CHECK(table.ok());
    table_ = *table;
    for (int64_t k = 0; k < refreshes; ++k) {
      SCREP_CHECK(db_.BulkLoad(table_, {Value(k), Value(int64_t{0})}).ok());
    }
    ProxyConfig config;
    config.apply_lanes = lanes;
    config.cpu_cores = 16;        // lanes, not cores, are the bottleneck
    config.service_spread = 0.0;  // deterministic apply cost
    config.stall_probability = 0.0;
    proxy_ = std::make_unique<Proxy>(&rt_, 0, &db_, &registry_, config,
                                     /*eager=*/false);
    proxy_->SetCertRequestCallback([](const WriteSet&) {});
    proxy_->SetResponseCallback([](const TxnResponse&) {});
    proxy_->SetReplicaCommittedCallback([](TxnId) {});
  }

  /// Feeds the whole refresh backlog at time 0 and returns the simulated
  /// makespan of applying (and publishing) all of it.
  SimTime Run() {
    for (int64_t i = 0; i < refreshes_; ++i) {
      WriteSet ws;
      ws.txn_id = static_cast<TxnId>(1000 + i);
      ws.origin = 1;
      ws.commit_version = i + 1;
      ws.Add(table_, i, WriteType::kUpdate, Row{Value(i), Value(int64_t{1})});
      proxy_->OnRefresh(ws);
    }
    sim_.RunAll();
    SCREP_CHECK(proxy_->v_local() == refreshes_);
    return sim_.Now();
  }

 private:
  Simulator sim_;
  runtime::SimRuntime rt_{&sim_};
  Database db_;
  TableId table_ = -1;
  sql::TransactionRegistry registry_;
  std::unique_ptr<Proxy> proxy_;
  int64_t refreshes_;
};

void BM_ApplyLaneMakespan(benchmark::State& state) {
  const int lanes = static_cast<int>(state.range(0));
  SimTime makespan = 0;
  for (auto _ : state) {
    ApplyLaneHarness harness(lanes, 256);
    makespan = harness.Run();
    benchmark::DoNotOptimize(makespan);
  }
  state.counters["sim_makespan_ms"] =
      static_cast<double>(makespan) / 1000.0;
}
BENCHMARK(BM_ApplyLaneMakespan)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// ---------------------------------------------------------------------
// --bench-json summary mode.

double MeasureDecisionsPerSec(size_t window, bool linear_scan, int ws_size,
                              int probes) {
  CertifierHarness harness(window, linear_scan, ws_size);
  const auto start = std::chrono::steady_clock::now();
  harness.RunProbes(probes);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return probes / std::max(elapsed.count(), 1e-9);
}

int RunBenchJson(const std::string& path) {
  std::string json = "{\"driver\":\"micro_components\",\"certifier\":[";
  std::printf("certifier decision throughput (indexed vs linear-scan "
              "oracle, ws_size=8)\n");
  std::printf("%10s %14s %14s %9s\n", "window", "indexed/s", "linear/s",
              "speedup");
  bool first = true;
  double speedup_at_4096 = 0.0;
  for (const size_t window : {size_t{1024}, size_t{4096}, size_t{16384}}) {
    // The linear scan is O(window) per decision: shrink its probe count
    // with the window to keep the run short.
    const int linear_probes =
        std::max(128, static_cast<int>((1 << 21) / window));
    const double indexed =
        MeasureDecisionsPerSec(window, /*linear_scan=*/false, 8, 8192);
    const double linear = MeasureDecisionsPerSec(window, /*linear_scan=*/true,
                                                 8, linear_probes);
    const double speedup = indexed / linear;
    if (window == 4096) speedup_at_4096 = speedup;
    std::printf("%10zu %14.0f %14.0f %8.1fx\n", window, indexed, linear,
                speedup);
    if (!first) json += ",";
    first = false;
    json += "{\"window\":" + std::to_string(window) +
            ",\"ws_size\":8,\"indexed_per_sec\":" +
            std::to_string(indexed) +
            ",\"linear_per_sec\":" + std::to_string(linear) +
            ",\"speedup\":" + std::to_string(speedup) + "}";
  }
  json += "],\"apply_lanes\":[";
  std::printf("\napply-lane pipeline (256 distinct-key refreshes, "
              "simulated makespan)\n");
  std::printf("%10s %14s %9s\n", "lanes", "makespan_ms", "speedup");
  SimTime serial_makespan = 0;
  first = true;
  for (const int lanes : {1, 2, 4, 8}) {
    ApplyLaneHarness harness(lanes, 256);
    const SimTime makespan = harness.Run();
    if (lanes == 1) serial_makespan = makespan;
    const double speedup = static_cast<double>(serial_makespan) /
                           static_cast<double>(makespan);
    std::printf("%10d %14.2f %8.2fx\n", lanes,
                static_cast<double>(makespan) / 1000.0, speedup);
    if (!first) json += ",";
    first = false;
    json += "{\"lanes\":" + std::to_string(lanes) + ",\"makespan_ms\":" +
            std::to_string(static_cast<double>(makespan) / 1000.0) +
            ",\"speedup_vs_serial\":" + std::to_string(speedup) + "}";
  }
  json += "]}\n";
  std::ofstream out(path);
  out << json;
  if (!out) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", path.c_str());
  if (speedup_at_4096 < 5.0) {
    std::fprintf(stderr,
                 "FAIL: indexed certification only %.1fx faster than the "
                 "linear-scan oracle at window 4096 (expected >= 5x)\n",
                 speedup_at_4096);
    return 1;
  }
  return 0;
}

// ---------------------------------------------------------------------
// --net-json: refresh fan-out over real channels, batched vs unbatched.

struct FanOutResult {
  int64_t messages = 0;   // RefreshBatch messages across all targets
  int64_t bytes = 0;      // modelled wire bytes across all targets
  int64_t writesets = 0;  // writeset copies delivered to proxies
};

/// Drives one certifier through `txns` back-to-back distinct-key commits
/// (so group commits carry batches larger than one) with the refresh
/// fan-out wired over per-target channels, and returns the message and
/// byte counts the channels observed.
FanOutResult MeasureFanOut(bool batching, int replicas, int txns) {
  Simulator sim;
  runtime::SimRuntime rt{&sim};
  FanOutResult out;
  CertifierConfig config;
  config.refresh_batching = batching;
  Certifier certifier(&rt, config, replicas, /*eager=*/false);
  certifier.SetDecisionCallback([](ReplicaId, const CertDecision&) {});
  std::vector<std::unique_ptr<net::Channel<RefreshBatch>>> channels;
  for (int r = 0; r < replicas; ++r) {
    auto ch = std::make_unique<net::Channel<RefreshBatch>>(
        &rt, "fanout.r" + std::to_string(r), net::LinkConfig{Micros(120)},
        static_cast<uint64_t>(r) + 1);
    ch->SetSizeFn(
        [](const RefreshBatch& b) { return b.SerializedBytes(); });
    ch->SetHandler([&out](const RefreshBatch& b) {
      out.writesets += static_cast<int64_t>(b.writesets.size());
    });
    channels.push_back(std::move(ch));
  }
  certifier.SetRefreshCallback(
      [&channels](ReplicaId target, const RefreshBatch& batch) {
        channels[static_cast<size_t>(target)]->Send(batch);
      });
  for (TxnId t = 1; t <= static_cast<TxnId>(txns); ++t) {
    WriteSet ws;
    ws.txn_id = t;
    ws.origin = static_cast<ReplicaId>(t % replicas);
    ws.snapshot_version = static_cast<DbVersion>(t) - 1;
    ws.Add(0, static_cast<int64_t>(t), WriteType::kUpdate,
           Row{Value(static_cast<int64_t>(t))});
    certifier.SubmitCertification(std::move(ws));
  }
  sim.RunAll();
  for (const auto& ch : channels) {
    out.messages += ch->stats().sent;
    out.bytes += ch->stats().bytes;
  }
  return out;
}

int RunNetJson(const std::string& path) {
  constexpr int kReplicas = 4;
  constexpr int kTxns = 2000;
  const FanOutResult unbatched = MeasureFanOut(false, kReplicas, kTxns);
  const FanOutResult batched = MeasureFanOut(true, kReplicas, kTxns);
  std::printf("refresh fan-out, %d replicas, %d back-to-back commits "
              "(group commit batches the log forces)\n",
              kReplicas, kTxns);
  std::printf("%12s %10s %12s %11s %12s\n", "mode", "messages", "bytes",
              "writesets", "ws/message");
  const auto print_row = [](const char* mode, const FanOutResult& r) {
    std::printf("%12s %10lld %12lld %11lld %12.2f\n", mode,
                static_cast<long long>(r.messages),
                static_cast<long long>(r.bytes),
                static_cast<long long>(r.writesets),
                static_cast<double>(r.writesets) /
                    static_cast<double>(r.messages));
  };
  print_row("unbatched", unbatched);
  print_row("batched", batched);
  const double message_reduction =
      static_cast<double>(unbatched.messages) /
      static_cast<double>(batched.messages);
  std::printf("message reduction: %.1fx\n", message_reduction);

  std::ofstream out(path);
  out << "{\"driver\":\"micro_components_network\",\"replicas\":"
      << kReplicas << ",\"txns\":" << kTxns << ",\"unbatched\":{\"messages\":"
      << unbatched.messages << ",\"bytes\":" << unbatched.bytes
      << ",\"writesets\":" << unbatched.writesets
      << "},\"batched\":{\"messages\":" << batched.messages
      << ",\"bytes\":" << batched.bytes << ",\"writesets\":"
      << batched.writesets << "},\"message_reduction\":"
      << message_reduction << "}\n";
  if (!out) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());

  // Self-checks: batching must not change what the proxies receive, and
  // must strictly shrink the message (and thus framing-byte) count.
  if (batched.writesets != unbatched.writesets ||
      unbatched.writesets !=
          static_cast<int64_t>(kTxns) * (kReplicas - 1)) {
    std::fprintf(stderr, "FAIL: writeset delivery mismatch\n");
    return 1;
  }
  if (batched.messages >= unbatched.messages ||
      batched.bytes >= unbatched.bytes) {
    std::fprintf(stderr,
                 "FAIL: batching did not reduce refresh messages/bytes\n");
    return 1;
  }
  return 0;
}

// ---------------------------------------------------------------------
// --hotpath-json: A/B of the three optimized hot paths.

/// Statements executed per second with the plan cache on or off (off is
/// exactly the original per-call planning path).
double MeasurePlanCache(bool cached, int iters) {
  sql::SetPlanCacheEnabled(cached);
  auto db = MakeDb(10000);
  auto select = sql::PreparedStatement::Prepare(
      *db, "SELECT i_val FROM item WHERE i_id = ?");
  auto update = sql::PreparedStatement::Prepare(
      *db, "UPDATE item SET i_val = i_val + ? WHERE i_id = ?");
  SCREP_CHECK(select.ok() && update.ok());
  auto txn = db->Begin();
  int64_t key = 0;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    auto rs = sql::Execute(txn.get(), **select, {Value(key)});
    SCREP_CHECK(rs.ok() && rs->rows.size() == 1);
    auto ru = sql::Execute(txn.get(), **update, {Value(1), Value(key)});
    SCREP_CHECK(ru.ok() && ru->rows_affected == 1);
    key = (key + 7919) % 10000;
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  sql::SetPlanCacheEnabled(true);
  return 2.0 * iters / std::max(elapsed.count(), 1e-9);
}

/// Builds `count` committed-looking writesets (8 ops, 100-byte pads) as
/// frozen refs.
std::vector<WriteSetRef> MakeFrozenWritesets(int count) {
  std::vector<WriteSetRef> frozen;
  const std::string pad(100, 'x');
  for (int i = 0; i < count; ++i) {
    WriteSet ws;
    ws.txn_id = static_cast<TxnId>(i + 1);
    ws.origin = static_cast<ReplicaId>(i % 4);
    ws.snapshot_version = static_cast<DbVersion>(i);
    ws.commit_version = static_cast<DbVersion>(i + 1);
    for (int64_t k = 0; k < 8; ++k) {
      ws.Add(0, i * 8 + k, WriteType::kUpdate, Row{Value(k), Value(pad)});
    }
    frozen.push_back(std::make_shared<const WriteSet>(std::move(ws)));
  }
  return frozen;
}

/// The pre-zero-copy fan-out batch: deep writeset copies and a wire size
/// recomputed by walking every row image.
struct LegacyBatch {
  std::vector<WriteSet> writesets;
  size_t SerializedBytes() const {
    size_t total = 8;
    for (const WriteSet& ws : writesets) total += ws.SerializedBytesUncached();
    return total;
  }
};

/// Writesets fanned out per second: assemble one batch per target from
/// the force batch, then model the channel's send copy and wire-size
/// query — deep copies + re-walked sizes (legacy) vs refcount bumps +
/// memoized sizes (optimized).
double MeasureFanOutAssembly(bool zero_copy, int targets, int iters) {
  const std::vector<WriteSetRef> frozen = MakeFrozenWritesets(64);
  size_t sink = 0;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    for (int r = 0; r < targets; ++r) {
      if (zero_copy) {
        RefreshBatch batch;
        batch.writesets.reserve(frozen.size());
        for (const WriteSetRef& ws : frozen) batch.writesets.push_back(ws);
        RefreshBatch delivered = batch;  // Channel::Send copies the message
        sink += delivered.SerializedBytes();
      } else {
        LegacyBatch batch;
        batch.writesets.reserve(frozen.size());
        for (const WriteSetRef& ws : frozen) batch.writesets.push_back(*ws);
        LegacyBatch delivered = batch;
        sink += delivered.SerializedBytes();
      }
    }
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  SCREP_CHECK(sink > 0);
  return static_cast<double>(iters) * targets * frozen.size() /
         std::max(elapsed.count(), 1e-9);
}

/// Group-commit WAL appends per second.  Legacy: encode every record into
/// a fresh temporary, buffer it, concatenate on force.  Optimized: the
/// real Wal fed from each writeset's encode arena.
double MeasureWalAppend(bool arena, int iters) {
  const std::vector<WriteSetRef> frozen = MakeFrozenWritesets(64);
  size_t sink = 0;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) {
    if (arena) {
      Wal wal;
      for (size_t k = 0; k + 1 < frozen.size(); ++k) {
        wal.Append(*frozen[k], /*force=*/false);
      }
      wal.Append(*frozen.back(), /*force=*/true);
      sink += wal.DurableBytes();
    } else {
      std::vector<std::string> buffered;
      std::string durable;
      for (size_t k = 0; k + 1 < frozen.size(); ++k) {
        std::string rec;
        frozen[k]->EncodeTo(&rec);
        buffered.push_back(std::move(rec));
      }
      std::string rec;
      frozen.back()->EncodeTo(&rec);
      for (const std::string& b : buffered) durable += b;
      durable += rec;
      sink += durable.size();
    }
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  SCREP_CHECK(sink > 0);
  return static_cast<double>(iters) * frozen.size() /
         std::max(elapsed.count(), 1e-9);
}

/// Byte-identity checks over randomized writesets: the memoized size must
/// equal the re-walked size through arbitrary mutate/query interleavings,
/// the encode arena must hold exactly EncodeTo's bytes, and a WAL fed
/// from arenas must be byte-identical to one built by per-record
/// encoding.
bool CheckByteIdentity() {
  Rng rng(42);
  Wal arena_wal;
  std::string legacy_durable;
  for (int i = 0; i < 200; ++i) {
    WriteSet ws;
    ws.txn_id = static_cast<TxnId>(i + 1);
    ws.origin = static_cast<ReplicaId>(rng.NextBounded(4));
    ws.snapshot_version = rng.NextBounded(1000);
    const int ops = 1 + static_cast<int>(rng.NextBounded(12));
    for (int k = 0; k < ops; ++k) {
      Row row;
      const int cols = 1 + static_cast<int>(rng.NextBounded(3));
      for (int c = 0; c < cols; ++c) {
        switch (rng.NextBounded(3)) {
          case 0: row.push_back(Value(static_cast<int64_t>(rng.Next()))); break;
          case 1: row.push_back(Value(rng.NextDouble())); break;
          default:
            row.push_back(Value(std::string(rng.NextBounded(64), 'y')));
        }
      }
      // Interleave size queries with mutations so the memo's invalidation
      // is exercised, including coalescing rewrites of the same key.
      ws.Add(0, static_cast<int64_t>(rng.NextBounded(8)), WriteType::kUpdate,
             std::move(row));
      if (rng.NextBool(0.5) &&
          ws.SerializedBytes() != ws.SerializedBytesUncached()) {
        return false;
      }
    }
    // The certifier stamps the commit version after sizes may have been
    // queried — the arena must notice.
    ws.commit_version = static_cast<DbVersion>(i + 1);
    if (ws.SerializedBytes() != ws.SerializedBytesUncached()) return false;
    std::string fresh;
    ws.EncodeTo(&fresh);
    if (ws.EncodedBytes() != fresh) return false;
    if (ws.EncodedBytes().size() != ws.SerializedBytes()) return false;
    arena_wal.Append(ws, /*force=*/rng.NextBool(0.3));
    legacy_durable += fresh;
  }
  arena_wal.Force();
  std::vector<WriteSet> replay;
  if (!arena_wal.ReadAll(&replay).ok() || replay.size() != 200) return false;
  std::string arena_durable;
  for (const WriteSet& ws : replay) ws.EncodeTo(&arena_durable);
  return arena_durable == legacy_durable &&
         arena_wal.DurableBytes() == legacy_durable.size();
}

int RunHotpathJson(const std::string& path) {
  struct PathResult {
    const char* name;
    double base_per_sec;
    double opt_per_sec;
    double speedup() const { return opt_per_sec / base_per_sec; }
  };
  std::printf("hot-path A/B (optimized vs pre-optimization behavior)\n");
  const PathResult results[] = {
      {"plan_cache", MeasurePlanCache(false, 200000),
       MeasurePlanCache(true, 200000)},
      {"writeset_encode", MeasureFanOutAssembly(false, 4, 2000),
       MeasureFanOutAssembly(true, 4, 2000)},
      {"group_commit_wal", MeasureWalAppend(false, 5000),
       MeasureWalAppend(true, 5000)},
  };
  const bool byte_identity = CheckByteIdentity();
  std::printf("%18s %14s %14s %9s\n", "path", "base/s", "opt/s", "speedup");
  std::string json = "{\"driver\":\"micro_components_hotpath\",\"paths\":{";
  bool first = true;
  double max_speedup = 0.0;
  for (const PathResult& r : results) {
    std::printf("%18s %14.0f %14.0f %8.2fx\n", r.name, r.base_per_sec,
                r.opt_per_sec, r.speedup());
    max_speedup = std::max(max_speedup, r.speedup());
    if (!first) json += ",";
    first = false;
    json += "\"" + std::string(r.name) +
            "\":{\"base_per_sec\":" + std::to_string(r.base_per_sec) +
            ",\"opt_per_sec\":" + std::to_string(r.opt_per_sec) +
            ",\"speedup\":" + std::to_string(r.speedup()) + "}";
  }
  json += "},\"byte_identity\":";
  json += byte_identity ? "true" : "false";
  json += "}\n";
  std::printf("byte identity (memo vs fresh encode, WAL bytes): %s\n",
              byte_identity ? "OK" : "FAIL");
  std::ofstream out(path);
  out << json;
  if (!out) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  if (!byte_identity) {
    std::fprintf(stderr, "FAIL: memoized serialization diverged from the "
                         "fresh encoder\n");
    return 1;
  }
  if (max_speedup < 2.0) {
    std::fprintf(stderr,
                 "FAIL: no hot path reached a 2x speedup (best %.2fx)\n",
                 max_speedup);
    return 1;
  }
  return 0;
}

// ---------------------------------------------------------------------
// --shard-sweep: partitioned certification scaling in K.

/// Certified throughput, in simulated time, of `txns` shard-disjoint
/// single-table updates (round-robin over eight tables, all keys
/// distinct) through a K-lane certification stream.  K = 1 runs the
/// plain single-stream Certifier — the exact object a default
/// configuration constructs — so the scaling is measured against the
/// real baseline, not a one-lane ShardedCertifier.  Simulated time makes
/// the sweep deterministic: the bottleneck is the per-lane certify CPU
/// and WAL force stream, which is precisely what partitioning splits.
double MeasureCertifiedTps(int lanes, int txns) {
  constexpr size_t kSweepTables = 8;
  Simulator sim;
  runtime::SimRuntime rt{&sim};
  const CertifierConfig config;
  int64_t decisions = 0;
  int64_t aborted = 0;
  auto on_decision = [&](ReplicaId, const CertDecision& d) {
    ++decisions;
    if (!d.commit) ++aborted;
  };
  auto feed = [&](auto&& submit) {
    for (TxnId t = 1; t <= static_cast<TxnId>(txns); ++t) {
      WriteSet ws;
      ws.txn_id = t;
      ws.origin = static_cast<ReplicaId>(t % 4);
      ws.snapshot_version = 0;
      ws.Add(static_cast<TableId>(t % kSweepTables),
             static_cast<int64_t>(t), WriteType::kUpdate,
             Row{Value(static_cast<int64_t>(t))});
      submit(std::move(ws));
    }
  };
  if (lanes == 1) {
    Certifier certifier(&rt, config, /*replica_count=*/4, /*eager=*/false);
    certifier.SetDecisionCallback(on_decision);
    certifier.SetRefreshCallback([](ReplicaId, const RefreshBatch&) {});
    feed([&](WriteSet ws) { certifier.SubmitCertification(std::move(ws)); });
    sim.RunAll();
  } else {
    ShardedCertifier certifier(&rt, config, ShardMap(kSweepTables, lanes),
                               /*replica_count=*/4);
    certifier.SetDecisionCallback(on_decision);
    certifier.SetRefreshCallback(
        [](ShardId, ReplicaId, const RefreshBatch&) {});
    feed([&](WriteSet ws) { certifier.SubmitCertification(std::move(ws)); });
    sim.RunAll();
  }
  SCREP_CHECK(decisions == txns);
  SCREP_CHECK(aborted == 0);
  const double seconds = static_cast<double>(sim.Now()) / 1e6;
  return txns / std::max(seconds, 1e-9);
}

int RunShardSweep(const std::string& path) {
  constexpr int kTxns = 4096;
  std::printf("partitioned certification sweep (shard-disjoint stream, "
              "%d txns, simulated time)\n",
              kTxns);
  std::printf("%8s %18s %9s\n", "lanes", "certified_tps", "speedup");
  std::string json = "{\"driver\":\"micro_components_shards\",\"sweep\":[";
  double single = 0.0;
  double speedup_at_4 = 0.0;
  bool first = true;
  for (const int lanes : {1, 2, 4, 8}) {
    const double tps = MeasureCertifiedTps(lanes, kTxns);
    if (lanes == 1) single = tps;
    const double speedup = tps / single;
    if (lanes == 4) speedup_at_4 = speedup;
    std::printf("%8d %18.0f %8.2fx\n", lanes, tps, speedup);
    if (!first) json += ",";
    first = false;
    json += "{\"lanes\":" + std::to_string(lanes) +
            ",\"certified_per_sec\":" + std::to_string(tps) +
            ",\"speedup_vs_single\":" + std::to_string(speedup) + "}";
  }

  // End-to-end: K = 4 with partial replication (each replica hosts two
  // of the four shards), audited.  The sweep is only honest if the
  // partitioned path still produces 1SR-equivalent histories.
  MicroConfig micro;
  micro.rows_per_table = 200;
  micro.update_fraction = 0.5;
  const MicroWorkload workload(micro);
  ExperimentConfig config;
  config.system.level = ConsistencyLevel::kLazyFine;
  config.system.replica_count = 4;
  config.system.certifier.shard_lanes = 4;
  config.system.hosted_shards = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
  config.client_count = 8;
  config.warmup = Seconds(0.5);
  config.duration = Seconds(2);
  config.seed = 7;
  config.audit = true;
  auto result = RunExperiment(workload, config);
  SCREP_CHECK_MSG(result.ok(), result.status().ToString());
  const bool audit_ok = result->audit.enabled && result->audit.ok;
  std::printf("e2e lanes=4 partial replication: committed=%lld audit=%s "
              "(%lld checks)\n",
              static_cast<long long>(result->committed),
              audit_ok ? "ok" : "VIOLATION",
              static_cast<long long>(result->audit.checks));

  json += "],\"e2e\":{\"lanes\":4,\"committed\":" +
          std::to_string(result->committed) +
          ",\"audit_checks\":" + std::to_string(result->audit.checks) +
          ",\"audit_ok\":";
  json += audit_ok ? "true" : "false";
  json += "}}\n";
  std::ofstream out(path);
  out << json;
  if (!out) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  if (!audit_ok) {
    std::fprintf(stderr, "FAIL: K=4 partial-replication run is not "
                         "audit-clean\n");
    return 1;
  }
  if (speedup_at_4 < 2.5) {
    std::fprintf(stderr,
                 "FAIL: 4-lane certification only %.2fx the single-stream "
                 "throughput (floor 2.5x)\n",
                 speedup_at_4);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace screp

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--bench-json=", 13) == 0) {
      return screp::RunBenchJson(argv[i] + 13);
    }
    if (std::strcmp(argv[i], "--bench-json") == 0) {
      return screp::RunBenchJson("BENCH_certifier.json");
    }
    if (std::strncmp(argv[i], "--net-json=", 11) == 0) {
      return screp::RunNetJson(argv[i] + 11);
    }
    if (std::strcmp(argv[i], "--net-json") == 0) {
      return screp::RunNetJson("BENCH_network.json");
    }
    if (std::strncmp(argv[i], "--hotpath-json=", 15) == 0) {
      return screp::RunHotpathJson(argv[i] + 15);
    }
    if (std::strcmp(argv[i], "--hotpath-json") == 0) {
      return screp::RunHotpathJson("BENCH_hotpath.json");
    }
    if (std::strncmp(argv[i], "--shard-sweep=", 14) == 0) {
      return screp::RunShardSweep(argv[i] + 14);
    }
    if (std::strcmp(argv[i], "--shard-sweep") == 0) {
      return screp::RunShardSweep("BENCH_shards.json");
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
