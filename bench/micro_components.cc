// Component microbenchmarks (google-benchmark): storage engine point
// operations, SQL parse/execute, writeset certification, version
// trackers, and the discrete-event core. These are sanity/ablation
// benches, not paper figures.

#include <benchmark/benchmark.h>

#include "core/table_version_tracker.h"
#include "replication/certifier.h"
#include "sim/simulator.h"
#include "sql/executor.h"
#include "sql/parser.h"
#include "storage/database.h"
#include "storage/transaction.h"

namespace screp {
namespace {

std::unique_ptr<Database> MakeDb(int rows) {
  auto db = std::make_unique<Database>();
  auto id = db->CreateTable("item", Schema({{"i_id", ValueType::kInt64},
                                            {"i_val", ValueType::kInt64},
                                            {"i_pad", ValueType::kString}}));
  SCREP_CHECK(id.ok());
  const std::string pad(100, 'x');
  for (int64_t k = 0; k < rows; ++k) {
    SCREP_CHECK(db->BulkLoad(*id, {Value(k), Value(k), Value(pad)}).ok());
  }
  return db;
}

void BM_StorageGet(benchmark::State& state) {
  auto db = MakeDb(10000);
  const TableId t = *db->FindTable("item");
  auto txn = db->Begin();
  int64_t key = 0;
  for (auto _ : state) {
    auto row = txn->Get(t, key);
    benchmark::DoNotOptimize(row);
    key = (key + 7919) % 10000;
  }
}
BENCHMARK(BM_StorageGet);

void BM_StorageInsertCommit(benchmark::State& state) {
  auto db = MakeDb(0);
  const TableId t = *db->FindTable("item");
  int64_t key = 0;
  const std::string pad(100, 'x');
  for (auto _ : state) {
    auto txn = db->Begin();
    SCREP_CHECK(txn->Insert(t, {Value(key), Value(key), Value(pad)}).ok());
    WriteSet ws = txn->BuildWriteSet();
    ws.commit_version = db->CommittedVersion() + 1;
    SCREP_CHECK(db->ApplyWriteSet(ws).ok());
    ++key;
  }
}
BENCHMARK(BM_StorageInsertCommit);

void BM_StorageScan1000(benchmark::State& state) {
  auto db = MakeDb(1000);
  const TableId t = *db->FindTable("item");
  auto txn = db->Begin();
  for (auto _ : state) {
    int64_t sum = 0;
    txn->Scan(t, [&](int64_t key, const Row&) {
      sum += key;
      return true;
    });
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_StorageScan1000);

void BM_SqlParse(benchmark::State& state) {
  const std::string text =
      "SELECT i_id, i_val FROM item WHERE i_id BETWEEN ? AND ? ORDER BY "
      "i_val DESC LIMIT 20";
  for (auto _ : state) {
    auto ast = sql::Parse(text);
    benchmark::DoNotOptimize(ast);
  }
}
BENCHMARK(BM_SqlParse);

void BM_SqlPointSelect(benchmark::State& state) {
  auto db = MakeDb(10000);
  auto stmt = sql::PreparedStatement::Prepare(
      *db, "SELECT i_val FROM item WHERE i_id = ?");
  SCREP_CHECK(stmt.ok());
  auto txn = db->Begin();
  int64_t key = 0;
  for (auto _ : state) {
    auto rs = sql::Execute(txn.get(), **stmt, {Value(key)});
    benchmark::DoNotOptimize(rs);
    key = (key + 7919) % 10000;
  }
}
BENCHMARK(BM_SqlPointSelect);

void BM_SqlUpdate(benchmark::State& state) {
  auto db = MakeDb(10000);
  auto stmt = sql::PreparedStatement::Prepare(
      *db, "UPDATE item SET i_val = i_val + ? WHERE i_id = ?");
  SCREP_CHECK(stmt.ok());
  auto txn = db->Begin();
  int64_t key = 0;
  for (auto _ : state) {
    auto rs = sql::Execute(txn.get(), **stmt, {Value(1), Value(key)});
    benchmark::DoNotOptimize(rs);
    key = (key + 7919) % 10000;
  }
}
BENCHMARK(BM_SqlUpdate);

void BM_WriteSetConflictCheck(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::vector<WriteSet> committed(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    committed[static_cast<size_t>(i)].Add(0, i, WriteType::kUpdate,
                                          Row{Value(i)});
  }
  WriteSet probe;
  probe.Add(0, -1, WriteType::kUpdate, Row{Value(-1)});
  for (auto _ : state) {
    bool conflict = false;
    for (const WriteSet& ws : committed) {
      conflict |= probe.ConflictsWith(ws);
    }
    benchmark::DoNotOptimize(conflict);
  }
}
BENCHMARK(BM_WriteSetConflictCheck)->Arg(64)->Arg(1024);

void BM_WriteSetEncodeDecode(benchmark::State& state) {
  WriteSet ws;
  for (int64_t i = 0; i < 8; ++i) {
    ws.Add(0, i, WriteType::kUpdate,
           Row{Value(i), Value(std::string(100, 'x'))});
  }
  for (auto _ : state) {
    std::string buf;
    ws.EncodeTo(&buf);
    WriteSet decoded;
    size_t offset = 0;
    SCREP_CHECK(WriteSet::DecodeFrom(buf, &offset, &decoded));
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_WriteSetEncodeDecode);

void BM_TableVersionTracker(benchmark::State& state) {
  TableVersionTracker tracker(10);
  std::vector<TableId> table_set = {2, 5, 7};
  DbVersion v = 0;
  for (auto _ : state) {
    tracker.OnCommit(++v, {static_cast<TableId>(v % 10)});
    benchmark::DoNotOptimize(tracker.RequiredVersion(table_set));
  }
}
BENCHMARK(BM_TableVersionTracker);

void BM_SimulatorEventLoop(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      sim.Schedule(i, [&fired] { ++fired; });
    }
    sim.RunAll();
    benchmark::DoNotOptimize(fired);
  }
}
BENCHMARK(BM_SimulatorEventLoop);

void BM_CertifierThroughput(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    Certifier certifier(&sim, CertifierConfig{}, 4, /*eager=*/false);
    int decisions = 0;
    certifier.SetDecisionCallback(
        [&decisions](ReplicaId, const CertDecision&) { ++decisions; });
    certifier.SetRefreshCallback([](ReplicaId, const WriteSet&) {});
    for (TxnId t = 1; t <= 500; ++t) {
      WriteSet ws;
      ws.txn_id = t;
      ws.origin = static_cast<ReplicaId>(t % 4);
      ws.snapshot_version = static_cast<DbVersion>(t) - 1;
      ws.Add(0, static_cast<int64_t>(t), WriteType::kUpdate,
             Row{Value(static_cast<int64_t>(t))});
      certifier.SubmitCertification(std::move(ws));
    }
    sim.RunAll();
    SCREP_CHECK(decisions == 500);
    benchmark::DoNotOptimize(decisions);
  }
}
BENCHMARK(BM_CertifierThroughput);

}  // namespace
}  // namespace screp

BENCHMARK_MAIN();
