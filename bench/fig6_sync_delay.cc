// Figure 6: TPC-W synchronization delay under scaled load — the
// synchronization start delay for LSC/LFC/SC and the global commit delay
// for ESC, shopping and ordering mixes, 1..8 replicas.
//
// Expected shape (paper §V-C.1): the lazy configurations' delays stay
// small and flat-ish (tens of ms at most); ESC's delay grows with the
// replica count (hundreds of ms on the ordering mix at 8 replicas), and
// LFC's delay is below LSC's.

#include "bench/bench_util.h"
#include "workload/tpcw.h"

namespace screp::bench {
namespace {

void RunMix(const BenchOptions& options, TpcwMix mix, BenchReport* report) {
  std::printf("\n-- %s mix: mean synchronization delay (ms) --\n",
              TpcwMixName(mix));
  std::printf("%-9s", "replicas");
  for (ConsistencyLevel level : kAllConsistencyLevels) {
    std::printf("%10s", ConsistencyLevelName(level));
  }
  std::printf("\n");
  for (int replicas = 1; replicas <= 8; ++replicas) {
    std::printf("%-9d", replicas);
    for (ConsistencyLevel level : kAllConsistencyLevels) {
      TpcwWorkload workload(TpcwScale{}, mix);
      ExperimentConfig config;
      config.system.proxy = TpcwProxyConfig();
      config.system.level = level;
      config.system.replica_count = replicas;
      config.client_count = replicas * TpcwClientsPerReplica(mix);
      config.mean_think_time = Millis(200);
      config.warmup = options.warmup;
      config.duration = options.duration;
      config.seed = options.seed;
      const std::string tag = std::string(TpcwMixName(mix)) +
                              ConsistencyLevelName(level) + "r" +
                              std::to_string(replicas);
      ApplyObservability(options, tag, &config);
      const ExperimentResult& r = report->Add(tag, MustRun(workload, config));
      std::printf("%10.2f", r.sync_delay_ms);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
}

int Main(int argc, char** argv) {
  const BenchOptions options = ParseOptions(argc, argv);
  PrintHeader(
      "Figure 6: TPC-W synchronization delay (start delay for lazy "
      "configs,\nglobal commit delay for ESC), scaled load",
      "Fig. 6(a) shopping and Fig. 6(b) ordering");
  BenchReport report("fig6", options);
  RunMix(options, TpcwMix::kShopping, &report);
  RunMix(options, TpcwMix::kOrdering, &report);
  return report.Finish();
}

}  // namespace
}  // namespace screp::bench

int main(int argc, char** argv) { return screp::bench::Main(argc, argv); }
