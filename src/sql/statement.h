// Prepared statements: parsed once, resolved against a database catalog,
// then executed many times with bound parameters — mirroring the
// prepared-statement workloads the paper targets (§III-C: "each transaction
// consists of a sequence of prepared statements").

#ifndef SCREP_SQL_STATEMENT_H_
#define SCREP_SQL_STATEMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "sql/ast.h"
#include "sql/plan.h"
#include "storage/database.h"

namespace screp::sql {

/// A parsed, catalog-resolved statement ready for repeated execution.
class PreparedStatement {
 public:
  /// Parses `text` and resolves table/column references against `db`'s
  /// catalog. The same prepared statement is valid on every replica
  /// because replicas create tables in identical order.
  static Result<std::shared_ptr<const PreparedStatement>> Prepare(
      const Database& db, const std::string& text);

  const std::string& text() const { return text_; }
  const StatementAst& ast() const { return ast_; }

  /// The single table this statement touches.
  const std::string& table_name() const { return table_name_; }
  TableId table_id() const { return table_id_; }

  /// True for UPDATE / INSERT / DELETE.
  bool IsUpdate() const { return ast_.IsUpdate(); }

  /// Number of `?` parameters to bind.
  int param_count() const { return ast_.param_count; }

  /// The execution plan built at Prepare time (never null after Prepare).
  /// Stale (catalog epoch mismatch) or disabled plans are handled by the
  /// executor, not by callers.
  const ExecutionPlan* plan() const { return plan_.get(); }

 private:
  PreparedStatement() = default;

  std::string text_;
  StatementAst ast_;
  std::string table_name_;
  TableId table_id_ = -1;
  // Borrows Expr pointers from ast_, so declared after it and built once
  // ast_ has its final address.
  std::unique_ptr<const ExecutionPlan> plan_;
};

using PreparedStatementPtr = std::shared_ptr<const PreparedStatement>;

/// A prepared *transaction*: a named sequence of prepared statements.
/// Its table-set (union of the statements' tables) is what the lazy
/// fine-grained scheme synchronizes on.
struct PreparedTransaction {
  TxnTypeId type_id = kUnknownTxnType;
  std::string name;
  std::vector<PreparedStatementPtr> statements;

  /// Sorted distinct table names accessed by any statement.
  std::vector<std::string> TableSet() const;

  /// True when any statement is an update.
  bool HasUpdates() const;
};

}  // namespace screp::sql

#endif  // SCREP_SQL_STATEMENT_H_
