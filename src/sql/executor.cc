#include "sql/executor.h"

#include <algorithm>

#include "common/logging.h"

namespace screp::sql {

namespace {

/// Evaluates an expression; `row` may be nullptr when no row context
/// exists (INSERT values, WHERE bounds).
Result<Value> Eval(const Expr& expr, const std::vector<Value>& params,
                   const Row* row) {
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      return expr.literal;
    case Expr::Kind::kParam:
      if (expr.param_index < 0 ||
          static_cast<size_t>(expr.param_index) >= params.size()) {
        return Status::InvalidArgument(
            "parameter " + std::to_string(expr.param_index + 1) +
            " not bound");
      }
      return params[static_cast<size_t>(expr.param_index)];
    case Expr::Kind::kColumn:
      if (row == nullptr) {
        return Status::InvalidArgument("column '" + expr.column +
                                       "' referenced without row context");
      }
      SCREP_CHECK(expr.column_index >= 0);
      if (static_cast<size_t>(expr.column_index) >= row->size()) {
        return Status::Internal("column index out of range");
      }
      return (*row)[static_cast<size_t>(expr.column_index)];
    case Expr::Kind::kBinary: {
      SCREP_ASSIGN_OR_RETURN(Value l, Eval(*expr.lhs, params, row));
      SCREP_ASSIGN_OR_RETURN(Value r, Eval(*expr.rhs, params, row));
      const bool l_num =
          l.type() == ValueType::kInt64 || l.type() == ValueType::kDouble;
      const bool r_num =
          r.type() == ValueType::kInt64 || r.type() == ValueType::kDouble;
      if (expr.op == '+' && l.type() == ValueType::kString &&
          r.type() == ValueType::kString) {
        return Value(l.AsString() + r.AsString());
      }
      if (!l_num || !r_num) {
        return Status::InvalidArgument("arithmetic on non-numeric values");
      }
      if (l.type() == ValueType::kInt64 && r.type() == ValueType::kInt64) {
        const int64_t a = l.AsInt();
        const int64_t b = r.AsInt();
        switch (expr.op) {
          case '+':
            return Value(a + b);
          case '-':
            return Value(a - b);
          case '*':
            return Value(a * b);
        }
      }
      const double a = l.AsNumeric();
      const double b = r.AsNumeric();
      switch (expr.op) {
        case '+':
          return Value(a + b);
        case '-':
          return Value(a - b);
        case '*':
          return Value(a * b);
      }
      return Status::Internal("bad binary operator");
    }
  }
  return Status::Internal("bad expression kind");
}

bool CompareMatches(CompareOp op, const Value& lhs, const Value& rhs) {
  const int c = lhs.Compare(rhs);
  switch (op) {
    case CompareOp::kEq:
      return c == 0;
    case CompareOp::kNe:
      return c != 0;
    case CompareOp::kLt:
      return c < 0;
    case CompareOp::kLe:
      return c <= 0;
    case CompareOp::kGt:
      return c > 0;
    case CompareOp::kGe:
      return c >= 0;
    case CompareOp::kBetween:
      SCREP_CHECK(false);
  }
  return false;
}

/// Bound WHERE clause: each conjunct's operand expressions evaluated
/// against params (row-independent), ready to test rows.
struct BoundPredicate {
  struct BoundComparison {
    int column_index;
    CompareOp op;
    Value value;
    Value value2;
  };
  std::vector<BoundComparison> conjuncts;

  bool Matches(const Row& row) const {
    for (const BoundComparison& c : conjuncts) {
      const Value& cell = row[static_cast<size_t>(c.column_index)];
      if (c.op == CompareOp::kBetween) {
        if (cell.Compare(c.value) < 0 || cell.Compare(c.value2) > 0) {
          return false;
        }
      } else if (!CompareMatches(c.op, cell, c.value)) {
        return false;
      }
    }
    return true;
  }
};

Result<BoundPredicate> BindPredicate(const Predicate& where,
                                     const std::vector<Value>& params) {
  BoundPredicate bound;
  for (const Comparison& cmp : where.conjuncts) {
    BoundPredicate::BoundComparison bc;
    bc.column_index = cmp.column_index;
    bc.op = cmp.op;
    SCREP_ASSIGN_OR_RETURN(bc.value, Eval(cmp.value, params, nullptr));
    if (cmp.op == CompareOp::kBetween) {
      SCREP_ASSIGN_OR_RETURN(bc.value2, Eval(cmp.value2, params, nullptr));
    }
    bound.conjuncts.push_back(std::move(bc));
  }
  return bound;
}

/// Chosen access path for a bound predicate.
struct AccessPath {
  enum class Kind { kPoint, kRange, kIndexEq, kFullScan } kind =
      Kind::kFullScan;
  int64_t key = 0;         // kPoint
  int64_t lo = 0, hi = 0;  // kRange
  int index_column = -1;   // kIndexEq
  Value index_value;       // kIndexEq
};

AccessPath ChoosePath(const Transaction* txn, TableId table,
                      const BoundPredicate& pred) {
  AccessPath path;
  // Primary-key access beats everything.
  for (const auto& c : pred.conjuncts) {
    if (c.column_index != 0) continue;
    if (c.op == CompareOp::kEq && c.value.type() == ValueType::kInt64) {
      path.kind = AccessPath::Kind::kPoint;
      path.key = c.value.AsInt();
      return path;
    }
    if (c.op == CompareOp::kBetween &&
        c.value.type() == ValueType::kInt64 &&
        c.value2.type() == ValueType::kInt64) {
      path.kind = AccessPath::Kind::kRange;
      path.lo = c.value.AsInt();
      path.hi = c.value2.AsInt();
      return path;
    }
  }
  // Next best: an equality on an indexed secondary column.
  for (const auto& c : pred.conjuncts) {
    if (c.column_index <= 0 || c.op != CompareOp::kEq) continue;
    if (txn->HasIndex(table, c.column_index)) {
      path.kind = AccessPath::Kind::kIndexEq;
      path.index_column = c.column_index;
      path.index_value = c.value;
      return path;
    }
  }
  return path;
}

/// Runs the access path, calling `visit` for each matching (key,row);
/// returns rows examined.
int64_t RunPath(Transaction* txn, TableId table, const AccessPath& path,
                const BoundPredicate& pred,
                const std::function<bool(int64_t, const Row&)>& visit) {
  int64_t examined = 0;
  auto filtered = [&](int64_t key, const Row& row) {
    ++examined;
    if (!pred.Matches(row)) return true;
    return visit(key, row);
  };
  switch (path.kind) {
    case AccessPath::Kind::kPoint: {
      Result<Row> row = txn->Get(table, path.key);
      if (row.ok()) {
        ++examined;
        if (pred.Matches(*row)) visit(path.key, *row);
      }
      break;
    }
    case AccessPath::Kind::kRange:
      txn->ScanRange(table, path.lo, path.hi, filtered);
      break;
    case AccessPath::Kind::kIndexEq:
      txn->IndexScan(table, path.index_column, path.index_value, filtered);
      break;
    case AccessPath::Kind::kFullScan:
      txn->Scan(table, filtered);
      break;
  }
  return examined;
}

Result<ResultSet> ExecuteSelect(Transaction* txn,
                                const PreparedStatement& stmt,
                                const std::vector<Value>& params) {
  const StatementAst& ast = stmt.ast();
  SCREP_ASSIGN_OR_RETURN(BoundPredicate pred,
                         BindPredicate(ast.where, params));
  const AccessPath path = ChoosePath(txn, stmt.table_id(), pred);

  ResultSet rs;
  for (const SelectItem& item : ast.select_items) {
    rs.columns.push_back(item.ToString());
  }

  const bool has_agg =
      !ast.select_items.empty() &&
      std::any_of(ast.select_items.begin(), ast.select_items.end(),
                  [](const SelectItem& i) { return i.agg != AggFunc::kNone; });
  if (has_agg &&
      std::any_of(ast.select_items.begin(), ast.select_items.end(),
                  [](const SelectItem& i) { return i.agg == AggFunc::kNone; })) {
    return Status::NotSupported(
        "mixing aggregates and plain columns (no GROUP BY support)");
  }

  if (has_agg) {
    struct AggState {
      int64_t count = 0;
      double sum = 0.0;
      bool seen = false;
      Value min, max;
    };
    std::vector<AggState> states(ast.select_items.size());
    rs.rows_examined = RunPath(
        txn, stmt.table_id(), path, pred, [&](int64_t, const Row& row) {
          for (size_t i = 0; i < ast.select_items.size(); ++i) {
            const SelectItem& item = ast.select_items[i];
            AggState& st = states[i];
            ++st.count;
            if (item.agg == AggFunc::kCount) continue;
            const Value& v = row[static_cast<size_t>(item.column_index)];
            st.sum += v.AsNumeric();
            if (!st.seen || v < st.min) st.min = v;
            if (!st.seen || v > st.max) st.max = v;
            st.seen = true;
          }
          return true;
        });
    Row out;
    for (size_t i = 0; i < ast.select_items.size(); ++i) {
      const AggState& st = states[i];
      switch (ast.select_items[i].agg) {
        case AggFunc::kCount:
          out.push_back(Value(st.count));
          break;
        case AggFunc::kSum:
          out.push_back(Value(st.sum));
          break;
        case AggFunc::kAvg:
          out.push_back(st.count > 0
                            ? Value(st.sum / static_cast<double>(st.count))
                            : Value());
          break;
        case AggFunc::kMin:
          out.push_back(st.seen ? st.min : Value());
          break;
        case AggFunc::kMax:
          out.push_back(st.seen ? st.max : Value());
          break;
        case AggFunc::kNone:
          break;
      }
    }
    rs.rows.push_back(std::move(out));
    return rs;
  }

  // Plain projection, with optional ORDER BY + LIMIT.
  int64_t limit = -1;
  if (ast.limit) {
    SCREP_ASSIGN_OR_RETURN(Value lv, Eval(*ast.limit, params, nullptr));
    if (lv.type() != ValueType::kInt64 || lv.AsInt() < 0) {
      return Status::InvalidArgument("LIMIT must be a non-negative integer");
    }
    limit = lv.AsInt();
  }

  std::vector<Row> matched;
  const bool can_stop_early = !ast.order_by && limit >= 0;
  rs.rows_examined = RunPath(
      txn, stmt.table_id(), path, pred, [&](int64_t, const Row& row) {
        matched.push_back(row);
        return !(can_stop_early &&
                 matched.size() >= static_cast<size_t>(limit));
      });

  if (ast.order_by) {
    const size_t idx = static_cast<size_t>(ast.order_by->column_index);
    const bool desc = ast.order_by->descending;
    std::stable_sort(matched.begin(), matched.end(),
                     [idx, desc](const Row& a, const Row& b) {
                       const int c = a[idx].Compare(b[idx]);
                       return desc ? c > 0 : c < 0;
                     });
  }
  if (limit >= 0 && matched.size() > static_cast<size_t>(limit)) {
    matched.resize(static_cast<size_t>(limit));
  }
  for (Row& row : matched) {
    Row projected;
    projected.reserve(ast.select_items.size());
    for (const SelectItem& item : ast.select_items) {
      projected.push_back(row[static_cast<size_t>(item.column_index)]);
    }
    rs.rows.push_back(std::move(projected));
  }
  return rs;
}

Result<ResultSet> ExecuteUpdate(Transaction* txn,
                                const PreparedStatement& stmt,
                                const std::vector<Value>& params) {
  const StatementAst& ast = stmt.ast();
  SCREP_ASSIGN_OR_RETURN(BoundPredicate pred,
                         BindPredicate(ast.where, params));
  const AccessPath path = ChoosePath(txn, stmt.table_id(), pred);

  // Materialize matches first: mutating while scanning would invalidate
  // the merge iterator over the write buffer.
  std::vector<std::pair<int64_t, Row>> matches;
  ResultSet rs;
  rs.rows_examined = RunPath(txn, stmt.table_id(), path, pred,
                             [&](int64_t key, const Row& row) {
                               matches.emplace_back(key, row);
                               return true;
                             });
  for (auto& [key, row] : matches) {
    Row updated = row;
    for (size_t i = 0; i < ast.assignments.size(); ++i) {
      SCREP_ASSIGN_OR_RETURN(Value v,
                             Eval(ast.assignments[i].second, params, &row));
      updated[static_cast<size_t>(ast.assignment_indexes[i])] = std::move(v);
    }
    SCREP_RETURN_NOT_OK(txn->Update(stmt.table_id(), key, std::move(updated)));
    ++rs.rows_affected;
  }
  return rs;
}

Result<ResultSet> ExecuteInsert(Transaction* txn,
                                const PreparedStatement& stmt,
                                const std::vector<Value>& params) {
  const StatementAst& ast = stmt.ast();
  Row row;
  row.reserve(ast.insert_values.size());
  for (const Expr& e : ast.insert_values) {
    SCREP_ASSIGN_OR_RETURN(Value v, Eval(e, params, nullptr));
    row.push_back(std::move(v));
  }
  SCREP_RETURN_NOT_OK(txn->Insert(stmt.table_id(), std::move(row)));
  ResultSet rs;
  rs.rows_affected = 1;
  rs.rows_examined = 1;
  return rs;
}

Result<ResultSet> ExecuteDelete(Transaction* txn,
                                const PreparedStatement& stmt,
                                const std::vector<Value>& params) {
  const StatementAst& ast = stmt.ast();
  SCREP_ASSIGN_OR_RETURN(BoundPredicate pred,
                         BindPredicate(ast.where, params));
  const AccessPath path = ChoosePath(txn, stmt.table_id(), pred);
  std::vector<int64_t> keys;
  ResultSet rs;
  rs.rows_examined = RunPath(txn, stmt.table_id(), path, pred,
                             [&](int64_t key, const Row&) {
                               keys.push_back(key);
                               return true;
                             });
  for (int64_t key : keys) {
    SCREP_RETURN_NOT_OK(txn->Delete(stmt.table_id(), key));
    ++rs.rows_affected;
  }
  return rs;
}

}  // namespace

std::string ResultSet::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out += " | ";
    out += columns[i];
  }
  out += "\n";
  for (const Row& row : rows) {
    out += RowToString(row);
    out += "\n";
  }
  if (columns.empty()) {
    out = std::to_string(rows_affected) + " row(s) affected\n";
  }
  return out;
}

Result<ResultSet> Execute(Transaction* txn, const PreparedStatement& stmt,
                          const std::vector<Value>& params) {
  if (static_cast<int>(params.size()) != stmt.param_count()) {
    return Status::InvalidArgument(
        "statement needs " + std::to_string(stmt.param_count()) +
        " parameter(s), got " + std::to_string(params.size()));
  }
  switch (stmt.ast().kind) {
    case StatementKind::kSelect:
      return ExecuteSelect(txn, stmt, params);
    case StatementKind::kUpdate:
      return ExecuteUpdate(txn, stmt, params);
    case StatementKind::kInsert:
      return ExecuteInsert(txn, stmt, params);
    case StatementKind::kDelete:
      return ExecuteDelete(txn, stmt, params);
  }
  return Status::Internal("bad statement kind");
}

}  // namespace screp::sql
