#include "sql/executor.h"

#include <algorithm>
#include <optional>

#include "common/logging.h"
#include "sql/plan.h"

namespace screp::sql {

namespace {

/// Fresh (per-execution) predicate binder — the pre-plan-cache path, kept
/// verbatim as the A/B baseline and the epoch-mismatch / cache-off
/// fallback's reference behavior.
Result<BoundPredicate> BindPredicateFresh(const Predicate& where,
                                          const std::vector<Value>& params) {
  BoundPredicate bound;
  for (const Comparison& cmp : where.conjuncts) {
    BoundPredicate::BoundComparison bc;
    bc.column_index = cmp.column_index;
    bc.op = cmp.op;
    SCREP_ASSIGN_OR_RETURN(bc.value, EvalExpr(cmp.value, params, nullptr));
    if (cmp.op == CompareOp::kBetween) {
      SCREP_ASSIGN_OR_RETURN(bc.value2, EvalExpr(cmp.value2, params, nullptr));
    }
    bound.conjuncts.push_back(std::move(bc));
  }
  return bound;
}

/// Fresh access-path chooser (the pre-plan-cache path).
AccessPath ChoosePathFresh(const Transaction* txn, TableId table,
                           const BoundPredicate& pred) {
  AccessPath path;
  // Primary-key access beats everything.
  for (const auto& c : pred.conjuncts) {
    if (c.column_index != 0) continue;
    if (c.op == CompareOp::kEq && c.value.type() == ValueType::kInt64) {
      path.kind = AccessPath::Kind::kPoint;
      path.key = c.value.AsInt();
      return path;
    }
    if (c.op == CompareOp::kBetween &&
        c.value.type() == ValueType::kInt64 &&
        c.value2.type() == ValueType::kInt64) {
      path.kind = AccessPath::Kind::kRange;
      path.lo = c.value.AsInt();
      path.hi = c.value2.AsInt();
      return path;
    }
  }
  // Next best: an equality on an indexed secondary column.
  for (const auto& c : pred.conjuncts) {
    if (c.column_index <= 0 || c.op != CompareOp::kEq) continue;
    if (txn->HasIndex(table, c.column_index)) {
      path.kind = AccessPath::Kind::kIndexEq;
      path.index_column = c.column_index;
      path.index_value = c.value;
      return path;
    }
  }
  return path;
}

/// Binds the predicate and picks the access path — through the cached
/// plan when one is supplied, through the fresh path otherwise.
Status BindAndChoose(Transaction* txn, const PreparedStatement& stmt,
                     const std::vector<Value>& params,
                     const ExecutionPlan* plan, BoundPredicate* pred,
                     AccessPath* path) {
  if (plan != nullptr) {
    SCREP_RETURN_NOT_OK(plan->BindPredicate(params, pred));
    *path = plan->ChoosePath(*pred);
    return Status::OK();
  }
  SCREP_ASSIGN_OR_RETURN(*pred,
                         BindPredicateFresh(stmt.ast().where, params));
  *path = ChoosePathFresh(txn, stmt.table_id(), *pred);
  return Status::OK();
}

/// Runs the access path, calling `visit` for each matching (key,row);
/// returns rows examined.
int64_t RunPath(Transaction* txn, TableId table, const AccessPath& path,
                const BoundPredicate& pred,
                const std::function<bool(int64_t, const Row&)>& visit) {
  int64_t examined = 0;
  auto filtered = [&](int64_t key, const Row& row) {
    ++examined;
    if (!pred.Matches(row)) return true;
    return visit(key, row);
  };
  switch (path.kind) {
    case AccessPath::Kind::kPoint: {
      Result<Row> row = txn->Get(table, path.key);
      if (row.ok()) {
        ++examined;
        if (pred.Matches(*row)) visit(path.key, *row);
      }
      break;
    }
    case AccessPath::Kind::kRange:
      txn->ScanRange(table, path.lo, path.hi, filtered);
      break;
    case AccessPath::Kind::kIndexEq:
      txn->IndexScan(table, path.index_column, path.index_value, filtered);
      break;
    case AccessPath::Kind::kFullScan:
      txn->Scan(table, filtered);
      break;
  }
  return examined;
}

Result<ResultSet> ExecuteSelect(Transaction* txn,
                                const PreparedStatement& stmt,
                                const std::vector<Value>& params,
                                const ExecutionPlan* plan) {
  const StatementAst& ast = stmt.ast();
  BoundPredicate pred;
  AccessPath path;
  SCREP_RETURN_NOT_OK(BindAndChoose(txn, stmt, params, plan, &pred, &path));

  ResultSet rs;
  bool has_agg;
  bool mixed_agg;
  if (plan != nullptr) {
    rs.columns = plan->column_labels();
    has_agg = plan->has_agg();
    mixed_agg = plan->mixed_agg();
  } else {
    for (const SelectItem& item : ast.select_items) {
      rs.columns.push_back(item.ToString());
    }
    has_agg =
        !ast.select_items.empty() &&
        std::any_of(ast.select_items.begin(), ast.select_items.end(),
                    [](const SelectItem& i) { return i.agg != AggFunc::kNone; });
    mixed_agg =
        has_agg &&
        std::any_of(ast.select_items.begin(), ast.select_items.end(),
                    [](const SelectItem& i) { return i.agg == AggFunc::kNone; });
  }
  if (mixed_agg) {
    return Status::NotSupported(
        "mixing aggregates and plain columns (no GROUP BY support)");
  }

  if (has_agg) {
    struct AggState {
      int64_t count = 0;
      double sum = 0.0;
      bool seen = false;
      Value min, max;
    };
    std::vector<AggState> states(ast.select_items.size());
    rs.rows_examined = RunPath(
        txn, stmt.table_id(), path, pred, [&](int64_t, const Row& row) {
          for (size_t i = 0; i < ast.select_items.size(); ++i) {
            const SelectItem& item = ast.select_items[i];
            AggState& st = states[i];
            ++st.count;
            if (item.agg == AggFunc::kCount) continue;
            const Value& v = row[static_cast<size_t>(item.column_index)];
            st.sum += v.AsNumeric();
            if (!st.seen || v < st.min) st.min = v;
            if (!st.seen || v > st.max) st.max = v;
            st.seen = true;
          }
          return true;
        });
    Row out;
    for (size_t i = 0; i < ast.select_items.size(); ++i) {
      const AggState& st = states[i];
      switch (ast.select_items[i].agg) {
        case AggFunc::kCount:
          out.push_back(Value(st.count));
          break;
        case AggFunc::kSum:
          out.push_back(Value(st.sum));
          break;
        case AggFunc::kAvg:
          out.push_back(st.count > 0
                            ? Value(st.sum / static_cast<double>(st.count))
                            : Value());
          break;
        case AggFunc::kMin:
          out.push_back(st.seen ? st.min : Value());
          break;
        case AggFunc::kMax:
          out.push_back(st.seen ? st.max : Value());
          break;
        case AggFunc::kNone:
          break;
      }
    }
    rs.rows.push_back(std::move(out));
    return rs;
  }

  // Plain projection, with optional ORDER BY + LIMIT.
  int64_t limit = -1;
  if (ast.limit) {
    Value lv;
    if (plan != nullptr) {
      SCREP_RETURN_NOT_OK(plan->BindSource(plan->limit(), params, &lv));
    } else {
      SCREP_ASSIGN_OR_RETURN(lv, EvalExpr(*ast.limit, params, nullptr));
    }
    if (lv.type() != ValueType::kInt64 || lv.AsInt() < 0) {
      return Status::InvalidArgument("LIMIT must be a non-negative integer");
    }
    limit = lv.AsInt();
  }

  std::vector<Row> matched;
  const bool can_stop_early = !ast.order_by && limit >= 0;
  rs.rows_examined = RunPath(
      txn, stmt.table_id(), path, pred, [&](int64_t, const Row& row) {
        matched.push_back(row);
        return !(can_stop_early &&
                 matched.size() >= static_cast<size_t>(limit));
      });

  if (ast.order_by) {
    const size_t idx = static_cast<size_t>(ast.order_by->column_index);
    const bool desc = ast.order_by->descending;
    std::stable_sort(matched.begin(), matched.end(),
                     [idx, desc](const Row& a, const Row& b) {
                       const int c = a[idx].Compare(b[idx]);
                       return desc ? c > 0 : c < 0;
                     });
  }
  if (limit >= 0 && matched.size() > static_cast<size_t>(limit)) {
    matched.resize(static_cast<size_t>(limit));
  }
  for (Row& row : matched) {
    Row projected;
    projected.reserve(ast.select_items.size());
    for (const SelectItem& item : ast.select_items) {
      projected.push_back(row[static_cast<size_t>(item.column_index)]);
    }
    rs.rows.push_back(std::move(projected));
  }
  return rs;
}

Result<ResultSet> ExecuteUpdate(Transaction* txn,
                                const PreparedStatement& stmt,
                                const std::vector<Value>& params,
                                const ExecutionPlan* plan) {
  const StatementAst& ast = stmt.ast();
  BoundPredicate pred;
  AccessPath path;
  SCREP_RETURN_NOT_OK(BindAndChoose(txn, stmt, params, plan, &pred, &path));

  // Row-independent assignment values (literals, bare parameters) bind
  // once up front instead of re-evaluating per matched row.
  std::vector<std::optional<Value>> prebound;
  if (plan != nullptr) {
    prebound.resize(plan->assignment_sources().size());
    for (size_t i = 0; i < plan->assignment_sources().size(); ++i) {
      const ValueSource& src = plan->assignment_sources()[i];
      if (!src.RowIndependent()) continue;
      Value v;
      SCREP_RETURN_NOT_OK(plan->BindSource(src, params, &v));
      prebound[i] = std::move(v);
    }
  }

  // Materialize matches first: mutating while scanning would invalidate
  // the merge iterator over the write buffer.
  std::vector<std::pair<int64_t, Row>> matches;
  ResultSet rs;
  rs.rows_examined = RunPath(txn, stmt.table_id(), path, pred,
                             [&](int64_t key, const Row& row) {
                               matches.emplace_back(key, row);
                               return true;
                             });
  for (auto& [key, row] : matches) {
    Row updated = row;
    for (size_t i = 0; i < ast.assignments.size(); ++i) {
      Value v;
      if (i < prebound.size() && prebound[i].has_value()) {
        v = *prebound[i];
      } else {
        SCREP_ASSIGN_OR_RETURN(v,
                               EvalExpr(ast.assignments[i].second, params, &row));
      }
      updated[static_cast<size_t>(ast.assignment_indexes[i])] = std::move(v);
    }
    SCREP_RETURN_NOT_OK(txn->Update(stmt.table_id(), key, std::move(updated)));
    ++rs.rows_affected;
  }
  return rs;
}

Result<ResultSet> ExecuteInsert(Transaction* txn,
                                const PreparedStatement& stmt,
                                const std::vector<Value>& params,
                                const ExecutionPlan* plan) {
  const StatementAst& ast = stmt.ast();
  Row row;
  row.reserve(ast.insert_values.size());
  if (plan != nullptr) {
    for (const ValueSource& src : plan->insert_sources()) {
      Value v;
      SCREP_RETURN_NOT_OK(plan->BindSource(src, params, &v));
      row.push_back(std::move(v));
    }
  } else {
    for (const Expr& e : ast.insert_values) {
      SCREP_ASSIGN_OR_RETURN(Value v, EvalExpr(e, params, nullptr));
      row.push_back(std::move(v));
    }
  }
  SCREP_RETURN_NOT_OK(txn->Insert(stmt.table_id(), std::move(row)));
  ResultSet rs;
  rs.rows_affected = 1;
  rs.rows_examined = 1;
  return rs;
}

Result<ResultSet> ExecuteDelete(Transaction* txn,
                                const PreparedStatement& stmt,
                                const std::vector<Value>& params,
                                const ExecutionPlan* plan) {
  BoundPredicate pred;
  AccessPath path;
  SCREP_RETURN_NOT_OK(BindAndChoose(txn, stmt, params, plan, &pred, &path));
  std::vector<int64_t> keys;
  ResultSet rs;
  rs.rows_examined = RunPath(txn, stmt.table_id(), path, pred,
                             [&](int64_t key, const Row&) {
                               keys.push_back(key);
                               return true;
                             });
  for (int64_t key : keys) {
    SCREP_RETURN_NOT_OK(txn->Delete(stmt.table_id(), key));
    ++rs.rows_affected;
  }
  return rs;
}

/// Resolves which plan (if any) drives this execution: the statement's
/// cached plan when the cache is on and the catalog epoch still matches;
/// a transient fresh plan on an epoch mismatch (index availability
/// changed since Prepare); nullptr — the original per-execution path —
/// when the cache is globally off.
const ExecutionPlan* ResolvePlan(Transaction* txn,
                                 const PreparedStatement& stmt,
                                 std::optional<ExecutionPlan>* transient) {
  if (!PlanCacheEnabled()) return nullptr;
  const ExecutionPlan* plan = stmt.plan();
  if (plan == nullptr) return nullptr;
  const uint64_t epoch = txn->CatalogEpoch();
  if (plan->catalog_epoch() == epoch) return plan;
  transient->emplace(ExecutionPlan::Build(
      stmt.ast(), stmt.table_id(),
      [txn](TableId t, int c) { return txn->HasIndex(t, c); }, epoch));
  return &**transient;
}

}  // namespace

std::string ResultSet::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out += " | ";
    out += columns[i];
  }
  out += "\n";
  for (const Row& row : rows) {
    out += RowToString(row);
    out += "\n";
  }
  if (columns.empty()) {
    out = std::to_string(rows_affected) + " row(s) affected\n";
  }
  return out;
}

Result<ResultSet> Execute(Transaction* txn, const PreparedStatement& stmt,
                          const std::vector<Value>& params) {
  if (static_cast<int>(params.size()) != stmt.param_count()) {
    return Status::InvalidArgument(
        "statement needs " + std::to_string(stmt.param_count()) +
        " parameter(s), got " + std::to_string(params.size()));
  }
  std::optional<ExecutionPlan> transient;
  const ExecutionPlan* plan = ResolvePlan(txn, stmt, &transient);
  switch (stmt.ast().kind) {
    case StatementKind::kSelect:
      return ExecuteSelect(txn, stmt, params, plan);
    case StatementKind::kUpdate:
      return ExecuteUpdate(txn, stmt, params, plan);
    case StatementKind::kInsert:
      return ExecuteInsert(txn, stmt, params, plan);
    case StatementKind::kDelete:
      return ExecuteDelete(txn, stmt, params, plan);
  }
  return Status::Internal("bad statement kind");
}

Result<std::string> ExplainAccessPath(Transaction* txn,
                                      const PreparedStatement& stmt,
                                      const std::vector<Value>& params) {
  if (static_cast<int>(params.size()) != stmt.param_count()) {
    return Status::InvalidArgument(
        "statement needs " + std::to_string(stmt.param_count()) +
        " parameter(s), got " + std::to_string(params.size()));
  }
  if (stmt.ast().kind == StatementKind::kInsert) {
    return std::string("insert");
  }
  std::optional<ExecutionPlan> transient;
  const ExecutionPlan* plan = ResolvePlan(txn, stmt, &transient);
  BoundPredicate pred;
  AccessPath path;
  SCREP_RETURN_NOT_OK(BindAndChoose(txn, stmt, params, plan, &pred, &path));
  return path.ToString();
}

}  // namespace screp::sql
