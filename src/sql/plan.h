// Cached execution plans for prepared statements.
//
// Executing a prepared statement used to re-derive everything about its
// shape on every call: evaluate the WHERE bounds through the general
// expression walker, re-run access-path selection, rebuild the projected
// column labels, and re-scan the select list for aggregates.  All of that
// is a function of the statement text and the catalog, not of the bound
// parameters — so an ExecutionPlan hoists it to Prepare time and the
// per-execution work collapses to bind-and-run.
//
// The only planning input that can change between Prepare and Execute is
// index availability, so a plan records the database's catalog epoch at
// build time; on a mismatch the executor plans afresh for that execution
// (a transient plan) rather than using the stale one.
//
// Access-path choice depends on the *values* bound at execution (a `?` on
// the primary key only becomes a point lookup when an integer is bound),
// so the plan stores the ordered candidate list the old per-execution
// chooser would have considered, and the final pick validates the bound
// values against each candidate in order.

#ifndef SCREP_SQL_PLAN_H_
#define SCREP_SQL_PLAN_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "sql/ast.h"
#include "storage/value.h"

namespace screp {
class Transaction;
}

namespace screp::sql {

/// Evaluates an expression; `row` may be nullptr when no row context
/// exists (INSERT values, WHERE bounds).
Result<Value> EvalExpr(const Expr& expr, const std::vector<Value>& params,
                       const Row* row);

/// Row-level comparison for a non-BETWEEN operator.
bool CompareMatches(CompareOp op, const Value& lhs, const Value& rhs);

/// Bound WHERE clause: each conjunct's operand expressions evaluated
/// against params (row-independent), ready to test rows.
struct BoundPredicate {
  struct BoundComparison {
    int column_index;
    CompareOp op;
    Value value;
    Value value2;
  };
  std::vector<BoundComparison> conjuncts;

  bool Matches(const Row& row) const;
};

/// Chosen access path for a bound predicate.
struct AccessPath {
  enum class Kind { kPoint, kRange, kIndexEq, kFullScan } kind =
      Kind::kFullScan;
  int64_t key = 0;         // kPoint
  int64_t lo = 0, hi = 0;  // kRange
  int index_column = -1;   // kIndexEq
  Value index_value;       // kIndexEq

  /// "point(5)", "range(3,9)", "index_eq(col 2)" or "full_scan" — for
  /// EXPLAIN output and plan-equivalence tests.
  std::string ToString() const;
};

/// Where one operand's value comes from at execution time.  Literals are
/// prebound at plan build; direct `?` references copy the bound parameter
/// without touching the expression walker; anything else (arithmetic,
/// column references) falls back to EvalExpr.
struct ValueSource {
  enum class Kind { kLiteral, kParam, kExpr } kind = Kind::kLiteral;
  Value literal;               // kLiteral
  int param_index = -1;        // kParam
  const Expr* expr = nullptr;  // kExpr — points into the owning statement's AST

  /// True when the value does not depend on the current row.
  bool RowIndependent() const { return kind != Kind::kExpr; }
};

/// Everything about a statement's execution that does not depend on the
/// bound parameter values, derived once from the AST and the catalog.
///
/// A plan borrows Expr pointers from the StatementAst it was built from,
/// so it must not outlive that AST (PreparedStatement owns both).
class ExecutionPlan {
 public:
  /// Answers "does `table`.`column` have a secondary index?" against
  /// whichever catalog view the caller has (Database at Prepare time,
  /// Transaction for a transient re-plan).
  using IndexProbe = std::function<bool(TableId, int)>;

  static ExecutionPlan Build(const StatementAst& ast, TableId table,
                             const IndexProbe& has_index,
                             uint64_t catalog_epoch);

  /// Binds the WHERE conjuncts against `params`.  Matches the fresh
  /// binder's results and error behavior exactly.
  Status BindPredicate(const std::vector<Value>& params,
                       BoundPredicate* out) const;

  /// Picks the access path for bound values: the first stored candidate
  /// the values validate against, in the fresh chooser's preference
  /// order (primary key first, then indexed secondary equality).
  AccessPath ChoosePath(const BoundPredicate& pred) const;

  /// Binds one value source (LIMIT, INSERT value, assignment RHS).
  Status BindSource(const ValueSource& src, const std::vector<Value>& params,
                    Value* out) const;

  uint64_t catalog_epoch() const { return catalog_epoch_; }
  const std::vector<std::string>& column_labels() const {
    return column_labels_;
  }
  bool has_agg() const { return has_agg_; }
  bool mixed_agg() const { return mixed_agg_; }
  bool has_limit() const { return has_limit_; }
  const ValueSource& limit() const { return limit_; }
  const std::vector<ValueSource>& insert_sources() const {
    return insert_sources_;
  }
  const std::vector<ValueSource>& assignment_sources() const {
    return assignment_sources_;
  }

 private:
  /// One access-path candidate the value-dependent chooser considers.
  struct PathCandidate {
    enum class Kind { kPoint, kRange, kIndexEq } kind;
    size_t conjunct;  // index into conjuncts_
  };

  struct PlanConjunct {
    int column_index;
    CompareOp op;
    ValueSource value;
    ValueSource value2;  // BETWEEN upper bound
  };

  uint64_t catalog_epoch_ = 0;
  std::vector<PlanConjunct> conjuncts_;
  std::vector<PathCandidate> candidates_;
  std::vector<std::string> column_labels_;  // SELECT projection labels
  bool has_agg_ = false;
  bool mixed_agg_ = false;  // surfaced as NotSupported at Execute
  bool has_limit_ = false;
  ValueSource limit_;
  std::vector<ValueSource> insert_sources_;
  std::vector<ValueSource> assignment_sources_;
};

/// Global plan-cache switch (default on).  When off, Execute re-derives
/// the plan per call through the original fresh path — the A/B baseline
/// for the hot-path benchmark and the equivalence tests.
bool PlanCacheEnabled();
void SetPlanCacheEnabled(bool enabled);

}  // namespace screp::sql

#endif  // SCREP_SQL_PLAN_H_
