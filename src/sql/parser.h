// Recursive-descent parser for the mini-SQL dialect.

#ifndef SCREP_SQL_PARSER_H_
#define SCREP_SQL_PARSER_H_

#include <string>

#include "common/status.h"
#include "sql/ast.h"

namespace screp::sql {

/// Parses a single statement. On success the AST's `param_count` reflects
/// the number of `?` placeholders (numbered left to right).
Result<StatementAst> Parse(const std::string& text);

}  // namespace screp::sql

#endif  // SCREP_SQL_PARSER_H_
