// Token definitions for the mini-SQL dialect.
//
// The dialect covers what the paper's workloads need from SQL Server:
// single-table SELECT (with aggregates, ORDER BY, LIMIT), UPDATE, INSERT
// and DELETE, all as prepared statements with `?` parameters.  The
// middleware's fine-grained consistency scheme relies on *statically*
// extracting the table-set from these statements (paper §III-C), which is
// why this layer exists as real parsed SQL rather than opaque callbacks.

#ifndef SCREP_SQL_TOKEN_H_
#define SCREP_SQL_TOKEN_H_

#include <string>

namespace screp::sql {

/// Lexical token kinds.
enum class TokenType {
  kIdentifier,   // table / column names (also non-reserved words)
  kKeyword,      // SELECT, FROM, WHERE, ...
  kInteger,      // 42
  kFloat,        // 3.5
  kString,       // 'abc'
  kParam,        // ?
  kComma,        // ,
  kLParen,       // (
  kRParen,       // )
  kStar,         // *
  kPlus,         // +
  kMinus,        // -
  kEq,           // =
  kNe,           // <>
  kLt,           // <
  kLe,           // <=
  kGt,           // >
  kGe,           // >=
  kEnd,          // end of input
};

/// One lexical token. Keywords are uppercased in `text`; identifiers are
/// lowercased (the dialect is case-insensitive, like SQL).
struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;
  int64_t int_value = 0;
  double float_value = 0.0;
  size_t position = 0;  ///< byte offset in the statement text (diagnostics)
};

/// Name of a token type for diagnostics.
const char* TokenTypeName(TokenType type);

/// True when `word` (already uppercased) is a reserved keyword.
bool IsKeyword(const std::string& upper_word);

}  // namespace screp::sql

#endif  // SCREP_SQL_TOKEN_H_
