// Statement execution against a snapshot-isolated Transaction.
//
// Access-path selection is deliberately simple (this models a replica's
// local DBMS, not a query optimizer): an equality conjunct on the primary
// key becomes a point lookup, a BETWEEN on the key becomes a range scan,
// anything else is a filtered full scan.  The executor reports rows
// examined so the simulator can charge realistic service time.

#ifndef SCREP_SQL_EXECUTOR_H_
#define SCREP_SQL_EXECUTOR_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sql/statement.h"
#include "storage/transaction.h"

namespace screp::sql {

/// The outcome of executing one statement.
struct ResultSet {
  /// Projected column labels (SELECT only).
  std::vector<std::string> columns;
  /// Result rows (SELECT only).
  std::vector<Row> rows;
  /// Records written (UPDATE/INSERT/DELETE only).
  int64_t rows_affected = 0;
  /// Rows the access path visited — the cost-model input.
  int64_t rows_examined = 0;

  std::string ToString() const;
};

/// Executes a prepared statement within `txn` with positional `params`.
///
/// With the plan cache on (the default) execution is bind-and-run against
/// the statement's plan built at Prepare; the per-call planning work is
/// only re-done when the catalog epoch moved (an index was created since
/// Prepare) or when the cache is globally disabled (sql/plan.h).
///
/// Errors: InvalidArgument for arity/type mismatches, NotFound /
/// AlreadyExists surfaced from DML, NotSupported for unsupported shapes.
Result<ResultSet> Execute(Transaction* txn, const PreparedStatement& stmt,
                          const std::vector<Value>& params);

/// The access path Execute would use for these bound parameters —
/// "point(5)", "range(3,9)", "index_eq(col 2)", "full_scan", or "insert".
/// Honors the plan-cache switch, so cached-vs-fresh equivalence tests can
/// compare choices directly.
Result<std::string> ExplainAccessPath(Transaction* txn,
                                      const PreparedStatement& stmt,
                                      const std::vector<Value>& params);

}  // namespace screp::sql

#endif  // SCREP_SQL_EXECUTOR_H_
