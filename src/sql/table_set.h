// Static table-set extraction — the workload information exploited by the
// lazy fine-grained scheme (paper §III-C / §IV-B).
//
// In an automated environment the set of transactions is predefined, so
// the tables each transaction type touches can be extracted once, stored
// in the database, and looked up by the load balancer when a client tags a
// request with its transaction type id.

#ifndef SCREP_SQL_TABLE_SET_H_
#define SCREP_SQL_TABLE_SET_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "sql/statement.h"

namespace screp::sql {

/// Extracts the sorted distinct table names referenced by raw SQL texts
/// (parses each; fails if any text does not parse). This is the purely
/// static path — no catalog needed.
Result<std::vector<std::string>> ExtractTableSet(
    const std::vector<std::string>& statement_texts);

/// Registry of prepared transaction types; the replicated system stores
/// its content in a catalog table (`sys_tablesets`) that the load balancer
/// reads at startup, as described in §IV-B.
class TransactionRegistry {
 public:
  /// Registers a transaction type; returns its dense TxnTypeId.
  TxnTypeId Register(PreparedTransaction txn);

  /// Looks up by id. Pre-condition: id was returned by Register.
  const PreparedTransaction& Get(TxnTypeId id) const;

  /// Looks up by name; NotFound when absent.
  Result<TxnTypeId> Find(const std::string& name) const;

  size_t size() const { return transactions_.size(); }

  /// Writes one row per transaction type into the catalog table
  /// `sys_tablesets(id, name, tables)` of `db`, creating it if necessary.
  Status PersistCatalog(Database* db) const;

  /// Reads the catalog table back into a map id -> table names — the load
  /// balancer's startup query ("the load balancer queries the database
  /// once to retrieve this information").
  static Result<std::unordered_map<TxnTypeId, std::vector<std::string>>>
  LoadCatalog(const Database& db);

 private:
  std::vector<PreparedTransaction> transactions_;
  std::unordered_map<std::string, TxnTypeId> by_name_;
};

}  // namespace screp::sql

#endif  // SCREP_SQL_TABLE_SET_H_
