#include "sql/table_set.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"
#include "sql/parser.h"

namespace screp::sql {

Result<std::vector<std::string>> ExtractTableSet(
    const std::vector<std::string>& statement_texts) {
  std::vector<std::string> tables;
  for (const std::string& text : statement_texts) {
    SCREP_ASSIGN_OR_RETURN(StatementAst ast, Parse(text));
    if (std::find(tables.begin(), tables.end(), ast.table) == tables.end()) {
      tables.push_back(ast.table);
    }
  }
  std::sort(tables.begin(), tables.end());
  return tables;
}

TxnTypeId TransactionRegistry::Register(PreparedTransaction txn) {
  const TxnTypeId id = static_cast<TxnTypeId>(transactions_.size());
  txn.type_id = id;
  SCREP_CHECK_MSG(by_name_.count(txn.name) == 0,
                  "duplicate transaction type '" << txn.name << "'");
  by_name_[txn.name] = id;
  transactions_.push_back(std::move(txn));
  return id;
}

const PreparedTransaction& TransactionRegistry::Get(TxnTypeId id) const {
  SCREP_CHECK_MSG(id >= 0 && static_cast<size_t>(id) < transactions_.size(),
                  "bad transaction type id " << id);
  return transactions_[static_cast<size_t>(id)];
}

Result<TxnTypeId> TransactionRegistry::Find(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("transaction type '" + name + "'");
  }
  return it->second;
}

Status TransactionRegistry::PersistCatalog(Database* db) const {
  Result<TableId> existing = db->FindTable("sys_tablesets");
  TableId catalog;
  if (existing.ok()) {
    catalog = *existing;
  } else {
    SCREP_ASSIGN_OR_RETURN(
        catalog,
        db->CreateTable("sys_tablesets",
                        Schema({{"id", ValueType::kInt64},
                                {"name", ValueType::kString},
                                {"tables", ValueType::kString}})));
  }
  for (const PreparedTransaction& txn : transactions_) {
    std::string joined;
    for (const std::string& t : txn.TableSet()) {
      if (!joined.empty()) joined += ",";
      joined += t;
    }
    SCREP_RETURN_NOT_OK(db->BulkLoad(
        catalog,
        Row{Value(static_cast<int64_t>(txn.type_id)), Value(txn.name),
            Value(joined)}));
  }
  return Status::OK();
}

Result<std::unordered_map<TxnTypeId, std::vector<std::string>>>
TransactionRegistry::LoadCatalog(const Database& db) {
  SCREP_ASSIGN_OR_RETURN(TableId catalog, db.FindTable("sys_tablesets"));
  std::unordered_map<TxnTypeId, std::vector<std::string>> result;
  db.table(catalog)->Scan(
      db.CommittedVersion(), [&](int64_t key, const Row& row) {
        std::vector<std::string> tables;
        std::stringstream ss(row[2].AsString());
        std::string item;
        while (std::getline(ss, item, ',')) {
          if (!item.empty()) tables.push_back(item);
        }
        result[static_cast<TxnTypeId>(key)] = std::move(tables);
        return true;
      });
  return result;
}

}  // namespace screp::sql
