#include "sql/plan.h"

#include "common/logging.h"

namespace screp::sql {

namespace {

bool g_plan_cache_enabled = true;

/// Classifies one operand expression into its execution-time source.
ValueSource Classify(const Expr& expr) {
  ValueSource src;
  if (expr.kind == Expr::Kind::kLiteral) {
    src.kind = ValueSource::Kind::kLiteral;
    src.literal = expr.literal;
  } else if (expr.kind == Expr::Kind::kParam) {
    src.kind = ValueSource::Kind::kParam;
    src.param_index = expr.param_index;
  } else {
    src.kind = ValueSource::Kind::kExpr;
    src.expr = &expr;
  }
  return src;
}

}  // namespace

bool PlanCacheEnabled() { return g_plan_cache_enabled; }
void SetPlanCacheEnabled(bool enabled) { g_plan_cache_enabled = enabled; }

Result<Value> EvalExpr(const Expr& expr, const std::vector<Value>& params,
                       const Row* row) {
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      return expr.literal;
    case Expr::Kind::kParam:
      if (expr.param_index < 0 ||
          static_cast<size_t>(expr.param_index) >= params.size()) {
        return Status::InvalidArgument(
            "parameter " + std::to_string(expr.param_index + 1) +
            " not bound");
      }
      return params[static_cast<size_t>(expr.param_index)];
    case Expr::Kind::kColumn:
      if (row == nullptr) {
        return Status::InvalidArgument("column '" + expr.column +
                                       "' referenced without row context");
      }
      SCREP_CHECK(expr.column_index >= 0);
      if (static_cast<size_t>(expr.column_index) >= row->size()) {
        return Status::Internal("column index out of range");
      }
      return (*row)[static_cast<size_t>(expr.column_index)];
    case Expr::Kind::kBinary: {
      SCREP_ASSIGN_OR_RETURN(Value l, EvalExpr(*expr.lhs, params, row));
      SCREP_ASSIGN_OR_RETURN(Value r, EvalExpr(*expr.rhs, params, row));
      const bool l_num =
          l.type() == ValueType::kInt64 || l.type() == ValueType::kDouble;
      const bool r_num =
          r.type() == ValueType::kInt64 || r.type() == ValueType::kDouble;
      if (expr.op == '+' && l.type() == ValueType::kString &&
          r.type() == ValueType::kString) {
        return Value(l.AsString() + r.AsString());
      }
      if (!l_num || !r_num) {
        return Status::InvalidArgument("arithmetic on non-numeric values");
      }
      if (l.type() == ValueType::kInt64 && r.type() == ValueType::kInt64) {
        const int64_t a = l.AsInt();
        const int64_t b = r.AsInt();
        switch (expr.op) {
          case '+':
            return Value(a + b);
          case '-':
            return Value(a - b);
          case '*':
            return Value(a * b);
        }
      }
      const double a = l.AsNumeric();
      const double b = r.AsNumeric();
      switch (expr.op) {
        case '+':
          return Value(a + b);
        case '-':
          return Value(a - b);
        case '*':
          return Value(a * b);
      }
      return Status::Internal("bad binary operator");
    }
  }
  return Status::Internal("bad expression kind");
}

bool CompareMatches(CompareOp op, const Value& lhs, const Value& rhs) {
  const int c = lhs.Compare(rhs);
  switch (op) {
    case CompareOp::kEq:
      return c == 0;
    case CompareOp::kNe:
      return c != 0;
    case CompareOp::kLt:
      return c < 0;
    case CompareOp::kLe:
      return c <= 0;
    case CompareOp::kGt:
      return c > 0;
    case CompareOp::kGe:
      return c >= 0;
    case CompareOp::kBetween:
      SCREP_CHECK(false);
  }
  return false;
}

bool BoundPredicate::Matches(const Row& row) const {
  for (const BoundComparison& c : conjuncts) {
    const Value& cell = row[static_cast<size_t>(c.column_index)];
    if (c.op == CompareOp::kBetween) {
      if (cell.Compare(c.value) < 0 || cell.Compare(c.value2) > 0) {
        return false;
      }
    } else if (!CompareMatches(c.op, cell, c.value)) {
      return false;
    }
  }
  return true;
}

std::string AccessPath::ToString() const {
  switch (kind) {
    case Kind::kPoint:
      return "point(" + std::to_string(key) + ")";
    case Kind::kRange:
      return "range(" + std::to_string(lo) + "," + std::to_string(hi) + ")";
    case Kind::kIndexEq:
      return "index_eq(col " + std::to_string(index_column) + ")";
    case Kind::kFullScan:
      return "full_scan";
  }
  return "full_scan";
}

ExecutionPlan ExecutionPlan::Build(const StatementAst& ast, TableId table,
                                   const IndexProbe& has_index,
                                   uint64_t catalog_epoch) {
  ExecutionPlan plan;
  plan.catalog_epoch_ = catalog_epoch;

  for (const Comparison& cmp : ast.where.conjuncts) {
    PlanConjunct pc;
    pc.column_index = cmp.column_index;
    pc.op = cmp.op;
    pc.value = Classify(cmp.value);
    if (cmp.op == CompareOp::kBetween) pc.value2 = Classify(cmp.value2);
    plan.conjuncts_.push_back(std::move(pc));
  }

  // Candidate order mirrors the fresh chooser exactly: every primary-key
  // conjunct (point or range) in conjunct order first, then every indexed
  // secondary equality.  Whether a candidate actually applies depends on
  // the values bound at execution, so the final pick happens there.
  for (size_t i = 0; i < plan.conjuncts_.size(); ++i) {
    const PlanConjunct& c = plan.conjuncts_[i];
    if (c.column_index != 0) continue;
    if (c.op == CompareOp::kEq) {
      plan.candidates_.push_back({PathCandidate::Kind::kPoint, i});
    } else if (c.op == CompareOp::kBetween) {
      plan.candidates_.push_back({PathCandidate::Kind::kRange, i});
    }
  }
  for (size_t i = 0; i < plan.conjuncts_.size(); ++i) {
    const PlanConjunct& c = plan.conjuncts_[i];
    if (c.column_index <= 0 || c.op != CompareOp::kEq) continue;
    if (has_index(table, c.column_index)) {
      plan.candidates_.push_back({PathCandidate::Kind::kIndexEq, i});
    }
  }

  if (ast.kind == StatementKind::kSelect) {
    bool any_agg = false;
    bool any_plain = false;
    for (const SelectItem& item : ast.select_items) {
      plan.column_labels_.push_back(item.ToString());
      (item.agg != AggFunc::kNone ? any_agg : any_plain) = true;
    }
    plan.has_agg_ = any_agg;
    plan.mixed_agg_ = any_agg && any_plain;
  }
  if (ast.limit) {
    plan.has_limit_ = true;
    plan.limit_ = Classify(*ast.limit);
  }
  for (const Expr& e : ast.insert_values) {
    plan.insert_sources_.push_back(Classify(e));
  }
  for (const auto& [col, expr] : ast.assignments) {
    (void)col;
    plan.assignment_sources_.push_back(Classify(expr));
  }
  return plan;
}

Status ExecutionPlan::BindSource(const ValueSource& src,
                                 const std::vector<Value>& params,
                                 Value* out) const {
  switch (src.kind) {
    case ValueSource::Kind::kLiteral:
      *out = src.literal;
      return Status::OK();
    case ValueSource::Kind::kParam:
      if (src.param_index < 0 ||
          static_cast<size_t>(src.param_index) >= params.size()) {
        return Status::InvalidArgument(
            "parameter " + std::to_string(src.param_index + 1) +
            " not bound");
      }
      *out = params[static_cast<size_t>(src.param_index)];
      return Status::OK();
    case ValueSource::Kind::kExpr: {
      SCREP_ASSIGN_OR_RETURN(*out, EvalExpr(*src.expr, params, nullptr));
      return Status::OK();
    }
  }
  return Status::Internal("bad value source");
}

Status ExecutionPlan::BindPredicate(const std::vector<Value>& params,
                                    BoundPredicate* out) const {
  out->conjuncts.clear();
  out->conjuncts.reserve(conjuncts_.size());
  for (const PlanConjunct& pc : conjuncts_) {
    BoundPredicate::BoundComparison bc;
    bc.column_index = pc.column_index;
    bc.op = pc.op;
    SCREP_RETURN_NOT_OK(BindSource(pc.value, params, &bc.value));
    if (pc.op == CompareOp::kBetween) {
      SCREP_RETURN_NOT_OK(BindSource(pc.value2, params, &bc.value2));
    }
    out->conjuncts.push_back(std::move(bc));
  }
  return Status::OK();
}

AccessPath ExecutionPlan::ChoosePath(const BoundPredicate& pred) const {
  AccessPath path;
  for (const PathCandidate& cand : candidates_) {
    const BoundPredicate::BoundComparison& c = pred.conjuncts[cand.conjunct];
    switch (cand.kind) {
      case PathCandidate::Kind::kPoint:
        if (c.value.type() == ValueType::kInt64) {
          path.kind = AccessPath::Kind::kPoint;
          path.key = c.value.AsInt();
          return path;
        }
        break;
      case PathCandidate::Kind::kRange:
        if (c.value.type() == ValueType::kInt64 &&
            c.value2.type() == ValueType::kInt64) {
          path.kind = AccessPath::Kind::kRange;
          path.lo = c.value.AsInt();
          path.hi = c.value2.AsInt();
          return path;
        }
        break;
      case PathCandidate::Kind::kIndexEq:
        path.kind = AccessPath::Kind::kIndexEq;
        path.index_column = c.column_index;
        path.index_value = c.value;
        return path;
    }
  }
  return path;
}

}  // namespace screp::sql
