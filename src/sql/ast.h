// Abstract syntax tree for the mini-SQL dialect.

#ifndef SCREP_SQL_AST_H_
#define SCREP_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "storage/value.h"

namespace screp::sql {

/// Scalar expression: literal, `?` parameter, column reference, or a
/// binary arithmetic combination of those (+, -, *).
struct Expr {
  enum class Kind { kLiteral, kParam, kColumn, kBinary };

  Kind kind = Kind::kLiteral;
  Value literal;                    // kLiteral
  int param_index = -1;             // kParam (0-based)
  std::string column;               // kColumn
  int column_index = -1;            // kColumn, resolved at prepare time
  char op = 0;                      // kBinary: '+', '-', '*'
  std::unique_ptr<Expr> lhs;
  std::unique_ptr<Expr> rhs;

  static Expr Literal(Value v);
  static Expr Param(int index);
  static Expr Column(std::string name);

  Expr Clone() const;
  std::string ToString() const;
};

/// Comparison operator in WHERE clauses.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe, kBetween };

/// One conjunct: `column OP expr` or `column BETWEEN expr AND expr`.
struct Comparison {
  std::string column;
  int column_index = -1;  // resolved at prepare time
  CompareOp op = CompareOp::kEq;
  Expr value;
  Expr value2;  // BETWEEN upper bound

  std::string ToString() const;
};

/// A conjunction of comparisons (the only predicate form the dialect has).
struct Predicate {
  std::vector<Comparison> conjuncts;

  bool empty() const { return conjuncts.empty(); }
  std::string ToString() const;
};

/// Aggregate function in a select list.
enum class AggFunc { kNone, kCount, kSum, kAvg, kMin, kMax };

/// One projected item: a column, or an aggregate over a column / `*`.
struct SelectItem {
  AggFunc agg = AggFunc::kNone;
  std::string column;     // empty for COUNT(*)
  int column_index = -1;  // resolved at prepare time

  std::string ToString() const;
};

/// ORDER BY clause (single key).
struct OrderBy {
  std::string column;
  int column_index = -1;
  bool descending = false;
};

/// What kind of statement an AST node is.
enum class StatementKind { kSelect, kUpdate, kInsert, kDelete };

/// Parsed statement; exactly the fields for its `kind` are meaningful.
struct StatementAst {
  StatementKind kind = StatementKind::kSelect;
  std::string table;

  // SELECT
  bool select_star = false;
  std::vector<SelectItem> select_items;
  std::optional<OrderBy> order_by;
  std::optional<Expr> limit;  // integer literal or parameter

  // UPDATE
  std::vector<std::pair<std::string, Expr>> assignments;
  std::vector<int> assignment_indexes;  // resolved at prepare time

  // INSERT
  std::vector<Expr> insert_values;

  // SELECT / UPDATE / DELETE
  Predicate where;

  /// Number of `?` parameters in the statement.
  int param_count = 0;

  /// Whether executing this statement writes the database.
  bool IsUpdate() const { return kind != StatementKind::kSelect; }

  std::string ToString() const;
};

}  // namespace screp::sql

#endif  // SCREP_SQL_AST_H_
