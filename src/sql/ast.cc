#include "sql/ast.h"

namespace screp::sql {

Expr Expr::Literal(Value v) {
  Expr e;
  e.kind = Kind::kLiteral;
  e.literal = std::move(v);
  return e;
}

Expr Expr::Param(int index) {
  Expr e;
  e.kind = Kind::kParam;
  e.param_index = index;
  return e;
}

Expr Expr::Column(std::string name) {
  Expr e;
  e.kind = Kind::kColumn;
  e.column = std::move(name);
  return e;
}

Expr Expr::Clone() const {
  Expr e;
  e.kind = kind;
  e.literal = literal;
  e.param_index = param_index;
  e.column = column;
  e.column_index = column_index;
  e.op = op;
  if (lhs) e.lhs = std::make_unique<Expr>(lhs->Clone());
  if (rhs) e.rhs = std::make_unique<Expr>(rhs->Clone());
  return e;
}

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kLiteral:
      return literal.ToString();
    case Kind::kParam:
      return "?";
    case Kind::kColumn:
      return column;
    case Kind::kBinary:
      return "(" + lhs->ToString() + " " + op + " " + rhs->ToString() + ")";
  }
  return "?";
}

namespace {
const char* OpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kBetween:
      return "BETWEEN";
  }
  return "?";
}
}  // namespace

std::string Comparison::ToString() const {
  if (op == CompareOp::kBetween) {
    return column + " BETWEEN " + value.ToString() + " AND " +
           value2.ToString();
  }
  return column + " " + OpName(op) + " " + value.ToString();
}

std::string Predicate::ToString() const {
  std::string out;
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    if (i > 0) out += " AND ";
    out += conjuncts[i].ToString();
  }
  return out;
}

std::string SelectItem::ToString() const {
  switch (agg) {
    case AggFunc::kNone:
      return column;
    case AggFunc::kCount:
      return column.empty() ? "COUNT(*)" : "COUNT(" + column + ")";
    case AggFunc::kSum:
      return "SUM(" + column + ")";
    case AggFunc::kAvg:
      return "AVG(" + column + ")";
    case AggFunc::kMin:
      return "MIN(" + column + ")";
    case AggFunc::kMax:
      return "MAX(" + column + ")";
  }
  return "?";
}

std::string StatementAst::ToString() const {
  std::string out;
  switch (kind) {
    case StatementKind::kSelect: {
      out = "SELECT ";
      if (select_star) {
        out += "*";
      } else {
        for (size_t i = 0; i < select_items.size(); ++i) {
          if (i > 0) out += ", ";
          out += select_items[i].ToString();
        }
      }
      out += " FROM " + table;
      if (!where.empty()) out += " WHERE " + where.ToString();
      if (order_by) {
        out += " ORDER BY " + order_by->column +
               (order_by->descending ? " DESC" : " ASC");
      }
      if (limit) out += " LIMIT " + limit->ToString();
      break;
    }
    case StatementKind::kUpdate: {
      out = "UPDATE " + table + " SET ";
      for (size_t i = 0; i < assignments.size(); ++i) {
        if (i > 0) out += ", ";
        out += assignments[i].first + " = " + assignments[i].second.ToString();
      }
      if (!where.empty()) out += " WHERE " + where.ToString();
      break;
    }
    case StatementKind::kInsert: {
      out = "INSERT INTO " + table + " VALUES (";
      for (size_t i = 0; i < insert_values.size(); ++i) {
        if (i > 0) out += ", ";
        out += insert_values[i].ToString();
      }
      out += ")";
      break;
    }
    case StatementKind::kDelete: {
      out = "DELETE FROM " + table;
      if (!where.empty()) out += " WHERE " + where.ToString();
      break;
    }
  }
  return out;
}

}  // namespace screp::sql
