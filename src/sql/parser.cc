#include "sql/parser.h"

#include <memory>

#include "sql/lexer.h"

namespace screp::sql {

namespace {

/// Token-stream cursor with error helpers.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<StatementAst> ParseStatement() {
    StatementAst ast;
    if (AcceptKeyword("SELECT")) {
      SCREP_RETURN_NOT_OK(ParseSelect(&ast));
    } else if (AcceptKeyword("UPDATE")) {
      SCREP_RETURN_NOT_OK(ParseUpdate(&ast));
    } else if (AcceptKeyword("INSERT")) {
      SCREP_RETURN_NOT_OK(ParseInsert(&ast));
    } else if (AcceptKeyword("DELETE")) {
      SCREP_RETURN_NOT_OK(ParseDelete(&ast));
    } else {
      return Error("expected SELECT, UPDATE, INSERT or DELETE");
    }
    if (Peek().type != TokenType::kEnd) {
      return Error("trailing input after statement");
    }
    ast.param_count = param_count_;
    return ast;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }

  bool AcceptKeyword(const char* kw) {
    if (Peek().type == TokenType::kKeyword && Peek().text == kw) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool Accept(TokenType type) {
    if (Peek().type == type) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ExpectKeyword(const char* kw) {
    if (!AcceptKeyword(kw)) {
      return Error(std::string("expected ") + kw);
    }
    return Status::OK();
  }

  Status Expect(TokenType type, Token* out = nullptr) {
    if (Peek().type != type) {
      return Error(std::string("expected ") + TokenTypeName(type) +
                   ", found " + TokenTypeName(Peek().type));
    }
    if (out != nullptr) *out = Peek();
    ++pos_;
    return Status::OK();
  }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument(message + " (at offset " +
                                   std::to_string(Peek().position) + ")");
  }

  Status ParseSelect(StatementAst* ast) {
    ast->kind = StatementKind::kSelect;
    if (Accept(TokenType::kStar)) {
      ast->select_star = true;
    } else {
      do {
        SelectItem item;
        SCREP_RETURN_NOT_OK(ParseSelectItem(&item));
        ast->select_items.push_back(std::move(item));
      } while (Accept(TokenType::kComma));
    }
    SCREP_RETURN_NOT_OK(ExpectKeyword("FROM"));
    Token table;
    SCREP_RETURN_NOT_OK(Expect(TokenType::kIdentifier, &table));
    ast->table = table.text;
    if (AcceptKeyword("WHERE")) {
      SCREP_RETURN_NOT_OK(ParsePredicate(&ast->where));
    }
    if (AcceptKeyword("ORDER")) {
      SCREP_RETURN_NOT_OK(ExpectKeyword("BY"));
      Token col;
      SCREP_RETURN_NOT_OK(Expect(TokenType::kIdentifier, &col));
      OrderBy ob;
      ob.column = col.text;
      if (AcceptKeyword("DESC")) {
        ob.descending = true;
      } else {
        AcceptKeyword("ASC");
      }
      ast->order_by = std::move(ob);
    }
    if (AcceptKeyword("LIMIT")) {
      Expr limit;
      SCREP_RETURN_NOT_OK(ParsePrimary(&limit));
      if (limit.kind == Expr::Kind::kColumn) {
        return Error("LIMIT must be an integer or parameter");
      }
      ast->limit = std::move(limit);
    }
    return Status::OK();
  }

  Status ParseUpdate(StatementAst* ast) {
    ast->kind = StatementKind::kUpdate;
    Token table;
    SCREP_RETURN_NOT_OK(Expect(TokenType::kIdentifier, &table));
    ast->table = table.text;
    SCREP_RETURN_NOT_OK(ExpectKeyword("SET"));
    do {
      Token col;
      SCREP_RETURN_NOT_OK(Expect(TokenType::kIdentifier, &col));
      SCREP_RETURN_NOT_OK(Expect(TokenType::kEq));
      Expr value;
      SCREP_RETURN_NOT_OK(ParseExpr(&value));
      ast->assignments.emplace_back(col.text, std::move(value));
    } while (Accept(TokenType::kComma));
    if (AcceptKeyword("WHERE")) {
      SCREP_RETURN_NOT_OK(ParsePredicate(&ast->where));
    }
    return Status::OK();
  }

  Status ParseInsert(StatementAst* ast) {
    ast->kind = StatementKind::kInsert;
    SCREP_RETURN_NOT_OK(ExpectKeyword("INTO"));
    Token table;
    SCREP_RETURN_NOT_OK(Expect(TokenType::kIdentifier, &table));
    ast->table = table.text;
    SCREP_RETURN_NOT_OK(ExpectKeyword("VALUES"));
    SCREP_RETURN_NOT_OK(Expect(TokenType::kLParen));
    do {
      Expr value;
      SCREP_RETURN_NOT_OK(ParseExpr(&value));
      if (value.kind == Expr::Kind::kColumn) {
        return Error("INSERT values may not reference columns");
      }
      ast->insert_values.push_back(std::move(value));
    } while (Accept(TokenType::kComma));
    SCREP_RETURN_NOT_OK(Expect(TokenType::kRParen));
    return Status::OK();
  }

  Status ParseDelete(StatementAst* ast) {
    ast->kind = StatementKind::kDelete;
    SCREP_RETURN_NOT_OK(ExpectKeyword("FROM"));
    Token table;
    SCREP_RETURN_NOT_OK(Expect(TokenType::kIdentifier, &table));
    ast->table = table.text;
    if (AcceptKeyword("WHERE")) {
      SCREP_RETURN_NOT_OK(ParsePredicate(&ast->where));
    }
    return Status::OK();
  }

  Status ParseSelectItem(SelectItem* item) {
    static const struct {
      const char* kw;
      AggFunc fn;
    } kAggs[] = {{"COUNT", AggFunc::kCount},
                 {"SUM", AggFunc::kSum},
                 {"AVG", AggFunc::kAvg},
                 {"MIN", AggFunc::kMin},
                 {"MAX", AggFunc::kMax}};
    for (const auto& agg : kAggs) {
      if (AcceptKeyword(agg.kw)) {
        item->agg = agg.fn;
        SCREP_RETURN_NOT_OK(Expect(TokenType::kLParen));
        if (agg.fn == AggFunc::kCount && Accept(TokenType::kStar)) {
          item->column.clear();
        } else {
          Token col;
          SCREP_RETURN_NOT_OK(Expect(TokenType::kIdentifier, &col));
          item->column = col.text;
        }
        SCREP_RETURN_NOT_OK(Expect(TokenType::kRParen));
        return Status::OK();
      }
    }
    Token col;
    SCREP_RETURN_NOT_OK(Expect(TokenType::kIdentifier, &col));
    item->agg = AggFunc::kNone;
    item->column = col.text;
    return Status::OK();
  }

  Status ParsePredicate(Predicate* pred) {
    do {
      Comparison cmp;
      Token col;
      SCREP_RETURN_NOT_OK(Expect(TokenType::kIdentifier, &col));
      cmp.column = col.text;
      if (AcceptKeyword("BETWEEN")) {
        cmp.op = CompareOp::kBetween;
        SCREP_RETURN_NOT_OK(ParseExpr(&cmp.value));
        SCREP_RETURN_NOT_OK(ExpectKeyword("AND"));
        SCREP_RETURN_NOT_OK(ParseExpr(&cmp.value2));
      } else {
        switch (Peek().type) {
          case TokenType::kEq:
            cmp.op = CompareOp::kEq;
            break;
          case TokenType::kNe:
            cmp.op = CompareOp::kNe;
            break;
          case TokenType::kLt:
            cmp.op = CompareOp::kLt;
            break;
          case TokenType::kLe:
            cmp.op = CompareOp::kLe;
            break;
          case TokenType::kGt:
            cmp.op = CompareOp::kGt;
            break;
          case TokenType::kGe:
            cmp.op = CompareOp::kGe;
            break;
          default:
            return Error("expected comparison operator");
        }
        Advance();
        SCREP_RETURN_NOT_OK(ParseExpr(&cmp.value));
      }
      pred->conjuncts.push_back(std::move(cmp));
    } while (AcceptKeyword("AND"));
    return Status::OK();
  }

  // expr := primary (('+'|'-'|'*') primary)*   (left-assoc, '*' binds like
  // the others — parenthesize when it matters; workload statements are
  // simple enough).
  Status ParseExpr(Expr* out) {
    Expr left;
    SCREP_RETURN_NOT_OK(ParsePrimary(&left));
    while (true) {
      char op = 0;
      if (Accept(TokenType::kPlus)) {
        op = '+';
      } else if (Accept(TokenType::kMinus)) {
        op = '-';
      } else if (Peek().type == TokenType::kStar) {
        // '*' only acts as multiplication inside an expression context.
        Advance();
        op = '*';
      } else {
        break;
      }
      Expr right;
      SCREP_RETURN_NOT_OK(ParsePrimary(&right));
      Expr combined;
      combined.kind = Expr::Kind::kBinary;
      combined.op = op;
      combined.lhs = std::make_unique<Expr>(std::move(left));
      combined.rhs = std::make_unique<Expr>(std::move(right));
      left = std::move(combined);
    }
    *out = std::move(left);
    return Status::OK();
  }

  Status ParsePrimary(Expr* out) {
    const Token& tok = Peek();
    switch (tok.type) {
      case TokenType::kInteger:
        *out = Expr::Literal(Value(tok.int_value));
        Advance();
        return Status::OK();
      case TokenType::kFloat:
        *out = Expr::Literal(Value(tok.float_value));
        Advance();
        return Status::OK();
      case TokenType::kString:
        *out = Expr::Literal(Value(tok.text));
        Advance();
        return Status::OK();
      case TokenType::kParam:
        *out = Expr::Param(param_count_++);
        Advance();
        return Status::OK();
      case TokenType::kIdentifier:
        *out = Expr::Column(tok.text);
        Advance();
        return Status::OK();
      case TokenType::kKeyword:
        if (tok.text == "NULL") {
          *out = Expr::Literal(Value());
          Advance();
          return Status::OK();
        }
        return Error("unexpected keyword " + tok.text);
      case TokenType::kMinus: {
        Advance();
        Expr inner;
        SCREP_RETURN_NOT_OK(ParsePrimary(&inner));
        if (inner.kind == Expr::Kind::kLiteral &&
            inner.literal.type() == ValueType::kInt64) {
          *out = Expr::Literal(Value(-inner.literal.AsInt()));
          return Status::OK();
        }
        if (inner.kind == Expr::Kind::kLiteral &&
            inner.literal.type() == ValueType::kDouble) {
          *out = Expr::Literal(Value(-inner.literal.AsDouble()));
          return Status::OK();
        }
        return Error("'-' only applies to numeric literals");
      }
      case TokenType::kLParen: {
        Advance();
        SCREP_RETURN_NOT_OK(ParseExpr(out));
        return Expect(TokenType::kRParen);
      }
      default:
        return Error("expected expression");
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int param_count_ = 0;
};

}  // namespace

Result<StatementAst> Parse(const std::string& text) {
  std::vector<Token> tokens;
  SCREP_RETURN_NOT_OK(Tokenize(text, &tokens));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

}  // namespace screp::sql
