// Tokenizer for the mini-SQL dialect.

#ifndef SCREP_SQL_LEXER_H_
#define SCREP_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sql/token.h"

namespace screp::sql {

/// Tokenizes `text` into `tokens` (terminated by a kEnd token).
/// Fails with InvalidArgument on unterminated strings or stray characters.
Status Tokenize(const std::string& text, std::vector<Token>* tokens);

}  // namespace screp::sql

#endif  // SCREP_SQL_LEXER_H_
