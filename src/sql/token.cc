#include "sql/token.h"

#include <unordered_set>

namespace screp::sql {

const char* TokenTypeName(TokenType type) {
  switch (type) {
    case TokenType::kIdentifier:
      return "identifier";
    case TokenType::kKeyword:
      return "keyword";
    case TokenType::kInteger:
      return "integer";
    case TokenType::kFloat:
      return "float";
    case TokenType::kString:
      return "string";
    case TokenType::kParam:
      return "'?'";
    case TokenType::kComma:
      return "','";
    case TokenType::kLParen:
      return "'('";
    case TokenType::kRParen:
      return "')'";
    case TokenType::kStar:
      return "'*'";
    case TokenType::kPlus:
      return "'+'";
    case TokenType::kMinus:
      return "'-'";
    case TokenType::kEq:
      return "'='";
    case TokenType::kNe:
      return "'<>'";
    case TokenType::kLt:
      return "'<'";
    case TokenType::kLe:
      return "'<='";
    case TokenType::kGt:
      return "'>'";
    case TokenType::kGe:
      return "'>='";
    case TokenType::kEnd:
      return "end of input";
  }
  return "?";
}

bool IsKeyword(const std::string& upper_word) {
  static const std::unordered_set<std::string> kKeywords = {
      "SELECT", "FROM",   "WHERE",  "AND",    "ORDER",  "BY",
      "ASC",    "DESC",   "LIMIT",  "UPDATE", "SET",    "INSERT",
      "INTO",   "VALUES", "DELETE", "COUNT",  "SUM",    "AVG",
      "MIN",    "MAX",    "BETWEEN", "NULL",
  };
  return kKeywords.count(upper_word) != 0;
}

}  // namespace screp::sql
