#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>

namespace screp::sql {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string ToUpper(std::string s) {
  for (char& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}

std::string ToLower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

}  // namespace

Status Tokenize(const std::string& text, std::vector<Token>* tokens) {
  tokens->clear();
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.position = i;
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(text[j])) ++j;
      std::string word = text.substr(i, j - i);
      std::string upper = ToUpper(word);
      if (IsKeyword(upper)) {
        tok.type = TokenType::kKeyword;
        tok.text = std::move(upper);
      } else {
        tok.type = TokenType::kIdentifier;
        tok.text = ToLower(std::move(word));
      }
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      bool is_float = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(text[j])) ||
                       text[j] == '.')) {
        if (text[j] == '.') is_float = true;
        ++j;
      }
      const std::string num = text.substr(i, j - i);
      if (is_float) {
        tok.type = TokenType::kFloat;
        tok.float_value = std::strtod(num.c_str(), nullptr);
      } else {
        tok.type = TokenType::kInteger;
        tok.int_value = std::strtoll(num.c_str(), nullptr, 10);
      }
      tok.text = num;
      i = j;
    } else if (c == '\'') {
      size_t j = i + 1;
      std::string s;
      bool closed = false;
      while (j < n) {
        if (text[j] == '\'') {
          if (j + 1 < n && text[j + 1] == '\'') {  // escaped quote
            s.push_back('\'');
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        s.push_back(text[j]);
        ++j;
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated string literal at " +
                                       std::to_string(i));
      }
      tok.type = TokenType::kString;
      tok.text = std::move(s);
      i = j;
    } else {
      switch (c) {
        case ',':
          tok.type = TokenType::kComma;
          ++i;
          break;
        case '(':
          tok.type = TokenType::kLParen;
          ++i;
          break;
        case ')':
          tok.type = TokenType::kRParen;
          ++i;
          break;
        case '*':
          tok.type = TokenType::kStar;
          ++i;
          break;
        case '+':
          tok.type = TokenType::kPlus;
          ++i;
          break;
        case '-':
          tok.type = TokenType::kMinus;
          ++i;
          break;
        case '?':
          tok.type = TokenType::kParam;
          ++i;
          break;
        case '=':
          tok.type = TokenType::kEq;
          ++i;
          break;
        case '<':
          if (i + 1 < n && text[i + 1] == '=') {
            tok.type = TokenType::kLe;
            i += 2;
          } else if (i + 1 < n && text[i + 1] == '>') {
            tok.type = TokenType::kNe;
            i += 2;
          } else {
            tok.type = TokenType::kLt;
            ++i;
          }
          break;
        case '>':
          if (i + 1 < n && text[i + 1] == '=') {
            tok.type = TokenType::kGe;
            i += 2;
          } else {
            tok.type = TokenType::kGt;
            ++i;
          }
          break;
        default:
          return Status::InvalidArgument(
              std::string("unexpected character '") + c + "' at " +
              std::to_string(i));
      }
    }
    tokens->push_back(std::move(tok));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = n;
  tokens->push_back(std::move(end));
  return Status::OK();
}

}  // namespace screp::sql
