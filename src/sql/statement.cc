#include "sql/statement.h"

#include <algorithm>

#include "sql/parser.h"

namespace screp::sql {

namespace {

Status ResolveColumn(const Schema& schema, const std::string& table,
                     const std::string& column, int* index) {
  const int idx = schema.ColumnIndex(column);
  if (idx < 0) {
    return Status::InvalidArgument("unknown column '" + column +
                                   "' in table '" + table + "'");
  }
  *index = idx;
  return Status::OK();
}

Status ResolveExpr(const Schema& schema, const std::string& table,
                   Expr* expr) {
  switch (expr->kind) {
    case Expr::Kind::kColumn:
      return ResolveColumn(schema, table, expr->column,
                           &expr->column_index);
    case Expr::Kind::kBinary:
      SCREP_RETURN_NOT_OK(ResolveExpr(schema, table, expr->lhs.get()));
      return ResolveExpr(schema, table, expr->rhs.get());
    default:
      return Status::OK();
  }
}

}  // namespace

Result<std::shared_ptr<const PreparedStatement>> PreparedStatement::Prepare(
    const Database& db, const std::string& text) {
  SCREP_ASSIGN_OR_RETURN(StatementAst ast, Parse(text));

  auto stmt = std::shared_ptr<PreparedStatement>(new PreparedStatement());
  stmt->text_ = text;
  stmt->table_name_ = ast.table;
  SCREP_ASSIGN_OR_RETURN(stmt->table_id_, db.FindTable(ast.table));
  const Schema& schema = db.table(stmt->table_id_)->schema();

  // Resolve column references throughout the AST.
  for (SelectItem& item : ast.select_items) {
    if (item.agg == AggFunc::kCount && item.column.empty()) continue;
    SCREP_RETURN_NOT_OK(
        ResolveColumn(schema, ast.table, item.column, &item.column_index));
  }
  if (ast.select_star) {
    ast.select_items.clear();
    for (size_t i = 0; i < schema.num_columns(); ++i) {
      SelectItem item;
      item.column = schema.column(i).name;
      item.column_index = static_cast<int>(i);
      ast.select_items.push_back(std::move(item));
    }
  }
  for (Comparison& cmp : ast.where.conjuncts) {
    SCREP_RETURN_NOT_OK(
        ResolveColumn(schema, ast.table, cmp.column, &cmp.column_index));
    SCREP_RETURN_NOT_OK(ResolveExpr(schema, ast.table, &cmp.value));
    if (cmp.op == CompareOp::kBetween) {
      SCREP_RETURN_NOT_OK(ResolveExpr(schema, ast.table, &cmp.value2));
    }
  }
  if (ast.order_by) {
    SCREP_RETURN_NOT_OK(ResolveColumn(schema, ast.table,
                                      ast.order_by->column,
                                      &ast.order_by->column_index));
  }
  ast.assignment_indexes.clear();
  for (auto& [col, expr] : ast.assignments) {
    int idx;
    SCREP_RETURN_NOT_OK(ResolveColumn(schema, ast.table, col, &idx));
    if (idx == 0) {
      return Status::InvalidArgument("primary key may not be assigned");
    }
    ast.assignment_indexes.push_back(idx);
    SCREP_RETURN_NOT_OK(ResolveExpr(schema, ast.table, &expr));
  }
  if (ast.kind == StatementKind::kInsert &&
      ast.insert_values.size() != schema.num_columns()) {
    return Status::InvalidArgument(
        "INSERT provides " + std::to_string(ast.insert_values.size()) +
        " values, table '" + ast.table + "' has " +
        std::to_string(schema.num_columns()) + " columns");
  }
  if ((ast.kind == StatementKind::kUpdate ||
       ast.kind == StatementKind::kDelete) &&
      ast.where.empty()) {
    return Status::NotSupported(
        "UPDATE/DELETE without WHERE is not allowed");
  }

  stmt->ast_ = std::move(ast);
  stmt->plan_ = std::make_unique<const ExecutionPlan>(ExecutionPlan::Build(
      stmt->ast_, stmt->table_id_,
      [&db](TableId t, int c) { return db.table(t)->HasIndex(c); },
      db.CatalogEpoch()));
  return std::shared_ptr<const PreparedStatement>(std::move(stmt));
}

std::vector<std::string> PreparedTransaction::TableSet() const {
  std::vector<std::string> tables;
  for (const auto& stmt : statements) {
    if (std::find(tables.begin(), tables.end(), stmt->table_name()) ==
        tables.end()) {
      tables.push_back(stmt->table_name());
    }
  }
  std::sort(tables.begin(), tables.end());
  return tables;
}

bool PreparedTransaction::HasUpdates() const {
  return std::any_of(statements.begin(), statements.end(),
                     [](const auto& s) { return s->IsUpdate(); });
}

}  // namespace screp::sql
