// Consistency checkers over recorded histories.
//
// These implement checkable forms of the paper's correctness properties:
//
//  * Strong consistency (Definition 1): if T_i was acknowledged to any
//    client before T_j was submitted, then T_j must observe T_i's effects
//    on every table T_j accesses — i.e. snapshot(T_j) >= commit(T_i), or
//    T_i wrote no table in T_j's table-set (in which case a view-equivalent
//    single-copy history can order T_i before T_j regardless).
//  * Session consistency (Definition 2): the same condition restricted to
//    pairs from the same session, with the full version requirement.
//  * Generalized snapshot isolation: first-committer-wins — no two
//    committed, concurrent update transactions overlap in their writesets;
//    snapshots never exceed the versions that existed at start.
//  * Commit total order: certified commit versions are exactly 1..N.

#ifndef SCREP_CONSISTENCY_CHECKER_H_
#define SCREP_CONSISTENCY_CHECKER_H_

#include <string>
#include <vector>

#include "consistency/history.h"

namespace screp {

/// Result of one checker run.
struct CheckResult {
  bool ok = true;
  /// Human-readable descriptions of (up to a cap of) violations found.
  std::vector<std::string> violations;
  /// Pairs / records examined (evidence the check was not vacuous).
  int64_t examined = 0;

  void AddViolation(std::string description);
  std::string ToString() const;
};

/// Checks strong consistency (Definition 1 form above) over all ordered
/// pairs (T_i acked before T_j submitted).
CheckResult CheckStrongConsistency(const History& history);

/// Checks session consistency (Definition 2): for a same-session pair
/// where T_i was acknowledged before T_j was submitted and T_i committed
/// an update, T_j observes T_i on every table T_j accesses.  As with the
/// strong checker, unobservable gaps (T_i wrote no table T_j accesses)
/// are view-equivalent to an in-order history and therefore allowed —
/// the slack the lazy fine-grained scheme exploits (paper §III-C).
CheckResult CheckSessionConsistency(const History& history);

/// Checks the *stricter* implementation-level property of the SC and LSC
/// configurations: within a session, per-table observations never go
/// observably back in time (the "monotonically increasing versions" the
/// paper quotes from Daudjee & Salem).  This is NOT implied by
/// Definitions 1 or 2 — the fine-grained and eager schemes may let a
/// session read a table at an older version than a previous transaction
/// saw, as long as no *acknowledged* commit is missed — so CheckAll does
/// not include it; assert it only for kSession / kLazyCoarse runs.
CheckResult CheckMonotonicSessionSnapshots(const History& history);

/// Checks first-committer-wins over committed update transactions.
CheckResult CheckFirstCommitterWins(const History& history);

/// Checks that committed update versions form the dense sequence 1..N
/// (the certifier's total order) and that every snapshot read an existing
/// version.
CheckResult CheckCommitTotalOrder(const History& history);

/// Runs every checker appropriate for `strong` (strong vs session)
/// configurations and merges the results.
CheckResult CheckAll(const History& history, bool expect_strong);

}  // namespace screp

#endif  // SCREP_CONSISTENCY_CHECKER_H_
