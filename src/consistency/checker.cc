#include "consistency/checker.h"

#include <algorithm>
#include <map>
#include <unordered_set>

namespace screp {

namespace {
constexpr size_t kMaxReportedViolations = 20;

bool IntersectsTables(const std::vector<TableId>& written,
                      const std::vector<TableId>& accessed) {
  for (TableId w : written) {
    if (std::find(accessed.begin(), accessed.end(), w) != accessed.end()) {
      return true;
    }
  }
  return false;
}
}  // namespace

void CheckResult::AddViolation(std::string description) {
  ok = false;
  if (violations.size() < kMaxReportedViolations) {
    violations.push_back(std::move(description));
  }
}

std::string CheckResult::ToString() const {
  std::string out = ok ? "OK" : "VIOLATIONS";
  out += " (examined " + std::to_string(examined) + ")";
  for (const std::string& v : violations) {
    out += "\n  - " + v;
  }
  return out;
}

CheckResult CheckStrongConsistency(const History& history) {
  CheckResult result;
  const auto updates = history.CommittedUpdates();
  for (const TxnRecord& tj : history.records()) {
    if (!tj.committed) continue;
    for (const TxnRecord* ti : updates) {
      if (ti->id == tj.id) continue;
      // Real-time order: T_i acknowledged before T_j was submitted.
      if (ti->ack_time > tj.submit_time) continue;
      ++result.examined;
      if (tj.snapshot >= ti->commit_version) continue;
      // T_j read an older snapshot; that is only view-equivalent to a
      // history with T_i first when T_j cannot observe T_i at all.
      if (!IntersectsTables(ti->tables_written, tj.table_set)) continue;
      result.AddViolation(
          "txn " + std::to_string(tj.id) + " (snapshot " +
          std::to_string(tj.snapshot) + ", submitted at " +
          std::to_string(tj.submit_time) + ") misses txn " +
          std::to_string(ti->id) + " committed @" +
          std::to_string(ti->commit_version) + " acked at " +
          std::to_string(ti->ack_time) + " writing an accessed table");
    }
  }
  return result;
}

CheckResult CheckSessionConsistency(const History& history) {
  CheckResult result;
  // Definition 2 exactly: for a same-session pair where T_i was
  // acknowledged before T_j was submitted and T_i committed an update,
  // T_j must observe T_i on every table T_j accesses (the same
  // view-equivalence slack as the strong checker: updates to tables T_j
  // never touches are unobservable and impose no ordering).
  std::map<SessionId, std::vector<const TxnRecord*>> by_session;
  for (const TxnRecord& r : history.records()) {
    if (r.committed) by_session[r.session].push_back(&r);
  }
  for (auto& [session, txns] : by_session) {
    for (const TxnRecord* tj : txns) {
      for (const TxnRecord* ti : txns) {
        if (ti->id == tj->id || ti->read_only) continue;
        if (ti->ack_time > tj->submit_time) continue;
        ++result.examined;
        if (tj->snapshot >= ti->commit_version) continue;
        if (!IntersectsTables(ti->tables_written, tj->table_set)) continue;
        result.AddViolation(
            "session " + std::to_string(session) + " txn " +
            std::to_string(tj->id) + " (snapshot " +
            std::to_string(tj->snapshot) + ") misses own session's txn " +
            std::to_string(ti->id) + " @" +
            std::to_string(ti->commit_version) +
            " writing an accessed table");
      }
    }
  }
  return result;
}

CheckResult CheckMonotonicSessionSnapshots(const History& history) {
  CheckResult result;
  std::map<DbVersion, const TxnRecord*> by_version;
  for (const TxnRecord* u : history.CommittedUpdates()) {
    by_version[u->commit_version] = u;
  }
  // Does any committed update in (snapshot, horizon] write `table`?
  auto observable_gap = [&](DbVersion snapshot, DbVersion horizon,
                            TableId table) -> const TxnRecord* {
    for (auto it = by_version.upper_bound(snapshot);
         it != by_version.end() && it->first <= horizon; ++it) {
      const auto& written = it->second->tables_written;
      if (std::find(written.begin(), written.end(), table) !=
          written.end()) {
        return it->second;
      }
    }
    return nullptr;
  };

  std::map<SessionId, std::vector<const TxnRecord*>> by_session;
  for (const TxnRecord& r : history.records()) {
    if (r.committed) by_session[r.session].push_back(&r);
  }
  for (auto& [session, txns] : by_session) {
    std::sort(txns.begin(), txns.end(),
              [](const TxnRecord* a, const TxnRecord* b) {
                return a->submit_time < b->submit_time;
              });
    for (size_t j = 0; j < txns.size(); ++j) {
      const TxnRecord* tj = txns[j];
      ++result.examined;
      // Per-table horizon from transactions whose results the client had
      // seen before submitting t_j.
      for (TableId table : tj->table_set) {
        DbVersion horizon = 0;
        for (size_t i = 0; i < txns.size(); ++i) {
          const TxnRecord* ti = txns[i];
          if (ti->id == tj->id || ti->ack_time > tj->submit_time) continue;
          const auto& ts = ti->table_set;
          if (std::find(ts.begin(), ts.end(), table) != ts.end()) {
            horizon = std::max(horizon, ti->snapshot);
          }
          const auto& tw = ti->tables_written;
          if (std::find(tw.begin(), tw.end(), table) != tw.end() &&
              ti->commit_version != kNoVersion) {
            horizon = std::max(horizon, ti->commit_version);
          }
        }
        if (tj->snapshot >= horizon) continue;
        if (const TxnRecord* missed =
                observable_gap(tj->snapshot, horizon, table)) {
          result.AddViolation(
              "session " + std::to_string(session) + " txn " +
              std::to_string(tj->id) + " snapshot " +
              std::to_string(tj->snapshot) +
              " observably regresses on table " + std::to_string(table) +
              ": misses txn " + std::to_string(missed->id) + " @" +
              std::to_string(missed->commit_version) + " (horizon " +
              std::to_string(horizon) + ")");
        }
      }
    }
  }
  return result;
}

CheckResult CheckFirstCommitterWins(const History& history) {
  CheckResult result;
  const auto updates = history.CommittedUpdates();
  for (size_t i = 0; i < updates.size(); ++i) {
    for (size_t j = i + 1; j < updates.size(); ++j) {
      const TxnRecord* a = updates[i];
      const TxnRecord* b = updates[j];  // commit(a) < commit(b)
      // Concurrent iff b started before a committed: snapshot(b) < commit(a).
      if (b->snapshot >= a->commit_version) continue;
      ++result.examined;
      // Overlapping writesets?
      bool overlap = false;
      for (const auto& ka : a->keys_written) {
        for (const auto& kb : b->keys_written) {
          if (ka == kb) {
            overlap = true;
            break;
          }
        }
        if (overlap) break;
      }
      if (overlap) {
        result.AddViolation(
            "first-committer-wins violated: concurrent txns " +
            std::to_string(a->id) + " @" +
            std::to_string(a->commit_version) + " and " +
            std::to_string(b->id) + " @" +
            std::to_string(b->commit_version) + " overlap");
      }
    }
  }
  return result;
}

CheckResult CheckCommitTotalOrder(const History& history) {
  CheckResult result;
  const auto updates = history.CommittedUpdates();
  DbVersion max_version = 0;
  std::unordered_set<DbVersion> seen;
  for (const TxnRecord* t : updates) {
    ++result.examined;
    if (t->commit_version <= 0) {
      result.AddViolation("txn " + std::to_string(t->id) +
                          " committed with non-positive version");
      continue;
    }
    if (!seen.insert(t->commit_version).second) {
      result.AddViolation("duplicate commit version " +
                          std::to_string(t->commit_version));
    }
    max_version = std::max(max_version, t->commit_version);
    if (t->snapshot >= t->commit_version) {
      result.AddViolation("txn " + std::to_string(t->id) + " snapshot " +
                          std::to_string(t->snapshot) +
                          " not before its commit version " +
                          std::to_string(t->commit_version));
    }
  }
  // Versions observed by this history's clients may not start at 1 if the
  // system ran before recording started, so only density within the
  // recorded window is required.
  if (!updates.empty()) {
    const DbVersion lo = updates.front()->commit_version;
    if (static_cast<DbVersion>(seen.size()) != max_version - lo + 1) {
      result.AddViolation("commit versions not dense: " +
                          std::to_string(seen.size()) + " versions in [" +
                          std::to_string(lo) + ", " +
                          std::to_string(max_version) + "]");
    }
  }
  // Every snapshot must correspond to a version that existed: snapshots
  // are bounded by the largest commit version.
  for (const TxnRecord& r : history.records()) {
    if (r.snapshot > max_version && !(r.snapshot == 0 && max_version == 0)) {
      result.AddViolation("txn " + std::to_string(r.id) +
                          " read snapshot " + std::to_string(r.snapshot) +
                          " beyond last commit " +
                          std::to_string(max_version));
    }
  }
  return result;
}

CheckResult CheckAll(const History& history, bool expect_strong) {
  CheckResult merged;
  auto absorb = [&merged](const CheckResult& r) {
    merged.examined += r.examined;
    if (!r.ok) {
      merged.ok = false;
      for (const std::string& v : r.violations) {
        if (merged.violations.size() < kMaxReportedViolations) {
          merged.violations.push_back(v);
        }
      }
    }
  };
  if (expect_strong) absorb(CheckStrongConsistency(history));
  absorb(CheckSessionConsistency(history));
  absorb(CheckFirstCommitterWins(history));
  absorb(CheckCommitTotalOrder(history));
  return merged;
}

}  // namespace screp
