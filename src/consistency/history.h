// Execution histories for consistency checking.
//
// The replicated system (when given a History sink) records one record per
// client transaction: when it was submitted and acknowledged in real
// (virtual) time, which snapshot it read, which version it committed at,
// and what it declared/wrote.  The checkers in checker.h then verify the
// paper's Definitions 1 and 2 plus snapshot-isolation invariants against
// the recorded history.

#ifndef SCREP_CONSISTENCY_HISTORY_H_
#define SCREP_CONSISTENCY_HISTORY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "common/types.h"

namespace screp {

/// Everything the checkers need to know about one transaction.
struct TxnRecord {
  TxnId id = 0;
  SessionId session = 0;
  ReplicaId replica = kNoReplica;

  /// Client sent the request (by this point the client may have observed
  /// other transactions' acknowledgments, including via hidden channels).
  TimePoint submit_time = 0;
  /// BEGIN executed at the replica — the snapshot was taken here.
  TimePoint start_time = 0;
  /// Client received the commit (or abort) acknowledgment.
  TimePoint ack_time = 0;

  /// Database version the transaction read at.
  DbVersion snapshot = 0;
  /// Version assigned by the certifier; kNoVersion for read-only or
  /// aborted transactions.
  DbVersion commit_version = kNoVersion;

  bool committed = false;
  bool read_only = true;

  /// Tables the transaction's type statically declares it accesses.
  std::vector<TableId> table_set;
  /// Tables actually written (subset of table_set for committed updates).
  std::vector<TableId> tables_written;
  /// Record-level writes, for write-write conflict checking.
  std::vector<std::pair<TableId, int64_t>> keys_written;

  std::string ToString() const;
};

/// An append-only collection of transaction records.
class History {
 public:
  void Add(TxnRecord record) { records_.push_back(std::move(record)); }

  const std::vector<TxnRecord>& records() const { return records_; }
  size_t size() const { return records_.size(); }
  void Clear() { records_.clear(); }

  /// Committed update transactions, sorted by commit version.
  std::vector<const TxnRecord*> CommittedUpdates() const;

 private:
  std::vector<TxnRecord> records_;
};

}  // namespace screp

#endif  // SCREP_CONSISTENCY_HISTORY_H_
