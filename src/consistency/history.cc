#include "consistency/history.h"

#include <algorithm>

namespace screp {

std::string TxnRecord::ToString() const {
  std::string out = "txn " + std::to_string(id) + " [session " +
                    std::to_string(session) + ", replica " +
                    std::to_string(replica) + "] snapshot=" +
                    std::to_string(snapshot);
  if (committed) {
    out += read_only ? " committed (read-only)"
                     : " committed @" + std::to_string(commit_version);
  } else {
    out += " aborted";
  }
  out += " submit=" + std::to_string(submit_time) +
         " ack=" + std::to_string(ack_time);
  return out;
}

std::vector<const TxnRecord*> History::CommittedUpdates() const {
  std::vector<const TxnRecord*> out;
  for (const TxnRecord& r : records_) {
    if (r.committed && !r.read_only) out.push_back(&r);
  }
  std::sort(out.begin(), out.end(),
            [](const TxnRecord* a, const TxnRecord* b) {
              return a->commit_version < b->commit_version;
            });
  return out;
}

}  // namespace screp
