// A standalone in-memory MVCC database instance providing snapshot
// isolation — the per-replica DBMS of the paper's architecture.
//
// Versioning matches the paper's model (§IV): the database starts at
// version 0 and the committed version advances by exactly one whenever an
// update transaction (local or refresh) commits.  The commit path applies
// certified writesets in the certifier's global order via ApplyWriteSet.

#ifndef SCREP_STORAGE_DATABASE_H_
#define SCREP_STORAGE_DATABASE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "storage/table.h"
#include "storage/wal.h"
#include "storage/write_set.h"

namespace screp {

class Transaction;

/// A collection of MVCC tables plus the local committed-version counter.
class Database {
 public:
  Database();
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates a table; the schema's column 0 must be the INT primary key.
  Result<TableId> CreateTable(const std::string& name, Schema schema);

  /// Id of a table by name, or NotFound.
  Result<TableId> FindTable(const std::string& name) const;

  /// Creates a secondary index on `table`.`column_name` (backfilled).
  /// Bumps the catalog epoch, invalidating cached execution plans.
  Status CreateIndex(TableId table, const std::string& column_name);

  /// Monotone counter bumped whenever index availability changes.
  /// Cached execution plans record the epoch they were built at and are
  /// re-planned when it has moved (sql/plan.h).
  uint64_t CatalogEpoch() const {
    return catalog_epoch_.load(std::memory_order_acquire);
  }

  /// Pre-condition: `id` was returned by CreateTable.
  Table* table(TableId id);
  const Table* table(TableId id) const;

  /// Name of a table by id.
  const std::string& TableName(TableId id) const;

  /// Number of tables.
  size_t TableCount() const;

  /// Names of all tables in creation order.
  std::vector<std::string> TableNames() const;

  /// The version of the latest committed update transaction (V_local when
  /// this database backs a replica).
  DbVersion CommittedVersion() const {
    return committed_version_.load(std::memory_order_acquire);
  }

  /// Begins a transaction reading at the current committed version.
  std::unique_ptr<Transaction> Begin();

  /// Begins a transaction reading at an explicit snapshot (must be
  /// <= CommittedVersion()).
  std::unique_ptr<Transaction> BeginAt(DbVersion snapshot);

  /// Applies a certified writeset and advances the committed version.
  /// `ws.commit_version` must be exactly CommittedVersion() + 1 — the
  /// caller (the proxy) is responsible for ordering — otherwise Internal
  /// is returned and nothing is applied.
  ///
  /// When `force_log` is true the writeset is appended to the WAL with a
  /// forced write; replicas run with log forcing off because the certifier
  /// enforces durability (paper §V-A / Tashkent).
  Status ApplyWriteSet(const WriteSet& ws, bool force_log = false);

  /// Applies a certified writeset stamping the *local* next version:
  /// the rows are installed at CommittedVersion() + 1 regardless of the
  /// writeset's own commit_version.  Used by sharded (partial-
  /// replication) proxies, where commit versions are per shard and no
  /// single global counter matches the database's dense local sequence;
  /// the proxy enforces per-shard application order, this method only
  /// keeps local MVCC versioning dense.  Never logs (WAL recovery is
  /// unsupported for sharded configurations).
  Status ApplyWriteSetLocal(const WriteSet& ws);

  /// Loads a row directly at a version — used only for bulk-population
  /// before the system starts (bypasses versioning checks).
  Status BulkLoad(TableId table, Row row);

  /// Garbage-collects versions invisible to snapshots >= oldest_active
  /// across all tables. Returns versions discarded.  The horizon is
  /// clamped to the oldest snapshot of any live Transaction, so a reader
  /// that began before this call never loses the versions it reads.
  size_t TruncateVersions(DbVersion oldest_active);

  /// The write-ahead log (populated only when ApplyWriteSet logs).
  Wal* wal() { return &wal_; }

  /// Rebuilds database state by replaying a WAL from scratch; tables must
  /// already be created (schemas are not logged). Used for recovery tests.
  Status RecoverFrom(const Wal& wal);

 private:
  friend class Transaction;

  /// Called from ~Transaction; drops one registration of `snapshot`.
  void UnregisterSnapshot(DbVersion snapshot);

  mutable std::mutex catalog_mutex_;
  std::vector<std::unique_ptr<Table>> tables_;
  std::unordered_map<std::string, TableId> table_ids_;
  std::atomic<DbVersion> committed_version_{0};
  std::atomic<uint64_t> catalog_epoch_{0};
  std::mutex commit_mutex_;
  // Snapshots of live transactions; TruncateVersions never GCs past the
  // smallest one.
  mutable std::mutex snapshots_mutex_;
  std::multiset<DbVersion> active_snapshots_;
  Wal wal_;
};

}  // namespace screp

#endif  // SCREP_STORAGE_DATABASE_H_
