#include "storage/database.h"

#include <algorithm>

#include "common/logging.h"
#include "storage/transaction.h"

namespace screp {

Database::Database() = default;
Database::~Database() = default;

Result<TableId> Database::CreateTable(const std::string& name,
                                      Schema schema) {
  std::lock_guard lock(catalog_mutex_);
  if (table_ids_.count(name) != 0) {
    return Status::AlreadyExists("table '" + name + "'");
  }
  const TableId id = static_cast<TableId>(tables_.size());
  tables_.push_back(std::make_unique<Table>(id, name, std::move(schema)));
  table_ids_[name] = id;
  return id;
}

Result<TableId> Database::FindTable(const std::string& name) const {
  std::lock_guard lock(catalog_mutex_);
  auto it = table_ids_.find(name);
  if (it == table_ids_.end()) {
    return Status::NotFound("table '" + name + "'");
  }
  return it->second;
}

Status Database::CreateIndex(TableId table_id,
                             const std::string& column_name) {
  Table* t = table(table_id);
  const int column = t->schema().ColumnIndex(column_name);
  if (column < 0) {
    return Status::NotFound("column '" + column_name + "' in table '" +
                            t->name() + "'");
  }
  SCREP_RETURN_NOT_OK(t->CreateIndex(column));
  catalog_epoch_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

Table* Database::table(TableId id) {
  std::lock_guard lock(catalog_mutex_);
  SCREP_CHECK_MSG(id >= 0 && static_cast<size_t>(id) < tables_.size(),
                  "bad table id " << id);
  return tables_[static_cast<size_t>(id)].get();
}

const Table* Database::table(TableId id) const {
  std::lock_guard lock(catalog_mutex_);
  SCREP_CHECK_MSG(id >= 0 && static_cast<size_t>(id) < tables_.size(),
                  "bad table id " << id);
  return tables_[static_cast<size_t>(id)].get();
}

const std::string& Database::TableName(TableId id) const {
  return table(id)->name();
}

size_t Database::TableCount() const {
  std::lock_guard lock(catalog_mutex_);
  return tables_.size();
}

std::vector<std::string> Database::TableNames() const {
  std::lock_guard lock(catalog_mutex_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& t : tables_) names.push_back(t->name());
  return names;
}

std::unique_ptr<Transaction> Database::Begin() {
  // Read the committed version and register it as active under one lock
  // so a concurrent TruncateVersions cannot slip between the two and GC
  // the snapshot before it is pinned.
  std::lock_guard lock(snapshots_mutex_);
  const DbVersion snapshot = CommittedVersion();
  active_snapshots_.insert(snapshot);
  return std::unique_ptr<Transaction>(new Transaction(this, snapshot));
}

std::unique_ptr<Transaction> Database::BeginAt(DbVersion snapshot) {
  SCREP_CHECK_MSG(snapshot <= CommittedVersion(),
                  "snapshot " << snapshot << " beyond committed version "
                              << CommittedVersion());
  std::lock_guard lock(snapshots_mutex_);
  active_snapshots_.insert(snapshot);
  return std::unique_ptr<Transaction>(new Transaction(this, snapshot));
}

void Database::UnregisterSnapshot(DbVersion snapshot) {
  std::lock_guard lock(snapshots_mutex_);
  auto it = active_snapshots_.find(snapshot);
  SCREP_CHECK_MSG(it != active_snapshots_.end(),
                  "unregistering unknown snapshot " << snapshot);
  active_snapshots_.erase(it);
}

Status Database::ApplyWriteSet(const WriteSet& ws, bool force_log) {
  std::lock_guard lock(commit_mutex_);
  const DbVersion expected = CommittedVersion() + 1;
  if (ws.commit_version != expected) {
    return Status::Internal(
        "out-of-order commit: writeset version " +
        std::to_string(ws.commit_version) + ", expected " +
        std::to_string(expected));
  }
  for (const WriteOp& op : ws.ops) {
    Table* t = table(op.table);
    if (op.type == WriteType::kDelete) {
      t->Install(op.key, ws.commit_version, /*deleted=*/true, Row{});
    } else {
      SCREP_CHECK_MSG(op.row.has_value(), "insert/update without row");
      t->Install(op.key, ws.commit_version, /*deleted=*/false, *op.row);
    }
  }
  wal_.Append(ws, force_log);
  committed_version_.store(ws.commit_version, std::memory_order_release);
  return Status::OK();
}

Status Database::ApplyWriteSetLocal(const WriteSet& ws) {
  std::lock_guard lock(commit_mutex_);
  const DbVersion version = CommittedVersion() + 1;
  for (const WriteOp& op : ws.ops) {
    Table* t = table(op.table);
    if (op.type == WriteType::kDelete) {
      t->Install(op.key, version, /*deleted=*/true, Row{});
    } else {
      SCREP_CHECK_MSG(op.row.has_value(), "insert/update without row");
      t->Install(op.key, version, /*deleted=*/false, *op.row);
    }
  }
  committed_version_.store(version, std::memory_order_release);
  return Status::OK();
}

Status Database::BulkLoad(TableId table_id, Row row) {
  Table* t = table(table_id);
  SCREP_RETURN_NOT_OK(t->schema().ValidateRow(row));
  if (row.empty() || row[0].type() != ValueType::kInt64) {
    return Status::InvalidArgument("bulk load row needs INT key");
  }
  const int64_t key = row[0].AsInt();
  t->Install(key, /*version=*/0, /*deleted=*/false, std::move(row));
  return Status::OK();
}

size_t Database::TruncateVersions(DbVersion oldest_active) {
  {
    // Never GC past a live transaction's snapshot.  Transactions that
    // begin after this point read at the current committed version, which
    // is >= any horizon a caller can legitimately pass.
    std::lock_guard lock(snapshots_mutex_);
    if (!active_snapshots_.empty()) {
      oldest_active = std::min(oldest_active, *active_snapshots_.begin());
    }
  }
  size_t discarded = 0;
  size_t n;
  {
    std::lock_guard lock(catalog_mutex_);
    n = tables_.size();
  }
  for (size_t i = 0; i < n; ++i) {
    discarded += table(static_cast<TableId>(i))->TruncateVersions(
        oldest_active);
  }
  return discarded;
}

Status Database::RecoverFrom(const Wal& wal) {
  std::vector<WriteSet> records;
  SCREP_RETURN_NOT_OK(wal.ReadAll(&records));
  for (const WriteSet& ws : records) {
    SCREP_RETURN_NOT_OK(ApplyWriteSet(ws, /*force_log=*/false));
  }
  return Status::OK();
}

}  // namespace screp
