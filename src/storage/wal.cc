#include "storage/wal.h"

namespace screp {

uint64_t Wal::Append(const WriteSet& ws, bool force) {
  std::lock_guard lock(mutex_);
  const uint64_t lsn = appended_++;
  if (force) {
    // Force implies flushing everything buffered before this record, to
    // preserve ordering.  The record bytes come straight from the
    // writeset's memoized encode arena — encoded once when the certifier
    // froze it, appended here without a per-record temporary.
    for (std::string& b : buffered_) {
      durable_ += b;
      ++durable_count_;
    }
    buffered_.clear();
    durable_ += ws.EncodedBytes();
    ++durable_count_;
  } else {
    buffered_.push_back(ws.EncodedBytes());
  }
  return lsn;
}

void Wal::Force() {
  std::lock_guard lock(mutex_);
  for (std::string& b : buffered_) {
    durable_ += b;
    ++durable_count_;
  }
  buffered_.clear();
}

uint64_t Wal::Size() const {
  std::lock_guard lock(mutex_);
  return appended_;
}

uint64_t Wal::DurableSize() const {
  std::lock_guard lock(mutex_);
  return durable_count_;
}

size_t Wal::DurableBytes() const {
  std::lock_guard lock(mutex_);
  return durable_.size();
}

Status Wal::ReadAll(std::vector<WriteSet>* out) const {
  std::lock_guard lock(mutex_);
  size_t offset = 0;
  while (offset < durable_.size()) {
    WriteSet ws;
    if (!WriteSet::DecodeFrom(durable_, &offset, &ws)) {
      return Status::IOError("corrupt WAL record at offset " +
                             std::to_string(offset));
    }
    out->push_back(std::move(ws));
  }
  return Status::OK();
}

void Wal::DropUnforced() {
  std::lock_guard lock(mutex_);
  appended_ -= buffered_.size();
  buffered_.clear();
}

}  // namespace screp
