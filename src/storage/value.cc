#include "storage/value.h"

#include <cstdio>

namespace screp {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return "INT";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "?";
}

double Value::AsNumeric() const {
  switch (type()) {
    case ValueType::kInt64:
      return static_cast<double>(AsInt());
    case ValueType::kDouble:
      return AsDouble();
    default:
      return 0.0;
  }
}

int Value::Compare(const Value& other) const {
  const ValueType a = type();
  const ValueType b = other.type();
  const bool a_num = a == ValueType::kInt64 || a == ValueType::kDouble;
  const bool b_num = b == ValueType::kInt64 || b == ValueType::kDouble;
  if (a == ValueType::kNull || b == ValueType::kNull) {
    if (a == b) return 0;
    return a == ValueType::kNull ? -1 : 1;
  }
  if (a_num && b_num) {
    if (a == ValueType::kInt64 && b == ValueType::kInt64) {
      const int64_t x = AsInt();
      const int64_t y = other.AsInt();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    const double x = AsNumeric();
    const double y = other.AsNumeric();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (a_num != b_num) return a_num ? -1 : 1;  // numerics < strings
  return AsString().compare(other.AsString()) < 0
             ? -1
             : (AsString() == other.AsString() ? 0 : 1);
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return std::to_string(AsInt());
    case ValueType::kDouble: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%g", AsDouble());
      return buf;
    }
    case ValueType::kString:
      return "'" + AsString() + "'";
  }
  return "?";
}

size_t Value::ByteSize() const {
  switch (type()) {
    case ValueType::kNull:
      return 1;
    case ValueType::kInt64:
    case ValueType::kDouble:
      return 8;
    case ValueType::kString:
      return AsString().size() + 4;
  }
  return 0;
}

std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  out += ")";
  return out;
}

size_t RowByteSize(const Row& row) {
  size_t total = 8;
  for (const Value& v : row) total += v.ByteSize();
  return total;
}

}  // namespace screp
