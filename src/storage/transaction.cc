#include "storage/transaction.h"

#include "common/logging.h"
#include "storage/database.h"

namespace screp {

Transaction::Transaction(Database* db, DbVersion snapshot)
    : db_(db), snapshot_(snapshot) {}

Transaction::~Transaction() { db_->UnregisterSnapshot(snapshot_); }

const Transaction::BufferedWrite* Transaction::FindWrite(TableId table,
                                                         int64_t key) const {
  auto it = writes_.find({table, key});
  return it == writes_.end() ? nullptr : &it->second;
}

void Transaction::RecordReadKey(TableId table, int64_t key) const {
  if (!read_keys_.empty() && read_keys_.back().first == table &&
      read_keys_.back().second == key) {
    return;
  }
  read_keys_.emplace_back(table, key);
}

Result<Row> Transaction::Get(TableId table, int64_t key) const {
  RecordReadKey(table, key);
  if (const BufferedWrite* w = FindWrite(table, key)) {
    if (w->type == WriteType::kDelete) {
      return Status::NotFound(db_->TableName(table) + "#" +
                              std::to_string(key));
    }
    return *w->row;
  }
  return db_->table(table)->Get(key, snapshot_);
}

bool Transaction::Exists(TableId table, int64_t key) const {
  RecordReadKey(table, key);
  if (const BufferedWrite* w = FindWrite(table, key)) {
    return w->type != WriteType::kDelete;
  }
  return db_->table(table)->Exists(key, snapshot_);
}

Status Transaction::Insert(TableId table, Row row) {
  SCREP_RETURN_NOT_OK(db_->table(table)->schema().ValidateRow(row));
  const int64_t key = row[0].AsInt();
  if (Exists(table, key)) {
    return Status::AlreadyExists(db_->TableName(table) + "#" +
                                 std::to_string(key));
  }
  writes_[{table, key}] = BufferedWrite{WriteType::kInsert, std::move(row)};
  return Status::OK();
}

Status Transaction::Update(TableId table, int64_t key, Row row) {
  SCREP_RETURN_NOT_OK(db_->table(table)->schema().ValidateRow(row));
  if (row[0].AsInt() != key) {
    return Status::InvalidArgument("primary key may not be updated");
  }
  if (!Exists(table, key)) {
    return Status::NotFound(db_->TableName(table) + "#" +
                            std::to_string(key));
  }
  auto it = writes_.find({table, key});
  if (it != writes_.end() && it->second.type == WriteType::kInsert) {
    // Update over own insert: stays an insert with the new image.
    it->second.row = std::move(row);
  } else {
    writes_[{table, key}] = BufferedWrite{WriteType::kUpdate, std::move(row)};
  }
  return Status::OK();
}

Status Transaction::UpdateColumns(
    TableId table, int64_t key,
    const std::vector<std::pair<int, Value>>& assignments) {
  SCREP_ASSIGN_OR_RETURN(Row row, Get(table, key));
  for (const auto& [col, value] : assignments) {
    if (col <= 0 || static_cast<size_t>(col) >= row.size()) {
      return Status::InvalidArgument("bad column index " +
                                     std::to_string(col));
    }
    row[static_cast<size_t>(col)] = value;
  }
  return Update(table, key, std::move(row));
}

Status Transaction::Delete(TableId table, int64_t key) {
  if (!Exists(table, key)) {
    return Status::NotFound(db_->TableName(table) + "#" +
                            std::to_string(key));
  }
  auto it = writes_.find({table, key});
  if (it != writes_.end() && it->second.type == WriteType::kInsert) {
    // Delete of own insert: net effect is nothing.
    writes_.erase(it);
    return Status::OK();
  }
  writes_[{table, key}] = BufferedWrite{WriteType::kDelete, std::nullopt};
  return Status::OK();
}

void Transaction::Scan(
    TableId table,
    const std::function<bool(int64_t, const Row&)>& visitor) const {
  ScanRange(table, INT64_MIN, INT64_MAX, visitor);
}

void Transaction::ScanRange(
    TableId table, int64_t lo, int64_t hi,
    const std::function<bool(int64_t, const Row&)>& visitor) const {
  read_ranges_.push_back(ReadRange{table, lo, hi});
  // Merge the snapshot scan with this transaction's buffered writes for the
  // table, in key order.
  auto wit = writes_.lower_bound({table, lo});
  const auto wend = writes_.end();
  bool stopped = false;

  auto emit_buffered_until = [&](int64_t bound_exclusive) {
    while (!stopped && wit != wend && wit->first.first == table &&
           wit->first.second < bound_exclusive &&
           wit->first.second <= hi) {
      if (wit->second.type != WriteType::kDelete) {
        if (!visitor(wit->first.second, *wit->second.row)) stopped = true;
      }
      ++wit;
    }
  };

  db_->table(table)->ScanRange(lo, hi, snapshot_,
                               [&](int64_t key, const Row& row) {
    // First, any buffered keys strictly before this snapshot key.
    emit_buffered_until(key);
    if (stopped) return false;
    // Buffered write for the same key overrides the snapshot row.
    if (wit != wend && wit->first.first == table &&
        wit->first.second == key) {
      if (wit->second.type != WriteType::kDelete) {
        if (!visitor(key, *wit->second.row)) stopped = true;
      }
      ++wit;
      return !stopped;
    }
    if (!visitor(key, row)) stopped = true;
    return !stopped;
  });
  if (!stopped) emit_buffered_until(INT64_MAX);
}

bool Transaction::HasIndex(TableId table, int column) const {
  return db_->table(table)->HasIndex(column);
}

uint64_t Transaction::CatalogEpoch() const { return db_->CatalogEpoch(); }

void Transaction::IndexScan(
    TableId table, int column, const Value& value,
    const std::function<bool(int64_t, const Row&)>& visitor) const {
  // Collect candidate keys from the index and from this transaction's
  // buffered writes, then emit merged in key order with buffered writes
  // overriding snapshot rows.
  std::set<int64_t> keys;
  db_->table(table)->IndexLookup(column, value, snapshot_,
                                 [&keys](int64_t key, const Row&) {
                                   keys.insert(key);
                                   return true;
                                 });
  for (const auto& [tk, write] : writes_) {
    if (tk.first != table) continue;
    if (write.type != WriteType::kDelete &&
        (*write.row)[static_cast<size_t>(column)] == value) {
      keys.insert(tk.second);
    }
  }
  for (int64_t key : keys) {
    Result<Row> row = Get(table, key);  // sees own writes, records reads
    if (!row.ok()) continue;            // buffered delete or revalidation miss
    if ((*row)[static_cast<size_t>(column)] != value) continue;
    if (!visitor(key, *row)) return;
  }
}

WriteSet Transaction::BuildWriteSet(bool include_reads) const {
  WriteSet ws;
  ws.snapshot_version = snapshot_;
  for (const auto& [tk, write] : writes_) {
    ws.ops.push_back(WriteOp{tk.first, tk.second, write.type, write.row});
  }
  if (include_reads) {
    ws.read_keys = read_keys_;
    ws.read_ranges = read_ranges_;
  }
  return ws;
}

void Transaction::Abort() { writes_.clear(); }

size_t Transaction::WriteCount() const { return writes_.size(); }

}  // namespace screp
