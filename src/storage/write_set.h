// Writesets: the unit of replication.
//
// When an update transaction commits at its host replica, the set of
// records it inserted, updated or deleted is extracted as a WriteSet,
// certified (checked for write-write conflicts), assigned a commit version
// by the certifier, and forwarded to the other replicas as a *refresh
// transaction* (paper §IV).

#ifndef SCREP_STORAGE_WRITE_SET_H_
#define SCREP_STORAGE_WRITE_SET_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "storage/value.h"

namespace screp {

/// Kind of a single write.
enum class WriteType : uint8_t { kInsert = 0, kUpdate = 1, kDelete = 2 };

/// One record-level write.
struct WriteOp {
  TableId table = 0;
  int64_t key = 0;
  WriteType type = WriteType::kUpdate;
  /// The full after-image of the row (absent for deletes).
  std::optional<Row> row;
};

/// A range of keys a transaction's scan covered (phantom protection in
/// serializable certification).
struct ReadRange {
  TableId table = 0;
  int64_t lo = 0;
  int64_t hi = 0;
};

/// The set of records a transaction wrote, plus replication metadata.
/// When the system runs in serializable certification mode the writeset
/// also carries the transaction's *read set* (keys and scanned ranges),
/// so the certifier can abort read-write conflicts — the standard way to
/// upgrade (G)SI to (update-)serializability for workloads that need it.
class WriteSet {
 public:
  WriteSet() = default;

  TxnId txn_id = 0;
  /// Database version the transaction read from (its snapshot).
  DbVersion snapshot_version = 0;
  /// Version assigned by the certifier at commit; kNoVersion before
  /// certification.
  DbVersion commit_version = kNoVersion;
  /// Replica that executed the transaction.
  ReplicaId origin = kNoReplica;

  std::vector<WriteOp> ops;

  /// Read set (only populated in serializable certification mode).
  std::vector<std::pair<TableId, int64_t>> read_keys;
  std::vector<ReadRange> read_ranges;

  /// Partitioned certification (K > 1 lanes only; empty otherwise).
  /// Per touched shard: the commit version assigned in that shard's own
  /// version space, and the snapshot the transaction read in it.
  /// Deliberately NOT part of EncodeTo()/SerializedBytes(): channels move
  /// writesets as C++ values so the vectors survive transport, while the
  /// wire format, the WAL, and the size/encode memos stay exactly as in
  /// the single-stream configuration (K = 1 byte-identity; WAL-based
  /// recovery is not supported with a sharded certifier).  A mutator of
  /// these fields therefore must NOT call InvalidateCaches().
  std::vector<std::pair<int32_t, DbVersion>> shard_versions;
  std::vector<std::pair<int32_t, DbVersion>> shard_snapshots;

  bool empty() const { return ops.empty(); }
  size_t size() const { return ops.size(); }

  /// Adds a write, coalescing with an earlier write to the same
  /// (table, key): the transaction's last write wins, and an update over an
  /// insert stays an insert.
  void Add(TableId table, int64_t key, WriteType type,
           std::optional<Row> row);

  /// True when the two writesets touch at least one common (table, key) —
  /// the write-write conflict test used by certification.
  bool ConflictsWith(const WriteSet& other) const;

  /// True when `other`'s writes intersect this writeset's *read set*
  /// (keys or scanned ranges) — the read-write conflict test used by
  /// serializable certification.
  bool ReadsConflictWith(const WriteSet& other) const;

  /// Sorted list of distinct tables written (the writeset's table-set,
  /// used to advance per-table versions in the fine-grained scheme).
  std::vector<TableId> TablesWritten() const;

  /// Approximate wire size in bytes (drives network/apply costs).
  size_t ByteSize() const;

  /// Exact size of the EncodeTo() serialization, computed without
  /// allocating — drives the transport layer's per-byte link costs.
  /// Memoized: the first call after a mutation walks the ops, later
  /// calls are O(1). A writeset crosses the refresh fan-out once per
  /// target replica plus once per WAL force, so the walk used to repeat
  /// O(replicas) times per commit.
  size_t SerializedBytes() const;

  /// The un-memoized size computation — the oracle SerializedBytes() is
  /// lockstep-tested (and microbenched) against.
  size_t SerializedBytesUncached() const;

  /// The full EncodeTo() serialization, memoized in a per-writeset
  /// arena: computed once after the certifier freezes the writeset and
  /// reused by every consumer that needs the bytes (WAL force, catch-up
  /// encode) instead of re-encoding into a fresh string each time.
  /// Invalidated when the header fields or the containers change.
  const std::string& EncodedBytes() const;

  /// Binary serialization (used by the WAL and message layer).
  void EncodeTo(std::string* out) const;
  /// Decodes a writeset encoded by EncodeTo. Returns false on corruption.
  static bool DecodeFrom(const std::string& data, size_t* offset,
                         WriteSet* out);

  std::string ToString() const;

 private:
  // Memo caches. Guarded two ways: Add()/DecodeFrom() invalidate
  // explicitly (coalescing can change a row in place without changing
  // any container size), and the stamps below catch direct container
  // pushes (tests build read sets by hand). Header scalars only affect
  // the encoding, not its size, so the size memo ignores them while the
  // encode memo fingerprints them (the certifier stamps commit_version
  // after the size was first queried).
  void InvalidateCaches() const {
    size_valid_ = false;
    enc_valid_ = false;
  }
  bool SizeStampMatches() const {
    return stamp_ops_ == ops.size() && stamp_keys_ == read_keys.size() &&
           stamp_ranges_ == read_ranges.size();
  }
  void RestampSizes() const {
    stamp_ops_ = ops.size();
    stamp_keys_ = read_keys.size();
    stamp_ranges_ = read_ranges.size();
  }

  mutable bool size_valid_ = false;
  mutable bool enc_valid_ = false;
  mutable size_t cached_bytes_ = 0;
  mutable size_t stamp_ops_ = 0, stamp_keys_ = 0, stamp_ranges_ = 0;
  mutable std::string encoded_;
  mutable TxnId enc_txn_ = 0;
  mutable DbVersion enc_snapshot_ = 0, enc_commit_ = 0;
  mutable ReplicaId enc_origin_ = 0;
};

/// A frozen (immutable, shared) writeset — the unit the refresh fan-out
/// passes around. The certifier freezes each committed writeset exactly
/// once; per-target refresh batches, the recent-commit window, and the
/// proxies' apply queues all share the one object by reference instead
/// of deep-copying it per hop.
using WriteSetRef = std::shared_ptr<const WriteSet>;

}  // namespace screp

#endif  // SCREP_STORAGE_WRITE_SET_H_
