// Writesets: the unit of replication.
//
// When an update transaction commits at its host replica, the set of
// records it inserted, updated or deleted is extracted as a WriteSet,
// certified (checked for write-write conflicts), assigned a commit version
// by the certifier, and forwarded to the other replicas as a *refresh
// transaction* (paper §IV).

#ifndef SCREP_STORAGE_WRITE_SET_H_
#define SCREP_STORAGE_WRITE_SET_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "storage/value.h"

namespace screp {

/// Kind of a single write.
enum class WriteType : uint8_t { kInsert = 0, kUpdate = 1, kDelete = 2 };

/// One record-level write.
struct WriteOp {
  TableId table = 0;
  int64_t key = 0;
  WriteType type = WriteType::kUpdate;
  /// The full after-image of the row (absent for deletes).
  std::optional<Row> row;
};

/// A range of keys a transaction's scan covered (phantom protection in
/// serializable certification).
struct ReadRange {
  TableId table = 0;
  int64_t lo = 0;
  int64_t hi = 0;
};

/// The set of records a transaction wrote, plus replication metadata.
/// When the system runs in serializable certification mode the writeset
/// also carries the transaction's *read set* (keys and scanned ranges),
/// so the certifier can abort read-write conflicts — the standard way to
/// upgrade (G)SI to (update-)serializability for workloads that need it.
class WriteSet {
 public:
  WriteSet() = default;

  TxnId txn_id = 0;
  /// Database version the transaction read from (its snapshot).
  DbVersion snapshot_version = 0;
  /// Version assigned by the certifier at commit; kNoVersion before
  /// certification.
  DbVersion commit_version = kNoVersion;
  /// Replica that executed the transaction.
  ReplicaId origin = kNoReplica;

  std::vector<WriteOp> ops;

  /// Read set (only populated in serializable certification mode).
  std::vector<std::pair<TableId, int64_t>> read_keys;
  std::vector<ReadRange> read_ranges;

  bool empty() const { return ops.empty(); }
  size_t size() const { return ops.size(); }

  /// Adds a write, coalescing with an earlier write to the same
  /// (table, key): the transaction's last write wins, and an update over an
  /// insert stays an insert.
  void Add(TableId table, int64_t key, WriteType type,
           std::optional<Row> row);

  /// True when the two writesets touch at least one common (table, key) —
  /// the write-write conflict test used by certification.
  bool ConflictsWith(const WriteSet& other) const;

  /// True when `other`'s writes intersect this writeset's *read set*
  /// (keys or scanned ranges) — the read-write conflict test used by
  /// serializable certification.
  bool ReadsConflictWith(const WriteSet& other) const;

  /// Sorted list of distinct tables written (the writeset's table-set,
  /// used to advance per-table versions in the fine-grained scheme).
  std::vector<TableId> TablesWritten() const;

  /// Approximate wire size in bytes (drives network/apply costs).
  size_t ByteSize() const;

  /// Exact size of the EncodeTo() serialization, computed without
  /// allocating — drives the transport layer's per-byte link costs.
  size_t SerializedBytes() const;

  /// Binary serialization (used by the WAL and message layer).
  void EncodeTo(std::string* out) const;
  /// Decodes a writeset encoded by EncodeTo. Returns false on corruption.
  static bool DecodeFrom(const std::string& data, size_t* offset,
                         WriteSet* out);

  std::string ToString() const;
};

}  // namespace screp

#endif  // SCREP_STORAGE_WRITE_SET_H_
