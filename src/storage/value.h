// Typed values and rows for the storage engine.

#ifndef SCREP_STORAGE_VALUE_H_
#define SCREP_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace screp {

/// Column/value types supported by the engine.
enum class ValueType { kNull = 0, kInt64, kDouble, kString };

/// Returns "NULL", "INT", "DOUBLE" or "STRING".
const char* ValueTypeName(ValueType type);

/// A dynamically typed SQL value.
class Value {
 public:
  /// NULL value.
  Value() : data_(std::monostate{}) {}
  /// INT value.
  Value(int64_t v) : data_(v) {}  // NOLINT(runtime/explicit)
  Value(int v) : data_(static_cast<int64_t>(v)) {}  // NOLINT
  /// DOUBLE value.
  Value(double v) : data_(v) {}  // NOLINT
  /// STRING value.
  Value(std::string v) : data_(std::move(v)) {}  // NOLINT
  Value(const char* v) : data_(std::string(v)) {}  // NOLINT

  ValueType type() const {
    switch (data_.index()) {
      case 0:
        return ValueType::kNull;
      case 1:
        return ValueType::kInt64;
      case 2:
        return ValueType::kDouble;
      default:
        return ValueType::kString;
    }
  }

  bool is_null() const { return type() == ValueType::kNull; }

  /// Pre-condition: type() == kInt64.
  int64_t AsInt() const { return std::get<int64_t>(data_); }
  /// Pre-condition: type() == kDouble.
  double AsDouble() const { return std::get<double>(data_); }
  /// Pre-condition: type() == kString.
  const std::string& AsString() const { return std::get<std::string>(data_); }

  /// Numeric view: kInt64 or kDouble widened to double; 0 otherwise.
  double AsNumeric() const;

  /// Total ordering: NULL < numerics (by value) < strings. Values of
  /// numeric types compare by numeric value (1 == 1.0).
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  /// SQL-literal-ish rendering ('abc', 42, 3.5, NULL).
  std::string ToString() const;

  /// Approximate in-memory footprint in bytes (for writeset sizing).
  size_t ByteSize() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

/// A tuple of values, positionally matching a Schema.
using Row = std::vector<Value>;

/// Renders a row as "(v1, v2, ...)".
std::string RowToString(const Row& row);

/// Approximate in-memory footprint of a row.
size_t RowByteSize(const Row& row);

}  // namespace screp

#endif  // SCREP_STORAGE_VALUE_H_
