// Table schemas: column names/types and row validation.

#ifndef SCREP_STORAGE_SCHEMA_H_
#define SCREP_STORAGE_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/value.h"

namespace screp {

/// One column definition.
struct Column {
  std::string name;
  ValueType type;
};

/// An ordered list of columns. Column 0 is always the INT primary key.
class Schema {
 public:
  Schema() = default;

  /// Builds a schema; the first column must be the INT primary key.
  explicit Schema(std::vector<Column> columns);

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of a column by name, or -1 when absent.
  int ColumnIndex(const std::string& name) const;

  /// Checks arity and (loose) type compatibility of a row against this
  /// schema. NULLs are allowed in non-key columns; INT widens to DOUBLE.
  Status ValidateRow(const Row& row) const;

  /// "name TYPE, name TYPE, ..." rendering.
  std::string ToString() const;

 private:
  std::vector<Column> columns_;
  std::unordered_map<std::string, int> index_;
};

}  // namespace screp

#endif  // SCREP_STORAGE_SCHEMA_H_
