#include "storage/write_set.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace screp {

namespace {

void PutU8(std::string* out, uint8_t v) { out->push_back(static_cast<char>(v)); }

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutF64(std::string* out, double v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void PutString(std::string* out, const std::string& s) {
  PutU64(out, s.size());
  out->append(s);
}

bool GetU8(const std::string& in, size_t* off, uint8_t* v) {
  if (*off + 1 > in.size()) return false;
  *v = static_cast<uint8_t>(in[*off]);
  *off += 1;
  return true;
}

bool GetU64(const std::string& in, size_t* off, uint64_t* v) {
  if (*off + 8 > in.size()) return false;
  std::memcpy(v, in.data() + *off, 8);
  *off += 8;
  return true;
}

bool GetI64(const std::string& in, size_t* off, int64_t* v) {
  uint64_t u;
  if (!GetU64(in, off, &u)) return false;
  *v = static_cast<int64_t>(u);
  return true;
}

bool GetF64(const std::string& in, size_t* off, double* v) {
  if (*off + 8 > in.size()) return false;
  std::memcpy(v, in.data() + *off, 8);
  *off += 8;
  return true;
}

bool GetString(const std::string& in, size_t* off, std::string* s) {
  uint64_t n;
  if (!GetU64(in, off, &n)) return false;
  if (*off + n > in.size()) return false;
  s->assign(in, *off, n);
  *off += n;
  return true;
}

void EncodeValue(std::string* out, const Value& v) {
  PutU8(out, static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt64:
      PutI64(out, v.AsInt());
      break;
    case ValueType::kDouble:
      PutF64(out, v.AsDouble());
      break;
    case ValueType::kString:
      PutString(out, v.AsString());
      break;
  }
}

bool DecodeValue(const std::string& in, size_t* off, Value* v) {
  uint8_t tag;
  if (!GetU8(in, off, &tag)) return false;
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      *v = Value();
      return true;
    case ValueType::kInt64: {
      int64_t x;
      if (!GetI64(in, off, &x)) return false;
      *v = Value(x);
      return true;
    }
    case ValueType::kDouble: {
      double x;
      if (!GetF64(in, off, &x)) return false;
      *v = Value(x);
      return true;
    }
    case ValueType::kString: {
      std::string s;
      if (!GetString(in, off, &s)) return false;
      *v = Value(std::move(s));
      return true;
    }
  }
  return false;
}

}  // namespace

void WriteSet::Add(TableId table, int64_t key, WriteType type,
                   std::optional<Row> row) {
  // Coalescing can rewrite a row in place without changing ops.size(),
  // so the memo stamps alone cannot catch this mutation.
  InvalidateCaches();
  for (WriteOp& op : ops) {
    if (op.table == table && op.key == key) {
      // Last write wins; insert followed by update remains an insert so
      // refresh application still creates the record at other replicas.
      if (op.type == WriteType::kInsert && type == WriteType::kUpdate) {
        op.row = std::move(row);
      } else if (op.type == WriteType::kInsert && type == WriteType::kDelete) {
        // Insert then delete within one transaction: net effect is nothing,
        // but keep the delete so refresh application is idempotent.
        op.type = WriteType::kDelete;
        op.row.reset();
      } else {
        op.type = type;
        op.row = std::move(row);
      }
      return;
    }
  }
  ops.push_back(WriteOp{table, key, type, std::move(row)});
}

bool WriteSet::ConflictsWith(const WriteSet& other) const {
  // Writesets in these workloads are small (a handful of records), so the
  // quadratic scan beats building hash sets.
  for (const WriteOp& a : ops) {
    for (const WriteOp& b : other.ops) {
      if (a.table == b.table && a.key == b.key) return true;
    }
  }
  return false;
}

bool WriteSet::ReadsConflictWith(const WriteSet& other) const {
  for (const WriteOp& w : other.ops) {
    for (const auto& [table, key] : read_keys) {
      if (w.table == table && w.key == key) return true;
    }
    for (const ReadRange& range : read_ranges) {
      if (w.table == range.table && w.key >= range.lo &&
          w.key <= range.hi) {
        return true;
      }
    }
  }
  return false;
}

std::vector<TableId> WriteSet::TablesWritten() const {
  std::vector<TableId> tables;
  tables.reserve(ops.size());
  for (const WriteOp& op : ops) tables.push_back(op.table);
  std::sort(tables.begin(), tables.end());
  tables.erase(std::unique(tables.begin(), tables.end()), tables.end());
  return tables;
}

size_t WriteSet::ByteSize() const {
  size_t total = 32;  // header metadata
  for (const WriteOp& op : ops) {
    total += 16;
    if (op.row) total += RowByteSize(*op.row);
  }
  return total;
}

size_t WriteSet::SerializedBytes() const {
  if (!size_valid_ || !SizeStampMatches()) {
    // Restamping would mask the container change from the encode memo's
    // own stamp check, so invalidate it alongside.
    enc_valid_ = false;
    cached_bytes_ = SerializedBytesUncached();
    RestampSizes();
    size_valid_ = true;
  }
  return cached_bytes_;
}

const std::string& WriteSet::EncodedBytes() const {
  const bool stale = !enc_valid_ || !SizeStampMatches() ||
                     enc_txn_ != txn_id || enc_snapshot_ != snapshot_version ||
                     enc_commit_ != commit_version || enc_origin_ != origin;
  if (stale) {
    size_valid_ = false;  // mirror image of the restamp hazard above
    encoded_.clear();
    EncodeTo(&encoded_);
    enc_txn_ = txn_id;
    enc_snapshot_ = snapshot_version;
    enc_commit_ = commit_version;
    enc_origin_ = origin;
    RestampSizes();
    enc_valid_ = true;
  }
  return encoded_;
}

size_t WriteSet::SerializedBytesUncached() const {
  // Mirrors EncodeTo() field by field; write_set_test asserts the two
  // stay in lockstep.
  size_t total = 8 + 8 + 8 + 8;  // txn_id, snapshot, commit, origin
  total += 8;                    // n_ops
  for (const WriteOp& op : ops) {
    total += 8 + 8 + 1 + 1;  // table, key, type, has_row
    if (op.row) {
      total += 8;  // n_vals
      for (const Value& v : *op.row) {
        total += 1;  // type tag
        switch (v.type()) {
          case ValueType::kNull:
            break;
          case ValueType::kInt64:
          case ValueType::kDouble:
            total += 8;
            break;
          case ValueType::kString:
            total += 8 + v.AsString().size();
            break;
        }
      }
    }
  }
  total += 8 + 16 * read_keys.size();    // n_read_keys + (table, key)
  total += 8 + 24 * read_ranges.size();  // n_ranges + (table, lo, hi)
  return total;
}

void WriteSet::EncodeTo(std::string* out) const {
  PutU64(out, txn_id);
  PutI64(out, snapshot_version);
  PutI64(out, commit_version);
  PutI64(out, origin);
  PutU64(out, ops.size());
  for (const WriteOp& op : ops) {
    PutI64(out, op.table);
    PutI64(out, op.key);
    PutU8(out, static_cast<uint8_t>(op.type));
    PutU8(out, op.row.has_value() ? 1 : 0);
    if (op.row) {
      PutU64(out, op.row->size());
      for (const Value& v : *op.row) EncodeValue(out, v);
    }
  }
  PutU64(out, read_keys.size());
  for (const auto& [table, key] : read_keys) {
    PutI64(out, table);
    PutI64(out, key);
  }
  PutU64(out, read_ranges.size());
  for (const ReadRange& range : read_ranges) {
    PutI64(out, range.table);
    PutI64(out, range.lo);
    PutI64(out, range.hi);
  }
}

bool WriteSet::DecodeFrom(const std::string& data, size_t* offset,
                          WriteSet* out) {
  out->InvalidateCaches();
  // Not part of the wire format: decoding into a reused writeset must
  // not leave another transaction's shard coordinates attached.
  out->shard_versions.clear();
  out->shard_snapshots.clear();
  uint64_t n_ops;
  int64_t table, key, origin64;
  if (!GetU64(data, offset, &out->txn_id)) return false;
  if (!GetI64(data, offset, &out->snapshot_version)) return false;
  if (!GetI64(data, offset, &out->commit_version)) return false;
  if (!GetI64(data, offset, &origin64)) return false;
  out->origin = static_cast<ReplicaId>(origin64);
  if (!GetU64(data, offset, &n_ops)) return false;
  out->ops.clear();
  out->ops.reserve(n_ops);
  for (uint64_t i = 0; i < n_ops; ++i) {
    WriteOp op;
    uint8_t type_tag, has_row;
    if (!GetI64(data, offset, &table)) return false;
    if (!GetI64(data, offset, &key)) return false;
    if (!GetU8(data, offset, &type_tag)) return false;
    if (!GetU8(data, offset, &has_row)) return false;
    op.table = static_cast<TableId>(table);
    op.key = key;
    op.type = static_cast<WriteType>(type_tag);
    if (has_row) {
      uint64_t n_vals;
      if (!GetU64(data, offset, &n_vals)) return false;
      Row row;
      row.reserve(n_vals);
      for (uint64_t j = 0; j < n_vals; ++j) {
        Value v;
        if (!DecodeValue(data, offset, &v)) return false;
        row.push_back(std::move(v));
      }
      op.row = std::move(row);
    }
    out->ops.push_back(std::move(op));
  }
  uint64_t n_read_keys;
  if (!GetU64(data, offset, &n_read_keys)) return false;
  out->read_keys.clear();
  out->read_keys.reserve(n_read_keys);
  for (uint64_t i = 0; i < n_read_keys; ++i) {
    int64_t table, key;
    if (!GetI64(data, offset, &table)) return false;
    if (!GetI64(data, offset, &key)) return false;
    out->read_keys.emplace_back(static_cast<TableId>(table), key);
  }
  uint64_t n_ranges;
  if (!GetU64(data, offset, &n_ranges)) return false;
  out->read_ranges.clear();
  out->read_ranges.reserve(n_ranges);
  for (uint64_t i = 0; i < n_ranges; ++i) {
    int64_t table, lo, hi;
    if (!GetI64(data, offset, &table)) return false;
    if (!GetI64(data, offset, &lo)) return false;
    if (!GetI64(data, offset, &hi)) return false;
    out->read_ranges.push_back(
        ReadRange{static_cast<TableId>(table), lo, hi});
  }
  return true;
}

std::string WriteSet::ToString() const {
  std::string out = "ws{txn=" + std::to_string(txn_id) +
                    " snap=" + std::to_string(snapshot_version) +
                    " commit=" + std::to_string(commit_version) + " ops=[";
  for (size_t i = 0; i < ops.size(); ++i) {
    if (i > 0) out += ", ";
    const WriteOp& op = ops[i];
    const char* kind = op.type == WriteType::kInsert
                           ? "ins"
                           : (op.type == WriteType::kUpdate ? "upd" : "del");
    out += std::string(kind) + " t" + std::to_string(op.table) + "#" +
           std::to_string(op.key);
  }
  out += "]}";
  return out;
}

}  // namespace screp
