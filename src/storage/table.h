// An MVCC table: per-key version chains read at a snapshot version.
//
// Readers never block writers and vice versa: a transaction reading at
// snapshot S sees, for each key, the newest committed version <= S (classic
// snapshot isolation visibility).  Writes are installed by the commit path
// (Database::ApplyWriteSet) with an explicit commit version so the replica
// can follow the certifier's global commit order.
//
// The table is thread-safe: the replicated system drives it from a single
// event loop, but the engine is also usable (and stress-tested) from
// multiple threads.

#ifndef SCREP_STORAGE_TABLE_H_
#define SCREP_STORAGE_TABLE_H_

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace screp {

/// One committed version of a row.
struct RowVersion {
  DbVersion version;
  bool deleted;
  Row row;  ///< empty when deleted
};

/// An MVCC table keyed by INT primary key.
class Table {
 public:
  Table(TableId id, std::string name, Schema schema);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  TableId id() const { return id_; }
  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Reads the newest version of `key` visible at `snapshot`.
  /// Returns NotFound when the key does not exist (or is deleted) at that
  /// snapshot.
  Result<Row> Get(int64_t key, DbVersion snapshot) const;

  /// True when `key` has a live (non-deleted) version visible at snapshot.
  bool Exists(int64_t key, DbVersion snapshot) const;

  /// Installs a version with the given commit version. Versions for a key
  /// must be installed in non-decreasing version order (enforced).
  void Install(int64_t key, DbVersion version, bool deleted, Row row);

  /// Creates a secondary index on column `column` (by ordinal), backfilled
  /// from all existing row versions. Idempotent.
  Status CreateIndex(int column);

  /// True when column `column` has a secondary index.
  bool HasIndex(int column) const;

  /// Visits live rows whose `column` equals `value` at `snapshot`, in
  /// primary-key order, using the secondary index. The index is a
  /// candidate structure over *all* versions, so each candidate is
  /// revalidated against the snapshot (standard MVCC index semantics).
  /// Pre-condition: HasIndex(column).
  void IndexLookup(int column, const Value& value, DbVersion snapshot,
                   const std::function<bool(int64_t key, const Row& row)>&
                       visitor) const;

  /// Visits every live row visible at `snapshot` in primary-key order;
  /// the visitor returns false to stop early.
  void Scan(DbVersion snapshot,
            const std::function<bool(int64_t key, const Row& row)>& visitor)
      const;

  /// Visits live rows with key in [lo, hi] at `snapshot`, in key order.
  void ScanRange(
      int64_t lo, int64_t hi, DbVersion snapshot,
      const std::function<bool(int64_t key, const Row& row)>& visitor) const;

  /// Number of distinct keys ever inserted (live or dead).
  size_t KeyCount() const;

  /// Number of live rows at `snapshot`.
  size_t LiveRowCount(DbVersion snapshot) const;

  /// Garbage-collects versions no longer visible to any snapshot >=
  /// `oldest_active`: for each key keeps the newest version <=
  /// oldest_active plus everything newer. Returns versions discarded.
  size_t TruncateVersions(DbVersion oldest_active);

  /// Total stored row-versions (for GC accounting/tests).
  size_t VersionCount() const;

 private:
  using Chain = std::vector<RowVersion>;  // ascending by version

  /// Newest entry in `chain` with version <= snapshot, or nullptr.
  static const RowVersion* VisibleIn(const Chain& chain, DbVersion snapshot);

  /// Adds `key` to the index candidate sets for `row`'s indexed values
  /// (caller holds the write lock).
  void IndexInsertLocked(int64_t key, const Row& row);

  TableId id_;
  std::string name_;
  Schema schema_;

  mutable std::shared_mutex mutex_;
  std::map<int64_t, Chain> rows_;  // ordered => deterministic scans

  /// Secondary indexes: column ordinal -> (value -> candidate keys).
  /// Candidates are keys that at *some* version held the value; readers
  /// revalidate at their snapshot.
  std::unordered_map<int, std::map<Value, std::set<int64_t>>> indexes_;
};

}  // namespace screp

#endif  // SCREP_STORAGE_TABLE_H_
