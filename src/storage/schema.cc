#include "storage/schema.h"

#include "common/logging.h"

namespace screp {

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {
  SCREP_CHECK_MSG(!columns_.empty(), "schema needs at least the key column");
  SCREP_CHECK_MSG(columns_[0].type == ValueType::kInt64,
                  "column 0 must be the INT primary key");
  for (size_t i = 0; i < columns_.size(); ++i) {
    index_[columns_[i].name] = static_cast<int>(i);
  }
  SCREP_CHECK_MSG(index_.size() == columns_.size(),
                  "duplicate column names in schema");
}

int Schema::ColumnIndex(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? -1 : it->second;
}

Status Schema::ValidateRow(const Row& row) const {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " values, schema has " +
        std::to_string(columns_.size()) + " columns");
  }
  if (row[0].type() != ValueType::kInt64) {
    return Status::InvalidArgument("primary key must be INT");
  }
  for (size_t i = 1; i < row.size(); ++i) {
    const ValueType vt = row[i].type();
    const ValueType ct = columns_[i].type;
    if (vt == ValueType::kNull) continue;
    const bool ok =
        vt == ct || (vt == ValueType::kInt64 && ct == ValueType::kDouble);
    if (!ok) {
      return Status::InvalidArgument("column '" + columns_[i].name +
                                     "' expects " + ValueTypeName(ct) +
                                     ", got " + ValueTypeName(vt));
    }
  }
  return Status::OK();
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ' ';
    out += ValueTypeName(columns_[i].type);
  }
  return out;
}

}  // namespace screp
