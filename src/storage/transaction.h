// Snapshot-isolated transactions over a Database.
//
// A Transaction reads from a fixed snapshot and buffers its writes
// privately (read-your-own-writes).  It never installs anything into the
// shared store itself: at commit time the middleware extracts the writeset
// (BuildWriteSet), the certifier assigns the commit version and checks
// first-committer-wins, and the proxy applies the writeset through
// Database::ApplyWriteSet in global order.

#ifndef SCREP_STORAGE_TRANSACTION_H_
#define SCREP_STORAGE_TRANSACTION_H_

#include <functional>
#include <map>
#include <optional>

#include "common/status.h"
#include "common/types.h"
#include "storage/write_set.h"

namespace screp {

class Database;

/// A snapshot-isolated read/write transaction.
class Transaction {
 public:
  ~Transaction();
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  /// The snapshot this transaction reads at.
  DbVersion snapshot() const { return snapshot_; }

  /// True when no write has been buffered (the read-only fast path).
  bool read_only() const { return writes_.empty(); }

  /// Reads a row; sees this transaction's own buffered writes first, then
  /// the snapshot.
  Result<Row> Get(TableId table, int64_t key) const;

  /// True when the key is live from this transaction's viewpoint.
  bool Exists(TableId table, int64_t key) const;

  /// Buffers an insert. Fails with AlreadyExists when the key is live at
  /// the snapshot or already inserted by this transaction.
  Status Insert(TableId table, Row row);

  /// Buffers a full-row update. Fails with NotFound when the key is not
  /// live.
  Status Update(TableId table, int64_t key, Row row);

  /// Read-modify-write of selected columns.
  Status UpdateColumns(TableId table, int64_t key,
                       const std::vector<std::pair<int, Value>>& assignments);

  /// Buffers a delete. Fails with NotFound when the key is not live.
  Status Delete(TableId table, int64_t key);

  /// Visits live rows of a table in key order, overlaying this
  /// transaction's buffered writes on the snapshot. Visitor returns false
  /// to stop.
  void Scan(TableId table,
            const std::function<bool(int64_t key, const Row& row)>& visitor)
      const;

  /// Range variant of Scan over keys in [lo, hi].
  void ScanRange(TableId table, int64_t lo, int64_t hi,
                 const std::function<bool(int64_t key, const Row& row)>&
                     visitor) const;

  /// True when `table`.`column` (ordinal) has a secondary index.
  bool HasIndex(TableId table, int column) const;

  /// The database's catalog epoch (see Database::CatalogEpoch) — the
  /// executor compares it against a cached plan's build epoch.
  uint64_t CatalogEpoch() const;

  /// Visits live rows whose `column` equals `value` through the secondary
  /// index, overlaying this transaction's buffered writes, in key order.
  /// Pre-condition: HasIndex(table, column).
  void IndexScan(TableId table, int column, const Value& value,
                 const std::function<bool(int64_t key, const Row& row)>&
                     visitor) const;

  /// Extracts the buffered writes as a WriteSet (snapshot_version filled
  /// in; commit_version left unassigned). When `include_reads` is true the
  /// writeset also carries the read set (for serializable certification).
  WriteSet BuildWriteSet(bool include_reads = false) const;

  /// Partial writeset so far — used by the proxy's early certification
  /// after each update statement (paper §IV).
  WriteSet PartialWriteSet() const { return BuildWriteSet(); }

  /// Discards buffered writes.
  void Abort();

  /// Number of buffered record writes.
  size_t WriteCount() const;

  /// Keys read so far (point accesses, including misses — the absence of
  /// a row is also an observation).
  const std::vector<std::pair<TableId, int64_t>>& read_keys() const {
    return read_keys_;
  }
  /// Key ranges scanned so far.
  const std::vector<ReadRange>& read_ranges() const { return read_ranges_; }

 private:
  friend class Database;
  Transaction(Database* db, DbVersion snapshot);

  struct BufferedWrite {
    WriteType type;
    std::optional<Row> row;  // absent for deletes
  };

  /// nullptr when this transaction has not written (table, key).
  const BufferedWrite* FindWrite(TableId table, int64_t key) const;

  /// Records a point read (deduplicated against the most recent entry,
  /// which catches the common read-modify-write pattern).
  void RecordReadKey(TableId table, int64_t key) const;

  Database* db_;
  DbVersion snapshot_;
  // Ordered so scans can merge deterministically.
  std::map<std::pair<TableId, int64_t>, BufferedWrite> writes_;
  // Read set, tracked for serializable certification.
  mutable std::vector<std::pair<TableId, int64_t>> read_keys_;
  mutable std::vector<ReadRange> read_ranges_;
};

}  // namespace screp

#endif  // SCREP_STORAGE_TRANSACTION_H_
