// A minimal write-ahead log storing serialized writesets.
//
// In the paper's prototype, transaction durability is enforced by the
// certifier (which forces its log) while replicas run with log forcing
// turned off.  Both behaviours use this WAL: appends are buffered, and
// Force() makes everything appended so far durable.  The log is held in
// memory with explicit serialization so recovery genuinely re-decodes
// bytes.

#ifndef SCREP_STORAGE_WAL_H_
#define SCREP_STORAGE_WAL_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "storage/write_set.h"

namespace screp {

/// Append-only log of certified writesets.
class Wal {
 public:
  Wal() = default;
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Appends a writeset; returns its log sequence number (0-based).
  /// When `force` is true the record is immediately durable.
  uint64_t Append(const WriteSet& ws, bool force);

  /// Makes every appended record durable.
  void Force();

  /// Number of records appended.
  uint64_t Size() const;

  /// Number of records that are durable (forced).
  uint64_t DurableSize() const;

  /// Total bytes of serialized durable log.
  size_t DurableBytes() const;

  /// Decodes durable records in order into `out`. Returns IOError on a
  /// corrupt record.
  Status ReadAll(std::vector<WriteSet>* out) const;

  /// Drops *unforced* records — simulates a crash losing buffered log.
  void DropUnforced();

 private:
  mutable std::mutex mutex_;
  std::string durable_;            // serialized forced records
  std::vector<std::string> buffered_;  // serialized but not yet forced
  uint64_t appended_ = 0;
  uint64_t durable_count_ = 0;
};

}  // namespace screp

#endif  // SCREP_STORAGE_WAL_H_
