#include "storage/table.h"

#include <algorithm>

#include <mutex>

#include "common/logging.h"

namespace screp {

Table::Table(TableId id, std::string name, Schema schema)
    : id_(id), name_(std::move(name)), schema_(std::move(schema)) {}

const RowVersion* Table::VisibleIn(const Chain& chain, DbVersion snapshot) {
  // Chains are short (GC keeps them trimmed); scan from the newest end.
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    if (it->version <= snapshot) return &*it;
  }
  return nullptr;
}

Result<Row> Table::Get(int64_t key, DbVersion snapshot) const {
  std::shared_lock lock(mutex_);
  auto it = rows_.find(key);
  if (it == rows_.end()) {
    return Status::NotFound(name_ + "#" + std::to_string(key));
  }
  const RowVersion* v = VisibleIn(it->second, snapshot);
  if (v == nullptr || v->deleted) {
    return Status::NotFound(name_ + "#" + std::to_string(key));
  }
  return v->row;
}

bool Table::Exists(int64_t key, DbVersion snapshot) const {
  std::shared_lock lock(mutex_);
  auto it = rows_.find(key);
  if (it == rows_.end()) return false;
  const RowVersion* v = VisibleIn(it->second, snapshot);
  return v != nullptr && !v->deleted;
}

Status Table::CreateIndex(int column) {
  std::unique_lock lock(mutex_);
  if (column <= 0 || static_cast<size_t>(column) >= schema_.num_columns()) {
    return Status::InvalidArgument("bad index column " +
                                   std::to_string(column) + " for table '" +
                                   name_ + "'");
  }
  if (indexes_.count(column) != 0) return Status::OK();  // idempotent
  auto& index = indexes_[column];
  for (const auto& [key, chain] : rows_) {
    for (const RowVersion& v : chain) {
      if (v.deleted) continue;
      index[v.row[static_cast<size_t>(column)]].insert(key);
    }
  }
  return Status::OK();
}

bool Table::HasIndex(int column) const {
  std::shared_lock lock(mutex_);
  return indexes_.count(column) != 0;
}

void Table::IndexLookup(
    int column, const Value& value, DbVersion snapshot,
    const std::function<bool(int64_t, const Row&)>& visitor) const {
  std::shared_lock lock(mutex_);
  auto iit = indexes_.find(column);
  SCREP_CHECK_MSG(iit != indexes_.end(),
                  "no index on column " << column << " of " << name_);
  auto vit = iit->second.find(value);
  if (vit == iit->second.end()) return;
  // std::set iterates keys in order => deterministic primary-key order.
  for (int64_t key : vit->second) {
    auto rit = rows_.find(key);
    if (rit == rows_.end()) continue;  // candidate GC'd away
    const RowVersion* v = VisibleIn(rit->second, snapshot);
    if (v == nullptr || v->deleted) continue;
    // Revalidate: the candidate may hold a different value at this
    // snapshot (the index covers every version ever written).
    if (v->row[static_cast<size_t>(column)] != value) continue;
    if (!visitor(key, v->row)) return;
  }
}

void Table::IndexInsertLocked(int64_t key, const Row& row) {
  for (auto& [column, index] : indexes_) {
    index[row[static_cast<size_t>(column)]].insert(key);
  }
}

void Table::Install(int64_t key, DbVersion version, bool deleted, Row row) {
  std::unique_lock lock(mutex_);
  if (!deleted && !indexes_.empty()) IndexInsertLocked(key, row);
  Chain& chain = rows_[key];
  SCREP_CHECK_MSG(chain.empty() || chain.back().version <= version,
                  "out-of-order install on " << name_ << "#" << key << ": "
                                             << version << " after "
                                             << chain.back().version);
  if (!chain.empty() && chain.back().version == version) {
    // Same-version overwrite: a transaction's own commit applying on top of
    // a refresh duplicate; last write wins.
    chain.back().deleted = deleted;
    chain.back().row = std::move(row);
    return;
  }
  chain.push_back(RowVersion{version, deleted, std::move(row)});
}

void Table::Scan(
    DbVersion snapshot,
    const std::function<bool(int64_t, const Row&)>& visitor) const {
  std::shared_lock lock(mutex_);
  for (const auto& [key, chain] : rows_) {
    const RowVersion* v = VisibleIn(chain, snapshot);
    if (v == nullptr || v->deleted) continue;
    if (!visitor(key, v->row)) return;
  }
}

void Table::ScanRange(
    int64_t lo, int64_t hi, DbVersion snapshot,
    const std::function<bool(int64_t, const Row&)>& visitor) const {
  std::shared_lock lock(mutex_);
  for (auto it = rows_.lower_bound(lo); it != rows_.end() && it->first <= hi;
       ++it) {
    const RowVersion* v = VisibleIn(it->second, snapshot);
    if (v == nullptr || v->deleted) continue;
    if (!visitor(it->first, v->row)) return;
  }
}

size_t Table::KeyCount() const {
  std::shared_lock lock(mutex_);
  return rows_.size();
}

size_t Table::LiveRowCount(DbVersion snapshot) const {
  std::shared_lock lock(mutex_);
  size_t n = 0;
  for (const auto& [key, chain] : rows_) {
    (void)key;
    const RowVersion* v = VisibleIn(chain, snapshot);
    if (v != nullptr && !v->deleted) ++n;
  }
  return n;
}

size_t Table::TruncateVersions(DbVersion oldest_active) {
  std::unique_lock lock(mutex_);
  size_t discarded = 0;
  for (auto it = rows_.begin(); it != rows_.end();) {
    Chain& chain = it->second;
    // Find the newest version <= oldest_active; everything before it is
    // unreachable.
    size_t keep_from = 0;
    for (size_t i = 0; i < chain.size(); ++i) {
      if (chain[i].version <= oldest_active) keep_from = i;
    }
    if (keep_from > 0) {
      discarded += keep_from;
      chain.erase(chain.begin(),
                  chain.begin() + static_cast<ptrdiff_t>(keep_from));
    }
    // Drop keys whose only surviving version is an old tombstone.
    if (chain.size() == 1 && chain[0].deleted &&
        chain[0].version <= oldest_active) {
      discarded += 1;
      it = rows_.erase(it);
    } else {
      ++it;
    }
  }
  return discarded;
}

size_t Table::VersionCount() const {
  std::shared_lock lock(mutex_);
  size_t n = 0;
  for (const auto& [key, chain] : rows_) {
    (void)key;
    n += chain.size();
  }
  return n;
}

}  // namespace screp
