// ThreadRuntime: the wall-clock Runtime backend.
//
// Three kinds of threads:
//
//   * ONE event-loop thread executes every Schedule/ScheduleAt/Post
//     callback serially, in (due steady-clock time, submission order).
//     All middleware state (LB, proxies, certifier, channels, event log,
//     auditor) is touched only here, so the components keep the
//     single-threaded invariants they were written with while time runs
//     for real.
//   * A worker pool serves Spawn() — closed-loop load-generator clients,
//     blocking work.  Workers reach middleware state only via Post(),
//     the runtime's MPSC ingress (a mutex+condvar timer queue that any
//     thread may feed).
//   * Callers' own threads (e.g. screp_server connection handlers) also
//     use Post()/cv-handoff; the loop thread never blocks on them.
//
// The typed net/ channels (net/channel.h) schedule their deliveries
// through this runtime, so under ThreadRuntime every channel hop is a
// real cross-queue handoff on the steady clock instead of a virtual-time
// event.
//
// Shutdown (Stop): the runtime stops accepting *future* timers, keeps
// executing everything already due — including zero-delay work those
// callbacks enqueue, i.e. in-flight channel deliveries — for up to
// `drain_grace`, then discards what remains (counted, never executed
// concurrently with teardown) and joins all threads.  Spawned tasks must
// have returned before Stop() is called; Stop() joins the pool.

#ifndef SCREP_RUNTIME_THREAD_RUNTIME_H_
#define SCREP_RUNTIME_THREAD_RUNTIME_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "runtime/runtime.h"

namespace screp::runtime {

struct ThreadRuntimeConfig {
  /// Worker threads serving Spawn() (>= 0; 0 = Spawn refused).
  int worker_threads = 4;
  /// Seed of the runtime entropy stream; 0 draws one from the system
  /// random source (each run different, as wall-clock runs are anyway).
  uint64_t entropy_seed = 0;
  /// How long Stop() keeps executing nearly-due callbacks before
  /// discarding the rest (bounds shutdown latency).
  Duration drain_grace = Millis(100);
};

class ThreadRuntime : public Runtime {
 public:
  explicit ThreadRuntime(ThreadRuntimeConfig config = {});
  ~ThreadRuntime() override;

  ThreadRuntime(const ThreadRuntime&) = delete;
  ThreadRuntime& operator=(const ThreadRuntime&) = delete;

  /// Microseconds of steady-clock time since construction.
  TimePoint Now() const override;

  void Schedule(Duration delay, Callback fn) override;
  void ScheduleAt(TimePoint when, Callback fn) override;
  void Post(Callback fn) override;
  void Spawn(Callback fn) override;
  void Stop() override;

  bool deterministic() const override { return false; }

  /// Loop-thread only (like all middleware state).
  Rng* entropy() override { return &entropy_; }

  /// Callbacks executed on the event loop so far.
  uint64_t executed() const;
  /// Not-yet-due callbacks discarded by Stop() (none ran after teardown).
  uint64_t discarded_on_stop() const;
  /// True from Stop() on.
  bool stopped() const;
  /// True when the calling thread is the event-loop thread.
  bool OnLoopThread() const {
    return std::this_thread::get_id() == loop_thread_.get_id();
  }

 private:
  struct TimedEvent {
    TimePoint due;
    uint64_t seq;
    Callback fn;
  };
  struct EventLater {
    bool operator()(const TimedEvent& a, const TimedEvent& b) const {
      if (a.due != b.due) return a.due > b.due;
      return a.seq > b.seq;
    }
  };

  void EnqueueLocked(TimePoint due, Callback fn);
  void LoopMain();
  void WorkerMain();

  const ThreadRuntimeConfig config_;
  const std::chrono::steady_clock::time_point start_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::priority_queue<TimedEvent, std::vector<TimedEvent>, EventLater>
      queue_;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  uint64_t discarded_ = 0;
  bool draining_ = false;
  /// Deadline (runtime clock) past which remaining events are discarded.
  TimePoint drain_deadline_ = 0;
  bool loop_done_ = false;

  std::mutex spawn_mu_;
  std::condition_variable spawn_cv_;
  std::deque<Callback> spawn_queue_;
  bool spawn_closed_ = false;

  Rng entropy_;
  bool stopped_ = false;  // guarded by stop_mu_ (Stop is idempotent)
  std::mutex stop_mu_;

  std::vector<std::thread> workers_;
  std::thread loop_thread_;  // started last, joined first
};

}  // namespace screp::runtime

#endif  // SCREP_RUNTIME_THREAD_RUNTIME_H_
