#include "runtime/thread_runtime.h"

#include <random>

#include "common/logging.h"

namespace screp::runtime {

namespace {
uint64_t DrawSystemSeed() {
  std::random_device rd;
  return (static_cast<uint64_t>(rd()) << 32) ^ rd();
}
}  // namespace

ThreadRuntime::ThreadRuntime(ThreadRuntimeConfig config)
    : config_(config),
      start_(std::chrono::steady_clock::now()),
      entropy_(config.entropy_seed != 0 ? config.entropy_seed
                                        : DrawSystemSeed()) {
  SCREP_CHECK(config_.worker_threads >= 0);
  workers_.reserve(static_cast<size_t>(config_.worker_threads));
  for (int i = 0; i < config_.worker_threads; ++i) {
    workers_.emplace_back([this]() { WorkerMain(); });
  }
  loop_thread_ = std::thread([this]() { LoopMain(); });
}

ThreadRuntime::~ThreadRuntime() { Stop(); }

TimePoint ThreadRuntime::Now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

void ThreadRuntime::EnqueueLocked(TimePoint due, Callback fn) {
  queue_.push(TimedEvent{due, next_seq_++, std::move(fn)});
}

void ThreadRuntime::Schedule(Duration delay, Callback fn) {
  if (delay < 0) delay = 0;
  std::lock_guard<std::mutex> lock(mu_);
  if (draining_ && Now() + delay > drain_deadline_) {
    ++discarded_;
    return;
  }
  EnqueueLocked(Now() + delay, std::move(fn));
  cv_.notify_all();
}

void ThreadRuntime::ScheduleAt(TimePoint when, Callback fn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (draining_ && when > drain_deadline_) {
    ++discarded_;
    return;
  }
  EnqueueLocked(when, std::move(fn));
  cv_.notify_all();
}

void ThreadRuntime::Post(Callback fn) { Schedule(0, std::move(fn)); }

void ThreadRuntime::Spawn(Callback fn) {
  SCREP_CHECK_MSG(config_.worker_threads > 0,
                  "ThreadRuntime::Spawn with no worker threads");
  {
    std::lock_guard<std::mutex> lock(spawn_mu_);
    SCREP_CHECK_MSG(!spawn_closed_, "ThreadRuntime::Spawn after Stop");
    spawn_queue_.push_back(std::move(fn));
  }
  spawn_cv_.notify_one();
}

void ThreadRuntime::LoopMain() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (queue_.empty()) {
      if (draining_) break;
      cv_.wait(lock, [this]() { return !queue_.empty() || draining_; });
      continue;
    }
    const TimePoint due = queue_.top().due;
    const TimePoint now = Now();
    if (draining_ && due > drain_deadline_) {
      // Everything left is beyond the drain window: discard in bulk.
      // (The queue is due-ordered, so the top being late means all are.)
      while (!queue_.empty()) {
        queue_.pop();
        ++discarded_;
      }
      break;
    }
    if (due > now) {
      // Wait until the event is due or an earlier one / drain arrives.
      cv_.wait_for(lock, std::chrono::microseconds(due - now));
      continue;
    }
    // Due: pop and run outside the lock so the callback can schedule.
    Callback fn = std::move(const_cast<TimedEvent&>(queue_.top()).fn);
    queue_.pop();
    ++executed_;
    lock.unlock();
    fn();
    lock.lock();
  }
  loop_done_ = true;
  cv_.notify_all();
}

void ThreadRuntime::WorkerMain() {
  std::unique_lock<std::mutex> lock(spawn_mu_);
  for (;;) {
    spawn_cv_.wait(lock,
                   [this]() { return !spawn_queue_.empty() || spawn_closed_; });
    if (spawn_queue_.empty()) {
      if (spawn_closed_) return;
      continue;
    }
    Callback fn = std::move(spawn_queue_.front());
    spawn_queue_.pop_front();
    lock.unlock();
    fn();
    lock.lock();
  }
}

void ThreadRuntime::Stop() {
  {
    std::lock_guard<std::mutex> stop_lock(stop_mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
    drain_deadline_ = Now() + config_.drain_grace;
    cv_.notify_all();
  }
  if (loop_thread_.joinable()) loop_thread_.join();
  {
    std::lock_guard<std::mutex> lock(spawn_mu_);
    spawn_closed_ = true;
  }
  spawn_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

uint64_t ThreadRuntime::executed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return executed_;
}

uint64_t ThreadRuntime::discarded_on_stop() const {
  std::lock_guard<std::mutex> lock(mu_);
  return discarded_;
}

bool ThreadRuntime::stopped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

}  // namespace screp::runtime
