// The Runtime seam: the one clock + scheduling interface every layer of
// the middleware runs on.
//
// Components above src/sim/ never touch the simulator (or a wall clock)
// directly; they hold a Runtime* and use
//
//   Now()            — current time on the runtime's clock (microseconds)
//   Schedule()       — run a callback after a delay
//   ScheduleAt()     — run a callback at an absolute time
//   ScheduleCancellable() — Schedule() returning a cancellation handle
//   Post()           — thread-safe enqueue from ANY thread; the callback
//                      runs on the runtime's event thread (the MPSC
//                      entry point behind the typed net/ channels)
//   Spawn()          — hand a task to the runtime's worker pool
//   Stop()           — drain in-flight work and shut the runtime down
//   entropy()        — the runtime's own RNG stream (for jitter that
//                      should not perturb the workload streams)
//
// Two backends implement it:
//
//   SimRuntime    (runtime/sim_runtime.h)    — wraps the deterministic
//     discrete-event simulator; single-threaded, virtual time,
//     byte-identical to pre-seam behavior.  Spawn/Post degrade to
//     immediate events so a "threaded" program is a deterministic one.
//   ThreadRuntime (runtime/thread_runtime.h) — wall-clock backend: a
//     dedicated event-loop thread executes every scheduled callback in
//     due-time order (steady clock), an MPSC queue feeds it from foreign
//     threads, and a worker pool serves Spawn().
//
// Execution model contract (both backends): callbacks passed to
// Schedule/ScheduleAt/Post run serially on the runtime's event thread, in
// (due time, submission order).  Middleware state is therefore
// single-threaded by construction; only Spawn() tasks run elsewhere, and
// they communicate with the middleware exclusively via Post().

#ifndef SCREP_RUNTIME_RUNTIME_H_
#define SCREP_RUNTIME_RUNTIME_H_

#include <atomic>
#include <functional>
#include <memory>
#include <utility>

#include "common/rng.h"
#include "common/sim_time.h"

namespace screp::runtime {

/// Handle to a scheduled callback; Cancel() prevents a not-yet-fired
/// callback from running.  Cheap to copy; an empty handle is inert.
class TaskHandle {
 public:
  TaskHandle() = default;
  explicit TaskHandle(std::shared_ptr<std::atomic<bool>> cancelled)
      : cancelled_(std::move(cancelled)) {}

  /// Prevents the callback from running if it has not fired yet.
  /// Idempotent; safe after the callback ran (no-op).
  void Cancel() {
    if (cancelled_) cancelled_->store(true, std::memory_order_relaxed);
  }

  bool valid() const { return cancelled_ != nullptr; }

 private:
  std::shared_ptr<std::atomic<bool>> cancelled_;
};

/// The clock + scheduling interface (see file comment).
class Runtime {
 public:
  using Callback = std::function<void()>;

  virtual ~Runtime() = default;

  /// Current time on the runtime's clock, in microseconds.  Virtual time
  /// under SimRuntime; steady-clock time since start under ThreadRuntime.
  virtual TimePoint Now() const = 0;

  /// Schedules `fn` to run on the event thread at Now() + delay.
  /// Negative delays are clamped to zero.  Same-time callbacks fire in
  /// submission order.  Must be called from the event thread (or before
  /// the runtime starts); from other threads use Post().
  virtual void Schedule(Duration delay, Callback fn) = 0;

  /// Schedules `fn` at an absolute time (>= Now()).
  virtual void ScheduleAt(TimePoint when, Callback fn) = 0;

  /// Thread-safe: enqueues `fn` to run on the event thread as soon as
  /// possible (after already-due callbacks).  This is the MPSC ingress
  /// every foreign thread (Spawn tasks, server connection threads) uses
  /// to reach middleware state.
  virtual void Post(Callback fn) = 0;

  /// Runs `fn` on the runtime's worker pool.  Under SimRuntime this is a
  /// deterministic immediate event on the (single) event thread.
  virtual void Spawn(Callback fn) = 0;

  /// Shuts the runtime down.  ThreadRuntime: stops accepting future
  /// timers, drains every already-due callback and in-flight channel
  /// delivery (so no callback leaks into teardown), discards not-yet-due
  /// timers, and joins its threads.  SimRuntime: asserts the event queue
  /// already drained (the harness runs it dry first).  Idempotent.
  virtual void Stop() = 0;

  /// True for the deterministic simulator backend.
  virtual bool deterministic() const = 0;

  /// The runtime's own RNG stream: deterministic under SimRuntime,
  /// seeded per-run under ThreadRuntime.  Workload/channel streams keep
  /// their explicitly-plumbed seeds; this stream is for runtime-level
  /// jitter only, so drawing from it never perturbs those.
  virtual Rng* entropy() = 0;

  /// Schedule() returning a handle whose Cancel() suppresses the
  /// callback if it has not fired yet.
  TaskHandle ScheduleCancellable(Duration delay, Callback fn) {
    auto cancelled = std::make_shared<std::atomic<bool>>(false);
    Schedule(delay, [cancelled, fn = std::move(fn)]() {
      if (!cancelled->load(std::memory_order_relaxed)) fn();
    });
    return TaskHandle(std::move(cancelled));
  }
};

}  // namespace screp::runtime

#endif  // SCREP_RUNTIME_RUNTIME_H_
