// SimRuntime: the deterministic Runtime backend, wrapping the
// discrete-event simulator.
//
// Every Runtime call delegates 1:1 to the wrapped Simulator, so a system
// built over SimRuntime schedules exactly the event sequence the
// pre-seam code did — default-config bench output is byte-identical, and
// the auditor / profiler / regression-gate infrastructure keeps its
// determinism.  Post() and Spawn() degrade to immediate events: there is
// one thread, and "as soon as possible" is a zero-delay event in FIFO
// order.

#ifndef SCREP_RUNTIME_SIM_RUNTIME_H_
#define SCREP_RUNTIME_SIM_RUNTIME_H_

#include <memory>

#include "runtime/runtime.h"
#include "sim/simulator.h"

namespace screp::runtime {

class SimRuntime : public Runtime {
 public:
  /// Owns a fresh Simulator.
  SimRuntime() : owned_(std::make_unique<Simulator>()), sim_(owned_.get()) {}

  /// Wraps an externally-owned Simulator (the harness/test drives it).
  explicit SimRuntime(Simulator* sim) : sim_(sim) {}

  /// The wrapped simulator — the harness drives the event loop through
  /// it (RunUntil/RunAll/Step).
  Simulator* sim() { return sim_; }
  const Simulator* sim() const { return sim_; }

  TimePoint Now() const override { return sim_->Now(); }

  void Schedule(Duration delay, Callback fn) override {
    sim_->Schedule(delay, std::move(fn));
  }

  void ScheduleAt(TimePoint when, Callback fn) override {
    sim_->ScheduleAt(when, std::move(fn));
  }

  void Post(Callback fn) override { sim_->Schedule(0, std::move(fn)); }

  void Spawn(Callback fn) override { sim_->Schedule(0, std::move(fn)); }

  /// The deterministic backend cannot "drain" — the harness must have run
  /// the queue dry (StopGc/StopSampling exist precisely so it can).  A
  /// non-empty queue at Stop() is a harness bug: some daemon would leak
  /// its continuation.
  void Stop() override {
    SCREP_CHECK_MSG(sim_->Empty(),
                    "SimRuntime::Stop with " << sim_->PendingEvents()
                                             << " pending event(s)");
  }

  bool deterministic() const override { return true; }

  Rng* entropy() override { return &entropy_; }

  /// Reseeds the runtime entropy stream (deterministic by default).
  void SeedEntropy(uint64_t seed) { entropy_.Seed(seed); }

 private:
  std::unique_ptr<Simulator> owned_;  // null when wrapping external
  Simulator* sim_;
  Rng entropy_{0x52554e54494d45ULL};  // "RUNTIME"
};

}  // namespace screp::runtime

#endif  // SCREP_RUNTIME_SIM_RUNTIME_H_
