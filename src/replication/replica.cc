#include "replication/replica.h"

namespace screp {

Replica::Replica(runtime::Runtime* rt, ReplicaId id,
                 const sql::TransactionRegistry* registry,
                 ProxyConfig config, bool eager)
    : id_(id), db_(std::make_unique<Database>()) {
  proxy_ = std::make_unique<Proxy>(rt, id, db_.get(), registry, config,
                                   eager);
}

}  // namespace screp
