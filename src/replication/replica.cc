#include "replication/replica.h"

namespace screp {

Replica::Replica(Simulator* sim, ReplicaId id,
                 const sql::TransactionRegistry* registry,
                 ProxyConfig config, bool eager)
    : id_(id), db_(std::make_unique<Database>()) {
  proxy_ = std::make_unique<Proxy>(sim, id, db_.get(), registry, config,
                                   eager);
}

}  // namespace screp
