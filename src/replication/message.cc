#include "replication/message.h"

#include <cstdio>

namespace screp {

const char* TxnOutcomeName(TxnOutcome outcome) {
  switch (outcome) {
    case TxnOutcome::kCommitted:
      return "committed";
    case TxnOutcome::kCertificationAbort:
      return "certification-abort";
    case TxnOutcome::kEarlyAbort:
      return "early-abort";
    case TxnOutcome::kExecutionError:
      return "execution-error";
    case TxnOutcome::kReplicaFailure:
      return "replica-failure";
    case TxnOutcome::kOverloaded:
      return "overloaded";
  }
  return "?";
}

std::string StageTimes::ToString() const {
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "version=%.2fms queries=%.2fms certify=%.2fms sync=%.2fms "
                "commit=%.2fms global=%.2fms",
                ToMillis(version), ToMillis(queries), ToMillis(certify),
                ToMillis(sync), ToMillis(commit), ToMillis(global));
  return buf;
}

}  // namespace screp
