#include "replication/certifier.h"

#include <utility>

#include "common/logging.h"

namespace screp {

Certifier::Certifier(Simulator* sim, CertifierConfig config,
                     int replica_count, bool eager)
    : sim_(sim),
      config_(config),
      replica_count_(replica_count),
      eager_(eager),
      cpu_(sim, "certifier-cpu", 1),
      disk_(sim, "certifier-disk", 1),
      eager_tracker_(replica_count),
      replica_down_(static_cast<size_t>(replica_count), false) {}

void Certifier::SubmitCertification(WriteSet ws) {
  SCREP_CHECK_MSG(!ws.empty(), "read-only writesets never reach the certifier");
  SCREP_CHECK(ws.origin != kNoReplica);
  // Single CPU server => certifications are processed in arrival order,
  // which keeps version assignment deterministic.
  cpu_.Submit(config_.certify_cpu_time, [this, ws = std::move(ws)]() mutable {
    Certify(std::move(ws));
  });
}

void Certifier::Certify(WriteSet ws) {
  // Idempotence: a transaction re-submitted after a certifier failover
  // (or a duplicated message) gets its original decision.
  if (auto it = decided_.find(ws.txn_id); it != decided_.end()) {
    if (!muted_) decision_cb_(ws.origin, it->second);
    return;
  }
  // Forward to the standby BEFORE any decision can be announced, so the
  // standby's deterministic state always covers everything the replicas
  // may have observed (synchronous state-machine replication).
  if (forward_cb_) forward_cb_(ws);
  // Conservative abort when the snapshot predates the retained window.
  const DbVersion window_start =
      recent_.empty() ? 0 : recent_.front().commit_version - 1;
  if (ws.snapshot_version < window_start) {
    ++window_aborts_;
    ++aborts_;
    CertDecision decision{ws.txn_id, /*commit=*/false, kNoVersion};
    decided_[ws.txn_id] = decision;
    if (!muted_) decision_cb_(ws.origin, decision);
    return;
  }
  // First-committer-wins: conflict with any writeset committed after this
  // transaction's snapshot aborts it. recent_ is ascending by version, so
  // scan from the back and stop at the snapshot. Serializable mode also
  // aborts read-write conflicts (this transaction read data a concurrent
  // committed transaction wrote).
  const bool serializable =
      config_.mode == CertificationMode::kSerializable;
  for (auto it = recent_.rbegin(); it != recent_.rend(); ++it) {
    if (it->commit_version <= ws.snapshot_version) break;
    const bool ww = ws.ConflictsWith(*it);
    const bool rw = serializable && ws.ReadsConflictWith(*it);
    if (ww || rw) {
      ++aborts_;
      if (!ww && rw) ++rw_aborts_;
      CertDecision decision{ws.txn_id, /*commit=*/false, kNoVersion};
      decided_[ws.txn_id] = decision;
      if (!muted_) decision_cb_(ws.origin, decision);
      return;
    }
  }
  // Commit: assign the next version in the global total order.
  ws.commit_version = ++v_commit_;
  ++certified_;
  decided_[ws.txn_id] =
      CertDecision{ws.txn_id, /*commit=*/true, ws.commit_version};
  recent_.push_back(ws);
  while (recent_.size() > config_.conflict_window) recent_.pop_front();
  if (eager_) {
    eager_tracker_.OnCertified(ws.txn_id);
    eager_origins_[ws.txn_id] = ws.origin;
  }
  MakeDurableAndAnnounce(std::move(ws));
}

void Certifier::MakeDurableAndAnnounce(WriteSet ws) {
  // Group commit: batch decisions while a force is in flight; the next
  // force covers the whole batch with a single disk write.
  force_batch_.push_back(std::move(ws));
  if (force_in_flight_) return;
  force_in_flight_ = true;
  auto force_next = std::make_shared<std::function<void()>>();
  *force_next = [this, force_next]() {
    std::vector<WriteSet> batch;
    batch.swap(force_batch_);
    disk_.Submit(config_.log_force_time, [this, batch = std::move(batch),
                                          force_next]() {
      for (const WriteSet& ws : batch) {
        wal_.Append(ws, /*force=*/true);
        Announce(ws);
      }
      if (!force_batch_.empty()) {
        (*force_next)();
      } else {
        force_in_flight_ = false;
      }
    });
  };
  (*force_next)();
}

void Certifier::Announce(const WriteSet& ws) {
  if (muted_) return;  // standby: identical state, silent channels
  CertDecision decision{ws.txn_id, /*commit=*/true, ws.commit_version};
  decision_cb_(ws.origin, decision);
  for (ReplicaId r = 0; r < replica_count_; ++r) {
    if (r == ws.origin) continue;
    if (replica_down_[static_cast<size_t>(r)]) continue;  // catches up later
    refresh_cb_(r, ws);
  }
}

void Certifier::MarkReplicaDown(ReplicaId replica) {
  SCREP_CHECK(replica >= 0 && replica < replica_count_);
  if (replica_down_[static_cast<size_t>(replica)]) return;
  replica_down_[static_cast<size_t>(replica)] = true;
  if (!eager_) return;
  int active = 0;
  for (bool down : replica_down_) active += down ? 0 : 1;
  SCREP_CHECK_MSG(active >= 1, "all replicas down");
  // Lowering the bar may complete pending global commits.
  for (TxnId txn : eager_tracker_.SetActiveReplicaCount(active)) {
    auto it = eager_origins_.find(txn);
    SCREP_CHECK(it != eager_origins_.end());
    const ReplicaId origin = it->second;
    eager_origins_.erase(it);
    // The origin itself may be the crashed replica; its client will be
    // told of the failure by the load balancer instead.
    if (origin != replica) global_commit_cb_(origin, txn);
  }
}

void Certifier::MarkReplicaUp(ReplicaId replica) {
  SCREP_CHECK(replica >= 0 && replica < replica_count_);
  if (!replica_down_[static_cast<size_t>(replica)]) return;
  replica_down_[static_cast<size_t>(replica)] = false;
  if (!eager_) return;
  int active = 0;
  for (bool down : replica_down_) active += down ? 0 : 1;
  // Raising the bar never completes anything.
  (void)eager_tracker_.SetActiveReplicaCount(active);
}

bool Certifier::IsReplicaDown(ReplicaId replica) const {
  SCREP_CHECK(replica >= 0 && replica < replica_count_);
  return replica_down_[static_cast<size_t>(replica)];
}

Status Certifier::FetchSince(
    DbVersion from,
    const std::function<void(const WriteSet&)>& sink) const {
  if (from >= v_commit_) return Status::OK();
  const DbVersion window_start =
      recent_.empty() ? v_commit_ + 1 : recent_.front().commit_version;
  if (from + 1 >= window_start) {
    for (const WriteSet& ws : recent_) {
      if (ws.commit_version > from) sink(ws);
    }
    return Status::OK();
  }
  // The window no longer covers the requested range: decode the durable
  // log (recovery is rare, so the full scan is acceptable).
  std::vector<WriteSet> log;
  SCREP_RETURN_NOT_OK(wal_.ReadAll(&log));
  for (const WriteSet& ws : log) {
    if (ws.commit_version > from) sink(ws);
  }
  return Status::OK();
}

void Certifier::NotifyReplicaCommitted(TxnId txn) {
  if (!eager_) return;
  if (eager_tracker_.OnReplicaCommitted(txn)) {
    auto it = eager_origins_.find(txn);
    SCREP_CHECK(it != eager_origins_.end());
    const ReplicaId origin = it->second;
    eager_origins_.erase(it);
    if (!muted_) global_commit_cb_(origin, txn);
  }
}

}  // namespace screp
