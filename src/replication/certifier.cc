#include "replication/certifier.h"

#include <algorithm>
#include <cstddef>
#include <utility>

#include "common/logging.h"

namespace screp {

Certifier::Certifier(runtime::Runtime* rt, CertifierConfig config,
                     int replica_count, bool eager)
    : rt_(rt),
      config_(config),
      replica_count_(replica_count),
      eager_(eager),
      cpu_(rt, "certifier-cpu", 1),
      disk_(rt, "certifier-disk", 1),
      conflict_index_(config.mode == CertificationMode::kSerializable),
      eager_tracker_(replica_count),
      replica_down_(static_cast<size_t>(replica_count), false),
      refresh_credits_(static_cast<size_t>(replica_count),
                       static_cast<int64_t>(config.refresh_credit_window)),
      deferred_refresh_(static_cast<size_t>(replica_count)) {}

void Certifier::SetObservability(obs::Observability* obs) {
  if (obs == nullptr) {
    tracer_ = nullptr;
    event_log_ = nullptr;
    ctr_certified_ = nullptr;
    ctr_aborts_ww_ = nullptr;
    ctr_aborts_rw_ = nullptr;
    ctr_aborts_window_ = nullptr;
    ctr_forces_ = nullptr;
    ctr_shed_ = nullptr;
    batch_size_hist_ = nullptr;
    last_batch_gauge_ = nullptr;
    return;
  }
  tracer_ = obs->tracer();
  event_log_ = obs->event_log();
  obs::MetricsRegistry* registry = obs->registry();
  ctr_certified_ = registry->GetCounter("certifier.certified");
  ctr_aborts_ww_ = registry->GetCounter("certifier.aborts.ww");
  ctr_aborts_rw_ = registry->GetCounter("certifier.aborts.rw");
  ctr_aborts_window_ = registry->GetCounter("certifier.aborts.window");
  ctr_forces_ = registry->GetCounter("certifier.forces");
  ctr_shed_ = registry->GetCounter("certifier.shed");
  batch_size_hist_ = registry->GetHistogram("certifier.batch_size");
  last_batch_gauge_ = registry->GetGauge("certifier.last_batch_size");
}

void Certifier::SubmitCertification(WriteSet ws) {
  SCREP_CHECK_MSG(!ws.empty(), "read-only writesets never reach the certifier");
  SCREP_CHECK(ws.origin != kNoReplica);
  // Intake bound: refuse on arrival once the CPU queue is at the bound,
  // BEFORE the writeset can enter the certification stream — a shed
  // submission is never forwarded to the standby, so primary and standby
  // still process identical streams.  Failover resubmissions (already in
  // decided_) are exempt: their decision exists and must be re-sent.
  if (!muted_ && config_.max_intake > 0 &&
      cpu_.QueueLength() >= config_.max_intake &&
      decided_.find(ws.txn_id) == decided_.end()) {
    ShedSubmission(ws);
    return;
  }
  // Single CPU server => certifications are processed in arrival order,
  // which keeps version assignment deterministic.
  const TimePoint enqueued = rt_->Now();
  cpu_.Submit(config_.certify_cpu_time,
              [this, enqueued, ws = std::move(ws)]() mutable {
                const TxnId txn = ws.txn_id;
                Certify(std::move(ws));
                if (tracer_ != nullptr && !muted_) {
                  // The single-server FIFO CPU served this writeset for
                  // exactly certify_cpu_time at the end of the interval;
                  // everything before that was intake queueing.
                  const TimePoint service_start =
                      rt_->Now() - config_.certify_cpu_time;
                  tracer_->Add({.name = "certifier.intake_wait",
                                .category = "certifier",
                                .pid = obs::kCertifierPid,
                                .tid = static_cast<int64_t>(txn),
                                .start = enqueued,
                                .duration = service_start - enqueued,
                                .txn = txn});
                  tracer_->Add({.name = "certifier.certify",
                                .category = "certifier",
                                .pid = obs::kCertifierPid,
                                .tid = static_cast<int64_t>(txn),
                                .start = service_start,
                                .duration = config_.certify_cpu_time,
                                .txn = txn});
                }
              });
}

void Certifier::ShedSubmission(const WriteSet& ws) {
  ++shed_;
  if (ctr_shed_ != nullptr) ctr_shed_->Increment();
  if (event_log_ != nullptr && event_log_->enabled()) {
    obs::Event e;
    e.kind = obs::EventKind::kShed;
    e.at = rt_->Now();
    e.txn = ws.txn_id;
    e.replica = ws.origin;
    e.detail = "certifier";
    event_log_->Append(std::move(e));
  }
  // Deliberately NOT recorded in decided_: nothing was certified, and a
  // retry must be certified fresh (against its new snapshot).
  CertDecision decision;
  decision.txn_id = ws.txn_id;
  decision.commit = false;
  decision.overloaded = true;
  decision_cb_(ws.origin, decision);
}

void Certifier::EmitVerdict(const WriteSet& ws, bool commit,
                            const char* reason, DbVersion conflict_version,
                            TxnId conflict_txn) {
  if (muted_ || event_log_ == nullptr || !event_log_->enabled()) return;
  obs::Event e;
  e.kind = obs::EventKind::kCertVerdict;
  e.at = rt_->Now();
  e.txn = ws.txn_id;
  e.replica = ws.origin;
  e.snapshot = ws.snapshot_version;
  e.committed = commit;
  e.read_only = false;
  if (commit) {
    e.commit_version = ws.commit_version;
  } else {
    e.detail = reason;
    e.conflict_version = conflict_version;
    e.conflict_txn = conflict_txn;
  }
  event_log_->Append(std::move(e));
}

void Certifier::RecordDecision(const CertDecision& decision) {
  decided_[decision.txn_id] = decision;
  decided_log_.emplace_back(v_commit_, decision.txn_id);
  // Retire decisions a full conflict window old: a transaction
  // re-submitted that long after its decision would be window-aborted
  // anyway, so idempotence only needs the in-window tail.
  const DbVersion horizon = static_cast<DbVersion>(config_.conflict_window);
  while (!decided_log_.empty() &&
         v_commit_ - decided_log_.front().first > horizon) {
    decided_.erase(decided_log_.front().second);
    decided_log_.pop_front();
  }
}

void Certifier::Certify(WriteSet ws) {
  // Idempotence: a transaction re-submitted after a certifier failover
  // (or a duplicated message) gets its original decision.
  if (auto it = decided_.find(ws.txn_id); it != decided_.end()) {
    if (!muted_) decision_cb_(ws.origin, it->second);
    return;
  }
  // Forward to the standby BEFORE any decision can be announced, so the
  // standby's deterministic state always covers everything the replicas
  // may have observed (synchronous state-machine replication).
  if (forward_cb_) forward_cb_(ws);
  // Conservative abort when the snapshot predates the retained window.
  const DbVersion window_start =
      recent_.empty() ? 0 : recent_.front()->commit_version - 1;
  if (ws.snapshot_version < window_start) {
    ++window_aborts_;
    ++aborts_;
    if (!muted_) {
      if (ctr_aborts_window_ != nullptr) ctr_aborts_window_->Increment();
      SCREP_LOG(kWarn) << "[certifier] conservative window abort of txn "
                       << ws.txn_id << ": snapshot " << ws.snapshot_version
                       << " predates the retained window (starts at "
                       << window_start << ", conflict_window="
                       << config_.conflict_window << ")";
    }
    EmitVerdict(ws, /*commit=*/false, "window", kNoVersion, 0);
    CertDecision decision{ws.txn_id, /*commit=*/false, kNoVersion};
    RecordDecision(decision);
    if (!muted_) decision_cb_(ws.origin, decision);
    return;
  }
  // First-committer-wins: conflict with any writeset committed after this
  // transaction's snapshot aborts it.  Serializable mode also aborts
  // read-write conflicts (this transaction read data a concurrent
  // committed transaction wrote).  The indexed path looks each written /
  // read key up in the conflict index — O(|writeset|) — and reports the
  // newest conflicting version, exactly what the oracle's newest-first
  // window rescan reports.
  const bool serializable =
      config_.mode == CertificationMode::kSerializable;
  bool ww = false, rw = false;
  DbVersion conflict_version = kNoVersion;
  TxnId conflict_txn = 0;
  if (config_.linear_scan_oracle) {
    // recent_ is ascending by version: scan from the back and stop at
    // the snapshot; the first conflict found is the newest.
    for (auto it = recent_.rbegin(); it != recent_.rend(); ++it) {
      const WriteSet& committed = **it;
      if (committed.commit_version <= ws.snapshot_version) break;
      ww = ws.ConflictsWith(committed);
      rw = serializable && ws.ReadsConflictWith(committed);
      if (ww || rw) {
        conflict_version = committed.commit_version;
        conflict_txn = committed.txn_id;
        break;
      }
    }
  } else {
    CommittedKeyIndex::Hit write_hit, read_hit;
    const bool has_write =
        conflict_index_.LatestWriteConflict(ws, ws.snapshot_version,
                                            &write_hit);
    const bool has_read =
        serializable && conflict_index_.LatestReadConflict(
                            ws, ws.snapshot_version, &read_hit);
    if (has_write || has_read) {
      // Attribute the abort to the newest conflicting writeset; when it
      // conflicts both ways the write-write conflict wins (matching the
      // oracle's per-writeset check order).
      if (has_write && write_hit.version >= read_hit.version) {
        ww = true;
        rw = has_read && read_hit.version == write_hit.version;
        conflict_version = write_hit.version;
        conflict_txn = write_hit.txn;
      } else {
        rw = true;
        conflict_version = read_hit.version;
        conflict_txn = read_hit.txn;
      }
    }
  }
  if (ww || rw) {
    ++aborts_;
    if (!ww && rw) ++rw_aborts_;
    if (!muted_) {
      if (!ww && rw) {
        if (ctr_aborts_rw_ != nullptr) ctr_aborts_rw_->Increment();
      } else if (ctr_aborts_ww_ != nullptr) {
        ctr_aborts_ww_->Increment();
      }
      SCREP_LOG(kDebug) << "[certifier] certification abort of txn "
                        << ws.txn_id << " from replica " << ws.origin
                        << " (snapshot " << ws.snapshot_version << "): "
                        << (ww ? "write-write" : "read-write")
                        << " conflict with committed version "
                        << conflict_version;
    }
    EmitVerdict(ws, /*commit=*/false, (!ww && rw) ? "rw" : "ww",
                conflict_version, conflict_txn);
    CertDecision decision{ws.txn_id, /*commit=*/false, kNoVersion};
    RecordDecision(decision);
    if (!muted_) decision_cb_(ws.origin, decision);
    return;
  }
  // Commit: assign the next version in the global total order, then
  // freeze the writeset — one immutable object shared by the conflict
  // window, the force batch, every per-target refresh batch and the
  // proxies' apply queues.
  ws.commit_version = ++v_commit_;
  ++certified_;
  EmitVerdict(ws, /*commit=*/true, nullptr, kNoVersion, 0);
  if (!muted_ && ctr_certified_ != nullptr) ctr_certified_->Increment();
  RecordDecision(CertDecision{ws.txn_id, /*commit=*/true, ws.commit_version});
  WriteSetRef frozen = std::make_shared<const WriteSet>(std::move(ws));
  recent_.push_back(frozen);
  if (!config_.linear_scan_oracle) conflict_index_.Insert(*recent_.back());
  while (recent_.size() > config_.conflict_window) {
    if (!config_.linear_scan_oracle) conflict_index_.Erase(*recent_.front());
    recent_.pop_front();
  }
  if (eager_) {
    eager_tracker_.OnCertified(frozen->txn_id);
    eager_origins_[frozen->txn_id] = frozen->origin;
  }
  if (tracer_ != nullptr && !muted_ && tracer_->active()) {
    // Remember when certification finished so the announcement after the
    // group-commit force can span the durability wait.
    certify_done_at_[frozen->txn_id] = rt_->Now();
  }
  MakeDurableAndAnnounce(std::move(frozen));
}

void Certifier::MakeDurableAndAnnounce(WriteSetRef ws) {
  // Group commit: batch decisions while a force is in flight; the next
  // force covers the whole batch with a single disk write.
  force_batch_.push_back(std::move(ws));
  if (force_in_flight_) return;
  force_in_flight_ = true;
  ForceNext();
}

void Certifier::ForceNext() {
  std::vector<WriteSetRef> batch;
  if (config_.max_force_batch > 0 &&
      force_batch_.size() > config_.max_force_batch) {
    // Capped group commit: take the oldest max_force_batch writesets (in
    // commit-version order) and leave the rest for the next force.
    const auto split = force_batch_.begin() +
                       static_cast<std::ptrdiff_t>(config_.max_force_batch);
    batch.assign(force_batch_.begin(), split);
    force_batch_.erase(force_batch_.begin(), split);
  } else {
    batch.swap(force_batch_);
  }
  const TimePoint force_start = rt_->Now();
  disk_.Submit(
      config_.log_force_time,
      [this, batch = std::move(batch), force_start]() {
        const auto batch_size = static_cast<int64_t>(batch.size());
        if (!muted_) {
          if (ctr_forces_ != nullptr) ctr_forces_->Increment();
          if (batch_size_hist_ != nullptr) {
            batch_size_hist_->Add(static_cast<double>(batch_size));
          }
          if (last_batch_gauge_ != nullptr) {
            last_batch_gauge_->Set(static_cast<double>(batch_size));
          }
          if (tracer_ != nullptr) {
            tracer_->Add({.name = "certifier.log_force",
                          .category = "certifier",
                          .pid = obs::kCertifierPid,
                          .tid = 0,
                          .start = force_start,
                          .duration = rt_->Now() - force_start,
                          .txn = 0,
                          .arg_name = "batch",
                          .arg_value = batch_size});
          }
        }
        if (config_.refresh_batching) {
          // Durability + decisions per writeset (in version order), then
          // one coalesced refresh message per target for the whole batch.
          for (const WriteSetRef& ws : batch) {
            wal_.Append(*ws, /*force=*/true);
            AnnounceDecision(*ws);
          }
          AnnounceRefreshBatches(batch);
        } else {
          for (const WriteSetRef& ws : batch) {
            wal_.Append(*ws, /*force=*/true);
            Announce(ws);
          }
        }
        if (!force_batch_.empty()) {
          ForceNext();
        } else {
          force_in_flight_ = false;
        }
      });
}

void Certifier::Announce(const WriteSetRef& ws) {
  if (muted_) return;  // standby: identical state, silent channels
  AnnounceDecision(*ws);
  for (ReplicaId r = 0; r < replica_count_; ++r) {
    if (r == ws->origin) continue;
    if (replica_down_[static_cast<size_t>(r)]) continue;  // catches up later
    SendRefresh(r, ws);
  }
}

void Certifier::SendRefresh(ReplicaId replica, const WriteSetRef& ws) {
  if (config_.refresh_credit_window == 0) {
    refresh_cb_(replica, RefreshBatch{{ws}});
    return;
  }
  const auto idx = static_cast<size_t>(replica);
  // Order preservation: once anything is deferred for this replica,
  // everything newer must queue behind it.
  if (!deferred_refresh_[idx].empty() || refresh_credits_[idx] <= 0) {
    deferred_refresh_[idx].push_back(ws);
    return;
  }
  --refresh_credits_[idx];
  refresh_cb_(replica, RefreshBatch{{ws}});
}

void Certifier::AnnounceDecision(const WriteSet& ws) {
  if (muted_) return;
  if (tracer_ != nullptr) {
    if (auto it = certify_done_at_.find(ws.txn_id);
        it != certify_done_at_.end()) {
      tracer_->Add({.name = "certifier.force_wait",
                    .category = "certifier",
                    .pid = obs::kCertifierPid,
                    .tid = static_cast<int64_t>(ws.txn_id),
                    .start = it->second,
                    .duration = rt_->Now() - it->second,
                    .txn = ws.txn_id});
      certify_done_at_.erase(it);
    }
  }
  CertDecision decision{ws.txn_id, /*commit=*/true, ws.commit_version};
  decision_cb_(ws.origin, decision);
}

void Certifier::AnnounceRefreshBatches(
    const std::vector<WriteSetRef>& batch) {
  if (muted_) return;
  const bool credited = config_.refresh_credit_window > 0;
  for (ReplicaId r = 0; r < replica_count_; ++r) {
    const auto idx = static_cast<size_t>(r);
    if (replica_down_[idx]) continue;  // catches up later
    RefreshBatch refresh;
    for (const WriteSetRef& ws : batch) {
      if (ws->origin == r) continue;  // the origin applies its own commit
      // Each writeset in the coalesced batch consumes one credit; the
      // overflow is deferred in version order behind anything already
      // deferred.
      if (credited && (!deferred_refresh_[idx].empty() ||
                       refresh_credits_[idx] <= 0)) {
        deferred_refresh_[idx].push_back(ws);
        continue;
      }
      if (credited) --refresh_credits_[idx];
      refresh.writesets.push_back(ws);
    }
    if (!refresh.writesets.empty()) refresh_cb_(r, refresh);
  }
}

void Certifier::OnCreditReturned(ReplicaId replica, int credits) {
  if (config_.refresh_credit_window == 0) return;
  SCREP_CHECK(replica >= 0 && replica < replica_count_);
  const auto idx = static_cast<size_t>(replica);
  // Cap at the window: duplicate-tolerant (a proxy returning a credit for
  // a writeset the channel duplicated can never inflate the window).
  refresh_credits_[idx] =
      std::min(refresh_credits_[idx] + credits,
               static_cast<int64_t>(config_.refresh_credit_window));
  if (muted_ || replica_down_[idx]) return;
  auto& deferred = deferred_refresh_[idx];
  if (deferred.empty()) return;
  // Drain as ONE coalesced batch up to the credits available — under
  // sustained pressure the flow-control path batches fan-out by itself.
  RefreshBatch refresh;
  while (!deferred.empty() && refresh_credits_[idx] > 0) {
    refresh.writesets.push_back(std::move(deferred.front()));
    deferred.pop_front();
    --refresh_credits_[idx];
  }
  if (!refresh.writesets.empty()) refresh_cb_(replica, refresh);
}

void Certifier::MarkReplicaDown(ReplicaId replica) {
  SCREP_CHECK(replica >= 0 && replica < replica_count_);
  if (replica_down_[static_cast<size_t>(replica)]) return;
  replica_down_[static_cast<size_t>(replica)] = true;
  if (config_.refresh_credit_window > 0) {
    // In-flight refreshes and deferred backlog are moot: the replica
    // catches up from the durable log on recovery, so its window resets.
    deferred_refresh_[static_cast<size_t>(replica)].clear();
    refresh_credits_[static_cast<size_t>(replica)] =
        static_cast<int64_t>(config_.refresh_credit_window);
  }
  if (!eager_) return;
  int active = 0;
  for (bool down : replica_down_) active += down ? 0 : 1;
  SCREP_CHECK_MSG(active >= 1, "all replicas down");
  // Lowering the bar may complete pending global commits.
  for (TxnId txn : eager_tracker_.SetActiveReplicaCount(active)) {
    auto it = eager_origins_.find(txn);
    SCREP_CHECK(it != eager_origins_.end());
    const ReplicaId origin = it->second;
    eager_origins_.erase(it);
    // The origin itself may be the crashed replica; its client will be
    // told of the failure by the load balancer instead.
    if (origin != replica) global_commit_cb_(origin, txn);
  }
}

void Certifier::MarkReplicaUp(ReplicaId replica) {
  SCREP_CHECK(replica >= 0 && replica < replica_count_);
  if (!replica_down_[static_cast<size_t>(replica)]) return;
  replica_down_[static_cast<size_t>(replica)] = false;
  if (config_.refresh_credit_window > 0) {
    // The recovered replica's apply pipeline restarted empty; any credit
    // returns still in flight from before the crash will be capped.
    refresh_credits_[static_cast<size_t>(replica)] =
        static_cast<int64_t>(config_.refresh_credit_window);
  }
  if (!eager_) return;
  int active = 0;
  for (bool down : replica_down_) active += down ? 0 : 1;
  // Raising the bar never completes anything.
  (void)eager_tracker_.SetActiveReplicaCount(active);
}

bool Certifier::IsReplicaDown(ReplicaId replica) const {
  SCREP_CHECK(replica >= 0 && replica < replica_count_);
  return replica_down_[static_cast<size_t>(replica)];
}

Status Certifier::FetchSince(
    DbVersion from,
    const std::function<void(const WriteSet&)>& sink) const {
  if (from >= v_commit_) return Status::OK();
  const DbVersion window_start =
      recent_.empty() ? v_commit_ + 1 : recent_.front()->commit_version;
  if (from + 1 >= window_start) {
    for (const WriteSetRef& ws : recent_) {
      if (ws->commit_version > from) sink(*ws);
    }
    return Status::OK();
  }
  // The window no longer covers the requested range: decode the durable
  // log (recovery is rare, so the full scan is acceptable).
  std::vector<WriteSet> log;
  SCREP_RETURN_NOT_OK(wal_.ReadAll(&log));
  for (const WriteSet& ws : log) {
    if (ws.commit_version > from) sink(ws);
  }
  return Status::OK();
}

void Certifier::NotifyReplicaCommitted(TxnId txn) {
  if (!eager_) return;
  if (eager_tracker_.OnReplicaCommitted(txn)) {
    auto it = eager_origins_.find(txn);
    SCREP_CHECK(it != eager_origins_.end());
    const ReplicaId origin = it->second;
    eager_origins_.erase(it);
    if (!muted_) global_commit_cb_(origin, txn);
  }
}

}  // namespace screp
