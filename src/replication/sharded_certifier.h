// Partitioned certification: K certifier lanes sharded by table, plus a
// thin sequencer for cross-shard transactions (ROADMAP "partitioned
// certification + partial replication"; grounding: Sutra & Shapiro,
// fault-tolerant partial replication).
//
// Each lane owns one shard of the key space end to end: its own CPU and
// disk, its own CommittedKeyIndex over a per-shard conflict window, its
// own WAL force stream, and its own refresh fan-out channels.  Commit
// versions are per shard — lane s issues the dense sequence V_s = 1, 2,
// ... over the writesets touching shard s — so the certified throughput
// of disjoint shards scales with K instead of serializing behind one
// global version counter.
//
// A transaction's shard-set is computed from its writeset (including
// read keys/ranges in serializable mode: the lane owning a read's table
// must vote too).  Single-shard transactions — the common case in the
// KvGrid and TPC-W mixes — are decided entirely within their lane.
// Cross-shard transactions go through the sequencer protocol:
//
//   1. The submission enters every touched lane's FIFO (its *vote*): one
//      certify-CPU service per lane, modeling the parallel per-shard
//      conflict work.
//   2. A transaction is *decided* only when (a) every touched lane's
//      vote has completed and (b) it is at the head of every touched
//      lane's decide queue.  Head-of-all-queues makes the decision order
//      deterministic and conflict-safe: no later submission can be
//      certified in any touched shard before this one's outcome is
//      installed there.  (The earliest-submitted undecided transaction
//      is always at all of its heads, so the protocol cannot deadlock.)
//   3. On commit it receives a *joint commit version*: the next version
//      in each touched lane, assigned atomically at decide time.
//
// With K = 1 the system keeps using the plain Certifier — this class is
// only constructed for K > 1, so every single-stream configuration stays
// byte-identical.  Unsupported at K > 1 (the system refuses the
// combination): eager global commits, standby failover, WAL-based
// catch-up, refresh batching, and replica crash/recovery.

#ifndef SCREP_REPLICATION_SHARDED_CERTIFIER_H_
#define SCREP_REPLICATION_SHARDED_CERTIFIER_H_

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "obs/observability.h"
#include "replication/certifier.h"
#include "replication/conflict_index.h"
#include "replication/message.h"
#include "replication/shard_map.h"
#include "sim/resource.h"
#include "runtime/runtime.h"
#include "storage/wal.h"
#include "storage/write_set.h"

namespace screp {

/// K-lane partitioned certification service.  Reuses CertifierConfig:
/// certify_cpu_time / log_force_time / mode / conflict_window /
/// linear_scan_oracle / max_intake / refresh_credit_window apply per
/// lane; shard_lanes picks K.
class ShardedCertifier {
 public:
  using DecisionCallback =
      std::function<void(ReplicaId origin, const CertDecision&)>;
  /// Refresh fan-out, per (shard, target): a cross-shard writeset is
  /// sent once per target, on the lowest-numbered touched shard the
  /// target hosts; the proxy ingests it into every touched hosted
  /// stream.
  using RefreshCallback = std::function<void(
      ShardId shard, ReplicaId target, const RefreshBatch&)>;

  ShardedCertifier(runtime::Runtime* rt, CertifierConfig config,
                   ShardMap map, int replica_count);

  /// Declares each replica's hosted-shard set (empty outer vector or
  /// empty per-replica set = hosts everything).  Refresh fan-out for a
  /// writeset skips replicas hosting none of its shards.
  void SetHostedShards(const std::vector<std::vector<ShardId>>& hosted);

  void SetDecisionCallback(DecisionCallback cb) {
    decision_cb_ = std::move(cb);
  }
  void SetRefreshCallback(RefreshCallback cb) { refresh_cb_ = std::move(cb); }

  /// Event log + counters (per-lane gauges are registered by the system).
  void SetObservability(obs::Observability* obs);

  /// Submits an update transaction's writeset.  `ws.origin` must be
  /// set; `ws.shard_snapshots` carries the per-shard snapshot
  /// coordinates (a missing shard entry reads as 0 — "saw nothing").
  void SubmitCertification(WriteSet ws);

  /// Refresh flow control for one (shard, replica) stream; mirrors
  /// Certifier::OnCreditReturned per lane.
  void OnCreditReturned(ShardId shard, ReplicaId replica, int credits);

  int shard_count() const { return map_.shard_count(); }
  int replica_count() const { return replica_count_; }
  const ShardMap& shard_map() const { return map_; }

  /// Latest commit version issued in `shard`'s version space.
  DbVersion LaneCommitVersion(ShardId shard) const {
    return lanes_[static_cast<size_t>(shard)]->v_commit;
  }

  int64_t certified_count() const { return certified_; }
  int64_t abort_count() const { return aborts_; }
  int64_t rw_abort_count() const { return rw_aborts_; }
  int64_t window_abort_count() const { return window_aborts_; }
  int64_t shed_count() const { return shed_; }
  /// Cross-shard transactions decided through the sequencer.
  int64_t sequenced_count() const { return sequenced_; }
  size_t decided_size() const { return decided_.size(); }
  size_t conflict_index_size() const;

  Resource* lane_cpu(ShardId shard) {
    return &lanes_[static_cast<size_t>(shard)]->cpu;
  }
  Resource* lane_disk(ShardId shard) {
    return &lanes_[static_cast<size_t>(shard)]->disk;
  }
  const Wal& lane_wal(ShardId shard) const {
    return lanes_[static_cast<size_t>(shard)]->wal;
  }
  size_t lane_force_pending(ShardId shard) const {
    return lanes_[static_cast<size_t>(shard)]->force_batch.size();
  }
  int64_t refresh_credits(ShardId shard, ReplicaId replica) const;
  size_t deferred_refresh_total() const;

 private:
  struct Lane {
    Lane(runtime::Runtime* rt, const std::string& name, bool serializable)
        : cpu(rt, name + "-cpu", 1),
          disk(rt, name + "-disk", 1),
          index(serializable) {}

    Resource cpu;
    Resource disk;
    CommittedKeyIndex index;
    /// Committed sub-writesets of this shard, ascending by shard
    /// version, pruned to conflict_window; `recent_seq` is the parallel
    /// global decide-sequence numbers used to order conflict hits from
    /// different lanes.
    std::deque<WriteSetRef> recent;
    std::deque<int64_t> recent_seq;
    DbVersion v_commit = 0;
    Wal wal;
    std::vector<WriteSetRef> force_batch;
    bool force_in_flight = false;
    /// Decide queue: submissions touching this shard, in arrival order.
    std::deque<TxnId> order;
  };

  struct PendingTxn {
    WriteSet ws;
    std::vector<ShardId> shards;
    int votes_outstanding = 0;
    bool ready = false;  ///< all votes done, awaiting queue heads
  };

  void ShedSubmission(const WriteSet& ws);
  /// One lane's certify-CPU service completed for `txn`.
  void OnVote(TxnId txn);
  /// Decides every transaction that is ready and at the head of all its
  /// touched lanes' queues, until no further progress.
  void DecideEligible();
  void Decide(PendingTxn pending);
  void RecordDecision(const CertDecision& decision);
  void StartForce(ShardId shard);
  /// All touched lanes' forces done: decision + refresh fan-out.
  void Announce(const WriteSetRef& ws);
  void SendRefresh(ShardId shard, ReplicaId replica, const WriteSetRef& ws);
  bool Hosts(ReplicaId replica, ShardId shard) const {
    return hosts_[static_cast<size_t>(replica)][static_cast<size_t>(shard)];
  }
  void EmitVerdict(const WriteSet& ws, bool commit, const char* reason,
                   DbVersion conflict_version, TxnId conflict_txn);

  runtime::Runtime* rt_;
  CertifierConfig config_;
  ShardMap map_;
  int replica_count_;

  std::vector<std::unique_ptr<Lane>> lanes_;
  /// hosts_[replica][shard].
  std::vector<std::vector<bool>> hosts_;

  std::unordered_map<TxnId, PendingTxn> pending_;
  /// Monotone decide-sequence counter (commit bookkeeping only; never a
  /// version anyone observes).
  int64_t seq_ = 0;

  /// Writesets whose joint durability is still outstanding:
  /// txn -> touched-lane forces not yet completed, and the full frozen
  /// writeset to announce once the last force lands (the lanes' force
  /// batches carry the per-shard sub-writesets for the WAL).
  std::unordered_map<TxnId, int> force_remaining_;
  std::unordered_map<TxnId, WriteSetRef> announcing_;

  /// Shared idempotence map (same retirement policy as Certifier,
  /// horizon measured in decide sequence numbers).
  std::unordered_map<TxnId, CertDecision> decided_;
  std::deque<std::pair<int64_t, TxnId>> decided_log_;

  /// Per (shard, replica) refresh flow control.
  std::vector<std::vector<int64_t>> credits_;
  std::vector<std::vector<std::deque<WriteSetRef>>> deferred_;

  int64_t certified_ = 0;
  int64_t aborts_ = 0;
  int64_t rw_aborts_ = 0;
  int64_t window_aborts_ = 0;
  int64_t shed_ = 0;
  int64_t sequenced_ = 0;

  obs::EventLog* event_log_ = nullptr;
  obs::Counter* ctr_certified_ = nullptr;
  obs::Counter* ctr_aborts_ww_ = nullptr;
  obs::Counter* ctr_aborts_rw_ = nullptr;
  obs::Counter* ctr_aborts_window_ = nullptr;
  obs::Counter* ctr_shed_ = nullptr;
  obs::Counter* ctr_sequenced_ = nullptr;

  DecisionCallback decision_cb_;
  RefreshCallback refresh_cb_;
};

}  // namespace screp

#endif  // SCREP_REPLICATION_SHARDED_CERTIFIER_H_
