// Message types exchanged between clients, the load balancer, replica
// proxies and the certifier.
//
// Components communicate through callbacks that the system wires with
// simulated network latency; these structs are the payloads.

#ifndef SCREP_REPLICATION_MESSAGE_H_
#define SCREP_REPLICATION_MESSAGE_H_

#include <string>
#include <utility>
#include <vector>

#include "common/sim_time.h"
#include "common/types.h"
#include "storage/value.h"
#include "storage/write_set.h"

namespace screp {

/// A client's request to run one transaction instance of a registered
/// prepared-transaction type.
struct TxnRequest {
  TxnId txn_id = 0;
  /// Transaction type id — clients tag requests with it so the load
  /// balancer can look up the statically extracted table-set (§IV-B).
  TxnTypeId type = kUnknownTxnType;
  /// Session identifier (SID) for session-consistency accounting (§IV-C).
  SessionId session = 0;
  int client_id = 0;
  /// Positional parameters for each statement of the transaction type.
  std::vector<std::vector<Value>> params;
  /// Virtual time the client sent the request.
  TimePoint submit_time = 0;
  /// When set, the proxy copies each statement's result rows into
  /// TxnResponse::results (off by default: the simulated workloads only
  /// measure timing, and empty results keep message sizes unchanged).
  bool collect_results = false;
};

/// How a transaction ended.
enum class TxnOutcome {
  kCommitted = 0,
  /// Certifier found a write-write conflict (first-committer-wins).
  kCertificationAbort,
  /// Proxy's early certification aborted the transaction against a
  /// pending or arriving refresh writeset (hidden-deadlock avoidance).
  kEarlyAbort,
  /// A statement failed (e.g. inserting an existing key).
  kExecutionError,
  /// The replica serving the transaction crashed; the load balancer
  /// reports the failure so the client can retry elsewhere.
  kReplicaFailure,
  /// The middleware shed the request under overload (admission queue
  /// full or certifier intake bound reached); the client should back
  /// off and retry.
  kOverloaded,
};

const char* TxnOutcomeName(TxnOutcome outcome);

/// Per-stage latency breakdown, matching the paper's measurement stages
/// (§V-A): version / queries / certify / sync / commit / global.
struct StageTimes {
  Duration version = 0;  ///< synchronization start delay (not in ESC)
  Duration queries = 0;  ///< executing the transaction's SQL statements
  Duration certify = 0;  ///< certifier round trip (updates only)
  Duration sync = 0;     ///< waiting for global commit order locally
  Duration commit = 0;   ///< committing to the local DBMS
  Duration global = 0;   ///< global commit delay (ESC updates only)

  Duration Total() const {
    return version + queries + certify + sync + commit + global;
  }
  std::string ToString() const;
};

/// The proxy's reply for one transaction, relayed to the client by the
/// load balancer (which also reads the version tags off it).
struct TxnResponse {
  TxnId txn_id = 0;
  TxnTypeId type = kUnknownTxnType;
  SessionId session = 0;
  int client_id = 0;
  TxnOutcome outcome = TxnOutcome::kCommitted;
  bool read_only = true;
  ReplicaId replica = kNoReplica;

  /// Replica's database version when it acknowledged (the V_local tag).
  DbVersion v_local_after = 0;
  /// Snapshot the transaction read at.
  DbVersion snapshot = 0;
  /// Certified commit version (kNoVersion for read-only/aborted).
  DbVersion commit_version = kNoVersion;
  /// (table, new V_t) for each table written — the fine-grained tag.
  std::vector<std::pair<TableId, DbVersion>> written_table_versions;
  /// Record-level writes (for history checking).
  std::vector<std::pair<TableId, int64_t>> keys_written;

  StageTimes stages;
  TimePoint submit_time = 0;  ///< echoed from the request
  TimePoint start_time = 0;   ///< when BEGIN executed at the replica

  /// Partitioned certification (sharded configurations only; empty at
  /// K = 1 so single-stream message contents are unchanged).
  /// Per touched shard: this transaction's shard-local commit version.
  std::vector<std::pair<int32_t, DbVersion>> shard_versions;
  /// Per hosted shard: the replica's published shard version when it
  /// acknowledged — the sharded analog of the V_local tag, advancing the
  /// LB's per-shard system trackers.
  std::vector<std::pair<int32_t, DbVersion>> shard_locals;
  /// Per hosted shard: the shard version the transaction's snapshot
  /// included when BEGIN executed (the sharded snapshot coordinates).
  std::vector<std::pair<int32_t, DbVersion>> shard_snapshots;

  /// Result rows per statement, filled only for committed transactions
  /// whose request set `collect_results` (empty otherwise).
  std::vector<std::vector<Row>> results;
};

/// Certifier's verdict on an update transaction.
struct CertDecision {
  TxnId txn_id = 0;
  bool commit = false;
  DbVersion commit_version = kNoVersion;
  /// The certifier refused the writeset at its intake bound without
  /// certifying it; the proxy surfaces TxnOutcome::kOverloaded instead
  /// of a certification abort so clients back off rather than blaming a
  /// conflict.
  bool overloaded = false;
  /// Sharded certification only: the commit version assigned in each
  /// touched shard's version space (empty at K = 1, and on aborts).
  /// `commit_version` then holds the lowest-numbered touched shard's
  /// version for scalar consumers (stage tracking, logs).
  std::vector<std::pair<int32_t, DbVersion>> shard_versions = {};
};

/// A dispatch from the load balancer to a replica proxy: the client's
/// request plus the version tag enforcing the synchronization start
/// delay.
struct RoutedRequest {
  TxnRequest request;
  DbVersion required_version = 0;
  /// Sharded configurations: per touched shard, the shard version the
  /// replica must publish before BEGIN may execute (replaces the scalar
  /// tag above, which stays 0).  Empty at K = 1.
  std::vector<std::pair<int32_t, DbVersion>> shard_required;
};

/// One certifier -> replica refresh message: the writesets of one
/// group-commit force destined for that replica, in commit-version
/// order.  Without refresh batching every message carries exactly one
/// writeset (the original per-writeset fan-out schedule).
///
/// The batch holds *references* to the certifier's frozen writesets, so
/// fanning one group commit out to N targets (and every channel-delivery
/// copy along the way) is N refcount bumps, not N deep copies of every
/// row image.
struct RefreshBatch {
  std::vector<WriteSetRef> writesets;

  /// Total wire size (drives the refresh link's per-byte cost).  The
  /// per-writeset sizes come from the frozen writesets' memo, so batch
  /// assembly is O(writesets), not O(total row-image bytes).
  size_t SerializedBytes() const {
    size_t total = 8;  // batch header
    for (const WriteSetRef& ws : writesets) total += ws->SerializedBytes();
    return total;
  }
};

}  // namespace screp

#endif  // SCREP_REPLICATION_MESSAGE_H_
